#!/bin/sh
# crash_matrix.sh — exhaustive crash-point injection over the adapter
# store. Every page write, WAL append, fsync, truncate and rename in a
# representative faccd workload is a numbered crash site; the store is
# crashed at every site in every mode (clean loss, torn write, bit flip)
# and must recover to a consistent, byte-identical-or-recompilable state
# each time.
#
# Environment:
#   CRASH_OUT   directory for CI artifacts; when set, keeps
#               CRASH_OUT/CRASH_MATRIX.json plus every crashed store
#               (quarantine/ evidence included) under CRASH_OUT/stores
#
# Needs only POSIX sh + the Go toolchain. Run from the repo root:
#     ./scripts/crash_matrix.sh
set -eu

OUT="${CRASH_OUT:-}"
if [ -n "$OUT" ]; then
    mkdir -p "$OUT"
    go run ./cmd/faccbench -experiment crashmatrix \
        -bench-out "$OUT/CRASH_MATRIX.json" -crash-dir "$OUT/stores"
else
    go run ./cmd/faccbench -experiment crashmatrix -bench-out CRASH_MATRIX.json
fi
echo "crash-matrix: every site recovered"
