#!/bin/sh
# fleet_smoke.sh — end-to-end smoke test of faccd fleet mode.
#
# Stands up a 3-replica fleet (static peer table, consistent-hash
# routing, health probes), compiles a real MiniC FFT through it, then
# kill -9's the replica that owns the digest while a second compile is
# in flight. The survivors must eject the dead peer from the ring within
# the probe budget, finish the in-flight request via failover, and serve
# byte-identical adapter bytes for the original digest from the new
# owner — the fleet's "never a wrong adapter" contract, observed from
# outside the process like an operator would.
#
# Needs only POSIX sh + curl + the Go toolchain. Run from the repo root:
#     ./scripts/fleet_smoke.sh
set -eu

TMP=$(mktemp -d)
PID0="" PID1="" PID2=""
cleanup() {
    for p in "$PID0" "$PID1" "$PID2"; do
        [ -n "$p" ] && kill "$p" 2>/dev/null || true
    done
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "fleet-smoke: building faccd"
go build -o "$TMP/faccd" ./cmd/faccd

cat > "$TMP/smoke.c" <<'EOF'
#include <math.h>
typedef struct { double re; double im; } cpx;
void fft(cpx* x, int n) {
    int j = 0;
    for (int i = 1; i < n; i++) {
        int bit = n >> 1;
        for (; j & bit; bit >>= 1) j ^= bit;
        j |= bit;
        if (i < j) {
            cpx tmp = x[i];
            x[i] = x[j];
            x[j] = tmp;
        }
    }
    for (int len = 2; len <= n; len <<= 1) {
        double ang = -2.0 * M_PI / (double)len;
        for (int i = 0; i < n; i += len) {
            for (int k = 0; k < len / 2; k++) {
                double wre = cos(ang * (double)k);
                double wim = sin(ang * (double)k);
                cpx u = x[i + k];
                cpx v;
                v.re = x[i + k + len / 2].re * wre - x[i + k + len / 2].im * wim;
                v.im = x[i + k + len / 2].re * wim + x[i + k + len / 2].im * wre;
                x[i + k].re = u.re + v.re;
                x[i + k].im = u.im + v.im;
                x[i + k + len / 2].re = u.re - v.re;
                x[i + k + len / 2].im = u.im - v.im;
            }
        }
    }
}
EOF
SRC=$(sed -e 's/\\/\\\\/g' -e 's/"/\\"/g' "$TMP/smoke.c" | awk '{printf "%s\\n", $0}')
printf '{"name":"smoke.c","source":"%s","target":"ffta","entry":"fft","profile":{"n":[64,128]},"tests":3}' \
    "$SRC" > "$TMP/req.json"
# A second digest (different test count) for the mid-kill in-flight compile.
sed 's/"tests":3/"tests":4/' "$TMP/req.json" > "$TMP/req2.json"

# The peer table must be known before any replica starts, so ports are
# picked up front; on a bind collision the whole fleet restarts on the
# next port block.
start_replica() { # start_replica <idx> <port>
    rm -f "$TMP/addr$1"
    "$TMP/faccd" -addr "127.0.0.1:$2" -addr-file "$TMP/addr$1" \
        -store "$TMP/store$1" -queue 8 -drain-timeout 30s \
        -peer-id "r$1" -peers "$PEERS" \
        -probe-interval 100ms -failure-threshold 2 \
        2>>"$TMP/faccd$1.log" &
    eval "PID$1=$!"
}

start_fleet() {
    try=0
    while :; do
        try=$((try + 1))
        if [ "$try" -gt 5 ]; then
            echo "fleet-smoke: could not bind a port block"; exit 1
        fi
        BASE=$((20000 + ($$ + try * 100) % 30000))
        P0=$BASE; P1=$((BASE + 1)); P2=$((BASE + 2))
        PEERS="r0=http://127.0.0.1:$P0,r1=http://127.0.0.1:$P1,r2=http://127.0.0.1:$P2"
        start_replica 0 "$P0"; start_replica 1 "$P1"; start_replica 2 "$P2"
        ok=1
        for i in 0 1 2; do
            j=0
            while [ ! -s "$TMP/addr$i" ]; do
                j=$((j + 1))
                if [ "$j" -gt 100 ]; then ok=0; break; fi
                # Bail early if the process already died (port in use).
                eval "p=\$PID$i"
                kill -0 "$p" 2>/dev/null || { ok=0; break; }
                sleep 0.1
            done
            [ "$ok" = 1 ] || break
        done
        [ "$ok" = 1 ] && break
        echo "fleet-smoke: port block $BASE busy, retrying"
        for p in "$PID0" "$PID1" "$PID2"; do
            [ -n "$p" ] && kill "$p" 2>/dev/null || true
        done
        PID0="" PID1="" PID2=""
        sleep 0.2
    done
    URL0="http://127.0.0.1:$P0"; URL1="http://127.0.0.1:$P1"; URL2="http://127.0.0.1:$P2"
}

url_of() { eval "echo \$URL$(echo "$1" | tr -d r)"; }
pid_of() { eval "echo \$PID$(echo "$1" | tr -d r)"; }

echo "fleet-smoke: starting a 3-replica fleet"
start_fleet
for i in 0 1 2; do
    eval "u=\$URL$i"
    curl -fsS "$u/healthz" > /dev/null
    curl -fsS "$u/readyz" > /dev/null
done

echo "fleet-smoke: compiling through the fleet"
curl -fsS -D "$TMP/h1" -o "$TMP/r1" -X POST -H 'Content-Type: application/json' \
    --data-binary @"$TMP/req.json" "$URL0/compile?wait=1"
grep -q '"state": "done"' "$TMP/r1" || { echo "fleet-smoke: compile not done:"; cat "$TMP/r1"; exit 1; }
grep '"adapter_c"' "$TMP/r1" > "$TMP/adapter1" && [ -s "$TMP/adapter1" ] \
    || { echo "fleet-smoke: no adapter in response"; cat "$TMP/r1"; exit 1; }
DIGEST=$(grep '"key"' "$TMP/r1" | head -n 1 | sed 's/.*"key": "\([^"]*\)".*/\1/')
[ -n "$DIGEST" ] || { echo "fleet-smoke: no digest in response"; exit 1; }

OWNER=$(curl -fsS "$URL0/fleet/owners?key=$DIGEST" | tr -d ' \n' \
    | sed -n 's/.*"owners":\["\([^"]*\)".*/\1/p')
[ -n "$OWNER" ] || { echo "fleet-smoke: could not resolve the digest's owner"; exit 1; }
SURVIVOR=""
for r in r0 r1 r2; do
    [ "$r" = "$OWNER" ] || { SURVIVOR=$r; break; }
done
SURL=$(url_of "$SURVIVOR")
echo "fleet-smoke: digest owned by $OWNER; killing it (kill -9) with a compile in flight"

# Fire a second, uncached compile at a survivor, then SIGKILL the owner
# while it is being routed/compiled: the fleet must finish it anyway.
curl -fsS -o "$TMP/r2" -X POST -H 'Content-Type: application/json' \
    --data-binary @"$TMP/req2.json" "$SURL/compile?wait=1" &
CURL2=$!
sleep 0.2
OPID=$(pid_of "$OWNER")
kill -9 "$OPID"
eval "PID$(echo "$OWNER" | tr -d r)=''"
wait "$CURL2" || { echo "fleet-smoke: in-flight compile failed after the kill"; cat "$TMP/faccd"*.log; exit 1; }
grep -q '"state": "done"' "$TMP/r2" || { echo "fleet-smoke: in-flight compile not done:"; cat "$TMP/r2"; exit 1; }

echo "fleet-smoke: waiting for the survivors to eject $OWNER from the ring"
i=0
while :; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "fleet-smoke: $OWNER never ejected"; curl -fsS "$SURL/fleet/peers" || true; exit 1
    fi
    if curl -fsS "$SURL/fleet/peers" | tr -d ' \n' \
        | grep -Eq "\"id\":\"$OWNER\"[^}]*\"healthy\":false"; then
        break
    fi
    sleep 0.1
done

echo "fleet-smoke: recompiling the dead owner's digest via a survivor"
curl -fsS -D "$TMP/h3" -o "$TMP/r3" -X POST -H 'Content-Type: application/json' \
    --data-binary @"$TMP/req.json" "$SURL/compile?wait=1"
grep -q '"state": "done"' "$TMP/r3" || { echo "fleet-smoke: post-kill compile not done:"; cat "$TMP/r3"; exit 1; }
grep '"adapter_c"' "$TMP/r3" > "$TMP/adapter3"
cmp -s "$TMP/adapter1" "$TMP/adapter3" \
    || { echo "fleet-smoke: adapter diverged after failover"; exit 1; }

NEWOWNER=$(curl -fsS "$SURL/fleet/owners?key=$DIGEST" | tr -d ' \n' \
    | sed -n 's/.*"owners":\["\([^"]*\)".*/\1/p')
[ "$NEWOWNER" != "$OWNER" ] || { echo "fleet-smoke: ring still routes to the dead owner"; exit 1; }
echo "fleet-smoke: ownership moved $OWNER -> $NEWOWNER, adapter byte-identical"

echo "fleet-smoke: draining the survivors"
for r in r0 r1 r2; do
    [ "$r" = "$OWNER" ] && continue
    p=$(pid_of "$r")
    kill -TERM "$p"
done
for r in r0 r1 r2; do
    [ "$r" = "$OWNER" ] && continue
    p=$(pid_of "$r")
    wait "$p" || { echo "fleet-smoke: $r drain was not clean"; cat "$TMP/faccd$(echo "$r" | tr -d r).log"; exit 1; }
    eval "PID$(echo "$r" | tr -d r)=''"
done
echo "fleet-smoke: OK"
