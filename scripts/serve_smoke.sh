#!/bin/sh
# serve_smoke.sh — end-to-end smoke test of the faccd compile service.
#
# Exercises the daemon the way an operator sees it: build, start, compile
# a real MiniC FFT over HTTP, SIGTERM while a request is in flight (the
# drain must finish it), tear the cached adapter on disk like a crash
# mid-write, restart, and require that the store quarantines the damage,
# recompiles, serves a byte-identical adapter, and caches it again.
#
# Needs only POSIX sh + curl + the Go toolchain. Run from the repo root:
#     ./scripts/serve_smoke.sh
set -eu

TMP=$(mktemp -d)
PID=""
cleanup() {
    [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "serve-smoke: building faccd"
go build -o "$TMP/faccd" ./cmd/faccd

cat > "$TMP/smoke.c" <<'EOF'
#include <math.h>
typedef struct { double re; double im; } cpx;
void fft(cpx* x, int n) {
    int j = 0;
    for (int i = 1; i < n; i++) {
        int bit = n >> 1;
        for (; j & bit; bit >>= 1) j ^= bit;
        j |= bit;
        if (i < j) {
            cpx tmp = x[i];
            x[i] = x[j];
            x[j] = tmp;
        }
    }
    for (int len = 2; len <= n; len <<= 1) {
        double ang = -2.0 * M_PI / (double)len;
        for (int i = 0; i < n; i += len) {
            for (int k = 0; k < len / 2; k++) {
                double wre = cos(ang * (double)k);
                double wim = sin(ang * (double)k);
                cpx u = x[i + k];
                cpx v;
                v.re = x[i + k + len / 2].re * wre - x[i + k + len / 2].im * wim;
                v.im = x[i + k + len / 2].re * wim + x[i + k + len / 2].im * wre;
                x[i + k].re = u.re + v.re;
                x[i + k].im = u.im + v.im;
                x[i + k + len / 2].re = u.re - v.re;
                x[i + k + len / 2].im = u.im - v.im;
            }
        }
    }
}
EOF
# JSON-encode the source (escape backslashes/quotes, join lines with \n).
SRC=$(sed -e 's/\\/\\\\/g' -e 's/"/\\"/g' "$TMP/smoke.c" | awk '{printf "%s\\n", $0}')
printf '{"name":"smoke.c","source":"%s","target":"ffta","entry":"fft","profile":{"n":[64,128]},"tests":3}' \
    "$SRC" > "$TMP/req.json"

start_daemon() {
    rm -f "$TMP/addr"
    "$TMP/faccd" -addr 127.0.0.1:0 -addr-file "$TMP/addr" \
        -store "$TMP/store" -queue 8 -drain-timeout 30s 2>>"$TMP/faccd.log" &
    PID=$!
    i=0
    while [ ! -s "$TMP/addr" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "serve-smoke: faccd did not start"; cat "$TMP/faccd.log"; exit 1
        fi
        sleep 0.1
    done
    ADDR=$(cat "$TMP/addr")
}

compile() { # compile <headers-out> <body-out>
    curl -fsS -D "$1" -o "$2" -X POST -H 'Content-Type: application/json' \
        --data-binary @"$TMP/req.json" "http://$ADDR/compile?wait=1"
}

adapter_of() { # the adapter_c JSON line is the byte-identity witness
    grep '"adapter_c"' "$1" > "$2" && [ -s "$2" ] || {
        echo "serve-smoke: no adapter in response:"; cat "$1"; exit 1; }
}

echo "serve-smoke: starting faccd"
start_daemon
curl -fsS "http://$ADDR/healthz" > /dev/null
curl -fsS "http://$ADDR/readyz" > /dev/null

echo "serve-smoke: compiling over HTTP, SIGTERM mid-flight"
compile "$TMP/h1" "$TMP/r1" &
CURL=$!
sleep 0.2
kill -TERM "$PID"
wait "$CURL" || { echo "serve-smoke: in-flight request failed during drain"; cat "$TMP/faccd.log"; exit 1; }
wait "$PID" || { echo "serve-smoke: drain was not clean"; cat "$TMP/faccd.log"; exit 1; }
grep -q '"state": "done"' "$TMP/r1" || { echo "serve-smoke: compile not done:"; cat "$TMP/r1"; exit 1; }
adapter_of "$TMP/r1" "$TMP/adapter1"
grep -q 'drained cleanly' "$TMP/faccd.log" || { echo "serve-smoke: no clean-drain message"; cat "$TMP/faccd.log"; exit 1; }

echo "serve-smoke: tearing the cached adapter (simulated crash mid-write)"
DB="$TMP/store/store.db"
[ -s "$DB" ] || { echo "serve-smoke: no store database"; exit 1; }
# Flip bytes inside the B-tree page holding the serialized entry so its
# checksum fails. The last occurrence of the adapter_c JSON key is the
# live copy — earlier ones may be stale copy-on-write page versions.
OFF=$(grep -abo '"adapter_c"' "$DB" | tail -n 1 | cut -d: -f1)
[ -n "$OFF" ] || { echo "serve-smoke: entry bytes not found in store.db"; exit 1; }
printf '\377\377\377\377\377\377\377\377' | dd of="$DB" bs=1 seek="$OFF" conv=notrunc 2>/dev/null
# And tear the WAL: a record whose durability fsync never completed.
printf 'FWAL\377\377\377\377 torn mid-append' >> "$TMP/store/wal.log"

echo "serve-smoke: restarting; the store must recover"
start_daemon
compile "$TMP/h2" "$TMP/r2"
if grep -qi 'x-facc-cache: hit' "$TMP/h2"; then
    echo "serve-smoke: torn entry served from cache"; exit 1
fi
adapter_of "$TMP/r2" "$TMP/adapter2"
cmp -s "$TMP/adapter1" "$TMP/adapter2" || { echo "serve-smoke: recompiled adapter differs"; exit 1; }
[ -n "$(ls -A "$TMP/store/quarantine" 2>/dev/null)" ] || { echo "serve-smoke: torn object not quarantined"; exit 1; }

echo "serve-smoke: healed entry must serve byte-identical from cache"
compile "$TMP/h3" "$TMP/r3"
grep -qi 'x-facc-cache: hit' "$TMP/h3" || { echo "serve-smoke: healed entry not cached"; exit 1; }
adapter_of "$TMP/r3" "$TMP/adapter3"
cmp -s "$TMP/adapter1" "$TMP/adapter3" || { echo "serve-smoke: cached adapter differs"; exit 1; }

echo "serve-smoke: one trace ID must join the header, the journal export and /debug/requests"
TRACE=cafef00dcafef00dcafef00dcafef00d
# A different test count changes the request digest, forcing a fresh
# compile (cache hits never run the pipeline, so they leave no journal
# events or flight record to join).
sed 's/"tests":3/"tests":4/' "$TMP/req.json" > "$TMP/req_trace.json"
curl -fsS -D "$TMP/h4" -o "$TMP/r4" -X POST -H 'Content-Type: application/json' \
    -H "X-Facc-Trace: $TRACE" --data-binary @"$TMP/req_trace.json" \
    "http://$ADDR/compile?wait=1"
grep -qi "x-facc-trace: $TRACE" "$TMP/h4" || { echo "serve-smoke: trace ID not echoed in the response header"; cat "$TMP/h4"; exit 1; }
grep -q "\"trace\": \"$TRACE\"" "$TMP/r4" || { echo "serve-smoke: trace ID not in the job JSON"; cat "$TMP/r4"; exit 1; }
curl -fsS "http://$ADDR/journal" > "$TMP/journal.jsonl"
grep -q "$TRACE" "$TMP/journal.jsonl" || { echo "serve-smoke: trace ID not in the journal export"; exit 1; }
curl -fsS "http://$ADDR/debug/requests" > "$TMP/flight.json"
grep -q "$TRACE" "$TMP/flight.json" || { echo "serve-smoke: trace ID not in /debug/requests"; cat "$TMP/flight.json"; exit 1; }
curl -fsS "http://$ADDR/metrics" | grep -q "facc_ledger_tests_total" \
    || { echo "serve-smoke: /metrics missing the cost ledger exposition"; exit 1; }

kill -TERM "$PID"
wait "$PID" || { echo "serve-smoke: final drain was not clean"; cat "$TMP/faccd.log"; exit 1; }
PID=""
echo "serve-smoke: OK"
