#!/bin/sh
# bench_gate.sh — the performance regression gate.
#
# Measures fresh synthesis and serving benchmarks on this machine, then
# compares them against the committed BENCH_synth.json / BENCH_serve.json
# baselines with `faccbench -experiment benchgate`: a wall-time or
# waste-ratio regression beyond the tolerance fails the build.
#
# Environment:
#   GATE_TOLERANCE   allowed fractional regression (default 0.25 = 25%)
#   GATE_OUT         directory for the fresh artifacts (default a tmpdir;
#                    CI points this at its artifact upload path)
#
# Needs only POSIX sh + the Go toolchain. Run from the repo root:
#     ./scripts/bench_gate.sh
set -eu

TOL="${GATE_TOLERANCE:-0.25}"
OUT="${GATE_OUT:-}"
if [ -z "$OUT" ]; then
    OUT=$(mktemp -d)
    trap 'rm -rf "$OUT"' EXIT INT TERM
else
    mkdir -p "$OUT"
fi

[ -f BENCH_synth.json ] || { echo "bench-gate: no committed BENCH_synth.json baseline"; exit 1; }
[ -f BENCH_serve.json ] || { echo "bench-gate: no committed BENCH_serve.json baseline"; exit 1; }

# The fresh synthesis run also feeds the search observatory: the
# sequential run's kill attribution goes into the artifact's "search"
# section (gated below against the baseline's) and into a crash-safe
# counterexample pool kept alongside the other fresh artifacts.
# -j 4 forces the Workers=4 run even on 1-core machines: the gate's
# ROADMAP floors (Workers=N wall vs Workers=1, cross-target oracle hit
# rate) read the fresh artifact, so it must always carry both runs.
echo "bench-gate: measuring fresh synthesis benchmark"
go run ./cmd/faccbench -experiment synthbench -j 4 \
    -cex-pool "$OUT/counterexamples.jsonl" \
    -bench-out "$OUT/BENCH_synth.json" > "$OUT/synth.txt"
echo "bench-gate: measuring fresh serving benchmark"
go run ./cmd/faccbench -experiment servebench -bench-out "$OUT/BENCH_serve.json" > "$OUT/serve.txt"

echo "bench-gate: comparing against committed baselines (tolerance $TOL)"
go run ./cmd/faccbench -experiment benchgate \
    -gate-tolerance "$TOL" \
    -gate-synth "BENCH_synth.json:$OUT/BENCH_synth.json" \
    -gate-serve "BENCH_serve.json:$OUT/BENCH_serve.json"

echo "bench-gate: OK (fresh artifacts in $OUT)"
