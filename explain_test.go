package facc

import (
	"bytes"
	"strings"
	"testing"
)

// explainGolden pins the full -explain provenance report for a translation
// unit with one rejected candidate region (scale: binds plausibly, fails
// fuzzing with a counterexample) and one replaced region (fft: survives
// fuzzing and is accepted). The journal deliberately records no wall-clock
// timestamps in the report path and the fuzz seed is fixed, so this output
// is byte-stable; if it changes, the provenance semantics changed.
const explainGolden = `provenance: two.c → ffta

function scale — REJECTED (interface-incompatibility)
  bindings: 2 emitted, 2 pruned (range-exp2 ×2)
  candidate 1: in=struct(x,re=0,im=1) out=struct(x,re=0,im=1) len=n(n) inplace
    fuzz: behavior-mismatch after 1 test(s)
    killed by: case 0 (behavior-mismatch)
    counterexample: n=64 input[64]=(1-0.309i) (1.33+0.454i) (1.52+1.21i) (0.148-0.847i)…
  candidate 2: in=struct(x,re=1,im=0) out=struct(x,re=1,im=0) len=n(n) inplace
    fuzz: behavior-mismatch after 1 test(s)
    killed by: case 0 (behavior-mismatch)
    counterexample: n=64 input[64]=(1-0.309i) (1.33+0.454i) (1.52+1.21i) (0.148-0.847i)…

function fft — REPLACED
  bindings: 2 emitted, 2 pruned (range-exp2 ×2)
  candidate 1: in=struct(x,re=0,im=1) out=struct(x,re=0,im=1) len=n(n) inplace
    fuzz: survived after 4 test(s)
    accepted: post=denormalize(*N); check=1
`

func TestExplainReportGolden(t *testing.T) {
	src := `
#include <math.h>
typedef struct { double re; double im; } cpx;
void scale(cpx* x, int n) {
    for (int i = 0; i < n; i++) {
        x[i].re = x[i].re * 2.0;
        x[i].im = x[i].im * 2.0;
    }
}` + strings.TrimPrefix(quickstartSrc, `
#include <math.h>
typedef struct { double re; double im; } cpx;`)

	j := NewJournal()
	res, err := Compile("two.c", src, TargetFFTA, Options{
		ProfileValues: map[string][]int64{"n": {64, 128, 256}},
		NumTests:      4,
		Journal:       j,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() || res.Function() != "fft" {
		t.Fatalf("fixture drifted: ok=%v fn=%q (%s)",
			res.OK(), res.Function(), res.FailReason())
	}

	var buf bytes.Buffer
	if err := j.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != explainGolden {
		t.Errorf("explain report drifted from golden.\n--- got ---\n%s--- want ---\n%s",
			got, explainGolden)
	}

	// The JSONL export of the same journal carries timing (at_us) and
	// sequence numbers that the report elides.
	var jl bytes.Buffer
	if err := j.WriteJSONL(&jl); err != nil {
		t.Fatal(err)
	}
	first, _, _ := strings.Cut(jl.String(), "\n")
	for _, want := range []string{`"seq":1`, `"kind":"compile"`} {
		if !strings.Contains(first, want) {
			t.Errorf("journal JSONL first line missing %s: %s", want, first)
		}
	}
}
