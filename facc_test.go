package facc

import (
	"strings"
	"testing"
	"time"

	"facc/internal/accel"
	"facc/internal/bench"
	"facc/internal/core"
	"facc/internal/minic"
	"facc/internal/synth"
)

const quickstartSrc = `
#include <math.h>
typedef struct { double re; double im; } cpx;
void fft(cpx* x, int n) {
    int j = 0;
    for (int i = 1; i < n; i++) {
        int bit = n >> 1;
        for (; j & bit; bit >>= 1) j ^= bit;
        j |= bit;
        if (i < j) {
            cpx tmp = x[i];
            x[i] = x[j];
            x[j] = tmp;
        }
    }
    for (int len = 2; len <= n; len <<= 1) {
        double ang = -2.0 * M_PI / (double)len;
        for (int i = 0; i < n; i += len) {
            for (int k = 0; k < len / 2; k++) {
                double wre = cos(ang * (double)k);
                double wim = sin(ang * (double)k);
                cpx u = x[i + k];
                cpx v;
                v.re = x[i + k + len / 2].re * wre - x[i + k + len / 2].im * wim;
                v.im = x[i + k + len / 2].re * wim + x[i + k + len / 2].im * wre;
                x[i + k].re = u.re + v.re;
                x[i + k].im = u.im + v.im;
                x[i + k + len / 2].re = u.re - v.re;
                x[i + k + len / 2].im = u.im - v.im;
            }
        }
    }
}`

func TestCompileQuickstart(t *testing.T) {
	res, err := Compile("fft.c", quickstartSrc, TargetFFTA, Options{
		ProfileValues: map[string][]int64{"n": {64, 128, 256}},
		NumTests:      4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("compile failed: %s", res.FailReason())
	}
	if res.Function() != "fft" {
		t.Errorf("replaced %q", res.Function())
	}
	src := res.AdapterC()
	for _, w := range []string{"fft_accel", "accel_cfft", "is_power_of_two"} {
		if !strings.Contains(src, w) {
			t.Errorf("adapter missing %q", w)
		}
	}
	if !strings.Contains(res.String(), "replaced fft") {
		t.Errorf("summary = %q", res.String())
	}
}

func TestCompileUnknownTarget(t *testing.T) {
	if _, err := Compile("x.c", "int f(void){return 0;}", "tpu", Options{}); err == nil {
		t.Error("expected error for unknown target")
	}
}

func TestCompileParseError(t *testing.T) {
	if _, err := Compile("x.c", "int f( {", TargetFFTA, Options{}); err == nil {
		t.Error("expected parse error")
	}
}

func TestTargets(t *testing.T) {
	ts := Targets()
	if len(ts) != 3 {
		t.Fatalf("targets = %v", ts)
	}
}

func TestCorpusAccessors(t *testing.T) {
	if len(Corpus()) != 25 {
		t.Error("corpus size")
	}
	b, err := CorpusBenchmark("dft12")
	if err != nil || b.ID != 17 {
		t.Errorf("CorpusBenchmark: %v %v", b, err)
	}
}

// TestCorpusCompilesToAllTargets is the headline integration test: FACC
// compiles exactly the 18 supported corpus programs on every target and
// classifies the 7 failures into the paper's Fig. 8 categories.
func TestCorpusCompilesToAllTargets(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus compile is slow")
	}
	for _, target := range []string{TargetFFTA, TargetPowerQuad, TargetFFTW} {
		target := target
		t.Run(target, func(t *testing.T) {
			for _, b := range bench.Suite() {
				b := b
				t.Run(b.Name, func(t *testing.T) {
					res, err := Compile(b.File, b.Source(), target, Options{
						Entry:         b.Entry,
						ProfileValues: b.ProfileValues,
						NumTests:      4,
					})
					if err != nil {
						t.Fatalf("pipeline error: %v", err)
					}
					if b.IsSupported() {
						if !res.OK() {
							t.Fatalf("expected success, got failure (%s)", res.FailReason())
						}
						if res.AdapterC() == "" {
							t.Fatal("empty adapter")
						}
						// The emitted adapter must be valid C: append it
						// to the original translation unit and run it
						// back through the frontend.
						combined := b.Source() + "\n" + res.AdapterC()
						if _, err := minic.ParseAndCheck(b.File+"+adapter", combined); err != nil {
							t.Fatalf("emitted adapter does not compile: %v\n%s",
								err, res.AdapterC())
						}
					} else {
						if res.OK() {
							t.Fatalf("expected failure (%s), but compiled", b.Failure)
						}
						if res.FailReason() != string(b.Failure) {
							t.Errorf("failure = %q, want %q", res.FailReason(), b.Failure)
						}
					}
				})
			}
		})
	}
}

// TestClassifierFindsCorpusFFTs: the trained classifier labels corpus FFT
// entry points as FFT candidates.
func TestClassifierFindsCorpusFFTs(t *testing.T) {
	if testing.Short() {
		t.Skip("training is slow")
	}
	clf, err := Train(8, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Compile one benchmark relying on the classifier (no Entry pin).
	b, _ := CorpusBenchmark("iterdit")
	res, err := Compile(b.File, b.Source(), TargetFFTA, Options{
		Classifier:    clf,
		ProfileValues: b.ProfileValues,
		NumTests:      4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("classifier-driven compile failed: %s", res.FailReason())
	}
	if res.Function() != b.Entry {
		t.Errorf("compiled %q, want %q", res.Function(), b.Entry)
	}
}

// TestCandidatesSumsAllFunctions: a translation unit with two candidate
// regions must report the candidates enumerated across BOTH attempted
// functions, not just the winner's (regression: Candidates() used to
// return only the winning/last function's count, under-reporting the
// Fig. 16 metric).
func TestCandidatesSumsAllFunctions(t *testing.T) {
	// scale() binds plausibly (complex array + length) but is not an FFT,
	// so every candidate dies in fuzzing; fft() then compiles. Both are
	// attempted because scale comes first in file order.
	src := `
#include <math.h>
typedef struct { double re; double im; } cpx;
void scale(cpx* x, int n) {
    for (int i = 0; i < n; i++) {
        x[i].re = x[i].re * 2.0;
        x[i].im = x[i].im * 2.0;
    }
}` + strings.TrimPrefix(quickstartSrc, `
#include <math.h>
typedef struct { double re; double im; } cpx;`)
	res, err := Compile("two.c", src, TargetFFTA, Options{
		ProfileValues: map[string][]int64{"n": {64, 128}},
		NumTests:      4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() || res.Function() != "fft" {
		t.Fatalf("expected fft to compile; got ok=%v fn=%q (%s)",
			res.OK(), res.Function(), res.FailReason())
	}
	fns := res.Raw().Functions
	if len(fns) != 2 {
		t.Fatalf("attempted %d functions, want 2", len(fns))
	}
	sum := 0
	winner := 0
	for _, fr := range fns {
		sum += fr.Result.Candidates
		if fr.AdapterC != "" {
			winner = fr.Result.Candidates
		}
	}
	if fns[0].Result.Candidates == 0 {
		t.Fatal("scale enumerated no candidates; test premise broken")
	}
	if got := res.Candidates(); got != sum {
		t.Errorf("Candidates() = %d, want sum %d", got, sum)
	}
	if res.Candidates() <= winner {
		t.Errorf("Candidates() = %d does not exceed winner's %d; rejected region not counted",
			res.Candidates(), winner)
	}
}

// TestReportGolden pins the exact report layout, including the
// microsecond-resolution time column (sub-millisecond stages used to
// print an unhelpful time=0s).
func TestReportGolden(t *testing.T) {
	res := &Result{c: &core.Compilation{
		Target: accel.NewFFTA(),
		Functions: []*core.FunctionResult{
			{
				Function: "slow_path",
				Result: &synth.Result{Candidates: 7, Tested: 7,
					FailReason: "interface-incompatibility"},
				Elapsed: 843 * time.Microsecond,
			},
			{
				Function: "fft",
				Result:   &synth.Result{Candidates: 12, Tested: 9},
				Elapsed:  2500 * time.Millisecond,
			},
		},
	}}
	want := "target: ffta (powers of two in [64, 65536])\n" +
		"slow_path            rejected  candidates=7 tested=7 survivors=0 time=0.84ms reason=interface-incompatibility\n" +
		"fft                  rejected  candidates=12 tested=9 survivors=0 time=2.50s\n"
	if got := res.Report(); got != want {
		t.Errorf("report layout drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestFmtDuration(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{0, "0.00ms"},
		{42 * time.Microsecond, "0.04ms"},
		{843 * time.Microsecond, "0.84ms"},
		{time.Millisecond, "1.00ms"},
		{999500 * time.Microsecond, "999.50ms"},
		{time.Second, "1.00s"},
		{2500 * time.Millisecond, "2.50s"},
	}
	for _, c := range cases {
		if got := fmtDuration(c.d); got != c.want {
			t.Errorf("fmtDuration(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

// TestTracedCompile: a caller-supplied tracer captures the full pipeline
// hierarchy and the per-candidate fuzz spans carry test counts.
func TestTracedCompile(t *testing.T) {
	tr := NewTracer()
	res, err := Compile("fft.c", quickstartSrc, TargetFFTA, Options{
		ProfileValues: map[string][]int64{"n": {64, 128, 256}},
		NumTests:      4,
		Trace:         tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("compile failed: %s", res.FailReason())
	}
	for _, stage := range []string{"parse", "typecheck", "classify", "analyze",
		"binding", "fuzz", "rangecheck", "codegen", "synthesize", "compile"} {
		if len(tr.Find(stage)) == 0 {
			t.Errorf("no %q span recorded", stage)
		}
	}
	for _, fuzz := range tr.Find("fuzz") {
		if fuzz.Attr("tests") == nil || fuzz.Attr("binding") == nil {
			t.Errorf("fuzz span missing tests/binding attributes: %v", fuzz.Attrs)
		}
	}
	if got := tr.Metrics().Counters()["synth.winners"]; got != 1 {
		t.Errorf("synth.winners = %d, want 1", got)
	}
	if tr.Metrics().Counters()["accel.runs.ffta"] == 0 {
		t.Error("accelerator run counter not incremented")
	}
	// The compilation's Elapsed must be the compile span's duration — one
	// code path for experiments and observability.
	if root := tr.Find("compile"); len(root) != 1 || root[0].Dur != res.Raw().Elapsed {
		t.Errorf("Elapsed %v != compile span durations %v", res.Raw().Elapsed, root)
	}
}

func TestReport(t *testing.T) {
	res, err := Compile("fft.c", quickstartSrc, TargetFFTA, Options{
		ProfileValues: map[string][]int64{"n": {64, 128, 256}},
		NumTests:      4,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report()
	for _, w := range []string{"target: ffta", "replaced", "candidates=", "binding:", "post: denormalize(*N)"} {
		if !strings.Contains(rep, w) {
			t.Errorf("report missing %q:\n%s", w, rep)
		}
	}
}
