package facc

import (
	"strings"
	"testing"

	"facc/internal/bench"
	"facc/internal/minic"
)

const quickstartSrc = `
#include <math.h>
typedef struct { double re; double im; } cpx;
void fft(cpx* x, int n) {
    int j = 0;
    for (int i = 1; i < n; i++) {
        int bit = n >> 1;
        for (; j & bit; bit >>= 1) j ^= bit;
        j |= bit;
        if (i < j) {
            cpx tmp = x[i];
            x[i] = x[j];
            x[j] = tmp;
        }
    }
    for (int len = 2; len <= n; len <<= 1) {
        double ang = -2.0 * M_PI / (double)len;
        for (int i = 0; i < n; i += len) {
            for (int k = 0; k < len / 2; k++) {
                double wre = cos(ang * (double)k);
                double wim = sin(ang * (double)k);
                cpx u = x[i + k];
                cpx v;
                v.re = x[i + k + len / 2].re * wre - x[i + k + len / 2].im * wim;
                v.im = x[i + k + len / 2].re * wim + x[i + k + len / 2].im * wre;
                x[i + k].re = u.re + v.re;
                x[i + k].im = u.im + v.im;
                x[i + k + len / 2].re = u.re - v.re;
                x[i + k + len / 2].im = u.im - v.im;
            }
        }
    }
}`

func TestCompileQuickstart(t *testing.T) {
	res, err := Compile("fft.c", quickstartSrc, TargetFFTA, Options{
		ProfileValues: map[string][]int64{"n": {64, 128, 256}},
		NumTests:      4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("compile failed: %s", res.FailReason())
	}
	if res.Function() != "fft" {
		t.Errorf("replaced %q", res.Function())
	}
	src := res.AdapterC()
	for _, w := range []string{"fft_accel", "accel_cfft", "is_power_of_two"} {
		if !strings.Contains(src, w) {
			t.Errorf("adapter missing %q", w)
		}
	}
	if !strings.Contains(res.String(), "replaced fft") {
		t.Errorf("summary = %q", res.String())
	}
}

func TestCompileUnknownTarget(t *testing.T) {
	if _, err := Compile("x.c", "int f(void){return 0;}", "tpu", Options{}); err == nil {
		t.Error("expected error for unknown target")
	}
}

func TestCompileParseError(t *testing.T) {
	if _, err := Compile("x.c", "int f( {", TargetFFTA, Options{}); err == nil {
		t.Error("expected parse error")
	}
}

func TestTargets(t *testing.T) {
	ts := Targets()
	if len(ts) != 3 {
		t.Fatalf("targets = %v", ts)
	}
}

func TestCorpusAccessors(t *testing.T) {
	if len(Corpus()) != 25 {
		t.Error("corpus size")
	}
	b, err := CorpusBenchmark("dft12")
	if err != nil || b.ID != 17 {
		t.Errorf("CorpusBenchmark: %v %v", b, err)
	}
}

// TestCorpusCompilesToAllTargets is the headline integration test: FACC
// compiles exactly the 18 supported corpus programs on every target and
// classifies the 7 failures into the paper's Fig. 8 categories.
func TestCorpusCompilesToAllTargets(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus compile is slow")
	}
	for _, target := range []string{TargetFFTA, TargetPowerQuad, TargetFFTW} {
		target := target
		t.Run(target, func(t *testing.T) {
			for _, b := range bench.Suite() {
				b := b
				t.Run(b.Name, func(t *testing.T) {
					res, err := Compile(b.File, b.Source(), target, Options{
						Entry:         b.Entry,
						ProfileValues: b.ProfileValues,
						NumTests:      4,
					})
					if err != nil {
						t.Fatalf("pipeline error: %v", err)
					}
					if b.IsSupported() {
						if !res.OK() {
							t.Fatalf("expected success, got failure (%s)", res.FailReason())
						}
						if res.AdapterC() == "" {
							t.Fatal("empty adapter")
						}
						// The emitted adapter must be valid C: append it
						// to the original translation unit and run it
						// back through the frontend.
						combined := b.Source() + "\n" + res.AdapterC()
						if _, err := minic.ParseAndCheck(b.File+"+adapter", combined); err != nil {
							t.Fatalf("emitted adapter does not compile: %v\n%s",
								err, res.AdapterC())
						}
					} else {
						if res.OK() {
							t.Fatalf("expected failure (%s), but compiled", b.Failure)
						}
						if res.FailReason() != string(b.Failure) {
							t.Errorf("failure = %q, want %q", res.FailReason(), b.Failure)
						}
					}
				})
			}
		})
	}
}

// TestClassifierFindsCorpusFFTs: the trained classifier labels corpus FFT
// entry points as FFT candidates.
func TestClassifierFindsCorpusFFTs(t *testing.T) {
	if testing.Short() {
		t.Skip("training is slow")
	}
	clf, err := Train(8, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Compile one benchmark relying on the classifier (no Entry pin).
	b, _ := CorpusBenchmark("iterdit")
	res, err := Compile(b.File, b.Source(), TargetFFTA, Options{
		Classifier:    clf,
		ProfileValues: b.ProfileValues,
		NumTests:      4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("classifier-driven compile failed: %s", res.FailReason())
	}
	if res.Function() != b.Entry {
		t.Errorf("compiled %q, want %q", res.Function(), b.Entry)
	}
}

func TestReport(t *testing.T) {
	res, err := Compile("fft.c", quickstartSrc, TargetFFTA, Options{
		ProfileValues: map[string][]int64{"n": {64, 128, 256}},
		NumTests:      4,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report()
	for _, w := range []string{"target: ffta", "replaced", "candidates=", "binding:", "post: denormalize(*N)"} {
		if !strings.Contains(rep, w) {
			t.Errorf("report missing %q:\n%s", w, rep)
		}
	}
}
