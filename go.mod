module facc

go 1.22
