package facc

// Determinism regression: parallel candidate fuzzing must be externally
// unobservable. Compiling the whole supported corpus with Workers=1 and
// Workers=8 must yield byte-identical adapters and an identical provenance
// journal (the winner, its verdicts, and every event up to it — only the
// oracle cache-stats event may differ, since speculative work is real
// work). This is the contract that lets -j default to GOMAXPROCS.

import (
	"fmt"
	"testing"

	"facc/internal/bench"
	"facc/internal/obs"
)

// journalKey renders a journal event for cross-worker-count comparison:
// Seq is re-derived from the filtered position (oracle cache-stats events
// are dropped — their hit/miss split legitimately reflects speculative
// candidates), AtUs is wall-clock and excluded.
func journalKey(events []obs.JournalEvent) []string {
	var keys []string
	for _, ev := range events {
		if ev.Kind == obs.KindOracle {
			continue
		}
		keys = append(keys, fmt.Sprintf("%d|%s|%s|%s|%s|%s|%d|%s|%s",
			len(keys), ev.Kind, ev.Function, ev.Candidate, ev.Heuristic,
			ev.Outcome, ev.Tests, ev.Counterexample, ev.Detail))
	}
	return keys
}

func TestSynthesisDeterminismAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("determinism regression compiles the whole corpus twice; skipped in -short")
	}
	type outcome struct {
		ok      bool
		reason  string
		adapter string
		journal []string
	}
	compileAll := func(workers int) map[string]outcome {
		out := map[string]outcome{}
		for _, bm := range bench.SupportedSuite() {
			for _, target := range differentialTargets {
				j := obs.NewJournal()
				res, err := Compile(bm.File, bm.Source(), target, Options{
					Entry:         bm.Entry,
					ProfileValues: bm.ProfileValues,
					NumTests:      4,
					Workers:       workers,
					Journal:       j,
				})
				if err != nil {
					t.Fatalf("%s/%s workers=%d: %v", bm.Name, target, workers, err)
				}
				o := outcome{ok: res.OK(), journal: journalKey(j.Events())}
				if o.ok {
					o.adapter = res.AdapterC()
				} else {
					o.reason = res.FailReason()
				}
				out[bm.Name+"/"+target] = o
			}
		}
		return out
	}

	seq := compileAll(1)
	par := compileAll(8)

	if len(seq) != len(par) {
		t.Fatalf("outcome count differs: %d sequential vs %d parallel", len(seq), len(par))
	}
	accepted := 0
	for key, s := range seq {
		p := par[key]
		if s.ok != p.ok {
			t.Errorf("%s: OK differs: sequential %v vs workers=8 %v (%s / %s)",
				key, s.ok, p.ok, s.reason, p.reason)
			continue
		}
		if s.adapter != p.adapter {
			t.Errorf("%s: adapter bytes differ between Workers=1 and Workers=8", key)
		}
		if s.ok {
			accepted++
		}
		if len(s.journal) != len(p.journal) {
			t.Errorf("%s: journal length differs: %d vs %d", key, len(s.journal), len(p.journal))
			continue
		}
		for i := range s.journal {
			if s.journal[i] != p.journal[i] {
				t.Errorf("%s: journal event %d differs:\n  workers=1: %s\n  workers=8: %s",
					key, i, s.journal[i], p.journal[i])
				break
			}
		}
	}
	if accepted == 0 {
		t.Fatal("no adapters accepted; determinism check is vacuous")
	}
	t.Logf("determinism verified on %d outcomes (%d accepted adapters)", len(seq), accepted)
}

// fateKey projects a journal down to candidate fates: which candidates
// were emitted, pruned, fuzz-killed, superseded, survived and accepted —
// with the case-level attribution (test count at death, counterexample,
// detail) removed. Counterexample replay exists precisely to kill losers
// at an *earlier* discriminating case, so those fields legitimately vary
// across pool configurations; everything else about the search outcome
// must not.
func fateKey(events []obs.JournalEvent) []string {
	var keys []string
	for _, ev := range events {
		if ev.Kind == obs.KindOracle {
			continue
		}
		keys = append(keys, fmt.Sprintf("%d|%s|%s|%s|%s|%s",
			len(keys), ev.Kind, ev.Function, ev.Candidate, ev.Heuristic, ev.Outcome))
	}
	return keys
}

// TestSynthesisDeterminismMatrix extends the worker-count determinism
// contract to the replay-first search: Workers ∈ {1, 8} × CexPool ∈
// {absent, present-empty (fresh case order), present-primed (replay
// first)}. The invariants, from strongest to weakest:
//
//   - adapters: byte-identical across ALL cells. Replay only permutes
//     each candidate's own deterministic case batch; survival over a
//     fixed case set is order-independent, so the pool can never change
//     which adapter wins.
//   - journals: byte-identical across worker counts within each pool
//     configuration (each compile replays the same pool snapshot), and
//     byte-identical between the absent and present-empty columns (an
//     empty pool has a nil replay rank — exactly the fresh case order).
//   - candidate fates: identical across ALL cells. Only the case-level
//     kill attribution (which discriminating case, after how many
//     tests) may differ under replay — that difference is the speedup.
func TestSynthesisDeterminismMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix compiles the whole corpus seven times; skipped in -short")
	}

	// Prime a pool the way a long-lived -cex-pool file accumulates: one
	// sequential corpus pass recording every kill live.
	primed := NewCexPool()
	for _, bm := range bench.SupportedSuite() {
		for _, target := range differentialTargets {
			if _, err := Compile(bm.File, bm.Source(), target, Options{
				Entry:         bm.Entry,
				ProfileValues: bm.ProfileValues,
				NumTests:      4,
				Workers:       1,
				Cex:           primed,
			}); err != nil {
				t.Fatalf("priming %s/%s: %v", bm.Name, target, err)
			}
		}
	}
	if primed.Len() == 0 {
		t.Fatal("priming recorded no counterexamples; the replay cells would be vacuous")
	}

	type outcome struct {
		ok      bool
		reason  string
		adapter string
		journal []string
		fates   []string
	}
	// pool returns a fresh Options.Cex per compile so every cell's
	// compiles see identical pool state at entry (live recording during
	// one compile must not leak into the next cell's comparison).
	compileAll := func(workers int, pool func() *CexPool) map[string]outcome {
		out := map[string]outcome{}
		for _, bm := range bench.SupportedSuite() {
			for _, target := range differentialTargets {
				j := obs.NewJournal()
				res, err := Compile(bm.File, bm.Source(), target, Options{
					Entry:         bm.Entry,
					ProfileValues: bm.ProfileValues,
					NumTests:      4,
					Workers:       workers,
					Journal:       j,
					Cex:           pool(),
				})
				if err != nil {
					t.Fatalf("%s/%s workers=%d: %v", bm.Name, target, workers, err)
				}
				o := outcome{ok: res.OK(), journal: journalKey(j.Events()),
					fates: fateKey(j.Events())}
				if o.ok {
					o.adapter = res.AdapterC()
				} else {
					o.reason = res.FailReason()
				}
				out[bm.Name+"/"+target] = o
			}
		}
		return out
	}

	noPool := func() *CexPool { return nil }
	emptyPool := func() *CexPool { return NewCexPool() }
	primedPool := func() *CexPool { return primed.Clone() }
	cells := []struct {
		name string
		out  map[string]outcome
	}{
		{"w1/no-pool", compileAll(1, noPool)},
		{"w8/no-pool", compileAll(8, noPool)},
		{"w1/empty-pool", compileAll(1, emptyPool)},
		{"w8/empty-pool", compileAll(8, emptyPool)},
		{"w1/replay", compileAll(1, primedPool)},
		{"w8/replay", compileAll(8, primedPool)},
	}

	base := cells[0].out
	accepted := 0
	for _, o := range base {
		if o.ok {
			accepted++
		}
	}
	if accepted == 0 {
		t.Fatal("no adapters accepted; matrix check is vacuous")
	}

	// Adapters and fates: identical everywhere.
	for _, cell := range cells[1:] {
		for key, b := range base {
			o := cell.out[key]
			if b.ok != o.ok {
				t.Errorf("%s %s: OK differs from w1/no-pool (%v vs %v; %s / %s)",
					cell.name, key, b.ok, o.ok, b.reason, o.reason)
				continue
			}
			if b.adapter != o.adapter {
				t.Errorf("%s %s: adapter bytes differ from w1/no-pool", cell.name, key)
			}
			if len(b.fates) != len(o.fates) {
				t.Errorf("%s %s: fate count differs: %d vs %d",
					cell.name, key, len(b.fates), len(o.fates))
				continue
			}
			for i := range b.fates {
				if b.fates[i] != o.fates[i] {
					t.Errorf("%s %s: candidate fate %d differs:\n  w1/no-pool: %s\n  %s: %s",
						cell.name, key, i, b.fates[i], cell.name, o.fates[i])
					break
				}
			}
		}
	}

	// Journals: byte-identical across worker counts per pool config, and
	// between the no-pool and empty-pool columns.
	sameJournals := func(aName string, a map[string]outcome, bName string, b map[string]outcome) {
		for key, ao := range a {
			bo := b[key]
			if len(ao.journal) != len(bo.journal) {
				t.Errorf("%s vs %s %s: journal length differs: %d vs %d",
					aName, bName, key, len(ao.journal), len(bo.journal))
				continue
			}
			for i := range ao.journal {
				if ao.journal[i] != bo.journal[i] {
					t.Errorf("%s vs %s %s: journal event %d differs:\n  %s\n  %s",
						aName, bName, key, i, ao.journal[i], bo.journal[i])
					break
				}
			}
		}
	}
	sameJournals(cells[0].name, cells[0].out, cells[1].name, cells[1].out) // no-pool: w1 == w8
	sameJournals(cells[2].name, cells[2].out, cells[3].name, cells[3].out) // empty:   w1 == w8
	sameJournals(cells[4].name, cells[4].out, cells[5].name, cells[5].out) // replay:  w1 == w8
	sameJournals(cells[0].name, cells[0].out, cells[2].name, cells[2].out) // empty rank == fresh order

	t.Logf("matrix verified: %d outcomes x %d cells (%d accepted adapters, %d primed counterexamples)",
		len(base), len(cells), accepted, primed.Len())
}
