package facc

// Determinism regression: parallel candidate fuzzing must be externally
// unobservable. Compiling the whole supported corpus with Workers=1 and
// Workers=8 must yield byte-identical adapters and an identical provenance
// journal (the winner, its verdicts, and every event up to it — only the
// oracle cache-stats event may differ, since speculative work is real
// work). This is the contract that lets -j default to GOMAXPROCS.

import (
	"fmt"
	"testing"

	"facc/internal/bench"
	"facc/internal/obs"
)

// journalKey renders a journal event for cross-worker-count comparison:
// Seq is re-derived from the filtered position (oracle cache-stats events
// are dropped — their hit/miss split legitimately reflects speculative
// candidates), AtUs is wall-clock and excluded.
func journalKey(events []obs.JournalEvent) []string {
	var keys []string
	for _, ev := range events {
		if ev.Kind == obs.KindOracle {
			continue
		}
		keys = append(keys, fmt.Sprintf("%d|%s|%s|%s|%s|%s|%d|%s|%s",
			len(keys), ev.Kind, ev.Function, ev.Candidate, ev.Heuristic,
			ev.Outcome, ev.Tests, ev.Counterexample, ev.Detail))
	}
	return keys
}

func TestSynthesisDeterminismAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("determinism regression compiles the whole corpus twice; skipped in -short")
	}
	type outcome struct {
		ok      bool
		reason  string
		adapter string
		journal []string
	}
	compileAll := func(workers int) map[string]outcome {
		out := map[string]outcome{}
		for _, bm := range bench.SupportedSuite() {
			for _, target := range differentialTargets {
				j := obs.NewJournal()
				res, err := Compile(bm.File, bm.Source(), target, Options{
					Entry:         bm.Entry,
					ProfileValues: bm.ProfileValues,
					NumTests:      4,
					Workers:       workers,
					Journal:       j,
				})
				if err != nil {
					t.Fatalf("%s/%s workers=%d: %v", bm.Name, target, workers, err)
				}
				o := outcome{ok: res.OK(), journal: journalKey(j.Events())}
				if o.ok {
					o.adapter = res.AdapterC()
				} else {
					o.reason = res.FailReason()
				}
				out[bm.Name+"/"+target] = o
			}
		}
		return out
	}

	seq := compileAll(1)
	par := compileAll(8)

	if len(seq) != len(par) {
		t.Fatalf("outcome count differs: %d sequential vs %d parallel", len(seq), len(par))
	}
	accepted := 0
	for key, s := range seq {
		p := par[key]
		if s.ok != p.ok {
			t.Errorf("%s: OK differs: sequential %v vs workers=8 %v (%s / %s)",
				key, s.ok, p.ok, s.reason, p.reason)
			continue
		}
		if s.adapter != p.adapter {
			t.Errorf("%s: adapter bytes differ between Workers=1 and Workers=8", key)
		}
		if s.ok {
			accepted++
		}
		if len(s.journal) != len(p.journal) {
			t.Errorf("%s: journal length differs: %d vs %d", key, len(s.journal), len(p.journal))
			continue
		}
		for i := range s.journal {
			if s.journal[i] != p.journal[i] {
				t.Errorf("%s: journal event %d differs:\n  workers=1: %s\n  workers=8: %s",
					key, i, s.journal[i], p.journal[i])
				break
			}
		}
	}
	if accepted == 0 {
		t.Fatal("no adapters accepted; determinism check is vacuous")
	}
	t.Logf("determinism verified on %d outcomes (%d accepted adapters)", len(seq), accepted)
}
