package facc

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"facc/internal/obs"
)

// chaosOptions is the shared baseline: the quickstart program compiled
// against the FFTA with a small but real fuzz budget.
func chaosOptions() Options {
	return Options{
		ProfileValues: map[string][]int64{"n": {64, 128, 256}},
		NumTests:      4,
	}
}

// TestChaosConvergesUnderTransientFaults is the headline robustness
// property: with a seeded 30% transient-fault profile on every
// accelerator call, retries absorb the faults and synthesis converges to
// byte-for-byte the same adapter as the fault-free run.
func TestChaosConvergesUnderTransientFaults(t *testing.T) {
	clean, err := Compile("fft.c", quickstartSrc, TargetFFTA, chaosOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !clean.OK() {
		t.Fatalf("fault-free compile failed: %s", clean.FailReason())
	}

	opts := chaosOptions()
	opts.Faults = &FaultProfile{ErrorRate: 0.3, Seed: 7}
	tr := NewTracer()
	opts.Trace = tr
	faulty, err := Compile("fft.c", quickstartSrc, TargetFFTA, opts)
	if err != nil {
		t.Fatalf("compile under 30%% transient faults: %v", err)
	}
	if !faulty.OK() {
		t.Fatalf("no adapter under faults: %s", faulty.FailReason())
	}
	if faulty.Function() != clean.Function() {
		t.Fatalf("replaced %q under faults, %q without", faulty.Function(), clean.Function())
	}
	if faulty.AdapterC() != clean.AdapterC() {
		t.Fatal("adapter under injected faults differs from the fault-free adapter")
	}
	c := tr.Metrics().Counters()
	if c["accel.faults.injected.transient"] == 0 {
		t.Fatal("the chaos run injected no faults; the test proved nothing")
	}
	if c["accel.retries"] == 0 {
		t.Fatal("faults were injected but nothing retried")
	}
}

// TestChaosDegradesWhenAcceleratorDies: with a 100% error rate the retry
// budget always exhausts, the breaker opens, and the compile still
// succeeds on the software-FFT fallback — graceful degradation, visible
// in the metrics and the provenance journal.
func TestChaosDegradesWhenAcceleratorDies(t *testing.T) {
	base := chaosOptions()
	// Enough IO tests that the accelerator is attempted past the breaker
	// threshold (5 consecutive transient failures) before synthesis stops.
	base.NumTests = 10
	clean, err := Compile("fft.c", quickstartSrc, TargetFFTA, base)
	if err != nil {
		t.Fatal(err)
	}

	opts := base
	opts.Faults = &FaultProfile{ErrorRate: 1, Seed: 3}
	tr := NewTracer()
	j := NewJournal()
	opts.Trace = tr
	opts.Journal = j
	res, err := Compile("fft.c", quickstartSrc, TargetFFTA, opts)
	if err != nil {
		t.Fatalf("compile with a dead accelerator: %v", err)
	}
	if !res.OK() {
		t.Fatalf("no adapter despite software fallback: %s", res.FailReason())
	}
	if res.AdapterC() != clean.AdapterC() {
		t.Fatal("degraded compile produced a different adapter")
	}
	c := tr.Metrics().Counters()
	if c["accel.degraded_runs"] == 0 {
		t.Fatal("accel.degraded_runs = 0: the breaker never degraded")
	}
	if c["accel.breaker.transitions.open"] == 0 {
		t.Fatal("the breaker never opened under 100% faults")
	}
	if c["accel.retry.exhausted"] == 0 {
		t.Fatal("retry budgets never exhausted under 100% faults")
	}
	degraded := false
	for _, ev := range j.Events() {
		if ev.Kind == obs.KindDegraded && ev.Outcome == "open" {
			degraded = true
		}
	}
	if !degraded {
		t.Fatal("journal has no degraded/open event")
	}
}

// TestChaosDeadlineReturnsPromptly: a compile with a 1ms deadline must
// return a context error well within 100ms (the interpreter polls the
// context inside the fuzz loop) and leak no goroutines.
func TestChaosDeadlineReturnsPromptly(t *testing.T) {
	before := runtime.NumGoroutine()

	opts := chaosOptions()
	opts.ProfileValues = map[string][]int64{"n": {256, 512, 1024}}
	opts.NumTests = 50 // enough work that 1ms cannot possibly finish
	opts.Deadline = time.Millisecond
	start := time.Now()
	_, err := Compile("fft.c", quickstartSrc, TargetFFTA, opts)
	elapsed := time.Since(start)

	if err == nil {
		t.Fatal("compile beat a 1ms deadline; expected a context error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error does not unwrap to DeadlineExceeded: %v", err)
	}
	if elapsed > 100*time.Millisecond {
		t.Fatalf("1ms deadline honored only after %v", elapsed)
	}

	// The pipeline is synchronous; the only transient goroutine is the
	// deadline timer's, which cancel() reaps. Allow it a moment to exit.
	settle := time.Now().Add(2 * time.Second)
	after := runtime.NumGoroutine()
	for after > before && time.Now().Before(settle) {
		time.Sleep(10 * time.Millisecond)
		after = runtime.NumGoroutine()
	}
	if after > before {
		t.Fatalf("goroutines leaked across a deadline abort: %d before, %d after", before, after)
	}
}

// TestChaosPreCancelledContext: CompileContext with an already-cancelled
// context returns immediately with an error wrapping context.Canceled.
func TestChaosPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := CompileContext(ctx, "fft.c", quickstartSrc, TargetFFTA, chaosOptions())
	if err == nil {
		t.Fatal("pre-cancelled compile succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not unwrap to context.Canceled: %v", err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("pre-cancelled compile took %v", d)
	}
}

// TestChaosCandidateTimeoutCostsOneCandidate: an unmeetable per-candidate
// budget rejects every candidate ("timeout" verdicts) but never turns
// into a compile-level error — a hung candidate costs a candidate, not
// the compilation.
func TestChaosCandidateTimeoutCostsOneCandidate(t *testing.T) {
	opts := chaosOptions()
	opts.CandidateTimeout = time.Nanosecond
	tr := NewTracer()
	opts.Trace = tr
	res, err := Compile("fft.c", quickstartSrc, TargetFFTA, opts)
	if err != nil {
		t.Fatalf("candidate timeouts escalated into a compile error: %v", err)
	}
	if res.OK() {
		t.Fatal("an adapter survived a 1ns per-candidate budget")
	}
	if tr.Metrics().Counters()["synth.candidate_timeouts"] == 0 {
		t.Fatal("no candidate timeouts counted")
	}

	// A generous budget changes nothing about the result.
	opts = chaosOptions()
	opts.CandidateTimeout = 10 * time.Second
	res, err = Compile("fft.c", quickstartSrc, TargetFFTA, opts)
	if err != nil || !res.OK() {
		t.Fatalf("compile with a generous candidate budget: ok=%v err=%v", res.OK(), err)
	}
}
