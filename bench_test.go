// Package facc_test keeps the evaluation benchmarks outside the facc
// package proper: they depend on internal/eval, which (via the serving
// benchmark's in-process faccd) depends back on facc — legal for an
// external test package, an import cycle for an internal one.
package facc_test

// One testing.B benchmark per table and figure of the paper's evaluation,
// plus ablation benches for the design choices DESIGN.md calls out. Each
// benchmark regenerates its experiment and reports the headline numbers as
// custom metrics, so `go test -bench=.` reproduces the whole evaluation.

import (
	"context"
	"io"
	"testing"

	"facc/internal/accel"
	"facc/internal/analysis"
	"facc/internal/bench"
	"facc/internal/binding"
	"facc/internal/core"
	"facc/internal/eval"
	"facc/internal/minic"
	"facc/internal/synth"
)

// BenchmarkTable1 regenerates the benchmark feature matrix.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eval.Table1(io.Discard)
	}
	var loc int
	for _, bm := range bench.SupportedSuite() {
		loc += bm.LinesOfCode()
	}
	b.ReportMetric(float64(len(bench.SupportedSuite())), "programs")
	b.ReportMetric(float64(loc), "total-loc")
}

func compileOutcomes(b *testing.B, targets []string) []*eval.CompileOutcome {
	b.Helper()
	outcomes, err := eval.CompileAll(context.Background(), targets, 4, nil, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	return outcomes
}

// BenchmarkFig8 regenerates the success/failure classification.
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		outcomes := compileOutcomes(b, []string{"ffta"})
		eval.Fig8(io.Discard, outcomes)
		ok := 0
		for _, oc := range outcomes {
			if oc.OK {
				ok++
			}
		}
		b.ReportMetric(float64(ok)/25, "fraction-supported")
	}
}

// BenchmarkFig9 regenerates the strategy comparison (IDL / ProGraML / FACC).
func BenchmarkFig9(b *testing.B) {
	clf, err := core.TrainClassifier(10, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		outcomes := compileOutcomes(b, []string{"ffta"})
		if err := eval.Fig9(io.Discard, outcomes, clf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10 regenerates the ADSP-board offloading comparison.
func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		prof := eval.NewProfiler()
		if err := eval.Fig10(io.Discard, prof); err != nil {
			b.Fatal(err)
		}
		var dsp, acc []float64
		ffta := accel.NewFFTA()
		for _, bm := range bench.SupportedSuite() {
			m, err := prof.Measure(bm, bm.PerfSize)
			if err != nil {
				b.Fatal(err)
			}
			dsp = append(dsp, eval.DSPSpeedup(m))
			acc = append(acc, eval.Speedup(m, ffta))
		}
		b.ReportMetric(eval.GeoMean(dsp), "dsp-geomean-x")
		b.ReportMetric(eval.GeoMean(acc), "ffta-geomean-x")
	}
}

// BenchmarkFig11 regenerates the classifier cross-validation curves
// (reduced protocol; run cmd/faccbench -experiment fig11 -full for the
// paper-size run).
func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.Fig11(io.Discard, eval.Fig11Config{
			PerClass: 8, Folds: 3, TrainSizes: []int{2, 6}, Seed: 1, MaxEpochs: 30,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].FFTRecallMean, "fft-top3-recall")
		b.ReportMetric(rows[len(rows)-1].Top3Mean, "top3-acc")
	}
}

// BenchmarkFig12 regenerates the IDL pattern-prefix decay.
func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := eval.Fig12(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig13 regenerates the three-platform speedup table.
func BenchmarkFig13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		prof := eval.NewProfiler()
		if err := eval.Fig13(io.Discard, prof); err != nil {
			b.Fatal(err)
		}
		for _, spec := range accel.Specs() {
			var xs []float64
			for _, bm := range bench.SupportedSuite() {
				if !spec.Supports(bm.PerfSize) {
					continue
				}
				m, err := prof.Measure(bm, bm.PerfSize)
				if err != nil {
					b.Fatal(err)
				}
				xs = append(xs, eval.Speedup(m, spec))
			}
			b.ReportMetric(eval.GeoMean(xs), spec.Name+"-geomean-x")
		}
	}
}

// BenchmarkFig14 regenerates the speedup-vs-size sweep.
func BenchmarkFig14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		prof := eval.NewProfiler()
		if err := eval.Fig14(io.Discard, prof); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig15 regenerates the compile-time CDF.
func BenchmarkFig15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		outcomes := compileOutcomes(b, []string{"ffta", "powerquad", "fftw"})
		eval.Fig15(io.Discard, outcomes)
	}
}

// BenchmarkFig16 regenerates the binding-candidate CDF.
func BenchmarkFig16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		outcomes := compileOutcomes(b, []string{"ffta", "powerquad", "fftw"})
		eval.Fig16(io.Discard, outcomes)
		max := map[string]int{}
		for _, oc := range outcomes {
			if oc.Candidates > max[oc.Target] {
				max[oc.Target] = oc.Candidates
			}
		}
		b.ReportMetric(float64(max["ffta"]), "ffta-max-candidates")
		b.ReportMetric(float64(max["fftw"]), "fftw-max-candidates")
	}
}

// ---- Ablations (DESIGN.md "Key design decisions") ----

func ablationSetup(b *testing.B) (*minic.File, *minic.FuncDecl, *analysis.Profile) {
	b.Helper()
	bm, err := bench.ByName("bigmixed") // direction flag + extra scalars
	if err != nil {
		b.Fatal(err)
	}
	f, err := minic.ParseAndCheck(bm.File, bm.Source())
	if err != nil {
		b.Fatal(err)
	}
	return f, f.Func(bm.Entry), core.BuildProfile(bm.ProfileValues)
}

// BenchmarkAblationHeuristics measures the binding search space with and
// without the range/single-read heuristics (design decision 1).
func BenchmarkAblationHeuristics(b *testing.B) {
	f, fn, profile := ablationSetup(b)
	fi := analysis.AnalyzeFunc(f, fn)
	spec := accel.NewFFTWLib()
	var with, without int
	for i := 0; i < b.N; i++ {
		with = len(binding.Enumerate(fi, spec, profile, binding.Options{}))
		without = len(binding.Enumerate(fi, spec, profile, binding.Options{
			DisableRangeHeuristic: true,
			DisableSingleRead:     true,
		}))
	}
	b.ReportMetric(float64(with), "candidates-with-heuristics")
	b.ReportMetric(float64(without), "candidates-without")
}

// BenchmarkAblationIOTests measures how many candidates survive fuzzing as
// the IO-example budget grows (design decision 3).
func BenchmarkAblationIOTests(b *testing.B) {
	f, fn, profile := ablationSetup(b)
	spec := accel.NewPowerQuad()
	for i := 0; i < b.N; i++ {
		for _, tests := range []int{1, 4, 10} {
			res, err := synth.Synthesize(context.Background(), f, fn, spec, profile, synth.Options{
				NumTests:   tests,
				ExhaustAll: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			switch tests {
			case 1:
				b.ReportMetric(float64(res.Survivors), "survivors-1-test")
			case 4:
				b.ReportMetric(float64(res.Survivors), "survivors-4-tests")
			case 10:
				b.ReportMetric(float64(res.Survivors), "survivors-10-tests")
			}
		}
	}
}

// BenchmarkSynthesizeOne measures end-to-end adapter synthesis for a
// mid-size corpus program on each target.
func BenchmarkSynthesizeOne(b *testing.B) {
	bm, err := bench.ByName("iterdit")
	if err != nil {
		b.Fatal(err)
	}
	for _, target := range []string{"ffta", "powerquad", "fftw"} {
		target := target
		b.Run(target, func(b *testing.B) {
			spec, _ := accel.SpecByName(target)
			for i := 0; i < b.N; i++ {
				f, err := minic.ParseAndCheck(bm.File, bm.Source())
				if err != nil {
					b.Fatal(err)
				}
				res, err := synth.Synthesize(context.Background(), f, f.Func(bm.Entry), spec,
					core.BuildProfile(bm.ProfileValues), synth.Options{NumTests: 4})
				if err != nil {
					b.Fatal(err)
				}
				if res.Adapter == nil {
					b.Fatal("no adapter")
				}
			}
		})
	}
}

// BenchmarkInterpreterFFT measures the interpreter executing a 256-point
// corpus FFT (the evaluation's inner loop).
func BenchmarkInterpreterFFT(b *testing.B) {
	bm, err := bench.ByName("iterdit")
	if err != nil {
		b.Fatal(err)
	}
	r, err := bench.NewRunner(bm)
	if err != nil {
		b.Fatal(err)
	}
	in := make([]complex128, 256)
	for i := range in {
		in[i] = complex(float64(i%7), float64(i%5))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(in); err != nil {
			b.Fatal(err)
		}
	}
}
