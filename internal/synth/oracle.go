package synth

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"facc/internal/binding"
	"facc/internal/interp"
	"facc/internal/iogen"
	"facc/internal/minic"
	"facc/internal/obs"
)

// OracleCache memoizes the reference side of generate-and-test: the user
// program's output for one test case. Binding enumeration multiplies
// candidates along accelerator-side axes — direction constants, flags
// specializations, and the *target itself* — that the user program
// cannot observe, so those candidates would re-interpret the same MiniC
// function on the same inputs once each. The cache computes each
// distinct user-side run once and shares it.
//
// The key is target-independent by construction:
//
//	fn=<file/function digest>|<iogen.RefSig(cand)>|io=<iogen.CaseDigest(case)>
//
// RefSig fixes how test bytes are laid out in the user's arrays (array
// layouts, length binding, pins, the free set — everything user-visible
// about the candidate except the spec), and CaseDigest hashes the bytes
// themselves (lengths, scalars, the signal bits). Candidates for
// ffta, powerquad and fftw that agree on both therefore share one entry
// — which is why eval.CompileAll hands all three targets' compiles of a
// program one shared cache instead of re-interpreting it 3×. The
// file/function digest scopes entries so one process-wide cache can
// span files without aliasing (the same source parsed twice hashes
// equal and still shares). Different fuzz seeds draw different signals,
// so their digests — and keys — never collide.
//
// The cached value is exact under the same assumption generate-and-test
// already makes of the reference function: that it is observationally
// deterministic per call (idempotent memoization of twiddle tables and
// the like is fine; interpreter machines keep their globals across runs
// precisely so such caches stay warm).
//
// A nil *OracleCache is not usable; Synthesize builds a private one
// when Options.Oracle is unset, so sharing is strictly opt-in.
type OracleCache struct {
	mu      sync.Mutex
	entries map[string]*oracleEntry

	hits, misses atomic.Int64
}

// NewOracleCache returns an empty cache, ready to be shared across
// Synthesize calls and targets via Options.Oracle.
func NewOracleCache() *OracleCache {
	return &OracleCache{entries: map[string]*oracleEntry{}}
}

// entry returns the slot for key, creating it on first sight.
func (c *OracleCache) entry(key string) *oracleEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[key]
	if e == nil {
		e = &oracleEntry{}
		c.entries[key] = e
	}
	return e
}

// Stats reports cache-wide effectiveness over every lookup this cache
// has served (across all Synthesize calls and targets sharing it).
func (c *OracleCache) Stats() (hits, misses int64, rate float64) {
	hits, misses = c.hits.Load(), c.misses.Load()
	if total := hits + misses; total > 0 {
		rate = float64(hits) / float64(total)
	}
	return hits, misses, rate
}

// FileDigest canonicalizes a parsed file to its printed form and hashes
// it with the function name — the scope prefix of oracle keys. Two
// parses of the same source digest equal, so re-parsed copies of one
// program (eval compiles each benchmark once per target) share entries.
func FileDigest(f *minic.File, fn string) string {
	src := minic.PrintFile(f)
	h := uint64(14695981039346656037)
	for i := 0; i < len(src); i++ {
		h ^= uint64(src[i])
		h *= 1099511628211
	}
	h ^= uint64('|')
	h *= 1099511628211
	for i := 0; i < len(fn); i++ {
		h ^= uint64(fn[i])
		h *= 1099511628211
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return fmt.Sprintf("%016x", h)
}

// oracleKey builds the full target-independent cache key for one
// (candidate, case) reference run.
func oracleKey(fileKey string, cand *binding.Candidate, tc iogen.Case) string {
	return "fn=" + fileKey + "|" + iogen.RefSig(cand) + "|io=" + iogen.CaseDigest(tc)
}

// oracle is one Synthesize call's view of the cache: it owns the
// interpreter machine pool (machines are per-file) and the per-run
// hit/miss counters the journal reports, while the entry map may be
// shared process-wide via Options.Oracle.
//
// Machines are pooled (bounded by the worker count) rather than built
// per candidate: interpreter construction re-runs global initializers,
// and a warm machine carries memoized twiddles across candidates.
// Results of cancelled or timed-out runs are never cached — the next
// candidate recomputes them under its own budget.
type oracle struct {
	f       *minic.File
	fn      *minic.FuncDecl
	fileKey string
	// reg (nil-safe) receives interp.* work counters and the
	// synth.oracle_hits / synth.oracle_misses pairs.
	reg *obs.Registry
	// led (nil-safe) charges each lookup and each miss's interpreter
	// work to the candidate that issued it.
	led *obs.Ledger

	machines chan *interp.Machine // tokens; nil = build lazily on first use

	cache *OracleCache

	hits, misses atomic.Int64 // this Synthesize call's lookups only

	// Blended and per-target lookup counters, resolved once at
	// construction so the per-case path does no map lookups or string
	// concatenation. All candidates of one synthesis share one target.
	hitsCtr, missesCtr       *obs.Counter
	hitsTgtCtr, missesTgtCtr *obs.Counter
}

// oracleEntry is one memoized user-side run. The per-entry mutex (rather
// than sync.Once) keeps the slot retryable: a run aborted by a candidate
// deadline or a panic leaves done=false and the next candidate recomputes.
type oracleEntry struct {
	mu   sync.Mutex
	done bool
	out  []complex128
	ret  *int64
	err  error
}

func newOracle(f *minic.File, fn *minic.FuncDecl, target string, workers int,
	reg *obs.Registry, led *obs.Ledger, shared *OracleCache) *oracle {
	if shared == nil {
		shared = NewOracleCache()
	}
	o := &oracle{
		f:        f,
		fn:       fn,
		fileKey:  FileDigest(f, fn.Name),
		reg:      reg,
		led:      led,
		machines: make(chan *interp.Machine, workers),
		cache:    shared,
	}
	if reg != nil {
		o.hitsCtr = reg.Counter("synth.oracle_hits")
		o.missesCtr = reg.Counter("synth.oracle_misses")
		o.hitsTgtCtr = reg.Counter("synth.oracle_hits." + target)
		o.missesTgtCtr = reg.Counter("synth.oracle_misses." + target)
	}
	for i := 0; i < workers; i++ {
		o.machines <- nil
	}
	return o
}

// acquire takes a machine token from the pool, building the machine on
// first use. It respects ctx so a cancelled candidate does not sit in the
// queue behind long-running reference executions.
func (o *oracle) acquire(ctx context.Context) (*interp.Machine, error) {
	select {
	case m := <-o.machines:
		if m == nil {
			mm, err := interp.NewMachine(o.f)
			if err != nil {
				o.machines <- nil
				return nil, fmt.Errorf("synth: %w", err)
			}
			mm.MaxSteps = 40_000_000
			mm.Obs = o.reg // interp.faults.* attribution (nil-safe)
			m = mm
		}
		return m, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// run returns the user program's output for case tc (the caseIdx-th case
// of cand's generator), computing it at most once per distinct user-side
// run. The returned slice is shared across candidates and must be treated
// as read-only. Interpreter faults (out-of-bounds etc.) are cached too —
// they are deterministic evidence against every candidate with this
// signature — but cancellation/timeout errors are returned uncached.
// steps reports the interpreter steps this call actually spent: the
// miss's run cost, or 0 on a cache hit (shared work was already paid
// for) — the "interp steps at death" the kill table attributes.
func (o *oracle) run(ctx context.Context, cand *binding.Candidate,
	tc iogen.Case, caseIdx int) (out []complex128, ret *int64, steps int64, err error) {
	e := o.cache.entry(oracleKey(o.fileKey, cand, tc))

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.done {
		o.hits.Add(1)
		o.cache.hits.Add(1)
		o.hitsCtr.Inc()
		o.hitsTgtCtr.Inc()
		if o.led != nil {
			// A hit is shared work: some candidate already paid for this
			// reference run; this one reuses it for free.
			o.led.ChargeOracle(o.fn.Name, cand.Spec.Name, cand.Key(), true)
		}
		return e.out, e.ret, 0, e.err
	}
	o.misses.Add(1)
	o.cache.misses.Add(1)
	o.missesCtr.Inc()
	o.missesTgtCtr.Inc()
	if o.led != nil {
		o.led.ChargeOracle(o.fn.Name, cand.Spec.Name, cand.Key(), false)
	}

	m, merr := o.acquire(ctx)
	if merr != nil {
		return nil, nil, 0, merr
	}
	prev := m.TotalCounters()
	m.Ctx = ctx
	defer func() {
		if r := recover(); r != nil {
			// The interpreter panicked mid-run: the machine state is
			// suspect, so drop it and hand the pool a fresh token before
			// re-raising into the candidate's panic shield.
			o.machines <- nil
			panic(r)
		}
		delta := m.TotalCounters().Sub(prev)
		steps = delta.Steps // fills the named result on every miss exit
		o.reg.Counter("interp.ops").Add(delta.Total())
		o.reg.Counter("interp.allocs").Add(delta.Allocs)
		o.reg.Counter("interp.steps").Add(delta.Steps)
		if o.led != nil {
			// The interpreter work of a miss is charged to the candidate
			// that triggered it — later candidates with the same signature
			// hit the cache and share it for free.
			o.led.ChargeInterp(o.fn.Name, cand.Spec.Name, cand.Key(),
				delta.Steps, delta.Total())
		}
		o.machines <- m
	}()
	uout, uret, rerr := runUser(m, o.fn, cand, tc)
	if rerr != nil && (interp.FaultOf(rerr) == interp.FaultCancelled || ctx.Err() != nil) {
		return nil, nil, 0, rerr
	}
	e.done = true
	e.out, e.ret, e.err = uout, uret, rerr
	return uout, uret, 0, rerr
}

// stats reports cache effectiveness for this Synthesize call: hits,
// misses, and the hit rate over its lookups (0 when nothing was looked
// up). Lookups other calls issued against a shared cache are excluded.
func (o *oracle) stats() (hits, misses int64, rate float64) {
	hits, misses = o.hits.Load(), o.misses.Load()
	if total := hits + misses; total > 0 {
		rate = float64(hits) / float64(total)
	}
	return hits, misses, rate
}
