package synth

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"facc/internal/binding"
	"facc/internal/interp"
	"facc/internal/iogen"
	"facc/internal/minic"
	"facc/internal/obs"
)

// oracle memoizes the reference side of generate-and-test: the user
// program's output for one test case. Binding enumeration multiplies
// candidates along accelerator-side axes — direction constants, flags
// specializations — that the user program cannot observe, so those
// candidates would re-interpret the same MiniC function on the same
// inputs once each. The oracle computes each distinct user-side run once
// and shares it.
//
// The cache key is (iogen.UserSig(cand), case index): iogen makes case i a
// pure function of (seed, UserSig, profile, i), so two candidates with
// equal signatures issue byte-identical user runs, and candidates that
// differ in anything the user program can see get distinct keys. The
// cached value is therefore exact, under the same assumption
// generate-and-test already makes of the reference function — that it is
// observationally deterministic per call (idempotent memoization of
// twiddle tables and the like is fine; the interpreter machines keep
// their globals across runs precisely so such caches stay warm).
//
// Machines are pooled (bounded by the worker count) rather than built per
// candidate: interpreter construction re-runs global initializers, and a
// warm machine carries memoized twiddles across candidates. Results of
// cancelled or timed-out runs are never cached — the next candidate
// recomputes them under its own budget.
type oracle struct {
	f  *minic.File
	fn *minic.FuncDecl
	// reg (nil-safe) receives interp.* work counters and the
	// synth.oracle_hits / synth.oracle_misses pairs.
	reg *obs.Registry
	// led (nil-safe) charges each lookup and each miss's interpreter
	// work to the candidate that issued it.
	led *obs.Ledger

	machines chan *interp.Machine // tokens; nil = build lazily on first use

	mu      sync.Mutex
	entries map[string]*oracleEntry

	hits, misses atomic.Int64

	// Blended and per-target lookup counters, resolved once at
	// construction so the per-case path does no map lookups or string
	// concatenation. All candidates of one synthesis share one target.
	hitsCtr, missesCtr       *obs.Counter
	hitsTgtCtr, missesTgtCtr *obs.Counter
}

// oracleEntry is one memoized user-side run. The per-entry mutex (rather
// than sync.Once) keeps the slot retryable: a run aborted by a candidate
// deadline or a panic leaves done=false and the next candidate recomputes.
type oracleEntry struct {
	mu   sync.Mutex
	done bool
	out  []complex128
	ret  *int64
	err  error
}

func newOracle(f *minic.File, fn *minic.FuncDecl, target string, workers int,
	reg *obs.Registry, led *obs.Ledger) *oracle {
	o := &oracle{
		f:        f,
		fn:       fn,
		reg:      reg,
		led:      led,
		machines: make(chan *interp.Machine, workers),
		entries:  map[string]*oracleEntry{},
	}
	if reg != nil {
		o.hitsCtr = reg.Counter("synth.oracle_hits")
		o.missesCtr = reg.Counter("synth.oracle_misses")
		o.hitsTgtCtr = reg.Counter("synth.oracle_hits." + target)
		o.missesTgtCtr = reg.Counter("synth.oracle_misses." + target)
	}
	for i := 0; i < workers; i++ {
		o.machines <- nil
	}
	return o
}

// acquire takes a machine token from the pool, building the machine on
// first use. It respects ctx so a cancelled candidate does not sit in the
// queue behind long-running reference executions.
func (o *oracle) acquire(ctx context.Context) (*interp.Machine, error) {
	select {
	case m := <-o.machines:
		if m == nil {
			mm, err := interp.NewMachine(o.f)
			if err != nil {
				o.machines <- nil
				return nil, fmt.Errorf("synth: %w", err)
			}
			mm.MaxSteps = 40_000_000
			mm.Obs = o.reg // interp.faults.* attribution (nil-safe)
			m = mm
		}
		return m, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// run returns the user program's output for case tc (the caseIdx-th case
// of cand's generator), computing it at most once per distinct user-side
// run. The returned slice is shared across candidates and must be treated
// as read-only. Interpreter faults (out-of-bounds etc.) are cached too —
// they are deterministic evidence against every candidate with this
// signature — but cancellation/timeout errors are returned uncached.
// steps reports the interpreter steps this call actually spent: the
// miss's run cost, or 0 on a cache hit (shared work was already paid
// for) — the "interp steps at death" the kill table attributes.
func (o *oracle) run(ctx context.Context, cand *binding.Candidate,
	tc iogen.Case, caseIdx int) (out []complex128, ret *int64, steps int64, err error) {
	key := fmt.Sprintf("%s|case=%d", iogen.UserSig(cand), caseIdx)
	o.mu.Lock()
	e := o.entries[key]
	if e == nil {
		e = &oracleEntry{}
		o.entries[key] = e
	}
	o.mu.Unlock()

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.done {
		o.hits.Add(1)
		o.hitsCtr.Inc()
		o.hitsTgtCtr.Inc()
		if o.led != nil {
			// A hit is shared work: some candidate already paid for this
			// reference run; this one reuses it for free.
			o.led.ChargeOracle(o.fn.Name, cand.Spec.Name, cand.Key(), true)
		}
		return e.out, e.ret, 0, e.err
	}
	o.misses.Add(1)
	o.missesCtr.Inc()
	o.missesTgtCtr.Inc()
	if o.led != nil {
		o.led.ChargeOracle(o.fn.Name, cand.Spec.Name, cand.Key(), false)
	}

	m, merr := o.acquire(ctx)
	if merr != nil {
		return nil, nil, 0, merr
	}
	prev := m.TotalCounters()
	m.Ctx = ctx
	defer func() {
		if r := recover(); r != nil {
			// The interpreter panicked mid-run: the machine state is
			// suspect, so drop it and hand the pool a fresh token before
			// re-raising into the candidate's panic shield.
			o.machines <- nil
			panic(r)
		}
		delta := m.TotalCounters().Sub(prev)
		steps = delta.Steps // fills the named result on every miss exit
		o.reg.Counter("interp.ops").Add(delta.Total())
		o.reg.Counter("interp.allocs").Add(delta.Allocs)
		o.reg.Counter("interp.steps").Add(delta.Steps)
		if o.led != nil {
			// The interpreter work of a miss is charged to the candidate
			// that triggered it — later candidates with the same signature
			// hit the cache and share it for free.
			o.led.ChargeInterp(o.fn.Name, cand.Spec.Name, cand.Key(),
				delta.Steps, delta.Total())
		}
		o.machines <- m
	}()
	uout, uret, rerr := runUser(m, o.fn, cand, tc)
	if rerr != nil && (interp.FaultOf(rerr) == interp.FaultCancelled || ctx.Err() != nil) {
		return nil, nil, 0, rerr
	}
	e.done = true
	e.out, e.ret, e.err = uout, uret, rerr
	return uout, uret, 0, rerr
}

// stats reports cache effectiveness: hits, misses, and the hit rate over
// all lookups (0 when nothing was looked up).
func (o *oracle) stats() (hits, misses int64, rate float64) {
	hits, misses = o.hits.Load(), o.misses.Load()
	if total := hits + misses; total > 0 {
		rate = float64(hits) / float64(total)
	}
	return hits, misses, rate
}
