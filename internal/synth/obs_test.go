package synth

import (
	"context"
	"fmt"
	"testing"

	"facc/internal/accel"
	"facc/internal/minic"
	"facc/internal/obs"
)

// TestNilObsInstrumentationZeroAllocs asserts the disabled-tracing property
// the fuzz loop relies on: every instrumentation call testCandidate makes —
// child-span creation, attribute chaining, metric lookups, observations,
// End — is a free no-op on a nil span. If any of these ever allocates, the
// hot path pays for observability even when it is switched off.
func TestNilObsInstrumentationZeroAllocs(t *testing.T) {
	var sp *obs.Span
	allocs := testing.AllocsPerRun(500, func() {
		fsp := sp.Child("fuzz").Str("binding", "key").Int("candidate", 1)
		fsp.Str("outcome", "fault").Str("fault", "out-of-bounds")
		m := fsp.Metrics()
		m.Counter("interp.ops").Add(1)
		m.Counter("synth.tests_run").Inc()
		m.Histogram("synth.tests_per_candidate", obs.CountBuckets).Observe(3)
		fsp.Int("tests", 3)
		fsp.End()
	})
	if allocs != 0 {
		t.Errorf("no-op tracer allocates %.0f per fuzz iteration, want 0", allocs)
	}
}

// TestNilJournalZeroAllocs: the provenance journal and cost ledger obey
// the same contract. With neither attached, the verdict helper (the only
// journal/ledger touchpoint on the fuzz hot path) must not allocate —
// counterexample and candidate-key rendering are gated behind the nil
// checks at every call site, and Record on a nil journal is free.
func TestNilJournalZeroAllocs(t *testing.T) {
	var j *obs.Journal
	allocs := testing.AllocsPerRun(500, func() {
		verdict(Options{}, "fft", nil, "survived", 10, "", "")
		j.Record(obs.JournalEvent{Kind: obs.KindFuzz})
	})
	if allocs != 0 {
		t.Errorf("nil journal allocates %.0f per fuzz iteration, want 0", allocs)
	}
}

// TestNilLedgerZeroAllocs: the satellite zero-overhead guarantee — a nil
// (disabled) ledger costs nothing on the hot path. Every ledger method is
// exercised the way the fuzz loop and oracle would call them, through the
// nil-guarded paths that skip key rendering entirely.
func TestNilLedgerZeroAllocs(t *testing.T) {
	var l *obs.Ledger
	allocs := testing.AllocsPerRun(500, func() {
		// The guards the hot path uses before touching the ledger.
		if l != nil {
			t.Fatal("unreachable")
		}
		// And the methods themselves are free even when called.
		l.ChargeTests("fft", "ffta", "key", 10)
		l.ChargeInterp("fft", "ffta", "key", 100, 200)
		l.ChargeOracle("fft", "ffta", "key", true)
		l.SetVerdict("fft", "ffta", "key", "survived")
		l.Scoped("")
	})
	if allocs != 0 {
		t.Errorf("nil ledger allocates %.0f per fuzz iteration, want 0", allocs)
	}
}

// TestSynthesizeWithObsSpan: an attached span yields per-candidate fuzz
// spans (with test counts and outcomes) and the search-space counters.
func TestSynthesizeWithObsSpan(t *testing.T) {
	f, err := minic.ParseAndCheck("t.c", radix2Struct)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.New()
	root := tr.Span("synthesize")
	// Workers: 1 — the span-count assertion (one fuzz span per tested
	// candidate) only holds without speculative parallel candidates.
	res, err := Synthesize(context.Background(), f, f.Func("fft"), accel.NewFFTA(), pow2Profile("n"),
		Options{NumTests: 4, Obs: root, Workers: 1})
	root.End()
	if err != nil {
		t.Fatal(err)
	}
	if res.Adapter == nil {
		t.Fatalf("no adapter: %s", res.FailReason)
	}
	fuzz := tr.Find("fuzz")
	if len(fuzz) != res.Tested {
		t.Fatalf("%d fuzz spans, want one per tested candidate (%d)",
			len(fuzz), res.Tested)
	}
	survived := 0
	for _, sp := range fuzz {
		if sp.Attr("tests") == nil || sp.Attr("outcome") == nil {
			t.Errorf("fuzz span missing attributes: %v", sp.Attrs)
		}
		if sp.Attr("outcome") == "survived" {
			survived++
		}
	}
	if survived != res.Survivors {
		t.Errorf("%d survived spans, want %d", survived, res.Survivors)
	}
	c := tr.Metrics().Counters()
	if c["synth.candidates_tested"] != int64(res.Tested) {
		t.Errorf("synth.candidates_tested = %d, want %d",
			c["synth.candidates_tested"], res.Tested)
	}
	if c["synth.winners"] != 1 {
		t.Errorf("synth.winners = %d, want 1", c["synth.winners"])
	}
	if c["interp.ops"] == 0 {
		t.Error("interpreter op counter not published")
	}
	if c["accel.runs.ffta"] != 0 {
		t.Error("spec not instrumented here; accel counter should be absent")
	}
}

// TestNilKillTableZeroAllocsOnVerdictPath: with no kill table attached,
// the kill-attribution touchpoints on the fuzz hot path must be free —
// recordKill returns before rendering any candidate key or case
// signature (it must not even dereference the candidate), and every
// KillTable method no-ops on nil.
func TestNilKillTableZeroAllocsOnVerdictPath(t *testing.T) {
	var k *obs.KillTable
	allocs := testing.AllocsPerRun(500, func() {
		recordKill(Options{}, "fft", nil, nil, -1, 0, "behavior-mismatch", "")
		k.AddDispatched("fft", "ffta", 1)
		k.AddSurvived("fft", "ffta", 1)
		k.AddSuperseded("fft", "ffta", 1)
		k.AddWinner("fft", "ffta", 1)
	})
	if allocs != 0 {
		t.Errorf("nil kill table allocates %.0f per verdict, want 0", allocs)
	}
}

// TestSynthesizeKillAttribution: with a kill table attached, every
// non-survivor records a kill event consistent with the funnel, the
// journal's "killed by" line, and the case-signature convention.
func TestSynthesizeKillAttribution(t *testing.T) {
	f, err := minic.ParseAndCheck("t.c", radix2Struct)
	if err != nil {
		t.Fatal(err)
	}
	kills := obs.NewKillTable()
	j := obs.NewJournal()
	res, err := Synthesize(context.Background(), f, f.Func("fft"), accel.NewFFTA(), pow2Profile("n"),
		Options{NumTests: 4, Workers: 1, ExhaustAll: true, Kills: kills, Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	if res.Adapter == nil {
		t.Fatalf("no adapter: %s", res.FailReason)
	}
	sum := kills.Summary()
	if sum == nil {
		t.Fatal("no search summary despite attached kill table")
	}
	if sum.Dispatched != int64(res.Tested) {
		t.Errorf("dispatched = %d, want res.Tested = %d", sum.Dispatched, res.Tested)
	}
	if sum.Survived != int64(res.Survivors) {
		t.Errorf("survived = %d, want res.Survivors = %d", sum.Survived, res.Survivors)
	}
	if sum.Winners != 1 {
		t.Errorf("winners = %d, want 1", sum.Winners)
	}
	if sum.Generated < sum.Dispatched {
		t.Errorf("generated (%d) < dispatched (%d): funnel head lost hypotheses",
			sum.Generated, sum.Dispatched)
	}
	// ExhaustAll + Workers=1: nothing superseded, so every dispatched
	// candidate either survived or died with a kill event.
	if got := sum.Killed + sum.Survived; got != sum.Dispatched {
		t.Errorf("killed (%d) + survived (%d) != dispatched (%d)",
			sum.Killed, sum.Survived, sum.Dispatched)
	}

	// Journal cross-check: each fuzz verdict with a mismatch must have a
	// kill event whose 0-based case index is tests-1.
	depthByCand := map[string]int{}
	for _, ev := range kills.Events() {
		if ev.Function != "fft" || ev.Target != "ffta" {
			t.Fatalf("kill event mis-attributed: %+v", ev)
		}
		if ev.Family == "" || ev.Candidate == "" {
			t.Fatalf("kill event missing family/candidate: %+v", ev)
		}
		if ev.CaseIndex >= 0 {
			want := fmt.Sprintf("seed=%d n=%d case=%d", ev.Seed, ev.Len, ev.CaseIndex)
			if ev.CaseSig != want {
				t.Errorf("case sig = %q, want %q", ev.CaseSig, want)
			}
			if ev.Steps <= 0 {
				t.Errorf("kill at case %d charged %d interp steps, want > 0",
					ev.CaseIndex, ev.Steps)
			}
		}
		depthByCand[ev.Candidate] = ev.CaseIndex
	}
	mismatches := 0
	for _, ev := range j.Events() {
		if ev.Kind != obs.KindFuzz || ev.Mismatch == "" {
			continue
		}
		mismatches++
		if got, ok := depthByCand[ev.Candidate]; !ok || got != ev.Tests-1 {
			t.Errorf("journal says %s died at case %d, kill table says %d",
				ev.Candidate, ev.Tests-1, got)
		}
	}
	if mismatches == 0 || int64(mismatches) != sum.Killed {
		t.Errorf("journal mismatch verdicts = %d, kill table killed = %d",
			mismatches, sum.Killed)
	}
}

// TestKillTableDoesNotPerturbSearch: attaching the observatory must not
// change what is synthesized — adapters are byte-identical with and
// without a kill table, at Workers=1 and Workers=8.
func TestKillTableDoesNotPerturbSearch(t *testing.T) {
	f, err := minic.ParseAndCheck("t.c", radix2Struct)
	if err != nil {
		t.Fatal(err)
	}
	var baseline string
	for _, cfg := range []struct {
		workers int
		kills   *obs.KillTable
	}{
		{1, nil}, {1, obs.NewKillTable()}, {8, nil}, {8, obs.NewKillTable()},
	} {
		res, err := Synthesize(context.Background(), f, f.Func("fft"), accel.NewFFTA(),
			pow2Profile("n"), Options{NumTests: 4, Workers: cfg.workers, Kills: cfg.kills})
		if err != nil {
			t.Fatal(err)
		}
		if res.Adapter == nil {
			t.Fatalf("workers=%d kills=%v: no adapter", cfg.workers, cfg.kills != nil)
		}
		key := res.Adapter.Cand.Key()
		if baseline == "" {
			baseline = key
		} else if key != baseline {
			t.Errorf("workers=%d kills=%v: winner %q differs from baseline %q",
				cfg.workers, cfg.kills != nil, key, baseline)
		}
	}
}

// TestKillTableDeterministicSequential: at Workers=1 the kill stream is
// fully deterministic — two runs produce identical events.
func TestKillTableDeterministicSequential(t *testing.T) {
	f, err := minic.ParseAndCheck("t.c", radix2Struct)
	if err != nil {
		t.Fatal(err)
	}
	run := func() []obs.KillEvent {
		k := obs.NewKillTable()
		if _, err := Synthesize(context.Background(), f, f.Func("fft"), accel.NewFFTA(),
			pow2Profile("n"), Options{NumTests: 4, Workers: 1, ExhaustAll: true, Kills: k}); err != nil {
			t.Fatal(err)
		}
		return k.Events()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("event %d differs:\n  %+v\n  %+v", i, a[i], b[i])
		}
	}
}
