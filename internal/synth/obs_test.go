package synth

import (
	"context"
	"testing"

	"facc/internal/accel"
	"facc/internal/minic"
	"facc/internal/obs"
)

// TestNilObsInstrumentationZeroAllocs asserts the disabled-tracing property
// the fuzz loop relies on: every instrumentation call testCandidate makes —
// child-span creation, attribute chaining, metric lookups, observations,
// End — is a free no-op on a nil span. If any of these ever allocates, the
// hot path pays for observability even when it is switched off.
func TestNilObsInstrumentationZeroAllocs(t *testing.T) {
	var sp *obs.Span
	allocs := testing.AllocsPerRun(500, func() {
		fsp := sp.Child("fuzz").Str("binding", "key").Int("candidate", 1)
		fsp.Str("outcome", "fault").Str("fault", "out-of-bounds")
		m := fsp.Metrics()
		m.Counter("interp.ops").Add(1)
		m.Counter("synth.tests_run").Inc()
		m.Histogram("synth.tests_per_candidate", obs.CountBuckets).Observe(3)
		fsp.Int("tests", 3)
		fsp.End()
	})
	if allocs != 0 {
		t.Errorf("no-op tracer allocates %.0f per fuzz iteration, want 0", allocs)
	}
}

// TestNilJournalZeroAllocs: the provenance journal and cost ledger obey
// the same contract. With neither attached, the verdict helper (the only
// journal/ledger touchpoint on the fuzz hot path) must not allocate —
// counterexample and candidate-key rendering are gated behind the nil
// checks at every call site, and Record on a nil journal is free.
func TestNilJournalZeroAllocs(t *testing.T) {
	var j *obs.Journal
	allocs := testing.AllocsPerRun(500, func() {
		verdict(Options{}, "fft", nil, "survived", 10, "", "")
		j.Record(obs.JournalEvent{Kind: obs.KindFuzz})
	})
	if allocs != 0 {
		t.Errorf("nil journal allocates %.0f per fuzz iteration, want 0", allocs)
	}
}

// TestNilLedgerZeroAllocs: the satellite zero-overhead guarantee — a nil
// (disabled) ledger costs nothing on the hot path. Every ledger method is
// exercised the way the fuzz loop and oracle would call them, through the
// nil-guarded paths that skip key rendering entirely.
func TestNilLedgerZeroAllocs(t *testing.T) {
	var l *obs.Ledger
	allocs := testing.AllocsPerRun(500, func() {
		// The guards the hot path uses before touching the ledger.
		if l != nil {
			t.Fatal("unreachable")
		}
		// And the methods themselves are free even when called.
		l.ChargeTests("fft", "ffta", "key", 10)
		l.ChargeInterp("fft", "ffta", "key", 100, 200)
		l.ChargeOracle("fft", "ffta", "key", true)
		l.SetVerdict("fft", "ffta", "key", "survived")
		l.Scoped("")
	})
	if allocs != 0 {
		t.Errorf("nil ledger allocates %.0f per fuzz iteration, want 0", allocs)
	}
}

// TestSynthesizeWithObsSpan: an attached span yields per-candidate fuzz
// spans (with test counts and outcomes) and the search-space counters.
func TestSynthesizeWithObsSpan(t *testing.T) {
	f, err := minic.ParseAndCheck("t.c", radix2Struct)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.New()
	root := tr.Span("synthesize")
	// Workers: 1 — the span-count assertion (one fuzz span per tested
	// candidate) only holds without speculative parallel candidates.
	res, err := Synthesize(context.Background(), f, f.Func("fft"), accel.NewFFTA(), pow2Profile("n"),
		Options{NumTests: 4, Obs: root, Workers: 1})
	root.End()
	if err != nil {
		t.Fatal(err)
	}
	if res.Adapter == nil {
		t.Fatalf("no adapter: %s", res.FailReason)
	}
	fuzz := tr.Find("fuzz")
	if len(fuzz) != res.Tested {
		t.Fatalf("%d fuzz spans, want one per tested candidate (%d)",
			len(fuzz), res.Tested)
	}
	survived := 0
	for _, sp := range fuzz {
		if sp.Attr("tests") == nil || sp.Attr("outcome") == nil {
			t.Errorf("fuzz span missing attributes: %v", sp.Attrs)
		}
		if sp.Attr("outcome") == "survived" {
			survived++
		}
	}
	if survived != res.Survivors {
		t.Errorf("%d survived spans, want %d", survived, res.Survivors)
	}
	c := tr.Metrics().Counters()
	if c["synth.candidates_tested"] != int64(res.Tested) {
		t.Errorf("synth.candidates_tested = %d, want %d",
			c["synth.candidates_tested"], res.Tested)
	}
	if c["synth.winners"] != 1 {
		t.Errorf("synth.winners = %d, want 1", c["synth.winners"])
	}
	if c["interp.ops"] == 0 {
		t.Error("interpreter op counter not published")
	}
	if c["accel.runs.ffta"] != 0 {
		t.Error("spec not instrumented here; accel counter should be absent")
	}
}
