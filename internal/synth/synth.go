// Package synth is FACC's generate-and-test engine (paper §6). It combines
// binding candidates (§5.1), range checks (§5.2) and behavioral sketches
// (§5.3) into candidate adapters, executes the user code in the MiniC
// interpreter against each candidate on random IO examples, and returns the
// unique surviving adapter. Interpreter faults under a candidate (the
// AddressSanitizer role) reject that candidate.
package synth

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"time"

	"facc/internal/accel"
	"facc/internal/analysis"
	"facc/internal/behave"
	"facc/internal/binding"
	"facc/internal/fft"
	"facc/internal/interp"
	"facc/internal/iogen"
	"facc/internal/minic"
	"facc/internal/obs"
	"facc/internal/rangecheck"
)

// Adapter is a validated drop-in replacement: the winning binding, the
// synthesized range check, and the post-behavioral patch.
type Adapter struct {
	FuncName string
	Cand     *binding.Candidate
	Check    *rangecheck.Check
	Post     behave.PostOp

	// ReturnConst is the learned constant return value for non-void user
	// functions (nil when the function returns void).
	ReturnConst *int64

	TestsPassed int
}

// Result reports a synthesis run.
type Result struct {
	Adapter *Adapter // nil when no candidate survived

	Candidates  int // bindings enumerated (paper Fig. 16)
	Tested      int // bindings actually fuzz-tested before success
	Survivors   int // bindings that passed all tests (ties broken by priority)
	TestsPerRun int
	FailReason  string // classification when Adapter == nil
}

// Options tunes the engine.
type Options struct {
	NumTests  int     // IO examples per candidate (default 10)
	Tolerance float64 // relative comparison tolerance (default 1e-3)
	Seed      int64
	Binding   binding.Options
	// CandidateTimeout is the wall-clock budget for fuzzing one candidate
	// (the interpreter polls it alongside its step fuel). A candidate that
	// exceeds it is rejected with a "timeout" verdict and synthesis moves
	// on — one hung candidate costs one candidate, not the compile. Zero
	// disables the per-candidate budget.
	CandidateTimeout time.Duration
	// StopAtFirst stops at the first surviving candidate (default true
	// behavior is used when false too — survivors are still counted only
	// among tested candidates when this is set).
	ExhaustAll bool
	// Workers bounds candidate-level parallelism: up to Workers binding
	// candidates are fuzz-tested concurrently, sharing one reference-
	// oracle cache. 0 (the default) means GOMAXPROCS; 1 is fully
	// sequential. The Result, the generated adapter and the journaled
	// verdicts are deterministic — identical for every Workers value —
	// because the pool resolves candidates in enumeration order (see
	// pool.go); only metrics counters and span counts reflect the extra
	// speculative work.
	Workers int
	// Obs is the enclosing pipeline span: analysis, binding enumeration,
	// per-candidate fuzzing and range-check synthesis report as children
	// of it. Nil (the default) disables tracing with zero overhead — no
	// allocations — on the generate-and-test hot path.
	Obs *obs.Span
	// Journal, when non-nil, records each candidate's lifecycle — gate
	// verdicts, emitted/pruned bindings, fuzz verdicts with the first
	// counterexample input on failure, and the accepted adapter. Nil (the
	// default) costs nothing.
	Journal *obs.Journal
	// Ledger, when non-nil, charges every interpreter test, interpreter
	// step and oracle lookup to the candidate that caused it, with the
	// candidate's final verdict separating useful work (the winner) from
	// speculative waste (losers). Every call site guards with a nil check
	// before rendering the candidate key, so nil (the default) allocates
	// nothing on the hot path.
	Ledger *obs.Ledger
	// Kills, when non-nil, records the search observatory: every
	// non-survivor's death attributed to the discriminating IO case
	// (seed, case index, interp steps at death, mismatch kind, binding
	// family) as an obs.KillEvent, plus the per-(function, target)
	// search funnel. Like the ledger — and unlike the journal — it
	// records speculative parallel work as it happens, because wasted
	// kills are the search-economics signal it exists to measure. Every
	// call site guards with a nil check before rendering keys, so nil
	// (the default) allocates nothing on the verdict path.
	Kills *obs.KillTable
	// Oracle, when non-nil, is a shared reference-run cache: its keys
	// are target-independent (see OracleCache), so one cache handed to
	// the ffta, powerquad and fftw compiles of the same program
	// interprets each distinct user-side run once instead of three
	// times. Nil builds a private per-call cache — today's semantics,
	// no sharing. Sharing never changes results: an entry's value is a
	// pure function of its key.
	Oracle *OracleCache
	// Cex, when non-nil, makes search counterexample-guided, in both
	// directions. Read side: the pool's ranking is snapshotted once per
	// Synthesize and each candidate's own generated case batch is
	// reordered so previously-discriminating cases run first — a loser
	// dies on its first case instead of after a warm-up of passes.
	// Write side: every case-attributed kill is recorded back into the
	// pool live (RecordKill), so rank state compounds across functions,
	// targets and — in a daemon — requests, without waiting for a
	// flush. Replay only permutes a candidate's own cases, never
	// injects foreign ones, so the surviving adapter is byte-identical
	// with or without a pool (survival over a fixed case set is
	// order-independent); what changes is which case gets the kill
	// credit, and how soon.
	Cex *obs.CexPool
}

func (o *Options) defaults() {
	if o.NumTests == 0 {
		o.NumTests = 10
	}
	if o.Tolerance == 0 {
		o.Tolerance = 2e-3
	}
	if o.Seed == 0 {
		o.Seed = 424242
	}
}

// Synthesize builds an adapter binding fn (in file f) to spec. ctx
// cancels the whole run: it is checked between candidates and polled by
// the interpreter inside each one, so cancellation returns promptly with
// an error wrapping ctx.Err().
func Synthesize(ctx context.Context, f *minic.File, fn *minic.FuncDecl,
	spec *accel.Spec, profile *analysis.Profile, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts.defaults()
	opts.Journal.Record(obs.JournalEvent{Kind: obs.KindFunction,
		Function: fn.Name, Detail: spec.Name})
	asp := opts.Obs.Child("analyze")
	fi := analysis.AnalyzeFunc(f, fn)
	asp.End()
	res := &Result{TestsPerRun: opts.NumTests}
	gate := ""
	switch {
	case fi.CallsPrintf:
		gate = "printf"
	case fi.UsesVoidPtr:
		gate = "void-pointer"
	case fi.NestedPointer:
		gate = "nested-memory"
	}
	if gate != "" {
		res.FailReason = gate
		opts.Journal.Record(obs.JournalEvent{Kind: obs.KindGate,
			Function: fn.Name, Heuristic: gate})
		return res, nil
	}
	bopts := opts.Binding
	bopts.Journal = opts.Journal
	bopts.Kills = opts.Kills
	if opts.Obs != nil {
		bopts.Obs = opts.Obs.Metrics()
	}
	bsp := opts.Obs.Child("binding")
	cands := binding.Enumerate(fi, spec, profile, bopts)
	bsp.Int("candidates", int64(len(cands))).End()
	res.Candidates = len(cands)
	if len(cands) == 0 {
		res.FailReason = "interface-incompatibility"
		return res, nil
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var reg *obs.Registry
	if opts.Obs != nil {
		reg = opts.Obs.Metrics()
	}
	orc := newOracle(f, fn, spec.Name, workers, reg, opts.Ledger, opts.Oracle)
	// One ranking snapshot per synthesis: kills recorded during this run
	// feed the live pool (for the next function/request) but never
	// reorder this run's own cases, so replay order — and the journal —
	// is a pure function of the pool state at entry.
	replay := opts.Cex.ReplayRank()
	winner, tested, survivors, err := runCandidates(ctx, fn, cands, profile, opts, orc, replay, workers)
	if err != nil {
		return nil, err
	}
	res.Tested, res.Survivors = tested, survivors
	if hits, misses, rate := orc.stats(); opts.Journal != nil && hits+misses > 0 {
		opts.Journal.Record(obs.JournalEvent{Kind: obs.KindOracle,
			Function: fn.Name,
			Detail: fmt.Sprintf("reference runs: %d hits, %d misses (%.0f%% hit rate)",
				hits, misses, 100*rate)})
	}
	if opts.Obs != nil {
		m := opts.Obs.Metrics()
		m.Counter("synth.candidates_tested").Add(int64(res.Tested))
		m.Counter("synth.survivors").Add(int64(res.Survivors))
	}
	if winner == nil {
		res.FailReason = "interface-incompatibility"
		return res, nil
	}
	rsp := opts.Obs.Child("rangecheck")
	winner.Check = rangecheck.Build(winner.Cand, profile)
	rsp.End()
	res.Adapter = winner
	if opts.Ledger != nil {
		// Reclassify the deterministic winner's account from "survived"
		// to "winner": its tests/steps become the useful-work baseline
		// every other candidate's charges are waste against.
		opts.Ledger.SetVerdict(fn.Name, spec.Name, winner.Cand.Key(), obs.VerdictWinner)
	}
	opts.Kills.AddWinner(fn.Name, spec.Name, 1)
	opts.Obs.Metrics().Counter("synth.winners").Inc()
	if opts.Journal != nil {
		opts.Journal.Record(obs.JournalEvent{Kind: obs.KindAccepted,
			Function: fn.Name, Candidate: winner.Cand.Key(),
			Tests: winner.TestsPassed,
			Detail: fmt.Sprintf("post=%s; check=%s", winner.Post,
				winner.Check.CCondition(lenCExpr(winner.Cand.Length)))})
	}
	return res, nil
}

// lenCExpr renders a length binding as the C expression the generated
// adapter guards on (mirrors codegen's lengthExpr), so journal "accepted"
// events show the range check in the user's own terms.
func lenCExpr(lb binding.LengthBinding) string {
	if lb.Param == "" {
		return fmt.Sprintf("%d", lb.Const)
	}
	if lb.Conv == binding.ConvExp2 {
		return fmt.Sprintf("(1 << %s)", lb.Param)
	}
	return lb.Param
}

// verdict records one candidate's generate-and-test outcome in the
// journal and as the candidate's final ledger verdict. The binding key
// and counterexample are only rendered when a sink is attached, so the
// disabled path stays allocation-free.
func verdict(opts Options, fn string, cand *binding.Candidate,
	outcome string, tests int, cex, detail string) {
	if opts.Ledger != nil {
		opts.Ledger.SetVerdict(fn, cand.Spec.Name, cand.Key(), outcome)
	}
	if opts.Journal == nil {
		return
	}
	ev := obs.JournalEvent{Kind: obs.KindFuzz, Function: fn,
		Candidate: cand.Key(), Outcome: outcome, Tests: tests,
		Counterexample: cex, Detail: detail}
	if outcome != "survived" && tests > 0 {
		// The kill is attributable to the last case run (0-based index
		// tests-1); stamp the mismatch kind so -explain's "killed by"
		// line and the kill table tell the same story.
		ev.Mismatch = outcome
		if outcome == "fault" {
			ev.Mismatch = detail // the fault kind, e.g. out-of-bounds
		}
	}
	opts.Journal.Record(ev)
}

// recordKill attributes one candidate's death to the discriminating IO
// case in the kill table and — when a counterexample pool is attached —
// feeds the kill back into the pool live, so the case's rank reflects
// it before the next synthesis snapshots the pool. Every caller guards
// with killSinks(opts), so the disabled path renders no keys and
// allocates nothing; tc is nil (and caseIdx -1) when no single case is
// attributable.
func recordKill(opts Options, fn string, cand *binding.Candidate,
	tc *iogen.Case, caseIdx int, steps int64, mismatch, detail string) {
	if !killSinks(opts) {
		return
	}
	ev := obs.KillEvent{
		Function:  fn,
		Target:    cand.Spec.Name,
		Candidate: cand.Key(),
		Family:    iogen.UserSig(cand),
		Seed:      opts.Seed,
		CaseIndex: caseIdx,
		Steps:     steps,
		Mismatch:  mismatch,
		Detail:    detail,
	}
	if tc != nil && caseIdx >= 0 {
		ev.CaseSig = iogen.CaseSig(opts.Seed, tc.AccelLen, caseIdx)
		ev.Len = tc.AccelLen
		opts.Cex.RecordKill(ev.CaseSig, opts.Seed, tc.AccelLen, caseIdx,
			ev.Family, ev.Target)
	}
	if opts.Kills != nil {
		opts.Kills.Record(ev)
	}
}

// killSinks reports whether any kill-attribution sink is attached.
func killSinks(opts Options) bool { return opts.Kills != nil || opts.Cex != nil }

// renderCase renders a failing IO example compactly: the length binding's
// user and accelerator values, every scalar assignment (sorted), and the
// head of the input signal. Deterministic for fixed fuzz seeds.
func renderCase(tc iogen.Case) string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d", tc.UserLen)
	if tc.AccelLen != tc.UserLen {
		fmt.Fprintf(&b, " (accel_len=%d)", tc.AccelLen)
	}
	keys := make([]string, 0, len(tc.Scalars))
	for k := range tc.Scalars {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%d", k, tc.Scalars[k])
	}
	fmt.Fprintf(&b, " input[%d]=", len(tc.Input))
	for i, v := range tc.Input {
		if i == 4 {
			b.WriteString("…")
			break
		}
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "(%.3g%+.3gi)", real(v), imag(v))
	}
	return b.String()
}

// replayOrder returns the execution order for one candidate's case
// batch: cases the counterexample pool ranks (matched by CaseSig) run
// first, most-discriminating first, followed by the remaining fresh
// cases in their natural smallest-first order. Only the candidate's own
// generated cases are permuted — replay never injects an input the
// candidate would not have drawn itself — so which candidates survive
// (and therefore the winning adapter) is unchanged by construction:
// survival requires passing the whole fixed set, and sketch pruning is
// a set intersection. What replay changes is how soon a loser meets
// the case that kills it. Pool signatures that match nothing here —
// hostile strings, other seeds, other lengths — simply rank nothing.
func replayOrder(cases []iogen.Case, replay map[string]int, seed int64) []int {
	order := make([]int, len(cases))
	for i := range order {
		order[i] = i
	}
	if len(replay) == 0 {
		return order
	}
	const unranked = math.MaxInt
	rank := make([]int, len(cases))
	for i, tc := range cases {
		r, ok := replay[iogen.CaseSig(seed, tc.AccelLen, i)]
		if !ok {
			r = unranked
		}
		rank[i] = r
	}
	sort.SliceStable(order, func(a, b int) bool { return rank[order[a]] < rank[order[b]] })
	return order
}

// evalCandidate runs one candidate's fuzz evaluation inside the fault
// boundary: a per-candidate deadline (opts.CandidateTimeout) and a panic
// shield. A candidate that times out or panics is rejected — journaled
// with a "timeout"/"panic" verdict — and synthesis continues; only a
// cancellation of the enclosing runCtx aborts the whole run. candCtx is
// the pool's per-candidate context (== runCtx when sequential): when it
// was cancelled with cause errSuperseded, an earlier candidate already
// won and the verdict is returned as errSuperseded for the pool to
// discard, rather than being misclassified as a timeout.
func evalCandidate(runCtx, candCtx context.Context, fn *minic.FuncDecl,
	cand *binding.Candidate, profile *analysis.Profile, opts Options,
	sp *obs.Span, orc *oracle, replay map[string]int) (ad *Adapter, err error) {
	cctx := candCtx
	if opts.CandidateTimeout > 0 {
		var cancel context.CancelFunc
		cctx, cancel = context.WithTimeout(candCtx, opts.CandidateTimeout)
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			// Panic isolation: a crashing candidate costs one candidate,
			// not the process. FaultPanic classifies it in provenance.
			ad, err = nil, nil
			sp.Str("outcome", "panic")
			if opts.Obs != nil {
				opts.Obs.Metrics().Counter("synth.panics").Inc()
			}
			verdict(opts, fn.Name, cand, interp.FaultPanic.String(), 0, "",
				fmt.Sprintf("recovered: %v", r))
			if killSinks(opts) {
				recordKill(opts, fn.Name, cand, nil, -1, 0,
					interp.FaultPanic.String(), fmt.Sprintf("recovered: %v", r))
			}
		}
	}()
	ad, err = testCandidate(cctx, fn, cand, profile, opts, sp, orc, replay)
	if err != nil && (interp.FaultOf(err) == interp.FaultCancelled ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		if cerr := runCtx.Err(); cerr != nil {
			// The compilation itself was cancelled — propagate.
			return nil, fmt.Errorf("synth: %s: %w", fn.Name, cerr)
		}
		if errors.Is(context.Cause(candCtx), errSuperseded) {
			// An earlier candidate survived while this one was running;
			// its outcome is discarded from the journal, but the ledger
			// keeps the account — superseded work is exactly the
			// speculative waste it exists to measure.
			sp.Str("outcome", "superseded")
			if opts.Ledger != nil {
				opts.Ledger.SetVerdict(fn.Name, cand.Spec.Name, cand.Key(), "superseded")
			}
			opts.Kills.AddSuperseded(fn.Name, cand.Spec.Name, 1)
			return nil, errSuperseded
		}
		// Only the per-candidate budget expired: reject this candidate.
		sp.Str("outcome", "timeout")
		if opts.Obs != nil {
			opts.Obs.Metrics().Counter("synth.candidate_timeouts").Inc()
		}
		verdict(opts, fn.Name, cand, "timeout", 0, "",
			fmt.Sprintf("candidate exceeded its %s budget", opts.CandidateTimeout))
		if killSinks(opts) {
			recordKill(opts, fn.Name, cand, nil, -1, 0, "timeout", "")
		}
		return nil, nil
	}
	return ad, err
}

// testCandidate fuzz-tests one binding candidate. It returns a validated
// adapter, or nil when the candidate is behaviorally wrong or faults; a
// FaultCancelled interpreter error propagates so evalCandidate can
// distinguish a candidate timeout from a compilation cancel. sp (may be
// nil) receives test-count/outcome attributes; reference executions run
// on orc's shared machine pool, which attributes interpreter counters.
func testCandidate(ctx context.Context, fn *minic.FuncDecl,
	cand *binding.Candidate, profile *analysis.Profile, opts Options,
	sp *obs.Span, orc *oracle, replay map[string]int) (*Adapter, error) {
	opts.Kills.AddDispatched(fn.Name, cand.Spec.Name, 1)
	gen := iogen.New(opts.Seed, cand, profile)
	if !gen.Viable() {
		sp.Str("outcome", "not-viable")
		verdict(opts, fn.Name, cand, "not-viable", 0, "",
			"no test sizes inside the accelerator domain")
		if killSinks(opts) {
			recordKill(opts, fn.Name, cand, nil, -1, 0, "not-viable",
				"no test sizes inside the accelerator domain")
		}
		return nil, nil
	}
	cases := gen.Cases(opts.NumTests)
	order := replayOrder(cases, replay, opts.Seed)

	// All post-behavioral sketches start alive; each case prunes.
	alive := behave.Sketches()

	ran := 0
	if sp != nil {
		defer func() {
			sp.Int("tests", int64(ran))
			m := sp.Metrics()
			m.Counter("synth.tests_run").Add(int64(ran))
			m.Histogram("synth.tests_per_candidate", obs.CountBuckets).
				Observe(float64(ran))
		}()
	}
	if opts.Ledger != nil {
		// Charged on every exit path — a candidate killed mid-case still
		// pays for the cases it ran; that is the speculative waste the
		// ledger measures.
		defer func() {
			opts.Ledger.ChargeTests(fn.Name, cand.Spec.Name, cand.Key(), int64(ran))
		}()
	}

	var returnVals []int64
	var returnCases []int // original case index per returnVals entry (kill sinks only)
	sawReturn := false
	var steps int64 // interp steps this candidate paid, so far

	for _, caseIdx := range order {
		tc := cases[caseIdx]
		// Accelerator retries/backoff can dominate a case under fault
		// injection, so honor the deadline between cases too, not just
		// inside the interpreter.
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("synth: candidate evaluation cancelled: %w", err)
		}
		ran++
		userOut, retVal, ranSteps, runErr := orc.run(ctx, cand, tc, caseIdx)
		steps += ranSteps
		if runErr != nil {
			if interp.FaultOf(runErr) == interp.FaultCancelled {
				// Deadline/cancel, not evidence against the binding —
				// let evalCandidate classify it.
				return nil, runErr
			}
			// Interpreter fault (OOB, etc.) — wrong binding.
			sp.Str("outcome", "fault").Str("fault", interp.FaultOf(runErr).String())
			if opts.Journal != nil || opts.Ledger != nil {
				cex := ""
				if opts.Journal != nil {
					cex = renderCase(tc)
				}
				verdict(opts, fn.Name, cand, "fault", ran, cex,
					interp.FaultOf(runErr).String())
			}
			if killSinks(opts) {
				recordKill(opts, fn.Name, cand, &tc, caseIdx, steps,
					interp.FaultOf(runErr).String(), "")
			}
			return nil, nil
		}
		if retVal != nil {
			sawReturn = true
			returnVals = append(returnVals, *retVal)
			if killSinks(opts) {
				returnCases = append(returnCases, caseIdx)
			}
		}
		accelOut, err := runAccel(cand, tc)
		if err != nil {
			// The accelerator rejected the input (should not happen for
			// generated cases); treat as candidate failure.
			sp.Str("outcome", "domain-error")
			if opts.Journal != nil || opts.Ledger != nil {
				cex := ""
				if opts.Journal != nil {
					cex = renderCase(tc)
				}
				verdict(opts, fn.Name, cand, "domain-error", ran, cex, err.Error())
			}
			if killSinks(opts) {
				recordKill(opts, fn.Name, cand, &tc, caseIdx, steps,
					"domain-error", err.Error())
			}
			return nil, nil
		}
		var next []behave.PostOp
		for _, op := range alive {
			patched := append([]complex128(nil), accelOut...)
			op.Apply(patched)
			if vectorsClose(userOut, patched, opts.Tolerance) {
				next = append(next, op)
			}
		}
		alive = next
		if len(alive) == 0 {
			sp.Str("outcome", "behavior-mismatch")
			if opts.Journal != nil || opts.Ledger != nil {
				cex := ""
				if opts.Journal != nil {
					cex = renderCase(tc)
				}
				verdict(opts, fn.Name, cand, "behavior-mismatch", ran, cex,
					"no post-behavioral sketch reproduces the user output")
			}
			if killSinks(opts) {
				recordKill(opts, fn.Name, cand, &tc, caseIdx, steps,
					"behavior-mismatch", "")
			}
			return nil, nil
		}
	}

	ad := &Adapter{
		FuncName:    fn.Name,
		Cand:        cand,
		Post:        alive[0], // identity-first canonical order
		TestsPassed: len(cases),
	}
	if cand.ReturnIgnored && sawReturn {
		c := returnVals[0]
		for i, v := range returnVals {
			if v != c {
				// Return value depends on input; cannot reproduce.
				sp.Str("outcome", "return-mismatch")
				if opts.Journal != nil || opts.Ledger != nil {
					verdict(opts, fn.Name, cand, "return-mismatch", ran, "",
						fmt.Sprintf("return value varies across inputs (%d vs %d)", c, v))
				}
				if killSinks(opts) {
					// The discriminating case is the one whose return value
					// first differed from the first-run case's.
					kc := returnCases[i]
					recordKill(opts, fn.Name, cand, &cases[kc], kc, steps,
						"return-mismatch", "")
				}
				return nil, nil
			}
		}
		ad.ReturnConst = &c
	}
	sp.Str("outcome", "survived")
	verdict(opts, fn.Name, cand, "survived", len(cases), "", "")
	opts.Kills.AddSurvived(fn.Name, cand.Spec.Name, 1)
	return ad, nil
}

// runUser executes the user function under the candidate's interpretation
// and returns the decoded complex output.
func runUser(m *interp.Machine, fn *minic.FuncDecl, cand *binding.Candidate,
	tc iogen.Case) ([]complex128, *int64, error) {
	m.Reset() // fresh fuel and counters per case; globals persist
	n := int(tc.AccelLen)
	args := make([]interp.Value, len(fn.Params))
	arrays := map[string]interp.Value{}

	// Allocate and fill arrays mentioned by the binding; unbound pointer
	// parameters get zeroed scratch of the same element count.
	inParams := map[string]bool{}
	for _, p := range cand.Input.Params() {
		inParams[p] = true
	}
	outParams := map[string]bool{}
	for _, p := range cand.Output.Params() {
		outParams[p] = true
	}

	for i, prm := range fn.Params {
		pt := prm.Type.Decay()
		switch {
		case pt.Kind == minic.TPointer:
			elem := pt.Elem
			arr, err := m.NewArray(prm.Name, elem, n)
			if err != nil {
				return nil, nil, err
			}
			arrays[prm.Name] = arr
			args[i] = arr
		case pt.IsInteger():
			v := tc.Scalars[prm.Name]
			if prm.Name == cand.Length.Param {
				v = tc.UserLen
			}
			args[i] = interp.Value{K: interp.VInt, T: pt, I: v}
		case pt.IsFloat():
			args[i] = interp.FloatValue(0, pt)
		default:
			args[i] = interp.Value{K: interp.VInt, T: minic.Int}
		}
	}

	// Encode the input signal through the candidate's layout.
	if err := writeArray(m, cand.Input, arrays, tc.Input); err != nil {
		return nil, nil, err
	}

	ret, err := m.Call(fn, args)
	if err != nil {
		return nil, nil, err
	}
	out, err := readArray(m, cand.Output, arrays, n)
	if err != nil {
		return nil, nil, err
	}
	var retConst *int64
	if fn.Type.Ret.Kind != minic.TVoid && ret.K == interp.VInt {
		v := ret.I
		retConst = &v
	}
	return out, retConst, nil
}

// writeArray encodes vals into the user arrays per the binding layout.
func writeArray(m *interp.Machine, b binding.ArrayBinding,
	arrays map[string]interp.Value, vals []complex128) error {
	switch b.Layout {
	case binding.LayoutC99:
		return m.SetComplexArray(arrays[b.Param], vals)
	case binding.LayoutStruct:
		return m.SetStructComplexArray(arrays[b.Param], vals, b.ReOff, b.ImOff)
	case binding.LayoutSplit:
		re := make([]float64, len(vals))
		im := make([]float64, len(vals))
		for i, v := range vals {
			re[i], im[i] = real(v), imag(v)
		}
		if err := m.SetFloatArray(arrays[b.ReParam], re); err != nil {
			return err
		}
		return m.SetFloatArray(arrays[b.ImParam], im)
	default:
		return fmt.Errorf("synth: unknown layout %v", b.Layout)
	}
}

// readArray decodes n complex values from the user arrays per the layout.
func readArray(m *interp.Machine, b binding.ArrayBinding,
	arrays map[string]interp.Value, n int) ([]complex128, error) {
	switch b.Layout {
	case binding.LayoutC99:
		return m.GetComplexArray(arrays[b.Param], n)
	case binding.LayoutStruct:
		return m.GetStructComplexArray(arrays[b.Param], n, b.ReOff, b.ImOff)
	case binding.LayoutSplit:
		re, err := m.GetFloatArray(arrays[b.ReParam], n)
		if err != nil {
			return nil, err
		}
		im, err := m.GetFloatArray(arrays[b.ImParam], n)
		if err != nil {
			return nil, err
		}
		out := make([]complex128, n)
		for i := range out {
			out[i] = complex(re[i], im[i])
		}
		return out, nil
	default:
		return nil, fmt.Errorf("synth: unknown layout %v", b.Layout)
	}
}

// runAccel produces the accelerator's output for the case.
func runAccel(cand *binding.Candidate, tc iogen.Case) ([]complex128, error) {
	dir := fft.Forward
	if d := cand.Direction; d != nil {
		av := d.Constant
		if d.Param != "" {
			av = d.Map[tc.Scalars[d.Param]]
		}
		if av == accel.FFTWBackward {
			dir = fft.Inverse
		}
	}
	return cand.Spec.Run(tc.Input, dir)
}

// vectorsClose compares complex vectors with a norm-scaled tolerance:
// |a-b|∞ ≤ tol · (1 + |b|∞). This absorbs the single-precision hardware
// datapath while still distinguishing swapped layouts, wrong directions and
// missing normalization.
func vectorsClose(a, b []complex128, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	norm := 0.0
	for _, v := range b {
		if m := math.Hypot(real(v), imag(v)); m > norm {
			norm = m
		}
	}
	limit := tol * (1 + norm)
	for i := range a {
		d := a[i] - b[i]
		if math.Hypot(real(d), imag(d)) > limit {
			return false
		}
	}
	return true
}
