package synth

// Oracle-key derivation tests: the cache key for a reference run must be
// a pure function of (user program, candidate's user-visible shape, test
// case content) — identical across accelerator targets, distinct across
// fuzz seeds, and pinned against silent scheme drift.

import (
	"strings"
	"testing"

	"facc/internal/accel"
	"facc/internal/analysis"
	"facc/internal/binding"
	"facc/internal/iogen"
	"facc/internal/minic"
)

// enumerateByRefSig enumerates spec's binding candidates for fn and
// groups them by reference signature (first candidate per signature).
func enumerateByRefSig(t *testing.T, f *minic.File, fn *minic.FuncDecl,
	spec *accel.Spec, prof *analysis.Profile) map[string]*binding.Candidate {
	t.Helper()
	fi := analysis.AnalyzeFunc(f, fn)
	out := map[string]*binding.Candidate{}
	for _, cand := range binding.Enumerate(fi, spec, prof, binding.Options{}) {
		sig := iogen.RefSig(cand)
		if _, ok := out[sig]; !ok {
			out[sig] = cand
		}
	}
	if len(out) == 0 {
		t.Fatalf("no binding candidates for %s on %s", fn.Name, spec.Name)
	}
	return out
}

// TestOracleKeyIdenticalAcrossTargets is the tentpole invariant: for the
// same function and the same IO case, candidates bound to ffta, powerquad
// and fftw that agree on their user-visible shape (RefSig) must produce
// byte-identical oracle keys, so one target's reference run is a cache
// hit for the other two.
func TestOracleKeyIdenticalAcrossTargets(t *testing.T) {
	f, err := minic.ParseAndCheck("t.c", radix2Struct)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	fn := f.Func("fft")
	prof := pow2Profile("n", 64)

	specs := []*accel.Spec{accel.NewFFTA(), accel.NewPowerQuad(), accel.NewFFTWLib()}
	byTarget := make([]map[string]*binding.Candidate, len(specs))
	for i, spec := range specs {
		byTarget[i] = enumerateByRefSig(t, f, fn, spec, prof)
	}

	// Shapes shared by every target — these are the candidates the
	// shared cache deduplicates across. At least one must exist, or
	// cross-target sharing is structurally impossible for the common
	// corpus shape.
	var shared []string
	for sig := range byTarget[0] {
		common := true
		for _, m := range byTarget[1:] {
			if _, ok := m[sig]; !ok {
				common = false
				break
			}
		}
		if common {
			shared = append(shared, sig)
		}
	}
	if len(shared) == 0 {
		t.Fatalf("no RefSig shared across %d targets; cross-target oracle sharing impossible", len(specs))
	}

	fileKey := FileDigest(f, fn.Name)
	const seed = int64(424242)
	for _, sig := range shared {
		// One generator per target's candidate: equal RefSig must imply
		// an identical case stream and identical keys, case by case.
		gens := make([]*iogen.Generator, len(specs))
		for i := range specs {
			gens[i] = iogen.New(seed, byTarget[i][sig], prof)
			if !gens[i].Viable() {
				t.Fatalf("%s: candidate %q not viable", specs[i].Name, sig)
			}
		}
		for caseIdx := 0; caseIdx < 4; caseIdx++ {
			base := oracleKey(fileKey, byTarget[0][sig], gens[0].Case(caseIdx))
			for i := 1; i < len(specs); i++ {
				key := oracleKey(fileKey, byTarget[i][sig], gens[i].Case(caseIdx))
				if key != base {
					t.Errorf("case %d: key differs between %s and %s:\n  %s\n  %s",
						caseIdx, specs[0].Name, specs[i].Name, base, key)
				}
			}
		}
	}
	t.Logf("verified %d shared candidate shapes across %d targets", len(shared), len(specs))
}

// TestOracleKeySeedsDoNotCollide: different fuzz seeds draw different
// signals, so the same (function, candidate, case index) under two seeds
// must never share a key — a collision would serve one seed's reference
// output for the other's input.
func TestOracleKeySeedsDoNotCollide(t *testing.T) {
	f, err := minic.ParseAndCheck("t.c", radix2Struct)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	fn := f.Func("fft")
	prof := pow2Profile("n", 64)
	cands := enumerateByRefSig(t, f, fn, accel.NewFFTA(), prof)
	fileKey := FileDigest(f, fn.Name)

	for sig, cand := range cands {
		gA := iogen.New(424242, cand, prof)
		gB := iogen.New(7, cand, prof)
		if !gA.Viable() {
			continue
		}
		for caseIdx := 0; caseIdx < 4; caseIdx++ {
			kA := oracleKey(fileKey, cand, gA.Case(caseIdx))
			kB := oracleKey(fileKey, cand, gB.Case(caseIdx))
			if kA == kB {
				t.Errorf("%q case %d: seeds 424242 and 7 collide on key %s", sig, caseIdx, kA)
			}
		}
	}
}

// TestFileDigestScopesKeys: the digest is stable across re-parses of the
// same source (so eval's per-target re-parsed copies share entries) and
// distinguishes functions, so one process-wide cache cannot alias.
func TestFileDigestScopesKeys(t *testing.T) {
	f1, err := minic.ParseAndCheck("a.c", radix2Struct)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	f2, err := minic.ParseAndCheck("b.c", radix2Struct)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	if d1, d2 := FileDigest(f1, "fft"), FileDigest(f2, "fft"); d1 != d2 {
		t.Errorf("re-parsed identical source digests differ: %s vs %s", d1, d2)
	}
	if d1, d2 := FileDigest(f1, "fft"), FileDigest(f1, "other"); d1 == d2 {
		t.Errorf("different function names share digest %s", d1)
	}
}

// TestOracleKeyGolden pins the key scheme: any change to FileDigest,
// RefSig, CaseDigest or the key layout shows up as a diff here, making
// cache-scheme drift (which silently empties shared caches across
// versions) a reviewed decision instead of an accident.
func TestOracleKeyGolden(t *testing.T) {
	f, err := minic.ParseAndCheck("t.c", radix2Struct)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	fn := f.Func("fft")
	prof := pow2Profile("n", 64)
	fi := analysis.AnalyzeFunc(f, fn)
	cands := binding.Enumerate(fi, accel.NewFFTA(), prof, binding.Options{})
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	cand := cands[0]
	gen := iogen.New(424242, cand, prof)

	golden := []string{
		"fn=8f129c38c19a8a84|in=struct(x,re=0,im=1) out=struct(x,re=0,im=1) len=n(n) inplace|io=886f79c1fa4442d8",
		"fn=8f129c38c19a8a84|in=struct(x,re=0,im=1) out=struct(x,re=0,im=1) len=n(n) inplace|io=60011149756c6b08",
		"fn=8f129c38c19a8a84|in=struct(x,re=0,im=1) out=struct(x,re=0,im=1) len=n(n) inplace|io=27fe365c388a9daf",
	}
	for i, want := range golden {
		got := oracleKey(FileDigest(f, fn.Name), cand, gen.Case(i))
		if got != want {
			t.Errorf("golden key %d drifted:\n  want %s\n  got  %s", i, want, got)
		}
	}
	// The layout is load-bearing for debuggability: fn scope first, then
	// the user-visible candidate shape, then the case content.
	if got := oracleKey("abc", cand, gen.Case(0)); !strings.HasPrefix(got, "fn=abc|") ||
		!strings.Contains(got, "|io=") {
		t.Errorf("key layout drifted: %s", got)
	}
}
