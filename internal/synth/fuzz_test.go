package synth

// FuzzCexReplay throws hostile counterexample pools at the replay-first
// search path: arbitrary pool-file bytes (truncated entries, bad
// checksums, raw garbage) loaded from disk, plus adversarial CaseSig
// strings recorded live into the pool before synthesis runs. The
// contract under fuzzing is the determinism contract: a hostile pool
// may change which case kills a loser first, but it must never panic,
// never perturb the winning adapter relative to the no-pool baseline,
// and the surviving pool must still flush to a loadable file.

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"facc/internal/accel"
	"facc/internal/minic"
	"facc/internal/obs"
)

// adapterFingerprint renders everything user-visible about a winning
// adapter; replay must not move any of it.
func adapterFingerprint(ad *Adapter) string {
	cond := "nocheck"
	if ad.Check != nil {
		cond = ad.Check.CCondition("n")
	}
	ret := "void"
	if ad.ReturnConst != nil {
		ret = fmt.Sprint(*ad.ReturnConst)
	}
	return fmt.Sprintf("%s|%s|%s|ret=%s|tests=%d",
		ad.Cand, ad.Post, cond, ret, ad.TestsPassed)
}

// fuzzCexSynth runs one small, fixed synthesis (the common radix-2
// struct shape against FFTA, three IO cases, n=64) with the given pool
// wired in, and returns the winner's fingerprint.
func fuzzCexSynth(pool *obs.CexPool) (string, error) {
	f, err := minic.ParseAndCheck("fuzz.c", radix2Struct)
	if err != nil {
		return "", fmt.Errorf("frontend: %v", err)
	}
	fn := f.Func("fft")
	if fn == nil {
		return "", fmt.Errorf("no fft function")
	}
	prof := pow2Profile("n", 64)
	res, err := Synthesize(context.Background(), f, fn, accel.NewFFTA(), prof,
		Options{NumTests: 3, Cex: pool})
	if err != nil {
		return "", err
	}
	if res.Adapter == nil {
		return "", fmt.Errorf("no adapter: %s", res.FailReason)
	}
	return adapterFingerprint(res.Adapter), nil
}

// cexBaseline caches the no-pool winner once per process; every fuzz
// execution compares against it.
var cexBaseline struct {
	once sync.Once
	fp   string
	err  error
}

func cexBaselineFingerprint() (string, error) {
	cexBaseline.once.Do(func() {
		cexBaseline.fp, cexBaseline.err = fuzzCexSynth(nil)
	})
	return cexBaseline.fp, cexBaseline.err
}

// validCexPoolBytes builds one well-formed pool file (two ranked
// entries plus checksum trailer) with a pinned clock so the committed
// corpus is byte-stable.
func validCexPoolBytes() []byte {
	dir, err := os.MkdirTemp("", "cexfuzz")
	if err != nil {
		return nil
	}
	defer os.RemoveAll(dir)
	p := obs.NewCexPool()
	p.Now = func() time.Time { return time.Unix(1_700_000_000, 0) }
	p.RecordKill("seed=424242 n=64 case=1", 424242, 64, 1, "struct-inplace", "ffta")
	p.RecordKill("seed=424242 n=64 case=1", 424242, 64, 1, "split-arrays", "powerquad")
	p.RecordKill("seed=424242 n=64 case=2", 424242, 64, 2, "struct-inplace", "ffta")
	path := filepath.Join(dir, "pool.jsonl")
	if p.Flush(path) != nil {
		return nil
	}
	b, _ := os.ReadFile(path)
	return b
}

type cexSeed struct {
	data    []byte
	sig     string
	length  int64
	caseIdx int
}

// fuzzCexSeedCorpus covers the interesting neighbourhoods: a pristine
// pool, a truncated one (mid-entry), a checksum mismatch, raw garbage,
// and live sigs that are empty, hostile, or collide with a real case.
func fuzzCexSeedCorpus() []cexSeed {
	valid := validCexPoolBytes()
	seeds := []cexSeed{
		{valid, "seed=424242 n=64 case=1", 64, 1},
		{valid[:len(valid)/2], "seed=1 n=9999999999 case=-1", 9999999999, -1},
		{[]byte(`{"sig": not json`), "sig\nwith=newline case=0", 0, 0},
		{bytes.Replace(valid, []byte(`"cex_checksum":"`), []byte(`"cex_checksum":"00`), 1),
			"", -5, 7},
		{nil, "seed=424242 n=64 case=0", 64, 0},
	}
	return seeds
}

func FuzzCexReplay(f *testing.F) {
	for _, s := range fuzzCexSeedCorpus() {
		f.Add(s.data, s.sig, s.length, s.caseIdx)
	}
	f.Fuzz(func(t *testing.T, data []byte, sig string, length int64, caseIdx int) {
		base, err := cexBaselineFingerprint()
		if err != nil {
			t.Fatalf("no-pool baseline failed: %v", err)
		}

		// Load whatever the bytes decode to. Corrupt files must be
		// quarantined into an empty pool, never a panic or a
		// half-trusted one.
		dir := t.TempDir()
		path := filepath.Join(dir, "pool.jsonl")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		pool, _, err := obs.LoadCexPool(path)
		if err != nil || pool == nil {
			pool = obs.NewCexPool()
		}

		// Hostile live recording: whatever sig the fuzzer invents must
		// kill-or-skip, and a malformed one must not take the pool down.
		pool.RecordKill(sig, 424242, length, caseIdx, "famX", "ffta")
		pool.RecordKill(sig, 424242, length, caseIdx, "", "")

		got, err := fuzzCexSynth(pool)
		if err != nil {
			t.Fatalf("synthesis with hostile pool failed: %v", err)
		}
		if got != base {
			t.Fatalf("hostile pool perturbed the winner:\n  no pool: %s\n  pool:    %s", base, got)
		}

		// The pool that survived replay + live kills must still flush
		// to a file LoadCexPool accepts — hostile input must not be
		// able to poison the persisted form.
		out := filepath.Join(dir, "out.jsonl")
		if err := pool.Flush(out); err != nil {
			t.Fatalf("flush after hostile input: %v", err)
		}
		if _, info, err := obs.LoadCexPool(out); err != nil || info.Quarantined != "" {
			t.Fatalf("flushed pool does not reload cleanly: err=%v quarantined=%q", err, info.Quarantined)
		}
	})
}

// TestGenerateCexReplayCorpus mirrors the store package's corpus
// discipline: the committed `go test fuzz v1` files are regenerated
// from fuzzCexSeedCorpus with FACC_GEN_CORPUS=1 and verified to exist
// otherwise, so the in-code seeds and the committed corpus never drift.
func TestGenerateCexReplayCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzCexReplay")
	seeds := fuzzCexSeedCorpus()
	if os.Getenv("FACC_GEN_CORPUS") == "1" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, s := range seeds {
			body := "go test fuzz v1\n" +
				"[]byte(" + quoteCorpus(s.data) + ")\n" +
				"string(" + quoteCorpus([]byte(s.sig)) + ")\n" +
				"int64(" + strconv.FormatInt(s.length, 10) + ")\n" +
				"int(" + strconv.Itoa(s.caseIdx) + ")\n"
			name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return
	}
	des, err := os.ReadDir(dir)
	if err != nil || len(des) < len(seeds) {
		t.Fatalf("committed fuzz corpus missing (%d files, want >= %d): regenerate with FACC_GEN_CORPUS=1 (err=%v)",
			len(des), len(seeds), err)
	}
}

// quoteCorpus renders data as the Go double-quoted literal the
// `go test fuzz v1` corpus format requires.
func quoteCorpus(data []byte) string {
	var b bytes.Buffer
	b.WriteByte('"')
	for _, c := range data {
		switch {
		case c == '"':
			b.WriteString(`\"`)
		case c == '\\':
			b.WriteString(`\\`)
		case c >= 0x20 && c < 0x7f:
			b.WriteByte(c)
		default:
			const hexdigits = "0123456789abcdef"
			b.WriteString(`\x`)
			b.WriteByte(hexdigits[c>>4])
			b.WriteByte(hexdigits[c&0xf])
		}
	}
	b.WriteByte('"')
	return b.String()
}
