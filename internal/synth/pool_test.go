package synth

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"facc/internal/accel"
	"facc/internal/analysis"
	"facc/internal/minic"
	"facc/internal/obs"
)

// eventSig renders the deterministic fields of a journal event — everything
// except Seq-adjacent timing. The parallel pool promises these match a
// sequential run byte for byte.
func eventSig(ev obs.JournalEvent) string {
	return fmt.Sprintf("%d|%s|%s|%s|%s|%s|%d|%s|%s", ev.Seq, ev.Kind,
		ev.Function, ev.Candidate, ev.Heuristic, ev.Outcome, ev.Tests,
		ev.Counterexample, ev.Detail)
}

// journalSigs drops the oracle-stats event (its hit/miss split legitimately
// varies with speculative work) and renders the rest.
func journalSigs(j *obs.Journal) []string {
	var out []string
	for _, ev := range j.Events() {
		if ev.Kind == obs.KindOracle {
			continue
		}
		out = append(out, eventSig(ev))
	}
	return out
}

func synthAtWorkers(t *testing.T, src, entry string, spec *accel.Spec,
	prof func() *analysis.Profile, workers int, exhaust bool) (*Result, *obs.Journal) {
	t.Helper()
	f, err := minic.ParseAndCheck("t.c", src)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	j := obs.NewJournal()
	res, err := Synthesize(context.Background(), f, f.Func(entry), spec, prof(),
		Options{NumTests: 4, Journal: j, Workers: workers, ExhaustAll: exhaust})
	if err != nil {
		t.Fatalf("synthesize (workers=%d): %v", workers, err)
	}
	return res, j
}

// TestPoolDeterministicAcrossWorkers is the core guarantee of the parallel
// engine: for every worker count, the Result counts, the winning binding,
// and the journaled verdict stream are identical to the sequential run.
func TestPoolDeterministicAcrossWorkers(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		entry   string
		spec    func() *accel.Spec
		prof    func() *analysis.Profile
		exhaust bool
	}{
		{"ffta-first-winner", radix2Struct, "fft", accel.NewFFTA,
			func() *analysis.Profile { return pow2Profile("n") }, false},
		{"ffta-exhaust", radix2Struct, "fft", accel.NewFFTA,
			func() *analysis.Profile { return pow2Profile("n") }, true},
		{"fftw-direction-map", dirFlagSrc, "fft_dir", accel.NewFFTWLib,
			func() *analysis.Profile { return pow2Profile("n", 16, 32, 64) }, false},
		{"fftw-exhaust", dirFlagSrc, "fft_dir", accel.NewFFTWLib,
			func() *analysis.Profile { return pow2Profile("n", 16, 32, 64) }, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref, refJ := synthAtWorkers(t, tc.src, tc.entry, tc.spec(), tc.prof, 1, tc.exhaust)
			refSigs := journalSigs(refJ)
			for _, workers := range []int{2, 4, 8} {
				res, j := synthAtWorkers(t, tc.src, tc.entry, tc.spec(), tc.prof, workers, tc.exhaust)
				if res.Tested != ref.Tested || res.Survivors != ref.Survivors ||
					res.Candidates != ref.Candidates || res.FailReason != ref.FailReason {
					t.Errorf("workers=%d: result (%d tested, %d survivors, %q) != sequential (%d, %d, %q)",
						workers, res.Tested, res.Survivors, res.FailReason,
						ref.Tested, ref.Survivors, ref.FailReason)
				}
				switch {
				case (res.Adapter == nil) != (ref.Adapter == nil):
					t.Errorf("workers=%d: adapter presence differs", workers)
				case res.Adapter != nil:
					if res.Adapter.Cand.Key() != ref.Adapter.Cand.Key() {
						t.Errorf("workers=%d: winner %q != sequential %q",
							workers, res.Adapter.Cand.Key(), ref.Adapter.Cand.Key())
					}
					if res.Adapter.Post.String() != ref.Adapter.Post.String() {
						t.Errorf("workers=%d: post-op differs", workers)
					}
				}
				sigs := journalSigs(j)
				if len(sigs) != len(refSigs) {
					t.Fatalf("workers=%d: %d journal events, sequential has %d:\n%v\nvs\n%v",
						workers, len(sigs), len(refSigs), sigs, refSigs)
				}
				for i := range sigs {
					if sigs[i] != refSigs[i] {
						t.Errorf("workers=%d: journal event %d differs:\n%s\nvs\n%s",
							workers, i, sigs[i], refSigs[i])
					}
				}
			}
		})
	}
}

// TestPoolNoSpuriousTimeouts: a candidate cancelled because an earlier one
// already won must be discarded as "superseded", not misclassified as a
// timeout (which would pollute robustness metrics and provenance).
func TestPoolNoSpuriousTimeouts(t *testing.T) {
	f, err := minic.ParseAndCheck("t.c", dirFlagSrc)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	for run := 0; run < 5; run++ {
		tr := obs.New()
		sp := tr.Span("synthesize")
		j := obs.NewJournal()
		_, err := Synthesize(context.Background(), f, f.Func("fft_dir"),
			accel.NewFFTWLib(), pow2Profile("n", 16, 32, 64),
			Options{NumTests: 4, Workers: 8, Obs: sp, Journal: j})
		sp.End()
		if err != nil {
			t.Fatalf("synthesize: %v", err)
		}
		if got := tr.Metrics().Counters()["synth.candidate_timeouts"]; got != 0 {
			t.Fatalf("run %d: %d candidate timeouts with no timeout configured", run, got)
		}
		for _, ev := range j.Events() {
			if ev.Kind == obs.KindFuzz && (ev.Outcome == "timeout" || ev.Outcome == "superseded") {
				t.Fatalf("run %d: %q verdict leaked into the journal", run, ev.Outcome)
			}
		}
	}
}

// TestOracleSharesReferenceRuns: candidates that differ only in
// accelerator-side knobs (direction constants/maps, flags) must share the
// user program's reference executions. The FFTW target multiplies exactly
// such candidates, so the cache hit rate must clear 50% — the economics
// the oracle exists for.
func TestOracleSharesReferenceRuns(t *testing.T) {
	f, err := minic.ParseAndCheck("t.c", dirFlagSrc)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	tr := obs.New()
	sp := tr.Span("synthesize")
	res, err := Synthesize(context.Background(), f, f.Func("fft_dir"),
		accel.NewFFTWLib(), pow2Profile("n", 16, 32, 64),
		Options{NumTests: 4, Workers: 1, Obs: sp, ExhaustAll: true})
	sp.End()
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	if res.Adapter == nil {
		t.Fatalf("no adapter: %s", res.FailReason)
	}
	c := tr.Metrics().Counters()
	hits, misses := c["synth.oracle_hits"], c["synth.oracle_misses"]
	if hits == 0 {
		t.Fatal("oracle cache never hit across accelerator-side candidate variants")
	}
	if rate := float64(hits) / float64(hits+misses); rate <= 0.5 {
		t.Errorf("oracle hit rate = %.2f (hits=%d misses=%d), want > 0.5",
			rate, hits, misses)
	}
}

// TestPoolCancellation: cancelling the run context aborts a parallel
// synthesis with a wrapping error rather than hanging or succeeding.
func TestPoolCancellation(t *testing.T) {
	f, err := minic.ParseAndCheck("t.c", radix2Struct)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = Synthesize(ctx, f, f.Func("fft"), accel.NewFFTA(), pow2Profile("n"),
		Options{NumTests: 4, Workers: 4})
	if err == nil {
		t.Fatal("cancelled synthesis returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
}
