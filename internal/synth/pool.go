// Candidate-level parallelism for generate-and-test. The pool fuzzes
// binding candidates concurrently but reports *sequential* semantics: the
// winner, the Tested/Survivors counts, and the journaled verdicts are the
// ones a Workers=1 run would produce, regardless of goroutine scheduling.
//
// Three mechanisms make that hold:
//
//   - frontier-first dispatch: the lowest-index undecided candidate (the
//     only one that can resolve the search next) is always dispatched
//     before anything else, so candidate i never starves behind
//     speculation. Remaining worker slots are speculative, and they are
//     spent cheapest-first by a static cost model (iogen.EstimateCost:
//     summed test-case sizes plus a free-parameter surcharge) — a pure
//     function of the candidate, so the dispatch order is itself
//     deterministic. At Workers=1 the frontier rule degenerates to exact
//     enumeration order: a sequential search has no speculative budget
//     to allocate;
//   - first-winner-by-index selection: a surviving candidate only becomes
//     the winner once every lower-indexed candidate has been decided
//     against. Until then it is the "minimum survivor", which bounds the
//     useful search — in-flight candidates above it are cancelled with
//     errSuperseded (distinguished from timeouts via context.Cause) and
//     their outcomes discarded;
//   - buffered journals: each candidate records its verdicts into a
//     private journal, flushed into the real one in candidate order and
//     only up to the winner, so the provenance stream is byte-stable
//     across worker counts (timestamps aside).
//
// Metrics counters (synth.tests_run, interp.*) deliberately keep counting
// speculative work that the deterministic Result discards — they describe
// effort spent, not the search outcome.
package synth

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"facc/internal/analysis"
	"facc/internal/binding"
	"facc/internal/iogen"
	"facc/internal/minic"
	"facc/internal/obs"
)

// errSuperseded cancels a speculative candidate once a lower-indexed one
// has survived: the pool uses it as a context cancel cause so the fault
// boundary can tell "you lost the race" apart from "you timed out".
var errSuperseded = errors.New("superseded by an earlier surviving candidate")

// candOutcome is one candidate's result awaiting in-order resolution.
type candOutcome struct {
	decided    bool
	superseded bool
	ad         *Adapter
	err        error
	events     []obs.JournalEvent
}

// runCandidates evaluates cands on `workers` goroutines and returns the
// deterministic (winner, tested, survivors) triple — identical to what
// the sequential loop would report. On error (whole-run cancellation,
// interpreter construction failure) the counts are meaningless and the
// caller must discard the Result.
func runCandidates(ctx context.Context, fn *minic.FuncDecl,
	cands []*binding.Candidate, profile *analysis.Profile, opts Options,
	orc *oracle, replay map[string]int, workers int) (*Adapter, int, int, error) {

	poolCtx, cancelPool := context.WithCancelCause(ctx)
	defer cancelPool(nil)

	if workers > len(cands) {
		workers = len(cands)
	}
	var reg *obs.Registry
	if opts.Obs != nil {
		reg = opts.Obs.Metrics()
	}

	// Static dispatch costs: what each candidate's full fuzz batch is
	// expected to cost in interpreter work. Computed once, before any
	// worker runs, from (seed, candidate, profile) only — never from run
	// history — so every process, at every worker count, orders its
	// speculation identically.
	costs := make([]int64, len(cands))
	for i, c := range cands {
		costs[i] = iogen.EstimateCost(opts.Seed, c, profile, opts.NumTests)
	}

	outcomes := make([]candOutcome, len(cands))
	var (
		mu          sync.Mutex
		dispatched  = make([]bool, len(cands))
		minSurvivor = -1
		inflight    = map[int]context.CancelCauseFunc{}
		busy        atomic.Int64
	)

	// pick (mu held) chooses the next candidate to dispatch, or -1 when
	// no dispatch can still affect the result. Only indices below the
	// current minimum survivor are eligible — anything above it already
	// lost the by-index race (ExhaustAll lifts that bound).
	pick := func() int {
		limit := len(cands)
		if !opts.ExhaustAll && minSurvivor >= 0 {
			limit = minSurvivor
		}
		first, cheapest := -1, -1
		for j := 0; j < limit; j++ {
			if dispatched[j] {
				continue
			}
			if first < 0 {
				first = j
			}
			if cheapest < 0 || costs[j] < costs[cheapest] {
				cheapest = j
			}
		}
		if first < 0 {
			return -1
		}
		// Frontier rule: when every index below the lowest undispatched
		// candidate is decided, that candidate is the search frontier —
		// the only one whose survival can end the run — so it outranks
		// speculation. Otherwise the freed slot is pure speculation, and
		// the cost model spends it on the cheapest open hypothesis.
		for k := 0; k < first; k++ {
			if !outcomes[k].decided {
				return cheapest
			}
		}
		return first
	}

	evalOne := func(i int, candCtx context.Context) candOutcome {
		copts := opts
		var buf *obs.Journal
		if opts.Journal != nil {
			buf = obs.NewJournal()
			copts.Journal = buf
		}
		var fsp *obs.Span
		if opts.Obs != nil {
			fsp = opts.Obs.Child("fuzz").
				Str("binding", cands[i].Key()).
				Int("candidate", int64(i+1))
		}
		ad, err := evalCandidate(ctx, candCtx, fn, cands[i], profile, copts, fsp, orc, replay)
		fsp.End()
		out := candOutcome{decided: true, ad: ad, err: err,
			superseded: errors.Is(err, errSuperseded)}
		if out.superseded {
			out.err = nil
		}
		if buf != nil {
			out.events = buf.Events()
		}
		return out
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := -1
				if poolCtx.Err() == nil {
					i = pick()
				}
				if i < 0 {
					mu.Unlock()
					return
				}
				dispatched[i] = true
				candCtx, cancel := context.WithCancelCause(poolCtx)
				inflight[i] = cancel
				mu.Unlock()

				reg.Gauge("synth.pool_busy").Set(float64(busy.Add(1)))
				out := evalOne(i, candCtx)
				reg.Gauge("synth.pool_busy").Set(float64(busy.Add(-1)))

				mu.Lock()
				outcomes[i] = out
				delete(inflight, i)
				if out.ad != nil && !opts.ExhaustAll &&
					(minSurvivor < 0 || i < minSurvivor) {
					minSurvivor = i
					for j, c := range inflight {
						if j > i {
							c(errSuperseded)
						}
					}
				}
				mu.Unlock()
				cancel(nil)
			}
		}()
	}
	wg.Wait()

	// flush replays buffered journal events for candidates 0..upto in
	// candidate order — the order the sequential engine would have
	// recorded them.
	flush := func(upto int) {
		if opts.Journal == nil {
			return
		}
		for i := 0; i <= upto && i < len(outcomes); i++ {
			for _, ev := range outcomes[i].events {
				opts.Journal.Record(ev)
			}
		}
	}

	cancelled := func() error {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("synth: %s: %w", fn.Name, err)
		}
		return fmt.Errorf("synth: %s: %w", fn.Name, context.Canceled)
	}

	if opts.ExhaustAll {
		var winner *Adapter
		survivors := 0
		for i := range outcomes {
			o := &outcomes[i]
			if !o.decided {
				return nil, 0, 0, cancelled()
			}
			if o.err != nil {
				return nil, 0, 0, o.err
			}
			if o.ad != nil {
				survivors++
				if winner == nil {
					winner = o.ad
				}
			}
		}
		flush(len(outcomes) - 1)
		return winner, len(cands), survivors, nil
	}

	// First-winner mode: resolve candidates in index order, exactly as
	// the sequential loop would have encountered them.
	for i := range outcomes {
		o := &outcomes[i]
		if !o.decided || o.superseded {
			// Dispatch stopped (or the candidate was killed) before a
			// winner at a lower index was established: only whole-run
			// cancellation does that.
			return nil, 0, 0, cancelled()
		}
		if o.err != nil {
			flush(i - 1)
			return nil, 0, 0, o.err
		}
		if o.ad != nil {
			flush(i)
			return o.ad, i + 1, 1, nil
		}
	}
	flush(len(outcomes) - 1)
	return nil, len(cands), 0, nil
}
