package synth

import (
	"context"
	"testing"

	"facc/internal/accel"
	"facc/internal/analysis"
	"facc/internal/binding"
	"facc/internal/minic"
)

// The AddressSanitizer role (paper §6.1): a hypothesis that binds the
// wrong integer parameter as the array length makes the user code index
// out of bounds (or transform the wrong prefix) under fuzzing, and the
// candidate dies. The decoy parameter here takes the same plausible values
// as the real length, so only dynamic evidence can tell them apart.
const decoySrc = `
#include <math.h>
typedef struct { double re; double im; } cpx;
void fft_decoy(cpx* x, int window, int n) {
    cpx out[n];
    for (int k = 0; k < n; k++) {
        double sre = 0.0;
        double sim = 0.0;
        for (int j = 0; j < n; j++) {
            double a = -2.0 * M_PI * (double)j * (double)k / (double)n;
            sre += x[j].re * cos(a) - x[j].im * sin(a);
            sim += x[j].re * sin(a) + x[j].im * cos(a);
        }
        out[k].re = sre;
        out[k].im = sim;
    }
    for (int k = 0; k < n; k++) x[k] = out[k];
}`

func decoyProfile() *analysis.Profile {
	p := analysis.NewProfile()
	// Both parameters look like plausible FFT lengths.
	for _, v := range []int64{16, 32, 64} {
		p.ObserveInt("n", v)
		p.ObserveInt("window", v)
	}
	return p
}

func TestWrongLengthBindingRejectedByFuzzing(t *testing.T) {
	f, err := minic.ParseAndCheck("t.c", decoySrc)
	if err != nil {
		t.Fatal(err)
	}
	fn := f.Func("fft_decoy")
	fi := analysis.AnalyzeFunc(f, fn)
	spec := accel.NewPowerQuad()
	prof := decoyProfile()

	// Both length hypotheses must be enumerated...
	cands := binding.Enumerate(fi, spec, prof, binding.Options{})
	sawN, sawWindow := false, false
	for _, c := range cands {
		switch c.Length.Param {
		case "n":
			sawN = true
		case "window":
			sawWindow = true
		}
	}
	if !sawN || !sawWindow {
		t.Fatalf("length hypotheses incomplete: n=%v window=%v", sawN, sawWindow)
	}

	// ...and fuzzing must leave only the correct one standing.
	res, err := Synthesize(context.Background(), f, fn, spec, prof, Options{NumTests: 8, ExhaustAll: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Adapter == nil {
		t.Fatalf("no adapter: %s", res.FailReason)
	}
	if res.Adapter.Cand.Length.Param != "n" {
		t.Errorf("winner bound length to %q, want n", res.Adapter.Cand.Length.Param)
	}
}

// A buggy FFT (off-by-one that reads one element past the array) must be
// caught by the interpreter's bounds checking during IO testing — no
// adapter may be produced for code whose behavior includes UB.
func TestOutOfBoundsUserCodeRejected(t *testing.T) {
	src := `
#include <math.h>
typedef struct { double re; double im; } cpx;
void fft_oob(cpx* x, int n) {
    cpx out[n];
    for (int k = 0; k < n; k++) {
        double sre = 0.0;
        double sim = 0.0;
        for (int j = 0; j <= n; j++) { // off-by-one read
            double a = -2.0 * M_PI * (double)j * (double)k / (double)n;
            sre += x[j].re * cos(a);
            sim += x[j].im * cos(a);
        }
        out[k].re = sre;
        out[k].im = sim;
    }
    for (int k = 0; k < n; k++) x[k] = out[k];
}`
	f, err := minic.ParseAndCheck("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	prof := analysis.NewProfile()
	prof.ObserveInt("n", 16)
	prof.ObserveInt("n", 32)
	res, err := Synthesize(context.Background(), f, f.Func("fft_oob"), accel.NewPowerQuad(), prof,
		Options{NumTests: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Adapter != nil {
		t.Fatal("adapter produced for out-of-bounds user code")
	}
}
