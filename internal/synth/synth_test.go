package synth

import (
	"context"
	"testing"

	"facc/internal/accel"
	"facc/internal/analysis"
	"facc/internal/behave"
	"facc/internal/minic"
)

// radix2Struct is an in-place, un-normalized radix-2 FFT over {re,im}
// structs — the most common GitHub shape.
const radix2Struct = `
#include <math.h>
typedef struct { double re; double im; } cpx;

void fft(cpx* x, int n) {
    int j = 0;
    for (int i = 1; i < n; i++) {
        int bit = n >> 1;
        for (; j & bit; bit >>= 1) j ^= bit;
        j |= bit;
        if (i < j) {
            cpx tmp = x[i];
            x[i] = x[j];
            x[j] = tmp;
        }
    }
    for (int len = 2; len <= n; len <<= 1) {
        double ang = -2.0 * M_PI / (double)len;
        for (int i = 0; i < n; i += len) {
            for (int k = 0; k < len / 2; k++) {
                double wre = cos(ang * (double)k);
                double wim = sin(ang * (double)k);
                cpx u = x[i + k];
                cpx v;
                v.re = x[i + k + len / 2].re * wre - x[i + k + len / 2].im * wim;
                v.im = x[i + k + len / 2].re * wim + x[i + k + len / 2].im * wre;
                x[i + k].re = u.re + v.re;
                x[i + k].im = u.im + v.im;
                x[i + k + len / 2].re = u.re - v.re;
                x[i + k + len / 2].im = u.im - v.im;
            }
        }
    }
}`

func synthOne(t *testing.T, src, fn string, spec *accel.Spec, prof *analysis.Profile) *Result {
	t.Helper()
	f, err := minic.ParseAndCheck("t.c", src)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	fd := f.Func(fn)
	if fd == nil {
		t.Fatalf("no function %q", fn)
	}
	res, err := Synthesize(context.Background(), f, fd, spec, prof, Options{NumTests: 6})
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	return res
}

func pow2Profile(name string, vals ...int64) *analysis.Profile {
	p := analysis.NewProfile()
	if len(vals) == 0 {
		vals = []int64{64, 128, 256}
	}
	for _, v := range vals {
		p.ObserveInt(name, v)
	}
	return p
}

func TestSynthesizeRadix2ToFFTA(t *testing.T) {
	res := synthOne(t, radix2Struct, "fft", accel.NewFFTA(), pow2Profile("n"))
	if res.Adapter == nil {
		t.Fatalf("no adapter found: %s", res.FailReason)
	}
	ad := res.Adapter
	if ad.Cand.Input.Param != "x" || !ad.Cand.InPlace {
		t.Errorf("binding = %s", ad.Cand)
	}
	if ad.Cand.Input.ReOff != 0 || ad.Cand.Input.ImOff != 1 {
		t.Errorf("field order wrong: re@%d im@%d", ad.Cand.Input.ReOff, ad.Cand.Input.ImOff)
	}
	if ad.Cand.Length.Param != "n" {
		t.Errorf("length binding = %+v", ad.Cand.Length)
	}
	// FFTA normalizes; the user code does not → denormalize post-op.
	if ad.Post.Scale != behave.ScaleByN || ad.Post.BitReverse {
		t.Errorf("post op = %s, want denormalize", ad.Post)
	}
	if ad.Check == nil {
		t.Fatal("no range check")
	}
	// The profile covers 64..256 (all pow2, inside FFTA domain): the
	// minimal check needs nothing extra.
	if !ad.Check.AlwaysTrue() {
		t.Errorf("check should be minimal, got %q", ad.Check.CCondition("n"))
	}
}

func TestSynthesizeRadix2ToPowerQuad(t *testing.T) {
	res := synthOne(t, radix2Struct, "fft", accel.NewPowerQuad(), pow2Profile("n"))
	if res.Adapter == nil {
		t.Fatalf("no adapter: %s", res.FailReason)
	}
	// PowerQuad is un-normalized like the user code → identity post-op.
	if !res.Adapter.Post.IsIdentity() {
		t.Errorf("post op = %s, want identity", res.Adapter.Post)
	}
}

func TestSynthesizeC99DFTToFFTW(t *testing.T) {
	src := `
#include <complex.h>
#include <math.h>
void dft(double complex* in, double complex* out, int n) {
    for (int k = 0; k < n; k++) {
        double complex sum = 0;
        for (int j = 0; j < n; j++) {
            double angle = -2.0 * M_PI * (double)j * (double)k / (double)n;
            sum += in[j] * cexp(angle * I);
        }
        out[k] = sum;
    }
}`
	res := synthOne(t, src, "dft", accel.NewFFTWLib(), pow2Profile("n", 16, 32, 64))
	if res.Adapter == nil {
		t.Fatalf("no adapter: %s", res.FailReason)
	}
	ad := res.Adapter
	if ad.Cand.Input.Param != "in" || ad.Cand.Output.Param != "out" || ad.Cand.InPlace {
		t.Errorf("binding = %s", ad.Cand)
	}
	if ad.Cand.Direction == nil || ad.Cand.Direction.Param != "" ||
		ad.Cand.Direction.Constant != accel.FFTWForward {
		t.Errorf("direction = %+v, want specialized forward", ad.Cand.Direction)
	}
	if !ad.Post.IsIdentity() {
		t.Errorf("post = %s", ad.Post)
	}
}

func TestSynthesizeSwappedFieldNames(t *testing.T) {
	// The struct declares im first; the name heuristic must still find
	// the right offsets via testing.
	src := `
#include <math.h>
typedef struct { double im; double re; } cpx;
void dft(cpx* in, cpx* out, int n) {
    for (int k = 0; k < n; k++) {
        double sre = 0.0;
        double sim = 0.0;
        for (int j = 0; j < n; j++) {
            double angle = -2.0 * M_PI * (double)j * (double)k / (double)n;
            double c = cos(angle);
            double s = sin(angle);
            sre += in[j].re * c - in[j].im * s;
            sim += in[j].re * s + in[j].im * c;
        }
        out[k].re = sre;
        out[k].im = sim;
    }
}`
	res := synthOne(t, src, "dft", accel.NewPowerQuad(), pow2Profile("n", 16, 32))
	if res.Adapter == nil {
		t.Fatalf("no adapter: %s", res.FailReason)
	}
	b := res.Adapter.Cand.Input
	if b.ReOff != 1 || b.ImOff != 0 {
		t.Errorf("field offsets: re@%d im@%d, want re@1 im@0", b.ReOff, b.ImOff)
	}
}

func TestSynthesizeNormalizedUserCode(t *testing.T) {
	// User DFT divides by n. FFTA also normalizes → identity post-op;
	// PowerQuad does not → normalize post-op.
	src := `
#include <math.h>
typedef struct { double re; double im; } cpx;
void ndft(cpx* x, int n) {
    cpx out[n];
    for (int k = 0; k < n; k++) {
        double sre = 0.0;
        double sim = 0.0;
        for (int j = 0; j < n; j++) {
            double angle = -2.0 * M_PI * (double)j * (double)k / (double)n;
            sre += x[j].re * cos(angle) - x[j].im * sin(angle);
            sim += x[j].re * sin(angle) + x[j].im * cos(angle);
        }
        out[k].re = sre / (double)n;
        out[k].im = sim / (double)n;
    }
    for (int k = 0; k < n; k++) x[k] = out[k];
}`
	resFFTA := synthOne(t, src, "ndft", accel.NewFFTA(), pow2Profile("n", 64, 128))
	if resFFTA.Adapter == nil {
		t.Fatalf("FFTA: no adapter: %s", resFFTA.FailReason)
	}
	if !resFFTA.Adapter.Post.IsIdentity() {
		t.Errorf("FFTA post = %s, want identity", resFFTA.Adapter.Post)
	}
	resPQ := synthOne(t, src, "ndft", accel.NewPowerQuad(), pow2Profile("n", 16, 32))
	if resPQ.Adapter == nil {
		t.Fatalf("PQ: no adapter: %s", resPQ.FailReason)
	}
	if resPQ.Adapter.Post.Scale != behave.ScaleBy1N {
		t.Errorf("PQ post = %s, want normalize", resPQ.Adapter.Post)
	}
}

func TestSynthesizeBitReversedOutput(t *testing.T) {
	// A DIF FFT that leaves its output in bit-reversed order: the
	// adapter must add a bit-reverse post-op.
	src := `
#include <math.h>
typedef struct { double re; double im; } cpx;
void fft_dif(cpx* x, int n) {
    for (int len = n; len >= 2; len >>= 1) {
        double ang = -2.0 * M_PI / (double)len;
        for (int i = 0; i < n; i += len) {
            for (int k = 0; k < len / 2; k++) {
                double wre = cos(ang * (double)k);
                double wim = sin(ang * (double)k);
                cpx a = x[i + k];
                cpx b = x[i + k + len / 2];
                x[i + k].re = a.re + b.re;
                x[i + k].im = a.im + b.im;
                double dre = a.re - b.re;
                double dim = a.im - b.im;
                x[i + k + len / 2].re = dre * wre - dim * wim;
                x[i + k + len / 2].im = dre * wim + dim * wre;
            }
        }
    }
}`
	res := synthOne(t, src, "fft_dif", accel.NewPowerQuad(), pow2Profile("n", 16, 32, 64))
	if res.Adapter == nil {
		t.Fatalf("no adapter: %s", res.FailReason)
	}
	if !res.Adapter.Post.BitReverse {
		t.Errorf("post = %s, want bit-reverse", res.Adapter.Post)
	}
}

func TestSynthesizeDirectionFlagPinnedOnHardware(t *testing.T) {
	// User code takes an inverse flag. The FFTA has no inverse mode, so
	// the adapter must pin the flag to 0 in its range check.
	src := dirFlagSrc
	prof := pow2Profile("n", 64, 128)
	prof.ObserveInt("inverse", 0)
	prof.ObserveInt("inverse", 1)
	res := synthOne(t, src, "fft_dir", accel.NewFFTA(), prof)
	if res.Adapter == nil {
		t.Fatalf("no adapter: %s", res.FailReason)
	}
	pins := res.Adapter.Cand.Pins
	if len(pins) != 1 || pins[0].Param != "inverse" || pins[0].Value != 0 {
		t.Errorf("pins = %v, want inverse pinned to 0", pins)
	}
	if res.Adapter.Check.Pass(64, map[string]int64{"inverse": 1}) {
		t.Error("range check must reject inverse=1")
	}
	if !res.Adapter.Check.Pass(64, map[string]int64{"inverse": 0}) {
		t.Error("range check must accept inverse=0")
	}
}

func TestSynthesizeDirectionFlagMappedOnFFTW(t *testing.T) {
	src := dirFlagSrc
	prof := pow2Profile("n", 16, 32, 64)
	prof.ObserveInt("inverse", 0)
	prof.ObserveInt("inverse", 1)
	res := synthOne(t, src, "fft_dir", accel.NewFFTWLib(), prof)
	if res.Adapter == nil {
		t.Fatalf("no adapter: %s", res.FailReason)
	}
	d := res.Adapter.Cand.Direction
	if d == nil {
		t.Fatal("no direction source")
	}
	if d.Param != "inverse" {
		// A pinned constant is acceptable only if it covers both flag
		// values — it cannot, so the mapped binding must win.
		t.Fatalf("direction = %+v, want mapping from inverse", d)
	}
	if d.Map[0] != accel.FFTWForward || d.Map[1] != accel.FFTWBackward {
		t.Errorf("direction map = %v", d.Map)
	}
}

// dirFlagSrc computes a forward DFT when inverse==0 and an inverse
// (un-normalized) DFT when inverse==1.
const dirFlagSrc = `
#include <math.h>
typedef struct { double re; double im; } cpx;
void fft_dir(cpx* x, int n, int inverse) {
    double sign = -1.0;
    if (inverse) sign = 1.0;
    cpx out[n];
    for (int k = 0; k < n; k++) {
        double sre = 0.0;
        double sim = 0.0;
        for (int j = 0; j < n; j++) {
            double angle = sign * 2.0 * M_PI * (double)j * (double)k / (double)n;
            sre += x[j].re * cos(angle) - x[j].im * sin(angle);
            sim += x[j].re * sin(angle) + x[j].im * cos(angle);
        }
        out[k].re = sre;
        out[k].im = sim;
    }
    for (int k = 0; k < n; k++) x[k] = out[k];
}`

func TestSynthesizeSplitArrays(t *testing.T) {
	src := `
#include <math.h>
void fft_split(double* re, double* im, int n) {
    double ore[n];
    double oim[n];
    for (int k = 0; k < n; k++) {
        double sre = 0.0;
        double sim = 0.0;
        for (int j = 0; j < n; j++) {
            double angle = -2.0 * M_PI * (double)j * (double)k / (double)n;
            sre += re[j] * cos(angle) - im[j] * sin(angle);
            sim += re[j] * sin(angle) + im[j] * cos(angle);
        }
        ore[k] = sre;
        oim[k] = sim;
    }
    for (int k = 0; k < n; k++) {
        re[k] = ore[k];
        im[k] = oim[k];
    }
}`
	res := synthOne(t, src, "fft_split", accel.NewPowerQuad(), pow2Profile("n", 16, 32))
	if res.Adapter == nil {
		t.Fatalf("no adapter: %s", res.FailReason)
	}
	b := res.Adapter.Cand.Input
	if b.Layout.String() != "split" || b.ReParam != "re" || b.ImParam != "im" {
		t.Errorf("binding = %s", res.Adapter.Cand)
	}
}

func TestSynthesizeRejectsNonFFT(t *testing.T) {
	// A function with an FFT-like signature that computes something else
	// must produce no adapter (generate-and-test catches it).
	src := `
typedef struct { double re; double im; } cpx;
void not_fft(cpx* x, int n) {
    for (int i = 0; i < n; i++) {
        x[i].re = x[i].re * 2.0;
        x[i].im = x[i].im * 0.5;
    }
}`
	res := synthOne(t, src, "not_fft", accel.NewFFTA(), pow2Profile("n"))
	if res.Adapter != nil {
		t.Fatalf("false positive: %s", res.Adapter.Cand)
	}
	if res.Candidates == 0 {
		t.Error("candidates should have been generated and rejected")
	}
}

func TestSynthesizeFailureClassification(t *testing.T) {
	cases := []struct {
		src, fn, want string
	}{
		{`typedef struct { double re; double im; } cpx;
void f(cpx* x, int n) { for (int i = 0; i < n; i++) { printf("%f", x[i].re); x[i].re = 0; } }`,
			"f", "printf"},
		{`void f(void* x, int n) { }`, "f", "void-pointer"},
		{`void f(double** x, int n) { for (int i = 0; i < n; i++) x[i][0] = 0; }`,
			"f", "nested-memory"},
		{`double f(double* mags, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) s += mags[i];
    return s;
}`, "f", "interface-incompatibility"},
	}
	for _, c := range cases {
		res := synthOne(t, c.src, c.fn, accel.NewFFTA(), nil)
		if res.Adapter != nil {
			t.Errorf("%s: unexpected adapter", c.want)
			continue
		}
		if res.FailReason != c.want {
			t.Errorf("fail reason = %q, want %q", res.FailReason, c.want)
		}
	}
}

func TestSynthesizeFixedLength64(t *testing.T) {
	src := `
#include <math.h>
typedef struct { double re; double im; } cpx;
void fft64(cpx* x) {
    cpx out[64];
    for (int k = 0; k < 64; k++) {
        double sre = 0.0;
        double sim = 0.0;
        for (int j = 0; j < 64; j++) {
            double angle = -2.0 * M_PI * (double)j * (double)k / 64.0;
            sre += x[j].re * cos(angle) - x[j].im * sin(angle);
            sim += x[j].re * sin(angle) + x[j].im * cos(angle);
        }
        out[k].re = sre;
        out[k].im = sim;
    }
    for (int k = 0; k < 64; k++) x[k] = out[k];
}`
	res := synthOne(t, src, "fft64", accel.NewFFTA(), nil)
	if res.Adapter == nil {
		t.Fatalf("no adapter: %s", res.FailReason)
	}
	lb := res.Adapter.Cand.Length
	if lb.Param != "" || lb.Const != 64 {
		t.Errorf("length = %+v, want const 64", lb)
	}
	if !res.Adapter.Check.AlwaysTrue() {
		t.Errorf("constant 64 is always in domain; check = %q",
			res.Adapter.Check.CCondition("64"))
	}
}

func TestSynthesizeConstantReturn(t *testing.T) {
	src := `
#include <math.h>
typedef struct { double re; double im; } cpx;
int fft_ret(cpx* x, int n) {
    cpx out[n];
    for (int k = 0; k < n; k++) {
        double sre = 0.0;
        double sim = 0.0;
        for (int j = 0; j < n; j++) {
            double angle = -2.0 * M_PI * (double)j * (double)k / (double)n;
            sre += x[j].re * cos(angle) - x[j].im * sin(angle);
            sim += x[j].re * sin(angle) + x[j].im * cos(angle);
        }
        out[k].re = sre;
        out[k].im = sim;
    }
    for (int k = 0; k < n; k++) x[k] = out[k];
    return 0;
}`
	res := synthOne(t, src, "fft_ret", accel.NewPowerQuad(), pow2Profile("n", 16, 32))
	if res.Adapter == nil {
		t.Fatalf("no adapter: %s", res.FailReason)
	}
	if res.Adapter.ReturnConst == nil || *res.Adapter.ReturnConst != 0 {
		t.Errorf("return const = %v, want 0", res.Adapter.ReturnConst)
	}
}

func TestSynthesizeExp2LengthEncoding(t *testing.T) {
	// The user passes log2(n) — the paper's non-trivial conversion.
	src := `
#include <math.h>
typedef struct { double re; double im; } cpx;
void fft_log(cpx* x, int logn) {
    int n = 1 << logn;
    cpx out[n];
    for (int k = 0; k < n; k++) {
        double sre = 0.0;
        double sim = 0.0;
        for (int j = 0; j < n; j++) {
            double angle = -2.0 * M_PI * (double)j * (double)k / (double)n;
            sre += x[j].re * cos(angle) - x[j].im * sin(angle);
            sim += x[j].re * sin(angle) + x[j].im * cos(angle);
        }
        out[k].re = sre;
        out[k].im = sim;
    }
    for (int k = 0; k < n; k++) x[k] = out[k];
}`
	prof := analysis.NewProfile()
	prof.ObserveInt("logn", 4)
	prof.ObserveInt("logn", 5)
	res := synthOne(t, src, "fft_log", accel.NewPowerQuad(), prof)
	if res.Adapter == nil {
		t.Fatalf("no adapter: %s", res.FailReason)
	}
	lb := res.Adapter.Cand.Length
	if lb.Param != "logn" || lb.Conv.String() != "1<<n" {
		t.Errorf("length binding = %+v, want 2^logn", lb)
	}
}

func TestFigure16Shape(t *testing.T) {
	// Candidate counts: FFTA == PowerQuad, FFTW strictly larger.
	f, err := minic.ParseAndCheck("t.c", radix2Struct)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, spec := range accel.Specs() {
		res, err := Synthesize(context.Background(), f, f.Func("fft"), spec, pow2Profile("n"),
			Options{NumTests: 3, ExhaustAll: true})
		if err != nil {
			t.Fatal(err)
		}
		counts[spec.Name] = res.Candidates
	}
	if counts["ffta"] != counts["powerquad"] {
		t.Errorf("FFTA %d != PowerQuad %d", counts["ffta"], counts["powerquad"])
	}
	if counts["fftw"] <= counts["ffta"] {
		t.Errorf("FFTW %d should exceed FFTA %d", counts["fftw"], counts["ffta"])
	}
}
