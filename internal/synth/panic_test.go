package synth

import (
	"context"
	"testing"

	"facc/internal/accel"
	"facc/internal/fft"
	"facc/internal/minic"
	"facc/internal/obs"
)

// TestPanicInAcceleratorIsIsolated: a Go panic inside a candidate's
// accelerator call (a buggy device backend) must not kill the process or
// the compilation — the candidate is rejected with a "panic" verdict and
// synthesis finishes cleanly.
func TestPanicInAcceleratorIsIsolated(t *testing.T) {
	f, err := minic.ParseAndCheck("t.c", radix2Struct)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	spec := accel.NewFFTA()
	spec.Exec = accel.RunnerFunc(func([]complex128, fft.Direction) ([]complex128, error) {
		panic("device driver bug")
	})
	tr := obs.New()
	j := obs.NewJournal()
	sp := tr.Span("synthesize")
	// Workers: 1 — this backend closure is not synchronized, and the
	// blast-radius assertions below reason about sequential order.
	res, err := Synthesize(context.Background(), f, f.Func("fft"), spec, pow2Profile("n"),
		Options{NumTests: 4, Obs: sp, Journal: j, Workers: 1})
	sp.End()
	if err != nil {
		t.Fatalf("panics escalated into a synthesis error: %v", err)
	}
	if res.Adapter != nil {
		t.Fatal("an adapter survived a backend that panics on every call")
	}
	if got := tr.Metrics().Counters()["synth.panics"]; got == 0 {
		t.Fatal("synth.panics = 0: the recover path never ran")
	}
	if res.Tested < 2 {
		t.Fatalf("res.Tested = %d: synthesis stopped at the first panic", res.Tested)
	}
	sawVerdict := false
	for _, ev := range j.Events() {
		if ev.Kind == obs.KindFuzz && ev.Outcome == "panic" {
			sawVerdict = true
		}
	}
	if !sawVerdict {
		t.Fatal("journal has no panic verdict")
	}
}

// TestPanicCostsOneCandidate: with a backend that panics exactly once,
// only the candidate under test at that moment is rejected — it gets a
// single "panic" verdict and fuzzing demonstrably continues to later
// candidates. (The poisoned candidate here happens to be the unique
// winner, so no adapter results; the point is the blast radius, not the
// outcome.)
func TestPanicCostsOneCandidate(t *testing.T) {
	f, err := minic.ParseAndCheck("t.c", radix2Struct)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	spec := accel.NewFFTA()
	calls := 0
	spec.Exec = accel.RunnerFunc(func(in []complex128, dir fft.Direction) ([]complex128, error) {
		calls++
		if calls == 1 {
			panic("one-shot driver bug")
		}
		return spec.Simulate(in, dir)
	})
	j := obs.NewJournal()
	// Workers: 1 — the one-shot calls counter is unsynchronized and the
	// "exactly one panic verdict" claim needs sequential candidate order.
	res, err := Synthesize(context.Background(), f, f.Func("fft"), spec, pow2Profile("n"),
		Options{NumTests: 4, Journal: j, Workers: 1})
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	panics := 0
	continued := false
	for _, ev := range j.Events() {
		if ev.Kind != obs.KindFuzz {
			continue
		}
		if ev.Outcome == "panic" {
			panics++
		} else if panics > 0 {
			continued = true
		}
	}
	if panics != 1 {
		t.Fatalf("%d panic verdicts, want exactly 1", panics)
	}
	if !continued {
		t.Fatal("no candidates fuzzed after the panic: the shield did not contain it")
	}
	if res.Tested < 2 {
		t.Fatalf("res.Tested = %d, want at least the poisoned candidate plus one more", res.Tested)
	}
}
