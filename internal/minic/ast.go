package minic

// Node is implemented by all AST nodes.
type Node interface {
	NodePos() Pos
}

// Expr is an expression node. Type is populated by the type checker.
type Expr interface {
	Node
	exprNode()
	// ResultType returns the checked type (nil before checking).
	ResultType() *Type
}

// Stmt is a statement node.
type Stmt interface {
	Node
	stmtNode()
}

// exprBase carries position and checked type for expressions.
type exprBase struct {
	Pos  Pos
	Type *Type // filled in by the checker
}

func (e *exprBase) NodePos() Pos      { return e.Pos }
func (e *exprBase) exprNode()         {}
func (e *exprBase) ResultType() *Type { return e.Type }

// ---- Expressions ----

// IntLitExpr is an integer or character literal.
type IntLitExpr struct {
	exprBase
	Value int64
}

// FloatLitExpr is a floating literal. Float32 marks an 'f'-suffixed literal.
type FloatLitExpr struct {
	exprBase
	Value   float64
	Float32 bool
}

// StringLitExpr is a string literal (decoded).
type StringLitExpr struct {
	exprBase
	Value string
}

// ImaginaryLitExpr is the imaginary unit I from <complex.h>.
type ImaginaryLitExpr struct {
	exprBase
}

// IdentExpr is a variable or function reference. Def links to the
// declaration after checking.
type IdentExpr struct {
	exprBase
	Name string
	Def  *VarDecl  // non-nil for variables
	Func *FuncDecl // non-nil for direct function references
}

// UnaryExpr covers - + ! ~ * (deref) & (addrof) and pre-inc/dec.
type UnaryExpr struct {
	exprBase
	Op   Kind // Minus, Plus, Not, Tilde, Star, Amp, PlusPlus, MinusMinus
	X    Expr
	Post bool // post-increment / post-decrement when Op is ++/--
}

// BinaryExpr is any binary operator except assignment.
type BinaryExpr struct {
	exprBase
	Op   Kind
	L, R Expr
}

// AssignExpr is = or a compound assignment.
type AssignExpr struct {
	exprBase
	Op   Kind // Assign, PlusAssign, ...
	L, R Expr
}

// CondExpr is the ternary operator.
type CondExpr struct {
	exprBase
	Cond, Then, Else Expr
}

// CallExpr is a function call. Builtin is set for recognized library
// functions (sin, malloc, printf, ...).
type CallExpr struct {
	exprBase
	Fun     Expr
	Args    []Expr
	Builtin string // empty for user functions
}

// IndexExpr is array/pointer subscripting.
type IndexExpr struct {
	exprBase
	X, Index Expr
}

// MemberExpr is struct member access: X.Name or X->Name (Arrow).
type MemberExpr struct {
	exprBase
	X          Expr
	Name       string
	Arrow      bool
	FieldIndex int // filled by checker
}

// CastExpr is an explicit conversion.
type CastExpr struct {
	exprBase
	To *Type
	X  Expr
}

// SizeofExpr is sizeof(type) or sizeof expr.
type SizeofExpr struct {
	exprBase
	OfType *Type // non-nil for sizeof(type)
	X      Expr  // non-nil for sizeof expr
}

// CommaExpr evaluates L then R, yielding R.
type CommaExpr struct {
	exprBase
	L, R Expr
}

// InitListExpr is a brace initializer list; appears only in declarations.
type InitListExpr struct {
	exprBase
	Items []Expr
}

// ---- Statements ----

// stmtBase carries positions for statements.
type stmtBase struct{ Pos Pos }

func (s *stmtBase) NodePos() Pos { return s.Pos }
func (s *stmtBase) stmtNode()    {}

// ExprStmt is an expression used as a statement.
type ExprStmt struct {
	stmtBase
	X Expr
}

// DeclStmt declares one or more local variables.
type DeclStmt struct {
	stmtBase
	Decls []*VarDecl
}

// BlockStmt is a brace-enclosed statement list.
type BlockStmt struct {
	stmtBase
	List []Stmt
}

// IfStmt is if/else.
type IfStmt struct {
	stmtBase
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// ForStmt is a for loop; any of Init/Cond/Post may be nil. Init may be a
// DeclStmt or ExprStmt.
type ForStmt struct {
	stmtBase
	Init Stmt
	Cond Expr
	Post Expr
	Body Stmt
}

// WhileStmt is while (Cond) Body or do Body while (Cond) when Do is set.
type WhileStmt struct {
	stmtBase
	Cond Expr
	Body Stmt
	Do   bool
}

// SwitchStmt is switch with flattened cases.
type SwitchStmt struct {
	stmtBase
	Tag   Expr
	Cases []*CaseClause
}

// CaseClause is one case (or default when IsDefault) of a switch.
type CaseClause struct {
	Pos       Pos
	Value     Expr // nil for default
	IsDefault bool
	Body      []Stmt
}

// BreakStmt breaks the innermost loop or switch.
type BreakStmt struct{ stmtBase }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ stmtBase }

// ReturnStmt returns from the current function; Value may be nil.
type ReturnStmt struct {
	stmtBase
	Value Expr
}

// ---- Declarations ----

// StorageClass captures static/extern markers (MiniC mostly ignores them).
type StorageClass int

// Storage classes.
const (
	SCNone StorageClass = iota
	SCStatic
	SCExtern
	SCTypedef
)

// VarDecl declares a variable (global, local, or parameter).
type VarDecl struct {
	Pos     Pos
	Name    string
	Type    *Type
	Init    Expr // may be nil; InitListExpr for aggregates
	Storage StorageClass
	IsParam bool
	Global  bool
}

// FuncDecl is a function definition or prototype (Body nil).
type FuncDecl struct {
	Pos    Pos
	Name   string
	Type   *Type // TFunc
	Params []*VarDecl
	Body   *BlockStmt // nil for prototypes
	Static bool
}

// StructDecl is a named struct definition.
type StructDecl struct {
	Pos  Pos
	Name string
	Type *Type
}

// TypedefDecl binds a name to a type.
type TypedefDecl struct {
	Pos  Pos
	Name string
	Type *Type
}

// File is a parsed translation unit.
type File struct {
	Name     string
	Funcs    []*FuncDecl
	Globals  []*VarDecl
	Structs  []*StructDecl
	Typedefs []*TypedefDecl
}

// Func returns the function with the given name, or nil.
func (f *File) Func(name string) *FuncDecl {
	for _, fn := range f.Funcs {
		if fn.Name == name {
			return fn
		}
	}
	return nil
}

// FuncNames returns the names of all defined (non-prototype) functions in
// declaration order.
func (f *File) FuncNames() []string {
	var names []string
	for _, fn := range f.Funcs {
		if fn.Body != nil {
			names = append(names, fn.Name)
		}
	}
	return names
}
