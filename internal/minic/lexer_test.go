package minic

import (
	"strings"
	"testing"
)

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestTokenizeBasics(t *testing.T) {
	toks, err := Tokenize("t.c", "int x = 42;")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{KwInt, Ident, Assign, IntLit, Semi}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
	if toks[3].IntVal != 42 {
		t.Errorf("IntVal = %d, want 42", toks[3].IntVal)
	}
}

func TestTokenizeOperators(t *testing.T) {
	src := "a += b << 2; c->d++; e >= f && g != h; x <<= 1; y >>= 2; p ... "
	toks, err := Tokenize("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	var ops []Kind
	for _, tk := range toks {
		switch tk.Kind {
		case Ident, IntLit, Semi:
		default:
			ops = append(ops, tk.Kind)
		}
	}
	want := []Kind{PlusAssign, Shl, Arrow, PlusPlus, Ge, AndAnd, NotEq, ShlAssign, ShrAssign, Ellipsis}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v, want %v", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("op %d: got %s, want %s", i, ops[i], want[i])
		}
	}
}

func TestTokenizeNumbers(t *testing.T) {
	cases := []struct {
		src     string
		isFloat bool
		fval    float64
		ival    int64
	}{
		{"123", false, 0, 123},
		{"0x1F", false, 0, 31},
		{"1.5", true, 1.5, 0},
		{"1e3", true, 1000, 0},
		{"2.5e-2", true, 0.025, 0},
		{"1.0f", true, 1.0, 0},
		{".5", true, 0.5, 0},
		{"100L", false, 0, 100},
		{"7u", false, 0, 7},
	}
	for _, c := range cases {
		toks, err := Tokenize("t.c", c.src)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		if len(toks) != 1 {
			t.Fatalf("%s: got %d tokens", c.src, len(toks))
		}
		tk := toks[0]
		if c.isFloat {
			if tk.Kind != FloatLit || tk.FloatVal != c.fval {
				t.Errorf("%s: got %v %v, want float %v", c.src, tk.Kind, tk.FloatVal, c.fval)
			}
		} else {
			if tk.Kind != IntLit || tk.IntVal != c.ival {
				t.Errorf("%s: got %v %v, want int %v", c.src, tk.Kind, tk.IntVal, c.ival)
			}
		}
	}
}

func TestTokenizeComments(t *testing.T) {
	src := `
int a; // line comment
/* block */ int b;
/* multi
   line
   comment */ int c;
int /* inline */ d;
`
	toks, err := Tokenize("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, tk := range toks {
		if tk.Kind == Ident {
			names = append(names, tk.Text)
		}
	}
	if strings.Join(names, ",") != "a,b,c,d" {
		t.Errorf("identifiers = %v", names)
	}
}

func TestTokenizeStringsAndChars(t *testing.T) {
	toks, err := Tokenize("t.c", `printf("hi\n%d", 'x');`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].Kind != StringLit || toks[2].Text != "hi\n%d" {
		t.Errorf("string = %q", toks[2].Text)
	}
	if toks[4].Kind != CharLit || toks[4].IntVal != 'x' {
		t.Errorf("char = %v", toks[4])
	}
}

func TestPreprocessorDefine(t *testing.T) {
	src := `
#include <math.h>
#define SIZE 64
#define TWO_PI (2.0 * M_PI)
int arr[SIZE];
double x = TWO_PI;
`
	toks, err := Tokenize("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	// arr[64]
	found := false
	for i, tk := range toks {
		if tk.Kind == Ident && tk.Text == "arr" {
			if toks[i+2].Kind != IntLit || toks[i+2].IntVal != 64 {
				t.Errorf("SIZE expanded to %v", toks[i+2])
			}
			found = true
		}
		if tk.Kind == Ident && (tk.Text == "SIZE" || tk.Text == "TWO_PI" || tk.Text == "M_PI") {
			t.Errorf("macro %s not expanded", tk.Text)
		}
	}
	if !found {
		t.Error("arr declaration not found")
	}
}

func TestPredefinedMacros(t *testing.T) {
	toks, err := Tokenize("t.c", "double p = M_PI; void* q = NULL;")
	if err != nil {
		t.Fatal(err)
	}
	sawPi, sawNull := false, false
	for _, tk := range toks {
		if tk.Kind == FloatLit && tk.FloatVal > 3.14 && tk.FloatVal < 3.15 {
			sawPi = true
		}
		if tk.Kind == IntLit && tk.IntVal == 0 {
			sawNull = true
		}
	}
	if !sawPi || !sawNull {
		t.Errorf("M_PI expanded=%v NULL expanded=%v", sawPi, sawNull)
	}
}

func TestFunctionLikeMacroRejected(t *testing.T) {
	_, err := Tokenize("t.c", "#define SQ(x) ((x)*(x))\nint y = SQ(3);")
	if err == nil {
		t.Fatal("expected error for function-like macro")
	}
	if !strings.Contains(err.Error(), "function-like macro") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{`"unterminated`, "'a", "@"} {
		if _, err := Tokenize("t.c", src); err == nil {
			t.Errorf("%q: expected lex error", src)
		}
	}
}

func TestTokenPositions(t *testing.T) {
	toks, err := Tokenize("f.c", "int\n  x;")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("int at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("x at %v, want 2:3", toks[1].Pos)
	}
	if got := toks[1].Pos.String(); got != "f.c:2:3" {
		t.Errorf("Pos.String() = %q", got)
	}
}

func TestComplexKeyword(t *testing.T) {
	for _, src := range []string{"float _Complex z;", "float complex z;", "double complex w;"} {
		toks, err := Tokenize("t.c", src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if toks[1].Kind != KwComplex {
			t.Errorf("%s: second token = %s, want complex keyword", src, toks[1].Kind)
		}
	}
}

func TestImaginaryUnitMacro(t *testing.T) {
	toks, err := Tokenize("t.c", "double complex z = 3.0 + 2.0*I;")
	if err != nil {
		t.Fatal(err)
	}
	saw := false
	for _, tk := range toks {
		if tk.Kind == Ident && tk.Text == "__I__" {
			saw = true
		}
	}
	if !saw {
		t.Error("I did not expand to __I__")
	}
}
