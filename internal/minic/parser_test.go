package minic

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *File {
	t.Helper()
	f, err := Parse("test.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f
}

func mustCheck(t *testing.T, src string) *File {
	t.Helper()
	f, err := ParseAndCheck("test.c", src)
	if err != nil {
		t.Fatalf("parse+check: %v", err)
	}
	return f
}

func TestParseSimpleFunction(t *testing.T) {
	f := mustParse(t, `
int add(int a, int b) {
    return a + b;
}`)
	if len(f.Funcs) != 1 {
		t.Fatalf("funcs = %d", len(f.Funcs))
	}
	fn := f.Funcs[0]
	if fn.Name != "add" || len(fn.Params) != 2 || fn.Type.Ret.Kind != TInt {
		t.Errorf("unexpected signature: %s %v", fn.Name, fn.Type)
	}
	if fn.Body == nil || len(fn.Body.List) != 1 {
		t.Fatalf("body missing")
	}
	if _, ok := fn.Body.List[0].(*ReturnStmt); !ok {
		t.Errorf("body[0] = %T, want ReturnStmt", fn.Body.List[0])
	}
}

func TestParseStructTypedef(t *testing.T) {
	f := mustParse(t, `
typedef struct {
    float real;
    float imag;
} complex_t;

complex_t make(float r, float i) {
    complex_t c;
    c.real = r;
    c.imag = i;
    return c;
}`)
	if len(f.Typedefs) != 1 {
		t.Fatalf("typedefs = %d", len(f.Typedefs))
	}
	td := f.Typedefs[0]
	if td.Name != "complex_t" || td.Type.Kind != TStruct || len(td.Type.Fields) != 2 {
		t.Errorf("typedef = %+v", td)
	}
	if td.Type.StructName != "complex_t" {
		t.Errorf("anonymous struct should adopt typedef name, got %q", td.Type.StructName)
	}
}

func TestParseNamedStruct(t *testing.T) {
	f := mustParse(t, `
struct point { int x; int y; };
int getx(struct point* p) { return p->x; }
`)
	if len(f.Structs) != 1 || f.Structs[0].Name != "point" {
		t.Fatalf("structs = %+v", f.Structs)
	}
	fn := f.Funcs[0]
	pt := fn.Params[0].Type
	if pt.Kind != TPointer || pt.Elem.Kind != TStruct || pt.Elem.StructName != "point" {
		t.Errorf("param type = %s", pt)
	}
}

func TestParsePointerAndArrayDeclarators(t *testing.T) {
	f := mustParse(t, `
float* p;
float arr[16];
float mat[4][4];
float* ptrs[8];
int n;
`)
	types := map[string]string{}
	for _, g := range f.Globals {
		types[g.Name] = g.Type.String()
	}
	want := map[string]string{
		"p":    "float*",
		"arr":  "float[16]",
		"mat":  "float[4][4]",
		"ptrs": "float*[8]",
		"n":    "int",
	}
	for name, w := range want {
		if types[name] != w {
			t.Errorf("%s: got %s, want %s", name, types[name], w)
		}
	}
}

func TestParseVLA(t *testing.T) {
	f := mustParse(t, `
void work(int n) {
    float buf[n];
    buf[0] = 1.0f;
}`)
	ds := f.Funcs[0].Body.List[0].(*DeclStmt)
	typ := ds.Decls[0].Type
	if typ.Kind != TArray || typ.ArrayLen >= 0 || typ.ArrayLenExpr == nil {
		t.Errorf("VLA type = %+v", typ)
	}
}

func TestParseControlFlow(t *testing.T) {
	f := mustParse(t, `
int classify(int x) {
    if (x < 0) return -1;
    else if (x == 0) return 0;
    for (int i = 0; i < 10; i++) x += i;
    while (x > 100) x /= 2;
    do { x--; } while (x > 50);
    switch (x) {
    case 1: return 1;
    case 2:
    case 3: return 23;
    default: break;
    }
    return x;
}`)
	body := f.Funcs[0].Body.List
	if len(body) != 6 {
		t.Fatalf("statements = %d, want 6", len(body))
	}
	if _, ok := body[0].(*IfStmt); !ok {
		t.Errorf("body[0] = %T", body[0])
	}
	if _, ok := body[1].(*ForStmt); !ok {
		t.Errorf("body[1] = %T", body[1])
	}
	ws, ok := body[2].(*WhileStmt)
	if !ok || ws.Do {
		t.Errorf("body[2] = %T (do=%v)", body[2], ok && ws.Do)
	}
	dw, ok := body[3].(*WhileStmt)
	if !ok || !dw.Do {
		t.Errorf("body[3] = %T, want do-while", body[3])
	}
	sw, ok := body[4].(*SwitchStmt)
	if !ok {
		t.Fatalf("body[4] = %T, want switch", body[4])
	}
	if len(sw.Cases) != 4 {
		t.Errorf("cases = %d, want 4", len(sw.Cases))
	}
	if !sw.Cases[3].IsDefault {
		t.Error("last case should be default")
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	f := mustParse(t, "int x = 1 + 2 * 3;")
	be := f.Globals[0].Init.(*BinaryExpr)
	if be.Op != Plus {
		t.Fatalf("root op = %s, want +", be.Op)
	}
	r := be.R.(*BinaryExpr)
	if r.Op != Star {
		t.Errorf("right op = %s, want *", r.Op)
	}
}

func TestParseTernaryAndLogical(t *testing.T) {
	f := mustParse(t, "int x = 1 < 2 && 3 > 2 ? 10 : 20;")
	ce, ok := f.Globals[0].Init.(*CondExpr)
	if !ok {
		t.Fatalf("init = %T", f.Globals[0].Init)
	}
	if _, ok := ce.Cond.(*BinaryExpr); !ok {
		t.Errorf("cond = %T", ce.Cond)
	}
}

func TestParseCastAndSizeof(t *testing.T) {
	f := mustParse(t, `
void work(void) {
    double d = (double)3;
    float* p = (float*)malloc(16 * sizeof(float));
    long s = sizeof d;
}`)
	body := f.Funcs[0].Body.List
	d0 := body[0].(*DeclStmt).Decls[0]
	if _, ok := d0.Init.(*CastExpr); !ok {
		t.Errorf("d init = %T, want cast", d0.Init)
	}
	d2 := body[2].(*DeclStmt).Decls[0]
	if se, ok := d2.Init.(*SizeofExpr); !ok || se.X == nil {
		t.Errorf("s init = %T, want sizeof expr", d2.Init)
	}
}

func TestParseInitializerLists(t *testing.T) {
	f := mustParse(t, `
float w[4] = {1.0f, 0.0f, -1.0f, 0.0f};
int grid[2][2] = {{1, 2}, {3, 4}};
`)
	il, ok := f.Globals[0].Init.(*InitListExpr)
	if !ok || len(il.Items) != 4 {
		t.Fatalf("w init = %T", f.Globals[0].Init)
	}
	il2 := f.Globals[1].Init.(*InitListExpr)
	if len(il2.Items) != 2 {
		t.Fatalf("grid rows = %d", len(il2.Items))
	}
	if _, ok := il2.Items[0].(*InitListExpr); !ok {
		t.Errorf("grid[0] = %T", il2.Items[0])
	}
}

func TestParseIncompleteArrayCompletedByInit(t *testing.T) {
	f := mustCheck(t, "int tab[] = {1, 2, 3, 4, 5};")
	typ := f.Globals[0].Type
	if typ.ArrayLen != 5 {
		t.Errorf("inferred length = %d, want 5", typ.ArrayLen)
	}
}

func TestParseEnum(t *testing.T) {
	f := mustParse(t, `
enum dir { FORWARD, BACKWARD = 5, SIDEWAYS };
int x = BACKWARD;
int y = SIDEWAYS;
`)
	if v := f.Globals[0].Init.(*IntLitExpr).Value; v != 5 {
		t.Errorf("BACKWARD = %d", v)
	}
	if v := f.Globals[1].Init.(*IntLitExpr).Value; v != 6 {
		t.Errorf("SIDEWAYS = %d", v)
	}
}

func TestParseRecursiveFunction(t *testing.T) {
	f := mustCheck(t, `
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}`)
	ret := f.Funcs[0].Body.List[1].(*ReturnStmt)
	be := ret.Value.(*BinaryExpr)
	call := be.L.(*CallExpr)
	id := call.Fun.(*IdentExpr)
	if id.Func == nil || id.Func.Name != "fib" {
		t.Error("recursive call not resolved")
	}
}

func TestParsePrototypeThenDefinition(t *testing.T) {
	f := mustCheck(t, `
void helper(int n);
void caller(void) { helper(3); }
void helper(int n) { }
`)
	count := 0
	for _, fn := range f.Funcs {
		if fn.Name == "helper" {
			count++
		}
	}
	if count != 2 {
		t.Fatalf("helper decls = %d", count)
	}
}

func TestParseComplexProgram(t *testing.T) {
	mustCheck(t, `
#include <complex.h>
#include <math.h>

void dft(double complex* in, double complex* out, int n) {
    for (int k = 0; k < n; k++) {
        double complex sum = 0;
        for (int j = 0; j < n; j++) {
            double angle = -2.0 * M_PI * j * k / n;
            sum += in[j] * (cos(angle) + sin(angle) * I);
        }
        out[k] = sum;
    }
}`)
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"int x = ;",
		"int f( {",
		"void f(void) { if (x { } }",
		"void f(void) { goto done; }",
		"int 3x;",
		"void f(void) { return 1 }",
	}
	for _, src := range cases {
		if _, err := Parse("t.c", src); err == nil {
			t.Errorf("%q: expected parse error", src)
		}
	}
}

func TestParseWhileTrueBreak(t *testing.T) {
	f := mustCheck(t, `
int count(int n) {
    int i = 0;
    while (1) {
        if (i >= n) break;
        i++;
    }
    return i;
}`)
	ws := f.Funcs[0].Body.List[1].(*WhileStmt)
	if lit, ok := ws.Cond.(*IntLitExpr); !ok || lit.Value != 1 {
		t.Errorf("while cond = %v", ws.Cond)
	}
}

func TestParsePointerArithmetic(t *testing.T) {
	mustCheck(t, `
float sum(float* data, int n) {
    float* end = data + n;
    float total = 0.0f;
    while (data < end) {
        total += *data++;
    }
    return total;
}`)
}

func TestParseFunctionPointerParamDegradesToVoidPtr(t *testing.T) {
	f := mustParse(t, "void apply(void (*fn)(int), int x) { }")
	pt := f.Funcs[0].Params[0].Type
	if !pt.IsVoidPointer() {
		t.Errorf("function pointer param = %s, want void*", pt)
	}
}

func TestPrintRoundTrip(t *testing.T) {
	src := `
typedef struct {
    float re;
    float im;
} cpx;

int is_pow2(int n) {
    return n > 0 && (n & (n - 1)) == 0;
}

void scale(cpx* data, int n, float f) {
    for (int i = 0; i < n; i++) {
        data[i].re = data[i].re * f;
        data[i].im = data[i].im * f;
    }
}`
	f1 := mustCheck(t, src)
	printed := PrintFile(f1)
	f2, err := ParseAndCheck("printed.c", printed)
	if err != nil {
		t.Fatalf("re-parse printed source: %v\nsource:\n%s", err, printed)
	}
	if len(f2.Funcs) != len(f1.Funcs) {
		t.Errorf("function count changed: %d -> %d", len(f1.Funcs), len(f2.Funcs))
	}
	p2 := PrintFile(f2)
	if printed != p2 {
		t.Errorf("printing not idempotent:\n--- first ---\n%s\n--- second ---\n%s", printed, p2)
	}
}

func TestExprString(t *testing.T) {
	f := mustParse(t, "int x = (1 + 2) * f(3, 4);")
	s := ExprString(f.Globals[0].Init)
	if !strings.Contains(s, "1 + 2") || !strings.Contains(s, "f(3, 4)") {
		t.Errorf("ExprString = %q", s)
	}
}
