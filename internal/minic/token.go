// Package minic implements a lexer, parser and type checker for MiniC, the
// C subset FACC consumes. MiniC covers the constructs observed in the
// paper's 25-program FFT benchmark suite: structs and typedefs, C99 complex
// types, pointers with arithmetic, fixed and variable-length arrays, the
// full statement repertoire (for / while / do-while / switch / recursion)
// and a small libc/libm builtin surface (malloc, printf, sin, cexp, ...).
package minic

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds. Keyword kinds follow the punctuation block.
const (
	EOF Kind = iota
	Ident
	IntLit
	FloatLit
	CharLit
	StringLit

	// Punctuation and operators.
	LParen   // (
	RParen   // )
	LBrace   // {
	RBrace   // }
	LBracket // [
	RBracket // ]
	Comma    // ,
	Semi     // ;
	Colon    // :
	Question // ?
	Arrow    // ->
	Dot      // .
	Ellipsis // ...

	Plus       // +
	Minus      // -
	Star       // *
	Slash      // /
	Percent    // %
	Amp        // &
	Pipe       // |
	Caret      // ^
	Tilde      // ~
	Not        // !
	Assign     // =
	Lt         // <
	Gt         // >
	PlusPlus   // ++
	MinusMinus // --
	Shl        // <<
	Shr        // >>
	Le         // <=
	Ge         // >=
	EqEq       // ==
	NotEq      // !=
	AndAnd     // &&
	OrOr       // ||

	PlusAssign    // +=
	MinusAssign   // -=
	StarAssign    // *=
	SlashAssign   // /=
	PercentAssign // %=
	AmpAssign     // &=
	PipeAssign    // |=
	CaretAssign   // ^=
	ShlAssign     // <<=
	ShrAssign     // >>=

	// Keywords.
	KwVoid
	KwChar
	KwShort
	KwInt
	KwLong
	KwFloat
	KwDouble
	KwSigned
	KwUnsigned
	KwComplex // "_Complex" or "complex"
	KwStruct
	KwUnion
	KwEnum
	KwTypedef
	KwConst
	KwStatic
	KwExtern
	KwInline
	KwVolatile
	KwRestrict
	KwSizeof
	KwIf
	KwElse
	KwFor
	KwWhile
	KwDo
	KwSwitch
	KwCase
	KwDefault
	KwBreak
	KwContinue
	KwReturn
	KwGoto
)

var kindNames = map[Kind]string{
	EOF: "EOF", Ident: "identifier", IntLit: "integer literal",
	FloatLit: "float literal", CharLit: "char literal", StringLit: "string literal",
	LParen: "(", RParen: ")", LBrace: "{", RBrace: "}", LBracket: "[",
	RBracket: "]", Comma: ",", Semi: ";", Colon: ":", Question: "?",
	Arrow: "->", Dot: ".", Ellipsis: "...",
	Plus: "+", Minus: "-", Star: "*", Slash: "/", Percent: "%", Amp: "&",
	Pipe: "|", Caret: "^", Tilde: "~", Not: "!", Assign: "=", Lt: "<",
	Gt: ">", PlusPlus: "++", MinusMinus: "--", Shl: "<<", Shr: ">>",
	Le: "<=", Ge: ">=", EqEq: "==", NotEq: "!=", AndAnd: "&&", OrOr: "||",
	PlusAssign: "+=", MinusAssign: "-=", StarAssign: "*=", SlashAssign: "/=",
	PercentAssign: "%=", AmpAssign: "&=", PipeAssign: "|=", CaretAssign: "^=",
	ShlAssign: "<<=", ShrAssign: ">>=",
	KwVoid: "void", KwChar: "char", KwShort: "short", KwInt: "int",
	KwLong: "long", KwFloat: "float", KwDouble: "double", KwSigned: "signed",
	KwUnsigned: "unsigned", KwComplex: "complex", KwStruct: "struct",
	KwUnion: "union", KwEnum: "enum", KwTypedef: "typedef", KwConst: "const",
	KwStatic: "static", KwExtern: "extern", KwInline: "inline",
	KwVolatile: "volatile", KwRestrict: "restrict", KwSizeof: "sizeof",
	KwIf: "if", KwElse: "else", KwFor: "for", KwWhile: "while", KwDo: "do",
	KwSwitch: "switch", KwCase: "case", KwDefault: "default",
	KwBreak: "break", KwContinue: "continue", KwReturn: "return", KwGoto: "goto",
}

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"void": KwVoid, "char": KwChar, "short": KwShort, "int": KwInt,
	"long": KwLong, "float": KwFloat, "double": KwDouble,
	"signed": KwSigned, "unsigned": KwUnsigned,
	"_Complex": KwComplex, "complex": KwComplex,
	"struct": KwStruct, "union": KwUnion, "enum": KwEnum,
	"typedef": KwTypedef, "const": KwConst, "static": KwStatic,
	"extern": KwExtern, "inline": KwInline, "volatile": KwVolatile,
	"restrict": KwRestrict, "__restrict": KwRestrict,
	"sizeof": KwSizeof, "if": KwIf, "else": KwElse, "for": KwFor,
	"while": KwWhile, "do": KwDo, "switch": KwSwitch, "case": KwCase,
	"default": KwDefault, "break": KwBreak, "continue": KwContinue,
	"return": KwReturn, "goto": KwGoto,
}

// Pos is a source position.
type Pos struct {
	File string
	Line int // 1-based
	Col  int // 1-based, in bytes
}

// String formats the position as file:line:col.
func (p Pos) String() string {
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// Token is a single lexical token.
type Token struct {
	Kind Kind
	Text string // raw text (identifiers, literals); decoded for strings
	Pos  Pos

	IntVal       int64   // valid when Kind == IntLit or CharLit
	FloatVal     float64 // valid when Kind == FloatLit
	IsFloat32Lit bool    // float literal carried an 'f' suffix
}

func (t Token) String() string {
	switch t.Kind {
	case Ident, IntLit, FloatLit, CharLit:
		return t.Text
	case StringLit:
		return fmt.Sprintf("%q", t.Text)
	default:
		return t.Kind.String()
	}
}
