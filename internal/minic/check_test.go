package minic

import (
	"strings"
	"testing"
)

func checkErr(t *testing.T, src, wantSub string) {
	t.Helper()
	_, err := ParseAndCheck("t.c", src)
	if err == nil {
		t.Fatalf("expected error containing %q, got none", wantSub)
	}
	if !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("error %q does not contain %q", err.Error(), wantSub)
	}
}

func TestCheckUndeclared(t *testing.T) {
	checkErr(t, "int f(void) { return x; }", "undeclared identifier")
}

func TestCheckTypesOfLiterals(t *testing.T) {
	f := mustCheck(t, `
int a = 1;
long b = 5000000000;
double c = 1.5;
float d = 1.5f;
`)
	wants := []TypeKind{TInt, TLong, TDouble, TFloat}
	for i, g := range f.Globals {
		if g.Init.ResultType().Kind != wants[i] {
			t.Errorf("%s: literal type = %s", g.Name, g.Init.ResultType())
		}
	}
}

func TestCheckArithPromotion(t *testing.T) {
	f := mustCheck(t, `
void w(void) {
    int i = 3;
    float x = 1.5f;
    double d = 2.5;
    float complex cf = 0;
    double complex cd = 0;
    int r1 = i + i;
    double r2 = i + d;
    float r3 = i + x;
    double complex r4 = cf + d;
    float complex r5 = cf + x;
    double complex r6 = cd + i;
}`)
	body := f.Funcs[0].Body.List
	wants := map[int]TypeKind{5: TInt, 6: TDouble, 7: TFloat, 8: TComplexDouble, 9: TComplexFloat, 10: TComplexDouble}
	for idx, want := range wants {
		d := body[idx].(*DeclStmt).Decls[0]
		got := d.Init.ResultType().Kind
		if got != want {
			t.Errorf("%s: init type kind = %v, want %v", d.Name, got, want)
		}
	}
}

func TestCheckPointerOps(t *testing.T) {
	f := mustCheck(t, `
long diff(float* a, float* b) {
    float* p = a + 3;
    return p - b;
}`)
	ret := f.Funcs[0].Body.List[1].(*ReturnStmt)
	if ret.Value.ResultType().Kind != TLong {
		t.Errorf("pointer difference type = %s", ret.Value.ResultType())
	}
}

func TestCheckMemberAccess(t *testing.T) {
	f := mustCheck(t, `
typedef struct { float re; float im; } cpx;
float getim(cpx* p) { return p->im; }
float getre(cpx v) { return v.re; }
`)
	for _, fn := range f.Funcs {
		ret := fn.Body.List[0].(*ReturnStmt)
		me := ret.Value.(*MemberExpr)
		wantIdx := 1
		if fn.Name == "getre" {
			wantIdx = 0
		}
		if me.FieldIndex != wantIdx {
			t.Errorf("%s: field index = %d, want %d", fn.Name, me.FieldIndex, wantIdx)
		}
	}
}

func TestCheckBadMember(t *testing.T) {
	checkErr(t, `
typedef struct { int x; } s;
int f(s v) { return v.y; }`, "no field")
}

func TestCheckDerefNonPointer(t *testing.T) {
	checkErr(t, "int f(int x) { return *x; }", "dereference")
}

func TestCheckVoidPointerIndexRejected(t *testing.T) {
	checkErr(t, "int f(void* p) { return ((int*)0)[0] + p[1]; }", "void*")
}

func TestCheckBuiltins(t *testing.T) {
	f := mustCheck(t, `
double f(double x) { return sin(x) + sqrt(x); }
float g(float x) { return sinf(x); }
void* h(int n) { return malloc(n * 8); }
`)
	call := f.Funcs[0].Body.List[0].(*ReturnStmt).Value.(*BinaryExpr).L.(*CallExpr)
	if call.Builtin != "sin" {
		t.Errorf("builtin = %q, want sin", call.Builtin)
	}
	if call.ResultType().Kind != TDouble {
		t.Errorf("sin result = %s", call.ResultType())
	}
	mall := f.Funcs[2].Body.List[0].(*ReturnStmt).Value.(*CallExpr)
	if mall.Builtin != "malloc" || !mall.ResultType().IsVoidPointer() {
		t.Errorf("malloc = %q -> %s", mall.Builtin, mall.ResultType())
	}
}

func TestCheckUserFunctionShadowsBuiltin(t *testing.T) {
	f := mustCheck(t, `
double sin(double x) { return x; }
double f(double x) { return sin(x); }
`)
	call := f.Funcs[1].Body.List[0].(*ReturnStmt).Value.(*CallExpr)
	if call.Builtin != "" {
		t.Error("user-defined sin should not resolve to builtin")
	}
}

func TestCheckArgCount(t *testing.T) {
	checkErr(t, `
int add(int a, int b) { return a + b; }
int f(void) { return add(1); }`, "expects 2 arguments")
}

func TestCheckArgCountBuiltin(t *testing.T) {
	checkErr(t, "double f(void) { return sin(1.0, 2.0); }", "expects 1 arguments")
}

func TestCheckPrintfVariadic(t *testing.T) {
	mustCheck(t, `void f(int n) { printf("%d %f\n", n, 1.5); }`)
}

func TestCheckReturnMismatch(t *testing.T) {
	checkErr(t, `
typedef struct { int x; } s;
int f(s v) { return v; }`, "cannot return")
	checkErr(t, "void f(void) { return 3; }", "return with value")
	checkErr(t, "int f(void) { return; }", "return without value")
}

func TestCheckAssignability(t *testing.T) {
	checkErr(t, `
typedef struct { int x; } s;
void f(s v) { int y; y = v; }`, "cannot assign")
}

func TestCheckLvalue(t *testing.T) {
	checkErr(t, "void f(void) { 3 = 4; }", "not an lvalue")
	checkErr(t, "void f(int x) { &(x + 1); }", "non-lvalue")
}

func TestCheckComplexOps(t *testing.T) {
	mustCheck(t, `
#include <complex.h>
double complex rotate(double complex z, double angle) {
    return z * cexp(angle * I);
}
double mag(double complex z) { return cabs(z); }
double re(double complex z) { return creal(z); }
`)
}

func TestCheckComplexComparisonRejected(t *testing.T) {
	checkErr(t, `
int f(double complex a, double complex b) { return a < b; }`, "invalid operands")
}

func TestCheckScopes(t *testing.T) {
	f := mustCheck(t, `
int x = 1;
int f(void) {
    int x = 2;
    {
        int x = 3;
        x = 4;
    }
    return x;
}`)
	// The return must resolve to the function-level x, not the global.
	ret := f.Funcs[0].Body.List[2].(*ReturnStmt)
	id := ret.Value.(*IdentExpr)
	if id.Def == nil || id.Def.Global {
		t.Error("return x resolved to global, want local")
	}
}

func TestCheckSwitchTag(t *testing.T) {
	checkErr(t, "void f(double d) { switch (d) { case 1: break; } }", "switch tag")
}

func TestCheckStringArg(t *testing.T) {
	mustCheck(t, `void f(void) { puts("hello"); }`)
}

func TestCheckVLADecl(t *testing.T) {
	mustCheck(t, `
void f(int n) {
    double buf[n];
    double grid[n][4];
    buf[0] = grid[0][0];
}`)
	checkErr(t, "void f(double d) { int buf[d]; }", "must be an integer")
}

func TestUsualArithTable(t *testing.T) {
	cases := []struct{ a, b, want *Type }{
		{Int, Int, Int},
		{Char, Char, Int},
		{Int, Long, Long},
		{Int, Float, Float},
		{Float, Double, Double},
		{Float, ComplexFloat, ComplexFloat},
		{Double, ComplexFloat, ComplexDouble},
		{ComplexFloat, ComplexDouble, ComplexDouble},
		{Long, Double, Double},
	}
	for _, c := range cases {
		if got := UsualArith(c.a, c.b); got.Kind != c.want.Kind {
			t.Errorf("UsualArith(%s, %s) = %s, want %s", c.a, c.b, got, c.want)
		}
		if got := UsualArith(c.b, c.a); got.Kind != c.want.Kind {
			t.Errorf("UsualArith(%s, %s) = %s, want %s", c.b, c.a, got, c.want)
		}
	}
}

func TestSizeofLayout(t *testing.T) {
	f := mustCheck(t, `
typedef struct { float re; float im; } cf;
typedef struct { char c; double d; } padded;
`)
	cf := f.Typedefs[0].Type
	if cf.Sizeof() != 8 {
		t.Errorf("sizeof(cf) = %d, want 8", cf.Sizeof())
	}
	padded := f.Typedefs[1].Type
	if padded.Sizeof() != 16 {
		t.Errorf("sizeof(padded) = %d, want 16 (alignment padding)", padded.Sizeof())
	}
	if Int.Sizeof() != 4 || Double.Sizeof() != 8 || ComplexFloat.Sizeof() != 8 ||
		ComplexDouble.Sizeof() != 16 || PointerTo(Int).Sizeof() != 8 {
		t.Error("scalar sizes wrong")
	}
	if ArrayOf(Float, 10).Sizeof() != 40 {
		t.Error("array size wrong")
	}
}

func TestTypeSame(t *testing.T) {
	if !PointerTo(Float).Same(PointerTo(Float)) {
		t.Error("identical pointer types differ")
	}
	if PointerTo(Float).Same(PointerTo(Double)) {
		t.Error("distinct pointer types compare equal")
	}
	if !ArrayOf(Int, 4).Same(ArrayOf(Int, 4)) {
		t.Error("identical arrays differ")
	}
	if ArrayOf(Int, 4).Same(ArrayOf(Int, 5)) {
		t.Error("different-length arrays compare equal")
	}
	s1 := &Type{Kind: TStruct, StructName: "a", Fields: []Field{{"x", Int}}}
	s2 := &Type{Kind: TStruct, StructName: "a"}
	if !s1.Same(s2) {
		t.Error("same-named structs differ")
	}
}

func TestConvertibleTo(t *testing.T) {
	cases := []struct {
		from, to *Type
		want     bool
	}{
		{Int, Double, true},
		{Double, Int, true},
		{ComplexFloat, Float, true}, // drops imaginary part
		{PointerTo(Float), PointerTo(Float), true},
		{PointerTo(Float), PointerTo(Double), false},
		{PointerTo(Float), PointerTo(Void), true},
		{PointerTo(Void), PointerTo(Float), true},
		{ArrayOf(Float, 8), PointerTo(Float), true},
		{Int, PointerTo(Float), true}, // NULL literal
		{&Type{Kind: TStruct, StructName: "s"}, Int, false},
	}
	for _, c := range cases {
		if got := c.from.ConvertibleTo(c.to); got != c.want {
			t.Errorf("ConvertibleTo(%s, %s) = %v, want %v", c.from, c.to, got, c.want)
		}
	}
}

func TestCheckRedefinition(t *testing.T) {
	checkErr(t, `
int f(void) { return 1; }
int f(void) { return 2; }`, "redefinition")
	// Prototype + definition (in either order) remains legal.
	mustCheck(t, `
int g(void);
int g(void) { return 1; }
int h(void) { return g(); }
int later(void);
`)
}
