package minic

import (
	"fmt"
)

// CheckError is a semantic error with a source position.
type CheckError struct {
	Pos Pos
	Msg string
}

func (e *CheckError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Builtin describes a recognized library function.
type Builtin struct {
	Name     string
	Ret      *Type
	Params   []*Type
	Variadic bool
}

// Builtins is the MiniC library surface: the libm/libc subset the FFT
// benchmark corpus uses. The interpreter implements each of these.
var Builtins = map[string]*Builtin{}

func reg(name string, ret *Type, params ...*Type) {
	Builtins[name] = &Builtin{Name: name, Ret: ret, Params: params}
}

func init() {
	d, f := Double, Float
	for _, n := range []string{"sin", "cos", "tan", "asin", "acos", "atan",
		"sqrt", "exp", "log", "log2", "log10", "fabs", "floor", "ceil",
		"round", "trunc", "cbrt", "sinh", "cosh", "tanh"} {
		reg(n, d, d)
		reg(n+"f", f, f)
	}
	reg("fabsf", f, f)
	for _, n := range []string{"pow", "atan2", "fmod", "hypot", "fmin", "fmax"} {
		reg(n, d, d, d)
		reg(n+"f", f, f, f)
	}
	reg("ldexp", d, d, Int)
	reg("abs", Int, Int)
	reg("labs", Long, Long)

	cd, cf := ComplexDouble, ComplexFloat
	reg("cexp", cd, cd)
	reg("cexpf", cf, cf)
	reg("csqrt", cd, cd)
	reg("csqrtf", cf, cf)
	reg("conj", cd, cd)
	reg("conjf", cf, cf)
	reg("cpow", cd, cd, cd)
	reg("creal", d, cd)
	reg("crealf", f, cf)
	reg("cimag", d, cd)
	reg("cimagf", f, cf)
	reg("cabs", d, cd)
	reg("cabsf", f, cf)
	reg("carg", d, cd)
	reg("cargf", f, cf)

	vp := PointerTo(Void)
	reg("malloc", vp, Long)
	reg("calloc", vp, Long, Long)
	reg("realloc", vp, vp, Long)
	reg("free", Void, vp)
	reg("memcpy", vp, vp, vp, Long)
	reg("memmove", vp, vp, vp, Long)
	reg("memset", vp, vp, Int, Long)
	reg("exit", Void, Int)
	reg("assert", Void, Int)

	Builtins["printf"] = &Builtin{Name: "printf", Ret: Int,
		Params: []*Type{PointerTo(Char)}, Variadic: true}
	Builtins["fprintf"] = &Builtin{Name: "fprintf", Ret: Int,
		Params: []*Type{vp, PointerTo(Char)}, Variadic: true}
	Builtins["puts"] = &Builtin{Name: "puts", Ret: Int, Params: []*Type{PointerTo(Char)}}
	Builtins["putchar"] = &Builtin{Name: "putchar", Ret: Int, Params: []*Type{Int}}
	// stderr/stdout appear as opaque identifiers in fprintf calls.
}

// checker resolves names and computes expression types.
type checker struct {
	file   *File
	funcs  map[string]*FuncDecl
	scopes []map[string]*VarDecl
	cur    *FuncDecl
}

// Check resolves identifiers and types every expression in f. It must be
// called (and succeed) before the interpreter or any analysis runs.
func Check(f *File) error {
	c := &checker{file: f, funcs: map[string]*FuncDecl{}}
	for _, fn := range f.Funcs {
		prev, ok := c.funcs[fn.Name]
		if ok && prev.Body != nil && fn.Body != nil {
			return errAt(fn.Pos, "redefinition of function %q (first defined at %s)",
				fn.Name, prev.Pos)
		}
		if !ok || prev.Body == nil {
			c.funcs[fn.Name] = fn
		}
	}
	c.push()
	defer c.pop()
	for _, g := range f.Globals {
		if err := c.checkVarDecl(g); err != nil {
			return err
		}
		c.define(g)
	}
	for _, fn := range f.Funcs {
		if fn.Body == nil {
			continue
		}
		if err := c.checkFunc(fn); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) push() { c.scopes = append(c.scopes, map[string]*VarDecl{}) }
func (c *checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) define(v *VarDecl) { c.scopes[len(c.scopes)-1][v.Name] = v }

func (c *checker) lookup(name string) *VarDecl {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if v, ok := c.scopes[i][name]; ok {
			return v
		}
	}
	return nil
}

func errAt(pos Pos, format string, args ...any) error {
	return &CheckError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (c *checker) checkFunc(fn *FuncDecl) error {
	c.cur = fn
	c.push()
	defer func() { c.pop(); c.cur = nil }()
	for _, prm := range fn.Params {
		if prm.Type.Kind == TArray {
			prm.Type = PointerTo(prm.Type.Elem)
		}
		c.define(prm)
	}
	return c.checkStmt(fn.Body)
}

func (c *checker) checkVarDecl(v *VarDecl) error {
	if v.Type.Kind == TArray && v.Type.ArrayLenExpr != nil {
		if err := c.checkExpr(v.Type.ArrayLenExpr); err != nil {
			return err
		}
		if !v.Type.ArrayLenExpr.ResultType().IsInteger() {
			return errAt(v.Pos, "array length of %q must be an integer", v.Name)
		}
	}
	if v.Init == nil {
		return nil
	}
	if il, ok := v.Init.(*InitListExpr); ok {
		return c.checkInitList(il, v.Type)
	}
	if err := c.checkExpr(v.Init); err != nil {
		return err
	}
	it := v.Init.ResultType().Decay()
	if !it.ConvertibleTo(v.Type.Decay()) {
		return errAt(v.Pos, "cannot initialize %s (type %s) with value of type %s",
			v.Name, v.Type, it)
	}
	return nil
}

func (c *checker) checkInitList(il *InitListExpr, t *Type) error {
	switch t.Kind {
	case TArray:
		if t.ArrayLen >= 0 && len(il.Items) > t.ArrayLen {
			return errAt(il.Pos, "too many initializers for %s", t)
		}
		if t.ArrayLen < 0 && t.ArrayLenExpr == nil {
			// Complete the array from the initializer.
			t.ArrayLen = len(il.Items)
		}
		for _, item := range il.Items {
			if sub, ok := item.(*InitListExpr); ok {
				if err := c.checkInitList(sub, t.Elem); err != nil {
					return err
				}
				continue
			}
			if err := c.checkExpr(item); err != nil {
				return err
			}
			if !item.ResultType().Decay().ConvertibleTo(t.Elem) {
				return errAt(item.NodePos(), "cannot initialize element of %s with %s",
					t, item.ResultType())
			}
		}
		il.Type = t
		return nil
	case TStruct:
		if len(il.Items) > len(t.Fields) {
			return errAt(il.Pos, "too many initializers for %s", t)
		}
		for i, item := range il.Items {
			ft := t.Fields[i].Type
			if sub, ok := item.(*InitListExpr); ok {
				if err := c.checkInitList(sub, ft); err != nil {
					return err
				}
				continue
			}
			if err := c.checkExpr(item); err != nil {
				return err
			}
			if !item.ResultType().Decay().ConvertibleTo(ft) {
				return errAt(item.NodePos(), "cannot initialize field %s with %s",
					t.Fields[i].Name, item.ResultType())
			}
		}
		il.Type = t
		return nil
	default:
		if len(il.Items) != 1 {
			return errAt(il.Pos, "scalar initializer for %s must have one element", t)
		}
		if err := c.checkExpr(il.Items[0]); err != nil {
			return err
		}
		il.Type = t
		return nil
	}
}

// ---- Statements ----

func (c *checker) checkStmt(s Stmt) error {
	switch st := s.(type) {
	case nil:
		return nil
	case *ExprStmt:
		return c.checkExpr(st.X)
	case *DeclStmt:
		for _, d := range st.Decls {
			if err := c.checkVarDecl(d); err != nil {
				return err
			}
			c.define(d)
		}
		return nil
	case *BlockStmt:
		c.push()
		defer c.pop()
		for _, sub := range st.List {
			if err := c.checkStmt(sub); err != nil {
				return err
			}
		}
		return nil
	case *IfStmt:
		if err := c.checkExpr(st.Cond); err != nil {
			return err
		}
		if !st.Cond.ResultType().Decay().IsScalar() {
			return errAt(st.Pos, "if condition must be scalar, got %s", st.Cond.ResultType())
		}
		if err := c.checkStmt(st.Then); err != nil {
			return err
		}
		return c.checkStmt(st.Else)
	case *ForStmt:
		c.push()
		defer c.pop()
		if err := c.checkStmt(st.Init); err != nil {
			return err
		}
		if st.Cond != nil {
			if err := c.checkExpr(st.Cond); err != nil {
				return err
			}
		}
		if st.Post != nil {
			if err := c.checkExpr(st.Post); err != nil {
				return err
			}
		}
		return c.checkStmt(st.Body)
	case *WhileStmt:
		if err := c.checkExpr(st.Cond); err != nil {
			return err
		}
		return c.checkStmt(st.Body)
	case *SwitchStmt:
		if err := c.checkExpr(st.Tag); err != nil {
			return err
		}
		if !st.Tag.ResultType().IsInteger() {
			return errAt(st.Pos, "switch tag must be an integer, got %s", st.Tag.ResultType())
		}
		for _, cc := range st.Cases {
			if cc.Value != nil {
				if err := c.checkExpr(cc.Value); err != nil {
					return err
				}
			}
			c.push()
			for _, sub := range cc.Body {
				if err := c.checkStmt(sub); err != nil {
					c.pop()
					return err
				}
			}
			c.pop()
		}
		return nil
	case *BreakStmt, *ContinueStmt:
		return nil
	case *ReturnStmt:
		ret := c.cur.Type.Ret
		if st.Value == nil {
			if ret.Kind != TVoid {
				return errAt(st.Pos, "return without value in function returning %s", ret)
			}
			return nil
		}
		if err := c.checkExpr(st.Value); err != nil {
			return err
		}
		if ret.Kind == TVoid {
			return errAt(st.Pos, "return with value in void function")
		}
		if !st.Value.ResultType().Decay().ConvertibleTo(ret) {
			return errAt(st.Pos, "cannot return %s from function returning %s",
				st.Value.ResultType(), ret)
		}
		return nil
	default:
		return errAt(s.NodePos(), "unhandled statement %T", s)
	}
}

// ---- Expressions ----

func (c *checker) checkExpr(e Expr) error {
	switch x := e.(type) {
	case *IntLitExpr:
		if x.Value > 1<<31-1 || x.Value < -(1<<31) {
			x.Type = Long
		} else {
			x.Type = Int
		}
		return nil
	case *FloatLitExpr:
		if x.Float32 {
			x.Type = Float
		} else {
			x.Type = Double
		}
		return nil
	case *StringLitExpr:
		x.Type = PointerTo(Char)
		return nil
	case *ImaginaryLitExpr:
		x.Type = ComplexFloat
		return nil
	case *IdentExpr:
		if v := c.lookup(x.Name); v != nil {
			x.Def = v
			x.Type = v.Type
			return nil
		}
		if fn, ok := c.funcs[x.Name]; ok {
			x.Func = fn
			x.Type = fn.Type
			return nil
		}
		if b, ok := Builtins[x.Name]; ok {
			ft := &Type{Kind: TFunc, Ret: b.Ret, Variadic: b.Variadic}
			for _, pt := range b.Params {
				ft.Params = append(ft.Params, Param{Type: pt})
			}
			x.Type = ft
			return nil
		}
		if x.Name == "stderr" || x.Name == "stdout" || x.Name == "stdin" {
			x.Type = PointerTo(Void)
			return nil
		}
		return errAt(x.Pos, "undeclared identifier %q", x.Name)
	case *UnaryExpr:
		return c.checkUnary(x)
	case *BinaryExpr:
		return c.checkBinary(x)
	case *AssignExpr:
		return c.checkAssign(x)
	case *CondExpr:
		if err := c.checkExpr(x.Cond); err != nil {
			return err
		}
		if err := c.checkExpr(x.Then); err != nil {
			return err
		}
		if err := c.checkExpr(x.Else); err != nil {
			return err
		}
		tt, et := x.Then.ResultType().Decay(), x.Else.ResultType().Decay()
		if tt.IsArithmetic() && et.IsArithmetic() {
			x.Type = UsualArith(tt, et)
		} else {
			x.Type = tt
		}
		return nil
	case *CallExpr:
		return c.checkCall(x)
	case *IndexExpr:
		if err := c.checkExpr(x.X); err != nil {
			return err
		}
		if err := c.checkExpr(x.Index); err != nil {
			return err
		}
		xt := x.X.ResultType().Decay()
		if xt.Kind != TPointer {
			return errAt(x.Pos, "cannot index value of type %s", x.X.ResultType())
		}
		if !x.Index.ResultType().IsInteger() {
			return errAt(x.Pos, "array index must be an integer, got %s", x.Index.ResultType())
		}
		if xt.Elem.Kind == TVoid {
			return errAt(x.Pos, "cannot index void*")
		}
		x.Type = xt.Elem
		return nil
	case *MemberExpr:
		if err := c.checkExpr(x.X); err != nil {
			return err
		}
		st := x.X.ResultType()
		if x.Arrow {
			st = st.Decay()
			if st.Kind != TPointer {
				return errAt(x.Pos, "-> on non-pointer type %s", x.X.ResultType())
			}
			st = st.Elem
		}
		if st.Kind != TStruct {
			return errAt(x.Pos, "member access on non-struct type %s", st)
		}
		idx := st.FieldIndex(x.Name)
		if idx < 0 {
			return errAt(x.Pos, "%s has no field %q", st, x.Name)
		}
		x.FieldIndex = idx
		x.Type = st.Fields[idx].Type
		return nil
	case *CastExpr:
		if err := c.checkExpr(x.X); err != nil {
			return err
		}
		x.Type = x.To
		return nil
	case *SizeofExpr:
		if x.X != nil {
			if err := c.checkExpr(x.X); err != nil {
				return err
			}
		}
		x.Type = Long
		return nil
	case *CommaExpr:
		if err := c.checkExpr(x.L); err != nil {
			return err
		}
		if err := c.checkExpr(x.R); err != nil {
			return err
		}
		x.Type = x.R.ResultType()
		return nil
	case *InitListExpr:
		return errAt(x.Pos, "initializer list outside declaration")
	default:
		return errAt(e.NodePos(), "unhandled expression %T", e)
	}
}

// isLvalue reports whether e designates a storage location.
func isLvalue(e Expr) bool {
	switch x := e.(type) {
	case *IdentExpr:
		return x.Def != nil
	case *UnaryExpr:
		return x.Op == Star
	case *IndexExpr, *MemberExpr:
		return true
	default:
		return false
	}
}

func (c *checker) checkUnary(x *UnaryExpr) error {
	if err := c.checkExpr(x.X); err != nil {
		return err
	}
	xt := x.X.ResultType()
	switch x.Op {
	case Minus, Plus:
		if !xt.IsArithmetic() {
			return errAt(x.Pos, "unary %s on non-arithmetic type %s", x.Op, xt)
		}
		if xt.IsInteger() && rank(xt) < rank(Int) {
			x.Type = Int
		} else {
			x.Type = xt
		}
	case Not:
		if !xt.Decay().IsScalar() {
			return errAt(x.Pos, "! on non-scalar type %s", xt)
		}
		x.Type = Int
	case Tilde:
		if !xt.IsInteger() {
			return errAt(x.Pos, "~ on non-integer type %s", xt)
		}
		x.Type = xt
	case Star:
		dt := xt.Decay()
		if dt.Kind != TPointer {
			return errAt(x.Pos, "cannot dereference type %s", xt)
		}
		if dt.Elem.Kind == TVoid {
			return errAt(x.Pos, "cannot dereference void*")
		}
		x.Type = dt.Elem
	case Amp:
		if !isLvalue(x.X) {
			return errAt(x.Pos, "cannot take address of non-lvalue")
		}
		x.Type = PointerTo(xt)
	case PlusPlus, MinusMinus:
		if !isLvalue(x.X) {
			return errAt(x.Pos, "%s requires an lvalue", x.Op)
		}
		if !xt.IsScalar() {
			return errAt(x.Pos, "%s on non-scalar type %s", x.Op, xt)
		}
		x.Type = xt
	default:
		return errAt(x.Pos, "unhandled unary operator %s", x.Op)
	}
	return nil
}

func (c *checker) checkBinary(x *BinaryExpr) error {
	if err := c.checkExpr(x.L); err != nil {
		return err
	}
	if err := c.checkExpr(x.R); err != nil {
		return err
	}
	lt, rt := x.L.ResultType().Decay(), x.R.ResultType().Decay()
	switch x.Op {
	case Plus, Minus:
		if lt.Kind == TPointer && rt.IsInteger() {
			x.Type = lt
			return nil
		}
		if x.Op == Plus && lt.IsInteger() && rt.Kind == TPointer {
			x.Type = rt
			return nil
		}
		if x.Op == Minus && lt.Kind == TPointer && rt.Kind == TPointer {
			x.Type = Long
			return nil
		}
		fallthrough
	case Star, Slash:
		if !lt.IsArithmetic() || !rt.IsArithmetic() {
			return errAt(x.Pos, "invalid operands to %s: %s and %s", x.Op, lt, rt)
		}
		x.Type = UsualArith(lt, rt)
	case Percent, Shl, Shr, Amp, Pipe, Caret:
		if !lt.IsInteger() || !rt.IsInteger() {
			return errAt(x.Pos, "invalid operands to %s: %s and %s (integers required)", x.Op, lt, rt)
		}
		x.Type = UsualArith(lt, rt)
	case Lt, Gt, Le, Ge:
		if !(lt.IsArithmetic() && rt.IsArithmetic() && !lt.IsComplex() && !rt.IsComplex()) &&
			!(lt.Kind == TPointer && rt.Kind == TPointer) &&
			!(lt.Kind == TPointer && rt.IsInteger()) &&
			!(lt.IsInteger() && rt.Kind == TPointer) {
			return errAt(x.Pos, "invalid operands to %s: %s and %s", x.Op, lt, rt)
		}
		x.Type = Int
	case EqEq, NotEq:
		ok := (lt.IsArithmetic() && rt.IsArithmetic()) ||
			(lt.Kind == TPointer && (rt.Kind == TPointer || rt.IsInteger())) ||
			(lt.IsInteger() && rt.Kind == TPointer)
		if !ok {
			return errAt(x.Pos, "invalid operands to %s: %s and %s", x.Op, lt, rt)
		}
		x.Type = Int
	case AndAnd, OrOr:
		if !lt.IsScalar() || !rt.IsScalar() {
			return errAt(x.Pos, "invalid operands to %s: %s and %s", x.Op, lt, rt)
		}
		x.Type = Int
	default:
		return errAt(x.Pos, "unhandled binary operator %s", x.Op)
	}
	return nil
}

func (c *checker) checkAssign(x *AssignExpr) error {
	if err := c.checkExpr(x.L); err != nil {
		return err
	}
	if err := c.checkExpr(x.R); err != nil {
		return err
	}
	if !isLvalue(x.L) {
		return errAt(x.Pos, "assignment target is not an lvalue")
	}
	lt := x.L.ResultType()
	rt := x.R.ResultType().Decay()
	if x.Op == Assign {
		if lt.Kind == TStruct {
			if !rt.Same(lt) {
				return errAt(x.Pos, "cannot assign %s to %s", rt, lt)
			}
		} else if !rt.ConvertibleTo(lt.Decay()) {
			return errAt(x.Pos, "cannot assign %s to %s", rt, lt)
		}
	} else {
		// Compound assignment: pointer += int is allowed, otherwise both
		// sides must be arithmetic (integer-only for %, <<, &c.).
		intOnly := x.Op == PercentAssign || x.Op == ShlAssign || x.Op == ShrAssign ||
			x.Op == AmpAssign || x.Op == PipeAssign || x.Op == CaretAssign
		if lt.Decay().Kind == TPointer {
			if !(x.Op == PlusAssign || x.Op == MinusAssign) || !rt.IsInteger() {
				return errAt(x.Pos, "invalid compound assignment to pointer")
			}
		} else if intOnly {
			if !lt.IsInteger() || !rt.IsInteger() {
				return errAt(x.Pos, "%s requires integer operands", x.Op)
			}
		} else if !lt.IsArithmetic() || !rt.IsArithmetic() {
			return errAt(x.Pos, "invalid operands to %s: %s and %s", x.Op, lt, rt)
		}
	}
	x.Type = lt
	return nil
}

func (c *checker) checkCall(x *CallExpr) error {
	id, _ := x.Fun.(*IdentExpr)
	// Builtins are resolved by name unless shadowed by a local or a
	// user-defined function.
	if id != nil {
		if c.lookup(id.Name) == nil {
			if _, userFn := c.funcs[id.Name]; !userFn {
				if b, ok := Builtins[id.Name]; ok {
					x.Builtin = id.Name
					for i, a := range x.Args {
						if err := c.checkExpr(a); err != nil {
							return err
						}
						if !b.Variadic && i < len(b.Params) {
							at := a.ResultType().Decay()
							if !at.ConvertibleTo(b.Params[i]) {
								return errAt(a.NodePos(),
									"argument %d to %s: cannot convert %s to %s",
									i+1, b.Name, at, b.Params[i])
							}
						}
					}
					if !b.Variadic && len(x.Args) != len(b.Params) {
						return errAt(x.Pos, "%s expects %d arguments, got %d",
							b.Name, len(b.Params), len(x.Args))
					}
					x.Type = b.Ret
					return nil
				}
			}
		}
	}
	if err := c.checkExpr(x.Fun); err != nil {
		return err
	}
	ft := x.Fun.ResultType()
	if ft.Kind == TPointer && ft.Elem != nil && ft.Elem.Kind == TFunc {
		ft = ft.Elem
	}
	if ft.Kind != TFunc {
		return errAt(x.Pos, "called object is not a function (type %s)", ft)
	}
	if !ft.Variadic && len(x.Args) != len(ft.Params) {
		name := "function"
		if id != nil {
			name = id.Name
		}
		return errAt(x.Pos, "%s expects %d arguments, got %d", name, len(ft.Params), len(x.Args))
	}
	for i, a := range x.Args {
		if err := c.checkExpr(a); err != nil {
			return err
		}
		if i < len(ft.Params) {
			at := a.ResultType().Decay()
			pt := ft.Params[i].Type
			if pt.Kind == TStruct {
				if !at.Same(pt) {
					return errAt(a.NodePos(), "argument %d: cannot pass %s as %s", i+1, at, pt)
				}
			} else if !at.ConvertibleTo(pt.Decay()) {
				return errAt(a.NodePos(), "argument %d: cannot convert %s to %s", i+1, at, pt)
			}
		}
	}
	x.Type = ft.Ret
	return nil
}
