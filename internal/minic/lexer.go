package minic

import (
	"fmt"
	"strconv"
	"strings"
)

// LexError is a lexical error with a source position.
type LexError struct {
	Pos Pos
	Msg string
}

func (e *LexError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer converts MiniC source text into tokens. It runs a minimal
// preprocessor first: #include lines are dropped (builtins are always in
// scope), object-like #define macros are expanded, and #undef is honored.
type Lexer struct {
	src       string
	file      string
	off       int
	line      int
	col       int
	macros    map[string][]Token // object-like macros, pre-lexed bodies
	queue     []Token            // pending expanded macro tokens
	expanding map[string]bool    // macro names currently being expanded
}

// NewLexer returns a lexer for src. file is used in positions.
func NewLexer(file, src string) (*Lexer, error) {
	lx := &Lexer{
		file:      file,
		line:      1,
		col:       1,
		macros:    map[string][]Token{},
		expanding: map[string]bool{},
	}
	pre, err := lx.preprocess(src)
	if err != nil {
		return nil, err
	}
	lx.src = pre
	lx.predefine()
	return lx, nil
}

// predefine installs the handful of macros that <math.h>/<stdlib.h> would
// normally supply and that the benchmark corpus uses.
func (lx *Lexer) predefine() {
	def := func(name string, toks ...Token) {
		if _, exists := lx.macros[name]; !exists {
			lx.macros[name] = toks
		}
	}
	def("M_PI", Token{Kind: FloatLit, Text: "3.14159265358979323846", FloatVal: 3.14159265358979323846})
	def("M_PI_2", Token{Kind: FloatLit, Text: "1.57079632679489661923", FloatVal: 1.57079632679489661923})
	def("M_SQRT2", Token{Kind: FloatLit, Text: "1.41421356237309504880", FloatVal: 1.41421356237309504880})
	def("NULL", Token{Kind: IntLit, Text: "0", IntVal: 0})
	def("true", Token{Kind: IntLit, Text: "1", IntVal: 1})
	def("false", Token{Kind: IntLit, Text: "0", IntVal: 0})
	def("bool", Token{Kind: KwInt, Text: "int"})
	// <complex.h> spells the imaginary unit "I".
	def("I", Token{Kind: Ident, Text: "__I__"})
}

// preprocess strips comments, handles #include/#define/#undef/#ifdef-less
// directives, and returns the remaining source. Line structure is
// preserved so token positions stay accurate.
func (lx *Lexer) preprocess(src string) (string, error) {
	src = strings.ReplaceAll(src, "\r\n", "\n")
	var out strings.Builder
	lines := strings.Split(src, "\n")
	inBlockComment := false
	for i, raw := range lines {
		line := raw
		if inBlockComment {
			if idx := strings.Index(line, "*/"); idx >= 0 {
				line = strings.Repeat(" ", idx+2) + line[idx+2:]
				inBlockComment = false
			} else {
				out.WriteString("\n")
				continue
			}
		}
		// Strip comments while respecting string literals.
		line, inBlockComment = stripComments(line)
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "#") {
			if err := lx.directive(trimmed, i+1); err != nil {
				return "", err
			}
			out.WriteString("\n")
			continue
		}
		out.WriteString(line)
		out.WriteString("\n")
	}
	return out.String(), nil
}

// stripComments removes // and /* */ comments from a single line, replacing
// them with spaces. Returns the cleaned line and whether a block comment
// remains open at end of line.
func stripComments(line string) (string, bool) {
	var b strings.Builder
	inStr := false
	inChar := false
	i := 0
	for i < len(line) {
		c := line[i]
		switch {
		case inStr:
			b.WriteByte(c)
			if c == '\\' && i+1 < len(line) {
				b.WriteByte(line[i+1])
				i++
			} else if c == '"' {
				inStr = false
			}
		case inChar:
			b.WriteByte(c)
			if c == '\\' && i+1 < len(line) {
				b.WriteByte(line[i+1])
				i++
			} else if c == '\'' {
				inChar = false
			}
		case c == '"':
			inStr = true
			b.WriteByte(c)
		case c == '\'':
			inChar = true
			b.WriteByte(c)
		case c == '/' && i+1 < len(line) && line[i+1] == '/':
			b.WriteString(strings.Repeat(" ", len(line)-i))
			return b.String(), false
		case c == '/' && i+1 < len(line) && line[i+1] == '*':
			if end := strings.Index(line[i+2:], "*/"); end >= 0 {
				n := end + 4 // "/*" + body + "*/"
				b.WriteString(strings.Repeat(" ", n))
				i += n
				continue
			}
			b.WriteString(strings.Repeat(" ", len(line)-i))
			return b.String(), true
		default:
			b.WriteByte(c)
		}
		i++
	}
	return b.String(), false
}

// directive handles a single preprocessor line.
func (lx *Lexer) directive(line string, lineno int) error {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return nil
	}
	name := strings.TrimPrefix(fields[0], "#")
	if name == "" && len(fields) > 1 {
		name = fields[1]
		fields = fields[1:]
	}
	switch name {
	case "include", "pragma", "ifdef", "ifndef", "endif", "else", "if", "elif", "error", "":
		return nil // ignored; conditional bodies are kept
	case "undef":
		if len(fields) >= 2 {
			delete(lx.macros, fields[1])
		}
		return nil
	case "define":
		rest := strings.TrimSpace(strings.TrimPrefix(line, "#"))
		rest = strings.TrimSpace(strings.TrimPrefix(rest, "define"))
		if rest == "" {
			return nil
		}
		// Split macro name from body.
		end := 0
		for end < len(rest) && (isIdentChar(rest[end]) || (end == 0 && isIdentStart(rest[end]))) {
			end++
		}
		mname := rest[:end]
		if mname == "" {
			return &LexError{Pos: Pos{File: lx.file, Line: lineno, Col: 1}, Msg: "malformed #define"}
		}
		if end < len(rest) && rest[end] == '(' {
			// Function-like macros are out of scope for MiniC; the
			// benchmark corpus does not use them.
			return &LexError{Pos: Pos{File: lx.file, Line: lineno, Col: 1},
				Msg: fmt.Sprintf("function-like macro %q not supported by MiniC", mname)}
		}
		body := strings.TrimSpace(rest[end:])
		sub, err := lexAll(lx.file, body)
		if err != nil {
			return err
		}
		lx.macros[mname] = sub
		return nil
	default:
		return nil
	}
}

// lexAll tokenizes a macro body with a bare sub-lexer (no preprocessing).
func lexAll(file, body string) ([]Token, error) {
	sub := &Lexer{src: body, file: file, line: 1, col: 1,
		macros: map[string][]Token{}, expanding: map[string]bool{}}
	var toks []Token
	for {
		t, err := sub.rawNext()
		if err != nil {
			return nil, err
		}
		if t.Kind == EOF {
			return toks, nil
		}
		toks = append(toks, t)
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentChar(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token, expanding macros.
func (lx *Lexer) Next() (Token, error) {
	if len(lx.queue) > 0 {
		t := lx.queue[0]
		lx.queue = lx.queue[1:]
		return t, nil
	}
	t, err := lx.rawNext()
	if err != nil {
		return t, err
	}
	if t.Kind == Ident {
		if body, ok := lx.macros[t.Text]; ok && !lx.expanding[t.Text] {
			// Re-expand macro bodies (one level of nesting protection).
			lx.expanding[t.Text] = true
			var expanded []Token
			for _, bt := range body {
				bt.Pos = t.Pos
				if bt.Kind == Ident {
					if inner, ok := lx.macros[bt.Text]; ok && !lx.expanding[bt.Text] {
						for _, it := range inner {
							it.Pos = t.Pos
							expanded = append(expanded, it)
						}
						continue
					}
				}
				expanded = append(expanded, bt)
			}
			delete(lx.expanding, t.Text)
			if len(expanded) == 0 {
				return lx.Next()
			}
			lx.queue = append(expanded[1:], lx.queue...)
			return expanded[0], nil
		}
	}
	return t, nil
}

func (lx *Lexer) peekByte() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peekByteAt(n int) byte {
	if lx.off+n >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+n]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) pos() Pos { return Pos{File: lx.file, Line: lx.line, Col: lx.col} }

// rawNext lexes one token with no macro expansion.
func (lx *Lexer) rawNext() (Token, error) {
	for lx.off < len(lx.src) {
		c := lx.peekByte()
		if c == ' ' || c == '\t' || c == '\n' || c == '\v' || c == '\f' || c == '\r' {
			lx.advance()
			continue
		}
		break
	}
	start := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: EOF, Pos: start}, nil
	}
	c := lx.peekByte()
	switch {
	case isIdentStart(c):
		return lx.lexIdent(start), nil
	case isDigit(c) || (c == '.' && isDigit(lx.peekByteAt(1))):
		return lx.lexNumber(start)
	case c == '"':
		return lx.lexString(start)
	case c == '\'':
		return lx.lexChar(start)
	default:
		return lx.lexOperator(start)
	}
}

func (lx *Lexer) lexIdent(start Pos) Token {
	begin := lx.off
	for lx.off < len(lx.src) && isIdentChar(lx.src[lx.off]) {
		lx.advance()
	}
	text := lx.src[begin:lx.off]
	if kw, ok := keywords[text]; ok {
		return Token{Kind: kw, Text: text, Pos: start}
	}
	return Token{Kind: Ident, Text: text, Pos: start}
}

func (lx *Lexer) lexNumber(start Pos) (Token, error) {
	begin := lx.off
	isFloat := false
	if lx.peekByte() == '0' && (lx.peekByteAt(1) == 'x' || lx.peekByteAt(1) == 'X') {
		lx.advance()
		lx.advance()
		for lx.off < len(lx.src) && isHex(lx.src[lx.off]) {
			lx.advance()
		}
		text := lx.src[begin:lx.off]
		lx.skipIntSuffix()
		v, err := strconv.ParseUint(text[2:], 16, 64)
		if err != nil {
			return Token{}, &LexError{Pos: start, Msg: "malformed hex literal " + text}
		}
		return Token{Kind: IntLit, Text: text, Pos: start, IntVal: int64(v)}, nil
	}
	for lx.off < len(lx.src) && isDigit(lx.src[lx.off]) {
		lx.advance()
	}
	if lx.peekByte() == '.' {
		isFloat = true
		lx.advance()
		for lx.off < len(lx.src) && isDigit(lx.src[lx.off]) {
			lx.advance()
		}
	}
	if e := lx.peekByte(); e == 'e' || e == 'E' {
		next := lx.peekByteAt(1)
		next2 := lx.peekByteAt(2)
		if isDigit(next) || ((next == '+' || next == '-') && isDigit(next2)) {
			isFloat = true
			lx.advance()
			if s := lx.peekByte(); s == '+' || s == '-' {
				lx.advance()
			}
			for lx.off < len(lx.src) && isDigit(lx.src[lx.off]) {
				lx.advance()
			}
		}
	}
	text := lx.src[begin:lx.off]
	f32 := false
	if s := lx.peekByte(); s == 'f' || s == 'F' {
		isFloat = true
		f32 = true
		lx.advance()
	} else {
		lx.skipIntSuffix()
	}
	if isFloat {
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return Token{}, &LexError{Pos: start, Msg: "malformed float literal " + text}
		}
		return Token{Kind: FloatLit, Text: text, Pos: start, FloatVal: v, IsFloat32Lit: f32}, nil
	}
	v, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return Token{}, &LexError{Pos: start, Msg: "malformed integer literal " + text}
	}
	return Token{Kind: IntLit, Text: text, Pos: start, IntVal: v}, nil
}

func (lx *Lexer) skipIntSuffix() {
	for {
		c := lx.peekByte()
		if c == 'u' || c == 'U' || c == 'l' || c == 'L' {
			lx.advance()
			continue
		}
		return
	}
}

func isHex(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func (lx *Lexer) lexString(start Pos) (Token, error) {
	lx.advance() // opening quote
	var b strings.Builder
	for {
		if lx.off >= len(lx.src) {
			return Token{}, &LexError{Pos: start, Msg: "unterminated string literal"}
		}
		c := lx.advance()
		if c == '"' {
			break
		}
		if c == '\\' {
			if lx.off >= len(lx.src) {
				return Token{}, &LexError{Pos: start, Msg: "unterminated escape in string"}
			}
			e := lx.advance()
			b.WriteByte(unescape(e))
			continue
		}
		b.WriteByte(c)
	}
	return Token{Kind: StringLit, Text: b.String(), Pos: start}, nil
}

func unescape(e byte) byte {
	switch e {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case 'r':
		return '\r'
	case '0':
		return 0
	case '\\':
		return '\\'
	case '\'':
		return '\''
	case '"':
		return '"'
	default:
		return e
	}
}

func (lx *Lexer) lexChar(start Pos) (Token, error) {
	lx.advance() // opening quote
	if lx.off >= len(lx.src) {
		return Token{}, &LexError{Pos: start, Msg: "unterminated char literal"}
	}
	c := lx.advance()
	if c == '\\' {
		if lx.off >= len(lx.src) {
			return Token{}, &LexError{Pos: start, Msg: "unterminated char literal"}
		}
		c = unescape(lx.advance())
	}
	if lx.off >= len(lx.src) || lx.advance() != '\'' {
		return Token{}, &LexError{Pos: start, Msg: "unterminated char literal"}
	}
	return Token{Kind: CharLit, Text: string(c), Pos: start, IntVal: int64(c)}, nil
}

// lexOperator lexes punctuation with maximal munch.
func (lx *Lexer) lexOperator(start Pos) (Token, error) {
	three := ""
	if lx.off+3 <= len(lx.src) {
		three = lx.src[lx.off : lx.off+3]
	}
	switch three {
	case "...", "<<=", ">>=":
		for i := 0; i < 3; i++ {
			lx.advance()
		}
		k := map[string]Kind{"...": Ellipsis, "<<=": ShlAssign, ">>=": ShrAssign}[three]
		return Token{Kind: k, Text: three, Pos: start}, nil
	}
	two := ""
	if lx.off+2 <= len(lx.src) {
		two = lx.src[lx.off : lx.off+2]
	}
	if k, ok := twoCharOps[two]; ok {
		lx.advance()
		lx.advance()
		return Token{Kind: k, Text: two, Pos: start}, nil
	}
	c := lx.advance()
	if k, ok := oneCharOps[c]; ok {
		return Token{Kind: k, Text: string(c), Pos: start}, nil
	}
	return Token{}, &LexError{Pos: start, Msg: fmt.Sprintf("unexpected character %q", c)}
}

var twoCharOps = map[string]Kind{
	"->": Arrow, "++": PlusPlus, "--": MinusMinus, "<<": Shl, ">>": Shr,
	"<=": Le, ">=": Ge, "==": EqEq, "!=": NotEq, "&&": AndAnd, "||": OrOr,
	"+=": PlusAssign, "-=": MinusAssign, "*=": StarAssign, "/=": SlashAssign,
	"%=": PercentAssign, "&=": AmpAssign, "|=": PipeAssign, "^=": CaretAssign,
}

var oneCharOps = map[byte]Kind{
	'(': LParen, ')': RParen, '{': LBrace, '}': RBrace, '[': LBracket,
	']': RBracket, ',': Comma, ';': Semi, ':': Colon, '?': Question,
	'.': Dot, '+': Plus, '-': Minus, '*': Star, '/': Slash, '%': Percent,
	'&': Amp, '|': Pipe, '^': Caret, '~': Tilde, '!': Not, '=': Assign,
	'<': Lt, '>': Gt,
}

// Tokenize lexes the entire source and returns all tokens (excluding EOF).
func Tokenize(file, src string) ([]Token, error) {
	lx, err := NewLexer(file, src)
	if err != nil {
		return nil, err
	}
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		if t.Kind == EOF {
			return toks, nil
		}
		toks = append(toks, t)
	}
}
