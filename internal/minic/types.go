package minic

import (
	"fmt"
	"strings"
)

// TypeKind discriminates Type.
type TypeKind int

// Type kinds.
const (
	TVoid TypeKind = iota
	TChar
	TInt
	TLong
	TFloat
	TDouble
	TComplexFloat  // float _Complex
	TComplexDouble // double _Complex
	TPointer
	TArray // fixed or variable length
	TStruct
	TFunc
)

// Type describes a MiniC type. Types are compared structurally with Same.
type Type struct {
	Kind TypeKind

	// Pointer / array element type.
	Elem *Type

	// Array length: a constant if ArrayLen >= 0, variable (VLA) if
	// ArrayLen < 0 with the length expression in ArrayLenExpr, or an
	// incomplete array (e.g. parameter "float x[]") if both are unset.
	ArrayLen     int
	ArrayLenExpr Expr

	// Struct fields (nil Elem).
	StructName string
	Fields     []Field
	// FromTypedef is set when StructName is a typedef alias (usable
	// without the "struct" keyword) rather than a struct tag.
	FromTypedef bool

	// Function signature.
	Ret      *Type
	Params   []Param
	Variadic bool

	Unsigned bool
}

// Field is a struct member.
type Field struct {
	Name string
	Type *Type
}

// Param is a function parameter.
type Param struct {
	Name string
	Type *Type
}

// Prebuilt singleton types for the scalar kinds.
var (
	Void          = &Type{Kind: TVoid}
	Char          = &Type{Kind: TChar}
	Int           = &Type{Kind: TInt}
	UInt          = &Type{Kind: TInt, Unsigned: true}
	Long          = &Type{Kind: TLong}
	ULong         = &Type{Kind: TLong, Unsigned: true}
	Float         = &Type{Kind: TFloat}
	Double        = &Type{Kind: TDouble}
	ComplexFloat  = &Type{Kind: TComplexFloat}
	ComplexDouble = &Type{Kind: TComplexDouble}
)

// PointerTo returns a pointer type to elem.
func PointerTo(elem *Type) *Type { return &Type{Kind: TPointer, Elem: elem} }

// ArrayOf returns a fixed-length array type.
func ArrayOf(elem *Type, n int) *Type {
	return &Type{Kind: TArray, Elem: elem, ArrayLen: n}
}

// IncompleteArrayOf returns an array type of unknown length ("T x[]").
func IncompleteArrayOf(elem *Type) *Type {
	return &Type{Kind: TArray, Elem: elem, ArrayLen: -1}
}

// VLAOf returns a variable-length array type with the given length
// expression.
func VLAOf(elem *Type, n Expr) *Type {
	return &Type{Kind: TArray, Elem: elem, ArrayLen: -1, ArrayLenExpr: n}
}

// IsInteger reports whether t is an integer type (char/int/long).
func (t *Type) IsInteger() bool {
	return t != nil && (t.Kind == TChar || t.Kind == TInt || t.Kind == TLong)
}

// IsFloat reports whether t is a real floating type.
func (t *Type) IsFloat() bool {
	return t != nil && (t.Kind == TFloat || t.Kind == TDouble)
}

// IsComplex reports whether t is a complex floating type.
func (t *Type) IsComplex() bool {
	return t != nil && (t.Kind == TComplexFloat || t.Kind == TComplexDouble)
}

// IsArithmetic reports whether t supports arithmetic operators.
func (t *Type) IsArithmetic() bool {
	return t.IsInteger() || t.IsFloat() || t.IsComplex()
}

// IsScalar reports whether t is arithmetic or a pointer.
func (t *Type) IsScalar() bool {
	return t.IsArithmetic() || (t != nil && t.Kind == TPointer)
}

// IsVoidPointer reports whether t is void*.
func (t *Type) IsVoidPointer() bool {
	return t != nil && t.Kind == TPointer && t.Elem.Kind == TVoid
}

// Same reports structural type equality. Struct types compare by name when
// both are named, otherwise by fields. VLA lengths are ignored (any two
// VLAs of the same element type are the same type for checking purposes).
func (t *Type) Same(u *Type) bool {
	if t == u {
		return true
	}
	if t == nil || u == nil || t.Kind != u.Kind || t.Unsigned != u.Unsigned {
		return false
	}
	switch t.Kind {
	case TPointer:
		return t.Elem.Same(u.Elem)
	case TArray:
		if !t.Elem.Same(u.Elem) {
			return false
		}
		if t.ArrayLen >= 0 && u.ArrayLen >= 0 {
			return t.ArrayLen == u.ArrayLen
		}
		return true
	case TStruct:
		if t.StructName != "" && u.StructName != "" {
			return t.StructName == u.StructName
		}
		if len(t.Fields) != len(u.Fields) {
			return false
		}
		for i := range t.Fields {
			if t.Fields[i].Name != u.Fields[i].Name || !t.Fields[i].Type.Same(u.Fields[i].Type) {
				return false
			}
		}
		return true
	case TFunc:
		if !t.Ret.Same(u.Ret) || len(t.Params) != len(u.Params) || t.Variadic != u.Variadic {
			return false
		}
		for i := range t.Params {
			if !t.Params[i].Type.Same(u.Params[i].Type) {
				return false
			}
		}
		return true
	default:
		return true
	}
}

// FieldIndex returns the index of the named field, or -1.
func (t *Type) FieldIndex(name string) int {
	for i, f := range t.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// Sizeof returns the byte size of t using a conventional LP64 layout.
// VLAs and incomplete arrays return 0 (size not statically known).
func (t *Type) Sizeof() int {
	switch t.Kind {
	case TVoid:
		return 1 // GNU-style, lets void* arithmetic degrade gracefully
	case TChar:
		return 1
	case TInt:
		return 4
	case TLong:
		return 8
	case TFloat:
		return 4
	case TDouble:
		return 8
	case TComplexFloat:
		return 8
	case TComplexDouble:
		return 16
	case TPointer:
		return 8
	case TArray:
		if t.ArrayLen < 0 {
			return 0
		}
		return t.ArrayLen * t.Elem.Sizeof()
	case TStruct:
		size := 0
		for _, f := range t.Fields {
			a := f.Type.Alignof()
			if r := size % a; r != 0 {
				size += a - r
			}
			size += f.Type.Sizeof()
		}
		if a := t.Alignof(); size%a != 0 {
			size += a - size%a
		}
		return size
	default:
		return 8
	}
}

// Alignof returns the alignment of t under the same layout as Sizeof.
func (t *Type) Alignof() int {
	switch t.Kind {
	case TArray:
		return t.Elem.Alignof()
	case TStruct:
		a := 1
		for _, f := range t.Fields {
			if fa := f.Type.Alignof(); fa > a {
				a = fa
			}
		}
		return a
	case TComplexFloat:
		return 4
	case TComplexDouble:
		return 8
	default:
		s := t.Sizeof()
		if s > 8 {
			return 8
		}
		if s == 0 {
			return 1
		}
		return s
	}
}

// String renders the type in C-ish syntax.
func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case TVoid:
		return "void"
	case TChar:
		return withSign(t, "char")
	case TInt:
		return withSign(t, "int")
	case TLong:
		return withSign(t, "long")
	case TFloat:
		return "float"
	case TDouble:
		return "double"
	case TComplexFloat:
		return "float _Complex"
	case TComplexDouble:
		return "double _Complex"
	case TPointer:
		return t.Elem.String() + "*"
	case TArray:
		if t.ArrayLen >= 0 {
			return fmt.Sprintf("%s[%d]", t.Elem, t.ArrayLen)
		}
		return t.Elem.String() + "[]"
	case TStruct:
		if t.StructName != "" {
			return "struct " + t.StructName
		}
		var b strings.Builder
		b.WriteString("struct {")
		for i, f := range t.Fields {
			if i > 0 {
				b.WriteString("; ")
			}
			fmt.Fprintf(&b, "%s %s", f.Type, f.Name)
		}
		b.WriteString("}")
		return b.String()
	case TFunc:
		var b strings.Builder
		b.WriteString(t.Ret.String())
		b.WriteString(" (")
		for i, p := range t.Params {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(p.Type.String())
		}
		if t.Variadic {
			b.WriteString(", ...")
		}
		b.WriteString(")")
		return b.String()
	default:
		return fmt.Sprintf("Type(%d)", t.Kind)
	}
}

func withSign(t *Type, base string) string {
	if t.Unsigned {
		return "unsigned " + base
	}
	return base
}

// ComplexElem returns the real component type of a complex type
// (float for float _Complex, double for double _Complex).
func (t *Type) ComplexElem() *Type {
	switch t.Kind {
	case TComplexFloat:
		return Float
	case TComplexDouble:
		return Double
	default:
		return nil
	}
}

// rank orders arithmetic types for usual arithmetic conversions.
func rank(t *Type) int {
	switch t.Kind {
	case TChar:
		return 1
	case TInt:
		return 2
	case TLong:
		return 3
	case TFloat:
		return 4
	case TDouble:
		return 5
	case TComplexFloat:
		return 6
	case TComplexDouble:
		return 7
	default:
		return 0
	}
}

// UsualArith returns the common type of a binary arithmetic expression.
func UsualArith(a, b *Type) *Type {
	// Complex contaminates: complex op real → complex of the wider base.
	if a.IsComplex() || b.IsComplex() {
		if a.Kind == TComplexDouble || b.Kind == TComplexDouble ||
			a.Kind == TDouble || b.Kind == TDouble {
			return ComplexDouble
		}
		return ComplexFloat
	}
	if rank(a) >= rank(b) {
		if a.IsInteger() && rank(a) < rank(Int) {
			return Int // integer promotion
		}
		return a
	}
	if b.IsInteger() && rank(b) < rank(Int) {
		return Int
	}
	return b
}

// ConvertibleTo reports whether a value of type t can be converted
// (implicitly, in MiniC's forgiving model) to u.
func (t *Type) ConvertibleTo(u *Type) bool {
	if t.Same(u) {
		return true
	}
	if t.IsArithmetic() && u.IsArithmetic() {
		// Complex→real drops the imaginary part; C allows it.
		return true
	}
	if t.Kind == TPointer && u.Kind == TPointer {
		return t.IsVoidPointer() || u.IsVoidPointer() || t.Elem.Same(u.Elem)
	}
	if t.Kind == TArray && u.Kind == TPointer {
		return t.Elem.Same(u.Elem) || u.IsVoidPointer()
	}
	if t.IsInteger() && u.Kind == TPointer {
		return true // 0 → NULL; MiniC does not track constant-ness here
	}
	if t.Kind == TPointer && u.IsInteger() {
		return true
	}
	return false
}

// Decay converts array types to pointer types (for rvalue contexts).
func (t *Type) Decay() *Type {
	if t != nil && t.Kind == TArray {
		return PointerTo(t.Elem)
	}
	return t
}
