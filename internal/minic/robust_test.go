package minic

import (
	"math/rand"
	"strings"
	"testing"
)

// The frontend must never panic, whatever garbage it is fed: truncations,
// deletions and character swaps over real corpus-shaped sources must all
// produce either a File or an error.

const robustBase = `
#include <math.h>
typedef struct { double re; double im; } cpx;
static const float w[4] = {1.0f, 0.0f, -1.0f, 0.0f};
int helper(int n) { return n & (n - 1); }
void fft(cpx* x, int n, int inverse) {
    double s = inverse ? 1.0 : -1.0;
    for (int len = 2; len <= n; len <<= 1) {
        for (int i = 0; i < n; i += len) {
            for (int k = 0; k < len / 2; k++) {
                double a = s * 2.0 * M_PI * (double)k / (double)len;
                cpx u = x[i + k];
                x[i + k].re = u.re + cos(a);
                x[i + k].im = u.im + sin(a);
            }
        }
    }
}`

func TestParserNeverPanicsOnTruncation(t *testing.T) {
	for i := 0; i < len(robustBase); i += 7 {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on truncation at %d: %v", i, r)
				}
			}()
			_, _ = ParseAndCheck("trunc.c", robustBase[:i])
		}()
	}
}

func TestParserNeverPanicsOnMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	chars := []byte(`{}()[];,*&+-<>=!%^~.0123456789abcdefgxyz"'`)
	for trial := 0; trial < 300; trial++ {
		b := []byte(robustBase)
		for k := 0; k < 1+rng.Intn(6); k++ {
			pos := rng.Intn(len(b))
			switch rng.Intn(3) {
			case 0:
				b[pos] = chars[rng.Intn(len(chars))]
			case 1:
				b = append(b[:pos], b[pos+1:]...)
			case 2:
				b = append(b[:pos], append([]byte{chars[rng.Intn(len(chars))]}, b[pos:]...)...)
			}
		}
		src := string(b)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on mutated source (trial %d): %v\n%s", trial, r, src)
				}
			}()
			_, _ = ParseAndCheck("mut.c", src)
		}()
	}
}

func TestDeepNestingDoesNotOverflow(t *testing.T) {
	// Pathological but bounded nesting.
	var b strings.Builder
	b.WriteString("int f(int x) { return ")
	const depth = 200
	for i := 0; i < depth; i++ {
		b.WriteString("(1 + ")
	}
	b.WriteString("x")
	for i := 0; i < depth; i++ {
		b.WriteString(")")
	}
	b.WriteString("; }")
	if _, err := ParseAndCheck("deep.c", b.String()); err != nil {
		t.Fatalf("deep nesting rejected: %v", err)
	}
}

func TestErrorPositionsPointAtOffendingLine(t *testing.T) {
	src := "int a;\nint b;\nint c = ;\n"
	_, err := Parse("pos.c", src)
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "pos.c:3:") {
		t.Errorf("error %q should point at line 3", err)
	}
}
