package minic

import (
	"fmt"
	"strings"
)

// ParseAndCheck parses src and runs the type checker.
func ParseAndCheck(file, src string) (*File, error) {
	f, err := Parse(file, src)
	if err != nil {
		return nil, err
	}
	if err := Check(f); err != nil {
		return nil, err
	}
	return f, nil
}

// Printer renders AST nodes back to C source. The output is valid C for
// everything MiniC accepts; FACC uses it to emit user-visible adapters.
type Printer struct {
	b      strings.Builder
	indent int
}

// PrintFile renders a whole translation unit.
func PrintFile(f *File) string {
	p := &Printer{}
	for _, td := range f.Typedefs {
		if td.Type.Kind == TStruct {
			p.printStructTypedef(td)
		} else {
			p.printf("typedef %s;\n", declString(td.Type, td.Name))
		}
	}
	for _, sd := range f.Structs {
		p.printStructDef(sd.Type)
		p.printf(";\n")
	}
	for _, g := range f.Globals {
		p.printVarDecl(g)
		p.printf(";\n")
	}
	for _, fn := range f.Funcs {
		p.PrintFunc(fn)
	}
	return p.b.String()
}

// PrintFunc renders one function definition (or prototype).
func (p *Printer) PrintFunc(fn *FuncDecl) {
	var params []string
	for i, prm := range fn.Params {
		name := prm.Name
		if name == "" {
			name = fmt.Sprintf("arg%d", i)
		}
		params = append(params, declString(prm.Type, name))
	}
	sig := fmt.Sprintf("%s %s(%s)", typeString(fn.Type.Ret), fn.Name, strings.Join(params, ", "))
	if fn.Body == nil {
		p.printf("%s;\n", sig)
		return
	}
	p.printf("%s ", sig)
	p.printBlock(fn.Body)
	p.printf("\n")
}

// String returns everything printed so far.
func (p *Printer) String() string { return p.b.String() }

func (p *Printer) printf(format string, args ...any) {
	fmt.Fprintf(&p.b, format, args...)
}

func (p *Printer) line() {
	p.b.WriteString("\n")
	p.b.WriteString(strings.Repeat("    ", p.indent))
}

func (p *Printer) printStructTypedef(td *TypedefDecl) {
	p.printf("typedef ")
	p.printStructDef(td.Type)
	p.printf(" %s;\n", td.Name)
}

func (p *Printer) printStructDef(t *Type) {
	// A typedef-adopted name is not a struct tag; print anonymously so
	// the output round-trips.
	if t.StructName != "" && !t.FromTypedef {
		p.printf("struct %s {", t.StructName)
	} else {
		p.printf("struct {")
	}
	p.indent++
	for _, f := range t.Fields {
		p.line()
		p.printf("%s;", declString(f.Type, f.Name))
	}
	p.indent--
	p.line()
	p.printf("}")
}

func (p *Printer) printVarDecl(v *VarDecl) {
	if v.Storage == SCStatic {
		p.printf("static ")
	}
	p.printf("%s", declString(v.Type, v.Name))
	if v.Init != nil {
		p.printf(" = %s", ExprString(v.Init))
	}
}

// declString renders "type name" with C declarator syntax (arrays and
// pointers attach to the name).
func declString(t *Type, name string) string {
	switch t.Kind {
	case TArray:
		n := ""
		if t.ArrayLen >= 0 {
			n = fmt.Sprintf("%d", t.ArrayLen)
		} else if t.ArrayLenExpr != nil {
			n = ExprString(t.ArrayLenExpr)
		}
		return declString(t.Elem, fmt.Sprintf("%s[%s]", name, n))
	case TPointer:
		if t.Elem.Kind == TArray || t.Elem.Kind == TFunc {
			return declString(t.Elem, "(*"+name+")")
		}
		return declString(t.Elem, "*"+name)
	case TFunc:
		var params []string
		for _, prm := range t.Params {
			params = append(params, declString(prm.Type, prm.Name))
		}
		return declString(t.Ret, fmt.Sprintf("%s(%s)", name, strings.Join(params, ", ")))
	default:
		return typeString(t) + " " + name
	}
}

// typeString renders a type for use where no declarator name is needed.
func typeString(t *Type) string {
	switch t.Kind {
	case TStruct:
		if t.StructName != "" {
			if t.FromTypedef {
				return t.StructName
			}
			return "struct " + t.StructName
		}
		return t.String()
	case TPointer:
		return typeString(t.Elem) + "*"
	case TComplexFloat:
		return "float complex"
	case TComplexDouble:
		return "double complex"
	default:
		return t.String()
	}
}

// ---- Statements ----

func (p *Printer) printBlock(b *BlockStmt) {
	p.printf("{")
	p.indent++
	for _, s := range b.List {
		p.line()
		p.printStmt(s)
	}
	p.indent--
	p.line()
	p.printf("}")
}

func (p *Printer) printStmt(s Stmt) {
	switch st := s.(type) {
	case *ExprStmt:
		p.printf("%s;", ExprString(st.X))
	case *DeclStmt:
		for i, d := range st.Decls {
			if i > 0 {
				p.line()
			}
			p.printVarDecl(d)
			p.printf(";")
		}
	case *BlockStmt:
		p.printBlock(st)
	case *IfStmt:
		p.printf("if (%s) ", ExprString(st.Cond))
		p.printStmtAsBlock(st.Then)
		if st.Else != nil {
			p.printf(" else ")
			p.printStmtAsBlock(st.Else)
		}
	case *ForStmt:
		init := ""
		if st.Init != nil {
			switch is := st.Init.(type) {
			case *ExprStmt:
				init = ExprString(is.X)
			case *DeclStmt:
				var parts []string
				for _, d := range is.Decls {
					s := declString(d.Type, d.Name)
					if d.Init != nil {
						s += " = " + ExprString(d.Init)
					}
					parts = append(parts, s)
				}
				init = strings.Join(parts, ", ")
			}
		}
		cond := ""
		if st.Cond != nil {
			cond = ExprString(st.Cond)
		}
		post := ""
		if st.Post != nil {
			post = ExprString(st.Post)
		}
		p.printf("for (%s; %s; %s) ", init, cond, post)
		p.printStmtAsBlock(st.Body)
	case *WhileStmt:
		if st.Do {
			p.printf("do ")
			p.printStmtAsBlock(st.Body)
			p.printf(" while (%s);", ExprString(st.Cond))
		} else {
			p.printf("while (%s) ", ExprString(st.Cond))
			p.printStmtAsBlock(st.Body)
		}
	case *SwitchStmt:
		p.printf("switch (%s) {", ExprString(st.Tag))
		for _, cc := range st.Cases {
			p.line()
			if cc.IsDefault {
				p.printf("default:")
			} else {
				p.printf("case %s:", ExprString(cc.Value))
			}
			p.indent++
			for _, sub := range cc.Body {
				p.line()
				p.printStmt(sub)
			}
			p.indent--
		}
		p.line()
		p.printf("}")
	case *BreakStmt:
		p.printf("break;")
	case *ContinueStmt:
		p.printf("continue;")
	case *ReturnStmt:
		if st.Value == nil {
			p.printf("return;")
		} else {
			p.printf("return %s;", ExprString(st.Value))
		}
	default:
		p.printf("/* unprintable %T */;", s)
	}
}

func (p *Printer) printStmtAsBlock(s Stmt) {
	if b, ok := s.(*BlockStmt); ok {
		p.printBlock(b)
		return
	}
	p.printf("{")
	p.indent++
	p.line()
	p.printStmt(s)
	p.indent--
	p.line()
	p.printf("}")
}

// ---- Expressions ----

// ExprString renders an expression to C source.
func ExprString(e Expr) string {
	switch x := e.(type) {
	case *IntLitExpr:
		return fmt.Sprintf("%d", x.Value)
	case *FloatLitExpr:
		s := fmt.Sprintf("%g", x.Value)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		if x.Float32 {
			s += "f"
		}
		return s
	case *StringLitExpr:
		return quoteC(x.Value)
	case *ImaginaryLitExpr:
		return "I"
	case *IdentExpr:
		return x.Name
	case *UnaryExpr:
		if x.Post {
			return fmt.Sprintf("%s%s", parenExpr(x.X), x.Op)
		}
		return fmt.Sprintf("%s%s", x.Op, parenExpr(x.X))
	case *BinaryExpr:
		return fmt.Sprintf("%s %s %s", parenExpr(x.L), x.Op, parenExpr(x.R))
	case *AssignExpr:
		return fmt.Sprintf("%s %s %s", ExprString(x.L), x.Op, ExprString(x.R))
	case *CondExpr:
		return fmt.Sprintf("%s ? %s : %s", parenExpr(x.Cond), ExprString(x.Then), ExprString(x.Else))
	case *CallExpr:
		var args []string
		for _, a := range x.Args {
			args = append(args, ExprString(a))
		}
		return fmt.Sprintf("%s(%s)", ExprString(x.Fun), strings.Join(args, ", "))
	case *IndexExpr:
		return fmt.Sprintf("%s[%s]", parenExpr(x.X), ExprString(x.Index))
	case *MemberExpr:
		op := "."
		if x.Arrow {
			op = "->"
		}
		return fmt.Sprintf("%s%s%s", parenExpr(x.X), op, x.Name)
	case *CastExpr:
		return fmt.Sprintf("(%s)%s", typeString(x.To), parenExpr(x.X))
	case *SizeofExpr:
		if x.OfType != nil {
			return fmt.Sprintf("sizeof(%s)", typeString(x.OfType))
		}
		return fmt.Sprintf("sizeof %s", parenExpr(x.X))
	case *CommaExpr:
		return fmt.Sprintf("%s, %s", ExprString(x.L), ExprString(x.R))
	case *InitListExpr:
		var items []string
		for _, it := range x.Items {
			items = append(items, ExprString(it))
		}
		return "{" + strings.Join(items, ", ") + "}"
	default:
		return fmt.Sprintf("/* %T */", e)
	}
}

// parenExpr wraps compound sub-expressions in parentheses. Emitting a few
// redundant parentheses keeps the printer simple and the output unambiguous.
func parenExpr(e Expr) string {
	switch e.(type) {
	case *IntLitExpr, *FloatLitExpr, *IdentExpr, *CallExpr, *IndexExpr,
		*MemberExpr, *StringLitExpr, *ImaginaryLitExpr:
		return ExprString(e)
	default:
		return "(" + ExprString(e) + ")"
	}
}

func quoteC(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		case '\r':
			b.WriteString(`\r`)
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}
