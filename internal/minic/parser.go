package minic

import (
	"fmt"
)

// ParseError is a syntax error with a source position.
type ParseError struct {
	Pos Pos
	Msg string
}

func (e *ParseError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Parser builds a File from tokens. It tracks typedef and struct names so
// declarations can be distinguished from expressions.
type Parser struct {
	toks     []Token
	pos      int
	file     string
	typedefs map[string]*Type
	structs  map[string]*Type
	enums    map[string]int64
}

// Parse parses a MiniC translation unit.
func Parse(file, src string) (*File, error) {
	toks, err := Tokenize(file, src)
	if err != nil {
		return nil, err
	}
	p := &Parser{
		toks:     toks,
		file:     file,
		typedefs: map[string]*Type{},
		structs:  map[string]*Type{},
		enums:    map[string]int64{},
	}
	return p.parseFile()
}

func (p *Parser) cur() Token {
	if p.pos >= len(p.toks) {
		last := Pos{File: p.file, Line: 1, Col: 1}
		if len(p.toks) > 0 {
			last = p.toks[len(p.toks)-1].Pos
		}
		return Token{Kind: EOF, Pos: last}
	}
	return p.toks[p.pos]
}

func (p *Parser) peek(n int) Token {
	if p.pos+n >= len(p.toks) {
		return Token{Kind: EOF}
	}
	return p.toks[p.pos+n]
}

func (p *Parser) next() Token {
	t := p.cur()
	if p.pos < len(p.toks) {
		p.pos++
	}
	return t
}

func (p *Parser) accept(k Kind) bool {
	if p.cur().Kind == k {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(k Kind) (Token, error) {
	t := p.cur()
	if t.Kind != k {
		return t, &ParseError{Pos: t.Pos, Msg: fmt.Sprintf("expected %s, found %s", k, t)}
	}
	p.pos++
	return t, nil
}

func (p *Parser) errf(format string, args ...any) error {
	return &ParseError{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)}
}

// ---- Top level ----

func (p *Parser) parseFile() (*File, error) {
	f := &File{Name: p.file}
	for p.cur().Kind != EOF {
		if p.accept(Semi) {
			continue
		}
		if err := p.parseTopLevel(f); err != nil {
			return nil, err
		}
	}
	return f, nil
}

func (p *Parser) parseTopLevel(f *File) error {
	// typedef
	if p.cur().Kind == KwTypedef {
		td, err := p.parseTypedef()
		if err != nil {
			return err
		}
		f.Typedefs = append(f.Typedefs, td...)
		return nil
	}
	// enum definitions become integer constants
	if p.cur().Kind == KwEnum && (p.peek(1).Kind == LBrace || p.peek(2).Kind == LBrace) {
		return p.parseEnumDef()
	}
	// bare struct definition: struct Name { ... };
	if p.cur().Kind == KwStruct && p.peek(1).Kind == Ident && p.peek(2).Kind == LBrace {
		pos := p.cur().Pos
		st, err := p.parseTypeSpec()
		if err != nil {
			return err
		}
		if p.accept(Semi) {
			f.Structs = append(f.Structs, &StructDecl{Pos: pos, Name: st.StructName, Type: st})
			return nil
		}
		// struct Name { ... } var...; falls through to declarator list
		return p.finishDecl(f, pos, st, SCNone)
	}

	pos := p.cur().Pos
	storage := p.parseStorage()
	base, err := p.parseTypeSpec()
	if err != nil {
		return err
	}
	if p.accept(Semi) {
		if base.Kind == TStruct && base.StructName != "" {
			f.Structs = append(f.Structs, &StructDecl{Pos: pos, Name: base.StructName, Type: base})
		}
		return nil
	}
	return p.finishDecl(f, pos, base, storage)
}

// finishDecl parses declarators after the type specifier at top level and
// appends functions or globals to f.
func (p *Parser) finishDecl(f *File, pos Pos, base *Type, storage StorageClass) error {
	for {
		typ, name, err := p.parseDeclarator(base)
		if err != nil {
			return err
		}
		if name == "" {
			return p.errf("declaration requires a name")
		}
		if typ.Kind == TFunc {
			fn := &FuncDecl{Pos: pos, Name: name, Type: typ, Static: storage == SCStatic}
			for _, prm := range typ.Params {
				fn.Params = append(fn.Params, &VarDecl{
					Pos: pos, Name: prm.Name, Type: prm.Type, IsParam: true,
				})
			}
			if p.cur().Kind == LBrace {
				body, err := p.parseBlock()
				if err != nil {
					return err
				}
				fn.Body = body
				f.Funcs = append(f.Funcs, fn)
				return nil
			}
			// prototype
			f.Funcs = append(f.Funcs, fn)
			if p.accept(Comma) {
				continue
			}
			_, err := p.expect(Semi)
			return err
		}
		vd := &VarDecl{Pos: pos, Name: name, Type: typ, Storage: storage, Global: true}
		if p.accept(Assign) {
			init, err := p.parseInitializer()
			if err != nil {
				return err
			}
			vd.Init = init
		}
		f.Globals = append(f.Globals, vd)
		if p.accept(Comma) {
			continue
		}
		_, err = p.expect(Semi)
		return err
	}
}

func (p *Parser) parseStorage() StorageClass {
	sc := SCNone
	for {
		switch p.cur().Kind {
		case KwStatic:
			sc = SCStatic
			p.next()
		case KwExtern:
			sc = SCExtern
			p.next()
		case KwInline, KwConst, KwVolatile, KwRestrict:
			p.next()
		case Ident:
			if p.cur().Text == "__attribute__" {
				p.skipAttribute()
				continue
			}
			return sc
		default:
			return sc
		}
	}
}

// skipAttribute consumes "__attribute__ (( ... ))" (GCC syntax emitted by
// FACC's own backend for buffer alignment).
func (p *Parser) skipAttribute() {
	p.next() // __attribute__
	if p.cur().Kind != LParen {
		return
	}
	depth := 0
	for {
		switch p.next().Kind {
		case LParen:
			depth++
		case RParen:
			depth--
			if depth == 0 {
				return
			}
		case EOF:
			return
		}
	}
}

func (p *Parser) parseTypedef() ([]*TypedefDecl, error) {
	pos := p.cur().Pos
	p.next() // typedef
	base, err := p.parseTypeSpec()
	if err != nil {
		return nil, err
	}
	var out []*TypedefDecl
	for {
		typ, name, err := p.parseDeclarator(base)
		if err != nil {
			return nil, err
		}
		if name == "" {
			return nil, p.errf("typedef requires a name")
		}
		// An anonymous struct typedef adopts the typedef name so values
		// print and compare usefully.
		if typ.Kind == TStruct && typ.StructName == "" {
			typ.StructName = name
			typ.FromTypedef = true
			p.structs[name] = typ
		}
		// "typedef struct tag {...} tag;" also makes the bare name valid.
		if typ.Kind == TStruct && typ.StructName == name {
			typ.FromTypedef = true
		}
		p.typedefs[name] = typ
		out = append(out, &TypedefDecl{Pos: pos, Name: name, Type: typ})
		if p.accept(Comma) {
			continue
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return out, nil
	}
}

func (p *Parser) parseEnumDef() error {
	p.next() // enum
	if p.cur().Kind == Ident {
		p.next()
	}
	if _, err := p.expect(LBrace); err != nil {
		return err
	}
	val := int64(0)
	for p.cur().Kind != RBrace {
		nameTok, err := p.expect(Ident)
		if err != nil {
			return err
		}
		if p.accept(Assign) {
			e, err := p.parseAssignExpr()
			if err != nil {
				return err
			}
			v, ok := evalConstInt(e)
			if !ok {
				return p.errf("enum value must be a constant expression")
			}
			val = v
		}
		p.enums[nameTok.Text] = val
		val++
		if !p.accept(Comma) {
			break
		}
	}
	if _, err := p.expect(RBrace); err != nil {
		return err
	}
	_, err := p.expect(Semi)
	return err
}

// ---- Types ----

// isTypeStart reports whether the current token begins a type specifier.
func (p *Parser) isTypeStart() bool {
	switch p.cur().Kind {
	case KwVoid, KwChar, KwShort, KwInt, KwLong, KwFloat, KwDouble,
		KwSigned, KwUnsigned, KwComplex, KwStruct, KwUnion, KwEnum,
		KwConst, KwVolatile, KwStatic, KwExtern, KwTypedef, KwRestrict:
		return true
	case Ident:
		if p.cur().Text == "__attribute__" {
			return true
		}
		_, ok := p.typedefs[p.cur().Text]
		return ok
	default:
		return false
	}
}

// parseTypeSpec parses declaration specifiers: a combination of base-type
// keywords, struct/union specifiers, or a typedef name.
func (p *Parser) parseTypeSpec() (*Type, error) {
	var (
		sawVoid, sawChar, sawShort, sawInt, sawFloat, sawDouble bool
		sawComplex, sawUnsigned                                 bool
		longCount                                               int
		sawAny                                                  bool
	)
	var named *Type
	for {
		t := p.cur()
		switch t.Kind {
		case KwConst, KwVolatile, KwRestrict, KwStatic, KwExtern, KwInline:
			p.next()
			continue
		case KwVoid:
			sawVoid, sawAny = true, true
		case KwChar:
			sawChar, sawAny = true, true
		case KwShort:
			sawShort, sawAny = true, true
		case KwInt:
			sawInt, sawAny = true, true
		case KwLong:
			longCount++
			sawAny = true
		case KwFloat:
			sawFloat, sawAny = true, true
		case KwDouble:
			sawDouble, sawAny = true, true
		case KwSigned:
			sawAny = true
		case KwUnsigned:
			sawUnsigned, sawAny = true, true
		case KwComplex:
			sawComplex, sawAny = true, true
		case KwStruct, KwUnion:
			st, err := p.parseStructSpec()
			if err != nil {
				return nil, err
			}
			named = st
			sawAny = true
		case KwEnum:
			p.next()
			if p.cur().Kind == Ident {
				p.next()
			}
			return Int, nil
		case Ident:
			if td, ok := p.typedefs[t.Text]; ok && !sawAny {
				p.next()
				// allow "typedefname complex"? no — return typedef directly.
				return td, nil
			}
			goto done
		default:
			goto done
		}
		if t.Kind != KwStruct && t.Kind != KwUnion {
			p.next()
		}
	}
done:
	if named != nil {
		return named, nil
	}
	if !sawAny {
		return nil, p.errf("expected type specifier, found %s", p.cur())
	}
	switch {
	case sawComplex && (sawDouble || longCount > 0):
		return ComplexDouble, nil
	case sawComplex && sawFloat:
		return ComplexFloat, nil
	case sawComplex:
		return ComplexDouble, nil
	case sawVoid:
		return Void, nil
	case sawDouble:
		return Double, nil
	case sawFloat:
		return Float, nil
	case sawChar:
		if sawUnsigned {
			return &Type{Kind: TChar, Unsigned: true}, nil
		}
		return Char, nil
	case longCount > 0:
		if sawUnsigned {
			return ULong, nil
		}
		return Long, nil
	case sawShort, sawInt:
		if sawUnsigned {
			return UInt, nil
		}
		return Int, nil
	case sawUnsigned:
		return UInt, nil
	default:
		return Int, nil
	}
}

// parseStructSpec parses "struct [name] [{ fields }]".
func (p *Parser) parseStructSpec() (*Type, error) {
	p.next() // struct / union
	name := ""
	if p.cur().Kind == Ident {
		name = p.next().Text
	}
	if p.cur().Kind != LBrace {
		if name == "" {
			return nil, p.errf("anonymous struct requires a body")
		}
		if st, ok := p.structs[name]; ok {
			return st, nil
		}
		// Forward reference: create an empty shell, fields filled later.
		st := &Type{Kind: TStruct, StructName: name}
		p.structs[name] = st
		return st, nil
	}
	p.next() // {
	st := p.structs[name]
	if st == nil {
		st = &Type{Kind: TStruct, StructName: name}
		if name != "" {
			p.structs[name] = st
		}
	}
	st.Fields = nil
	for p.cur().Kind != RBrace {
		base, err := p.parseTypeSpec()
		if err != nil {
			return nil, err
		}
		for {
			ft, fname, err := p.parseDeclarator(base)
			if err != nil {
				return nil, err
			}
			if fname == "" {
				return nil, p.errf("struct field requires a name")
			}
			st.Fields = append(st.Fields, Field{Name: fname, Type: ft})
			if p.accept(Comma) {
				continue
			}
			break
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
	}
	p.next() // }
	return st, nil
}

// parseDeclarator parses pointer stars, a (possibly absent) name, and
// array/function suffixes. Returns the full type and the declared name.
func (p *Parser) parseDeclarator(base *Type) (*Type, string, error) {
	typ := base
	for p.accept(Star) {
		typ = PointerTo(typ)
		for p.cur().Kind == KwConst || p.cur().Kind == KwVolatile || p.cur().Kind == KwRestrict {
			p.next()
		}
	}
	name := ""
	// Parenthesized declarators ("(*f)(...)") — support the common
	// function-pointer shape by treating it as a void* (MiniC does not
	// call through function pointers).
	if p.cur().Kind == LParen && p.peek(1).Kind == Star {
		p.next()
		p.next()
		if p.cur().Kind == Ident {
			name = p.next().Text
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, "", err
		}
		if p.cur().Kind == LParen {
			if err := p.skipParens(); err != nil {
				return nil, "", err
			}
		}
		return PointerTo(Void), name, nil
	}
	if p.cur().Kind == Ident {
		name = p.next().Text
	}
	return p.parseDeclaratorSuffix(typ, name)
}

func (p *Parser) skipParens() error {
	if _, err := p.expect(LParen); err != nil {
		return err
	}
	depth := 1
	for depth > 0 {
		switch p.next().Kind {
		case LParen:
			depth++
		case RParen:
			depth--
		case EOF:
			return p.errf("unbalanced parentheses")
		}
	}
	return nil
}

func (p *Parser) parseDeclaratorSuffix(typ *Type, name string) (*Type, string, error) {
	switch p.cur().Kind {
	case LParen:
		// function declarator
		p.next()
		ft := &Type{Kind: TFunc, Ret: typ}
		if p.cur().Kind == KwVoid && p.peek(1).Kind == RParen {
			p.next()
		}
		for p.cur().Kind != RParen {
			if p.accept(Ellipsis) {
				ft.Variadic = true
				break
			}
			pbase, err := p.parseTypeSpec()
			if err != nil {
				return nil, "", err
			}
			ptyp, pname, err := p.parseDeclarator(pbase)
			if err != nil {
				return nil, "", err
			}
			// Parameter arrays decay to pointers.
			if ptyp.Kind == TArray {
				ptyp = PointerTo(ptyp.Elem)
			}
			ft.Params = append(ft.Params, Param{Name: pname, Type: ptyp})
			if !p.accept(Comma) {
				break
			}
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, "", err
		}
		return ft, name, nil
	case LBracket:
		// array declarator; collect dimensions then build inside-out
		var dims []Expr
		for p.accept(LBracket) {
			if p.accept(RBracket) {
				dims = append(dims, nil)
				continue
			}
			e, err := p.parseAssignExpr()
			if err != nil {
				return nil, "", err
			}
			if _, err := p.expect(RBracket); err != nil {
				return nil, "", err
			}
			dims = append(dims, e)
		}
		for i := len(dims) - 1; i >= 0; i-- {
			d := dims[i]
			if d == nil {
				typ = IncompleteArrayOf(typ)
				continue
			}
			if n, ok := evalConstInt(d); ok {
				typ = ArrayOf(typ, int(n))
			} else {
				typ = VLAOf(typ, d)
			}
		}
		return typ, name, nil
	default:
		return typ, name, nil
	}
}

// evalConstInt folds an integer constant expression at parse time. Enum
// constants are folded by the lexer/parser pipeline before this runs.
func evalConstInt(e Expr) (int64, bool) {
	switch x := e.(type) {
	case *IntLitExpr:
		return x.Value, true
	case *UnaryExpr:
		v, ok := evalConstInt(x.X)
		if !ok {
			return 0, false
		}
		switch x.Op {
		case Minus:
			return -v, true
		case Plus:
			return v, true
		case Tilde:
			return ^v, true
		case Not:
			if v == 0 {
				return 1, true
			}
			return 0, true
		}
		return 0, false
	case *BinaryExpr:
		l, ok := evalConstInt(x.L)
		if !ok {
			return 0, false
		}
		r, ok := evalConstInt(x.R)
		if !ok {
			return 0, false
		}
		switch x.Op {
		case Plus:
			return l + r, true
		case Minus:
			return l - r, true
		case Star:
			return l * r, true
		case Slash:
			if r == 0 {
				return 0, false
			}
			return l / r, true
		case Percent:
			if r == 0 {
				return 0, false
			}
			return l % r, true
		case Shl:
			return l << uint(r), true
		case Shr:
			return l >> uint(r), true
		case Amp:
			return l & r, true
		case Pipe:
			return l | r, true
		case Caret:
			return l ^ r, true
		}
		return 0, false
	case *CastExpr:
		return evalConstInt(x.X)
	case *SizeofExpr:
		if x.OfType != nil {
			if s := x.OfType.Sizeof(); s > 0 {
				return int64(s), true
			}
		}
		return 0, false
	default:
		return 0, false
	}
}

// ---- Statements ----

func (p *Parser) parseBlock() (*BlockStmt, error) {
	lb, err := p.expect(LBrace)
	if err != nil {
		return nil, err
	}
	blk := &BlockStmt{stmtBase: stmtBase{Pos: lb.Pos}}
	for p.cur().Kind != RBrace {
		if p.cur().Kind == EOF {
			return nil, p.errf("unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if s != nil {
			blk.List = append(blk.List, s)
		}
	}
	p.next() // }
	return blk, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch t.Kind {
	case Semi:
		p.next()
		return nil, nil
	case LBrace:
		return p.parseBlock()
	case KwIf:
		return p.parseIf()
	case KwFor:
		return p.parseFor()
	case KwWhile:
		return p.parseWhile()
	case KwDo:
		return p.parseDoWhile()
	case KwSwitch:
		return p.parseSwitch()
	case KwBreak:
		p.next()
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &BreakStmt{stmtBase{Pos: t.Pos}}, nil
	case KwContinue:
		p.next()
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &ContinueStmt{stmtBase{Pos: t.Pos}}, nil
	case KwReturn:
		p.next()
		rs := &ReturnStmt{stmtBase: stmtBase{Pos: t.Pos}}
		if p.cur().Kind != Semi {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			rs.Value = e
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return rs, nil
	case KwGoto:
		return nil, p.errf("goto is not supported by MiniC")
	case KwTypedef:
		tds, err := p.parseTypedef()
		if err != nil {
			return nil, err
		}
		_ = tds
		return nil, nil
	default:
		if p.isTypeStart() {
			return p.parseDeclStmt()
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &ExprStmt{stmtBase{Pos: t.Pos}, e}, nil
	}
}

func (p *Parser) parseDeclStmt() (Stmt, error) {
	pos := p.cur().Pos
	storage := p.parseStorage()
	base, err := p.parseTypeSpec()
	if err != nil {
		return nil, err
	}
	ds := &DeclStmt{stmtBase: stmtBase{Pos: pos}}
	for {
		typ, name, err := p.parseDeclarator(base)
		if err != nil {
			return nil, err
		}
		if name == "" {
			return nil, p.errf("declaration requires a name")
		}
		vd := &VarDecl{Pos: pos, Name: name, Type: typ, Storage: storage}
		if p.accept(Assign) {
			init, err := p.parseInitializer()
			if err != nil {
				return nil, err
			}
			vd.Init = init
		}
		ds.Decls = append(ds.Decls, vd)
		if p.accept(Comma) {
			continue
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return ds, nil
	}
}

func (p *Parser) parseInitializer() (Expr, error) {
	if p.cur().Kind == LBrace {
		lb := p.next()
		il := &InitListExpr{exprBase: exprBase{Pos: lb.Pos}}
		for p.cur().Kind != RBrace {
			item, err := p.parseInitializer()
			if err != nil {
				return nil, err
			}
			il.Items = append(il.Items, item)
			if !p.accept(Comma) {
				break
			}
		}
		if _, err := p.expect(RBrace); err != nil {
			return nil, err
		}
		return il, nil
	}
	return p.parseAssignExpr()
}

func (p *Parser) parseIf() (Stmt, error) {
	t := p.next() // if
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	then, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if then == nil {
		then = &BlockStmt{stmtBase: stmtBase{Pos: t.Pos}}
	}
	is := &IfStmt{stmtBase: stmtBase{Pos: t.Pos}, Cond: cond, Then: then}
	if p.accept(KwElse) {
		els, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		is.Else = els
	}
	return is, nil
}

func (p *Parser) parseFor() (Stmt, error) {
	t := p.next() // for
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	fs := &ForStmt{stmtBase: stmtBase{Pos: t.Pos}}
	if !p.accept(Semi) {
		if p.isTypeStart() {
			init, err := p.parseDeclStmt()
			if err != nil {
				return nil, err
			}
			fs.Init = init
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			fs.Init = &ExprStmt{stmtBase{Pos: e.NodePos()}, e}
			if _, err := p.expect(Semi); err != nil {
				return nil, err
			}
		}
	}
	if !p.accept(Semi) {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		fs.Cond = cond
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
	}
	if p.cur().Kind != RParen {
		post, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		fs.Post = post
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if body == nil {
		body = &BlockStmt{stmtBase: stmtBase{Pos: t.Pos}}
	}
	fs.Body = body
	return fs, nil
}

func (p *Parser) parseWhile() (Stmt, error) {
	t := p.next() // while
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if body == nil {
		body = &BlockStmt{stmtBase: stmtBase{Pos: t.Pos}}
	}
	return &WhileStmt{stmtBase: stmtBase{Pos: t.Pos}, Cond: cond, Body: body}, nil
}

func (p *Parser) parseDoWhile() (Stmt, error) {
	t := p.next() // do
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if body == nil {
		body = &BlockStmt{stmtBase: stmtBase{Pos: t.Pos}}
	}
	if _, err := p.expect(KwWhile); err != nil {
		return nil, err
	}
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	return &WhileStmt{stmtBase: stmtBase{Pos: t.Pos}, Cond: cond, Body: body, Do: true}, nil
}

func (p *Parser) parseSwitch() (Stmt, error) {
	t := p.next() // switch
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	tag, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(LBrace); err != nil {
		return nil, err
	}
	sw := &SwitchStmt{stmtBase: stmtBase{Pos: t.Pos}, Tag: tag}
	var cc *CaseClause
	for p.cur().Kind != RBrace {
		switch p.cur().Kind {
		case KwCase:
			cp := p.next().Pos
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(Colon); err != nil {
				return nil, err
			}
			cc = &CaseClause{Pos: cp, Value: v}
			sw.Cases = append(sw.Cases, cc)
		case KwDefault:
			cp := p.next().Pos
			if _, err := p.expect(Colon); err != nil {
				return nil, err
			}
			cc = &CaseClause{Pos: cp, IsDefault: true}
			sw.Cases = append(sw.Cases, cc)
		case EOF:
			return nil, p.errf("unterminated switch")
		default:
			if cc == nil {
				return nil, p.errf("statement before first case in switch")
			}
			s, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			if s != nil {
				cc.Body = append(cc.Body, s)
			}
		}
	}
	p.next() // }
	return sw, nil
}

// ---- Expressions (precedence climbing) ----

func (p *Parser) parseExpr() (Expr, error) {
	e, err := p.parseAssignExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == Comma {
		pos := p.next().Pos
		r, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		e = &CommaExpr{exprBase{Pos: pos}, e, r}
	}
	return e, nil
}

var assignOps = map[Kind]bool{
	Assign: true, PlusAssign: true, MinusAssign: true, StarAssign: true,
	SlashAssign: true, PercentAssign: true, AmpAssign: true, PipeAssign: true,
	CaretAssign: true, ShlAssign: true, ShrAssign: true,
}

func (p *Parser) parseAssignExpr() (Expr, error) {
	l, err := p.parseCondExpr()
	if err != nil {
		return nil, err
	}
	if assignOps[p.cur().Kind] {
		op := p.next()
		r, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		return &AssignExpr{exprBase{Pos: op.Pos}, op.Kind, l, r}, nil
	}
	return l, nil
}

func (p *Parser) parseCondExpr() (Expr, error) {
	cond, err := p.parseBinaryExpr(1)
	if err != nil {
		return nil, err
	}
	if p.cur().Kind == Question {
		qp := p.next().Pos
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Colon); err != nil {
			return nil, err
		}
		els, err := p.parseCondExpr()
		if err != nil {
			return nil, err
		}
		return &CondExpr{exprBase{Pos: qp}, cond, then, els}, nil
	}
	return cond, nil
}

// binPrec returns the precedence of binary operators; 0 means not binary.
func binPrec(k Kind) int {
	switch k {
	case OrOr:
		return 1
	case AndAnd:
		return 2
	case Pipe:
		return 3
	case Caret:
		return 4
	case Amp:
		return 5
	case EqEq, NotEq:
		return 6
	case Lt, Gt, Le, Ge:
		return 7
	case Shl, Shr:
		return 8
	case Plus, Minus:
		return 9
	case Star, Slash, Percent:
		return 10
	default:
		return 0
	}
}

func (p *Parser) parseBinaryExpr(minPrec int) (Expr, error) {
	l, err := p.parseUnaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		prec := binPrec(p.cur().Kind)
		if prec == 0 || prec < minPrec {
			return l, nil
		}
		op := p.next()
		r, err := p.parseBinaryExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{exprBase{Pos: op.Pos}, op.Kind, l, r}
	}
}

func (p *Parser) parseUnaryExpr() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case Plus, Minus, Not, Tilde, Star, Amp:
		p.next()
		x, err := p.parseUnaryExpr()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{exprBase: exprBase{Pos: t.Pos}, Op: t.Kind, X: x}, nil
	case PlusPlus, MinusMinus:
		p.next()
		x, err := p.parseUnaryExpr()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{exprBase: exprBase{Pos: t.Pos}, Op: t.Kind, X: x}, nil
	case KwSizeof:
		p.next()
		if p.cur().Kind == LParen && p.typeStartAt(1) {
			p.next() // (
			typ, err := p.parseTypeName()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RParen); err != nil {
				return nil, err
			}
			return &SizeofExpr{exprBase: exprBase{Pos: t.Pos}, OfType: typ}, nil
		}
		x, err := p.parseUnaryExpr()
		if err != nil {
			return nil, err
		}
		return &SizeofExpr{exprBase: exprBase{Pos: t.Pos}, X: x}, nil
	case LParen:
		if p.typeStartAt(1) {
			// Cast expression.
			p.next() // (
			typ, err := p.parseTypeName()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RParen); err != nil {
				return nil, err
			}
			x, err := p.parseUnaryExpr()
			if err != nil {
				return nil, err
			}
			return &CastExpr{exprBase: exprBase{Pos: t.Pos}, To: typ, X: x}, nil
		}
		return p.parsePostfixExpr()
	default:
		return p.parsePostfixExpr()
	}
}

// typeStartAt reports whether the token at offset n begins a type.
func (p *Parser) typeStartAt(n int) bool {
	t := p.peek(n)
	switch t.Kind {
	case KwVoid, KwChar, KwShort, KwInt, KwLong, KwFloat, KwDouble,
		KwSigned, KwUnsigned, KwComplex, KwStruct, KwUnion, KwEnum, KwConst:
		return true
	case Ident:
		_, ok := p.typedefs[t.Text]
		return ok
	default:
		return false
	}
}

// parseTypeName parses an abstract type name (type-spec plus abstract
// declarator) as used in casts and sizeof.
func (p *Parser) parseTypeName() (*Type, error) {
	base, err := p.parseTypeSpec()
	if err != nil {
		return nil, err
	}
	typ := base
	for p.accept(Star) {
		typ = PointerTo(typ)
		for p.cur().Kind == KwConst || p.cur().Kind == KwVolatile || p.cur().Kind == KwRestrict {
			p.next()
		}
	}
	for p.accept(LBracket) {
		if p.accept(RBracket) {
			typ = IncompleteArrayOf(typ)
			continue
		}
		e, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RBracket); err != nil {
			return nil, err
		}
		if n, ok := evalConstInt(e); ok {
			typ = ArrayOf(typ, int(n))
		} else {
			typ = VLAOf(typ, e)
		}
	}
	return typ, nil
}

func (p *Parser) parsePostfixExpr() (Expr, error) {
	e, err := p.parsePrimaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		switch t.Kind {
		case LBracket:
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBracket); err != nil {
				return nil, err
			}
			e = &IndexExpr{exprBase{Pos: t.Pos}, e, idx}
		case LParen:
			p.next()
			call := &CallExpr{exprBase: exprBase{Pos: t.Pos}, Fun: e}
			for p.cur().Kind != RParen {
				arg, err := p.parseAssignExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, arg)
				if !p.accept(Comma) {
					break
				}
			}
			if _, err := p.expect(RParen); err != nil {
				return nil, err
			}
			e = call
		case Dot:
			p.next()
			nameTok, err := p.expect(Ident)
			if err != nil {
				return nil, err
			}
			e = &MemberExpr{exprBase: exprBase{Pos: t.Pos}, X: e, Name: nameTok.Text}
		case Arrow:
			p.next()
			nameTok, err := p.expect(Ident)
			if err != nil {
				return nil, err
			}
			e = &MemberExpr{exprBase: exprBase{Pos: t.Pos}, X: e, Name: nameTok.Text, Arrow: true}
		case PlusPlus, MinusMinus:
			p.next()
			e = &UnaryExpr{exprBase: exprBase{Pos: t.Pos}, Op: t.Kind, X: e, Post: true}
		default:
			return e, nil
		}
	}
}

func (p *Parser) parsePrimaryExpr() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case IntLit, CharLit:
		p.next()
		return &IntLitExpr{exprBase{Pos: t.Pos}, t.IntVal}, nil
	case FloatLit:
		p.next()
		return &FloatLitExpr{exprBase{Pos: t.Pos}, t.FloatVal, t.IsFloat32Lit}, nil
	case StringLit:
		p.next()
		return &StringLitExpr{exprBase{Pos: t.Pos}, t.Text}, nil
	case Ident:
		p.next()
		if t.Text == "__I__" {
			return &ImaginaryLitExpr{exprBase{Pos: t.Pos, Type: nil}}, nil
		}
		if v, ok := p.enums[t.Text]; ok {
			return &IntLitExpr{exprBase{Pos: t.Pos}, v}, nil
		}
		return &IdentExpr{exprBase: exprBase{Pos: t.Pos}, Name: t.Text}, nil
	case LParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, p.errf("expected expression, found %s", t)
	}
}
