package minic

// Fuzz targets for the MiniC frontend. The lexer and parser sit directly
// behind user-supplied source, so the hard requirement is totality: any
// byte string must produce either a *File or an error — never a panic.
// Accepted programs must additionally survive the print→parse round trip
// with the printed form as a fixpoint, since FACC emits adapters (and
// whole rewritten units) through the same printer.

import (
	"testing"
)

var fuzzSeedPrograms = []string{
	"",
	"int f(void) { return 1; }",
	`typedef struct { float re; float im; } cpx;
void fft(cpx* x, int n) {
    for (int i = 0; i < n; i = i + 1) { x[i].re = x[i].re * 2.0f; }
}`,
	`double twiddle(int k, int n) {
    return cos(-2.0 * M_PI * (double)k / (double)n);
}`,
	`int fib(int n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }`,
	`float _Complex mul(float _Complex a, float _Complex b) { return a * b; }`,
	"int g = 3; int h[4]; long big = 5000000000;",
	`void swap(double* a, double* b) { double t = *a; *a = *b; *b = t; }`,
	"int bad( { ) } ;",
	"/* unterminated",
	"\"unterminated string",
	"int x = 0x",
	"int \xff\xfe(void) {}",
	"while for if else return struct typedef",
}

// FuzzParse feeds arbitrary bytes through the lexer and parser. Invalid
// input must be rejected with an error; valid input must print back to
// source that re-parses to the same printed form.
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeedPrograms {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		file, err := Parse("fuzz.c", src)
		if err != nil {
			return // rejection is fine; panicking is the bug
		}
		printed := PrintFile(file)
		file2, err := Parse("fuzz_printed.c", printed)
		if err != nil {
			t.Fatalf("printed form of an accepted program does not re-parse: %v\ninput: %q\nprinted:\n%s",
				err, src, printed)
		}
		again := PrintFile(file2)
		if again != printed {
			t.Fatalf("printer is not a fixpoint over reparse\ninput: %q\nfirst:\n%s\nsecond:\n%s",
				src, printed, again)
		}
	})
}
