package behave

import (
	"math"
	"testing"

	"facc/internal/fft"
)

func TestSketchEnumerationFinite(t *testing.T) {
	s := Sketches()
	if len(s) != 6 {
		t.Fatalf("sketch count = %d, want 6 (2 permutations x 3 scales)", len(s))
	}
	if !s[0].IsIdentity() {
		t.Error("identity must come first (canonical tie-break)")
	}
	seen := map[string]bool{}
	for _, op := range s {
		if seen[op.String()] {
			t.Errorf("duplicate sketch %s", op)
		}
		seen[op.String()] = true
	}
}

func TestApplyScale(t *testing.T) {
	x := []complex128{1, 2, 3, 4}
	PostOp{Scale: ScaleByN}.Apply(x)
	if x[0] != 4 || x[3] != 16 {
		t.Errorf("denormalize: %v", x)
	}
	PostOp{Scale: ScaleBy1N}.Apply(x)
	if x[0] != 1 || x[3] != 4 {
		t.Errorf("normalize: %v", x)
	}
}

func TestApplyBitReverse(t *testing.T) {
	x := []complex128{0, 1, 2, 3, 4, 5, 6, 7}
	PostOp{BitReverse: true}.Apply(x)
	want := []complex128{0, 4, 2, 6, 1, 5, 3, 7}
	for i := range x {
		if x[i] != want[i] {
			t.Fatalf("bitrev = %v", x)
		}
	}
}

func TestApplyComposition(t *testing.T) {
	x := []complex128{0, 1, 2, 3}
	PostOp{BitReverse: true, Scale: ScaleByN}.Apply(x)
	// bitrev([0,1,2,3]) = [0,2,1,3]; then *4.
	want := []complex128{0, 8, 4, 12}
	for i := range x {
		if x[i] != want[i] {
			t.Fatalf("composed = %v, want %v", x, want)
		}
	}
}

func TestBitReverseSkippedForNonPow2(t *testing.T) {
	x := []complex128{1, 2, 3}
	PostOp{BitReverse: true}.Apply(x)
	if x[0] != 1 || x[1] != 2 || x[2] != 3 {
		t.Error("non-pow2 bit reverse should be a no-op")
	}
}

// The canonical use: FFTA normalizes, user code does not; denormalizing the
// FFTA output must recover the plain FFT.
func TestDenormalizeRecoversUnnormalizedFFT(t *testing.T) {
	in := []complex128{1, 2i, -1, 3}
	plain := fft.DFT(in, fft.Forward)
	normalized := append([]complex128(nil), plain...)
	fft.Normalize(normalized)
	PostOp{Scale: ScaleByN}.Apply(normalized)
	for i := range plain {
		d := plain[i] - normalized[i]
		if math.Hypot(real(d), imag(d)) > 1e-12 {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestCCode(t *testing.T) {
	lines := PostOp{BitReverse: true, Scale: ScaleByN}.CCode("output", "len")
	joined := ""
	for _, l := range lines {
		joined += l + "\n"
	}
	if !contains(joined, "bit_reverse_permute(output, len);") ||
		!contains(joined, "output[__k].re *= (float)len;") {
		t.Errorf("C code:\n%s", joined)
	}
	if len(PostOp{}.CCode("o", "n")) != 0 {
		t.Error("identity op should emit no code")
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestStrings(t *testing.T) {
	if (PostOp{}).String() != "identity" {
		t.Error("identity string")
	}
	composed := PostOp{BitReverse: true, Scale: ScaleBy1N}
	if composed.String() != "bitrev+normalize(/N)" {
		t.Errorf("composed string = %s", composed)
	}
}
