// Package behave implements FACC's sketch-based behavioral synthesis
// (paper §5.3). The pre-behavioral function is fixed to the identity (as in
// the paper); the post-behavioral sketch set covers the behaviors real FFT
// implementations commonly omit or add: normalization/denormalization and
// bit-reversed ordering. Every sketch is finite and every hole has finitely
// many fillings, so enumeration terminates.
package behave

import (
	"fmt"

	"facc/internal/fft"
)

// ScaleKind is the hole of the scaling sketch.
type ScaleKind int

// Scale sketch fillings.
const (
	ScaleNone ScaleKind = iota
	ScaleByN            // multiply by N (de-normalize a normalized accelerator)
	ScaleBy1N           // multiply by 1/N (normalize an un-normalized accelerator)
)

func (s ScaleKind) String() string {
	switch s {
	case ScaleByN:
		return "denormalize(*N)"
	case ScaleBy1N:
		return "normalize(/N)"
	default:
		return "noscale"
	}
}

// PostOp is one instantiated post-behavioral adapter: an optional
// permutation followed by an optional rescale of the accelerator output.
type PostOp struct {
	BitReverse bool
	Scale      ScaleKind
}

// Sketches enumerates every post-behavioral candidate, identity first.
func Sketches() []PostOp {
	var out []PostOp
	for _, br := range []bool{false, true} {
		for _, sc := range []ScaleKind{ScaleNone, ScaleByN, ScaleBy1N} {
			out = append(out, PostOp{BitReverse: br, Scale: sc})
		}
	}
	return out
}

// IsIdentity reports whether the op changes nothing.
func (op PostOp) IsIdentity() bool { return !op.BitReverse && op.Scale == ScaleNone }

// Apply transforms the accelerator output in place.
func (op PostOp) Apply(x []complex128) {
	if op.BitReverse && fft.IsPowerOfTwo(len(x)) {
		fft.BitReverse(x)
	}
	switch op.Scale {
	case ScaleByN:
		fft.Scale(x, float64(len(x)))
	case ScaleBy1N:
		fft.Scale(x, 1/float64(len(x)))
	}
}

func (op PostOp) String() string {
	if op.IsIdentity() {
		return "identity"
	}
	s := ""
	if op.BitReverse {
		s = "bitrev"
	}
	if op.Scale != ScaleNone {
		if s != "" {
			s += "+"
		}
		s += op.Scale.String()
	}
	return s
}

// CCode renders the op as C statements over an output buffer of
// float_complex elements. outVar is the buffer, lenVar the element count.
func (op PostOp) CCode(outVar, lenVar string) []string {
	var lines []string
	if op.BitReverse {
		lines = append(lines,
			fmt.Sprintf("bit_reverse_permute(%s, %s);", outVar, lenVar))
	}
	switch op.Scale {
	case ScaleByN:
		lines = append(lines,
			fmt.Sprintf("for (int __k = 0; __k < %s; __k++) {", lenVar),
			fmt.Sprintf("    %s[__k].re *= (float)%s;", outVar, lenVar),
			fmt.Sprintf("    %s[__k].im *= (float)%s;", outVar, lenVar),
			"}")
	case ScaleBy1N:
		lines = append(lines,
			fmt.Sprintf("for (int __k = 0; __k < %s; __k++) {", lenVar),
			fmt.Sprintf("    %s[__k].re /= (float)%s;", outVar, lenVar),
			fmt.Sprintf("    %s[__k].im /= (float)%s;", outVar, lenVar),
			"}")
	}
	return lines
}
