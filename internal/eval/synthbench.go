package eval

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"maps"
	"runtime"
	"time"

	"facc/internal/accel"
	"facc/internal/bench"
	"facc/internal/core"
	"facc/internal/minic"
	"facc/internal/obs"
	"facc/internal/synth"
)

// SynthBenchRun is one measured compile of the whole supported corpus at
// a fixed candidate-worker count.
type SynthBenchRun struct {
	Workers     int     `json:"workers"`
	WallSeconds float64 `json:"wall_seconds"`

	Adapters         int   `json:"adapters"`
	CandidatesTested int64 `json:"candidates_tested"`
	TestsRun         int64 `json:"tests_run"`
	// TestsPerSec is the generate-and-test engine's throughput: IO
	// examples checked per wall-clock second across the whole corpus.
	TestsPerSec float64 `json:"tests_per_sec"`

	OracleHits    int64   `json:"oracle_hits"`
	OracleMisses  int64   `json:"oracle_misses"`
	OracleHitRate float64 `json:"oracle_hit_rate"`

	// Cost-ledger attribution: where the interpreter work went. Useful
	// tests ran on candidates that won; speculative tests ran on losers
	// (superseded or killed by a parallel winner). WasteRatio =
	// speculative / (useful + speculative) — the price of parallel
	// speculation, paid for wall-clock speedup.
	UsefulTests      int64   `json:"useful_tests"`
	SpeculativeTests int64   `json:"speculative_tests"`
	WasteRatio       float64 `json:"waste_ratio"`
	// WinnerOracleHits counts reference-run cache hits charged to winning
	// candidates. At Workers=1 the first-winner search never fuzzes two
	// same-signature candidates, so total hits are legitimately 0; at
	// Workers=N nearly all hits land on speculative losers sharing the
	// winner's reference runs. The headline hit rate therefore measures
	// speculation-induced sharing, not cache quality — see Exhaustive for
	// the controlled cache-effectiveness number.
	WinnerOracleHits int64 `json:"winner_oracle_hits"`

	// PerTarget splits the oracle and waste numbers by accelerator.
	PerTarget []SynthBenchRunTarget `json:"per_target"`
}

// SynthBenchRunTarget is one accelerator's slice of a run's oracle and
// cost-ledger statistics.
type SynthBenchRunTarget struct {
	Target           string  `json:"target"`
	OracleHits       int64   `json:"oracle_hits"`
	OracleMisses     int64   `json:"oracle_misses"`
	OracleHitRate    float64 `json:"oracle_hit_rate"`
	UsefulTests      int64   `json:"useful_tests"`
	SpeculativeTests int64   `json:"speculative_tests"`
	WasteRatio       float64 `json:"waste_ratio"`
}

// SynthBenchExhaustive measures oracle-cache effectiveness with every
// candidate tested (ExhaustAll), where reference-run sharing is the
// norm rather than a speculation side effect. Functions with a single
// surviving hypothesis can never hit the cache, so the headline number
// is the hit rate restricted to multi-candidate functions.
type SynthBenchExhaustive struct {
	Workers          int     `json:"workers"`
	WallSeconds      float64 `json:"wall_seconds"`
	CandidatesTested int64   `json:"candidates_tested"`
	OracleHits       int64   `json:"oracle_hits"`
	OracleMisses     int64   `json:"oracle_misses"`
	OracleHitRate    float64 `json:"oracle_hit_rate"`

	MultiCandidateFunctions int     `json:"multi_candidate_functions"`
	MultiCandidateHits      int64   `json:"multi_candidate_hits"`
	MultiCandidateMisses    int64   `json:"multi_candidate_misses"`
	MultiCandidateHitRate   float64 `json:"multi_candidate_hit_rate"`

	// PerTarget splits the multi-candidate numbers by accelerator.
	// Sharing concentrates where the API has accelerator-side knobs
	// (FFTW's direction/flags): those candidates differ only in
	// constants invisible to the user program, so their reference runs
	// coincide — and, since oracle keys are target-independent, where
	// another target already interpreted the same reference run.
	PerTarget []SynthBenchExhaustiveTarget `json:"per_target"`

	// CrossTarget measures what target-independent oracle keys buy:
	// each benchmark's ffta+powerquad+fftw compiles share one cache, so
	// a reference run interpreted for one target is a free hit for the
	// other two. The headline is the hit rate over benchmarks that
	// fuzzed at least two candidates across the three targets — gated
	// >50% by BenchGate (three lookups per shared run bound it near
	// 2/3 when size pools align across specs).
	CrossTarget *SynthBenchCrossTarget `json:"cross_target,omitempty"`
}

// SynthBenchCrossTarget aggregates shared-oracle effectiveness across
// targets: one cache per benchmark, spanning its ffta+powerquad+fftw
// compiles.
type SynthBenchCrossTarget struct {
	Benchmarks               int     `json:"benchmarks"`
	MultiCandidateBenchmarks int     `json:"multi_candidate_benchmarks"`
	Hits                     int64   `json:"hits"`
	Misses                   int64   `json:"misses"`
	MultiCandidateHitRate    float64 `json:"multi_candidate_hit_rate"`
}

// SynthBenchExhaustiveTarget is one accelerator's slice of the
// exhaustive oracle statistics.
type SynthBenchExhaustiveTarget struct {
	Target                  string  `json:"target"`
	MultiCandidateFunctions int     `json:"multi_candidate_functions"`
	MultiCandidateHits      int64   `json:"multi_candidate_hits"`
	MultiCandidateMisses    int64   `json:"multi_candidate_misses"`
	MultiCandidateHitRate   float64 `json:"multi_candidate_hit_rate"`
}

// SynthBenchReport is the BENCH_synth.json document: the synthesis
// engine's regression numbers at Workers=1 versus Workers=N, plus the
// cross-run determinism verdict.
type SynthBenchReport struct {
	GoMaxProcs int      `json:"gomaxprocs"`
	Targets    []string `json:"targets"`
	Programs   int      `json:"programs"`
	NumTests   int      `json:"num_tests"`

	Runs       []SynthBenchRun       `json:"runs"`
	Exhaustive *SynthBenchExhaustive `json:"exhaustive,omitempty"`

	// Search is the search observatory's view of the first (Workers=1,
	// deterministic) run: funnel totals, kill-depth distribution and the
	// discriminating-input ranking. Kill counts depend on worker count
	// (parallel speculation kills more candidates), so only the
	// sequential run is recorded — it is reproducible across machines.
	Search *obs.SearchSummary `json:"search,omitempty"`

	// CexPoolEntries is the counterexample pool size after the priming
	// pass — the ranked discriminating inputs every measured run
	// replayed first (each run gets its own clone of this pool, so no
	// run contaminates another's measurement).
	CexPoolEntries int `json:"cex_pool_entries"`

	// Speedup is wall(first run) / wall(last run) — ≥1 when parallel
	// candidate fuzzing pays off. BenchGate floors it at 1.0 on
	// multi-core hosts; on GOMAXPROCS=1 the parallel run's work is a
	// superset of the sequential run's on the same core, so the gate
	// only demands parity within tolerance there.
	Speedup float64 `json:"speedup"`
	// AdaptersIdentical reports whether every (benchmark, target) pair
	// produced byte-identical adapter C across all runs — the
	// determinism contract, measured rather than assumed.
	AdaptersIdentical bool `json:"adapters_identical"`
}

// SynthBench compiles the supported corpus once per worker count and
// measures the synthesis engine: wall-clock, fuzz throughput and
// reference-oracle cache effectiveness. File-level compilation is kept
// sequential so candidate-level parallelism is the only variable.
// kills, when non-nil, receives the first (sequential) run's kill
// attribution — pass the CLI's shared table so -search-report and
// -cex-pool observe the same events as the report's search section; nil
// gets a private table.
//
// pool, when non-nil (the CLI's -cex-pool), seeds the counterexample
// replay: an unmeasured sequential priming pass first records the
// corpus's kills into it, then every measured run replays a private
// clone of the primed pool — identical starting state per run, and the
// caller's pool keeps only the priming kills (flushed by the CLI's
// Finish). nil primes a private pool, so the measured runs always
// exercise the replay-first path. Each measured run also shares one
// oracle cache across its targets, exactly like CompileAll, so the
// artifact reflects cross-target reference-run sharing.
func SynthBench(ctx context.Context, targets []string, numTests int, workerCounts []int, kills *obs.KillTable, pool *obs.CexPool) (*SynthBenchReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	rep := &SynthBenchReport{
		GoMaxProcs:        runtime.GOMAXPROCS(0),
		Targets:           targets,
		Programs:          len(bench.SupportedSuite()),
		NumTests:          numTests,
		AdaptersIdentical: true,
	}

	// Priming pass (unmeasured): fill the pool with this corpus's
	// discriminating inputs so the measured runs below replay a warm,
	// ranked pool — the steady state of a long-lived -cex-pool file.
	if pool == nil {
		pool = obs.NewCexPool()
	}
	for _, target := range targets {
		spec, err := accel.SpecByName(target)
		if err != nil {
			return nil, err
		}
		for _, b := range bench.SupportedSuite() {
			f, err := minic.ParseAndCheck(b.File, b.Source())
			if err != nil {
				return nil, err
			}
			if _, err := core.CompileFile(ctx, f, spec, core.Options{
				Entry:         b.Entry,
				ProfileValues: b.ProfileValues,
				Synth:         synth.Options{NumTests: numTests, Workers: 1, Cex: pool},
			}); err != nil {
				return nil, err
			}
		}
	}
	rep.CexPoolEntries = len(pool.Entries())

	// Each worker count is measured speedReps times and WallSeconds keeps
	// the minimum — min is the standard noise-robust wall estimator, and
	// the Speedup floor gated downstream must not flake on GC or
	// scheduler jitter. Counters and adapters are identical across
	// repetitions by the determinism contract (measured rather than
	// assumed below), so the stats come from the first repetition.
	const speedReps = 3
	var baseline map[string]string
	for runIdx, wk := range workerCounts {
		var run SynthBenchRun
		for repIdx := 0; repIdx < speedReps; repIdx++ {
			tr := obs.New()
			led := obs.NewLedger()
			// Kill attribution only on the first (sequential) run's
			// first repetition: at Workers=N the winner races its rivals
			// and kill counts become machine-dependent, which has no
			// place in a committed artifact.
			var ktab *obs.KillTable
			if runIdx == 0 && repIdx == 0 {
				if kills == nil {
					kills = obs.NewKillTable()
				}
				ktab = kills
			}
			// Every repetition starts from the same primed pool state
			// and shares one oracle cache across its targets.
			cex := pool.Clone()
			oc := synth.NewOracleCache()
			adapters := map[string]string{}
			start := time.Now()
			for _, target := range targets {
				spec, err := accel.SpecByName(target)
				if err != nil {
					return nil, err
				}
				for _, b := range bench.SupportedSuite() {
					f, err := minic.ParseAndCheck(b.File, b.Source())
					if err != nil {
						return nil, err
					}
					comp, err := core.CompileFile(ctx, f, spec, core.Options{
						Entry:         b.Entry,
						ProfileValues: b.ProfileValues,
						Trace:         tr,
						Ledger:        led,
						Kills:         ktab,
						Synth: synth.Options{NumTests: numTests, Workers: wk,
							Cex: cex, Oracle: oc},
					})
					if err != nil {
						return nil, err
					}
					if s := comp.Success(); s != nil {
						adapters[target+"/"+b.Name] = s.AdapterC
					}
				}
			}
			wall := time.Since(start)

			if repIdx == 0 {
				c := tr.Metrics().Counters()
				run = SynthBenchRun{
					Workers:          wk,
					WallSeconds:      wall.Seconds(),
					Adapters:         len(adapters),
					CandidatesTested: c["synth.candidates_tested"],
					TestsRun:         c["synth.tests_run"],
					OracleHits:       c["synth.oracle_hits"],
					OracleMisses:     c["synth.oracle_misses"],
				}
				if total := run.OracleHits + run.OracleMisses; total > 0 {
					run.OracleHitRate = float64(run.OracleHits) / float64(total)
				}
				sum := led.Summary()
				run.UsefulTests = sum.Total.UsefulTests
				run.SpeculativeTests = sum.Total.SpeculativeTests
				run.WasteRatio = sum.Total.WasteRatio
				run.WinnerOracleHits = sum.Total.UsefulOracleHits
				costs := map[string]obs.TargetCost{}
				for _, tc := range sum.Targets {
					costs[tc.Target] = tc
				}
				for _, target := range targets {
					t := SynthBenchRunTarget{
						Target:       target,
						OracleHits:   c["synth.oracle_hits."+target],
						OracleMisses: c["synth.oracle_misses."+target],
					}
					if total := t.OracleHits + t.OracleMisses; total > 0 {
						t.OracleHitRate = float64(t.OracleHits) / float64(total)
					}
					if tc, ok := costs[target]; ok {
						t.UsefulTests = tc.UsefulTests
						t.SpeculativeTests = tc.SpeculativeTests
						t.WasteRatio = tc.WasteRatio
					}
					run.PerTarget = append(run.PerTarget, t)
				}
			} else if wall.Seconds() < run.WallSeconds {
				run.WallSeconds = wall.Seconds()
			}
			if ktab != nil {
				rep.Search = ktab.Summary()
			}
			if baseline == nil {
				baseline = adapters
			} else if !maps.Equal(baseline, adapters) {
				rep.AdaptersIdentical = false
			}
		}
		if run.WallSeconds > 0 {
			run.TestsPerSec = float64(run.TestsRun) / run.WallSeconds
		}
		rep.Runs = append(rep.Runs, run)
	}
	if len(rep.Runs) >= 2 && rep.Runs[len(rep.Runs)-1].WallSeconds > 0 {
		rep.Speedup = rep.Runs[0].WallSeconds / rep.Runs[len(rep.Runs)-1].WallSeconds
	}

	ex, err := synthBenchExhaustive(ctx, targets, numTests, workerCounts[len(workerCounts)-1])
	if err != nil {
		return nil, err
	}
	rep.Exhaustive = ex
	return rep, nil
}

// synthBenchExhaustive compiles the corpus with ExhaustAll (every binding
// candidate fuzzed, not just up to the first winner) and splits the
// oracle statistics per function via the provenance journal, so the
// reported cache hit rate can be restricted to functions that actually
// had more than one candidate to share reference runs between. Each
// benchmark's compiles across all targets share one oracle cache — the
// per-target rates therefore include cross-target hits, and the cache's
// own counters feed the CrossTarget section.
func synthBenchExhaustive(ctx context.Context, targets []string, numTests, workers int) (*SynthBenchExhaustive, error) {
	ex := &SynthBenchExhaustive{Workers: workers}
	tr := obs.New()
	start := time.Now()
	perTgt := make([]SynthBenchExhaustiveTarget, len(targets))
	for i, target := range targets {
		perTgt[i].Target = target
	}
	ct := &SynthBenchCrossTarget{}
	for _, b := range bench.SupportedSuite() {
		oc := synth.NewOracleCache()
		benchFuzzed := 0
		for i, target := range targets {
			spec, err := accel.SpecByName(target)
			if err != nil {
				return nil, err
			}
			tgt := &perTgt[i]
			f, err := minic.ParseAndCheck(b.File, b.Source())
			if err != nil {
				return nil, err
			}
			j := obs.NewJournal()
			if _, err := core.CompileFile(ctx, f, spec, core.Options{
				Entry:         b.Entry,
				ProfileValues: b.ProfileValues,
				Trace:         tr,
				Journal:       j,
				Synth: synth.Options{NumTests: numTests, Workers: workers,
					ExhaustAll: true, Oracle: oc},
			}); err != nil {
				return nil, err
			}
			// One compile = one journal, so function names cannot
			// collide across benchmarks here.
			fuzzed := map[string]int{}
			for _, ev := range j.Events() {
				if ev.Kind == obs.KindFuzz {
					fuzzed[ev.Function]++
					benchFuzzed++
				}
			}
			for _, ev := range j.Events() {
				if ev.Kind != obs.KindOracle {
					continue
				}
				var hits, misses int64
				if _, err := fmt.Sscanf(ev.Detail, "reference runs: %d hits, %d misses",
					&hits, &misses); err != nil {
					continue
				}
				if fuzzed[ev.Function] >= 2 {
					tgt.MultiCandidateFunctions++
					tgt.MultiCandidateHits += hits
					tgt.MultiCandidateMisses += misses
				}
			}
		}
		hits, misses, _ := oc.Stats()
		ct.Benchmarks++
		// "Multi-candidate" across targets: with at least two candidates
		// fuzzed over the shared cache, reference-run sharing is possible
		// and the hit rate measures it. (A benchmark compiled for three
		// targets virtually always qualifies.)
		if benchFuzzed >= 2 {
			ct.MultiCandidateBenchmarks++
			ct.Hits += hits
			ct.Misses += misses
		}
	}
	for i := range perTgt {
		tgt := &perTgt[i]
		if total := tgt.MultiCandidateHits + tgt.MultiCandidateMisses; total > 0 {
			tgt.MultiCandidateHitRate = float64(tgt.MultiCandidateHits) / float64(total)
		}
		ex.MultiCandidateFunctions += tgt.MultiCandidateFunctions
		ex.MultiCandidateHits += tgt.MultiCandidateHits
		ex.MultiCandidateMisses += tgt.MultiCandidateMisses
		ex.PerTarget = append(ex.PerTarget, *tgt)
	}
	if total := ct.Hits + ct.Misses; total > 0 {
		ct.MultiCandidateHitRate = float64(ct.Hits) / float64(total)
	}
	ex.CrossTarget = ct
	ex.WallSeconds = time.Since(start).Seconds()
	c := tr.Metrics().Counters()
	ex.CandidatesTested = c["synth.candidates_tested"]
	ex.OracleHits = c["synth.oracle_hits"]
	ex.OracleMisses = c["synth.oracle_misses"]
	if total := ex.OracleHits + ex.OracleMisses; total > 0 {
		ex.OracleHitRate = float64(ex.OracleHits) / float64(total)
	}
	if total := ex.MultiCandidateHits + ex.MultiCandidateMisses; total > 0 {
		ex.MultiCandidateHitRate = float64(ex.MultiCandidateHits) / float64(total)
	}
	return ex, nil
}

// WriteJSON emits the report as indented JSON (the BENCH_synth.json
// artifact format).
func (r *SynthBenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText prints the human-readable summary.
func (r *SynthBenchReport) WriteText(w io.Writer) {
	fmt.Fprintf(w, "Synthesis benchmark: %d programs x %d targets, %d tests/candidate, GOMAXPROCS=%d\n",
		r.Programs, len(r.Targets), r.NumTests, r.GoMaxProcs)
	fmt.Fprintf(w, "%-8s %10s %9s %12s %12s %10s %7s\n",
		"workers", "wall (s)", "adapters", "tests run", "tests/sec", "oracle hit", "waste")
	for _, run := range r.Runs {
		fmt.Fprintf(w, "%-8d %10.2f %9d %12d %12.0f %9.0f%% %6.0f%%\n",
			run.Workers, run.WallSeconds, run.Adapters, run.TestsRun,
			run.TestsPerSec, 100*run.OracleHitRate, 100*run.WasteRatio)
		for _, t := range run.PerTarget {
			fmt.Fprintf(w, "  %-10s oracle %3.0f%% (%d/%d)  tests useful %d | speculative %d (waste %.0f%%)\n",
				t.Target, 100*t.OracleHitRate, t.OracleHits, t.OracleHits+t.OracleMisses,
				t.UsefulTests, t.SpeculativeTests, 100*t.WasteRatio)
		}
	}
	if r.Speedup != 0 {
		fmt.Fprintf(w, "speedup: %.2fx", r.Speedup)
		if r.AdaptersIdentical {
			fmt.Fprintf(w, " (adapters byte-identical across worker counts)\n")
		} else {
			fmt.Fprintf(w, " (WARNING: adapters differ across worker counts)\n")
		}
	}
	if s := r.Search; s != nil {
		fmt.Fprintf(w, "search (sequential run): %d generated → %d pre-filtered → %d dispatched → %d killed / %d superseded / %d survived → %d winner(s); %d case(s) killed >1 binding family\n",
			s.Generated, s.PreFiltered, s.Dispatched, s.Killed,
			s.Superseded, s.Survived, s.Winners, s.MultiFamilyCases)
	}
	if ex := r.Exhaustive; ex != nil {
		fmt.Fprintf(w, "exhaustive (all candidates, workers=%d): %d candidates in %.2fs, oracle %.0f%% overall, %.0f%% on %d multi-candidate functions\n",
			ex.Workers, ex.CandidatesTested, ex.WallSeconds,
			100*ex.OracleHitRate, 100*ex.MultiCandidateHitRate,
			ex.MultiCandidateFunctions)
		for _, tgt := range ex.PerTarget {
			fmt.Fprintf(w, "  %-10s %.0f%% hit rate on %d multi-candidate functions\n",
				tgt.Target, 100*tgt.MultiCandidateHitRate, tgt.MultiCandidateFunctions)
		}
		if ct := ex.CrossTarget; ct != nil {
			fmt.Fprintf(w, "  cross-target (one oracle cache per benchmark across %d targets): %.0f%% hit rate (%d/%d lookups) on %d/%d multi-candidate benchmarks\n",
				len(r.Targets), 100*ct.MultiCandidateHitRate, ct.Hits,
				ct.Hits+ct.Misses, ct.MultiCandidateBenchmarks, ct.Benchmarks)
		}
	}
	if r.CexPoolEntries > 0 {
		fmt.Fprintf(w, "counterexample pool: %d primed entries replayed first by every measured run\n",
			r.CexPoolEntries)
	}
}
