package eval

import (
	"context"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"facc/internal/accel"
	"facc/internal/analysis"
	"facc/internal/bench"
	"facc/internal/binding"
	"facc/internal/core"
	"facc/internal/gnn"
	"facc/internal/idl"
	"facc/internal/minic"
	"facc/internal/obs"
	"facc/internal/ojclone"
	"facc/internal/synth"
)

// CompileOutcome is one (benchmark, target) pipeline run.
type CompileOutcome struct {
	Bench      *bench.Benchmark
	Target     string
	OK         bool
	FailReason string
	Candidates int
	Elapsed    time.Duration
}

// CompileAll runs FACC over the whole corpus for each target. Compilations
// are independent, so they fan out across a worker pool sized by
// GOMAXPROCS (never unbounded); results come back in deterministic
// (target, benchmark) order. ctx (nil means Background) cancels the run:
// queued jobs are abandoned, in-flight compilations stop at their next
// cancellation poll, and every worker has exited by the time CompileAll
// returns — no goroutine outlives the call. tr (may be nil) collects
// spans and metrics across all compilations — the tracer is safe for
// concurrent use, and each compilation gets its own root span, so Fig15
// timings are exactly the span durations. j (may be nil) collects the
// synthesis provenance journal across the whole corpus; event interleaving
// between compilations follows worker scheduling, but each event names its
// function, so per-function provenance stays coherent. led (may be nil)
// accumulates the synthesis cost ledger — which candidates the interpreter
// work was spent on and whether it was useful, speculative or shared.
func CompileAll(ctx context.Context, targets []string, numTests int, tr *obs.Tracer, j *obs.Journal, led *obs.Ledger) ([]*CompileOutcome, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	suite := bench.Suite()
	type job struct {
		idx    int
		target string
		b      *bench.Benchmark
	}
	var jobs []job
	for _, target := range targets {
		for _, b := range suite {
			jobs = append(jobs, job{idx: len(jobs), target: target, b: b})
		}
	}
	// One oracle cache per benchmark, shared by its compiles across all
	// targets: oracle keys are target-independent, so the user program's
	// reference runs are interpreted once instead of once per target.
	// The cache is concurrency-safe, so it does not constrain the worker
	// pool's schedule.
	caches := map[string]*synth.OracleCache{}
	for _, b := range suite {
		caches[b.Name] = synth.NewOracleCache()
	}
	out := make([]*CompileOutcome, len(jobs))
	errs := make([]error, len(jobs))

	workers := runtime.GOMAXPROCS(0)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	// Two parallelism levels compose here: file-level workers (this pool)
	// and candidate-level workers inside each synthesis (synth.Options.
	// Workers). Splitting the CPU budget between them keeps the total
	// goroutine pressure near GOMAXPROCS instead of workers × GOMAXPROCS.
	synthWorkers := runtime.GOMAXPROCS(0) / workers
	if synthWorkers < 1 {
		synthWorkers = 1
	}
	jobCh := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for jb := range jobCh {
				if ctx.Err() != nil {
					return // drain stops below; abandon queued work
				}
				out[jb.idx], errs[jb.idx] = compileOne(ctx, jb.target, jb.b,
					numTests, synthWorkers, tr, j, led, caches[jb.b.Name])
			}
		}()
	}
feed:
	for _, jb := range jobs {
		select {
		case jobCh <- jb:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobCh)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("eval: corpus compilation cancelled: %w", err)
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func compileOne(ctx context.Context, target string, b *bench.Benchmark, numTests, synthWorkers int, tr *obs.Tracer, j *obs.Journal, led *obs.Ledger, oc *synth.OracleCache) (*CompileOutcome, error) {
	spec, err := accel.SpecByName(target)
	if err != nil {
		return nil, err
	}
	f, err := minic.ParseAndCheck(b.File, b.Source())
	if err != nil {
		return nil, err
	}
	comp, err := core.CompileFile(ctx, f, spec, core.Options{
		Entry:         b.Entry,
		ProfileValues: b.ProfileValues,
		Trace:         tr,
		Journal:       j,
		Ledger:        led,
		Synth:         synth.Options{NumTests: numTests, Workers: synthWorkers, Oracle: oc},
	})
	if err != nil {
		return nil, err
	}
	return &CompileOutcome{
		Bench: b, Target: target,
		OK:         comp.Success() != nil,
		FailReason: comp.FailReason(),
		Candidates: comp.TotalCandidates(),
		Elapsed:    comp.Elapsed,
	}, nil
}

// Table1 prints the feature matrix of the supported corpus.
func Table1(w io.Writer) {
	fmt.Fprintf(w, "Table 1: benchmark feature matrix (18 supported programs)\n")
	fmt.Fprintf(w, "%-3s %-12s %5s %-10s %-22s %-18s %-7s %-4s %-20s %s\n",
		"ID", "Name", "LoC", "Lengths", "Algorithm", "Twiddles", "Complex",
		"Ptr", "Loops", "Optimizations")
	for _, b := range bench.SupportedSuite() {
		ptr := "No"
		if b.PointerArith {
			ptr = "Yes"
		}
		fmt.Fprintf(w, "%-3d %-12s %5d %-10s %-22s %-18s %-7s %-4s %-20s %s\n",
			b.ID, b.Name, b.LinesOfCode(), b.Lengths, b.Algorithm, b.Twiddles,
			b.ComplexRepr, ptr, b.LoopStructure, b.Optimizations)
	}
}

// Fig8 prints the FACC success/failure classification.
func Fig8(w io.Writer, outcomes []*CompileOutcome) {
	fmt.Fprintf(w, "Figure 8: FACC success and failure classification (fraction of 25 programs)\n")
	counts := map[string]int{}
	total := 0
	for _, oc := range outcomes {
		if oc.Target != "ffta" {
			continue
		}
		total++
		if oc.OK {
			counts["supported"]++
		} else {
			counts[oc.FailReason]++
		}
	}
	order := []string{"supported", "interface-incompatibility", "void-pointer", "printf", "nested-memory"}
	for _, k := range order {
		fmt.Fprintf(w, "%-28s %2d/%d  (%.2f)\n", k, counts[k], total,
			float64(counts[k])/float64(total))
	}
}

// Fig9 compares strategies: IDL, the ProGraML classifier, and FACC.
func Fig9(w io.Writer, outcomes []*CompileOutcome, clf *core.Classifier) error {
	fmt.Fprintf(w, "Figure 9: fraction of the 25 FFT programs handled per strategy\n")
	suite := bench.Suite()

	// IDL: the pattern authored from benchmark 0 (paper §8.2).
	b0 := suite[0]
	f0, err := minic.ParseAndCheck(b0.File, b0.Source())
	if err != nil {
		return err
	}
	pattern := idl.Extract(f0, f0.Func(b0.Entry))
	idlCompiled := 0
	for _, b := range suite {
		f, err := minic.ParseAndCheck(b.File, b.Source())
		if err != nil {
			return err
		}
		if idl.Matches(pattern, idl.Extract(f, f.Func(b.Entry))) {
			idlCompiled++
		}
	}

	// ProGraML: classification finds the region (matched) but cannot
	// generate accelerator bindings (compiled = 0).
	matched := 0
	for _, b := range suite {
		f, err := minic.ParseAndCheck(b.File, b.Source())
		if err != nil {
			return err
		}
		for _, name := range clf.CandidateFunctions(f) {
			if name == b.Entry {
				matched++
				break
			}
		}
	}

	faccCompiled := 0
	for _, oc := range outcomes {
		if oc.Target == "ffta" && oc.OK {
			faccCompiled++
		}
	}

	n := float64(len(suite))
	fmt.Fprintf(w, "%-10s compiled=%.2f matched=%.2f unmatched=%.2f\n",
		"IDL", float64(idlCompiled)/n, 0.0, 1-float64(idlCompiled)/n)
	fmt.Fprintf(w, "%-10s compiled=%.2f matched=%.2f unmatched=%.2f\n",
		"ProGraML", 0.0, float64(matched)/n, 1-float64(matched)/n)
	fmt.Fprintf(w, "%-10s compiled=%.2f matched=%.2f unmatched=%.2f\n",
		"FACC", float64(faccCompiled)/n, 0.0, 1-float64(faccCompiled)/n)
	return nil
}

// Fig10 prints per-benchmark speedups on the ADSP board: the ProGraML→DSP
// baseline vs FACC→FFTA.
func Fig10(w io.Writer, prof *Profiler) error {
	fmt.Fprintf(w, "Figure 10: offloading on the ADSP board (vs Cortex-A5 software)\n")
	fmt.Fprintf(w, "%-3s %-12s %6s %12s %12s\n", "ID", "Name", "N", "DSP(x)", "FFTA(x)")
	ffta := accel.NewFFTA()
	var dsp, acc []float64
	for _, b := range bench.SupportedSuite() {
		n := b.PerfSize
		m, err := prof.Measure(b, n)
		if err != nil {
			return err
		}
		d := DSPSpeedup(m)
		a := Speedup(m, ffta)
		dsp = append(dsp, d)
		acc = append(acc, a)
		fmt.Fprintf(w, "%-3d %-12s %6d %12.1f %12.1f\n", b.ID, b.Name, n, d, a)
	}
	fmt.Fprintf(w, "geomean %26.1f %12.1f   (paper: 3.5x and 27x)\n",
		GeoMean(dsp), GeoMean(acc))
	return nil
}

// Fig11Config sizes the cross-validation experiment.
type Fig11Config struct {
	PerClass   int   // instances per class (paper: 20)
	Folds      int   // cross-validation folds (paper: 10)
	TrainSizes []int // x axis: train instances per class
	Seed       int64
	MaxEpochs  int
}

// DefaultFig11 is a reduced-but-faithful configuration; use PaperFig11 for
// the full protocol.
func DefaultFig11() Fig11Config {
	return Fig11Config{PerClass: 12, Folds: 5,
		TrainSizes: []int{1, 2, 4, 6, 8, 10}, Seed: 1, MaxEpochs: 40}
}

// PaperFig11 is the paper's full protocol (slow).
func PaperFig11() Fig11Config {
	return Fig11Config{PerClass: 20, Folds: 10,
		TrainSizes: []int{1, 2, 4, 6, 8, 11, 14, 16}, Seed: 1, MaxEpochs: 100}
}

// Fig11Row is one x-axis point of the cross-validation curves.
type Fig11Row struct {
	TrainPerClass int
	Top1Mean      float64
	Top1Std       float64
	Top3Mean      float64
	Top3Std       float64
	FFTRecallMean float64
	FFTRecallStd  float64
}

// Fig11 trains the classifier across folds and train-set sizes.
func Fig11(w io.Writer, cfg Fig11Config) ([]Fig11Row, error) {
	fmt.Fprintf(w, "Figure 11: classifier cross-validation (%d folds, %d per class)\n",
		cfg.Folds, cfg.PerClass)
	fmt.Fprintf(w, "%-8s %-16s %-16s %-16s\n", "train/cls", "top-1 acc", "top-3 acc", "FFT top-3 recall")
	ds, err := ojclone.Build(cfg.PerClass, cfg.Seed)
	if err != nil {
		return nil, err
	}
	var rows []Fig11Row
	for _, ts := range cfg.TrainSizes {
		folds := ds.KFolds(cfg.Folds, ts, cfg.Seed+int64(ts))
		var t1, t3, rec []float64
		for fi, f := range folds {
			model := gnn.Fit(f.Train, ds.NumClasses(), gnn.TrainConfig{
				MaxEpochs: cfg.MaxEpochs, Seed: cfg.Seed + int64(fi*100+ts),
			})
			t1 = append(t1, gnn.Accuracy(model, f.Test))
			t3 = append(t3, gnn.TopKAccuracy(model, f.Test, 3))
			rec = append(rec, gnn.RecallForClass(model, f.Test, ds.FFTClass, 3))
		}
		row := Fig11Row{
			TrainPerClass: ts,
			Top1Mean:      mean(t1), Top1Std: std(t1),
			Top3Mean: mean(t3), Top3Std: std(t3),
			FFTRecallMean: mean(rec), FFTRecallStd: std(rec),
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "%-8d %.2f±%.2f        %.2f±%.2f        %.2f±%.2f\n",
			ts, row.Top1Mean, row.Top1Std, row.Top3Mean, row.Top3Std,
			row.FFTRecallMean, row.FFTRecallStd)
	}
	return rows, nil
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func std(xs []float64) float64 {
	m := mean(xs)
	s := 0.0
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	if len(xs) < 2 {
		return 0
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Fig12 prints prefix-match decay for the IDL pattern.
func Fig12(w io.Writer) error {
	fmt.Fprintf(w, "Figure 12: IDL pattern-prefix matches vs pattern length\n")
	suite := bench.Suite()
	b0 := suite[0]
	f0, err := minic.ParseAndCheck(b0.File, b0.Source())
	if err != nil {
		return err
	}
	pattern := idl.Extract(f0, f0.Func(b0.Entry))
	var all []idl.Pattern
	for _, b := range suite {
		f, err := minic.ParseAndCheck(b.File, b.Source())
		if err != nil {
			return err
		}
		all = append(all, idl.Extract(f, f.Func(b.Entry)))
	}
	fmt.Fprintf(w, "%-8s %s\n", "length", "programs matching prefix")
	for _, l := range []int{1, 2, 3, 5, 8, 12, 20, 30, 50, 100, len(pattern)} {
		if l > len(pattern) {
			continue
		}
		count := 0
		for _, p := range all {
			if idl.MatchPrefix(pattern[:l], p) == l {
				count++
			}
		}
		fmt.Fprintf(w, "%-8d %d\n", l, count)
	}
	return nil
}

// Fig13 prints per-benchmark speedups on all three targets.
func Fig13(w io.Writer, prof *Profiler) error {
	fmt.Fprintf(w, "Figure 13: relative performance per target (vs each target's host CPU)\n")
	fmt.Fprintf(w, "%-3s %-12s %6s %12s %12s %12s\n", "ID", "Name", "N",
		"FFTA(x)", "PowerQuad(x)", "FFTW(x)")
	specs := accel.Specs()
	series := map[string][]float64{}
	for _, b := range bench.SupportedSuite() {
		n := b.PerfSize
		m, err := prof.Measure(b, n)
		if err != nil {
			return err
		}
		row := []string{}
		for _, spec := range specs {
			if !spec.Supports(n) {
				row = append(row, "-")
				continue
			}
			s := Speedup(m, spec)
			series[spec.Name] = append(series[spec.Name], s)
			row = append(row, fmt.Sprintf("%.1f", s))
		}
		fmt.Fprintf(w, "%-3d %-12s %6d %12s %12s %12s\n", b.ID, b.Name, n,
			row[0], row[1], row[2])
	}
	fmt.Fprintf(w, "geomean %24.1f %12.1f %12.1f   (paper: 27x, 17x, 9x)\n",
		GeoMean(series["ffta"]), GeoMean(series["powerquad"]), GeoMean(series["fftw"]))
	return nil
}

// Fig14 sweeps input sizes for benchmarks 1-7.
func Fig14(w io.Writer, prof *Profiler) error {
	fmt.Fprintf(w, "Figure 14: speedup vs input size, benchmarks 1-7 (geomean per size)\n")
	fmt.Fprintf(w, "%-6s %12s %12s %12s\n", "N", "FFTA(x)", "PowerQuad(x)", "FFTW(x)")
	specs := accel.Specs()
	for _, n := range []int{16, 32, 64, 128, 256, 512, 1024} {
		cells := []string{}
		for _, spec := range specs {
			var xs []float64
			for _, b := range bench.SupportedSuite() {
				if b.ID < 1 || b.ID > 7 {
					continue
				}
				if !Supports(b, n) || !spec.Supports(n) {
					continue
				}
				m, err := prof.Measure(b, n)
				if err != nil {
					return err
				}
				xs = append(xs, Speedup(m, spec))
			}
			if len(xs) == 0 {
				cells = append(cells, "-")
			} else {
				cells = append(cells, fmt.Sprintf("%.2f", GeoMean(xs)))
			}
		}
		fmt.Fprintf(w, "%-6d %12s %12s %12s\n", n, cells[0], cells[1], cells[2])
	}
	return nil
}

// Fig15 prints the CDF of compilation times per target.
func Fig15(w io.Writer, outcomes []*CompileOutcome) {
	fmt.Fprintf(w, "Figure 15: CDF of FACC compile time per benchmark (one distribution per target)\n")
	byTarget := map[string][]float64{}
	for _, oc := range outcomes {
		byTarget[oc.Target] = append(byTarget[oc.Target], oc.Elapsed.Seconds())
	}
	for _, target := range []string{"ffta", "powerquad", "fftw"} {
		times := byTarget[target]
		sort.Float64s(times)
		fmt.Fprintf(w, "%-10s", target)
		for _, q := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
			idx := int(q*float64(len(times))) - 1
			if idx < 0 {
				idx = 0
			}
			fmt.Fprintf(w, "  p%.0f=%.3fs", q*100, times[idx])
		}
		fmt.Fprintf(w, "\n")
	}
}

// Fig16 prints the CDF of binding-candidate counts per target.
func Fig16(w io.Writer, outcomes []*CompileOutcome) {
	fmt.Fprintf(w, "Figure 16: CDF of binding candidates per benchmark (one distribution per target)\n")
	byTarget := map[string][]int{}
	for _, oc := range outcomes {
		byTarget[oc.Target] = append(byTarget[oc.Target], oc.Candidates)
	}
	for _, target := range []string{"ffta", "powerquad", "fftw"} {
		counts := byTarget[target]
		sort.Ints(counts)
		fmt.Fprintf(w, "%-10s", target)
		for _, q := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
			idx := int(q*float64(len(counts))) - 1
			if idx < 0 {
				idx = 0
			}
			fmt.Fprintf(w, "  p%.0f=%d", q*100, counts[idx])
		}
		fmt.Fprintf(w, "\n")
	}
}

// Ablation prints the DESIGN.md ablation results: binding-search size with
// and without heuristics, and fuzzing's candidate elimination as the IO
// budget grows.
func Ablation(w io.Writer) error {
	fmt.Fprintf(w, "Ablations (DESIGN.md key design decisions)\n")
	b, err := bench.ByName("bigmixed")
	if err != nil {
		return err
	}
	f, err := minic.ParseAndCheck(b.File, b.Source())
	if err != nil {
		return err
	}
	fn := f.Func(b.Entry)
	profile := core.BuildProfile(b.ProfileValues)
	fi := analysis.AnalyzeFunc(f, fn)

	fmt.Fprintf(w, "%-12s %-28s %s\n", "target", "with heuristics", "without (range+single-read off)")
	for _, spec := range accel.Specs() {
		with := len(binding.Enumerate(fi, spec, profile, binding.Options{}))
		without := len(binding.Enumerate(fi, spec, profile, binding.Options{
			DisableRangeHeuristic: true, DisableSingleRead: true}))
		fmt.Fprintf(w, "%-12s %-28d %d\n", spec.Name, with, without)
	}

	fmt.Fprintf(w, "\nIO-test budget vs surviving candidates (%s on powerquad):\n", b.Name)
	for _, tests := range []int{1, 2, 4, 10} {
		res, err := synth.Synthesize(context.Background(), f, fn, accel.NewPowerQuad(), profile,
			synth.Options{NumTests: tests, ExhaustAll: true})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %2d tests: %d survivors of %d candidates\n",
			tests, res.Survivors, res.Candidates)
	}
	return nil
}
