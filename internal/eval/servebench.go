package eval

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"facc"
	"facc/internal/bench"
	"facc/internal/obs"
	"facc/internal/server"
	"facc/internal/store"
)

// ServeBenchConfig shapes the serving benchmark: a deliberately
// undersized admission queue driven by more concurrent clients than the
// server has workers, so load shedding, deduplication and the adapter
// cache all fire.
type ServeBenchConfig struct {
	Requests    int // total client requests (default 48)
	Concurrency int // concurrent clients (default 12)
	QueueDepth  int // server admission queue (default 4)
	Workers     int // server compile workers (default 2)
	NumTests    int // IO examples per candidate (default 4)
	Variants    int // distinct request digests in the mix (default 4)
}

func (c *ServeBenchConfig) defaults() {
	if c.Requests <= 0 {
		c.Requests = 48
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 12
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.NumTests <= 0 {
		c.NumTests = 4
	}
	if c.Variants <= 0 {
		c.Variants = 4
	}
}

// ServeBenchReport is the BENCH_serve.json document: client-observed
// latency quantiles and the server's robustness counters under
// saturating load.
type ServeBenchReport struct {
	Requests    int `json:"requests"`
	Concurrency int `json:"concurrency"`
	QueueDepth  int `json:"queue_depth"`
	Workers     int `json:"workers"`
	Variants    int `json:"variants"`

	Completed int   `json:"completed"`
	Failed    int   `json:"failed"`
	Shed429   int   `json:"shed_429"`
	Retries   int   `json:"client_retries"`
	Deduped   int64 `json:"deduped"`
	CacheHits int64 `json:"cache_hits"`
	Compiles  int64 `json:"jobs_completed"`

	WallSeconds float64 `json:"wall_seconds"`
	Throughput  float64 `json:"requests_per_sec"`

	LatencyMsP50  float64 `json:"latency_ms_p50"`
	LatencyMsP90  float64 `json:"latency_ms_p90"`
	LatencyMsP99  float64 `json:"latency_ms_p99"`
	LatencyMsMax  float64 `json:"latency_ms_max"`
	LatencyMsMean float64 `json:"latency_ms_mean"`

	// AdaptersConsistent verifies the memoization contract under load:
	// every response for the same request digest carried byte-identical
	// adapter C, whether it was compiled, deduplicated or cached.
	AdaptersConsistent bool `json:"adapters_consistent"`

	// Fleet is the multi-replica chaos bench block (FleetBench), attached
	// by faccbench when the fleet run is enabled. Absent in older
	// baselines; the bench gate skips fleet checks until a baseline
	// carries one.
	Fleet *FleetBenchReport `json:"fleet,omitempty"`
}

// ServeBench stands up a real faccd-style server (full pipeline, real
// store) on a loopback listener and saturates it: Concurrency clients
// replay Requests compile requests spread over Variants distinct
// digests, retrying shed (429) responses with a short backoff. The
// report captures end-to-end latency quantiles, shed/dedup/cache counts
// and the byte-identical-adapter consistency verdict.
func ServeBench(ctx context.Context, cfg ServeBenchConfig) (*ServeBenchReport, error) {
	cfg.defaults()
	if ctx == nil {
		ctx = context.Background()
	}
	suite := bench.SupportedSuite()
	if len(suite) == 0 {
		return nil, fmt.Errorf("servebench: empty benchmark suite")
	}
	b := suite[0]

	dir, err := os.MkdirTemp("", "facc-servebench-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	tr := obs.New()
	st, err := store.Open(dir, tr.Metrics())
	if err != nil {
		return nil, err
	}
	srv := server.New(server.Config{
		QueueDepth: cfg.QueueDepth,
		Workers:    cfg.Workers,
		Store:      st,
		Tracer:     tr,
		Options:    facc.Options{Harden: true},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()
	defer func() {
		dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Drain(dctx)
		hs.Close()
		st.Close()
	}()

	// Variants differ only in NumTests, which changes the digest while
	// keeping every request synthesizable.
	makeReq := func(i int) facc.CompileRequest {
		return facc.CompileRequest{
			Name:          b.File,
			Source:        b.Source(),
			Target:        "ffta",
			Entry:         b.Entry,
			ProfileValues: b.ProfileValues,
			NumTests:      cfg.NumTests + i%cfg.Variants,
		}
	}

	rep := &ServeBenchReport{
		Requests:    cfg.Requests,
		Concurrency: cfg.Concurrency,
		QueueDepth:  cfg.QueueDepth,
		Workers:     cfg.Workers,
		Variants:    cfg.Variants,
	}
	var mu sync.Mutex
	var latencies []float64
	adapters := map[string]string{} // digest → adapter bytes seen
	consistent := true

	type response struct {
		State    string `json:"state"`
		Key      string `json:"key"`
		AdapterC string `json:"adapter_c"`
	}
	client := &http.Client{}
	work := make(chan int)
	var wg sync.WaitGroup
	for c := 0; c < cfg.Concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				body, _ := json.Marshal(makeReq(i))
				start := time.Now()
				var resp response
				var status int
				// Retry shed responses like a well-behaved client; the
				// latency of a shed-then-retried request includes the
				// backoff — that is the user-visible cost of overload.
				for attempt := 0; attempt < 200; attempt++ {
					req, err := http.NewRequestWithContext(ctx, http.MethodPost,
						base+"/compile?wait=1", bytes.NewReader(body))
					if err != nil {
						status = 0
						break
					}
					req.Header.Set("Content-Type", "application/json")
					res, err := client.Do(req)
					if err != nil {
						status = 0
						break
					}
					data, _ := io.ReadAll(res.Body)
					res.Body.Close()
					status = res.StatusCode
					if status == http.StatusTooManyRequests {
						mu.Lock()
						rep.Shed429++
						rep.Retries++
						mu.Unlock()
						select {
						case <-ctx.Done():
						case <-time.After(20 * time.Millisecond):
							continue
						}
						break
					}
					json.Unmarshal(data, &resp)
					break
				}
				elapsed := float64(time.Since(start)) / float64(time.Millisecond)
				mu.Lock()
				if status == http.StatusOK && resp.State == "done" {
					rep.Completed++
					latencies = append(latencies, elapsed)
					if prev, ok := adapters[resp.Key]; ok {
						if prev != resp.AdapterC {
							consistent = false
						}
					} else {
						adapters[resp.Key] = resp.AdapterC
					}
				} else {
					rep.Failed++
				}
				mu.Unlock()
			}
		}()
	}
	start := time.Now()
	for i := 0; i < cfg.Requests; i++ {
		select {
		case work <- i:
		case <-ctx.Done():
			close(work)
			wg.Wait()
			return nil, ctx.Err()
		}
	}
	close(work)
	wg.Wait()
	rep.WallSeconds = time.Since(start).Seconds()
	if rep.WallSeconds > 0 {
		rep.Throughput = float64(rep.Completed) / rep.WallSeconds
	}
	rep.AdaptersConsistent = consistent

	c := tr.Metrics().Counters()
	rep.Deduped = c["serve.jobs_deduped"]
	rep.CacheHits = c["serve.cache_hits"]
	rep.Compiles = c["serve.jobs_completed"]

	sort.Float64s(latencies)
	q := func(p float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		idx := int(math.Ceil(p*float64(len(latencies)))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(latencies) {
			idx = len(latencies) - 1
		}
		return latencies[idx]
	}
	rep.LatencyMsP50 = q(0.50)
	rep.LatencyMsP90 = q(0.90)
	rep.LatencyMsP99 = q(0.99)
	rep.LatencyMsMax = q(1)
	var sum float64
	for _, l := range latencies {
		sum += l
	}
	if len(latencies) > 0 {
		rep.LatencyMsMean = sum / float64(len(latencies))
	}
	return rep, nil
}

// WriteJSON emits the report as indented JSON (the BENCH_serve.json
// artifact format).
func (r *ServeBenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText prints the human-readable summary.
func (r *ServeBenchReport) WriteText(w io.Writer) {
	fmt.Fprintf(w, "Serving benchmark: %d requests x %d clients over %d digests, queue=%d workers=%d\n",
		r.Requests, r.Concurrency, r.Variants, r.QueueDepth, r.Workers)
	fmt.Fprintf(w, "completed %d, failed %d, shed (429) %d, deduped %d, cache hits %d, compiles %d\n",
		r.Completed, r.Failed, r.Shed429, r.Deduped, r.CacheHits, r.Compiles)
	fmt.Fprintf(w, "wall %.2fs (%.1f req/s)  latency ms: p50=%.1f p90=%.1f p99=%.1f max=%.1f mean=%.1f\n",
		r.WallSeconds, r.Throughput, r.LatencyMsP50, r.LatencyMsP90,
		r.LatencyMsP99, r.LatencyMsMax, r.LatencyMsMean)
	if r.AdaptersConsistent {
		fmt.Fprintf(w, "adapters byte-identical across compiled/deduped/cached responses\n")
	} else {
		fmt.Fprintf(w, "WARNING: adapter bytes diverged for the same request digest\n")
	}
}
