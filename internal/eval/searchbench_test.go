package eval

import (
	"testing"

	"facc/internal/obs"
)

// TestSearchBenchMultiFamilyPerTarget is the acceptance criterion for
// the search observatory: on the bench corpus, every target must have
// at least one IO case that killed candidates from more than one
// binding family — the discriminating inputs the counterexample pool
// exists to persist.
func TestSearchBenchMultiFamilyPerTarget(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus compile in -short mode")
	}
	targets := []string{"ffta", "powerquad", "fftw"}
	kills := obs.NewKillTable()
	if err := SearchBench(nil, targets, 3, kills, nil); err != nil {
		t.Fatal(err)
	}
	sum := kills.Summary()
	if sum == nil {
		t.Fatal("corpus compile recorded no search events")
	}
	perTarget := map[string]obs.TargetSearch{}
	for _, ts := range sum.PerTarget {
		perTarget[ts.Target] = ts
	}
	for _, target := range targets {
		ts, ok := perTarget[target]
		if !ok {
			t.Errorf("%s: no funnel recorded", target)
			continue
		}
		if ts.MultiFamilyCases < 1 {
			t.Errorf("%s: %d multi-family discriminating cases, want >= 1",
				target, ts.MultiFamilyCases)
		}
		if ts.Dispatched == 0 || ts.Winners == 0 {
			t.Errorf("%s: funnel = %+v, want dispatched and winners > 0", target, ts)
		}
	}
}
