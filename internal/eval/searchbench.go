package eval

// The search benchmark: one sequential (Workers=1, fixed seed) compile
// of the supported corpus with the kill table attached, so the
// discriminating-input ranking and the funnel are reproducible. The
// resulting SearchSummary is what `faccbench -experiment searchbench`
// prints and merges into BENCH_synth.json's "search" section.

import (
	"context"

	"facc/internal/accel"
	"facc/internal/bench"
	"facc/internal/core"
	"facc/internal/minic"
	"facc/internal/obs"
	"facc/internal/synth"
)

// SearchBench compiles the supported corpus once per target at Workers=1
// into kills, which collects kill attribution and funnel counters. It
// fuzzes exhaustively (every binding candidate, not just to the first
// winner): on flexible APIs like FFTW the first candidate routinely
// survives, so first-winner search records no kills at all and the
// discriminating-input ranking would be empty. The caller owns the
// table: render it with WriteSearchReport or summarize it for
// BENCH_synth.json. pool, when non-nil, rides along read-write: its
// ranked counterexamples are replayed first and every kill is recorded
// into it live, so a -cex-pool file compounds across runs without a
// separate absorb step.
func SearchBench(ctx context.Context, targets []string, numTests int, kills *obs.KillTable, pool *obs.CexPool) error {
	if ctx == nil {
		ctx = context.Background()
	}
	for _, target := range targets {
		spec, err := accel.SpecByName(target)
		if err != nil {
			return err
		}
		for _, b := range bench.SupportedSuite() {
			f, err := minic.ParseAndCheck(b.File, b.Source())
			if err != nil {
				return err
			}
			if _, err := core.CompileFile(ctx, f, spec, core.Options{
				Entry:         b.Entry,
				ProfileValues: b.ProfileValues,
				Kills:         kills,
				Synth: synth.Options{NumTests: numTests, Workers: 1,
					ExhaustAll: true, Cex: pool},
			}); err != nil {
				return err
			}
		}
	}
	return nil
}
