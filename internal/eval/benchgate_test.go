package eval

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeArtifact(t *testing.T, dir, name string, v any) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBenchGate(t *testing.T) {
	dir := t.TempDir()
	base := &SynthBenchReport{Runs: []SynthBenchRun{
		{Workers: 1, WallSeconds: 10, WasteRatio: 0},
		{Workers: 4, WallSeconds: 4, WasteRatio: 0.40},
	}}
	baseServe := &ServeBenchReport{WallSeconds: 5, LatencyMsP99: 200}
	basePath := writeArtifact(t, dir, "base_synth.json", base)
	baseServePath := writeArtifact(t, dir, "base_serve.json", baseServe)

	// Within tolerance: slightly slower, slightly wastier — passes.
	okFresh := &SynthBenchReport{Runs: []SynthBenchRun{
		{Workers: 1, WallSeconds: 11, WasteRatio: 0.05},
		{Workers: 4, WallSeconds: 4.5, WasteRatio: 0.45},
	}}
	okServe := &ServeBenchReport{WallSeconds: 5.5, LatencyMsP99: 220}
	rep, err := BenchGate(GateConfig{
		BaselineSynth: basePath,
		FreshSynth:    writeArtifact(t, dir, "ok_synth.json", okFresh),
		BaselineServe: baseServePath,
		FreshServe:    writeArtifact(t, dir, "ok_serve.json", okServe),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("within-tolerance run failed the gate: %+v", rep.Checks)
	}
	if len(rep.Checks) != 6 {
		t.Errorf("checks = %d, want 6 (2 runs x 2 metrics + 2 serve)", len(rep.Checks))
	}

	// A 2x wall-time regression fails, and the report names the check.
	badFresh := &SynthBenchReport{Runs: []SynthBenchRun{
		{Workers: 1, WallSeconds: 20, WasteRatio: 0},
		{Workers: 4, WallSeconds: 4, WasteRatio: 0.40},
	}}
	rep, err = BenchGate(GateConfig{
		BaselineSynth: basePath,
		FreshSynth:    writeArtifact(t, dir, "bad_synth.json", badFresh),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() || rep.Failures != 1 {
		t.Fatalf("2x regression passed the gate: %+v", rep.Checks)
	}
	var sb strings.Builder
	rep.WriteText(&sb)
	if !strings.Contains(sb.String(), "FAIL synth.wall_seconds[workers=1]") {
		t.Errorf("report does not name the regressed check:\n%s", sb.String())
	}

	// A fresh run with different worker counts (different machine) only
	// compares the counts both artifacts share.
	otherShape := &SynthBenchReport{Runs: []SynthBenchRun{
		{Workers: 1, WallSeconds: 10, WasteRatio: 0},
		{Workers: 16, WallSeconds: 2, WasteRatio: 0.6},
	}}
	rep, err = BenchGate(GateConfig{
		BaselineSynth: basePath,
		FreshSynth:    writeArtifact(t, dir, "shape_synth.json", otherShape),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || len(rep.Checks) != 2 {
		t.Fatalf("machine-shape mismatch handled wrong: %+v", rep.Checks)
	}

	// Nothing to compare is an error, not a silent pass.
	if _, err := BenchGate(GateConfig{}); err == nil {
		t.Error("empty gate config did not error")
	}
}
