package eval

// The fleet chaos saturation bench: several in-process faccd replicas
// behind a fault-injecting transport, driven to saturation while one
// replica is killed mid-run and another is put behind a lossy, slow
// link. It is the executable form of the fleet's robustness contract:
//
//   - no acknowledged job is dropped — a client that got a final answer
//     got a real one; everything aborted mid-flight is retried until it
//     completes on a survivor;
//   - adapters are byte-identical to a single-node baseline, whatever
//     path (compile, dedup, cache probe, failover, degraded local) a
//     response took;
//   - the ring rebalances within the probe budget after a kill;
//   - shedding stays bounded as offered load rises (the shed curve).
//
// The report rides inside BENCH_serve.json as the "fleet" block and is
// gated by BenchGate alongside the single-node serve numbers.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"facc"
	"facc/internal/bench"
	"facc/internal/fleet"
	"facc/internal/obs"
	"facc/internal/server"
	"facc/internal/store"
)

// FleetBenchConfig shapes the chaos run. Zero values get defaults sized
// so the full-pipeline run stays in CI territory.
type FleetBenchConfig struct {
	Replicas    int // fleet size (default 3)
	Requests    int // main-phase client requests (default 36)
	Concurrency int // concurrent clients (default 9)
	QueueDepth  int // per-replica admission queue (default 4)
	Workers     int // per-replica compile workers (default 2)
	NumTests    int // IO examples per candidate (default 4)
	Variants    int // distinct digests in the main mix (default 4)

	ProbeInterval    time.Duration // health-probe period (default 40ms)
	FailureThreshold int           // consecutive failures to eject (default 2)
	LossRate         float64       // lossy-partition drop rate (default 0.3)
	Seed             int64         // fault-transport seed (default 1)

	// CurveLevels are the concurrency steps of the shed-rate-vs-offered-
	// load sweep run after the chaos phase (default 2,4,8). Each level
	// offers 2×level requests over level distinct fresh digests.
	CurveLevels []int

	// Compile overrides the real pipeline (tests). The same function
	// drives the single-node baseline and every replica, so adapters are
	// comparable by construction only if it is deterministic — exactly
	// the property the bench verifies for the real pipeline.
	Compile server.CompileFunc
}

func (c *FleetBenchConfig) defaults() {
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.Requests <= 0 {
		c.Requests = 36
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 9
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.NumTests <= 0 {
		c.NumTests = 4
	}
	if c.Variants <= 0 {
		c.Variants = 4
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 40 * time.Millisecond
	}
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 2
	}
	if c.LossRate <= 0 {
		c.LossRate = 0.3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if len(c.CurveLevels) == 0 {
		c.CurveLevels = []int{2, 4, 8}
	}
}

// FleetLoadPoint is one step of the shed-rate-vs-offered-load curve.
type FleetLoadPoint struct {
	Concurrency  int     `json:"concurrency"`
	Offered      int     `json:"offered"`
	Completed    int     `json:"completed"`
	Shed429      int     `json:"shed_429"`
	ShedRate     float64 `json:"shed_rate"`
	LatencyMsP99 float64 `json:"latency_ms_p99"`
}

// FleetBenchReport is the "fleet" block of BENCH_serve.json.
type FleetBenchReport struct {
	Replicas    int `json:"replicas"`
	Requests    int `json:"requests"`
	Concurrency int `json:"concurrency"`
	QueueDepth  int `json:"queue_depth"`
	Workers     int `json:"workers"`
	Variants    int `json:"variants"`

	Completed    int `json:"completed"`
	Failed       int `json:"failed"`
	Shed429      int `json:"shed_429"`
	Retries      int `json:"client_retries"`
	AckedDropped int `json:"acked_dropped"`

	// Chaos timeline.
	KilledReplica      string  `json:"killed_replica"`
	KillAtRequest      int     `json:"kill_at_request"`
	RebalanceMs        float64 `json:"rebalance_ms"`
	RebalanceBudgetMs  float64 `json:"rebalance_budget_ms"`
	PartitionedReplica string  `json:"partitioned_replica"`
	LossRate           float64 `json:"loss_rate"`

	// Fleet-layer counters summed across replicas.
	Forwarded      int64 `json:"forwarded"`
	Failovers      int64 `json:"failovers"`
	DegradedLocal  int64 `json:"degraded_local"`
	CacheProbeHits int64 `json:"cache_probe_hits"`
	Hedges         int64 `json:"hedges"`
	RateLimited    int64 `json:"ratelimited"`

	WallSeconds float64 `json:"wall_seconds"`
	Throughput  float64 `json:"requests_per_sec"`

	LatencyMsP50 float64 `json:"latency_ms_p50"`
	LatencyMsP90 float64 `json:"latency_ms_p90"`
	LatencyMsP99 float64 `json:"latency_ms_p99"`
	LatencyMsMax float64 `json:"latency_ms_max"`

	// AdaptersConsistent is true when every completed response carried
	// adapter bytes identical to the single-node baseline for its digest
	// — across kill, partition, failover and degraded-local paths.
	AdaptersConsistent bool `json:"adapters_consistent"`

	ShedCurve []FleetLoadPoint `json:"shed_curve"`
}

// benchReplica is one in-process fleet member.
type benchReplica struct {
	id     string
	url    string
	host   string
	tracer *obs.Tracer
	st     *store.Store
	srv    *server.Server
	node   *fleet.Node
	ln     net.Listener
	hs     *http.Server
	dead   bool
}

// FleetBench runs the chaos saturation harness and returns the report.
func FleetBench(ctx context.Context, cfg FleetBenchConfig) (*FleetBenchReport, error) {
	cfg.defaults()
	if ctx == nil {
		ctx = context.Background()
	}
	suite := bench.SupportedSuite()
	if len(suite) == 0 {
		return nil, fmt.Errorf("fleetbench: empty benchmark suite")
	}
	b := suite[0]
	makeReq := func(numTests int) facc.CompileRequest {
		return facc.CompileRequest{
			Name:          b.File,
			Source:        b.Source(),
			Target:        "ffta",
			Entry:         b.Entry,
			ProfileValues: b.ProfileValues,
			NumTests:      numTests,
		}
	}

	// ---- Single-node baseline: the adapter bytes every fleet response
	// must reproduce, per digest. Run before any chaos exists.
	baseline := map[string]string{}
	{
		dir, err := os.MkdirTemp("", "facc-fleetbench-base-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		btr := obs.New()
		bst, err := store.Open(dir, btr.Metrics())
		if err != nil {
			return nil, err
		}
		bsrv := server.New(server.Config{
			Workers: cfg.Workers,
			Store:   bst,
			Tracer:  btr,
			Options: facc.Options{Harden: true},
			Compile: cfg.Compile,
		})
		bln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		bhs := &http.Server{Handler: bsrv.Handler()}
		go bhs.Serve(bln)
		burl := "http://" + bln.Addr().String()
		for i := 0; i < cfg.Variants; i++ {
			key, adapter, err := compileOnce(ctx, burl, makeReq(cfg.NumTests+i))
			if err != nil {
				bhs.Close()
				bst.Close()
				return nil, fmt.Errorf("fleetbench: baseline compile %d: %w", i, err)
			}
			baseline[key] = adapter
		}
		dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		bsrv.Drain(dctx)
		cancel()
		bhs.Close()
		bst.Close()
	}

	// ---- Stand up the fleet: listeners first (the peer table needs
	// every address), then replicas sharing one fault transport.
	tr := fleet.NewFaultTransport(nil, cfg.Seed)
	replicas := make([]*benchReplica, cfg.Replicas)
	peers := map[string]string{}
	for i := range replicas {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		id := fmt.Sprintf("r%d", i)
		r := &benchReplica{id: id, ln: ln, host: ln.Addr().String(), url: "http://" + ln.Addr().String()}
		replicas[i] = r
		peers[id] = r.url
	}
	for _, r := range replicas {
		dir, err := os.MkdirTemp("", "facc-fleetbench-"+r.id+"-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		r.tracer = obs.New()
		r.st, err = store.Open(dir, r.tracer.Metrics())
		if err != nil {
			return nil, err
		}
		r.srv = server.New(server.Config{
			QueueDepth: cfg.QueueDepth,
			Workers:    cfg.Workers,
			Store:      r.st,
			Tracer:     r.tracer,
			Options:    facc.Options{Harden: true},
			Compile:    cfg.Compile,
		})
		r.node = fleet.New(fleet.Config{
			Self:             r.id,
			Peers:            peers,
			Local:            r.srv,
			Tracer:           r.tracer,
			Transport:        tr,
			ProbeInterval:    cfg.ProbeInterval,
			FailureThreshold: cfg.FailureThreshold,
			Seed:             cfg.Seed,
		})
		r.hs = &http.Server{Handler: r.node.Handler()}
		go r.hs.Serve(r.ln)
	}
	defer func() {
		for _, r := range replicas {
			r.node.Close()
			r.hs.Close()
			dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			r.srv.Drain(dctx)
			cancel()
			r.st.Close()
		}
	}()

	rep := &FleetBenchReport{
		Replicas:          cfg.Replicas,
		Requests:          cfg.Requests,
		Concurrency:       cfg.Concurrency,
		QueueDepth:        cfg.QueueDepth,
		Workers:           cfg.Workers,
		Variants:          cfg.Variants,
		LossRate:          cfg.LossRate,
		RebalanceBudgetMs: float64(cfg.ProbeInterval*time.Duration(cfg.FailureThreshold+2)) / float64(time.Millisecond),
	}

	// Chaos targets: kill the replica owning the first variant's digest
	// (so ownership provably moves), partition the next surviving one.
	killAt := cfg.Requests / 3
	partitionAt := cfg.Requests / 2
	firstReq := makeReq(cfg.NumTests)
	firstKey := firstReq.Digest()
	killID := replicas[0].node.Ring().Owner(firstKey)
	var killed, partitioned *benchReplica
	for _, r := range replicas {
		if r.id == killID {
			killed = r
		}
	}
	for _, r := range replicas {
		if r != killed {
			partitioned = r
			break
		}
	}
	rep.KilledReplica = killed.id
	rep.KillAtRequest = killAt
	rep.PartitionedReplica = partitioned.id

	var rebalanceMs float64
	var rebalanceWG sync.WaitGroup
	kill := func() {
		killed.dead = true
		killed.node.Close()
		killed.hs.Close() // closes the listener and every active conn: kill -9 as seen from outside
		tr.SetRule(killed.host, fleet.LinkRule{Down: true})
		start := time.Now()
		rebalanceWG.Add(1)
		go func() {
			defer rebalanceWG.Done()
			deadline := time.Now().Add(10 * time.Second)
			for time.Now().Before(deadline) {
				all := true
				for _, r := range replicas {
					if r.dead {
						continue
					}
					if r.node.Ring().IsHealthy(killed.id) {
						all = false
						break
					}
				}
				if all {
					rebalanceMs = float64(time.Since(start)) / float64(time.Millisecond)
					return
				}
				time.Sleep(time.Millisecond)
			}
			// Never converged: report the full wait so the budget check
			// fails loudly instead of a 0 sliding under it.
			rebalanceMs = float64(time.Since(start)) / float64(time.Millisecond)
		}()
	}
	partition := func() {
		tr.SetRule(partitioned.host, fleet.LinkRule{
			LossRate:    cfg.LossRate,
			Latency:     5 * time.Millisecond,
			LatencyRate: 0.5,
		})
	}

	// ---- Main phase: saturate the fleet while the chaos fires.
	var mu sync.Mutex
	var latencies []float64
	consistent := true
	urls := make([]string, 0, len(replicas))
	for _, r := range replicas {
		urls = append(urls, r.url)
	}

	work := make(chan int)
	var wg sync.WaitGroup
	for c := 0; c < cfg.Concurrency; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{}
			for i := range work {
				req := makeReq(cfg.NumTests + i%cfg.Variants)
				st := clientDrive(ctx, client, urls, (c+i)%len(urls), req, 400)
				mu.Lock()
				rep.Shed429 += st.shed
				rep.Retries += st.retries
				if st.done {
					rep.Completed++
					latencies = append(latencies, st.latencyMs)
					if st.adapter == "" {
						rep.AckedDropped++
					} else if base, ok := baseline[st.key]; ok && base != st.adapter {
						consistent = false
					}
				} else {
					rep.Failed++
				}
				mu.Unlock()
			}
		}()
	}
	start := time.Now()
	for i := 0; i < cfg.Requests; i++ {
		if i == killAt {
			kill()
		}
		if i == partitionAt {
			partition()
		}
		select {
		case work <- i:
		case <-ctx.Done():
			close(work)
			wg.Wait()
			return nil, ctx.Err()
		}
	}
	close(work)
	wg.Wait()
	rep.WallSeconds = time.Since(start).Seconds()
	if rep.WallSeconds > 0 {
		rep.Throughput = float64(rep.Completed) / rep.WallSeconds
	}
	rebalanceWG.Wait()
	rep.RebalanceMs = rebalanceMs
	rep.AdaptersConsistent = consistent

	sort.Float64s(latencies)
	rep.LatencyMsP50 = quantile(latencies, 0.50)
	rep.LatencyMsP90 = quantile(latencies, 0.90)
	rep.LatencyMsP99 = quantile(latencies, 0.99)
	rep.LatencyMsMax = quantile(latencies, 1)

	// ---- Shed curve: heal the lossy link (overload, not loss, is the
	// variable here) and sweep offered load over the surviving replicas.
	// Each level compiles fresh digests so the admission queue — not the
	// adapter cache — absorbs the load.
	tr.SetRule(partitioned.host, fleet.LinkRule{})
	var survivors []string
	for _, r := range replicas {
		if !r.dead {
			survivors = append(survivors, r.url)
		}
	}
	curveTests := cfg.NumTests + cfg.Variants
	for li, level := range cfg.CurveLevels {
		point := FleetLoadPoint{Concurrency: level, Offered: 2 * level}
		var pmu sync.Mutex
		var plat []float64
		var pwg sync.WaitGroup
		pwork := make(chan int)
		for c := 0; c < level; c++ {
			c := c
			pwg.Add(1)
			go func() {
				defer pwg.Done()
				client := &http.Client{}
				for i := range pwork {
					// One fresh digest per client per level: `level`
					// concurrent distinct jobs against a depth-QueueDepth
					// queue, so shedding rises with the level.
					req := makeReq(curveTests + li*100 + i%level)
					st := clientDrive(ctx, client, survivors, c%len(survivors), req, 400)
					pmu.Lock()
					point.Shed429 += st.shed
					if st.done {
						point.Completed++
						plat = append(plat, st.latencyMs)
					}
					pmu.Unlock()
				}
			}()
		}
		for i := 0; i < point.Offered; i++ {
			select {
			case pwork <- i:
			case <-ctx.Done():
				close(pwork)
				pwg.Wait()
				return nil, ctx.Err()
			}
		}
		close(pwork)
		pwg.Wait()
		if tot := point.Shed429 + point.Completed; tot > 0 {
			point.ShedRate = float64(point.Shed429) / float64(tot)
		}
		sort.Float64s(plat)
		point.LatencyMsP99 = quantile(plat, 0.99)
		rep.ShedCurve = append(rep.ShedCurve, point)
	}

	// Fleet-layer counters summed across every replica (including the
	// killed one's pre-death activity).
	for _, r := range replicas {
		c := r.tracer.Metrics().Counters()
		rep.Forwarded += c["fleet.forwarded"]
		rep.Failovers += c["fleet.forward_failovers"]
		rep.DegradedLocal += c["fleet.degraded_local"]
		rep.CacheProbeHits += c["fleet.cache_probe_hits"]
		rep.Hedges += c["fleet.hedges"]
		rep.RateLimited += c["fleet.ratelimited"]
	}
	return rep, nil
}

// driveResult is one client request's outcome after retries.
type driveResult struct {
	done      bool
	key       string
	adapter   string
	latencyMs float64
	shed      int
	retries   int
}

// clientDrive pushes one compile request to completion: rotate across
// replicas on transport errors and 503s, back off briefly on 429s, stop
// on a final answer or when attempts run out. This is the "well-behaved
// client" the fleet's no-dropped-acks contract is stated against: an ack
// is a final job state, and anything that dies before one is retried.
func clientDrive(ctx context.Context, client *http.Client, urls []string, startAt int, req facc.CompileRequest, attempts int) driveResult {
	body, _ := json.Marshal(req)
	var out driveResult
	cur := startAt
	start := time.Now()
	for attempt := 0; attempt < attempts; attempt++ {
		if ctx.Err() != nil {
			break
		}
		url := urls[cur%len(urls)]
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
			url+"/compile?wait=1", bytes.NewReader(body))
		if err != nil {
			break
		}
		hreq.Header.Set("Content-Type", "application/json")
		res, err := client.Do(hreq)
		if err != nil {
			// Replica unreachable (killed, or conn torn down mid-flight):
			// this is NOT an ack — move to the next replica.
			cur++
			out.retries++
			sleepCtx(ctx, 5*time.Millisecond)
			continue
		}
		data, _ := io.ReadAll(res.Body)
		res.Body.Close()
		switch res.StatusCode {
		case http.StatusTooManyRequests:
			out.shed++
			out.retries++
			wait := 20 * time.Millisecond
			if s, err := strconv.Atoi(res.Header.Get("Retry-After")); err == nil && s > 0 {
				// Honour the hint but cap it: the bench measures shedding,
				// not how long a polite client is willing to wait.
				if hinted := time.Duration(s) * time.Second; hinted < wait {
					wait = hinted
				}
			}
			sleepCtx(ctx, wait)
			continue
		case http.StatusServiceUnavailable, http.StatusLoopDetected:
			cur++
			out.retries++
			sleepCtx(ctx, 5*time.Millisecond)
			continue
		case http.StatusOK:
			var v struct {
				State    string `json:"state"`
				Key      string `json:"key"`
				AdapterC string `json:"adapter_c"`
			}
			json.Unmarshal(data, &v)
			if v.State == "done" {
				out.done = true
				out.key = v.Key
				out.adapter = v.AdapterC
				out.latencyMs = float64(time.Since(start)) / float64(time.Millisecond)
				return out
			}
			// A final non-done state (failed) is an ack too; report it
			// upward rather than retrying into a double compile.
			return out
		default:
			return out
		}
	}
	return out
}

func sleepCtx(ctx context.Context, d time.Duration) {
	select {
	case <-ctx.Done():
	case <-time.After(d):
	}
}

// compileOnce POSTs one request with wait=1 and returns (digest, adapter).
func compileOnce(ctx context.Context, base string, req facc.CompileRequest) (string, string, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return "", "", err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/compile?wait=1", bytes.NewReader(body))
	if err != nil {
		return "", "", err
	}
	hreq.Header.Set("Content-Type", "application/json")
	res, err := http.DefaultClient.Do(hreq)
	if err != nil {
		return "", "", err
	}
	defer res.Body.Close()
	data, _ := io.ReadAll(res.Body)
	if res.StatusCode != http.StatusOK {
		return "", "", fmt.Errorf("status %d: %s", res.StatusCode, bytes.TrimSpace(data))
	}
	var v struct {
		State    string `json:"state"`
		Key      string `json:"key"`
		AdapterC string `json:"adapter_c"`
		Error    string `json:"error"`
	}
	if err := json.Unmarshal(data, &v); err != nil {
		return "", "", err
	}
	if v.State != "done" {
		return "", "", fmt.Errorf("job state %q: %s", v.State, v.Error)
	}
	return v.Key, v.AdapterC, nil
}

// quantile reads the p-quantile from sorted values.
func quantile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// WriteText prints the human-readable chaos summary.
func (r *FleetBenchReport) WriteText(w io.Writer) {
	fmt.Fprintf(w, "Fleet chaos bench: %d replicas, %d requests x %d clients over %d digests, queue=%d workers=%d\n",
		r.Replicas, r.Requests, r.Concurrency, r.Variants, r.QueueDepth, r.Workers)
	fmt.Fprintf(w, "killed %s at request %d (rebalanced in %.1fms, budget %.1fms); %s behind %.0f%% lossy link\n",
		r.KilledReplica, r.KillAtRequest, r.RebalanceMs, r.RebalanceBudgetMs,
		r.PartitionedReplica, 100*r.LossRate)
	fmt.Fprintf(w, "completed %d, failed %d, shed (429) %d, client retries %d, acked dropped %d\n",
		r.Completed, r.Failed, r.Shed429, r.Retries, r.AckedDropped)
	fmt.Fprintf(w, "fleet: forwarded %d, failovers %d, degraded local %d, cache probe hits %d, hedges %d\n",
		r.Forwarded, r.Failovers, r.DegradedLocal, r.CacheProbeHits, r.Hedges)
	fmt.Fprintf(w, "wall %.2fs (%.1f req/s)  latency ms: p50=%.1f p90=%.1f p99=%.1f max=%.1f\n",
		r.WallSeconds, r.Throughput, r.LatencyMsP50, r.LatencyMsP90, r.LatencyMsP99, r.LatencyMsMax)
	for _, p := range r.ShedCurve {
		fmt.Fprintf(w, "  load %2d clients: offered %3d, completed %3d, shed %3d (rate %.2f), p99 %.1fms\n",
			p.Concurrency, p.Offered, p.Completed, p.Shed429, p.ShedRate, p.LatencyMsP99)
	}
	if r.AdaptersConsistent {
		fmt.Fprintf(w, "adapters byte-identical to the single-node baseline across all paths\n")
	} else {
		fmt.Fprintf(w, "WARNING: adapter bytes diverged from the single-node baseline\n")
	}
}
