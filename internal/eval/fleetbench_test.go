package eval

import (
	"context"
	"fmt"
	"os"
	"testing"
	"time"

	"facc"
	"facc/internal/server"
)

// stubFleetCompile is a deterministic, mildly slow compile: the adapter
// depends only on the request (so every replica and the baseline agree),
// and the sleep creates real queue pressure at bench concurrency.
func stubFleetCompile(ctx context.Context, req facc.CompileRequest) (server.CompileResult, error) {
	select {
	case <-time.After(10 * time.Millisecond):
	case <-ctx.Done():
		return server.CompileResult{}, ctx.Err()
	}
	return server.CompileResult{
		AdapterC: fmt.Sprintf("/* adapter tests=%d */ %s", req.NumTests, req.Source),
		Function: "fft",
	}, nil
}

// TestFleetBenchChaos runs the full chaos harness — replica killed
// mid-run, a second behind a 30% lossy link — and holds the fleet's
// robustness contract: everything completes, nothing acked is dropped,
// adapters match the single-node baseline byte for byte, and the ring
// rebalances inside the probe budget.
func TestFleetBenchChaos(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rep, err := FleetBench(ctx, FleetBenchConfig{
		Replicas:         3,
		Requests:         24,
		Concurrency:      6,
		QueueDepth:       4,
		Workers:          2,
		Variants:         4,
		ProbeInterval:    25 * time.Millisecond,
		FailureThreshold: 2,
		LossRate:         0.3,
		CurveLevels:      []int{2, 4},
		Compile:          stubFleetCompile,
	})
	if err != nil {
		t.Fatalf("FleetBench: %v", err)
	}

	if rep.Completed != rep.Requests || rep.Failed != 0 {
		t.Errorf("completed %d / failed %d of %d requests; want all completed",
			rep.Completed, rep.Failed, rep.Requests)
	}
	if rep.AckedDropped != 0 {
		t.Errorf("acked_dropped = %d, want 0", rep.AckedDropped)
	}
	if !rep.AdaptersConsistent {
		t.Error("adapters diverged from the single-node baseline")
	}
	if rep.KilledReplica == "" {
		t.Error("no replica was killed")
	}
	if rep.RebalanceMs <= 0 || rep.RebalanceMs > rep.RebalanceBudgetMs {
		t.Errorf("rebalance took %.1fms, budget %.1fms", rep.RebalanceMs, rep.RebalanceBudgetMs)
	}
	if len(rep.ShedCurve) != 2 {
		t.Fatalf("shed curve has %d points, want 2", len(rep.ShedCurve))
	}
	for _, p := range rep.ShedCurve {
		if p.Completed != p.Offered {
			t.Errorf("curve level %d: completed %d of %d offered", p.Concurrency, p.Completed, p.Offered)
		}
		if p.ShedRate < 0 || p.ShedRate >= 1 {
			t.Errorf("curve level %d: shed rate %.2f out of [0,1)", p.Concurrency, p.ShedRate)
		}
	}
}

// TestBenchGateFleetChecks exercises the skip-if-absent fleet gating.
func TestBenchGateFleetChecks(t *testing.T) {
	mk := func(fleet *FleetBenchReport) ServeBenchReport {
		return ServeBenchReport{WallSeconds: 1, LatencyMsP99: 100, Fleet: fleet}
	}
	good := &FleetBenchReport{
		Requests: 24, Completed: 24,
		WallSeconds: 1, LatencyMsP99: 120,
		RebalanceMs: 60, RebalanceBudgetMs: 100,
		Failovers: 3, AdaptersConsistent: true,
	}
	write := func(t *testing.T, name string, rep ServeBenchReport) string {
		t.Helper()
		path := t.TempDir() + "/" + name
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := rep.WriteJSON(f); err != nil {
			t.Fatal(err)
		}
		return path
	}

	// Baseline without a fleet block gates nothing fleet-shaped.
	base := write(t, "base.json", mk(nil))
	fresh := write(t, "fresh.json", mk(good))
	rep, err := BenchGate(GateConfig{BaselineServe: base, FreshServe: fresh})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rep.Checks {
		if c.Name == "serve.fleet.latency_ms_p99" {
			t.Fatal("fleet check ran without a fleet baseline")
		}
	}

	// Baseline with a block + clean fresh block passes.
	base = write(t, "base2.json", mk(good))
	fresh = write(t, "fresh2.json", mk(good))
	rep, err = BenchGate(GateConfig{BaselineServe: base, FreshServe: fresh})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		rep.WriteText(testWriter{t})
		t.Fatal("clean fleet block failed the gate")
	}

	// A dropped ack, inconsistent adapters, or a missing fresh block fail.
	bad := *good
	bad.AckedDropped = 1
	bad.AdaptersConsistent = false
	fresh = write(t, "fresh3.json", mk(&bad))
	rep, err = BenchGate(GateConfig{BaselineServe: base, FreshServe: fresh})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("gate passed a dropped ack + inconsistent adapters")
	}
	fresh = write(t, "fresh4.json", mk(nil))
	rep, err = BenchGate(GateConfig{BaselineServe: base, FreshServe: fresh})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("gate passed a fresh artifact missing the fleet block")
	}
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Log(string(p))
	return len(p), nil
}
