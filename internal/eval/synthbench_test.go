package eval

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestSynthBenchSmoke runs the regression harness at a reduced scale and
// checks the report's internal consistency and JSON round trip — the full
// configuration is exercised by `make bench-json`.
func TestSynthBenchSmoke(t *testing.T) {
	rep, err := SynthBench(nil, []string{"fftw"}, 2, []int{1, 2}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 2 {
		t.Fatalf("got %d runs, want 2", len(rep.Runs))
	}
	for _, run := range rep.Runs {
		if run.Adapters == 0 {
			t.Errorf("workers=%d: no adapters synthesized", run.Workers)
		}
		if run.TestsRun == 0 || run.TestsPerSec == 0 {
			t.Errorf("workers=%d: no fuzz throughput recorded", run.Workers)
		}
	}
	if !rep.AdaptersIdentical {
		t.Error("adapters differ between Workers=1 and Workers=2")
	}
	ex := rep.Exhaustive
	if ex == nil {
		t.Fatal("no exhaustive pass in report")
	}
	if ex.MultiCandidateFunctions == 0 {
		t.Error("exhaustive pass found no multi-candidate functions on fftw")
	}
	// FFTW's direction/flags knobs are invisible to the user program, so
	// its multi-candidate functions must share reference runs heavily.
	if ex.MultiCandidateHitRate <= 0.5 {
		t.Errorf("fftw multi-candidate oracle hit rate = %.2f, want > 0.5",
			ex.MultiCandidateHitRate)
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back SynthBenchReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report does not round-trip through JSON: %v", err)
	}
	if back.Exhaustive.MultiCandidateHitRate != ex.MultiCandidateHitRate {
		t.Error("JSON round trip lost the multi-candidate hit rate")
	}
	rep.WriteText(&bytes.Buffer{})
}

// TestSynthBenchSearchSection: the report's search section comes from
// the sequential run and is internally consistent with it.
func TestSynthBenchSearchSection(t *testing.T) {
	rep, err := SynthBench(nil, []string{"fftw"}, 2, []int{1}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Search
	if s == nil {
		t.Fatal("report has no search section")
	}
	if s.Dispatched == 0 || s.Generated < s.Dispatched {
		t.Errorf("search funnel inconsistent: generated %d, dispatched %d",
			s.Generated, s.Dispatched)
	}
	if s.Winners != int64(rep.Runs[0].Adapters) {
		t.Errorf("search winners = %d, run adapters = %d",
			s.Winners, rep.Runs[0].Adapters)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back SynthBenchReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Search == nil || back.Search.Dispatched != s.Dispatched {
		t.Error("JSON round trip lost the search section")
	}
}
