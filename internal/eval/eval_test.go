package eval

import (
	"bytes"
	"context"
	"errors"
	"math"
	"runtime"
	"strings"
	"testing"
	"time"

	"facc/internal/accel"
	"facc/internal/bench"
	"facc/internal/core"
)

// TestCompileAllCancellation: cancelling the context stops the corpus
// fan-out promptly — the call returns an error wrapping the context's,
// and no worker goroutine outlives it.
func TestCompileAllCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := CompileAll(ctx, []string{"ffta", "powerquad", "fftw"}, 4, nil, nil, nil)
	if err == nil {
		t.Fatal("CompileAll succeeded under a cancelled context")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not unwrap to context.Canceled: %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("cancelled corpus compile took %v", d)
	}
	settle := time.Now().Add(2 * time.Second)
	after := runtime.NumGoroutine()
	for after > before && time.Now().Before(settle) {
		time.Sleep(10 * time.Millisecond)
		after = runtime.NumGoroutine()
	}
	if after > before {
		t.Fatalf("workers leaked: %d goroutines before, %d after", before, after)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Errorf("geomean(2,8) = %g", g)
	}
	if GeoMean(nil) != 0 {
		t.Error("empty geomean")
	}
}

func TestSupports(t *testing.T) {
	b0 := bench.Suite()[0]
	if !Supports(b0, 64) || Supports(b0, 128) {
		t.Error("fixed64 domain wrong")
	}
	b1 := bench.Suite()[1]
	if !Supports(b1, 256) || Supports(b1, 512) || Supports(b1, 100) {
		t.Error("table256 domain wrong")
	}
	b4 := bench.Suite()[4]
	if !Supports(b4, 1000) {
		t.Error("mixed-radix should support 1000")
	}
}

func TestProfilerMeasuresAndCaches(t *testing.T) {
	prof := NewProfiler()
	b := bench.Suite()[3] // iterdit
	m1, err := prof.Measure(b, 64)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Counters.FloatOps == 0 {
		t.Error("no float ops counted")
	}
	m2, err := prof.Measure(b, 64)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Error("measurement not cached")
	}
	if _, err := prof.Measure(b, 100); err == nil {
		t.Error("expected unsupported-size error")
	}
}

func TestSpeedupsGrowWithSize(t *testing.T) {
	prof := NewProfiler()
	b := bench.Suite()[3]
	ffta := accel.NewFFTA()
	m64, err := prof.Measure(b, 64)
	if err != nil {
		t.Fatal(err)
	}
	m256, err := prof.Measure(b, 256)
	if err != nil {
		t.Fatal(err)
	}
	if Speedup(m64, ffta) >= Speedup(m256, ffta) {
		t.Error("speedup should grow with size (offload model)")
	}
	if DSPSpeedup(m256) < 2 || DSPSpeedup(m256) > 6 {
		t.Errorf("DSP speedup = %.1f, out of expected band", DSPSpeedup(m256))
	}
}

func TestTable1Output(t *testing.T) {
	var buf bytes.Buffer
	Table1(&buf)
	out := buf.String()
	if !strings.Contains(out, "Radix-2 FFT") || !strings.Contains(out, "Bluestein") {
		t.Errorf("table 1 incomplete:\n%s", out)
	}
	if strings.Count(out, "\n") < 19 {
		t.Error("table 1 should have 18 rows plus headers")
	}
}

func TestFig12Output(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig12(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "length") {
		t.Errorf("fig12 output:\n%s", out)
	}
	// The 50-atom row must report exactly 1 match.
	found := false
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == "50" {
			found = true
			if fields[1] != "1" {
				t.Errorf("50-atom prefix matches %s, want 1", fields[1])
			}
		}
	}
	if !found {
		t.Error("no 50-atom row")
	}
}

func TestCompileAllAndFigures8_15_16(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus compile")
	}
	outcomes, err := CompileAll(context.Background(), []string{"ffta", "powerquad", "fftw"}, 3, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 75 {
		t.Fatalf("outcomes = %d, want 75", len(outcomes))
	}

	var buf bytes.Buffer
	Fig8(&buf, outcomes)
	out := buf.String()
	if !strings.Contains(out, "supported                    18/25  (0.72)") {
		t.Errorf("fig8 fractions wrong:\n%s", out)
	}

	buf.Reset()
	Fig15(&buf, outcomes)
	if !strings.Contains(buf.String(), "ffta") || !strings.Contains(buf.String(), "p100=") {
		t.Errorf("fig15 output:\n%s", buf.String())
	}

	buf.Reset()
	Fig16(&buf, outcomes)
	out = buf.String()
	if !strings.Contains(out, "ffta") {
		t.Errorf("fig16 output:\n%s", out)
	}
	// FFTA and PowerQuad candidate distributions must coincide; FFTW must
	// dominate (paper Fig. 16).
	var fftaMax, pqMax, fftwMax int
	for _, oc := range outcomes {
		switch oc.Target {
		case "ffta":
			if oc.Candidates > fftaMax {
				fftaMax = oc.Candidates
			}
		case "powerquad":
			if oc.Candidates > pqMax {
				pqMax = oc.Candidates
			}
		case "fftw":
			if oc.Candidates > fftwMax {
				fftwMax = oc.Candidates
			}
		}
	}
	if fftaMax != pqMax {
		t.Errorf("FFTA max candidates %d != PowerQuad %d", fftaMax, pqMax)
	}
	if fftwMax <= fftaMax {
		t.Errorf("FFTW max candidates %d should exceed FFTA %d", fftwMax, fftaMax)
	}
}

func TestFig10And13Geomeans(t *testing.T) {
	if testing.Short() {
		t.Skip("slow measurement")
	}
	prof := NewProfiler()
	var buf bytes.Buffer
	if err := Fig10(&buf, prof); err != nil {
		t.Fatal(err)
	}
	if err := Fig13(&buf, prof); err != nil {
		t.Fatal(err)
	}
	if err := Fig14(&buf, prof); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// The calibrated geomeans must land near the paper's numbers.
	checkGeomean := func(spec *accel.Spec, lo, hi float64) {
		var xs []float64
		for _, b := range bench.SupportedSuite() {
			m, err := prof.Measure(b, b.PerfSize)
			if err != nil {
				t.Fatal(err)
			}
			if spec.Supports(b.PerfSize) {
				xs = append(xs, Speedup(m, spec))
			}
		}
		g := GeoMean(xs)
		if g < lo || g > hi {
			t.Errorf("%s geomean = %.1fx, want in [%.0f, %.0f] (paper shape)",
				spec.Name, g, lo, hi)
		}
	}
	checkGeomean(accel.NewFFTA(), 18, 40)      // paper: 27x
	checkGeomean(accel.NewPowerQuad(), 11, 26) // paper: 17x
	checkGeomean(accel.NewFFTWLib(), 6, 14)    // paper: 9x
	var dsp []float64
	for _, b := range bench.SupportedSuite() {
		m, _ := prof.Measure(b, b.PerfSize)
		dsp = append(dsp, DSPSpeedup(m))
	}
	if g := GeoMean(dsp); g < 2.5 || g > 5 {
		t.Errorf("DSP geomean = %.1fx, want near 3.5x", g)
	}
	if !strings.Contains(out, "geomean") {
		t.Error("missing geomean rows")
	}
	// DFT benchmarks must show the outsized speedups the paper reports.
	dft, _ := bench.ByName("dft12")
	m, err := prof.Measure(dft, dft.PerfSize)
	if err != nil {
		t.Fatal(err)
	}
	if s := Speedup(m, accel.NewPowerQuad()); s < 500 {
		t.Errorf("DFT-on-PowerQuad speedup = %.0fx; paper reports ~10^4", s)
	}
}

func TestFig11SmallConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("training is slow")
	}
	var buf bytes.Buffer
	rows, err := Fig11(&buf, Fig11Config{
		PerClass: 6, Folds: 3, TrainSizes: []int{2, 4}, Seed: 3, MaxEpochs: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// More training data must not hurt much; recall should be decent by 4.
	if rows[1].FFTRecallMean < 0.5 {
		t.Errorf("FFT recall with 4 examples = %.2f", rows[1].FFTRecallMean)
	}
}

func TestFig9Output(t *testing.T) {
	if testing.Short() {
		t.Skip("training is slow")
	}
	clf, err := core.TrainClassifier(8, 5)
	if err != nil {
		t.Fatal(err)
	}
	outcomes, err := CompileAll(context.Background(), []string{"ffta"}, 3, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Fig9(&buf, outcomes, clf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "IDL        compiled=0.04") {
		t.Errorf("IDL should compile exactly 1/25:\n%s", out)
	}
	if !strings.Contains(out, "FACC       compiled=0.72") {
		t.Errorf("FACC should compile 18/25:\n%s", out)
	}
}

func TestAblationOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := Ablation(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "with heuristics") || !strings.Contains(out, "survivors") {
		t.Errorf("ablation output:\n%s", out)
	}
}

// TestFig14CrossoverShape pins the paper's qualitative claims: speedups
// grow with input size and the small-size end sits at/below breakeven for
// the overhead-heavy targets.
func TestFig14CrossoverShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow measurement")
	}
	prof := NewProfiler()
	spec := accel.NewPowerQuad()
	var prev float64
	for _, n := range []int{16, 64, 256, 1024} {
		var xs []float64
		for _, b := range bench.SupportedSuite() {
			if b.ID < 1 || b.ID > 7 || !Supports(b, n) || !spec.Supports(n) {
				continue
			}
			m, err := prof.Measure(b, n)
			if err != nil {
				t.Fatal(err)
			}
			xs = append(xs, Speedup(m, spec))
		}
		g := GeoMean(xs)
		if g <= prev {
			t.Errorf("speedup not monotone at n=%d: %.2f after %.2f", n, g, prev)
		}
		if n == 16 && g > 2.5 {
			t.Errorf("n=16 speedup %.2f; expected near-breakeven (paper crossover)", g)
		}
		prev = g
	}
}
