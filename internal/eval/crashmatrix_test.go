package eval

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// TestCrashMatrix is the ISSUE acceptance run: every durable operation
// the store workload performs is a crash site, every site is crashed in
// every mode, and every cell must recover consistently.
func TestCrashMatrix(t *testing.T) {
	rep, err := RunCrashMatrix(context.Background(), CrashMatrixConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sites < 30 {
		t.Fatalf("matrix enumerated %d crash sites, want >= 30", rep.Sites)
	}
	for _, op := range []string{"write", "sync", "truncate", "rename"} {
		if rep.SiteOps[op] == 0 {
			t.Errorf("no crash site covers %q operations", op)
		}
	}
	if len(rep.Modes) != 3 {
		t.Fatalf("modes = %v, want clean/torn/bitflip", rep.Modes)
	}
	if rep.Runs != rep.Sites*len(rep.Modes) {
		t.Fatalf("runs = %d, want %d sites x %d modes", rep.Runs, rep.Sites, len(rep.Modes))
	}
	if !rep.OK() {
		var buf bytes.Buffer
		rep.WriteText(&buf)
		t.Fatalf("%d cells failed recovery:\n%s", rep.Failed, buf.String())
	}

	// The artifact is valid JSON and the text summary names the verdict.
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round CrashMatrixReport
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatal(err)
	}
	if round.Runs != rep.Runs || round.Failed != 0 {
		t.Fatalf("JSON round-trip mangled the report: %+v", round)
	}
	buf.Reset()
	rep.WriteText(&buf)
	if !strings.Contains(buf.String(), "every crash site recovered consistently") {
		t.Fatalf("text summary missing verdict:\n%s", buf.String())
	}
}
