// Package eval regenerates every table and figure of the paper's
// evaluation (Table 1, Figures 8-16). Each experiment prints the same
// rows/series the paper reports; EXPERIMENTS.md records paper-reported vs.
// measured values. Performance numbers come from the modeled platforms in
// internal/accel — absolute times are synthetic, ratios are the result.
package eval

import (
	"fmt"
	"math"
	"math/rand"

	"facc/internal/accel"
	"facc/internal/bench"
	"facc/internal/interp"
)

// Measurement is one (benchmark, size) software execution profile.
type Measurement struct {
	Bench    *bench.Benchmark
	N        int
	Counters interp.Counters
}

// SoftwareTime returns the modeled time of the original software on a host.
func (m *Measurement) SoftwareTime(p accel.Platform) float64 {
	return p.Time(m.Counters)
}

// AccelTime returns the modeled time of the FACC adapter on a target.
func AccelTime(spec *accel.Spec, n int) float64 { return spec.Time(n) }

// Speedup returns software-on-host / adapter-on-target.
func Speedup(m *Measurement, spec *accel.Spec) float64 {
	return m.SoftwareTime(accel.HostFor(spec.Name)) / AccelTime(spec, m.N)
}

// DSPSpeedup returns the ProGraML-classifier baseline: the same software
// moved to the SHARC DSP core, compared against the Cortex-A5 host.
func DSPSpeedup(m *Measurement) float64 {
	return m.SoftwareTime(accel.CortexA5) / accel.DSPOffloadTime(m.Counters)
}

// Profiler measures and caches benchmark executions.
type Profiler struct {
	runners map[int]*bench.Runner
	cache   map[[2]int]*Measurement
	rng     *rand.Rand
}

// NewProfiler returns an empty measurement cache.
func NewProfiler() *Profiler {
	return &Profiler{
		runners: map[int]*bench.Runner{},
		cache:   map[[2]int]*Measurement{},
		rng:     rand.New(rand.NewSource(20260705)),
	}
}

// Supports reports whether benchmark b can run at size n (per its
// documented length domain).
func Supports(b *bench.Benchmark, n int) bool { return b.SupportsSize(n) }

// Measure runs benchmark b at size n (cached).
func (p *Profiler) Measure(b *bench.Benchmark, n int) (*Measurement, error) {
	key := [2]int{b.ID, n}
	if m, ok := p.cache[key]; ok {
		return m, nil
	}
	if !Supports(b, n) {
		return nil, fmt.Errorf("eval: %s does not support n=%d", b.Name, n)
	}
	r, ok := p.runners[b.ID]
	if !ok {
		var err error
		r, err = bench.NewRunner(b)
		if err != nil {
			return nil, err
		}
		p.runners[b.ID] = r
	}
	in := make([]complex128, n)
	for i := range in {
		in[i] = complex(p.rng.NormFloat64(), p.rng.NormFloat64())
	}
	c, err := r.MeasureCounters(in)
	if err != nil {
		return nil, err
	}
	m := &Measurement{Bench: b, N: n, Counters: c}
	p.cache[key] = m
	return m, nil
}

// GeoMean computes the geometric mean of positive values.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}
