package eval

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"facc/internal/faultinject"
	"facc/internal/obs"
	"facc/internal/store"
)

// CrashMatrixConfig shapes the crash-point injection matrix over the
// adapter store: one probe run enumerates every durable operation
// (page write, WAL append, fsync, truncate, rename) a representative
// faccd workload performs, then the workload is re-run once per
// (site, mode) pair with a simulated crash at exactly that operation.
type CrashMatrixConfig struct {
	// PageSize for the store under test (default 512: small pages give
	// deep trees, overflow chains and many distinct page writes).
	PageSize int
	// Modes to exercise at every site (default all of
	// faultinject.CrashModes: clean loss, torn write, bit flip).
	Modes []faultinject.CrashMode
	// Dir is the scratch directory (default a fresh temp dir, removed
	// afterwards).
	Dir string
	// KeepArtifacts leaves each crashed site's quarantine directory in
	// place under Dir for CI upload instead of cleaning between runs.
	KeepArtifacts bool
}

func (c *CrashMatrixConfig) defaults() {
	if c.PageSize == 0 {
		c.PageSize = 512
	}
	if len(c.Modes) == 0 {
		c.Modes = faultinject.CrashModes
	}
}

// CrashRunResult is one cell of the matrix: the store crashed at Site
// under Mode, rebooted on the real file system, and either recovered to
// a consistent state (OK) or did not.
type CrashRunResult struct {
	Site int    `json:"site"`
	Op   string `json:"op"`
	File string `json:"file"`
	Mode string `json:"mode"`

	OK               bool   `json:"ok"`
	Error            string `json:"error,omitempty"`
	RecoveredPending int64  `json:"recovered_pending,omitempty"`
	Quarantined      int64  `json:"quarantined,omitempty"`
	WALTorn          int64  `json:"wal_torn,omitempty"`
	Healed           int    `json:"healed,omitempty"` // entries recompiled after recovery
}

// CrashMatrixReport is the CRASH_MATRIX.json artifact.
type CrashMatrixReport struct {
	PageSize int      `json:"page_size"`
	Sites    int      `json:"sites"`
	Modes    []string `json:"modes"`
	Runs     int      `json:"runs"`
	Failed   int      `json:"failed"`
	// SiteOps counts enumerated sites by operation kind — the proof the
	// matrix covered writes, fsyncs, truncates and renames, not just one
	// flavor of durability.
	SiteOps map[string]int   `json:"site_ops"`
	Results []CrashRunResult `json:"results"`
}

// OK reports whether every cell of the matrix recovered consistently.
func (r *CrashMatrixReport) OK() bool { return r.Failed == 0 }

// crashWorkload drives a representative faccd adapter-store life:
// several puts (index churn included), a delete, an overwrite that
// moves an entry between targets, a compaction, and a final put. It
// stops at the first error — after a simulated crash everything else
// would fail too.
func crashWorkload(dir string, vfs faultinject.VFS, pageSize int) error {
	st, err := store.OpenOptions(dir, obs.New().Metrics(), store.Options{
		PageSize:         pageSize,
		VFS:              vfs,
		AutoCompactPages: -1,
		// Verification runs on the post-crash reopen; during the
		// crashing run it would only re-read what was just written.
		DisableVerifyOnOpen: true,
	})
	if err != nil {
		return err
	}
	defer st.Close()
	for i := 0; i < 4; i++ {
		if err := st.Put(crashKey(i), crashEntry(i)); err != nil {
			return err
		}
	}
	if err := st.Delete(crashKey(1)); err != nil {
		return err
	}
	moved := crashEntry(2)
	moved.Target = "vfft"
	if err := st.Put(crashKey(2), moved); err != nil {
		return err
	}
	if err := st.Compact(); err != nil {
		return err
	}
	return st.Put(crashKey(5), crashEntry(5))
}

func crashKey(i int) string { return fmt.Sprintf("cmkey-%04d", i) }

func crashEntry(i int) store.Entry {
	return store.Entry{
		Target:   "ffta",
		Function: fmt.Sprintf("fft_%d", i),
		Sig:      fmt.Sprintf("spec=ffta;in=%d", i%3),
		AdapterC: fmt.Sprintf("/* adapter %d */ %s", i, strings.Repeat("x", 700)),
		Trace:    fmt.Sprintf("trace-%d", i),
	}
}

// crashBaseline is what a run that never crashes leaves behind — the
// byte-identity reference every recovered (or recompiled) entry is
// compared against.
func crashBaseline() map[string]store.Entry {
	want := map[string]store.Entry{}
	for i := 0; i < 4; i++ {
		want[crashKey(i)] = crashEntry(i)
	}
	delete(want, crashKey(1))
	moved := crashEntry(2)
	moved.Target = "vfft"
	want[crashKey(2)] = moved
	want[crashKey(5)] = crashEntry(5)
	return want
}

// RunCrashMatrix executes the full matrix. Every cell must satisfy the
// recovery invariants: the store reopens, a full tree check is clean,
// no surviving entry differs from the no-crash baseline by a single
// byte, and every lost entry can be recompiled (re-put) to a
// byte-identical copy. A cell that violates any of them is a Failed
// result, not an aborted run — the report shows the whole matrix.
func RunCrashMatrix(ctx context.Context, cfg CrashMatrixConfig) (*CrashMatrixReport, error) {
	cfg.defaults()
	root := cfg.Dir
	if root == "" {
		var err error
		root, err = os.MkdirTemp("", "crashmatrix")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(root)
	}

	// Probe run: no crash, enumerate the sites.
	probeDir := root + "/probe"
	probe := faultinject.NewCrashVFS(nil, faultinject.CrashPlan{})
	if err := crashWorkload(probeDir, probe, cfg.PageSize); err != nil {
		return nil, fmt.Errorf("crashmatrix: probe workload: %w", err)
	}
	sites := probe.Sites()
	faultinject.SortSites(sites)

	rep := &CrashMatrixReport{
		PageSize: cfg.PageSize,
		Sites:    len(sites),
		SiteOps:  faultinject.SiteOps(sites),
	}
	for _, m := range cfg.Modes {
		rep.Modes = append(rep.Modes, m.String())
	}

	for _, site := range sites {
		for _, mode := range cfg.Modes {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			res := runCrashCell(root, site, mode, cfg)
			rep.Runs++
			if !res.OK {
				rep.Failed++
			}
			rep.Results = append(rep.Results, res)
		}
	}
	return rep, nil
}

// runCrashCell runs the workload with a crash planned at one site, then
// reboots on the real OS and checks the recovery invariants.
func runCrashCell(root string, site faultinject.CrashSite, mode faultinject.CrashMode, cfg CrashMatrixConfig) CrashRunResult {
	res := CrashRunResult{Site: site.Site, Op: site.Op, File: site.File, Mode: mode.String()}
	fail := func(format string, args ...any) CrashRunResult {
		res.Error = fmt.Sprintf(format, args...)
		return res
	}

	dir := fmt.Sprintf("%s/site%03d-%s", root, site.Site, mode)
	vfs := faultinject.NewCrashVFS(nil, faultinject.CrashPlan{Site: site.Site, Mode: mode})
	werr := crashWorkload(dir, vfs, cfg.PageSize)
	if !vfs.Crashed() {
		return fail("planned crash at site %d never fired (workload err: %v)", site.Site, werr)
	}

	// Reboot on the real file system with full verification.
	reg := obs.New()
	st, err := store.OpenOptions(dir, reg.Metrics(), store.Options{
		PageSize:         cfg.PageSize,
		AutoCompactPages: -1,
	})
	if err != nil {
		return fail("reopen after crash: %v", err)
	}
	defer st.Close()
	if problems := st.Check(); len(problems) != 0 {
		return fail("post-recovery check: %s", strings.Join(problems, "; "))
	}

	counters := reg.Metrics().Counters()
	res.RecoveredPending = counters["store.recovered_pending"]
	res.Quarantined = counters["store.corrupt_quarantined"]
	res.WALTorn = counters["store.wal_torn"]

	// Recovery invariant: anything served is byte-identical to the
	// no-crash baseline; anything lost recompiles to a byte-identical
	// copy. The interrupted operation may legitimately have (not)
	// landed, so presence is not asserted — content is.
	for key, want := range crashBaseline() {
		if got, ok := st.Get(key); ok {
			if got.AdapterC != want.AdapterC && got.AdapterC != crashEntry(2).AdapterC {
				// crashKey(2) may still hold its pre-overwrite value.
				return fail("entry %s survived with foreign bytes", key)
			}
			continue
		}
		// Cache miss: the daemon would recompile. Simulate and demand
		// byte identity.
		if err := st.Put(key, want); err != nil {
			return fail("recompile %s: %v", key, err)
		}
		got, ok := st.Get(key)
		if !ok {
			return fail("entry %s missing after recompile", key)
		}
		if got.AdapterC != want.AdapterC || got.Target != want.Target || got.Sig != want.Sig {
			return fail("recompiled %s differs from baseline", key)
		}
		res.Healed++
	}
	res.OK = true
	if !cfg.KeepArtifacts {
		st.Close()
		os.RemoveAll(dir)
	}
	return res
}

// WriteJSON emits the CRASH_MATRIX.json artifact.
func (r *CrashMatrixReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText prints the human-readable matrix summary: coverage by
// operation kind, then every failing cell (or a one-line all-clear).
func (r *CrashMatrixReport) WriteText(w io.Writer) {
	fmt.Fprintf(w, "Crash-point injection matrix (page size %d)\n", r.PageSize)
	fmt.Fprintf(w, "  %d sites x %d modes = %d runs, %d failed\n",
		r.Sites, len(r.Modes), r.Runs, r.Failed)
	var ops []string
	for op := range r.SiteOps {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	var b bytes.Buffer
	for _, op := range ops {
		fmt.Fprintf(&b, " %s=%d", op, r.SiteOps[op])
	}
	fmt.Fprintf(w, "  site coverage:%s\n", b.String())
	recovered, quarantined, healed := int64(0), int64(0), 0
	for _, res := range r.Results {
		recovered += res.RecoveredPending
		quarantined += res.Quarantined + res.WALTorn
		healed += res.Healed
		if !res.OK {
			fmt.Fprintf(w, "  FAIL site %3d %s(%s) %s: %s\n",
				res.Site, res.Op, res.File, res.Mode, res.Error)
		}
	}
	fmt.Fprintf(w, "  WAL replays: %d pages, quarantines: %d, recompiles healed: %d\n",
		recovered, quarantined, healed)
	if r.Failed == 0 {
		fmt.Fprintf(w, "  every crash site recovered consistently\n")
	}
}
