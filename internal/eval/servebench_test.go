package eval

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// TestServeBenchSmoke runs a scaled-down serving benchmark: every client
// request must be accounted for, the memoization contract must hold
// (byte-identical adapters per digest), and the report must round-trip
// as the BENCH_serve.json artifact.
func TestServeBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("drives real synthesis under load")
	}
	cfg := ServeBenchConfig{
		Requests:    10,
		Concurrency: 4,
		QueueDepth:  2,
		Workers:     2,
		NumTests:    2,
		Variants:    2,
	}
	rep, err := ServeBench(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed+rep.Failed != cfg.Requests {
		t.Fatalf("completed %d + failed %d != %d requests", rep.Completed, rep.Failed, cfg.Requests)
	}
	if rep.Completed == 0 {
		t.Fatal("no requests completed")
	}
	if !rep.AdaptersConsistent {
		t.Fatal("adapter bytes diverged for one digest")
	}
	// 10 requests over 2 digests: most of the traffic is dedup/cache.
	if rep.Deduped+rep.CacheHits == 0 {
		t.Fatalf("no dedup or cache activity: %+v", rep)
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded ServeBenchReport
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Completed != rep.Completed {
		t.Fatalf("JSON round-trip lost data: %+v", decoded)
	}
	buf.Reset()
	rep.WriteText(&buf)
	if !strings.Contains(buf.String(), "Serving benchmark") {
		t.Fatalf("text report: %q", buf.String())
	}
}
