package eval

// The bench gate: compares a freshly measured BENCH_synth.json /
// BENCH_serve.json pair against the committed baselines and fails on
// regressions beyond a tolerance — the CI tripwire that keeps the
// synthesis engine's wall-clock and the ledger's waste ratio honest.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// GateConfig names the artifact pairs to compare. An empty path skips
// that pair, so the gate can run on synth-only or serve-only artifacts.
type GateConfig struct {
	BaselineSynth string
	FreshSynth    string
	BaselineServe string
	FreshServe    string
	// Tolerance is the allowed fractional regression (0.25 = 25%).
	// <= 0 gets the default of 0.25 — generous because CI machines are
	// noisy; the gate exists to catch step-function regressions, not
	// single-digit jitter.
	Tolerance float64
}

// GateCheck is one compared metric.
type GateCheck struct {
	Name     string  `json:"name"`
	Baseline float64 `json:"baseline"`
	Fresh    float64 `json:"fresh"`
	// Limit is the boundary Fresh value that passes: the highest for
	// lower-is-better checks, the lowest for floor checks.
	Limit float64 `json:"limit"`
	OK    bool    `json:"ok"`
}

// GateReport is the full comparison outcome.
type GateReport struct {
	Tolerance float64     `json:"tolerance"`
	Checks    []GateCheck `json:"checks"`
	Failures  int         `json:"failures"`
}

// OK reports whether every check passed.
func (r *GateReport) OK() bool { return r.Failures == 0 }

// BenchGate loads the configured artifact pairs and compares wall-clock
// and waste-ratio metrics. Lower is better for every gated metric; a
// fresh value beyond baseline*(1+tolerance) fails. Ratio-valued metrics
// (waste) near zero additionally get an absolute floor of the tolerance
// itself, so a 0.00 → 0.01 drift does not fail on division noise.
func BenchGate(cfg GateConfig) (*GateReport, error) {
	tol := cfg.Tolerance
	if tol <= 0 {
		tol = 0.25
	}
	rep := &GateReport{Tolerance: tol}

	if cfg.BaselineSynth != "" && cfg.FreshSynth != "" {
		var base, fresh SynthBenchReport
		if err := loadJSON(cfg.BaselineSynth, &base); err != nil {
			return nil, err
		}
		if err := loadJSON(cfg.FreshSynth, &fresh); err != nil {
			return nil, err
		}
		freshRuns := map[int]SynthBenchRun{}
		for _, run := range fresh.Runs {
			freshRuns[run.Workers] = run
		}
		for _, b := range base.Runs {
			f, ok := freshRuns[b.Workers]
			if !ok {
				// Worker counts are machine-dependent (GOMAXPROCS); a
				// baseline run with no fresh counterpart is not a
				// regression, just a different machine shape.
				continue
			}
			rep.check(fmt.Sprintf("synth.wall_seconds[workers=%d]", b.Workers),
				b.WallSeconds, f.WallSeconds, false)
			rep.check(fmt.Sprintf("synth.waste_ratio[workers=%d]", b.Workers),
				b.WasteRatio, f.WasteRatio, true)
		}
		// Search-observatory checks are skip-if-absent: a baseline
		// committed before the search section existed gates nothing.
		// Once the baseline carries one, the fresh artifact must too,
		// and its discriminating-input signal must not collapse: a
		// corpus whose baseline had multi-family killer cases producing
		// none is a search regression (kill attribution broken or the
		// funnel no longer dispatching candidates), not jitter.
		if base.Search != nil {
			fm, fk := -1.0, -1.0
			if fresh.Search != nil {
				fm = float64(fresh.Search.MultiFamilyCases)
				fk = float64(fresh.Search.Killed)
			}
			rep.checkFloor("synth.search.multi_family_cases",
				float64(base.Search.MultiFamilyCases), fm)
			rep.checkFloor("synth.search.killed",
				float64(base.Search.Killed), fk)
		}
		// ROADMAP targets promoted to floors on the fresh artifact.
		// Speedup: parallel candidate search must not be a slowdown.
		// Strict ≥1.0 needs real cores and is absolute there (no
		// baseline drift can relax it). On a GOMAXPROCS=1 host the
		// Workers=N run executes a superset of the Workers=1 work on
		// one core: the winner's cost plus whatever its losing rivals
		// burned before cancellation, which the oracle only partly
		// refunds (reference runs share; accelerator-side runs cannot).
		// That speculation overhead is real and noisy (its volume
		// depends on where cancellation lands), so the serialized gate
		// is relative like the wall-time gates: the fresh ratio must
		// not fall more than the tolerance below the committed
		// baseline's, with 1/(1+2·tol) as the backstop when the
		// baseline predates the field or was measured on real cores.
		if n := len(fresh.Runs); n >= 2 && fresh.Speedup > 0 {
			w1, wn := fresh.Runs[0], fresh.Runs[n-1]
			if w1.Workers == 1 && wn.Workers > 1 {
				floor := 1.0
				if fresh.GoMaxProcs <= 1 {
					floor = 1 / (1 + 2*tol)
					if base.Speedup > 0 && base.Speedup < 1 {
						floor = base.Speedup / (1 + tol)
					}
				}
				rep.checkTarget(fmt.Sprintf("synth.speedup[w1/w%d]", wn.Workers),
					floor, fresh.Speedup, false)
			}
		}
		// Cross-target oracle sharing: compiles of one program for
		// ffta+powerquad+fftw must reuse each other's reference runs —
		// a >50% hit rate means most lookups were shared, i.e. the
		// target-independent key actually deduplicates across targets.
		if ex := fresh.Exhaustive; ex != nil && ex.CrossTarget != nil {
			rep.checkTarget("synth.cross_target.multi_candidate_hit_rate",
				0.5, ex.CrossTarget.MultiCandidateHitRate, true)
		}
	}

	if cfg.BaselineServe != "" && cfg.FreshServe != "" {
		var base, fresh ServeBenchReport
		if err := loadJSON(cfg.BaselineServe, &base); err != nil {
			return nil, err
		}
		if err := loadJSON(cfg.FreshServe, &fresh); err != nil {
			return nil, err
		}
		rep.check("serve.wall_seconds", base.WallSeconds, fresh.WallSeconds, false)
		rep.check("serve.latency_ms_p99", base.LatencyMsP99, fresh.LatencyMsP99, false)
		// Fleet chaos checks are skip-if-absent like the search block: a
		// baseline from before the fleet existed gates nothing, but once
		// one carries the block the fresh artifact must reproduce it and
		// hold the robustness invariants absolutely — these are
		// correctness contracts, not performance numbers, so no tolerance
		// applies to them.
		if base.Fleet != nil {
			if fresh.Fleet == nil {
				rep.checkTarget("serve.fleet.present", 1, 0, false)
			} else {
				bf, ff := base.Fleet, fresh.Fleet
				rep.check("serve.fleet.latency_ms_p99", bf.LatencyMsP99, ff.LatencyMsP99, false)
				rep.check("serve.fleet.wall_seconds", bf.WallSeconds, ff.WallSeconds, false)
				// Zero dropped acknowledged jobs, ever: baseline 0 makes
				// the lower-is-better limit exactly 0.
				rep.check("serve.fleet.acked_dropped", 0, float64(ff.AckedDropped), false)
				rep.checkTarget("serve.fleet.adapters_consistent", 1, boolMetric(ff.AdaptersConsistent), false)
				// Every offered request must complete despite the kill and
				// the lossy partition.
				frac := 0.0
				if ff.Requests > 0 {
					frac = float64(ff.Completed) / float64(ff.Requests)
				}
				rep.checkTarget("serve.fleet.completed_frac", 1, frac, false)
				// Rebalance after the kill must land inside the probe
				// budget the run declared (threshold+2 probe intervals).
				rep.check("serve.fleet.rebalance_ms", ff.RebalanceBudgetMs, ff.RebalanceMs, false)
				// The chaos actually exercised failover paths: if the
				// baseline recorded failovers, a fresh run with none means
				// the kill stopped mattering (harness regression).
				rep.checkFloor("serve.fleet.failovers", float64(bf.Failovers), float64(ff.Failovers))
			}
		}
	}

	if len(rep.Checks) == 0 {
		return nil, fmt.Errorf("bench gate: nothing to compare (need a baseline+fresh artifact pair)")
	}
	return rep, nil
}

// check records one lower-is-better comparison. ratio marks metrics
// already normalized to [0,1], which get the absolute floor.
func (r *GateReport) check(name string, baseline, fresh float64, ratio bool) {
	limit := baseline * (1 + r.Tolerance)
	if ratio && limit < r.Tolerance {
		limit = r.Tolerance
	}
	c := GateCheck{Name: name, Baseline: baseline, Fresh: fresh, Limit: limit, OK: fresh <= limit}
	if !c.OK {
		r.Failures++
	}
	r.Checks = append(r.Checks, c)
}

// checkTarget records one absolute higher-is-better floor: fresh must
// reach floor (exceed it when strict). Unlike check/checkFloor this does
// not compare against the baseline artifact — the floor is a standing
// target, reported in the Baseline column for context.
func (r *GateReport) checkTarget(name string, floor, fresh float64, strict bool) {
	ok := fresh >= floor
	if strict {
		ok = fresh > floor
	}
	c := GateCheck{Name: name, Baseline: floor, Fresh: fresh, Limit: floor, OK: ok}
	if !c.OK {
		r.Failures++
	}
	r.Checks = append(r.Checks, c)
}

// checkFloor records one higher-is-better presence check: when the
// baseline has any signal (>= 1), the fresh value must keep at least 1 —
// the gate catches collapse-to-zero (or a missing section, passed as a
// negative fresh value), not count jitter.
func (r *GateReport) checkFloor(name string, baseline, fresh float64) {
	limit := 0.0
	if baseline >= 1 {
		limit = 1
	}
	c := GateCheck{Name: name, Baseline: baseline, Fresh: fresh, Limit: limit, OK: fresh >= limit}
	if !c.OK {
		r.Failures++
	}
	r.Checks = append(r.Checks, c)
}

// WriteText prints one line per check plus the verdict.
func (r *GateReport) WriteText(w io.Writer) {
	fmt.Fprintf(w, "Bench gate (tolerance %.0f%%):\n", 100*r.Tolerance)
	for _, c := range r.Checks {
		status := "ok  "
		if !c.OK {
			status = "FAIL"
		}
		fmt.Fprintf(w, "  %s %-36s baseline %10.3f  fresh %10.3f  limit %10.3f\n",
			status, c.Name, c.Baseline, c.Fresh, c.Limit)
	}
	if r.OK() {
		fmt.Fprintf(w, "bench gate: PASS (%d checks)\n", len(r.Checks))
	} else {
		fmt.Fprintf(w, "bench gate: FAIL (%d of %d checks regressed)\n", r.Failures, len(r.Checks))
	}
}

// boolMetric maps a pass/fail invariant onto the gate's numeric floors.
func boolMetric(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func loadJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("bench gate: %w", err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("bench gate: %s: %w", path, err)
	}
	return nil
}
