package fft

import (
	"math"
	"math/rand"
	"testing"

	"facc/internal/interp"
	"facc/internal/minic"
)

func TestHalfComplexRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{1, 2, 3, 8, 9, 16, 17, 64} {
		in := make([]float64, n)
		for i := range in {
			in[i] = rng.NormFloat64()
		}
		packed := RFFTPacked(in)
		if len(packed) != n {
			t.Fatalf("n=%d: packed length %d", n, len(packed))
		}
		back, err := IRFFTPacked(packed)
		if err != nil {
			t.Fatal(err)
		}
		for i := range in {
			if math.Abs(back[i]-in[i]) > 1e-9*(1+math.Abs(in[i])) {
				t.Fatalf("n=%d: roundtrip diverges at %d: %g vs %g", n, i, back[i], in[i])
			}
		}
	}
}

func TestPackUnpackInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	n := 16
	in := make([]float64, n)
	for i := range in {
		in[i] = rng.NormFloat64()
	}
	spec := RFFT(in)
	packed := PackHalfComplex(spec)
	unpacked := UnpackHalfComplex(packed)
	if e := MaxError(unpacked, spec); e > 1e-12 {
		t.Errorf("unpack(pack(spec)) error %g", e)
	}
}

// TestPackedMatchesCorpusProject20: our library's packed layout must be
// byte-for-byte the layout the corpus's real-FFT program produces — the
// same convention, independently implemented.
func TestPackedMatchesCorpusProject20(t *testing.T) {
	src := `
#include <math.h>
#include <stdlib.h>
void rfft(double* x, int n) {
    double* re = (double*)malloc(n * sizeof(double));
    double* im = (double*)malloc(n * sizeof(double));
    for (int k = 0; k < n; k++) {
        double sre = 0.0;
        double sim = 0.0;
        for (int j = 0; j < n; j++) {
            double ang = -2.0 * M_PI * (double)j * (double)k / (double)n;
            sre += x[j] * cos(ang);
            sim += x[j] * sin(ang);
        }
        re[k] = sre;
        im[k] = sim;
    }
    for (int k = 0; k <= n / 2; k++) {
        x[k] = re[k];
    }
    for (int k = 1; k < n - n / 2; k++) {
        x[n - k] = im[k];
    }
    free(re);
    free(im);
}`
	f, err := minic.ParseAndCheck("p20like.c", src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := interp.NewMachine(f)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	for _, n := range []int{8, 9, 16} {
		in := make([]float64, n)
		for i := range in {
			in[i] = rng.NormFloat64()
		}
		arr, err := m.NewArray("x", minic.Double, n)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.SetFloatArray(arr, in); err != nil {
			t.Fatal(err)
		}
		if _, err := m.CallNamed("rfft", []interp.Value{arr, interp.IntValue(int64(n))}); err != nil {
			t.Fatal(err)
		}
		got, err := m.GetFloatArray(arr, n)
		if err != nil {
			t.Fatal(err)
		}
		want := RFFTPacked(in)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-8*(1+math.Abs(want[i])) {
				t.Fatalf("n=%d: packed layout diverges at %d: %g vs %g", n, i, got[i], want[i])
			}
		}
	}
}
