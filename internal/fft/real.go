package fft

import "fmt"

// Half-complex ("packed") real-transform support, matching the layout
// FFTW's r2hc transforms and the corpus's project20 use: for a length-n
// real input, the packed buffer holds
//
//	r0, r1, ..., r_{n/2}, i_{ceil(n/2)-1}, ..., i_1
//
// exploiting the conjugate symmetry X[n-k] = conj(X[k]) of real-input
// spectra.

// PackHalfComplex converts a full complex spectrum of a real signal into
// the packed representation. The spectrum must be conjugate-symmetric.
func PackHalfComplex(spec []complex128) []float64 {
	n := len(spec)
	out := make([]float64, n)
	for k := 0; k <= n/2; k++ {
		out[k] = real(spec[k])
	}
	for k := 1; k < n-n/2; k++ {
		out[n-k] = imag(spec[k])
	}
	return out
}

// UnpackHalfComplex reconstructs the full complex spectrum from the packed
// representation.
func UnpackHalfComplex(packed []float64) []complex128 {
	n := len(packed)
	out := make([]complex128, n)
	if n == 0 {
		return out
	}
	out[0] = complex(packed[0], 0)
	for k := 1; k < n-n/2; k++ {
		re := packed[k]
		im := packed[n-k]
		out[k] = complex(re, im)
		out[n-k] = complex(re, -im)
	}
	if n%2 == 0 {
		out[n/2] = complex(packed[n/2], 0)
	}
	return out
}

// RFFTPacked computes the half-complex packed spectrum of a real signal.
func RFFTPacked(in []float64) []float64 {
	return PackHalfComplex(RFFT(in))
}

// IRFFTPacked inverts RFFTPacked (normalized).
func IRFFTPacked(packed []float64) ([]float64, error) {
	spec := UnpackHalfComplex(packed)
	out := IRFFT(spec)
	if len(out) != len(packed) {
		return nil, fmt.Errorf("fft: packed inverse length mismatch")
	}
	return out, nil
}
