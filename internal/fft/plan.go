package fft

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Plan is a prepared transform, mirroring FFTW's plan-based API: twiddle
// tables are computed once at planning time and reused across executions.
// This is the interface surface FACC targets when compiling to the
// "optimized software library" backend — deliberately wider than the
// hardware APIs (direction, normalization, in-place flags), which is why
// the library target generates more binding candidates (paper Fig. 16).
type Plan struct {
	N         int
	Dir       Direction
	Norm      bool // scale output by 1/N
	tw        []complex128
	algorithm string
}

// NewPlan prepares a transform of length n. Any positive n is supported:
// power-of-two sizes run the iterative radix-2 kernel, smooth sizes the
// mixed-radix engine, and everything else Bluestein's algorithm.
func NewPlan(n int, dir Direction) (*Plan, error) {
	if n <= 0 {
		return nil, fmt.Errorf("fft: plan length must be positive, got %d", n)
	}
	p := &Plan{N: n, Dir: dir}
	switch {
	case IsPowerOfTwo(n):
		p.algorithm = "radix2"
		p.tw = twiddles(maxInt(n, 2), dir)
	case HasSmallFactors(n):
		p.algorithm = "mixed-radix"
	default:
		p.algorithm = "bluestein"
	}
	return p, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Algorithm returns the kernel the plan selected.
func (p *Plan) Algorithm() string { return p.algorithm }

// Execute transforms in into out (both length N). in and out may alias.
func (p *Plan) Execute(in, out []complex128) error {
	if len(in) != p.N || len(out) != p.N {
		return fmt.Errorf("fft: plan is for length %d, got in=%d out=%d", p.N, len(in), len(out))
	}
	switch p.algorithm {
	case "radix2":
		if &in[0] != &out[0] {
			copy(out, in)
		}
		p.radix2Planned(out)
	default:
		res := MixedRadix(in, p.Dir)
		copy(out, res)
	}
	if p.Norm {
		Normalize(out)
	}
	return nil
}

// radix2Planned is the iterative kernel using the precomputed table.
func (p *Plan) radix2Planned(x []complex128) {
	n := p.N
	if n <= 1 {
		return
	}
	BitReverse(x)
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := n / size
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				tw := p.tw[k*step]
				u := x[start+k]
				v := x[start+k+half] * tw
				x[start+k] = u + v
				x[start+k+half] = u - v
			}
		}
	}
}

// FlopEstimate returns the approximate floating-point operation count of
// one execution — used by the platform latency models.
func (p *Plan) FlopEstimate() float64 {
	n := float64(p.N)
	switch p.algorithm {
	case "radix2":
		return 5 * n * math.Log2(n)
	case "mixed-radix":
		return 8 * n * math.Log2(n)
	default: // bluestein: three power-of-two FFTs of ~2N plus pointwise work
		m := float64(nextPow2(2*p.N - 1))
		return 3*5*m*math.Log2(m) + 14*n
	}
}

func nextPow2(n int) int {
	m := 1
	for m < n {
		m <<= 1
	}
	return m
}

// RFFT computes the FFT of real input, returning the full complex
// spectrum (length len(in)).
func RFFT(in []float64) []complex128 {
	c := make([]complex128, len(in))
	for i, v := range in {
		c[i] = complex(v, 0)
	}
	return MixedRadix(c, Forward)
}

// IRFFT computes the inverse FFT of a spectrum and returns the real parts,
// normalized by 1/N.
func IRFFT(in []complex128) []float64 {
	c := MixedRadix(in, Inverse)
	Normalize(c)
	out := make([]float64, len(c))
	for i, v := range c {
		out[i] = real(v)
	}
	return out
}

// Convolve computes the circular convolution of a and b (equal lengths)
// via the frequency domain.
func Convolve(a, b []complex128) ([]complex128, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("fft: convolve length mismatch %d vs %d", len(a), len(b))
	}
	fa := MixedRadix(a, Forward)
	fb := MixedRadix(b, Forward)
	for i := range fa {
		fa[i] *= fb[i]
	}
	out := MixedRadix(fa, Inverse)
	Normalize(out)
	return out, nil
}

// MaxError returns the maximum elementwise magnitude difference between
// two complex slices.
func MaxError(a, b []complex128) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	worst := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}
