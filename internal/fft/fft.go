// Package fft is a from-scratch FFT library. It serves three roles in the
// FACC reproduction: it is the functional model behind the simulated
// hardware accelerators (FFTA, PowerQuad), it is the "optimized software
// library" compilation target standing in for FFTW, and it provides the
// reference transforms that IO-based generate-and-test compares against.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// Direction selects the transform sign convention.
type Direction int

// Transform directions. Forward uses exp(-2πi jk/n), Inverse exp(+2πi jk/n).
const (
	Forward Direction = iota
	Inverse
)

func (d Direction) String() string {
	if d == Inverse {
		return "inverse"
	}
	return "forward"
}

// sign returns the exponent sign for the direction.
func (d Direction) sign() float64 {
	if d == Inverse {
		return 1
	}
	return -1
}

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool { return n > 0 && n&(n-1) == 0 }

// Log2 returns floor(log2(n)).
func Log2(n int) int { return bits.Len(uint(n)) - 1 }

// DFT computes the O(n²) discrete Fourier transform — the reference all
// fast algorithms are validated against.
func DFT(in []complex128, dir Direction) []complex128 {
	n := len(in)
	out := make([]complex128, n)
	s := dir.sign()
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			angle := s * 2 * math.Pi * float64(j) * float64(k) / float64(n)
			sum += in[j] * cmplx.Exp(complex(0, angle))
		}
		out[k] = sum
	}
	return out
}

// BitReverse permutes x in place by bit-reversed index. len(x) must be a
// power of two.
func BitReverse(x []complex128) {
	n := len(x)
	shift := 64 - uint(Log2(n))
	for i := range x {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
}

// twiddles returns the n/2 twiddle factors for a size-n stage.
func twiddles(n int, dir Direction) []complex128 {
	w := make([]complex128, n/2)
	s := dir.sign()
	for k := range w {
		angle := s * 2 * math.Pi * float64(k) / float64(n)
		w[k] = cmplx.Exp(complex(0, angle))
	}
	return w
}

// Radix2 computes an in-place iterative radix-2 FFT. len(x) must be a
// power of two. No normalization is applied in either direction.
func Radix2(x []complex128, dir Direction) error {
	n := len(x)
	if !IsPowerOfTwo(n) {
		return fmt.Errorf("fft: radix-2 requires power-of-two length, got %d", n)
	}
	if n <= 1 {
		return nil
	}
	BitReverse(x)
	w := twiddles(n, dir)
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := n / size
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				tw := w[k*step]
				u := x[start+k]
				v := x[start+k+half] * tw
				x[start+k] = u + v
				x[start+k+half] = u - v
			}
		}
	}
	return nil
}

// Recursive computes an out-of-place recursive (Cooley-Tukey) FFT for
// power-of-two lengths — kept as an independent implementation for tests.
func Recursive(in []complex128, dir Direction) ([]complex128, error) {
	n := len(in)
	if !IsPowerOfTwo(n) {
		return nil, fmt.Errorf("fft: recursive FFT requires power-of-two length, got %d", n)
	}
	out := make([]complex128, n)
	copy(out, in)
	recurse(out, dir)
	return out, nil
}

func recurse(x []complex128, dir Direction) {
	n := len(x)
	if n <= 1 {
		return
	}
	even := make([]complex128, n/2)
	odd := make([]complex128, n/2)
	for i := 0; i < n/2; i++ {
		even[i] = x[2*i]
		odd[i] = x[2*i+1]
	}
	recurse(even, dir)
	recurse(odd, dir)
	s := dir.sign()
	for k := 0; k < n/2; k++ {
		angle := s * 2 * math.Pi * float64(k) / float64(n)
		t := cmplx.Exp(complex(0, angle)) * odd[k]
		x[k] = even[k] + t
		x[k+n/2] = even[k] - t
	}
}

// smallPrimes are the radices the mixed-radix engine handles directly.
var smallPrimes = []int{2, 3, 5, 7}

// factorize splits n into the supported radices; ok is false if a factor
// outside the radix set remains (callers fall back to Bluestein).
func factorize(n int) (factors []int, ok bool) {
	for _, p := range smallPrimes {
		for n%p == 0 {
			factors = append(factors, p)
			n /= p
		}
	}
	return factors, n == 1
}

// HasSmallFactors reports whether n factors entirely into {2,3,5,7}.
func HasSmallFactors(n int) bool {
	_, ok := factorize(n)
	return ok
}

// MixedRadix computes an FFT of any length whose factors are in {2,3,5,7}
// using recursive Cooley-Tukey decomposition; other lengths use Bluestein.
func MixedRadix(in []complex128, dir Direction) []complex128 {
	n := len(in)
	if n <= 1 {
		out := make([]complex128, n)
		copy(out, in)
		return out
	}
	if IsPowerOfTwo(n) {
		out := make([]complex128, n)
		copy(out, in)
		// Radix2 cannot fail on a power-of-two length.
		_ = Radix2(out, dir)
		return out
	}
	if !HasSmallFactors(n) {
		return Bluestein(in, dir)
	}
	return mixedRecurse(in, dir)
}

func mixedRecurse(in []complex128, dir Direction) []complex128 {
	n := len(in)
	if n == 1 {
		return []complex128{in[0]}
	}
	r := 0
	for _, p := range smallPrimes {
		if n%p == 0 {
			r = p
			break
		}
	}
	if r == 0 {
		// Prime length beyond the radix set.
		return DFT(in, dir)
	}
	m := n / r
	// Decimate into r interleaved sub-sequences.
	subs := make([][]complex128, r)
	for q := 0; q < r; q++ {
		sub := make([]complex128, m)
		for i := 0; i < m; i++ {
			sub[i] = in[i*r+q]
		}
		subs[q] = mixedRecurse(sub, dir)
	}
	s := dir.sign()
	out := make([]complex128, n)
	// Combine: X[k] = Σ_q W_n^{qk} · Sub_q[k mod m]
	for k := 0; k < n; k++ {
		var sum complex128
		for q := 0; q < r; q++ {
			angle := s * 2 * math.Pi * float64(q*k) / float64(n)
			sum += cmplx.Exp(complex(0, angle)) * subs[q][k%m]
		}
		out[k] = sum
	}
	return out
}

// Bluestein computes an FFT of arbitrary length n via the chirp-z
// transform, using power-of-two convolutions internally.
func Bluestein(in []complex128, dir Direction) []complex128 {
	n := len(in)
	if n <= 1 {
		out := make([]complex128, n)
		copy(out, in)
		return out
	}
	s := dir.sign()
	// chirp[k] = exp(s·πi k²/n)
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		// k² mod 2n avoids precision loss for large k.
		k2 := (int64(k) * int64(k)) % int64(2*n)
		angle := s * math.Pi * float64(k2) / float64(n)
		chirp[k] = cmplx.Exp(complex(0, angle))
	}
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = in[k] * chirp[k]
		b[k] = cmplx.Conj(chirp[k])
	}
	for k := 1; k < n; k++ {
		b[m-k] = cmplx.Conj(chirp[k])
	}
	// Convolve via power-of-two FFTs.
	_ = Radix2(a, Forward)
	_ = Radix2(b, Forward)
	for i := range a {
		a[i] *= b[i]
	}
	_ = Radix2(a, Inverse)
	out := make([]complex128, n)
	scale := complex(1/float64(m), 0)
	for k := 0; k < n; k++ {
		out[k] = a[k] * scale * chirp[k]
	}
	return out
}

// Normalize divides x by len(x) in place (the conventional inverse-FFT
// scaling).
func Normalize(x []complex128) {
	s := complex(1/float64(len(x)), 0)
	for i := range x {
		x[i] *= s
	}
}

// Scale multiplies x by f in place.
func Scale(x []complex128, f float64) {
	c := complex(f, 0)
	for i := range x {
		x[i] *= c
	}
}

// BitReversedCopy returns x permuted into bit-reversed order (some
// hardware pipelines deliver results this way).
func BitReversedCopy(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	BitReverse(out)
	return out
}
