package fft

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randComplex(rng *rand.Rand, n int) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return out
}

func TestIsPowerOfTwo(t *testing.T) {
	for _, n := range []int{1, 2, 4, 64, 1024, 65536} {
		if !IsPowerOfTwo(n) {
			t.Errorf("IsPowerOfTwo(%d) = false", n)
		}
	}
	for _, n := range []int{0, -4, 3, 6, 12, 100, 1000} {
		if IsPowerOfTwo(n) {
			t.Errorf("IsPowerOfTwo(%d) = true", n)
		}
	}
}

func TestDFTKnownValues(t *testing.T) {
	// DFT of an impulse is all ones.
	in := []complex128{1, 0, 0, 0}
	out := DFT(in, Forward)
	for i, v := range out {
		if math.Abs(real(v)-1) > 1e-12 || math.Abs(imag(v)) > 1e-12 {
			t.Errorf("out[%d] = %v, want 1", i, v)
		}
	}
	// DFT of constant c is (n*c, 0, 0, ...).
	in = []complex128{2, 2, 2, 2}
	out = DFT(in, Forward)
	if math.Abs(real(out[0])-8) > 1e-12 {
		t.Errorf("out[0] = %v, want 8", out[0])
	}
	for i := 1; i < 4; i++ {
		if math.Abs(real(out[i])) > 1e-12 || math.Abs(imag(out[i])) > 1e-12 {
			t.Errorf("out[%d] = %v, want 0", i, out[i])
		}
	}
}

func TestRadix2MatchesDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256, 1024} {
		in := randComplex(rng, n)
		want := DFT(in, Forward)
		got := make([]complex128, n)
		copy(got, in)
		if err := Radix2(got, Forward); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if e := MaxError(got, want); e > 1e-8*float64(n) {
			t.Errorf("n=%d: max error %g", n, e)
		}
	}
}

func TestRadix2RejectsNonPow2(t *testing.T) {
	if err := Radix2(make([]complex128, 12), Forward); err == nil {
		t.Error("expected error for n=12")
	}
}

func TestRecursiveMatchesDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{2, 8, 32, 128} {
		in := randComplex(rng, n)
		want := DFT(in, Forward)
		got, err := Recursive(in, Forward)
		if err != nil {
			t.Fatal(err)
		}
		if e := MaxError(got, want); e > 1e-9*float64(n) {
			t.Errorf("n=%d: max error %g", n, e)
		}
	}
}

func TestMixedRadixMatchesDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 3, 5, 6, 7, 9, 12, 15, 20, 21, 35, 36, 60, 100, 120, 210} {
		in := randComplex(rng, n)
		want := DFT(in, Forward)
		got := MixedRadix(in, Forward)
		if e := MaxError(got, want); e > 1e-8*float64(n) {
			t.Errorf("n=%d: max error %g", n, e)
		}
	}
}

func TestBluesteinPrimeSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{11, 13, 17, 31, 97, 101, 257} {
		in := randComplex(rng, n)
		want := DFT(in, Forward)
		got := Bluestein(in, Forward)
		if e := MaxError(got, want); e > 1e-7*float64(n) {
			t.Errorf("n=%d: max error %g", n, e)
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{4, 12, 13, 64, 100} {
		in := randComplex(rng, n)
		fwd := MixedRadix(in, Forward)
		back := MixedRadix(fwd, Inverse)
		Normalize(back)
		if e := MaxError(back, in); e > 1e-9*float64(n) {
			t.Errorf("n=%d: roundtrip error %g", n, e)
		}
	}
}

func TestBitReverseInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	in := randComplex(rng, 64)
	x := append([]complex128(nil), in...)
	BitReverse(x)
	BitReverse(x)
	if e := MaxError(x, in); e != 0 {
		t.Errorf("double bit-reverse changed data: %g", e)
	}
	// Spot-check the permutation for n=8: index 1 (001) <-> 4 (100).
	y := []complex128{0, 1, 2, 3, 4, 5, 6, 7}
	BitReverse(y)
	want := []complex128{0, 4, 2, 6, 1, 5, 3, 7}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("BitReverse(0..7) = %v, want %v", y, want)
		}
	}
}

// Property: the DFT is linear. Uses testing/quick over random scales.
func TestPropertyLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(ar, ai, br, bi float64) bool {
		n := 32
		x := randComplex(rng, n)
		y := randComplex(rng, n)
		a := complex(math.Mod(ar, 10), math.Mod(ai, 10))
		b := complex(math.Mod(br, 10), math.Mod(bi, 10))
		combo := make([]complex128, n)
		for i := range combo {
			combo[i] = a*x[i] + b*y[i]
		}
		fx := MixedRadix(x, Forward)
		fy := MixedRadix(y, Forward)
		fc := MixedRadix(combo, Forward)
		for i := range fc {
			want := a*fx[i] + b*fy[i]
			if d := fc[i] - want; math.Hypot(real(d), imag(d)) > 1e-7*(1+math.Hypot(real(want), imag(want))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: Parseval's theorem — energy is preserved up to factor n.
func TestPropertyParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := func(seed int64) bool {
		n := []int{8, 12, 17, 64}[int(uint64(seed)%4)]
		in := randComplex(rng, n)
		out := MixedRadix(in, Forward)
		var et, ef float64
		for i := range in {
			et += real(in[i])*real(in[i]) + imag(in[i])*imag(in[i])
			ef += real(out[i])*real(out[i]) + imag(out[i])*imag(out[i])
		}
		return math.Abs(ef-float64(n)*et) <= 1e-6*(1+ef)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: time shift corresponds to frequency-domain phase rotation.
func TestPropertyShiftTheorem(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 16
	in := randComplex(rng, n)
	shifted := make([]complex128, n)
	for i := range shifted {
		shifted[i] = in[(i+1)%n]
	}
	fin := MixedRadix(in, Forward)
	fshift := MixedRadix(shifted, Forward)
	for k := 0; k < n; k++ {
		angle := 2 * math.Pi * float64(k) / float64(n)
		want := fin[k] * complex(math.Cos(angle), math.Sin(angle))
		if d := fshift[k] - want; math.Hypot(real(d), imag(d)) > 1e-9 {
			t.Fatalf("shift theorem violated at k=%d: %v vs %v", k, fshift[k], want)
		}
	}
}

func TestPlanAlgorithmSelection(t *testing.T) {
	cases := map[int]string{64: "radix2", 12: "mixed-radix", 17: "bluestein", 1024: "radix2", 60: "mixed-radix"}
	for n, want := range cases {
		p, err := NewPlan(n, Forward)
		if err != nil {
			t.Fatal(err)
		}
		if p.Algorithm() != want {
			t.Errorf("n=%d: algorithm %s, want %s", n, p.Algorithm(), want)
		}
	}
	if _, err := NewPlan(0, Forward); err == nil {
		t.Error("expected error for n=0")
	}
}

func TestPlanExecute(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, n := range []int{8, 12, 17, 256} {
		p, err := NewPlan(n, Forward)
		if err != nil {
			t.Fatal(err)
		}
		in := randComplex(rng, n)
		out := make([]complex128, n)
		if err := p.Execute(in, out); err != nil {
			t.Fatal(err)
		}
		want := DFT(in, Forward)
		if e := MaxError(out, want); e > 1e-7*float64(n) {
			t.Errorf("n=%d: error %g", n, e)
		}
	}
}

func TestPlanExecuteInPlace(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 64
	p, _ := NewPlan(n, Forward)
	x := randComplex(rng, n)
	want := DFT(x, Forward)
	if err := p.Execute(x, x); err != nil {
		t.Fatal(err)
	}
	if e := MaxError(x, want); e > 1e-8*float64(n) {
		t.Errorf("in-place error %g", e)
	}
}

func TestPlanNormalized(t *testing.T) {
	n := 16
	p, _ := NewPlan(n, Inverse)
	p.Norm = true
	rng := rand.New(rand.NewSource(12))
	in := randComplex(rng, n)
	fwd := MixedRadix(in, Forward)
	back := make([]complex128, n)
	if err := p.Execute(fwd, back); err != nil {
		t.Fatal(err)
	}
	if e := MaxError(back, in); e > 1e-9*float64(n) {
		t.Errorf("normalized inverse error %g", e)
	}
}

func TestPlanLengthMismatch(t *testing.T) {
	p, _ := NewPlan(8, Forward)
	if err := p.Execute(make([]complex128, 4), make([]complex128, 8)); err == nil {
		t.Error("expected length error")
	}
}

func TestRFFTConjugateSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 32
	in := make([]float64, n)
	for i := range in {
		in[i] = rng.NormFloat64()
	}
	spec := RFFT(in)
	for k := 1; k < n/2; k++ {
		a, b := spec[k], spec[n-k]
		if math.Abs(real(a)-real(b)) > 1e-9 || math.Abs(imag(a)+imag(b)) > 1e-9 {
			t.Fatalf("spectrum not conjugate-symmetric at k=%d", k)
		}
	}
	back := IRFFT(spec)
	for i := range in {
		if math.Abs(back[i]-in[i]) > 1e-9 {
			t.Fatalf("IRFFT roundtrip failed at %d: %g vs %g", i, back[i], in[i])
		}
	}
}

func TestConvolveMatchesDirect(t *testing.T) {
	a := []complex128{1, 2, 3, 0, 0, 0, 0, 0}
	b := []complex128{4, 5, 0, 0, 0, 0, 0, 0}
	got, err := Convolve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Direct circular convolution.
	n := len(a)
	want := make([]complex128, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want[(i+j)%n] += a[i] * b[j]
		}
	}
	if e := MaxError(got, want); e > 1e-9 {
		t.Errorf("convolution error %g", e)
	}
	if _, err := Convolve(a, b[:4]); err == nil {
		t.Error("expected length mismatch error")
	}
}

func TestBitReversedCopy(t *testing.T) {
	x := []complex128{0, 1, 2, 3}
	y := BitReversedCopy(x)
	if x[1] != 1 {
		t.Error("input mutated")
	}
	if y[1] != 2 || y[2] != 1 {
		t.Errorf("reversed = %v", y)
	}
}

func TestFlopEstimateMonotonic(t *testing.T) {
	p64, _ := NewPlan(64, Forward)
	p1024, _ := NewPlan(1024, Forward)
	if p64.FlopEstimate() >= p1024.FlopEstimate() {
		t.Error("flop estimate not monotonic in n")
	}
	p17, _ := NewPlan(17, Forward)
	p16, _ := NewPlan(16, Forward)
	if p17.FlopEstimate() <= p16.FlopEstimate() {
		t.Error("bluestein should cost more than radix-2 of similar size")
	}
}

func TestHasSmallFactors(t *testing.T) {
	for _, n := range []int{2, 6, 30, 210, 360} {
		if !HasSmallFactors(n) {
			t.Errorf("HasSmallFactors(%d) = false", n)
		}
	}
	for _, n := range []int{11, 13, 22, 143} {
		if HasSmallFactors(n) {
			t.Errorf("HasSmallFactors(%d) = true", n)
		}
	}
}

func TestScaleAndNormalize(t *testing.T) {
	x := []complex128{2, 4}
	Scale(x, 0.5)
	if x[0] != 1 || x[1] != 2 {
		t.Errorf("Scale: %v", x)
	}
	y := []complex128{4, 4, 4, 4}
	Normalize(y)
	if y[0] != 1 {
		t.Errorf("Normalize: %v", y)
	}
}

func BenchmarkRadix2_1024(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	in := randComplex(rng, 1024)
	x := make([]complex128, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(x, in)
		_ = Radix2(x, Forward)
	}
}

func BenchmarkPlanExecute_1024(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	in := randComplex(rng, 1024)
	out := make([]complex128, 1024)
	p, _ := NewPlan(1024, Forward)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Execute(in, out)
	}
}

func BenchmarkBluestein_1000(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	in := randComplex(rng, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Bluestein(in, Forward)
	}
}
