package interp

import (
	"strings"
	"testing"

	"facc/internal/minic"
)

func TestUnsignedWraparound(t *testing.T) {
	m := run(t, `
unsigned int wrap(unsigned int a, unsigned int b) { return a + b; }
unsigned int shift(unsigned int a) { return a >> 1; }
`)
	v, err := m.CallNamed("wrap", []Value{
		{K: VInt, T: minic.UInt, I: 4294967295},
		{K: VInt, T: minic.UInt, I: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Int() != 1 {
		t.Errorf("0xFFFFFFFF + 2 = %d, want 1 (uint32 wrap)", v.Int())
	}
	// Unsigned right shift must be logical, not arithmetic.
	v, err = m.CallNamed("shift", []Value{{K: VInt, T: minic.UInt, I: 0x80000000}})
	if err != nil {
		t.Fatal(err)
	}
	if v.Int() != 0x40000000 {
		t.Errorf("0x80000000u >> 1 = %#x, want 0x40000000", v.Int())
	}
}

func TestSignedCharTruncation(t *testing.T) {
	m := run(t, `char narrow(int x) { return (char)x; }`)
	v, err := m.CallNamed("narrow", []Value{IntValue(200)})
	if err != nil {
		t.Fatal(err)
	}
	if v.Int() != -56 {
		t.Errorf("(char)200 = %d, want -56", v.Int())
	}
}

func TestPrintfFloatFormats(t *testing.T) {
	m := run(t, `
void f(void) {
    printf("%e|", 12345.678);
    printf("%g|", 0.00015);
    printf("%.3f|", 2.0 / 3.0);
    printf("%10.2f|", 3.14159);
    printf("%ld|", 123456789);
    printf("%x|", 255);
    printf("%u|", 7);
}`)
	if _, err := m.CallNamed("f", nil); err != nil {
		t.Fatal(err)
	}
	out := m.Output()
	for _, w := range []string{
		"1.234568e+04|", "0.00015|", "0.667|", "      3.14|", "123456789|", "ff|", "7|",
	} {
		if !strings.Contains(out, w) {
			t.Errorf("printf output %q missing %q", out, w)
		}
	}
}

func TestGlobalsInitializedInOrder(t *testing.T) {
	m := run(t, `
int base = 10;
int derived = 0;
int get(void) { return base; }
`)
	v, err := m.CallNamed("get", nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.Int() != 10 {
		t.Errorf("global init = %d", v.Int())
	}
}

func TestNegativeModuloMatchesC(t *testing.T) {
	m := run(t, `int f(int a, int b) { return a % b; }`)
	cases := [][3]int64{{-7, 3, -1}, {7, -3, 1}, {-7, -3, -1}}
	for _, c := range cases {
		v, err := m.CallNamed("f", []Value{IntValue(c[0]), IntValue(c[1])})
		if err != nil {
			t.Fatal(err)
		}
		if v.Int() != c[2] {
			t.Errorf("%d %% %d = %d, want %d", c[0], c[1], v.Int(), c[2])
		}
	}
}

func TestStringBuiltins(t *testing.T) {
	m := run(t, `
int f(void) {
    puts("hello");
    putchar('!');
    return 0;
}`)
	if _, err := m.CallNamed("f", nil); err != nil {
		t.Fatal(err)
	}
	if m.Output() != "hello\n!" {
		t.Errorf("output = %q", m.Output())
	}
}

func TestReallocPreservesPrefix(t *testing.T) {
	m := run(t, `
int f(void) {
    int* p = (int*)malloc(2 * sizeof(int));
    p[0] = 7;
    p[1] = 8;
    int* q = (int*)realloc((void*)p, 4 * sizeof(int));
    q[2] = 9;
    return q[0] * 100 + q[1] * 10 + q[2];
}`)
	v, err := m.CallNamed("f", nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.Int() != 789 {
		t.Errorf("realloc contents = %d, want 789", v.Int())
	}
}

func TestStaticLocalsPersistAcrossCalls(t *testing.T) {
	m := run(t, `
int counter(void) {
    static int calls = 0;
    calls++;
    return calls;
}
int cached_square(int x) {
    static int have = 0;
    static int key = 0;
    static int val = 0;
    if (have && key == x) {
        return val;
    }
    have = 1;
    key = x;
    val = x * x;
    return val;
}`)
	for want := int64(1); want <= 3; want++ {
		v, err := m.CallNamed("counter", nil)
		if err != nil {
			t.Fatal(err)
		}
		if v.Int() != want {
			t.Fatalf("call %d returned %d", want, v.Int())
		}
	}
	// The memo cache must survive between calls.
	if v, _ := m.CallNamed("cached_square", []Value{IntValue(9)}); v.Int() != 81 {
		t.Fatal("first memo call")
	}
	if v, _ := m.CallNamed("cached_square", []Value{IntValue(9)}); v.Int() != 81 {
		t.Fatal("cached memo call")
	}
}

func TestStaticLocalArrayInitializedOnce(t *testing.T) {
	m := run(t, `
int next(void) {
    static int ring[3] = {10, 20, 30};
    static int idx = 0;
    int v = ring[idx];
    ring[idx] = v + 1;
    idx = (idx + 1) % 3;
    return v;
}`)
	want := []int64{10, 20, 30, 11, 21}
	for i, w := range want {
		v, err := m.CallNamed("next", nil)
		if err != nil {
			t.Fatal(err)
		}
		if v.Int() != w {
			t.Fatalf("call %d = %d, want %d", i, v.Int(), w)
		}
	}
}

func TestNestedStructs(t *testing.T) {
	m := run(t, `
typedef struct { double re; double im; } cnum;
typedef struct { cnum value; int tag; } tagged;

double f(void) {
    tagged arr[3];
    for (int i = 0; i < 3; i++) {
        arr[i].value.re = (double)i;
        arr[i].value.im = (double)(i * 10);
        arr[i].tag = i + 100;
    }
    tagged t = arr[2];
    t.value.re = 99.0; // copy must not alias the array
    return arr[2].value.re * 1000.0 + arr[2].value.im + (double)arr[2].tag;
}`)
	v, err := m.CallNamed("f", nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.Float() != 2000.0+20.0+102.0 {
		t.Errorf("nested struct access = %g, want 2122", v.Float())
	}
}

func TestPointerToNestedStructField(t *testing.T) {
	m := run(t, `
typedef struct { double re; double im; } cnum;
typedef struct { cnum value; int tag; } tagged;
double f(tagged* p) {
    cnum* inner = &p->value;
    inner->im = 7.5;
    return p->value.im;
}`)
	var structType *minic.Type
	for _, td := range m.File.Typedefs {
		if td.Name == "tagged" {
			structType = td.Type
		}
	}
	arr, err := m.NewArray("p", structType, 1)
	if err != nil {
		t.Fatal(err)
	}
	v, err := m.CallNamed("f", []Value{arr})
	if err != nil {
		t.Fatal(err)
	}
	if v.Float() != 7.5 {
		t.Errorf("through-pointer nested write = %g", v.Float())
	}
}

func TestBuiltinFaultPaths(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want FaultKind
	}{
		{"memcpy-oob", `
void f(void) {
    int a[2];
    int b[8];
    memcpy(a, b, 8 * sizeof(int));
}`, FaultOutOfBounds},
		{"memcpy-misaligned", `
void f(void) {
    int a[4];
    int b[4];
    memcpy(a, b, 5);
}`, FaultBadPointerOp},
		{"memset-nonzero", `
void f(void) {
    int a[4];
    memset(a, 1, 4 * sizeof(int));
}`, FaultUnsupported},
		{"free-interior", `
void f(void) {
    int* p = (int*)malloc(4 * sizeof(int));
    free(p + 1);
}`, FaultBadPointerOp},
		{"negative-malloc", `
void f(void) {
    void* p = malloc(-8);
}`, FaultOutOfBounds},
		{"assert-fail", `
void f(void) {
    assert(1 == 2);
}`, FaultAssert},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := run(t, c.src)
			_, err := m.CallNamed("f", nil)
			if FaultOf(err) != c.want {
				t.Errorf("fault = %v (%v), want %v", FaultOf(err), err, c.want)
			}
		})
	}
}
