// Package interp is a bounds-checked tree-walking interpreter for MiniC.
// It plays two roles in FACC: it executes user FFT code during IO-based
// generate-and-test (with AddressSanitizer-style fault detection standing
// in for the paper's ASan runs), and it counts executed operations to feed
// the platform performance models used by the evaluation harness.
package interp

import (
	"fmt"
	"math"

	"facc/internal/minic"
)

// ValueKind discriminates Value.
type ValueKind int

// Value kinds.
const (
	VVoid ValueKind = iota
	VInt
	VFloat
	VComplex
	VPointer
	VStruct
)

// Value is a runtime MiniC value. Struct values hold their flattened
// scalar leaves in Fields, mirroring memory layout.
type Value struct {
	K ValueKind
	T *minic.Type

	I      int64
	F      float64
	C      complex128
	P      Pointer
	Fields []Value
}

// IntValue returns an int-typed value.
func IntValue(i int64) Value { return Value{K: VInt, T: minic.Int, I: i} }

// LongValue returns a long-typed value.
func LongValue(i int64) Value { return Value{K: VInt, T: minic.Long, I: i} }

// FloatValue returns a value of the given real floating type. float values
// are rounded through float32 to model single-precision hardware.
func FloatValue(f float64, t *minic.Type) Value {
	if t.Kind == minic.TFloat {
		f = float64(float32(f))
	}
	return Value{K: VFloat, T: t, F: f}
}

// ComplexValue returns a complex value of the given complex type, rounding
// through complex64 for float _Complex.
func ComplexValue(c complex128, t *minic.Type) Value {
	if t.Kind == minic.TComplexFloat {
		c = complex128(complex64(c))
	}
	return Value{K: VComplex, T: t, C: c}
}

// PointerValue wraps a pointer.
func PointerValue(p Pointer, t *minic.Type) Value {
	return Value{K: VPointer, T: t, P: p}
}

// VoidValue is the result of void expressions.
func VoidValue() Value { return Value{K: VVoid, T: minic.Void} }

// IsZero reports whether the value is zero/null (for conditions).
func (v Value) IsZero() bool {
	switch v.K {
	case VInt:
		return v.I == 0
	case VFloat:
		return v.F == 0
	case VComplex:
		return v.C == 0
	case VPointer:
		return v.P.IsNull()
	default:
		return true
	}
}

// Float returns the value as a float64 (integers widen).
func (v Value) Float() float64 {
	switch v.K {
	case VFloat:
		return v.F
	case VInt:
		return float64(v.I)
	case VComplex:
		return real(v.C)
	default:
		return 0
	}
}

// Complex returns the value as a complex128.
func (v Value) Complex() complex128 {
	switch v.K {
	case VComplex:
		return v.C
	case VFloat:
		return complex(v.F, 0)
	case VInt:
		return complex(float64(v.I), 0)
	default:
		return 0
	}
}

// Int returns the value as an int64 (floats truncate toward zero).
func (v Value) Int() int64 {
	switch v.K {
	case VInt:
		return v.I
	case VFloat:
		return int64(v.F)
	case VComplex:
		return int64(real(v.C))
	default:
		return 0
	}
}

func (v Value) String() string {
	switch v.K {
	case VVoid:
		return "void"
	case VInt:
		return fmt.Sprintf("%d", v.I)
	case VFloat:
		return fmt.Sprintf("%g", v.F)
	case VComplex:
		return fmt.Sprintf("(%g%+gi)", real(v.C), imag(v.C))
	case VPointer:
		return v.P.String()
	case VStruct:
		return fmt.Sprintf("struct{%d leaves}", len(v.Fields))
	default:
		return "?"
	}
}

// Convert coerces v to type t following C conversion rules. Pointer/int
// conversions are allowed; struct conversions require identical types.
func Convert(v Value, t *minic.Type) (Value, error) {
	switch {
	case t.Kind == minic.TVoid:
		return VoidValue(), nil
	case t.IsInteger():
		var i int64
		switch v.K {
		case VInt:
			i = v.I
		case VFloat:
			i = int64(v.F)
		case VComplex:
			i = int64(real(v.C))
		case VPointer:
			i = v.P.AsInt()
		default:
			return Value{}, fmt.Errorf("cannot convert %s to %s", v.T, t)
		}
		return truncInt(i, t), nil
	case t.IsFloat():
		switch v.K {
		case VInt, VFloat, VComplex:
			return FloatValue(v.Float(), t), nil
		default:
			return Value{}, fmt.Errorf("cannot convert %s to %s", v.T, t)
		}
	case t.IsComplex():
		switch v.K {
		case VInt, VFloat, VComplex:
			return ComplexValue(v.Complex(), t), nil
		default:
			return Value{}, fmt.Errorf("cannot convert %s to %s", v.T, t)
		}
	case t.Kind == minic.TPointer:
		switch v.K {
		case VPointer:
			p := v.P
			// Retyping a pointer changes its view; void* keeps the
			// original view so round-trips through void* are lossless.
			if t.Elem.Kind != minic.TVoid {
				p.Elem = t.Elem
			}
			return Value{K: VPointer, T: t, P: p}, nil
		case VInt:
			if v.I == 0 {
				return Value{K: VPointer, T: t, P: Pointer{}}, nil
			}
			return Value{}, fmt.Errorf("cannot convert non-zero integer %d to pointer", v.I)
		default:
			return Value{}, fmt.Errorf("cannot convert %s to %s", v.T, t)
		}
	case t.Kind == minic.TStruct:
		if v.K != VStruct {
			return Value{}, fmt.Errorf("cannot convert %s to %s", v.T, t)
		}
		out := v
		out.T = t
		return out, nil
	default:
		return Value{}, fmt.Errorf("cannot convert %s to %s", v.T, t)
	}
}

// truncInt narrows an integer to the width/signedness of t.
func truncInt(i int64, t *minic.Type) Value {
	switch t.Kind {
	case minic.TChar:
		if t.Unsigned {
			i = int64(uint8(i))
		} else {
			i = int64(int8(i))
		}
	case minic.TInt:
		if t.Unsigned {
			i = int64(uint32(i))
		} else {
			i = int64(int32(i))
		}
	}
	return Value{K: VInt, T: t, I: i}
}

// zeroValue builds the zero value for a scalar/pointer leaf type.
func zeroValue(t *minic.Type) Value {
	switch {
	case t.IsInteger():
		return Value{K: VInt, T: t}
	case t.IsFloat():
		return Value{K: VFloat, T: t}
	case t.IsComplex():
		return Value{K: VComplex, T: t}
	case t.Kind == minic.TPointer:
		return Value{K: VPointer, T: t}
	default:
		return Value{K: VVoid, T: t}
	}
}

// almostEqual compares floats with combined absolute/relative tolerance.
func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*scale
}
