package interp

import (
	"fmt"

	"facc/internal/minic"
)

// This file is the host-facing API used by FACC's generate-and-test engine
// and the benchmark harness to move data between Go and interpreted code.

// NewArray allocates an array of count elements of type elem and returns a
// pointer to its first element.
func (m *Machine) NewArray(name string, elem *minic.Type, count int) (Value, error) {
	if FlatSize(elem) == 0 {
		return Value{}, fmt.Errorf("interp: cannot allocate array of %s", elem)
	}
	a := m.NewAlloc(name, elem, count)
	return PointerValue(Pointer{Alloc: a, Elem: elem}, minic.PointerTo(elem)), nil
}

// SetFloatArray writes vals into the float/double array at p.
func (m *Machine) SetFloatArray(p Value, vals []float64) error {
	if p.K != VPointer {
		return fmt.Errorf("interp: SetFloatArray target is not a pointer")
	}
	ptr := p.P
	for i, v := range vals {
		cp := ptr
		cp.Off += i
		if err := m.StoreScalar(cp, FloatValue(v, minic.Double), minic.Pos{}); err != nil {
			return err
		}
	}
	return nil
}

// GetFloatArray reads n float values starting at p.
func (m *Machine) GetFloatArray(p Value, n int) ([]float64, error) {
	if p.K != VPointer {
		return nil, fmt.Errorf("interp: GetFloatArray source is not a pointer")
	}
	out := make([]float64, n)
	ptr := p.P
	for i := 0; i < n; i++ {
		cp := ptr
		cp.Off += i
		v, err := m.LoadScalar(cp, minic.Pos{})
		if err != nil {
			return nil, err
		}
		out[i] = v.Float()
	}
	return out, nil
}

// SetComplexArray writes complex values into an array of complex cells.
func (m *Machine) SetComplexArray(p Value, vals []complex128) error {
	if p.K != VPointer {
		return fmt.Errorf("interp: SetComplexArray target is not a pointer")
	}
	ptr := p.P
	for i, v := range vals {
		cp := ptr
		cp.Off += i
		if err := m.StoreScalar(cp, ComplexValue(v, minic.ComplexDouble), minic.Pos{}); err != nil {
			return err
		}
	}
	return nil
}

// GetComplexArray reads n complex values starting at p.
func (m *Machine) GetComplexArray(p Value, n int) ([]complex128, error) {
	if p.K != VPointer {
		return nil, fmt.Errorf("interp: GetComplexArray source is not a pointer")
	}
	out := make([]complex128, n)
	ptr := p.P
	for i := 0; i < n; i++ {
		cp := ptr
		cp.Off += i
		v, err := m.LoadScalar(cp, minic.Pos{})
		if err != nil {
			return nil, err
		}
		out[i] = v.Complex()
	}
	return out, nil
}

// SetStructComplexArray writes complex values into an array of two-float
// structs, using the given flattened field offsets for the real and
// imaginary parts.
func (m *Machine) SetStructComplexArray(p Value, vals []complex128, reOff, imOff int) error {
	if p.K != VPointer {
		return fmt.Errorf("interp: target is not a pointer")
	}
	per := FlatSize(p.P.Elem)
	base := p.P
	base.Elem = minic.Double
	for i, v := range vals {
		re := base
		re.Off = p.P.Off + i*per + reOff
		if err := m.StoreScalar(re, FloatValue(real(v), minic.Double), minic.Pos{}); err != nil {
			return err
		}
		im := base
		im.Off = p.P.Off + i*per + imOff
		if err := m.StoreScalar(im, FloatValue(imag(v), minic.Double), minic.Pos{}); err != nil {
			return err
		}
	}
	return nil
}

// GetStructComplexArray reads n complex values from an array of structs.
func (m *Machine) GetStructComplexArray(p Value, n, reOff, imOff int) ([]complex128, error) {
	if p.K != VPointer {
		return nil, fmt.Errorf("interp: source is not a pointer")
	}
	per := FlatSize(p.P.Elem)
	out := make([]complex128, n)
	base := p.P
	base.Elem = minic.Double
	for i := 0; i < n; i++ {
		re := base
		re.Off = p.P.Off + i*per + reOff
		rv, err := m.LoadScalar(re, minic.Pos{})
		if err != nil {
			return nil, err
		}
		im := base
		im.Off = p.P.Off + i*per + imOff
		iv, err := m.LoadScalar(im, minic.Pos{})
		if err != nil {
			return nil, err
		}
		out[i] = complex(rv.Float(), iv.Float())
	}
	return out, nil
}

// ComplexSlicesAlmostEqual compares two complex slices with the given
// relative/absolute tolerance.
func ComplexSlicesAlmostEqual(a, b []complex128, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !almostEqual(real(a[i]), real(b[i]), tol) || !almostEqual(imag(a[i]), imag(b[i]), tol) {
			return false
		}
	}
	return true
}

// FloatSlicesAlmostEqual compares two float slices with tolerance.
func FloatSlicesAlmostEqual(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !almostEqual(a[i], b[i], tol) {
			return false
		}
	}
	return true
}
