package interp

import (
	"math"
	"math/cmplx"
	"strings"
	"testing"

	"facc/internal/minic"
)

// run parses, checks and builds a machine for src.
func run(t *testing.T, src string) *Machine {
	t.Helper()
	f, err := minic.ParseAndCheck("test.c", src)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	m, err := NewMachine(f)
	if err != nil {
		t.Fatalf("machine: %v", err)
	}
	return m
}

// callInt runs fn and returns its int result.
func callInt(t *testing.T, m *Machine, fn string, args ...int64) int64 {
	t.Helper()
	vals := make([]Value, len(args))
	for i, a := range args {
		vals[i] = IntValue(a)
	}
	v, err := m.CallNamed(fn, vals)
	if err != nil {
		t.Fatalf("call %s: %v", fn, err)
	}
	return v.Int()
}

func callFloat(t *testing.T, m *Machine, fn string, args ...float64) float64 {
	t.Helper()
	vals := make([]Value, len(args))
	for i, a := range args {
		vals[i] = FloatValue(a, minic.Double)
	}
	v, err := m.CallNamed(fn, vals)
	if err != nil {
		t.Fatalf("call %s: %v", fn, err)
	}
	return v.Float()
}

func TestArithmetic(t *testing.T) {
	m := run(t, `
int calc(int a, int b) {
    return (a + b) * 2 - a / b + a % b;
}`)
	if got := callInt(t, m, "calc", 7, 3); got != 19 {
		t.Errorf("calc(7,3) = %d, want 19", got)
	}
}

func TestFloatArithmetic(t *testing.T) {
	m := run(t, `
double quad(double x) { return 2.0*x*x - 3.0*x + 1.0; }`)
	if got := callFloat(t, m, "quad", 2.0); got != 3.0 {
		t.Errorf("quad(2) = %g, want 3", got)
	}
}

func TestRecursionFib(t *testing.T) {
	m := run(t, `
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}`)
	if got := callInt(t, m, "fib", 15); got != 610 {
		t.Errorf("fib(15) = %d, want 610", got)
	}
}

func TestLoops(t *testing.T) {
	m := run(t, `
int sum_for(int n) {
    int s = 0;
    for (int i = 1; i <= n; i++) s += i;
    return s;
}
int sum_while(int n) {
    int s = 0, i = 1;
    while (i <= n) { s += i; i++; }
    return s;
}
int sum_do(int n) {
    int s = 0, i = 1;
    do { s += i; i++; } while (i <= n);
    return s;
}
int sum_wtb(int n) {
    int s = 0, i = 1;
    while (1) {
        if (i > n) break;
        s += i;
        i++;
    }
    return s;
}`)
	for _, fn := range []string{"sum_for", "sum_while", "sum_do", "sum_wtb"} {
		if got := callInt(t, m, fn, 10); got != 55 {
			t.Errorf("%s(10) = %d, want 55", fn, got)
		}
	}
}

func TestContinueAndNestedBreak(t *testing.T) {
	m := run(t, `
int f(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        if (i % 2 == 0) continue;
        for (int j = 0; j < n; j++) {
            if (j > i) break;
            s++;
        }
    }
    return s;
}`)
	// odd i in [0,6): i=1 -> j:0..1 (2), i=3 -> 4, i=5 -> 6 => 12
	if got := callInt(t, m, "f", 6); got != 12 {
		t.Errorf("f(6) = %d, want 12", got)
	}
}

func TestSwitchFallthrough(t *testing.T) {
	m := run(t, `
int f(int x) {
    int r = 0;
    switch (x) {
    case 1: r += 1;
    case 2: r += 2; break;
    case 3: r += 3; break;
    default: r = 100;
    }
    return r;
}`)
	cases := map[int64]int64{1: 3, 2: 2, 3: 3, 9: 100}
	for in, want := range cases {
		if got := callInt(t, m, "f", in); got != want {
			t.Errorf("f(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestArraysAndPointers(t *testing.T) {
	m := run(t, `
int sum(int* a, int n) {
    int s = 0;
    for (int i = 0; i < n; i++) s += a[i];
    return s;
}
int local_array(void) {
    int a[5];
    for (int i = 0; i < 5; i++) a[i] = i * i;
    return sum(a, 5);
}
int ptr_walk(void) {
    int a[4] = {1, 2, 3, 4};
    int* p = a;
    int* end = a + 4;
    int s = 0;
    while (p < end) s += *p++;
    return s;
}`)
	if got := callInt(t, m, "local_array"); got != 30 {
		t.Errorf("local_array() = %d, want 30", got)
	}
	if got := callInt(t, m, "ptr_walk"); got != 10 {
		t.Errorf("ptr_walk() = %d, want 10", got)
	}
}

func TestMultiDimArray(t *testing.T) {
	m := run(t, `
int f(void) {
    int g[3][4];
    for (int i = 0; i < 3; i++)
        for (int j = 0; j < 4; j++)
            g[i][j] = i * 10 + j;
    return g[2][3];
}`)
	if got := callInt(t, m, "f"); got != 23 {
		t.Errorf("f() = %d, want 23", got)
	}
}

func TestVLA(t *testing.T) {
	m := run(t, `
int f(int n) {
    int buf[n];
    for (int i = 0; i < n; i++) buf[i] = i;
    int s = 0;
    for (int i = 0; i < n; i++) s += buf[i];
    return s;
}`)
	if got := callInt(t, m, "f", 10); got != 45 {
		t.Errorf("f(10) = %d, want 45", got)
	}
}

func TestStructs(t *testing.T) {
	m := run(t, `
typedef struct { float re; float im; } cpx;

cpx cmul(cpx a, cpx b) {
    cpx r;
    r.re = a.re * b.re - a.im * b.im;
    r.im = a.re * b.im + a.im * b.re;
    return r;
}

float test(void) {
    cpx x;
    x.re = 1.0f; x.im = 2.0f;
    cpx y;
    y.re = 3.0f; y.im = 4.0f;
    cpx z = cmul(x, y);
    return z.re * 100.0f + z.im;
}`)
	// (1+2i)(3+4i) = -5 + 10i -> -500 + 10 = -490
	if got := callFloat(t, m, "test"); got != -490 {
		t.Errorf("test() = %g, want -490", got)
	}
}

func TestStructPointerAndArray(t *testing.T) {
	m := run(t, `
typedef struct { double re; double im; } cpx;

void conj_all(cpx* data, int n) {
    for (int i = 0; i < n; i++) {
        data[i].im = -data[i].im;
    }
}

double test(void) {
    cpx arr[3];
    for (int i = 0; i < 3; i++) { arr[i].re = i; arr[i].im = i + 1; }
    conj_all(arr, 3);
    cpx* p = &arr[2];
    return p->im;
}`)
	if got := callFloat(t, m, "test"); got != -3 {
		t.Errorf("test() = %g, want -3", got)
	}
}

func TestStructAssignmentCopies(t *testing.T) {
	m := run(t, `
typedef struct { int a; int b; } pair;
int f(void) {
    pair x;
    x.a = 1; x.b = 2;
    pair y = x;
    y.a = 100;
    return x.a;
}`)
	if got := callInt(t, m, "f"); got != 1 {
		t.Errorf("struct assignment aliased: got %d, want 1", got)
	}
}

func TestMallocFree(t *testing.T) {
	m := run(t, `
int f(int n) {
    int* buf = (int*)malloc(n * sizeof(int));
    for (int i = 0; i < n; i++) buf[i] = i * 2;
    int s = 0;
    for (int i = 0; i < n; i++) s += buf[i];
    free(buf);
    return s;
}`)
	if got := callInt(t, m, "f", 5); got != 20 {
		t.Errorf("f(5) = %d, want 20", got)
	}
}

func TestMallocStructArray(t *testing.T) {
	m := run(t, `
typedef struct { double re; double im; } cpx;
double f(int n) {
    cpx* v = (cpx*)malloc(n * sizeof(cpx));
    for (int i = 0; i < n; i++) { v[i].re = i; v[i].im = -i; }
    double s = 0;
    for (int i = 0; i < n; i++) s += v[i].re - v[i].im;
    free(v);
    return s;
}`)
	if got := callFloat(t, m, "f", 4); got != 12 { // sum 2i for i<4 = 12
		t.Errorf("f(4) = %g, want 12", got)
	}
}

func TestGlobalsAndMemoization(t *testing.T) {
	m := run(t, `
int cache_valid = 0;
int cache = 0;
int expensive(void) {
    if (cache_valid) return cache;
    cache = 42;
    cache_valid = 1;
    return cache;
}`)
	if got := callInt(t, m, "expensive"); got != 42 {
		t.Errorf("first call = %d", got)
	}
	// Global state survives across calls on the same machine.
	if got := callInt(t, m, "expensive"); got != 42 {
		t.Errorf("second call = %d", got)
	}
}

func TestGlobalArrayInitializer(t *testing.T) {
	m := run(t, `
double weights[4] = {0.5, 1.5, 2.5, 3.5};
double f(int i) { return weights[i]; }`)
	v, err := m.CallNamed("f", []Value{IntValue(2)})
	if err != nil {
		t.Fatal(err)
	}
	if v.Float() != 2.5 {
		t.Errorf("weights[2] = %g", v.Float())
	}
}

func TestMathBuiltins(t *testing.T) {
	m := run(t, `
double f(double x) { return sqrt(x) + sin(0.0) + pow(2.0, 3.0); }`)
	if got := callFloat(t, m, "f", 16.0); got != 12.0 {
		t.Errorf("f(16) = %g, want 12", got)
	}
}

func TestComplexBuiltins(t *testing.T) {
	m := run(t, `
#include <complex.h>
double f(double angle) {
    double complex z = cexp(angle * I);
    return creal(z) * creal(z) + cimag(z) * cimag(z);
}`)
	if got := callFloat(t, m, "f", 1.234); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("|e^ix|^2 = %g, want 1", got)
	}
}

func TestComplexArithmetic(t *testing.T) {
	m := run(t, `
#include <complex.h>
double complex mul(double complex a, double complex b) { return a * b; }`)
	a := ComplexValue(complex(1, 2), minic.ComplexDouble)
	b := ComplexValue(complex(3, 4), minic.ComplexDouble)
	v, err := m.CallNamed("mul", []Value{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if v.Complex() != complex(-5, 10) {
		t.Errorf("mul = %v, want (-5+10i)", v.Complex())
	}
}

func TestFloat32Rounding(t *testing.T) {
	m := run(t, `
float f(void) {
    float x = 16777216.0f; // 2^24: adding 1 is not representable in float32
    x = x + 1.0f;
    return x;
}`)
	if got := callFloat(t, m, "f"); got != 16777216.0 {
		t.Errorf("float32 rounding not modeled: got %g", got)
	}
}

func TestPrintfCapture(t *testing.T) {
	m := run(t, `
int f(void) {
    printf("x=%d y=%f s=%s c=%c\n", 42, 1.5, "hi", 'z');
    printf("%5d|%-5d|%05.1f\n", 7, 7, 2.25);
    return 0;
}`)
	callInt(t, m, "f")
	out := m.Output()
	if !strings.Contains(out, "x=42 y=1.500000 s=hi c=z") {
		t.Errorf("printf output = %q", out)
	}
	if !strings.Contains(out, "    7|7    |002.2") && !strings.Contains(out, "    7|7    |002.3") {
		t.Errorf("width formatting = %q", out)
	}
}

func TestFaultOutOfBounds(t *testing.T) {
	m := run(t, `
int f(void) {
    int a[4];
    return a[7];
}`)
	_, err := m.CallNamed("f", nil)
	if FaultOf(err) != FaultOutOfBounds {
		t.Errorf("err = %v, want out-of-bounds", err)
	}
}

func TestFaultOOBWrite(t *testing.T) {
	m := run(t, `
void f(int* a, int n) {
    for (int i = 0; i <= n; i++) a[i] = 0; // classic off-by-one
}`)
	arr, err := m.NewArray("buf", minic.Int, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.CallNamed("f", []Value{arr, IntValue(4)})
	if FaultOf(err) != FaultOutOfBounds {
		t.Errorf("err = %v, want out-of-bounds", err)
	}
}

func TestFaultNullDeref(t *testing.T) {
	m := run(t, `int f(int* p) { return *p; }`)
	null := PointerValue(Pointer{}, minic.PointerTo(minic.Int))
	_, err := m.CallNamed("f", []Value{null})
	if FaultOf(err) != FaultNullDeref {
		t.Errorf("err = %v, want null-deref", err)
	}
}

func TestFaultUseAfterFree(t *testing.T) {
	m := run(t, `
int f(void) {
    int* p = (int*)malloc(4 * sizeof(int));
    p[0] = 3;
    free(p);
    return p[0];
}`)
	_, err := m.CallNamed("f", nil)
	if FaultOf(err) != FaultUseAfterFree {
		t.Errorf("err = %v, want use-after-free", err)
	}
}

func TestFaultDoubleFree(t *testing.T) {
	m := run(t, `
void f(void) {
    int* p = (int*)malloc(8);
    free(p);
    free(p);
}`)
	_, err := m.CallNamed("f", nil)
	if FaultOf(err) != FaultDoubleFree {
		t.Errorf("err = %v, want double-free", err)
	}
}

func TestFaultDivZero(t *testing.T) {
	m := run(t, `int f(int a) { return 10 / a; }`)
	_, err := m.CallNamed("f", []Value{IntValue(0)})
	if FaultOf(err) != FaultDivZero {
		t.Errorf("err = %v, want division-by-zero", err)
	}
}

func TestFaultInfiniteLoopFuel(t *testing.T) {
	m := run(t, `void f(void) { while (1) { } }`)
	m.MaxSteps = 10000
	_, err := m.CallNamed("f", nil)
	if FaultOf(err) != FaultFuelExhausted {
		t.Errorf("err = %v, want fuel-exhausted", err)
	}
}

func TestFaultStackOverflow(t *testing.T) {
	m := run(t, `int f(int n) { return f(n + 1); }`)
	m.MaxDepth = 100
	_, err := m.CallNamed("f", []Value{IntValue(0)})
	if FaultOf(err) != FaultStackOverflow {
		t.Errorf("err = %v, want stack-overflow", err)
	}
}

func TestCounters(t *testing.T) {
	m := run(t, `
double f(double* a, int n) {
    double s = 0;
    for (int i = 0; i < n; i++) s += a[i] * a[i];
    return s;
}`)
	arr, err := m.NewArray("a", minic.Double, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetFloatArray(arr, []float64{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	m.Reset()
	v, err := m.CallNamed("f", []Value{arr, IntValue(8)})
	if err != nil {
		t.Fatal(err)
	}
	if v.Float() != 204 {
		t.Errorf("sum of squares = %g, want 204", v.Float())
	}
	c := m.Counters
	// 8 iterations x (1 mul + 1 add) = 16 float ops.
	if c.FloatOps != 16 {
		t.Errorf("FloatOps = %d, want 16", c.FloatOps)
	}
	if c.Loads == 0 || c.Stores == 0 || c.Branches == 0 {
		t.Errorf("counters not populated: %+v", c)
	}
}

func TestObserveHook(t *testing.T) {
	m := run(t, `
int f(int n) {
    int x = 0;
    for (int i = 0; i < n; i++) x = i * 2;
    return x;
}`)
	seen := map[string][]int64{}
	m.Observe = func(name string, v Value) {
		if v.K == VInt {
			seen[name] = append(seen[name], v.I)
		}
	}
	callInt(t, m, "f", 3)
	if got := seen["x"]; len(got) != 4 || got[3] != 4 {
		t.Errorf("observed x = %v", got)
	}
}

// TestInterpretedDFT cross-checks a MiniC DFT against a Go DFT.
func TestInterpretedDFT(t *testing.T) {
	m := run(t, `
#include <complex.h>
#include <math.h>
void dft(double complex* in, double complex* out, int n) {
    for (int k = 0; k < n; k++) {
        double complex sum = 0;
        for (int j = 0; j < n; j++) {
            double angle = -2.0 * M_PI * (double)j * (double)k / (double)n;
            sum += in[j] * cexp(angle * I);
        }
        out[k] = sum;
    }
}`)
	n := 8
	in := make([]complex128, n)
	for i := range in {
		in[i] = complex(float64(i)*0.7-1, float64(i%3)*0.3)
	}
	inArr, _ := m.NewArray("in", minic.ComplexDouble, n)
	outArr, _ := m.NewArray("out", minic.ComplexDouble, n)
	if err := m.SetComplexArray(inArr, in); err != nil {
		t.Fatal(err)
	}
	if _, err := m.CallNamed("dft", []Value{inArr, outArr, IntValue(int64(n))}); err != nil {
		t.Fatal(err)
	}
	got, err := m.GetComplexArray(outArr, n)
	if err != nil {
		t.Fatal(err)
	}
	want := goDFT(in)
	if !ComplexSlicesAlmostEqual(got, want, 1e-9) {
		t.Errorf("DFT mismatch:\ngot  %v\nwant %v", got, want)
	}
}

// TestInterpretedRadix2FFT cross-checks an iterative radix-2 FFT written in
// MiniC (struct complex representation) against a Go DFT.
func TestInterpretedRadix2FFT(t *testing.T) {
	m := run(t, `
#include <math.h>
typedef struct { double re; double im; } cpx;

void fft(cpx* x, int n) {
    // bit reversal permutation
    int j = 0;
    for (int i = 1; i < n; i++) {
        int bit = n >> 1;
        for (; j & bit; bit >>= 1) j ^= bit;
        j |= bit;
        if (i < j) {
            cpx tmp = x[i];
            x[i] = x[j];
            x[j] = tmp;
        }
    }
    for (int len = 2; len <= n; len <<= 1) {
        double ang = -2.0 * M_PI / (double)len;
        for (int i = 0; i < n; i += len) {
            for (int k = 0; k < len / 2; k++) {
                double wre = cos(ang * (double)k);
                double wim = sin(ang * (double)k);
                cpx u = x[i + k];
                cpx v;
                v.re = x[i + k + len / 2].re * wre - x[i + k + len / 2].im * wim;
                v.im = x[i + k + len / 2].re * wim + x[i + k + len / 2].im * wre;
                x[i + k].re = u.re + v.re;
                x[i + k].im = u.im + v.im;
                x[i + k + len / 2].re = u.re - v.re;
                x[i + k + len / 2].im = u.im - v.im;
            }
        }
    }
}`)
	n := 16
	in := make([]complex128, n)
	for i := range in {
		in[i] = complex(math.Sin(float64(i)), math.Cos(2*float64(i)))
	}
	f := m.File.Func("fft")
	if f == nil {
		t.Fatal("fft not found")
	}
	elem := f.Params[0].Type.Elem // cpx struct
	arr, err := m.NewArray("x", elem, n)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetStructComplexArray(arr, in, 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.CallNamed("fft", []Value{arr, IntValue(int64(n))}); err != nil {
		t.Fatal(err)
	}
	got, err := m.GetStructComplexArray(arr, n, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := goDFT(in)
	if !ComplexSlicesAlmostEqual(got, want, 1e-9) {
		t.Errorf("FFT mismatch:\ngot  %v\nwant %v", got, want)
	}
}

// goDFT is an O(n^2) reference DFT.
func goDFT(in []complex128) []complex128 {
	n := len(in)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			angle := -2 * math.Pi * float64(j) * float64(k) / float64(n)
			sum += in[j] * cmplx.Exp(complex(0, angle))
		}
		out[k] = sum
	}
	return out
}

func TestSizeofVLAExpr(t *testing.T) {
	m := run(t, `
long f(int n) {
    double buf[n];
    return sizeof(buf) + sizeof(double);
}`)
	if got := callInt(t, m, "f", 3); got != 32 {
		t.Errorf("sizeof = %d, want 32", got)
	}
}

func TestMemcpyMemset(t *testing.T) {
	m := run(t, `
int f(void) {
    int a[4] = {1, 2, 3, 4};
    int b[4];
    memcpy(b, a, 4 * sizeof(int));
    memset(a, 0, 4 * sizeof(int));
    return b[0] + b[3] * 10 + a[2];
}`)
	if got := callInt(t, m, "f"); got != 41 {
		t.Errorf("f() = %d, want 41", got)
	}
}

func TestExitBuiltin(t *testing.T) {
	m := run(t, `void f(void) { exit(3); }`)
	_, err := m.CallNamed("f", nil)
	if FaultOf(err) != FaultExit {
		t.Fatalf("err = %v, want exit fault", err)
	}
	if m.ExitCode() != 3 {
		t.Errorf("exit code = %d", m.ExitCode())
	}
}

func TestTernaryAndComma(t *testing.T) {
	m := run(t, `
int f(int x) {
    int y = (x > 0) ? x * 2 : -x;
    int z = (y += 1, y * 10);
    return z;
}`)
	if got := callInt(t, m, "f", 5); got != 110 {
		t.Errorf("f(5) = %d, want 110", got)
	}
	if got := callInt(t, m, "f", -4); got != 50 {
		t.Errorf("f(-4) = %d, want 50", got)
	}
}

func TestVoidPointerRoundTrip(t *testing.T) {
	m := run(t, `
int f(void) {
    int a[3] = {5, 6, 7};
    void* vp = (void*)a;
    int* p = (int*)vp;
    return p[1];
}`)
	if got := callInt(t, m, "f"); got != 6 {
		t.Errorf("f() = %d, want 6", got)
	}
}
