package interp

// Fuzz target for the interpreter. Synthesis runs the machine over
// millions of candidate executions with adversarial bindings, so the
// contract under fuzzing is: any checked program, called with arbitrary
// scalar arguments and small arrays for pointer parameters, either
// finishes or returns a fault (out-of-bounds, fuel, depth, bad call) —
// never a Go panic — and the fuel budget bounds the work actually done.

import (
	"math/rand"
	"testing"

	"facc/internal/minic"
)

var interpSeedPrograms = []string{
	`int sum(int* a, int n) {
    int s = 0;
    for (int i = 0; i < n; i = i + 1) { s = s + a[i]; }
    return s;
}`,
	`typedef struct { float re; float im; } cpx;
void scale(cpx* x, int n, float k) {
    for (int i = 0; i < n; i = i + 1) { x[i].re = x[i].re * k; x[i].im = x[i].im * k; }
}`,
	`int spin(int n) { while (n > 0) { n = n + 1; } return n; }`,
	`int rec(int n) { return rec(n + 1); }`,
	`double wave(double t) { return sin(t) * cos(t) + sqrt(t * t); }`,
	`int idx(int* p, int i) { return p[i]; }`,
	`long mix(long a, long b) { return (a << 3) ^ (b >> 1) | (a % (b + 1)); }`,
}

const fuzzFuel = 50_000

// fuzzArgs builds a best-effort argument list for fn: scalars from rng,
// small arrays for pointer parameters. Returns false for signatures the
// driver cannot populate (e.g. pointer-to-pointer).
func fuzzArgs(m *Machine, fn *minic.FuncDecl, rng *rand.Rand) ([]Value, bool) {
	var args []Value
	for _, prm := range fn.Params {
		pt := prm.Type.Decay()
		switch {
		case pt.Kind == minic.TPointer:
			elem := pt.Elem
			if elem.Kind == minic.TPointer || elem.Kind == minic.TVoid {
				return nil, false
			}
			arr, err := m.NewArray(prm.Name, elem, 8)
			if err != nil {
				return nil, false
			}
			args = append(args, arr)
		case pt.Kind == minic.TInt || pt.Kind == minic.TLong:
			// Small magnitudes keep loops plausible; the fuel budget
			// covers the rest.
			args = append(args, IntValue(rng.Int63n(37)-4))
		case pt.Kind == minic.TFloat || pt.Kind == minic.TDouble:
			args = append(args, FloatValue(rng.NormFloat64()*8, pt))
		case pt.Kind == minic.TComplexFloat || pt.Kind == minic.TComplexDouble:
			args = append(args, ComplexValue(complex(rng.NormFloat64(), rng.NormFloat64()), pt))
		default:
			return nil, false
		}
	}
	return args, true
}

// FuzzInterp runs every function of a checked fuzzer-mutated program on
// seeded arguments under a small fuel budget.
func FuzzInterp(f *testing.F) {
	for _, s := range interpSeedPrograms {
		f.Add(s, int64(1))
	}
	f.Add(interpSeedPrograms[0], int64(-77))
	f.Fuzz(func(t *testing.T, src string, argSeed int64) {
		file, err := minic.ParseAndCheck("fuzz.c", src)
		if err != nil {
			return // frontend rejection is FuzzParse's domain
		}
		rng := rand.New(rand.NewSource(argSeed))
		for _, fn := range file.Funcs {
			m, err := NewMachine(file)
			if err != nil {
				return
			}
			m.MaxSteps = fuzzFuel
			m.MaxDepth = 64
			args, ok := fuzzArgs(m, fn, rng)
			if !ok {
				continue
			}
			// Faults (bounds, fuel, depth, div-by-zero …) are expected;
			// a Go panic fails the fuzz run on its own.
			_, _ = m.Call(fn, args)
			if m.Counters.Steps > fuzzFuel+1000 {
				t.Fatalf("%s: fuel not respected: %d steps on a %d budget",
					fn.Name, m.Counters.Steps, fuzzFuel)
			}
		}
	})
}
