package interp

import (
	"math"
	"testing"
	"testing/quick"

	"facc/internal/minic"
)

// Property tests (testing/quick): the interpreter's arithmetic must agree
// with the host's semantics for C's int/double operators, truncation and
// float32 rounding.

func propMachine(t *testing.T, src string) *Machine {
	t.Helper()
	f, err := minic.ParseAndCheck("prop.c", src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(f)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPropertyIntArithmetic(t *testing.T) {
	m := propMachine(t, `
int add(int a, int b) { return a + b; }
int sub(int a, int b) { return a - b; }
int mul(int a, int b) { return a * b; }
int div2(int a, int b) { return a / b; }
int mod2(int a, int b) { return a % b; }
int band(int a, int b) { return a & b; }
int bor(int a, int b) { return a | b; }
int bxor(int a, int b) { return a ^ b; }
`)
	call := func(fn string, a, b int32) int64 {
		m.Reset()
		v, err := m.CallNamed(fn, []Value{IntValue(int64(a)), IntValue(int64(b))})
		if err != nil {
			t.Fatalf("%s(%d,%d): %v", fn, a, b, err)
		}
		return v.Int()
	}
	f := func(a, b int32) bool {
		if int64(int32(int64(a)+int64(b))) != call("add", a, b) {
			return false
		}
		if int64(int32(int64(a)-int64(b))) != call("sub", a, b) {
			return false
		}
		if int64(int32(int64(a)*int64(b))) != call("mul", a, b) {
			return false
		}
		if b != 0 {
			if int64(int32(a/b)) != call("div2", a, b) {
				return false
			}
			if int64(int32(a%b)) != call("mod2", a, b) {
				return false
			}
		}
		return int64(a&b) == call("band", a, b) &&
			int64(a|b) == call("bor", a, b) &&
			int64(a^b) == call("bxor", a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDoubleArithmetic(t *testing.T) {
	m := propMachine(t, `
double poly(double x, double y) { return x * y + x - y / (y * y + 1.0); }
`)
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
			return true
		}
		m.Reset()
		v, err := m.CallNamed("poly", []Value{
			FloatValue(x, minic.Double), FloatValue(y, minic.Double)})
		if err != nil {
			return false
		}
		want := x*y + x - y/(y*y+1.0)
		return v.Float() == want || (math.IsNaN(v.Float()) && math.IsNaN(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestPropertyFloat32Rounding(t *testing.T) {
	m := propMachine(t, `
float through(double x) {
    float f = (float)x;
    return f;
}`)
	f := func(x float64) bool {
		m.Reset()
		v, err := m.CallNamed("through", []Value{FloatValue(x, minic.Double)})
		if err != nil {
			return false
		}
		want := float64(float32(x))
		return v.Float() == want || (math.IsNaN(v.Float()) && math.IsNaN(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestPropertyIntToDoubleAndBack(t *testing.T) {
	m := propMachine(t, `
int roundtrip(int x) {
    double d = (double)x;
    return (int)d;
}`)
	f := func(x int32) bool {
		m.Reset()
		v, err := m.CallNamed("roundtrip", []Value{IntValue(int64(x))})
		if err != nil {
			return false
		}
		return v.Int() == int64(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyShifts(t *testing.T) {
	m := propMachine(t, `
int shl(int a, int s) { return a << s; }
int shr(int a, int s) { return a >> s; }
`)
	f := func(a int32, sRaw uint8) bool {
		s := int64(sRaw % 31)
		m.Reset()
		vl, err := m.CallNamed("shl", []Value{IntValue(int64(a)), IntValue(s)})
		if err != nil {
			return false
		}
		m.Reset()
		vr, err := m.CallNamed("shr", []Value{IntValue(int64(a)), IntValue(s)})
		if err != nil {
			return false
		}
		return vl.Int() == int64(int32(a<<uint(s))) && vr.Int() == int64(a>>uint(s))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyComplexMultiplication(t *testing.T) {
	m := propMachine(t, `
#include <complex.h>
double complex cm(double complex a, double complex b) { return a * b; }
`)
	f := func(ar, ai, br, bi float64) bool {
		for _, v := range []float64{ar, ai, br, bi} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
		}
		a := complex(ar, ai)
		b := complex(br, bi)
		m.Reset()
		v, err := m.CallNamed("cm", []Value{
			ComplexValue(a, minic.ComplexDouble),
			ComplexValue(b, minic.ComplexDouble)})
		if err != nil {
			return false
		}
		return v.Complex() == a*b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: sorting is a semantic fixed point — interpreting an insertion
// sort over random arrays always yields a sorted permutation.
func TestPropertySortSemantics(t *testing.T) {
	m := propMachine(t, `
void sort_it(int* a, int n) {
    for (int i = 1; i < n; i++) {
        int key = a[i];
        int j = i - 1;
        while (j >= 0 && a[j] > key) {
            a[j + 1] = a[j];
            j--;
        }
        a[j + 1] = key;
    }
}`)
	f := func(vals []int16) bool {
		if len(vals) > 40 {
			vals = vals[:40]
		}
		m.Reset()
		arr, err := m.NewArray("a", minic.Int, len(vals))
		if err != nil {
			return false
		}
		sum := 0
		for i, v := range vals {
			p := arr.P
			p.Off = i
			if err := m.StoreScalar(p, IntValue(int64(v)), minic.Pos{}); err != nil {
				return false
			}
			sum += int(v)
		}
		if _, err := m.CallNamed("sort_it", []Value{arr, IntValue(int64(len(vals)))}); err != nil {
			return false
		}
		prev := int64(math.MinInt64)
		outSum := 0
		for i := range vals {
			p := arr.P
			p.Off = i
			v, err := m.LoadScalar(p, minic.Pos{})
			if err != nil {
				return false
			}
			if v.Int() < prev {
				return false
			}
			prev = v.Int()
			outSum += int(v.Int())
		}
		return outSum == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
