package interp

import (
	"facc/internal/minic"
)

// evalExpr evaluates e as an rvalue.
func (m *Machine) evalExpr(fr *frame, e minic.Expr) (Value, error) {
	if err := m.step(e.NodePos()); err != nil {
		return Value{}, err
	}
	switch x := e.(type) {
	case *minic.IntLitExpr:
		return Value{K: VInt, T: x.ResultType(), I: x.Value}, nil
	case *minic.FloatLitExpr:
		return FloatValue(x.Value, x.ResultType()), nil
	case *minic.ImaginaryLitExpr:
		return ComplexValue(complex(0, 1), x.ResultType()), nil
	case *minic.StringLitExpr:
		return m.stringValue(x)
	case *minic.IdentExpr:
		return m.evalIdent(fr, x)
	case *minic.UnaryExpr:
		return m.evalUnary(fr, x)
	case *minic.BinaryExpr:
		return m.evalBinary(fr, x)
	case *minic.AssignExpr:
		return m.evalAssign(fr, x)
	case *minic.CondExpr:
		cond, err := m.evalExpr(fr, x.Cond)
		if err != nil {
			return Value{}, err
		}
		m.Counters.Branches++
		var v Value
		if !cond.IsZero() {
			v, err = m.evalExpr(fr, x.Then)
		} else {
			v, err = m.evalExpr(fr, x.Else)
		}
		if err != nil {
			return Value{}, err
		}
		if x.ResultType().IsArithmetic() {
			return Convert(v, x.ResultType())
		}
		return v, nil
	case *minic.CallExpr:
		return m.evalCall(fr, x)
	case *minic.IndexExpr:
		p, err := m.indexAddr(fr, x)
		if err != nil {
			return Value{}, err
		}
		return m.loadFrom(p, x.ResultType(), x.Pos)
	case *minic.MemberExpr:
		return m.evalMember(fr, x)
	case *minic.CastExpr:
		v, err := m.evalExpr(fr, x.X)
		if err != nil {
			return Value{}, err
		}
		cv, err := Convert(v, x.To.Decay())
		if err != nil {
			return Value{}, m.fault(x.Pos, FaultBadCast, "cast: %v", err)
		}
		return cv, nil
	case *minic.SizeofExpr:
		t := x.OfType
		if t == nil {
			t = x.X.ResultType()
		}
		size := t.Sizeof()
		if size == 0 && t.Kind == minic.TArray && t.ArrayLenExpr != nil {
			n, err := m.evalExpr(fr, t.ArrayLenExpr)
			if err != nil {
				return Value{}, err
			}
			size = int(n.Int()) * t.Elem.Sizeof()
		}
		return LongValue(int64(size)), nil
	case *minic.CommaExpr:
		if _, err := m.evalExpr(fr, x.L); err != nil {
			return Value{}, err
		}
		return m.evalExpr(fr, x.R)
	default:
		return Value{}, m.fault(e.NodePos(), FaultUnsupported, "expression %T", e)
	}
}

// stringValue materializes a string literal as a char allocation.
func (m *Machine) stringValue(x *minic.StringLitExpr) (Value, error) {
	a := m.NewAlloc("string", minic.Char, len(x.Value)+1)
	for i := 0; i < len(x.Value); i++ {
		a.Cells[i] = Value{K: VInt, T: minic.Char, I: int64(x.Value[i])}
	}
	return PointerValue(Pointer{Alloc: a, Elem: minic.Char}, minic.PointerTo(minic.Char)), nil
}

func (m *Machine) evalIdent(fr *frame, x *minic.IdentExpr) (Value, error) {
	if x.Def == nil {
		if x.Name == "stderr" || x.Name == "stdout" || x.Name == "stdin" {
			return PointerValue(Pointer{}, minic.PointerTo(minic.Void)), nil
		}
		return Value{}, m.fault(x.Pos, FaultUnsupported,
			"cannot evaluate function %q as a value", x.Name)
	}
	p, err := m.varAddr(fr, x)
	if err != nil {
		return Value{}, err
	}
	t := x.Def.Type
	if t.Kind == minic.TArray {
		// Arrays decay to a pointer to their first element.
		return PointerValue(Pointer{Alloc: p.Alloc, Off: p.Off, Elem: t.Elem},
			minic.PointerTo(t.Elem)), nil
	}
	return m.LoadObject(p, t, x.Pos)
}

// varAddr returns the storage of a named variable.
func (m *Machine) varAddr(fr *frame, x *minic.IdentExpr) (Pointer, error) {
	if p, ok := fr.locals[x.Def]; ok {
		return p, nil
	}
	if p, ok := m.globals[x.Def]; ok {
		return p, nil
	}
	return Pointer{}, m.fault(x.Pos, FaultUnsupported, "no storage for %q", x.Name)
}

// lvalueAddr computes the address an lvalue expression designates.
func (m *Machine) lvalueAddr(fr *frame, e minic.Expr) (Pointer, error) {
	switch x := e.(type) {
	case *minic.IdentExpr:
		return m.varAddr(fr, x)
	case *minic.UnaryExpr:
		if x.Op != minic.Star {
			break
		}
		v, err := m.evalExpr(fr, x.X)
		if err != nil {
			return Pointer{}, err
		}
		if v.K != VPointer {
			return Pointer{}, m.fault(x.Pos, FaultBadPointerOp, "dereference of non-pointer")
		}
		p := v.P
		p.Elem = x.ResultType()
		return p, nil
	case *minic.IndexExpr:
		return m.indexAddr(fr, x)
	case *minic.MemberExpr:
		return m.memberAddr(fr, x)
	}
	return Pointer{}, m.fault(e.NodePos(), FaultUnsupported, "expression %T is not an lvalue", e)
}

func (m *Machine) indexAddr(fr *frame, x *minic.IndexExpr) (Pointer, error) {
	base, err := m.evalExpr(fr, x.X)
	if err != nil {
		return Pointer{}, err
	}
	if base.K != VPointer {
		return Pointer{}, m.fault(x.Pos, FaultBadPointerOp, "index of non-pointer value")
	}
	idx, err := m.evalExpr(fr, x.Index)
	if err != nil {
		return Pointer{}, err
	}
	m.Counters.IntOps++
	elem := x.ResultType()
	p := base.P
	p.Elem = elem
	step := FlatSize(elem)
	if step == 0 {
		// VLA row: compute the dynamic flat size.
		step, err = m.dynFlatSize(fr, elem, x.Pos)
		if err != nil {
			return Pointer{}, err
		}
	}
	p.Off += int(idx.Int()) * step
	return p, nil
}

// dynFlatSize computes the flat size of a type whose array lengths are
// dynamic expressions (VLA rows).
func (m *Machine) dynFlatSize(fr *frame, t *minic.Type, pos minic.Pos) (int, error) {
	if s := FlatSize(t); s > 0 {
		return s, nil
	}
	if t.Kind == minic.TArray && t.ArrayLenExpr != nil {
		n, err := m.evalExpr(fr, t.ArrayLenExpr)
		if err != nil {
			return 0, err
		}
		inner, err := m.dynFlatSize(fr, t.Elem, pos)
		if err != nil {
			return 0, err
		}
		return int(n.Int()) * inner, nil
	}
	return 0, m.fault(pos, FaultUnsupported, "cannot size type %s dynamically", t)
}

func (m *Machine) memberAddr(fr *frame, x *minic.MemberExpr) (Pointer, error) {
	var base Pointer
	var st *minic.Type
	if x.Arrow {
		v, err := m.evalExpr(fr, x.X)
		if err != nil {
			return Pointer{}, err
		}
		if v.K != VPointer {
			return Pointer{}, m.fault(x.Pos, FaultBadPointerOp, "-> on non-pointer")
		}
		base = v.P
		st = x.X.ResultType().Decay().Elem
	} else {
		p, err := m.lvalueAddr(fr, x.X)
		if err != nil {
			return Pointer{}, err
		}
		base = p
		st = x.X.ResultType()
	}
	p := base
	p.Off += fieldOffset(st, x.FieldIndex)
	p.Elem = x.ResultType()
	return p, nil
}

func (m *Machine) evalMember(fr *frame, x *minic.MemberExpr) (Value, error) {
	// Struct rvalues that have no address (function results) are sliced
	// directly; everything else goes through memory.
	if !x.Arrow {
		if _, isCall := x.X.(*minic.CallExpr); isCall {
			v, err := m.evalExpr(fr, x.X)
			if err != nil {
				return Value{}, err
			}
			st := x.X.ResultType()
			off := fieldOffset(st, x.FieldIndex)
			ft := x.ResultType()
			n := FlatSize(ft)
			if ft.Kind == minic.TStruct {
				fields := make([]Value, n)
				copy(fields, v.Fields[off:off+n])
				return Value{K: VStruct, T: ft, Fields: fields}, nil
			}
			return v.Fields[off], nil
		}
	}
	p, err := m.memberAddr(fr, x)
	if err != nil {
		return Value{}, err
	}
	return m.loadFrom(p, x.ResultType(), x.Pos)
}

// loadFrom reads a value of type t at p, decaying arrays to pointers.
func (m *Machine) loadFrom(p Pointer, t *minic.Type, pos minic.Pos) (Value, error) {
	if t.Kind == minic.TArray {
		return PointerValue(Pointer{Alloc: p.Alloc, Off: p.Off, Elem: t.Elem},
			minic.PointerTo(t.Elem)), nil
	}
	return m.LoadObject(p, t, pos)
}

func (m *Machine) evalUnary(fr *frame, x *minic.UnaryExpr) (Value, error) {
	switch x.Op {
	case minic.Amp:
		p, err := m.lvalueAddr(fr, x.X)
		if err != nil {
			return Value{}, err
		}
		return PointerValue(p, x.ResultType()), nil
	case minic.Star:
		p, err := m.lvalueAddr(fr, x)
		if err != nil {
			return Value{}, err
		}
		return m.loadFrom(p, x.ResultType(), x.Pos)
	case minic.PlusPlus, minic.MinusMinus:
		p, err := m.lvalueAddr(fr, x.X)
		if err != nil {
			return Value{}, err
		}
		old, err := m.LoadScalar(p, x.Pos)
		if err != nil {
			return Value{}, err
		}
		delta := int64(1)
		if x.Op == minic.MinusMinus {
			delta = -1
		}
		var nv Value
		switch old.K {
		case VInt:
			m.Counters.IntOps++
			nv = truncInt(old.I+delta, old.T)
		case VFloat:
			m.Counters.FloatOps++
			nv = FloatValue(old.F+float64(delta), old.T)
		case VPointer:
			m.Counters.IntOps++
			nv = PointerValue(PointerAdd(old.P, delta), old.T)
		default:
			return Value{}, m.fault(x.Pos, FaultUnsupported, "%s on %s", x.Op, old.T)
		}
		if err := m.StoreScalar(p, nv, x.Pos); err != nil {
			return Value{}, err
		}
		if x.Post {
			return old, nil
		}
		return nv, nil
	}
	v, err := m.evalExpr(fr, x.X)
	if err != nil {
		return Value{}, err
	}
	switch x.Op {
	case minic.Minus:
		cv, err := Convert(v, x.ResultType())
		if err != nil {
			return Value{}, m.fault(x.Pos, FaultBadCast, "%v", err)
		}
		switch cv.K {
		case VInt:
			m.Counters.IntOps++
			return truncInt(-cv.I, cv.T), nil
		case VFloat:
			m.Counters.FloatOps++
			return FloatValue(-cv.F, cv.T), nil
		case VComplex:
			m.Counters.FloatOps += 2
			return ComplexValue(-cv.C, cv.T), nil
		}
	case minic.Plus:
		return Convert(v, x.ResultType())
	case minic.Not:
		m.Counters.IntOps++
		if v.IsZero() {
			return IntValue(1), nil
		}
		return IntValue(0), nil
	case minic.Tilde:
		m.Counters.IntOps++
		return truncInt(^v.Int(), x.ResultType()), nil
	}
	return Value{}, m.fault(x.Pos, FaultUnsupported, "unary %s", x.Op)
}

func (m *Machine) evalBinary(fr *frame, x *minic.BinaryExpr) (Value, error) {
	// Short-circuit operators evaluate lazily.
	if x.Op == minic.AndAnd || x.Op == minic.OrOr {
		l, err := m.evalExpr(fr, x.L)
		if err != nil {
			return Value{}, err
		}
		m.Counters.Branches++
		if x.Op == minic.AndAnd && l.IsZero() {
			return IntValue(0), nil
		}
		if x.Op == minic.OrOr && !l.IsZero() {
			return IntValue(1), nil
		}
		r, err := m.evalExpr(fr, x.R)
		if err != nil {
			return Value{}, err
		}
		if r.IsZero() {
			return IntValue(0), nil
		}
		return IntValue(1), nil
	}
	l, err := m.evalExpr(fr, x.L)
	if err != nil {
		return Value{}, err
	}
	r, err := m.evalExpr(fr, x.R)
	if err != nil {
		return Value{}, err
	}
	return m.applyBinary(x.Op, l, r, x.ResultType(), x.Pos)
}

// applyBinary performs op on already-evaluated operands, producing a value
// of result type rt.
func (m *Machine) applyBinary(op minic.Kind, l, r Value, rt *minic.Type, pos minic.Pos) (Value, error) {
	// Pointer arithmetic and comparisons.
	if l.K == VPointer || r.K == VPointer {
		return m.applyPointerBinary(op, l, r, rt, pos)
	}
	switch op {
	case minic.Lt, minic.Gt, minic.Le, minic.Ge, minic.EqEq, minic.NotEq:
		return m.applyComparison(op, l, r, pos)
	}
	// Usual arithmetic conversions to the result type.
	ct := minic.UsualArith(l.T, r.T)
	lc, err := Convert(l, ct)
	if err != nil {
		return Value{}, m.fault(pos, FaultBadCast, "%v", err)
	}
	rc, err := Convert(r, ct)
	if err != nil {
		return Value{}, m.fault(pos, FaultBadCast, "%v", err)
	}
	var out Value
	switch lc.K {
	case VInt:
		out, err = m.applyIntBinary(op, lc, rc, ct, pos)
	case VFloat:
		out, err = m.applyFloatBinary(op, lc, rc, ct, pos)
	case VComplex:
		out, err = m.applyComplexBinary(op, lc, rc, ct, pos)
	default:
		return Value{}, m.fault(pos, FaultUnsupported, "binary %s on %s", op, lc.T)
	}
	if err != nil {
		return Value{}, err
	}
	if rt != nil && rt.IsArithmetic() {
		return Convert(out, rt)
	}
	return out, nil
}

func (m *Machine) applyIntBinary(op minic.Kind, l, r Value, t *minic.Type, pos minic.Pos) (Value, error) {
	m.Counters.IntOps++
	a, b := l.I, r.I
	switch op {
	case minic.Plus:
		return truncInt(a+b, t), nil
	case minic.Minus:
		return truncInt(a-b, t), nil
	case minic.Star:
		return truncInt(a*b, t), nil
	case minic.Slash:
		if b == 0 {
			return Value{}, m.fault(pos, FaultDivZero, "integer division by zero")
		}
		return truncInt(a/b, t), nil
	case minic.Percent:
		if b == 0 {
			return Value{}, m.fault(pos, FaultDivZero, "integer modulo by zero")
		}
		return truncInt(a%b, t), nil
	case minic.Shl:
		return truncInt(a<<uint(b&63), t), nil
	case minic.Shr:
		if t.Unsigned {
			return truncInt(int64(uint64(a)>>uint(b&63)), t), nil
		}
		return truncInt(a>>uint(b&63), t), nil
	case minic.Amp:
		return truncInt(a&b, t), nil
	case minic.Pipe:
		return truncInt(a|b, t), nil
	case minic.Caret:
		return truncInt(a^b, t), nil
	default:
		return Value{}, m.fault(pos, FaultUnsupported, "int op %s", op)
	}
}

func (m *Machine) applyFloatBinary(op minic.Kind, l, r Value, t *minic.Type, pos minic.Pos) (Value, error) {
	a, b := l.F, r.F
	switch op {
	case minic.Plus:
		m.Counters.FloatOps++
		return FloatValue(a+b, t), nil
	case minic.Minus:
		m.Counters.FloatOps++
		return FloatValue(a-b, t), nil
	case minic.Star:
		m.Counters.FloatOps++
		return FloatValue(a*b, t), nil
	case minic.Slash:
		m.Counters.FloatDivs++
		return FloatValue(a/b, t), nil
	default:
		return Value{}, m.fault(pos, FaultUnsupported, "float op %s", op)
	}
}

func (m *Machine) applyComplexBinary(op minic.Kind, l, r Value, t *minic.Type, pos minic.Pos) (Value, error) {
	a, b := l.C, r.C
	switch op {
	case minic.Plus:
		m.Counters.FloatOps += 2
		return ComplexValue(a+b, t), nil
	case minic.Minus:
		m.Counters.FloatOps += 2
		return ComplexValue(a-b, t), nil
	case minic.Star:
		m.Counters.FloatOps += 6
		return ComplexValue(a*b, t), nil
	case minic.Slash:
		m.Counters.FloatOps += 6
		m.Counters.FloatDivs += 2
		return ComplexValue(a/b, t), nil
	default:
		return Value{}, m.fault(pos, FaultUnsupported, "complex op %s", op)
	}
}

func (m *Machine) applyComparison(op minic.Kind, l, r Value, pos minic.Pos) (Value, error) {
	m.Counters.IntOps++
	// Complex values compare only with == and !=.
	if l.K == VComplex || r.K == VComplex {
		eq := l.Complex() == r.Complex()
		switch op {
		case minic.EqEq:
			return boolValue(eq), nil
		case minic.NotEq:
			return boolValue(!eq), nil
		default:
			return Value{}, m.fault(pos, FaultUnsupported, "ordered comparison of complex values")
		}
	}
	if l.K == VFloat || r.K == VFloat {
		a, b := l.Float(), r.Float()
		return boolValue(compareOrd(op, a < b, a > b, a == b)), nil
	}
	a, b := l.Int(), r.Int()
	return boolValue(compareOrd(op, a < b, a > b, a == b)), nil
}

func compareOrd(op minic.Kind, lt, gt, eq bool) bool {
	switch op {
	case minic.Lt:
		return lt
	case minic.Gt:
		return gt
	case minic.Le:
		return lt || eq
	case minic.Ge:
		return gt || eq
	case minic.EqEq:
		return eq
	case minic.NotEq:
		return !eq
	default:
		return false
	}
}

func boolValue(b bool) Value {
	if b {
		return IntValue(1)
	}
	return IntValue(0)
}

func (m *Machine) applyPointerBinary(op minic.Kind, l, r Value, rt *minic.Type, pos minic.Pos) (Value, error) {
	m.Counters.IntOps++
	switch op {
	case minic.Plus:
		if l.K == VPointer {
			return PointerValue(PointerAdd(l.P, r.Int()), l.T), nil
		}
		return PointerValue(PointerAdd(r.P, l.Int()), r.T), nil
	case minic.Minus:
		if l.K == VPointer && r.K == VPointer {
			d, err := m.pointerDiff(l.P, r.P, pos)
			if err != nil {
				return Value{}, err
			}
			return LongValue(d), nil
		}
		if l.K == VPointer {
			return PointerValue(PointerAdd(l.P, -r.Int()), l.T), nil
		}
	case minic.EqEq, minic.NotEq:
		eq := pointerEq(l, r)
		if op == minic.NotEq {
			return boolValue(!eq), nil
		}
		return boolValue(eq), nil
	case minic.Lt, minic.Gt, minic.Le, minic.Ge:
		if l.K == VPointer && r.K == VPointer {
			if l.P.Alloc != r.P.Alloc {
				return Value{}, m.fault(pos, FaultBadPointerOp,
					"ordered comparison of pointers into different allocations")
			}
			a, b := int64(l.P.Off), int64(r.P.Off)
			return boolValue(compareOrd(op, a < b, a > b, a == b)), nil
		}
	}
	return Value{}, m.fault(pos, FaultBadPointerOp, "pointer op %s with %s and %s", op, l.T, r.T)
}

func pointerEq(l, r Value) bool {
	lp, rp := Pointer{}, Pointer{}
	if l.K == VPointer {
		lp = l.P
	}
	if r.K == VPointer {
		rp = r.P
	}
	return lp.Alloc == rp.Alloc && (lp.Alloc == nil || lp.Off == rp.Off)
}

func (m *Machine) evalAssign(fr *frame, x *minic.AssignExpr) (Value, error) {
	p, err := m.lvalueAddr(fr, x.L)
	if err != nil {
		return Value{}, err
	}
	lt := x.L.ResultType()
	rv, err := m.evalExpr(fr, x.R)
	if err != nil {
		return Value{}, err
	}
	var nv Value
	if x.Op == minic.Assign {
		nv = rv
	} else {
		old, err := m.LoadScalar(p, x.Pos)
		if err != nil {
			return Value{}, err
		}
		binOp := compoundOp(x.Op)
		nv, err = m.applyBinary(binOp, old, rv, lt.Decay(), x.Pos)
		if err != nil {
			return Value{}, err
		}
	}
	if lt.Kind == minic.TStruct {
		if err := m.StoreObject(p, lt, nv, x.Pos); err != nil {
			return Value{}, err
		}
	} else {
		if err := m.StoreScalar(p, nv, x.Pos); err != nil {
			return Value{}, err
		}
		nv = p.Alloc.Cells[p.Off]
	}
	if m.Observe != nil {
		if id, ok := x.L.(*minic.IdentExpr); ok && nv.K != VStruct {
			m.Observe(id.Name, nv)
		}
	}
	return nv, nil
}

func compoundOp(k minic.Kind) minic.Kind {
	switch k {
	case minic.PlusAssign:
		return minic.Plus
	case minic.MinusAssign:
		return minic.Minus
	case minic.StarAssign:
		return minic.Star
	case minic.SlashAssign:
		return minic.Slash
	case minic.PercentAssign:
		return minic.Percent
	case minic.AmpAssign:
		return minic.Amp
	case minic.PipeAssign:
		return minic.Pipe
	case minic.CaretAssign:
		return minic.Caret
	case minic.ShlAssign:
		return minic.Shl
	case minic.ShrAssign:
		return minic.Shr
	default:
		return k
	}
}

func (m *Machine) evalCall(fr *frame, x *minic.CallExpr) (Value, error) {
	if x.Builtin != "" {
		return m.callBuiltin(fr, x)
	}
	id, ok := x.Fun.(*minic.IdentExpr)
	if !ok || id.Func == nil {
		return Value{}, m.fault(x.Pos, FaultUnsupported, "indirect calls are not supported")
	}
	fn := m.funcs[id.Func.Name]
	if fn == nil || fn.Body == nil {
		return Value{}, m.fault(x.Pos, FaultUnsupported, "call to undefined function %q", id.Func.Name)
	}
	args := make([]Value, len(x.Args))
	for i, a := range x.Args {
		v, err := m.evalExpr(fr, a)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	return m.Call(fn, args)
}
