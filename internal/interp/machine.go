package interp

import (
	"bytes"
	"context"
	"errors"
	"fmt"

	"facc/internal/minic"
	"facc/internal/obs"
)

// FaultKind classifies runtime faults. Generate-and-test uses these the way
// the paper uses AddressSanitizer: a fault under a candidate binding is
// evidence the binding (e.g. an inferred length variable) is wrong.
type FaultKind int

// Fault kinds.
const (
	FaultNone FaultKind = iota
	FaultOutOfBounds
	FaultNullDeref
	FaultUseAfterFree
	FaultDoubleFree
	FaultBadCast
	FaultDivZero
	FaultStackOverflow
	FaultFuelExhausted
	FaultBadPointerOp
	FaultUnsupported
	FaultAssert
	FaultExit
	// FaultCancelled reports that the machine's context was cancelled or
	// its deadline expired mid-interpretation (the error unwraps to the
	// context's cause, so errors.Is(err, context.DeadlineExceeded) works).
	FaultCancelled
	// FaultPanic classifies a Go panic recovered while evaluating a
	// candidate — the synthesis engine converts it into a per-candidate
	// rejection instead of letting it kill the process.
	FaultPanic
)

var faultNames = map[FaultKind]string{
	FaultOutOfBounds: "out-of-bounds", FaultNullDeref: "null-deref",
	FaultUseAfterFree: "use-after-free", FaultDoubleFree: "double-free",
	FaultBadCast: "bad-cast", FaultDivZero: "division-by-zero",
	FaultStackOverflow: "stack-overflow", FaultFuelExhausted: "fuel-exhausted",
	FaultBadPointerOp: "bad-pointer-op", FaultUnsupported: "unsupported",
	FaultAssert: "assertion-failure", FaultExit: "exit",
	FaultCancelled: "cancelled", FaultPanic: "panic",
}

func (k FaultKind) String() string {
	if s, ok := faultNames[k]; ok {
		return s
	}
	return fmt.Sprintf("fault(%d)", int(k))
}

// RuntimeError is a fault raised during interpretation.
type RuntimeError struct {
	Kind FaultKind
	Pos  minic.Pos
	Msg  string
	// Err is the underlying cause, when the fault wraps one (e.g. the
	// context error behind a FaultCancelled). May be nil.
	Err error
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("%s: %s: %s", e.Pos, e.Kind, e.Msg)
}

// Unwrap exposes the cause so errors.Is/As see through the fault (e.g.
// errors.Is(err, context.DeadlineExceeded) on a cancellation fault).
func (e *RuntimeError) Unwrap() error { return e.Err }

// FaultOf extracts the fault kind from an error, seeing through any
// wrapping (fmt.Errorf %w etc.); FaultNone if no RuntimeError is in the
// chain.
func FaultOf(err error) FaultKind {
	var re *RuntimeError
	if errors.As(err, &re) {
		return re.Kind
	}
	return FaultNone
}

// Counters tallies executed operations; the accel package converts these
// into platform cycle estimates.
type Counters struct {
	IntOps    int64
	FloatOps  int64 // adds/subs/muls (complex ops decompose into these)
	FloatDivs int64
	Loads     int64
	Stores    int64
	Branches  int64
	Calls     int64
	MathCalls int64 // libm calls (sin, cos, ...)
	Allocs    int64
	Steps     int64
}

// Total returns the unweighted operation total.
func (c Counters) Total() int64 {
	return c.IntOps + c.FloatOps + c.FloatDivs + c.Loads + c.Stores +
		c.Branches + c.Calls + c.MathCalls
}

// Add accumulates o into c field by field.
func (c *Counters) Add(o Counters) {
	c.IntOps += o.IntOps
	c.FloatOps += o.FloatOps
	c.FloatDivs += o.FloatDivs
	c.Loads += o.Loads
	c.Stores += o.Stores
	c.Branches += o.Branches
	c.Calls += o.Calls
	c.MathCalls += o.MathCalls
	c.Allocs += o.Allocs
	c.Steps += o.Steps
}

// Sub returns c - o field by field. Snapshotting TotalCounters before a
// run and subtracting afterwards attributes one window of work on a
// long-lived (pooled) machine — the seam synthesis' shared reference
// oracle uses to meter reuse without resetting machine-lifetime totals.
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		IntOps:    c.IntOps - o.IntOps,
		FloatOps:  c.FloatOps - o.FloatOps,
		FloatDivs: c.FloatDivs - o.FloatDivs,
		Loads:     c.Loads - o.Loads,
		Stores:    c.Stores - o.Stores,
		Branches:  c.Branches - o.Branches,
		Calls:     c.Calls - o.Calls,
		MathCalls: c.MathCalls - o.MathCalls,
		Allocs:    c.Allocs - o.Allocs,
		Steps:     c.Steps - o.Steps,
	}
}

// Machine interprets one MiniC translation unit. The zero value is not
// usable; call NewMachine.
type Machine struct {
	File     *minic.File
	Out      bytes.Buffer // captured printf/puts output
	Counters Counters
	// Totals accumulates the counters of every completed run: Reset folds
	// Counters into it, so a fuzz loop that Resets per case can still
	// report machine-lifetime totals (see TotalCounters).
	Totals   Counters
	MaxSteps int64 // fuel; 0 means DefaultMaxSteps
	MaxDepth int   // call depth limit; 0 means DefaultMaxDepth

	// Observe, when non-nil, is called with every scalar value assigned
	// to a named variable — FACC's value-profiling hook.
	Observe func(name string, v Value)

	// Obs, when non-nil, receives fault counters (interp.faults and
	// interp.faults.<kind>) — the observability hook. Nil is a no-op and
	// costs nothing on the interpretation hot path.
	Obs *obs.Registry

	// Ctx, when non-nil, is polled every ctxPollStride steps: once it is
	// cancelled (or its deadline passes) interpretation stops promptly
	// with a FaultCancelled that unwraps to the context error. Nil (the
	// default) keeps the step path free of context checks.
	Ctx context.Context

	globals     map[*minic.VarDecl]Pointer
	funcs       map[string]*minic.FuncDecl
	nextAllocID int
	liveAllocs  int
	steps       int64
	depth       int
	exitCode    int
}

// Defaults for fuel and stack depth.
const (
	DefaultMaxSteps = 200_000_000
	DefaultMaxDepth = 4096
)

// ctxPollStride is how many interpreter steps run between context checks.
// A step costs on the order of 100ns, so 1024 steps bound cancellation
// latency to roughly 0.1ms while keeping Ctx.Err off the hot path.
const ctxPollStride = 1024

type ctrl int

const (
	ctrlNone ctrl = iota
	ctrlBreak
	ctrlContinue
	ctrlReturn
)

type frame struct {
	fn     *minic.FuncDecl
	locals map[*minic.VarDecl]Pointer
	ret    Value
}

// NewMachine builds a machine for f and evaluates global initializers.
// f must have been checked with minic.Check.
func NewMachine(f *minic.File) (*Machine, error) {
	m := &Machine{
		File:     f,
		MaxSteps: DefaultMaxSteps,
		MaxDepth: DefaultMaxDepth,
		globals:  map[*minic.VarDecl]Pointer{},
		funcs:    map[string]*minic.FuncDecl{},
	}
	for _, fn := range f.Funcs {
		if prev, ok := m.funcs[fn.Name]; !ok || prev.Body == nil {
			m.funcs[fn.Name] = fn
		}
	}
	gf := &frame{locals: map[*minic.VarDecl]Pointer{}}
	for _, g := range f.Globals {
		p, err := m.allocVar(gf, g)
		if err != nil {
			return nil, err
		}
		m.globals[g] = p
	}
	return m, nil
}

// Reset clears counters, output and fuel so the machine can run another
// call with fresh measurements. Global state persists (as it would in a
// process), which benchmark 11's twiddle-factor memoization relies on.
func (m *Machine) Reset() {
	m.Totals.Add(m.Counters)
	m.Counters = Counters{}
	m.Out.Reset()
	m.steps = 0
}

// TotalCounters returns the machine-lifetime operation counters: every
// completed (Reset) run plus the current one.
func (m *Machine) TotalCounters() Counters {
	t := m.Totals
	t.Add(m.Counters)
	return t
}

func (m *Machine) fault(pos minic.Pos, kind FaultKind, format string, args ...any) error {
	return m.faultCause(pos, kind, nil, format, args...)
}

// faultCause raises a fault wrapping an underlying error, so callers can
// classify with errors.Is/As through the RuntimeError.
func (m *Machine) faultCause(pos minic.Pos, kind FaultKind, cause error, format string, args ...any) error {
	if m.Obs != nil {
		m.Obs.Counter("interp.faults").Inc()
		m.Obs.Counter("interp.faults." + kind.String()).Inc()
	}
	return &RuntimeError{Kind: kind, Pos: pos, Msg: fmt.Sprintf(format, args...), Err: cause}
}

func (m *Machine) step(pos minic.Pos) error {
	m.steps++
	m.Counters.Steps++
	max := m.MaxSteps
	if max == 0 {
		max = DefaultMaxSteps
	}
	if m.steps > max {
		return m.fault(pos, FaultFuelExhausted, "step limit %d exceeded", max)
	}
	if m.Ctx != nil && m.steps%ctxPollStride == 0 {
		if err := m.Ctx.Err(); err != nil {
			return m.faultCause(pos, FaultCancelled, err,
				"interpretation cancelled: %v", err)
		}
	}
	return nil
}

// CallNamed invokes the named function with the given argument values.
func (m *Machine) CallNamed(name string, args []Value) (Value, error) {
	fn, ok := m.funcs[name]
	if !ok || fn.Body == nil {
		return Value{}, fmt.Errorf("interp: no function %q", name)
	}
	return m.Call(fn, args)
}

// Call invokes fn with args (converted to parameter types).
func (m *Machine) Call(fn *minic.FuncDecl, args []Value) (Value, error) {
	maxDepth := m.MaxDepth
	if maxDepth == 0 {
		maxDepth = DefaultMaxDepth
	}
	if m.depth >= maxDepth {
		return Value{}, m.fault(fn.Pos, FaultStackOverflow,
			"call depth %d exceeded in %s", maxDepth, fn.Name)
	}
	if len(args) != len(fn.Params) {
		return Value{}, fmt.Errorf("interp: %s expects %d args, got %d",
			fn.Name, len(fn.Params), len(args))
	}
	if fn.Body == nil {
		// A prototype (extern declaration) carries no body to execute.
		return Value{}, m.fault(fn.Pos, FaultUnsupported,
			"call to %s, which is declared but not defined", fn.Name)
	}
	m.depth++
	defer func() { m.depth-- }()
	m.Counters.Calls++

	fr := &frame{fn: fn, locals: map[*minic.VarDecl]Pointer{}}
	for i, prm := range fn.Params {
		av, err := Convert(args[i], prm.Type)
		if err != nil {
			return Value{}, m.fault(fn.Pos, FaultBadCast, "argument %d to %s: %v", i+1, fn.Name, err)
		}
		// Value profiling observes parameter values too — the paper's
		// profiling environment records what each call site passes.
		if m.Observe != nil && av.K == VInt {
			m.Observe(prm.Name, av)
		}
		p := Pointer{Alloc: m.NewAlloc(prm.Name, prm.Type, 1), Elem: prm.Type}
		if err := m.StoreObject(p, prm.Type, av, fn.Pos); err != nil {
			return Value{}, err
		}
		fr.locals[prm] = p
	}
	c, err := m.execStmt(fr, fn.Body)
	if err != nil {
		return Value{}, err
	}
	if c == ctrlReturn {
		return fr.ret, nil
	}
	return VoidValue(), nil
}

// allocVar allocates storage for a declaration and runs its initializer.
func (m *Machine) allocVar(fr *frame, v *minic.VarDecl) (Pointer, error) {
	t := v.Type
	var a *Alloc
	switch {
	case t.Kind == minic.TArray && t.ArrayLen >= 0:
		a = m.NewAlloc(v.Name, t.Elem, t.ArrayLen)
	case t.Kind == minic.TArray && t.ArrayLenExpr != nil:
		n, err := m.evalExpr(fr, t.ArrayLenExpr)
		if err != nil {
			return Pointer{}, err
		}
		if n.Int() < 0 {
			return Pointer{}, m.fault(v.Pos, FaultOutOfBounds, "negative VLA length %d", n.Int())
		}
		if FlatSize(t.Elem) == 0 {
			return Pointer{}, m.fault(v.Pos, FaultUnsupported, "VLA of dynamically sized element")
		}
		a = m.NewAlloc(v.Name, t.Elem, int(n.Int()))
	case t.Kind == minic.TArray:
		// Incomplete array with no initializer-completed length.
		return Pointer{}, m.fault(v.Pos, FaultUnsupported, "array %q has unknown length", v.Name)
	default:
		a = m.NewAlloc(v.Name, t, 1)
	}
	m.Counters.Allocs++
	p := Pointer{Alloc: a, Elem: t}
	if v.Init != nil {
		if err := m.runInit(fr, p, t, v.Init, v); err != nil {
			return Pointer{}, err
		}
	}
	return p, nil
}

// runInit stores an initializer (scalar or brace list) into storage at p.
func (m *Machine) runInit(fr *frame, p Pointer, t *minic.Type, init minic.Expr, v *minic.VarDecl) error {
	il, isList := init.(*minic.InitListExpr)
	if !isList {
		val, err := m.evalExpr(fr, init)
		if err != nil {
			return err
		}
		if v != nil && m.Observe != nil && val.K != VStruct && val.K != VVoid {
			m.Observe(v.Name, val)
		}
		return m.StoreObject(p, t.Decay(), val, init.NodePos())
	}
	switch t.Kind {
	case minic.TArray:
		per := FlatSize(t.Elem)
		for i, item := range il.Items {
			ep := Pointer{Alloc: p.Alloc, Off: p.Off + i*per, Elem: t.Elem}
			if err := m.runInit(fr, ep, t.Elem, item, nil); err != nil {
				return err
			}
		}
		return nil
	case minic.TStruct:
		for i, item := range il.Items {
			ft := t.Fields[i].Type
			fp := Pointer{Alloc: p.Alloc, Off: p.Off + fieldOffset(t, i), Elem: ft}
			if err := m.runInit(fr, fp, ft, item, nil); err != nil {
				return err
			}
		}
		return nil
	default:
		if len(il.Items) == 1 {
			return m.runInit(fr, p, t, il.Items[0], v)
		}
		return m.fault(il.Pos, FaultBadCast, "scalar initializer list for %s", t)
	}
}

// ---- Statements ----

func (m *Machine) execStmt(fr *frame, s minic.Stmt) (ctrl, error) {
	if s == nil {
		return ctrlNone, nil
	}
	if err := m.step(s.NodePos()); err != nil {
		return ctrlNone, err
	}
	switch st := s.(type) {
	case *minic.ExprStmt:
		_, err := m.evalExpr(fr, st.X)
		return ctrlNone, err
	case *minic.DeclStmt:
		for _, d := range st.Decls {
			// Function-scoped statics allocate and initialize once and
			// persist across calls (C semantics).
			if d.Storage == minic.SCStatic {
				if p, ok := m.globals[d]; ok {
					fr.locals[d] = p
					continue
				}
				p, err := m.allocVar(fr, d)
				if err != nil {
					return ctrlNone, err
				}
				m.globals[d] = p
				fr.locals[d] = p
				continue
			}
			p, err := m.allocVar(fr, d)
			if err != nil {
				return ctrlNone, err
			}
			fr.locals[d] = p
		}
		return ctrlNone, nil
	case *minic.BlockStmt:
		for _, sub := range st.List {
			c, err := m.execStmt(fr, sub)
			if err != nil || c != ctrlNone {
				return c, err
			}
		}
		return ctrlNone, nil
	case *minic.IfStmt:
		cond, err := m.evalExpr(fr, st.Cond)
		if err != nil {
			return ctrlNone, err
		}
		m.Counters.Branches++
		if !cond.IsZero() {
			return m.execStmt(fr, st.Then)
		}
		return m.execStmt(fr, st.Else)
	case *minic.ForStmt:
		if st.Init != nil {
			if _, err := m.execStmt(fr, st.Init); err != nil {
				return ctrlNone, err
			}
		}
		for {
			if st.Cond != nil {
				cond, err := m.evalExpr(fr, st.Cond)
				if err != nil {
					return ctrlNone, err
				}
				m.Counters.Branches++
				if cond.IsZero() {
					return ctrlNone, nil
				}
			}
			c, err := m.execStmt(fr, st.Body)
			if err != nil {
				return ctrlNone, err
			}
			if c == ctrlBreak {
				return ctrlNone, nil
			}
			if c == ctrlReturn {
				return c, nil
			}
			if st.Post != nil {
				if _, err := m.evalExpr(fr, st.Post); err != nil {
					return ctrlNone, err
				}
			}
			if err := m.step(st.Pos); err != nil {
				return ctrlNone, err
			}
		}
	case *minic.WhileStmt:
		if st.Do {
			for {
				c, err := m.execStmt(fr, st.Body)
				if err != nil {
					return ctrlNone, err
				}
				if c == ctrlBreak {
					return ctrlNone, nil
				}
				if c == ctrlReturn {
					return c, nil
				}
				cond, err := m.evalExpr(fr, st.Cond)
				if err != nil {
					return ctrlNone, err
				}
				m.Counters.Branches++
				if cond.IsZero() {
					return ctrlNone, nil
				}
				if err := m.step(st.Pos); err != nil {
					return ctrlNone, err
				}
			}
		}
		for {
			cond, err := m.evalExpr(fr, st.Cond)
			if err != nil {
				return ctrlNone, err
			}
			m.Counters.Branches++
			if cond.IsZero() {
				return ctrlNone, nil
			}
			c, err := m.execStmt(fr, st.Body)
			if err != nil {
				return ctrlNone, err
			}
			if c == ctrlBreak {
				return ctrlNone, nil
			}
			if c == ctrlReturn {
				return c, nil
			}
			if err := m.step(st.Pos); err != nil {
				return ctrlNone, err
			}
		}
	case *minic.SwitchStmt:
		tag, err := m.evalExpr(fr, st.Tag)
		if err != nil {
			return ctrlNone, err
		}
		m.Counters.Branches++
		match := -1
		for i, cc := range st.Cases {
			if cc.IsDefault {
				continue
			}
			cv, err := m.evalExpr(fr, cc.Value)
			if err != nil {
				return ctrlNone, err
			}
			if cv.Int() == tag.Int() {
				match = i
				break
			}
		}
		if match < 0 {
			for i, cc := range st.Cases {
				if cc.IsDefault {
					match = i
					break
				}
			}
		}
		if match < 0 {
			return ctrlNone, nil
		}
		// Fall through subsequent cases until break/return.
		for i := match; i < len(st.Cases); i++ {
			for _, sub := range st.Cases[i].Body {
				c, err := m.execStmt(fr, sub)
				if err != nil {
					return ctrlNone, err
				}
				switch c {
				case ctrlBreak:
					return ctrlNone, nil
				case ctrlReturn, ctrlContinue:
					return c, nil
				}
			}
		}
		return ctrlNone, nil
	case *minic.BreakStmt:
		return ctrlBreak, nil
	case *minic.ContinueStmt:
		return ctrlContinue, nil
	case *minic.ReturnStmt:
		if st.Value != nil {
			v, err := m.evalExpr(fr, st.Value)
			if err != nil {
				return ctrlNone, err
			}
			rt := fr.fn.Type.Ret
			cv, err := Convert(v, rt.Decay())
			if err != nil {
				return ctrlNone, m.fault(st.Pos, FaultBadCast, "return: %v", err)
			}
			fr.ret = cv
		} else {
			fr.ret = VoidValue()
		}
		return ctrlReturn, nil
	default:
		return ctrlNone, m.fault(s.NodePos(), FaultUnsupported, "statement %T", s)
	}
}
