package interp

import (
	"fmt"

	"facc/internal/minic"
)

// Alloc is one allocation (a global, local, array, or malloc block).
// Memory is modeled as typed scalar cells, so every out-of-bounds or
// use-after-free access is caught exactly — the role AddressSanitizer
// plays in the paper's generate-and-test loop.
type Alloc struct {
	ID    int
	Name  string // diagnostic label ("buf", "malloc#3", ...)
	Cells []Value
	Freed bool

	// Untyped malloc blocks carry a byte size until the first typed use.
	RawBytes int
	ElemType *minic.Type // element type the block was materialized with
}

// Pointer is a typed reference into an allocation: the allocation, a cell
// offset, and the element type the pointer views memory as. A nil Alloc is
// the null pointer.
type Pointer struct {
	Alloc *Alloc
	Off   int // cell index
	Elem  *minic.Type
}

// IsNull reports whether p is the null pointer.
func (p Pointer) IsNull() bool { return p.Alloc == nil }

// AsInt returns a stable integer rendering of the pointer (for the rare
// pointer→int casts; only nullness is meaningful).
func (p Pointer) AsInt() int64 {
	if p.Alloc == nil {
		return 0
	}
	return int64(p.Alloc.ID)<<20 + int64(p.Off) + 1
}

func (p Pointer) String() string {
	if p.IsNull() {
		return "NULL"
	}
	return fmt.Sprintf("&%s[%d]", p.Alloc.Name, p.Off)
}

// FlatSize returns the number of scalar cells an object of type t occupies.
// VLAs and incomplete arrays return 0 (cannot be sized statically).
func FlatSize(t *minic.Type) int {
	switch t.Kind {
	case minic.TArray:
		if t.ArrayLen < 0 {
			return 0
		}
		return t.ArrayLen * FlatSize(t.Elem)
	case minic.TStruct:
		n := 0
		for _, f := range t.Fields {
			n += FlatSize(f.Type)
		}
		return n
	case minic.TVoid:
		return 0
	default:
		return 1
	}
}

// FlatLeaves appends the scalar leaf types of t (in layout order) to dst.
func FlatLeaves(t *minic.Type, dst []*minic.Type) []*minic.Type {
	switch t.Kind {
	case minic.TArray:
		for i := 0; i < t.ArrayLen; i++ {
			dst = FlatLeaves(t.Elem, dst)
		}
		return dst
	case minic.TStruct:
		for _, f := range t.Fields {
			dst = FlatLeaves(f.Type, dst)
		}
		return dst
	default:
		return append(dst, t)
	}
}

// fieldOffset returns the flat cell offset of field index i within struct t.
func fieldOffset(t *minic.Type, i int) int {
	off := 0
	for j := 0; j < i; j++ {
		off += FlatSize(t.Fields[j].Type)
	}
	return off
}

// NewAlloc creates a typed allocation of count elements of type elem.
func (m *Machine) NewAlloc(name string, elem *minic.Type, count int) *Alloc {
	per := FlatSize(elem)
	leaves := FlatLeaves(elem, nil)
	cells := make([]Value, count*per)
	for i := range cells {
		cells[i] = zeroValue(leaves[i%per])
	}
	m.nextAllocID++
	a := &Alloc{ID: m.nextAllocID, Name: name, Cells: cells, ElemType: elem}
	m.liveAllocs++
	return a
}

// newRawAlloc creates an untyped malloc block of the given byte size.
func (m *Machine) newRawAlloc(name string, bytes int) *Alloc {
	m.nextAllocID++
	m.liveAllocs++
	return &Alloc{ID: m.nextAllocID, Name: name, RawBytes: bytes}
}

// materialize gives an untyped malloc block its element type on first
// typed use. Re-materializing with an incompatible type is a fault.
func (m *Machine) materialize(a *Alloc, elem *minic.Type, pos minic.Pos) error {
	if a.Cells != nil || a.ElemType != nil {
		if a.ElemType != nil && !a.ElemType.Same(elem) {
			// Permit views that keep the same scalar leaf type, e.g.
			// float* into a float[2]-shaped block.
			aLeaves := FlatLeaves(a.ElemType, nil)
			eLeaves := FlatLeaves(elem, nil)
			if len(aLeaves) > 0 && len(eLeaves) > 0 && aLeaves[0].Same(eLeaves[0]) {
				return nil
			}
			return m.fault(pos, FaultBadCast,
				"pointer reinterprets %s block as %s", a.ElemType, elem)
		}
		return nil
	}
	size := elem.Sizeof()
	if size <= 0 {
		return m.fault(pos, FaultBadCast, "cannot materialize block as %s", elem)
	}
	count := a.RawBytes / size
	per := FlatSize(elem)
	leaves := FlatLeaves(elem, nil)
	cells := make([]Value, count*per)
	for i := range cells {
		cells[i] = zeroValue(leaves[i%per])
	}
	a.Cells = cells
	a.ElemType = elem
	return nil
}

// checkAccess validates that cells [off, off+n) of the allocation are
// readable/writable through pointer p.
func (m *Machine) checkAccess(p Pointer, n int, pos minic.Pos) error {
	if p.IsNull() {
		return m.fault(pos, FaultNullDeref, "null pointer dereference")
	}
	a := p.Alloc
	if a.Freed {
		return m.fault(pos, FaultUseAfterFree, "use after free of %s", a.Name)
	}
	if a.Cells == nil {
		if err := m.materialize(a, p.Elem, pos); err != nil {
			return err
		}
	}
	if p.Off < 0 || p.Off+n > len(a.Cells) {
		return m.fault(pos, FaultOutOfBounds,
			"out-of-bounds access to %s: cells [%d,%d) of %d",
			a.Name, p.Off, p.Off+n, len(a.Cells))
	}
	return nil
}

// LoadScalar reads the single cell at p.
func (m *Machine) LoadScalar(p Pointer, pos minic.Pos) (Value, error) {
	if err := m.checkAccess(p, 1, pos); err != nil {
		return Value{}, err
	}
	m.Counters.Loads++
	return p.Alloc.Cells[p.Off], nil
}

// StoreScalar writes v (converted to the cell's type) at p.
func (m *Machine) StoreScalar(p Pointer, v Value, pos minic.Pos) error {
	if err := m.checkAccess(p, 1, pos); err != nil {
		return err
	}
	cell := &p.Alloc.Cells[p.Off]
	cv, err := Convert(v, cell.T)
	if err != nil {
		return m.fault(pos, FaultBadCast, "store: %v", err)
	}
	m.Counters.Stores++
	*cell = cv
	return nil
}

// LoadObject reads an object of type t (possibly a struct) at p.
func (m *Machine) LoadObject(p Pointer, t *minic.Type, pos minic.Pos) (Value, error) {
	n := FlatSize(t)
	if t.Kind != minic.TStruct {
		return m.LoadScalar(p, pos)
	}
	if err := m.checkAccess(p, n, pos); err != nil {
		return Value{}, err
	}
	m.Counters.Loads += int64(n)
	fields := make([]Value, n)
	copy(fields, p.Alloc.Cells[p.Off:p.Off+n])
	return Value{K: VStruct, T: t, Fields: fields}, nil
}

// StoreObject writes an object of type t at p. Struct stores copy all
// leaves; scalar stores convert.
func (m *Machine) StoreObject(p Pointer, t *minic.Type, v Value, pos minic.Pos) error {
	if t.Kind != minic.TStruct {
		return m.StoreScalar(p, v, pos)
	}
	n := FlatSize(t)
	if v.K != VStruct || len(v.Fields) != n {
		return m.fault(pos, FaultBadCast, "struct store size mismatch")
	}
	if err := m.checkAccess(p, n, pos); err != nil {
		return err
	}
	m.Counters.Stores += int64(n)
	copy(p.Alloc.Cells[p.Off:p.Off+n], v.Fields)
	return nil
}

// PointerAdd advances p by delta elements of its view type.
func PointerAdd(p Pointer, delta int64) Pointer {
	if p.IsNull() {
		return p
	}
	step := FlatSize(p.Elem)
	if step == 0 {
		step = 1
	}
	p.Off += int(delta) * step
	return p
}

// pointerDiff returns the element distance between two pointers into the
// same allocation.
func (m *Machine) pointerDiff(a, b Pointer, pos minic.Pos) (int64, error) {
	if a.Alloc != b.Alloc {
		return 0, m.fault(pos, FaultBadPointerOp,
			"difference of pointers into different allocations")
	}
	step := FlatSize(a.Elem)
	if step == 0 {
		step = 1
	}
	return int64((a.Off - b.Off) / step), nil
}
