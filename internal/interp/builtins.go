package interp

import (
	"fmt"
	"math"
	"math/cmplx"
	"strings"

	"facc/internal/minic"
)

// callBuiltin dispatches a recognized library call.
func (m *Machine) callBuiltin(fr *frame, x *minic.CallExpr) (Value, error) {
	b := minic.Builtins[x.Builtin]
	args := make([]Value, len(x.Args))
	for i, a := range x.Args {
		v, err := m.evalExpr(fr, a)
		if err != nil {
			return Value{}, err
		}
		if b != nil && !b.Variadic && i < len(b.Params) {
			cv, err := Convert(v, b.Params[i])
			if err != nil {
				return Value{}, m.fault(a.NodePos(), FaultBadCast, "%s: %v", x.Builtin, err)
			}
			v = cv
		}
		args[i] = v
	}
	name := x.Builtin
	// Single-precision variants share implementations; the result is
	// rounded through float32 by FloatValue/ComplexValue.
	base := strings.TrimSuffix(name, "f")
	isF32 := strings.HasSuffix(name, "f") && base != "printf" && name != "fprintf" && name != "printf"
	rt := minic.Double
	crt := minic.ComplexDouble
	if isF32 {
		rt = minic.Float
		crt = minic.ComplexFloat
	}

	if fn, ok := math1[base]; ok && len(args) == 1 && isF32 == (name != base) {
		m.Counters.MathCalls++
		return FloatValue(fn(args[0].Float()), rt), nil
	}
	if fn, ok := math2[base]; ok && len(args) == 2 {
		m.Counters.MathCalls++
		return FloatValue(fn(args[0].Float(), args[1].Float()), rt), nil
	}
	if fn, ok := cmath1[base]; ok && len(args) == 1 {
		m.Counters.MathCalls += 2
		return ComplexValue(fn(args[0].Complex()), crt), nil
	}
	if fn, ok := cmathReal[base]; ok && len(args) == 1 {
		m.Counters.MathCalls++
		return FloatValue(fn(args[0].Complex()), rt), nil
	}

	switch name {
	case "ldexp":
		m.Counters.MathCalls++
		return FloatValue(math.Ldexp(args[0].Float(), int(args[1].Int())), minic.Double), nil
	case "cpow":
		m.Counters.MathCalls += 4
		return ComplexValue(cmplx.Pow(args[0].Complex(), args[1].Complex()), crt), nil
	case "abs":
		m.Counters.IntOps++
		v := args[0].Int()
		if v < 0 {
			v = -v
		}
		return IntValue(v), nil
	case "labs":
		m.Counters.IntOps++
		v := args[0].Int()
		if v < 0 {
			v = -v
		}
		return LongValue(v), nil
	case "malloc":
		return m.builtinMalloc(args[0].Int(), x.Pos)
	case "calloc":
		return m.builtinMalloc(args[0].Int()*args[1].Int(), x.Pos)
	case "realloc":
		return m.builtinRealloc(args[0], args[1].Int(), x.Pos)
	case "free":
		return VoidValue(), m.builtinFree(args[0], x.Pos)
	case "memcpy", "memmove":
		return m.builtinMemcpy(args[0], args[1], args[2].Int(), x.Pos)
	case "memset":
		return m.builtinMemset(args[0], args[1].Int(), args[2].Int(), x.Pos)
	case "printf":
		return m.builtinPrintf(args, x.Pos)
	case "fprintf":
		if len(args) < 1 {
			return IntValue(0), nil
		}
		return m.builtinPrintf(args[1:], x.Pos)
	case "puts":
		s, err := m.cString(args[0], x.Pos)
		if err != nil {
			return Value{}, err
		}
		m.Out.WriteString(s)
		m.Out.WriteByte('\n')
		return IntValue(int64(len(s) + 1)), nil
	case "putchar":
		m.Out.WriteByte(byte(args[0].Int()))
		return IntValue(args[0].Int()), nil
	case "exit":
		m.exitCode = int(args[0].Int())
		return Value{}, m.fault(x.Pos, FaultExit, "exit(%d)", m.exitCode)
	case "assert":
		if args[0].IsZero() {
			return Value{}, m.fault(x.Pos, FaultAssert, "assertion failed")
		}
		return VoidValue(), nil
	}
	return Value{}, m.fault(x.Pos, FaultUnsupported, "builtin %q not implemented", name)
}

var math1 = map[string]func(float64) float64{
	"sin": math.Sin, "cos": math.Cos, "tan": math.Tan,
	"asin": math.Asin, "acos": math.Acos, "atan": math.Atan,
	"sqrt": math.Sqrt, "exp": math.Exp, "log": math.Log,
	"log2": math.Log2, "log10": math.Log10, "fabs": math.Abs,
	"floor": math.Floor, "ceil": math.Ceil, "round": math.Round,
	"trunc": math.Trunc, "cbrt": math.Cbrt, "sinh": math.Sinh,
	"cosh": math.Cosh, "tanh": math.Tanh,
}

var math2 = map[string]func(float64, float64) float64{
	"pow": math.Pow, "atan2": math.Atan2, "fmod": math.Mod,
	"hypot": math.Hypot, "fmin": math.Min, "fmax": math.Max,
}

var cmath1 = map[string]func(complex128) complex128{
	"cexp": cmplx.Exp, "csqrt": cmplx.Sqrt, "conj": cmplx.Conj,
}

var cmathReal = map[string]func(complex128) float64{
	"creal": func(c complex128) float64 { return real(c) },
	"cimag": func(c complex128) float64 { return imag(c) },
	"cabs":  cmplx.Abs,
	"carg":  func(c complex128) float64 { return cmplx.Phase(c) },
}

func (m *Machine) builtinMalloc(size int64, pos minic.Pos) (Value, error) {
	if size < 0 {
		return Value{}, m.fault(pos, FaultOutOfBounds, "malloc of negative size %d", size)
	}
	m.Counters.Allocs++
	a := m.newRawAlloc(fmt.Sprintf("malloc#%d", m.nextAllocID+1), int(size))
	return PointerValue(Pointer{Alloc: a, Elem: minic.Void}, minic.PointerTo(minic.Void)), nil
}

func (m *Machine) builtinRealloc(old Value, size int64, pos minic.Pos) (Value, error) {
	nv, err := m.builtinMalloc(size, pos)
	if err != nil {
		return Value{}, err
	}
	if old.K == VPointer && !old.P.IsNull() {
		oa := old.P.Alloc
		if oa.Freed {
			return Value{}, m.fault(pos, FaultUseAfterFree, "realloc of freed block")
		}
		na := nv.P.Alloc
		if oa.Cells != nil {
			na.ElemType = oa.ElemType
			n := len(oa.Cells)
			target := n
			if oa.ElemType != nil {
				if es := oa.ElemType.Sizeof(); es > 0 {
					target = int(size) / es * FlatSize(oa.ElemType)
				}
			}
			cells := make([]Value, target)
			leaves := FlatLeaves(oa.ElemType, nil)
			per := len(leaves)
			for i := range cells {
				if i < n {
					cells[i] = oa.Cells[i]
				} else if per > 0 {
					cells[i] = zeroValue(leaves[i%per])
				}
			}
			na.Cells = cells
			na.RawBytes = 0
		}
		oa.Freed = true
	}
	return nv, nil
}

func (m *Machine) builtinFree(v Value, pos minic.Pos) error {
	if v.K != VPointer {
		return m.fault(pos, FaultBadPointerOp, "free of non-pointer")
	}
	if v.P.IsNull() {
		return nil // free(NULL) is a no-op
	}
	if v.P.Alloc.Freed {
		return m.fault(pos, FaultDoubleFree, "double free of %s", v.P.Alloc.Name)
	}
	if v.P.Off != 0 {
		return m.fault(pos, FaultBadPointerOp, "free of interior pointer into %s", v.P.Alloc.Name)
	}
	v.P.Alloc.Freed = true
	m.liveAllocs--
	return nil
}

func (m *Machine) builtinMemcpy(dst, src Value, nbytes int64, pos minic.Pos) (Value, error) {
	if dst.K != VPointer || src.K != VPointer {
		return Value{}, m.fault(pos, FaultBadPointerOp, "memcpy of non-pointers")
	}
	dp, sp := dst.P, src.P
	// Use the source view to size the copy; fall back to the destination.
	elem := sp.Elem
	if elem == nil || elem.Kind == minic.TVoid {
		elem = dp.Elem
	}
	if elem == nil || elem.Kind == minic.TVoid || elem.Sizeof() == 0 {
		return Value{}, m.fault(pos, FaultBadPointerOp, "memcpy through untyped pointers")
	}
	if int(nbytes)%elem.Sizeof() != 0 {
		return Value{}, m.fault(pos, FaultBadPointerOp,
			"memcpy of %d bytes is not a multiple of sizeof(%s)", nbytes, elem)
	}
	count := int(nbytes) / elem.Sizeof() * FlatSize(elem)
	dp.Elem, sp.Elem = elem, elem
	if err := m.checkAccess(sp, count, pos); err != nil {
		return Value{}, err
	}
	if err := m.checkAccess(dp, count, pos); err != nil {
		return Value{}, err
	}
	m.Counters.Loads += int64(count)
	m.Counters.Stores += int64(count)
	tmp := make([]Value, count)
	copy(tmp, sp.Alloc.Cells[sp.Off:sp.Off+count])
	for i, v := range tmp {
		cv, err := Convert(v, dp.Alloc.Cells[dp.Off+i].T)
		if err != nil {
			return Value{}, m.fault(pos, FaultBadCast, "memcpy: %v", err)
		}
		dp.Alloc.Cells[dp.Off+i] = cv
	}
	return dst, nil
}

func (m *Machine) builtinMemset(dst Value, val, nbytes int64, pos minic.Pos) (Value, error) {
	if dst.K != VPointer {
		return Value{}, m.fault(pos, FaultBadPointerOp, "memset of non-pointer")
	}
	if val != 0 {
		return Value{}, m.fault(pos, FaultUnsupported, "memset with non-zero value %d", val)
	}
	p := dst.P
	elem := p.Elem
	if elem == nil || elem.Kind == minic.TVoid || elem.Sizeof() == 0 {
		return Value{}, m.fault(pos, FaultBadPointerOp, "memset through untyped pointer")
	}
	if int(nbytes)%elem.Sizeof() != 0 {
		return Value{}, m.fault(pos, FaultBadPointerOp,
			"memset of %d bytes is not a multiple of sizeof(%s)", nbytes, elem)
	}
	count := int(nbytes) / elem.Sizeof() * FlatSize(elem)
	if err := m.checkAccess(p, count, pos); err != nil {
		return Value{}, err
	}
	m.Counters.Stores += int64(count)
	for i := 0; i < count; i++ {
		cell := &p.Alloc.Cells[p.Off+i]
		*cell = zeroValue(cell.T)
	}
	return dst, nil
}

// cString reads a NUL-terminated string through a char pointer.
func (m *Machine) cString(v Value, pos minic.Pos) (string, error) {
	if v.K != VPointer {
		return "", m.fault(pos, FaultBadPointerOp, "expected string pointer")
	}
	var b strings.Builder
	p := v.P
	p.Elem = minic.Char
	for {
		cv, err := m.LoadScalar(p, pos)
		if err != nil {
			return "", err
		}
		if cv.I == 0 {
			return b.String(), nil
		}
		b.WriteByte(byte(cv.I))
		p.Off++
		if b.Len() > 1<<20 {
			return "", m.fault(pos, FaultOutOfBounds, "unterminated string")
		}
	}
}

// builtinPrintf implements the printf subset the corpus uses:
// %d %i %u %ld %lu %f %lf %g %e %c %s %x %% with optional width/precision.
func (m *Machine) builtinPrintf(args []Value, pos minic.Pos) (Value, error) {
	if len(args) == 0 {
		return IntValue(0), nil
	}
	format, err := m.cString(args[0], pos)
	if err != nil {
		return Value{}, err
	}
	rest := args[1:]
	argi := 0
	nextArg := func() (Value, bool) {
		if argi < len(rest) {
			v := rest[argi]
			argi++
			return v, true
		}
		return Value{}, false
	}
	var out strings.Builder
	i := 0
	for i < len(format) {
		c := format[i]
		if c != '%' {
			out.WriteByte(c)
			i++
			continue
		}
		// Collect the directive.
		j := i + 1
		for j < len(format) && strings.ContainsRune("-+ 0123456789.*lhz", rune(format[j])) {
			j++
		}
		if j >= len(format) {
			out.WriteByte('%')
			break
		}
		verb := format[j]
		spec := format[i : j+1]
		goSpec := strings.Map(func(r rune) rune {
			if r == 'l' || r == 'h' || r == 'z' {
				return -1
			}
			return r
		}, spec)
		switch verb {
		case '%':
			out.WriteByte('%')
		case 'd', 'i':
			v, _ := nextArg()
			fmt.Fprintf(&out, strings.Replace(goSpec, string(verb), "d", 1), v.Int())
		case 'u', 'x', 'X', 'o':
			v, _ := nextArg()
			gverb := verb
			if verb == 'u' {
				gverb = 'd'
			}
			fmt.Fprintf(&out, strings.Replace(goSpec, string(verb), string(gverb), 1), uint64(v.Int()))
		case 'f', 'F', 'e', 'E', 'g', 'G':
			v, _ := nextArg()
			fmt.Fprintf(&out, goSpec, v.Float())
		case 'c':
			v, _ := nextArg()
			out.WriteByte(byte(v.Int()))
		case 's':
			v, ok := nextArg()
			if ok {
				s, err := m.cString(v, pos)
				if err != nil {
					return Value{}, err
				}
				fmt.Fprintf(&out, strings.Replace(goSpec, "s", "s", 1), s)
			}
		case 'p':
			v, _ := nextArg()
			fmt.Fprintf(&out, "%#x", v.Int())
		default:
			out.WriteString(spec)
		}
		i = j + 1
	}
	m.Out.WriteString(out.String())
	return IntValue(int64(out.Len())), nil
}

// Output returns everything the program printed so far.
func (m *Machine) Output() string { return m.Out.String() }

// ExitCode returns the code passed to exit(), if the program exited.
func (m *Machine) ExitCode() int { return m.exitCode }
