package interp

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"facc/internal/minic"
)

const fuelSrc = `
int spin(int n) {
    while (1) { n = n + 1; }
    return n;
}
int recurse(int n) {
    return recurse(n + 1);
}
int work(int n) {
    int i;
    int s;
    s = 0;
    for (i = 0; i < n; i = i + 1) { s = s + i; }
    return s;
}
`

func fuelMachine(t *testing.T) *Machine {
	t.Helper()
	f, err := minic.ParseAndCheck("fuel.c", fuelSrc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	m, err := NewMachine(f)
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	return m
}

func TestFuelExhaustedOnInfiniteLoop(t *testing.T) {
	m := fuelMachine(t)
	m.MaxSteps = 10_000
	_, err := m.CallNamed("spin", []Value{IntValue(0)})
	if err == nil {
		t.Fatal("infinite while terminated")
	}
	if k := FaultOf(err); k != FaultFuelExhausted {
		t.Fatalf("FaultOf = %v, want fuel-exhausted (err: %v)", k, err)
	}
	if m.Counters.Steps <= m.MaxSteps {
		t.Fatalf("steps = %d, expected the counter to pass the %d budget",
			m.Counters.Steps, m.MaxSteps)
	}
}

func TestStackOverflowOnDeepRecursion(t *testing.T) {
	m := fuelMachine(t)
	m.MaxDepth = 100
	_, err := m.CallNamed("recurse", []Value{IntValue(0)})
	if err == nil {
		t.Fatal("unbounded recursion terminated")
	}
	if k := FaultOf(err); k != FaultStackOverflow {
		t.Fatalf("FaultOf = %v, want stack-overflow (err: %v)", k, err)
	}
}

func TestDefaultDepthLimitCatchesRecursion(t *testing.T) {
	m := fuelMachine(t)
	// The zero MaxDepth falls back to DefaultMaxDepth, which must trip
	// before the Go runtime's own stack does.
	_, err := m.CallNamed("recurse", []Value{IntValue(0)})
	if k := FaultOf(err); k != FaultStackOverflow {
		t.Fatalf("FaultOf = %v, want stack-overflow (err: %v)", k, err)
	}
}

func TestFuelResetsBetweenCalls(t *testing.T) {
	m := fuelMachine(t)
	m.MaxSteps = 2_000
	args := []Value{IntValue(50)}

	// With Reset between calls each run gets a fresh budget: many calls,
	// none exhausts.
	for i := 0; i < 20; i++ {
		if _, err := m.CallNamed("work", args); err != nil {
			t.Fatalf("call %d with Reset: %v", i, err)
		}
		if i == 0 && m.Counters.Steps == 0 {
			t.Fatal("work(50) consumed no steps; the budget test is vacuous")
		}
		m.Reset()
		if m.Counters.Steps != 0 {
			t.Fatalf("Reset left Counters.Steps = %d", m.Counters.Steps)
		}
	}

	// Without Reset the spent fuel accumulates until the budget trips.
	var err error
	for i := 0; i < 100 && err == nil; i++ {
		_, err = m.CallNamed("work", args)
	}
	if k := FaultOf(err); k != FaultFuelExhausted {
		t.Fatalf("FaultOf = %v, want fuel-exhausted after un-Reset calls (err: %v)", k, err)
	}

	// Reset restores the budget after exhaustion too.
	m.Reset()
	if _, err := m.CallNamed("work", args); err != nil {
		t.Fatalf("call after exhaustion+Reset: %v", err)
	}
}

func TestFaultOfSeesThroughWrapping(t *testing.T) {
	m := fuelMachine(t)
	m.MaxSteps = 1_000
	_, err := m.CallNamed("spin", []Value{IntValue(0)})
	wrapped := fmt.Errorf("synth: candidate 3: %w", fmt.Errorf("fuzz case 7: %w", err))
	if k := FaultOf(wrapped); k != FaultFuelExhausted {
		t.Fatalf("FaultOf(wrapped) = %v, want fuel-exhausted", k)
	}
	if FaultOf(errors.New("unrelated")) != FaultNone {
		t.Fatal("FaultOf(non-runtime error) != FaultNone")
	}
	if FaultOf(nil) != FaultNone {
		t.Fatal("FaultOf(nil) != FaultNone")
	}
}

func TestCancellationFaultUnwrapsToContextError(t *testing.T) {
	m := fuelMachine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m.Ctx = ctx
	_, err := m.CallNamed("spin", []Value{IntValue(0)})
	if k := FaultOf(err); k != FaultCancelled {
		t.Fatalf("FaultOf = %v, want cancelled (err: %v)", k, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("errors.Is(err, context.Canceled) = false for %v", err)
	}
	// The poll stride bounds how much work runs after cancellation.
	if m.Counters.Steps > 2*ctxPollStride {
		t.Fatalf("cancelled run still took %d steps (stride %d)", m.Counters.Steps, ctxPollStride)
	}
}
