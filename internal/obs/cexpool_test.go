package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func poolEvents() []KillEvent {
	return []KillEvent{
		{Function: "fft", Target: "ffta", Candidate: "c1", Family: "famA",
			Seed: 42, CaseIndex: 0, CaseSig: "seed=42 n=64 case=0", Len: 64,
			Mismatch: "behavior-mismatch"},
		{Function: "fft", Target: "ffta", Candidate: "c2", Family: "famB",
			Seed: 42, CaseIndex: 0, CaseSig: "seed=42 n=64 case=0", Len: 64,
			Mismatch: "behavior-mismatch"},
		{Function: "fft", Target: "fftw", Candidate: "c3", Family: "famA",
			Seed: 42, CaseIndex: 2, CaseSig: "seed=42 n=128 case=2", Len: 128,
			Mismatch: "return-mismatch"},
		// Caseless: never pooled.
		{Function: "fft", Target: "ffta", Candidate: "c4", Family: "famC",
			Seed: 42, CaseIndex: -1, Mismatch: "timeout"},
	}
}

func TestCexPoolRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cex.jsonl")
	p := NewCexPool()
	now := time.Unix(1000, 0)
	p.AbsorbEvents(poolEvents(), now)
	if p.Len() != 2 {
		t.Fatalf("pool has %d entries, want 2 (caseless events skipped)", p.Len())
	}
	if err := p.Flush(path); err != nil {
		t.Fatal(err)
	}

	q, info, err := LoadCexPool(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Loaded != 2 || info.Quarantined != "" {
		t.Fatalf("load info = %+v, want 2 loaded, none quarantined", info)
	}
	e, ok := q.Get("seed=42 n=64 case=0")
	if !ok {
		t.Fatal("top case missing after round trip")
	}
	if e.Kills != 2 || e.FamilyCount != 2 || e.Seed != 42 || e.Len != 64 || e.Case != 0 {
		t.Errorf("entry = %+v, want 2 kills across famA+famB", e)
	}
	if len(e.Families) != 2 || e.Families[0] != "famA" || e.Families[1] != "famB" {
		t.Errorf("families = %v, want sorted [famA famB]", e.Families)
	}
	if e.FirstSeenUnix != 1000 || e.LastUsefulUnix != 1000 {
		t.Errorf("timestamps = %d/%d, want 1000/1000", e.FirstSeenUnix, e.LastUsefulUnix)
	}

	// A second run accumulates into the loaded pool.
	q.AbsorbEvents(poolEvents()[:1], time.Unix(2000, 0))
	e, _ = q.Get("seed=42 n=64 case=0")
	if e.Kills != 3 || e.FamilyCount != 2 {
		t.Errorf("after second absorb: kills=%d families=%d, want 3/2", e.Kills, e.FamilyCount)
	}
	if e.FirstSeenUnix != 1000 || e.LastUsefulUnix != 2000 {
		t.Errorf("timestamps = %d/%d, want first 1000, last-useful 2000",
			e.FirstSeenUnix, e.LastUsefulUnix)
	}

	// Ranking: the 2-family case outranks the 1-family case.
	ranked := q.Entries()
	if ranked[0].Sig != "seed=42 n=64 case=0" {
		t.Errorf("top-ranked = %q, want the multi-family case", ranked[0].Sig)
	}
}

func TestCexPoolLoadMissing(t *testing.T) {
	p, info, err := LoadCexPool(filepath.Join(t.TempDir(), "absent.jsonl"))
	if err != nil || p.Len() != 0 || info.Loaded != 0 || info.Quarantined != "" {
		t.Fatalf("missing file: pool=%d info=%+v err=%v, want empty/clean/nil",
			p.Len(), info, err)
	}
}

// TestCexPoolCorruptQuarantined: a torn or tampered pool is moved aside
// (never deleted) and loading recovers with an empty pool.
func TestCexPoolCorruptQuarantined(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cex.jsonl")
	for name, data := range map[string]string{
		"garbage":       "not json at all\n",
		"no-trailer":    `{"sig":"seed=1 n=64 case=0","seed":1,"len":64,"case":0,"kills":1}` + "\n",
		"bad-checksum":  `{"sig":"seed=1 n=64 case=0","seed":1,"len":64,"case":0,"kills":1}` + "\n" + `{"cex_checksum":"deadbeef"}` + "\n",
		"torn-mid-line": `{"sig":"seed=1 n=6`,
	} {
		if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
		p, info, err := LoadCexPool(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Len() != 0 {
			t.Errorf("%s: recovered pool has %d entries, want 0", name, p.Len())
		}
		if info.Quarantined == "" {
			t.Fatalf("%s: corrupt pool not quarantined", name)
		}
		if _, err := os.Stat(info.Quarantined); err != nil {
			t.Errorf("%s: quarantine file missing: %v", name, err)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Errorf("%s: corrupt original still at path (err=%v)", name, err)
		}
	}
	// Repeated corruption gets numbered quarantine names, no clobbering.
	names, _ := filepath.Glob(filepath.Join(dir, "*.quarantine*"))
	if len(names) != 4 {
		t.Errorf("%d quarantine files, want 4 distinct: %v", len(names), names)
	}
}

// TestCexPoolCrashMidFlush: a crash at any I/O step of Flush leaves the
// previous complete pool loadable — the atomic-write contract.
func TestCexPoolCrashMidFlush(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cex.jsonl")
	p := NewCexPool()
	p.AbsorbEvents(poolEvents(), time.Unix(1000, 0))
	if err := p.Flush(path); err != nil {
		t.Fatal(err)
	}

	for _, crashAt := range []string{"write", "sync", "rename"} {
		p2 := NewCexPool()
		p2.AbsorbEvents(poolEvents(), time.Unix(2000, 0))
		p2.AbsorbEvents(poolEvents(), time.Unix(3000, 0))
		p2.FaultHook = func(op string) error {
			if op == crashAt {
				return fmt.Errorf("injected crash at %s", op)
			}
			return nil
		}
		if err := p2.Flush(path); err == nil || !strings.Contains(err.Error(), crashAt) {
			t.Fatalf("crash at %s: Flush err = %v, want injected failure", crashAt, err)
		}
		got, info, err := LoadCexPool(path)
		if err != nil || info.Quarantined != "" {
			t.Fatalf("crash at %s: reload err=%v info=%+v, want clean previous pool",
				crashAt, err, info)
		}
		e, ok := got.Get("seed=42 n=64 case=0")
		if !ok || e.Kills != 2 {
			t.Errorf("crash at %s: previous pool content lost (kills=%d, want 2)",
				crashAt, e.Kills)
		}
	}
}

// TestCexPoolFamilySampleBounded: the family count keeps growing past
// the stored sample cap.
func TestCexPoolFamilySampleBounded(t *testing.T) {
	p := NewCexPool()
	var events []KillEvent
	for i := 0; i < maxPoolFamilies+5; i++ {
		events = append(events, KillEvent{
			Function: "fft", Target: "ffta", Candidate: "c",
			Family: fmt.Sprintf("fam%03d", i), Seed: 1, CaseIndex: 0,
			CaseSig: "seed=1 n=64 case=0", Len: 64, Mismatch: "behavior-mismatch"})
	}
	p.AbsorbEvents(events, time.Unix(1, 0))
	e, _ := p.Get("seed=1 n=64 case=0")
	if e.FamilyCount != maxPoolFamilies+5 {
		t.Errorf("FamilyCount = %d, want %d", e.FamilyCount, maxPoolFamilies+5)
	}
	if len(e.Families) != maxPoolFamilies {
		t.Errorf("stored sample = %d names, want cap %d", len(e.Families), maxPoolFamilies)
	}
}

// TestCexPoolFlushPrunes: flush keeps only the top maxPoolEntries.
func TestCexPoolFlushPrunes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cex.jsonl")
	p := NewCexPool()
	var events []KillEvent
	for i := 0; i < maxPoolEntries+40; i++ {
		events = append(events, KillEvent{
			Function: "fft", Target: "ffta", Candidate: "c", Family: "famA",
			Seed: 1, CaseIndex: i, CaseSig: fmt.Sprintf("seed=1 n=64 case=%d", i),
			Len: 64, Mismatch: "behavior-mismatch"})
	}
	// One case is strictly better: it killed a second family.
	events = append(events, KillEvent{
		Function: "fft", Target: "ffta", Candidate: "c2", Family: "famB",
		Seed: 1, CaseIndex: 7, CaseSig: "seed=1 n=64 case=7", Len: 64,
		Mismatch: "behavior-mismatch"})
	p.AbsorbEvents(events, time.Unix(1, 0))
	if err := p.Flush(path); err != nil {
		t.Fatal(err)
	}
	got, info, err := LoadCexPool(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Loaded != maxPoolEntries {
		t.Errorf("loaded %d entries, want pruned to %d", info.Loaded, maxPoolEntries)
	}
	if got.Entries()[0].Sig != "seed=1 n=64 case=7" {
		t.Errorf("top entry = %q, want the multi-family case to survive pruning",
			got.Entries()[0].Sig)
	}
}

// TestCexPoolConcurrent absorbs from parallel goroutines (run under
// -race) the way concurrent faccd compiles feed one shared pool.
func TestCexPoolConcurrent(t *testing.T) {
	p := NewCexPool()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				p.AbsorbEvents([]KillEvent{{
					Function: "fft", Target: "ffta", Candidate: "c",
					Family: fmt.Sprintf("fam%d", g), Seed: 1, CaseIndex: 0,
					CaseSig: "seed=1 n=64 case=0", Len: 64,
					Mismatch: "behavior-mismatch"}}, time.Unix(int64(i), 0))
			}
		}()
	}
	wg.Wait()
	e, ok := p.Get("seed=1 n=64 case=0")
	if !ok || e.Kills != 400 || e.FamilyCount != 8 {
		t.Errorf("entry = %+v, want 400 kills across 8 families", e)
	}
}

// TestNilCexPoolSafe: the disabled pool is a no-op everywhere.
func TestNilCexPoolSafe(t *testing.T) {
	var p *CexPool
	p.AbsorbEvents(poolEvents(), time.Unix(1, 0))
	p.Absorb(nil, time.Unix(1, 0))
	if p.Len() != 0 {
		t.Error("nil pool Len != 0")
	}
	if _, ok := p.Get("x"); ok {
		t.Error("nil pool Get ok")
	}
	if p.Entries() != nil {
		t.Error("nil pool Entries non-nil")
	}
	if err := p.Flush(filepath.Join(t.TempDir(), "cex.jsonl")); err != nil {
		t.Errorf("nil pool Flush err = %v", err)
	}
}
