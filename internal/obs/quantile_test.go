package obs

import (
	"sync"
	"testing"
)

// TestQuantileEdgeCases pins the histogram quantile contract at its
// boundaries: empty snapshots report zero, q=0 clamps to the first
// populated bucket, q=1 lands on the last populated bucket, and any
// quantile that falls in the +Inf overflow bucket reports the observed
// maximum rather than a bucket bound.
func TestQuantileEdgeCases(t *testing.T) {
	var empty HistSnapshot
	for _, q := range []float64{0, 0.5, 1} {
		if got := empty.Quantile(q); got != 0 {
			t.Errorf("empty.Quantile(%g) = %g, want 0", q, got)
		}
	}
	if got := empty.Mean(); got != 0 {
		t.Errorf("empty.Mean() = %g, want 0", got)
	}

	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 5, 10})
	for _, v := range []float64{0.5, 3, 7} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if got := s.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %g, want first populated bound 1", got)
	}
	if got := s.Quantile(1); got != 10 {
		t.Errorf("Quantile(1) = %g, want last populated bound 10", got)
	}

	// All mass beyond the final bound: every quantile is the overflow
	// bucket, which must report the observed max, not +Inf or a bound.
	over := r.Histogram("over", []float64{1, 5, 10})
	over.Observe(250)
	over.Observe(90)
	so := over.Snapshot()
	for _, q := range []float64{0, 0.5, 1} {
		if got := so.Quantile(q); got != 250 {
			t.Errorf("overflow Quantile(%g) = %g, want observed max 250", q, got)
		}
	}

	// q above 1 degrades to the max rather than panicking.
	if got := s.Quantile(2); got != s.Max {
		t.Errorf("Quantile(2) = %g, want max %g", got, s.Max)
	}
}

// TestHistogramConcurrentObserveSnapshot exercises Observe racing with
// Snapshot from many goroutines; run under -race (make test-race) this
// verifies the histogram's locking discipline, and the final snapshot
// must account for every observation exactly once.
func TestHistogramConcurrentObserveSnapshot(t *testing.T) {
	r := NewRegistry()
	const goroutines, perG = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := r.Histogram("contended", CountBuckets)
			for i := 0; i < perG; i++ {
				h.Observe(float64(i % 50))
				if i%100 == 0 {
					_ = h.Snapshot()
					_ = r.Histograms()
				}
			}
		}(g)
	}
	wg.Wait()
	s := r.Histogram("contended", CountBuckets).Snapshot()
	if s.Count != goroutines*perG {
		t.Errorf("count = %d, want %d", s.Count, goroutines*perG)
	}
	var sum int64
	for _, c := range s.Counts {
		sum += c
	}
	if sum != s.Count {
		t.Errorf("bucket counts sum to %d, want %d", sum, s.Count)
	}
	if s.Max != 49 {
		t.Errorf("max = %g, want 49", s.Max)
	}
}
