package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// The search observatory records *why* the generate-and-test loop
// converges: which IO case killed which binding candidate, how early,
// and how the candidate population moves through the funnel
// (generated → pre-filtered → dispatched → killed/superseded →
// survivor). The two ROADMAP synthesis items — parallel-search
// economics and counterexample-guided synthesis — both act on this
// signal; this file only measures it.
//
// KillTable follows the Ledger's scoped-view pattern: NewKillTable
// allocates shared state, Scoped stamps a per-request view with a trace
// ID, and every method is safe (and a zero-allocation no-op) on a nil
// receiver so disabled observability costs nothing on the verdict path.
// Like the ledger — and unlike the journal, which buffers speculative
// work and replays only the winner's prefix — the kill table records
// parallel speculation as it happens: wasted kills are precisely the
// search-economics evidence it exists to collect.

// KillEvent records one candidate's death, attributed to the
// discriminating IO case that caused it. CaseIndex is -1 when no single
// case is attributable (not-viable, timeout, panic).
type KillEvent struct {
	Trace     string `json:"trace,omitempty"`
	Function  string `json:"function"`
	Target    string `json:"target"`
	Candidate string `json:"candidate"` // full binding key
	Family    string `json:"family"`    // user-visible binding-family key (iogen.UserSig)
	Seed      int64  `json:"seed"`
	CaseIndex int    `json:"case"`               // 0-based killing case, or -1
	CaseSig   string `json:"case_sig,omitempty"` // user-visible case identity (iogen.CaseSig)
	Len       int64  `json:"len,omitempty"`      // accelerator length of the killing case
	Steps     int64  `json:"steps"`              // interp steps charged to the candidate at death
	Mismatch  string `json:"mismatch"`           // behavior-mismatch, domain-error, fault kind, ...
	Detail    string `json:"detail,omitempty"`
}

// funnelKey identifies one function's search on one target within one
// trace; per-trace so faccd flight records can carve out their request.
type funnelKey struct {
	trace    string
	function string
	target   string
}

// Funnel counts one (trace, function, target) search population through
// its stages. Generated counts every hypothesis the enumerator formed;
// PreFiltered those rejected before fuzzing (heuristics, dedup, cap);
// Dispatched candidates that entered IO testing; Killed/Superseded/
// Survived their fates; Winners the accepted adapters.
type Funnel struct {
	Trace       string `json:"trace,omitempty"`
	Function    string `json:"function"`
	Target      string `json:"target"`
	Generated   int64  `json:"generated"`
	PreFiltered int64  `json:"pre_filtered"`
	Dispatched  int64  `json:"dispatched"`
	Killed      int64  `json:"killed"`
	Superseded  int64  `json:"superseded"`
	Survived    int64  `json:"survived"`
	Winners     int64  `json:"winners"`
}

// killState is the shared store behind every scoped KillTable view.
type killState struct {
	mu      sync.Mutex
	events  []KillEvent
	funnels map[funnelKey]*Funnel
}

// KillTable aggregates kill events and funnel counters. The zero value
// of the pointer (nil) is a valid, disabled table.
type KillTable struct {
	trace string
	s     *killState
}

// NewKillTable returns an empty kill table.
func NewKillTable() *KillTable {
	return &KillTable{s: &killState{funnels: make(map[funnelKey]*Funnel)}}
}

// Scoped returns a view that stamps every event and funnel with the
// trace ID. Nil-safe; an empty trace returns the table unchanged.
func (k *KillTable) Scoped(trace string) *KillTable {
	if k == nil || trace == "" || k.trace == trace {
		return k
	}
	return &KillTable{trace: trace, s: k.s}
}

// Trace returns the trace ID this view stamps, or "".
func (k *KillTable) Trace() string {
	if k == nil {
		return ""
	}
	return k.trace
}

// Record appends one kill event, stamping the view's trace and
// crediting the (function, target) funnel's Killed stage.
func (k *KillTable) Record(ev KillEvent) {
	if k == nil {
		return
	}
	if ev.Trace == "" {
		ev.Trace = k.trace
	}
	s := k.s
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events, ev)
	s.funnel(ev.Trace, ev.Function, ev.Target).Killed++
}

// funnel returns the counter row for (trace, function, target),
// creating it if needed. Caller holds s.mu.
func (s *killState) funnel(trace, function, target string) *Funnel {
	key := funnelKey{trace: trace, function: function, target: target}
	f := s.funnels[key]
	if f == nil {
		f = &Funnel{Trace: trace, Function: function, Target: target}
		s.funnels[key] = f
	}
	return f
}

// add credits n to one funnel stage selected by bump.
func (k *KillTable) add(function, target string, n int64, bump func(*Funnel, int64)) {
	if k == nil || n == 0 {
		return
	}
	s := k.s
	s.mu.Lock()
	defer s.mu.Unlock()
	bump(s.funnel(k.trace, function, target), n)
}

// AddGenerated credits hypotheses formed by the enumerator.
func (k *KillTable) AddGenerated(function, target string, n int64) {
	k.add(function, target, n, func(f *Funnel, n int64) { f.Generated += n })
}

// AddPreFiltered credits hypotheses rejected before fuzzing.
func (k *KillTable) AddPreFiltered(function, target string, n int64) {
	k.add(function, target, n, func(f *Funnel, n int64) { f.PreFiltered += n })
}

// AddDispatched credits candidates that entered IO testing.
func (k *KillTable) AddDispatched(function, target string, n int64) {
	k.add(function, target, n, func(f *Funnel, n int64) { f.Dispatched += n })
}

// AddSuperseded credits candidates cancelled because an earlier
// candidate already survived.
func (k *KillTable) AddSuperseded(function, target string, n int64) {
	k.add(function, target, n, func(f *Funnel, n int64) { f.Superseded += n })
}

// AddSurvived credits candidates that passed every IO test.
func (k *KillTable) AddSurvived(function, target string, n int64) {
	k.add(function, target, n, func(f *Funnel, n int64) { f.Survived += n })
}

// AddWinner credits the accepted adapter.
func (k *KillTable) AddWinner(function, target string, n int64) {
	k.add(function, target, n, func(f *Funnel, n int64) { f.Winners += n })
}

// Len returns the number of recorded kill events.
func (k *KillTable) Len() int {
	if k == nil {
		return 0
	}
	k.s.mu.Lock()
	defer k.s.mu.Unlock()
	return len(k.s.events)
}

// Empty reports whether the table holds neither events nor funnels.
func (k *KillTable) Empty() bool {
	if k == nil {
		return true
	}
	k.s.mu.Lock()
	defer k.s.mu.Unlock()
	return len(k.s.events) == 0 && len(k.s.funnels) == 0
}

// Events returns a copy of every kill event in recording order.
func (k *KillTable) Events() []KillEvent {
	if k == nil {
		return nil
	}
	k.s.mu.Lock()
	defer k.s.mu.Unlock()
	out := make([]KillEvent, len(k.s.events))
	copy(out, k.s.events)
	return out
}

// TraceEvents returns the kill events stamped with the trace ID.
func (k *KillTable) TraceEvents(trace string) []KillEvent {
	if k == nil || trace == "" {
		return nil
	}
	k.s.mu.Lock()
	defer k.s.mu.Unlock()
	var out []KillEvent
	for _, ev := range k.s.events {
		if ev.Trace == trace {
			out = append(out, ev)
		}
	}
	return out
}

// Funnels returns a copy of every funnel row, sorted by (trace,
// function, target).
func (k *KillTable) Funnels() []Funnel {
	if k == nil {
		return nil
	}
	k.s.mu.Lock()
	defer k.s.mu.Unlock()
	out := make([]Funnel, 0, len(k.s.funnels))
	for _, f := range k.s.funnels {
		out = append(out, *f)
	}
	sortFunnels(out)
	return out
}

func sortFunnels(fs []Funnel) {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].Trace != fs[j].Trace {
			return fs[i].Trace < fs[j].Trace
		}
		if fs[i].Function != fs[j].Function {
			return fs[i].Function < fs[j].Function
		}
		return fs[i].Target < fs[j].Target
	})
}

// CaseStats aggregates one IO case's kill record on one target. A case
// that kills candidates from more than one binding family is a strong
// discriminating input — the exact thing a CEGIS replay loop wants
// to try first.
type CaseStats struct {
	Target   string           `json:"target"`
	Sig      string           `json:"sig"` // user-visible case identity
	Kills    int64            `json:"kills"`
	Families int              `json:"families"` // distinct binding families killed
	Mismatch map[string]int64 `json:"mismatch,omitempty"`
}

// KillDepthBucket counts the candidates killed at one 0-based case
// index. Index -1 holds caseless deaths (not-viable, timeout, panic).
type KillDepthBucket struct {
	CaseIndex int   `json:"case"`
	Kills     int64 `json:"kills"`
}

// TargetSearch is the per-target rollup inside a SearchSummary.
type TargetSearch struct {
	Target           string `json:"target"`
	Generated        int64  `json:"generated"`
	PreFiltered      int64  `json:"pre_filtered"`
	Dispatched       int64  `json:"dispatched"`
	Killed           int64  `json:"killed"`
	Superseded       int64  `json:"superseded"`
	Survived         int64  `json:"survived"`
	Winners          int64  `json:"winners"`
	MultiFamilyCases int    `json:"multi_family_cases"`
}

// SearchSummary is the aggregated view of a kill table: the funnel
// totals, the kill-depth distribution, the per-case effectiveness
// ranking, and per-target rollups. Serialized into BENCH_synth.json's
// "search" section and the /status search block.
type SearchSummary struct {
	Generated   int64 `json:"generated"`
	PreFiltered int64 `json:"pre_filtered"`
	Dispatched  int64 `json:"dispatched"`
	Killed      int64 `json:"killed"`
	Superseded  int64 `json:"superseded"`
	Survived    int64 `json:"survived"`
	Winners     int64 `json:"winners"`

	// KillDepth is the histogram of kills by 0-based case index
	// (bucket -1 = caseless), ascending.
	KillDepth []KillDepthBucket `json:"kill_depth,omitempty"`
	// Mismatch tallies kills by mismatch kind.
	Mismatch map[string]int64 `json:"mismatch,omitempty"`
	// Cases ranks IO cases by families-killed desc, kills desc, sig.
	Cases []CaseStats `json:"cases,omitempty"`
	// MultiFamilyCases counts cases that killed >1 binding family.
	MultiFamilyCases int `json:"multi_family_cases"`
	// PerTarget rolls the funnel and case stats up by target.
	PerTarget []TargetSearch `json:"per_target,omitempty"`
}

// Summary aggregates the whole table. Returns nil on a nil or empty
// table so JSON embeddings can omit the section.
func (k *KillTable) Summary() *SearchSummary {
	if k == nil {
		return nil
	}
	return k.summarize(func(string) bool { return true })
}

// TraceSummary aggregates only events and funnels stamped with the
// trace ID; nil when the trace recorded nothing.
func (k *KillTable) TraceSummary(trace string) *SearchSummary {
	if k == nil || trace == "" {
		return nil
	}
	return k.summarize(func(t string) bool { return t == trace })
}

func (k *KillTable) summarize(want func(trace string) bool) *SearchSummary {
	k.s.mu.Lock()
	events := make([]KillEvent, 0, len(k.s.events))
	for _, ev := range k.s.events {
		if want(ev.Trace) {
			events = append(events, ev)
		}
	}
	funnels := make([]Funnel, 0, len(k.s.funnels))
	for _, f := range k.s.funnels {
		if want(f.Trace) {
			funnels = append(funnels, *f)
		}
	}
	k.s.mu.Unlock()
	if len(events) == 0 && len(funnels) == 0 {
		return nil
	}

	sum := &SearchSummary{Mismatch: make(map[string]int64)}
	perTarget := make(map[string]*TargetSearch)
	target := func(name string) *TargetSearch {
		t := perTarget[name]
		if t == nil {
			t = &TargetSearch{Target: name}
			perTarget[name] = t
		}
		return t
	}
	for _, f := range funnels {
		sum.Generated += f.Generated
		sum.PreFiltered += f.PreFiltered
		sum.Dispatched += f.Dispatched
		sum.Killed += f.Killed
		sum.Superseded += f.Superseded
		sum.Survived += f.Survived
		sum.Winners += f.Winners
		t := target(f.Target)
		t.Generated += f.Generated
		t.PreFiltered += f.PreFiltered
		t.Dispatched += f.Dispatched
		t.Killed += f.Killed
		t.Superseded += f.Superseded
		t.Survived += f.Survived
		t.Winners += f.Winners
	}

	type caseKey struct {
		target string
		sig    string
	}
	depth := make(map[int]int64)
	cases := make(map[caseKey]*CaseStats)
	families := make(map[caseKey]map[string]bool)
	for _, ev := range events {
		depth[ev.CaseIndex]++
		sum.Mismatch[ev.Mismatch]++
		if ev.CaseIndex < 0 || ev.CaseSig == "" {
			continue
		}
		key := caseKey{target: ev.Target, sig: ev.CaseSig}
		cs := cases[key]
		if cs == nil {
			cs = &CaseStats{Target: ev.Target, Sig: ev.CaseSig, Mismatch: make(map[string]int64)}
			cases[key] = cs
			families[key] = make(map[string]bool)
		}
		cs.Kills++
		cs.Mismatch[ev.Mismatch]++
		families[key][ev.Family] = true
	}
	for i := range depth {
		sum.KillDepth = append(sum.KillDepth, KillDepthBucket{CaseIndex: i, Kills: depth[i]})
	}
	sort.Slice(sum.KillDepth, func(i, j int) bool {
		return sum.KillDepth[i].CaseIndex < sum.KillDepth[j].CaseIndex
	})
	for key, cs := range cases {
		cs.Families = len(families[key])
		sum.Cases = append(sum.Cases, *cs)
		if cs.Families > 1 {
			sum.MultiFamilyCases++
			target(cs.Target).MultiFamilyCases++
		}
	}
	sort.Slice(sum.Cases, func(i, j int) bool {
		a, b := sum.Cases[i], sum.Cases[j]
		if a.Families != b.Families {
			return a.Families > b.Families
		}
		if a.Kills != b.Kills {
			return a.Kills > b.Kills
		}
		if a.Target != b.Target {
			return a.Target < b.Target
		}
		return a.Sig < b.Sig
	})
	for _, name := range sortedKeys(perTarget) {
		sum.PerTarget = append(sum.PerTarget, *perTarget[name])
	}
	return sum
}

// WriteSearchReport renders the human search report: the funnel, the
// kill-depth distribution, and the top-N discriminating inputs.
// Deterministic for a deterministic table (fixed seed, Workers=1).
func (k *KillTable) WriteSearchReport(out io.Writer, topN int) error {
	sum := k.Summary()
	w := &errWriter{w: out}
	if sum == nil {
		fmt.Fprintf(w, "search observatory: no events recorded\n")
		return w.err
	}
	fmt.Fprintf(w, "search funnel: %d generated, %d pre-filtered, %d dispatched, %d killed, %d superseded, %d survived, %d winner(s)\n",
		sum.Generated, sum.PreFiltered, sum.Dispatched, sum.Killed,
		sum.Superseded, sum.Survived, sum.Winners)
	fmt.Fprintf(w, "\nkill depth (0-based case index at death):\n")
	for _, b := range sum.KillDepth {
		if b.CaseIndex < 0 {
			fmt.Fprintf(w, "  no single case (not-viable/timeout/panic): %d\n", b.Kills)
			continue
		}
		fmt.Fprintf(w, "  case %d: %d kill(s)\n", b.CaseIndex, b.Kills)
	}
	fmt.Fprintf(w, "\nmismatch kinds:\n")
	for _, kind := range sortedKeys(sum.Mismatch) {
		fmt.Fprintf(w, "  %s: %d\n", kind, sum.Mismatch[kind])
	}
	if len(sum.Cases) > 0 {
		fmt.Fprintf(w, "\ntop discriminating inputs:\n")
		for i, cs := range sum.Cases {
			if topN > 0 && i >= topN {
				fmt.Fprintf(w, "  ... %d more case(s)\n", len(sum.Cases)-topN)
				break
			}
			fmt.Fprintf(w, "  %2d. [%s] %s — %d kill(s) across %d binding family(ies)\n",
				i+1, cs.Target, cs.Sig, cs.Kills, cs.Families)
		}
		fmt.Fprintf(w, "cases killing more than one binding family: %d\n", sum.MultiFamilyCases)
	}
	if len(sum.PerTarget) > 0 {
		fmt.Fprintf(w, "\nper target:\n")
		for _, t := range sum.PerTarget {
			fmt.Fprintf(w, "  %-10s generated %d, dispatched %d, killed %d, survived %d, winners %d, multi-family cases %d\n",
				t.Target, t.Generated, t.Dispatched, t.Killed, t.Survived,
				t.Winners, t.MultiFamilyCases)
		}
	}
	return w.err
}

// WritePrometheus renders the facc_search_* families. Nil-safe: a nil
// table writes nothing.
func (k *KillTable) WritePrometheus(out io.Writer) error {
	if k == nil {
		return nil
	}
	sum := k.Summary()
	if sum == nil {
		return nil
	}
	w := &errWriter{w: out}
	fmt.Fprintf(w, "# HELP facc_search_candidates_total Binding candidates by funnel stage.\n")
	fmt.Fprintf(w, "# TYPE facc_search_candidates_total counter\n")
	for _, t := range sum.PerTarget {
		for _, stage := range []struct {
			name string
			n    int64
		}{
			{"generated", t.Generated},
			{"pre_filtered", t.PreFiltered},
			{"dispatched", t.Dispatched},
			{"killed", t.Killed},
			{"superseded", t.Superseded},
			{"survived", t.Survived},
			{"winner", t.Winners},
		} {
			fmt.Fprintf(w, "facc_search_candidates_total{target=%q,stage=%q} %d\n",
				t.Target, stage.name, stage.n)
		}
	}
	fmt.Fprintf(w, "# HELP facc_search_kills_total Candidate kills by mismatch kind.\n")
	fmt.Fprintf(w, "# TYPE facc_search_kills_total counter\n")
	for _, kind := range sortedKeys(sum.Mismatch) {
		fmt.Fprintf(w, "facc_search_kills_total{mismatch=%q} %d\n", kind, sum.Mismatch[kind])
	}
	fmt.Fprintf(w, "# HELP facc_search_kill_depth_total Kills by 0-based IO case index (-1 = no single case).\n")
	fmt.Fprintf(w, "# TYPE facc_search_kill_depth_total counter\n")
	for _, b := range sum.KillDepth {
		fmt.Fprintf(w, "facc_search_kill_depth_total{case=\"%d\"} %d\n", b.CaseIndex, b.Kills)
	}
	fmt.Fprintf(w, "# HELP facc_search_multi_family_cases IO cases that killed more than one binding family.\n")
	fmt.Fprintf(w, "# TYPE facc_search_multi_family_cases gauge\n")
	for _, t := range sum.PerTarget {
		fmt.Fprintf(w, "facc_search_multi_family_cases{target=%q} %d\n", t.Target, t.MultiFamilyCases)
	}
	return w.err
}
