package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestJournalRecordAndJSONL(t *testing.T) {
	j := NewJournal()
	j.Record(JournalEvent{Kind: KindCompile, Detail: "fft.c → ffta"})
	j.Record(JournalEvent{Kind: KindEmitted, Function: "fft",
		Candidate: "in=struct(x,re=0,im=1)"})
	j.Record(JournalEvent{Kind: KindFuzz, Function: "fft",
		Candidate: "in=struct(x,re=0,im=1)", Outcome: "survived", Tests: 10})

	evs := j.Events()
	if len(evs) != 3 || j.Len() != 3 {
		t.Fatalf("events = %d, want 3", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != int64(i)+1 {
			t.Errorf("event %d has seq %d", i, ev.Seq)
		}
	}

	var buf bytes.Buffer
	if err := j.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := 0
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var rec JournalEvent
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		lines++
	}
	if lines != 3 {
		t.Errorf("JSONL lines = %d, want 3", lines)
	}
}

func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	j.Record(JournalEvent{Kind: KindFuzz}) // must not panic
	if j.Events() != nil || j.Len() != 0 {
		t.Error("nil journal not empty")
	}
	if err := j.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Errorf("nil WriteJSONL: %v", err)
	}
	if err := j.WriteReport(&bytes.Buffer{}); err != nil {
		t.Errorf("nil WriteReport: %v", err)
	}
}

func TestJournalConcurrentRecord(t *testing.T) {
	j := NewJournal()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				j.Record(JournalEvent{Kind: KindPruned, Heuristic: "range"})
			}
		}()
	}
	wg.Wait()
	if j.Len() != 4000 {
		t.Errorf("len = %d, want 4000", j.Len())
	}
	seen := map[int64]bool{}
	for _, ev := range j.Events() {
		if seen[ev.Seq] {
			t.Fatalf("duplicate seq %d", ev.Seq)
		}
		seen[ev.Seq] = true
	}
}

func TestJournalReport(t *testing.T) {
	j := NewJournal()
	j.Record(JournalEvent{Kind: KindCompile, Detail: "fft.c → ffta"})
	j.Record(JournalEvent{Kind: KindFunction, Function: "fft", Detail: "ffta"})
	j.Record(JournalEvent{Kind: KindPruned, Function: "fft",
		Heuristic: "range", Detail: "len=n(m) outside domain"})
	j.Record(JournalEvent{Kind: KindPruned, Function: "fft", Heuristic: "range"})
	j.Record(JournalEvent{Kind: KindPruned, Function: "fft", Heuristic: "dedup"})
	j.Record(JournalEvent{Kind: KindEmitted, Function: "fft", Candidate: "in=c99(x) len=n(n)"})
	j.Record(JournalEvent{Kind: KindFuzz, Function: "fft",
		Candidate: "in=c99(x) len=n(n)", Outcome: "behavior-mismatch", Tests: 2,
		Counterexample: "n=8 input[8]=(1+0i)"})
	j.Record(JournalEvent{Kind: KindEmitted, Function: "fft", Candidate: "in=c99(x) len=1<<n"})
	j.Record(JournalEvent{Kind: KindFuzz, Function: "fft",
		Candidate: "in=c99(x) len=1<<n", Outcome: "survived", Tests: 10})
	j.Record(JournalEvent{Kind: KindAccepted, Function: "fft",
		Candidate: "in=c99(x) len=1<<n", Tests: 10, Detail: "post=identity"})
	j.Record(JournalEvent{Kind: KindResult, Function: "fft", Outcome: "replaced"})
	j.Record(JournalEvent{Kind: KindFunction, Function: "dump", Detail: "ffta"})
	j.Record(JournalEvent{Kind: KindGate, Function: "dump", Heuristic: "printf"})
	j.Record(JournalEvent{Kind: KindResult, Function: "dump",
		Outcome: "rejected", Heuristic: "printf"})

	var buf bytes.Buffer
	if err := j.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"provenance: fft.c → ffta",
		"function fft — REPLACED",
		"bindings: 2 emitted, 3 pruned (dedup ×1, range ×2)",
		"candidate 1: in=c99(x) len=n(n)",
		"fuzz: behavior-mismatch after 2 test(s)",
		"counterexample: n=8 input[8]=(1+0i)",
		"candidate 2: in=c99(x) len=1<<n",
		"fuzz: survived after 10 test(s)",
		"accepted: post=identity",
		"function dump — REJECTED (printf)",
		"gate: rejected — printf",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "at_us") || strings.Contains(out, "µs") {
		t.Error("report leaks timestamps; it must be deterministic")
	}
}
