package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Journal event kinds, in pipeline order: a compilation announces itself,
// each function opens, binding enumeration emits and prunes candidates,
// the fuzzer delivers one verdict per tested candidate, a winner (if any)
// is accepted, and the function closes with its result.
const (
	KindCompile  = "compile"  // compilation started (Detail: file → target)
	KindFunction = "function" // synthesis of one function started
	KindGate     = "gate"     // front-door rejection (printf/void*/nested)
	KindEmitted  = "emitted"  // binding candidate entered the test queue
	KindPruned   = "pruned"   // heuristic killed a binding hypothesis
	KindFuzz     = "fuzz"     // generate-and-test verdict for a candidate
	KindAccepted = "accepted" // candidate became the adapter
	KindResult   = "result"   // function outcome (replaced/rejected)
	KindOracle   = "oracle"   // reference-oracle cache stats for a function
	KindDegraded = "degraded" // accelerator breaker state change (Outcome:
	// new state; open means execution routes to the software FFT fallback)
)

// JournalEvent is one entry of the synthesis provenance journal — enough
// to reconstruct why each candidate adapter was or was not synthesised.
type JournalEvent struct {
	Seq  int64   `json:"seq"`
	AtUs float64 `json:"at_us"` // offset from journal creation, microseconds

	// Trace joins the event to the originating request (or CLI run).
	// Stamped by Record from the journal's scope when the event does not
	// already carry one, so buffered sub-journals replayed through a
	// scoped journal inherit the request's ID.
	Trace string `json:"trace,omitempty"`

	Kind     string `json:"kind"`
	Function string `json:"function,omitempty"`
	// Candidate is the binding key (the candidate's shape).
	Candidate string `json:"candidate,omitempty"`
	// Heuristic names the pruning heuristic or failure category.
	Heuristic string `json:"heuristic,omitempty"`
	// Outcome is the fuzz verdict or function result.
	Outcome string `json:"outcome,omitempty"`
	// Tests counts IO examples run against the candidate.
	Tests int `json:"tests,omitempty"`
	// Counterexample renders the first failing input (fuzz failures).
	Counterexample string `json:"counterexample,omitempty"`
	// Mismatch is the kill attribution for non-survivor fuzz verdicts:
	// the mismatch kind (behavior-mismatch, domain-error, the fault
	// kind, ...) of the discriminating case — the 0-based index Tests-1.
	// Empty for survivors and caseless deaths.
	Mismatch string `json:"mismatch,omitempty"`
	Detail   string `json:"detail,omitempty"`
}

// Journal is an append-only, concurrency-safe event stream recording each
// candidate's lifecycle through the synthesis pipeline. Like the tracer,
// it is nil-safe: a nil *Journal makes every method a free no-op, so the
// pipeline's instrumentation costs nothing when provenance is off.
//
// A Journal value is a view onto shared state: Scoped returns a second
// view over the same event stream that stamps every recorded event with a
// request trace ID, so one process-wide journal can serve many concurrent
// requests while keeping each request's lines joinable.
type Journal struct {
	trace string
	s     *journalState
}

// journalState is the shared append-only stream behind one or more
// Journal views.
type journalState struct {
	start time.Time

	mu     sync.Mutex
	events []JournalEvent
}

// NewJournal returns an empty journal anchored at the current instant.
func NewJournal() *Journal {
	return &Journal{s: &journalState{start: time.Now()}}
}

// Scoped returns a view of the same journal that stamps recorded events
// with the given trace ID. Nil-safe; an empty trace returns the receiver.
func (j *Journal) Scoped(trace string) *Journal {
	if j == nil || trace == "" {
		return j
	}
	return &Journal{trace: trace, s: j.s}
}

// Trace returns the view's trace scope ("" for the root view).
func (j *Journal) Trace() string {
	if j == nil {
		return ""
	}
	return j.trace
}

// Record appends ev, assigning its sequence number and timestamp and —
// when the event does not already carry one — the view's trace ID. No-op
// on a nil journal.
func (j *Journal) Record(ev JournalEvent) {
	if j == nil {
		return
	}
	if ev.Trace == "" {
		ev.Trace = j.trace
	}
	s := j.s
	at := time.Since(s.start)
	s.mu.Lock()
	ev.Seq = int64(len(s.events)) + 1
	ev.AtUs = float64(at) / float64(time.Microsecond)
	s.events = append(s.events, ev)
	s.mu.Unlock()
}

// Events returns a snapshot of the journal in record order.
func (j *Journal) Events() []JournalEvent {
	if j == nil {
		return nil
	}
	s := j.s
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JournalEvent, len(s.events))
	copy(out, s.events)
	return out
}

// TraceEvents returns the events stamped with the given trace ID, in
// record order — one request's provenance, for flight records.
func (j *Journal) TraceEvents(trace string) []JournalEvent {
	if j == nil || trace == "" {
		return nil
	}
	var out []JournalEvent
	s := j.s
	s.mu.Lock()
	for _, ev := range s.events {
		if ev.Trace == trace {
			out = append(out, ev)
		}
	}
	s.mu.Unlock()
	return out
}

// Len returns the number of recorded events.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	s := j.s
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.events)
}

// WriteJSONL exports the journal as one JSON object per line.
func (j *Journal) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range j.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

// WriteReport renders the journal as a human-readable provenance report:
// per function, the gate verdict, the enumerated-vs-pruned binding
// accounting, and every tested candidate with its fuzz verdict (and the
// first counterexample input when it failed). The output is deterministic
// — no timestamps — so runs with fixed seeds are reproducible verbatim.
func (j *Journal) WriteReport(out io.Writer) error {
	w := &errWriter{w: out}
	evs := j.Events()
	for _, ev := range evs {
		if ev.Kind == KindCompile {
			fmt.Fprintf(w, "provenance: %s\n", ev.Detail)
		}
	}

	var order []string
	byFn := map[string][]JournalEvent{}
	for _, ev := range evs {
		if ev.Function == "" {
			continue
		}
		if _, ok := byFn[ev.Function]; !ok {
			order = append(order, ev.Function)
		}
		byFn[ev.Function] = append(byFn[ev.Function], ev)
	}

	for _, fn := range order {
		fevs := byFn[fn]
		outcome, reason := "attempted", ""
		for _, ev := range fevs {
			if ev.Kind == KindResult {
				outcome, reason = ev.Outcome, ev.Heuristic
			}
		}
		fmt.Fprintf(w, "\nfunction %s — %s", fn, strings.ToUpper(outcome))
		if outcome == "rejected" && reason != "" {
			fmt.Fprintf(w, " (%s)", reason)
		}
		fmt.Fprintf(w, "\n")

		emitted := 0
		prunes := map[string]int{}
		pruned := 0
		for _, ev := range fevs {
			switch ev.Kind {
			case KindGate:
				fmt.Fprintf(w, "  gate: rejected — %s\n", ev.Heuristic)
			case KindEmitted:
				emitted++
			case KindPruned:
				prunes[ev.Heuristic]++
				pruned++
			}
		}
		if emitted > 0 || pruned > 0 {
			fmt.Fprintf(w, "  bindings: %d emitted", emitted)
			if pruned > 0 {
				names := make([]string, 0, len(prunes))
				for h := range prunes {
					names = append(names, h)
				}
				sort.Strings(names)
				parts := make([]string, len(names))
				for i, h := range names {
					parts[i] = fmt.Sprintf("%s ×%d", h, prunes[h])
				}
				fmt.Fprintf(w, ", %d pruned (%s)", pruned, strings.Join(parts, ", "))
			}
			fmt.Fprintf(w, "\n")
		}

		n := 0
		for _, ev := range fevs {
			switch ev.Kind {
			case KindFuzz:
				n++
				fmt.Fprintf(w, "  candidate %d: %s\n", n, ev.Candidate)
				fmt.Fprintf(w, "    fuzz: %s after %d test(s)\n", ev.Outcome, ev.Tests)
				if ev.Mismatch != "" && ev.Tests > 0 {
					fmt.Fprintf(w, "    killed by: case %d (%s)\n", ev.Tests-1, ev.Mismatch)
				}
				if ev.Counterexample != "" {
					fmt.Fprintf(w, "    counterexample: %s\n", ev.Counterexample)
				}
			case KindAccepted:
				fmt.Fprintf(w, "    accepted: %s\n", ev.Detail)
			}
		}
	}
	return w.err
}
