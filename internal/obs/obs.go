// Package obs is FACC's observability layer: a hierarchical span tracer
// and a metrics registry (counters, gauges, fixed-bucket histograms) with
// pluggable exporters (JSON-lines, Chrome trace_event, human-readable
// summary). Every pipeline stage — parse, typecheck, classify, analysis,
// binding enumeration, per-candidate IO fuzzing, range-check synthesis,
// codegen — reports through it, and the evaluation harness derives its
// timing figures (Fig. 15) from the same spans, so the experiments and
// the observability layer are one code path.
//
// Everything is nil-safe: a nil *Tracer, *Span, *Registry, *Counter,
// *Gauge or *Histogram is a no-op receiver, so instrumented hot paths pay
// nothing (no allocations, no branches beyond the nil check) when tracing
// is disabled. Stdlib only.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// AttrKind discriminates attribute values.
type AttrKind uint8

// Attribute kinds.
const (
	AttrInt AttrKind = iota
	AttrFloat
	AttrString
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key  string
	Kind AttrKind
	I    int64
	F    float64
	S    string
}

// Value returns the attribute value as an interface (for export).
func (a Attr) Value() any {
	switch a.Kind {
	case AttrFloat:
		return a.F
	case AttrString:
		return a.S
	default:
		return a.I
	}
}

// Tracer collects spans and owns a metrics registry. It is safe for
// concurrent use: independent goroutines may open and end spans on the
// same tracer (the evaluation harness fans compilations out across
// workers against one tracer).
type Tracer struct {
	wall   time.Time // wall-clock anchor; span offsets are monotonic
	nextID atomic.Int64

	mu     sync.Mutex
	spans  []*Span         // completed spans, in End order
	active map[int64]*Span // started but not yet ended

	reg *Registry
}

// New returns an empty tracer anchored at the current instant. The anchor
// carries both the wall clock (for absolute timestamps in exports) and
// the monotonic clock (for durations).
func New() *Tracer {
	return &Tracer{wall: time.Now(), reg: NewRegistry(), active: map[int64]*Span{}}
}

// Metrics returns the tracer's metrics registry (nil on a nil tracer, so
// chained counter/histogram calls degrade to no-ops).
func (t *Tracer) Metrics() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Start returns the tracer's wall-clock anchor.
func (t *Tracer) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.wall
}

// Span opens a new root span. End() must be called to record it.
func (t *Tracer) Span(name string) *Span {
	if t == nil {
		return nil
	}
	s := t.newSpan(name)
	s.Root = s.ID
	t.register(s)
	return s
}

// newSpan builds an unregistered span; the caller fixes Par/Root and then
// registers it, so the live-span table never holds half-initialized spans.
func (t *Tracer) newSpan(name string) *Span {
	id := t.nextID.Add(1)
	return &Span{
		tr:    t,
		ID:    id,
		Name:  name,
		Start: time.Since(t.wall),
	}
}

func (t *Tracer) register(s *Span) {
	t.mu.Lock()
	t.active[s.ID] = s
	t.mu.Unlock()
}

// ActiveSpan is a point-in-time view of a started-but-unfinished span.
// Only creation-time fields appear: attributes may still be chained by the
// owning goroutine, so they are deliberately absent.
type ActiveSpan struct {
	ID    int64
	Par   int64
	Root  int64
	Name  string
	Start time.Duration // offset from the tracer anchor
}

// Active snapshots the spans that have been started but not ended, in
// start order — the tracer's answer to "what is the pipeline doing right
// now". Safe to call concurrently with span creation and End.
func (t *Tracer) Active() []ActiveSpan {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]ActiveSpan, 0, len(t.active))
	for _, s := range t.active {
		out = append(out, ActiveSpan{ID: s.ID, Par: s.Par, Root: s.Root,
			Name: s.Name, Start: s.Start})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// NumSpans returns the number of completed spans without copying them.
func (t *Tracer) NumSpans() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Spans returns a snapshot of the completed spans in End order.
func (t *Tracer) Spans() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// TraceSpans returns the completed spans stamped with the given trace ID,
// in End order — the span tree of one request, for flight records.
func (t *Tracer) TraceSpans(trace string) []*Span {
	if t == nil || trace == "" {
		return nil
	}
	var out []*Span
	t.mu.Lock()
	for _, s := range t.spans {
		if s.Trace == trace {
			out = append(out, s)
		}
	}
	t.mu.Unlock()
	return out
}

// Find returns the completed spans with the given name.
func (t *Tracer) Find(name string) []*Span {
	var out []*Span
	for _, s := range t.Spans() {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

// Span is one timed pipeline stage. Fields are fixed at End(); a span must
// be ended by the goroutine that uses it (the tracer may be shared, a
// single span may not).
type Span struct {
	tr    *Tracer
	ID    int64
	Par   int64 // parent span ID; 0 for roots
	Root  int64 // top-level ancestor ID (one exporter lane per root)
	Trace string
	Name  string
	Start time.Duration // offset from the tracer anchor
	Dur   time.Duration // set by End
	Attrs []Attr
	ended bool
}

// Child opens a sub-span. Nil-safe: a nil receiver returns a nil span.
// The child inherits the parent's trace ID.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := s.tr.newSpan(name)
	c.Par = s.ID
	c.Root = s.Root
	c.Trace = s.Trace
	s.tr.register(c)
	return c
}

// SetTrace stamps the span with a request trace ID; children opened after
// this call inherit it. Chainable and nil-safe.
func (s *Span) SetTrace(id string) *Span {
	if s == nil {
		return nil
	}
	s.Trace = id
	return s
}

// Tracer returns the owning tracer (nil on a nil span).
func (s *Span) Tracer() *Tracer {
	if s == nil {
		return nil
	}
	return s.tr
}

// Metrics returns the owning tracer's registry (nil on a nil span).
func (s *Span) Metrics() *Registry {
	if s == nil {
		return nil
	}
	return s.tr.reg
}

// Int attaches an integer attribute. Chainable and nil-safe.
func (s *Span) Int(key string, v int64) *Span {
	if s == nil {
		return nil
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Kind: AttrInt, I: v})
	return s
}

// Float attaches a float attribute. Chainable and nil-safe.
func (s *Span) Float(key string, v float64) *Span {
	if s == nil {
		return nil
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Kind: AttrFloat, F: v})
	return s
}

// Str attaches a string attribute. Chainable and nil-safe.
func (s *Span) Str(key, v string) *Span {
	if s == nil {
		return nil
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Kind: AttrString, S: v})
	return s
}

// Attr returns the value of the named attribute, or nil.
func (s *Span) Attr(key string) any {
	if s == nil {
		return nil
	}
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value()
		}
	}
	return nil
}

// WallStart returns the span's absolute wall-clock start.
func (s *Span) WallStart() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.tr.wall.Add(s.Start)
}

// End closes the span, records it on the tracer, feeds the stage-latency
// histogram, and returns the span's duration. Idempotent; zero on a nil
// span — callers use the return value as the stage's elapsed time.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	if s.ended {
		return s.Dur
	}
	s.ended = true
	s.Dur = time.Since(s.tr.wall) - s.Start
	s.tr.mu.Lock()
	delete(s.tr.active, s.ID)
	s.tr.spans = append(s.tr.spans, s)
	s.tr.mu.Unlock()
	s.tr.reg.Histogram("stage."+s.Name+".ms", DurationBucketsMs).
		Observe(float64(s.Dur) / float64(time.Millisecond))
	return s.Dur
}
