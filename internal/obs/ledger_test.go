package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestLedgerAccounting(t *testing.T) {
	l := NewLedger()
	l.ChargeTests("fft", "ffta", "b0", 4)
	l.ChargeTests("fft", "ffta", "b0", 6)
	l.ChargeInterp("fft", "ffta", "b0", 100, 250)
	l.ChargeOracle("fft", "ffta", "b0", false)
	l.ChargeOracle("fft", "ffta", "b0", true)
	l.SetVerdict("fft", "ffta", "b0", "survived")
	l.SetVerdict("fft", "ffta", "b0", VerdictWinner) // last write wins

	if l.Len() != 1 {
		t.Fatalf("Len = %d, want 1", l.Len())
	}
	e := l.Entries()[0]
	if e.Tests != 10 || e.Steps != 100 || e.Ops != 250 {
		t.Errorf("charges not accumulated: %+v", e)
	}
	if e.OracleHits != 1 || e.OracleMisses != 1 {
		t.Errorf("oracle lookups = %d/%d, want 1/1", e.OracleHits, e.OracleMisses)
	}
	if e.Verdict != VerdictWinner {
		t.Errorf("verdict = %q, want last-write %q", e.Verdict, VerdictWinner)
	}
	// ChargeTests with 0 must not create an account.
	l.ChargeTests("fft", "ffta", "b9", 0)
	if l.Len() != 1 {
		t.Errorf("zero-test charge created an account")
	}
}

func TestLedgerEntriesSorted(t *testing.T) {
	l := NewLedger()
	l.ChargeTests("g", "fftw", "b", 1)
	l.ChargeTests("f", "powerquad", "a", 1)
	l.ChargeTests("f", "ffta", "z", 1)
	l.ChargeTests("f", "ffta", "a", 1)
	got := l.Entries()
	order := make([]string, len(got))
	for i, e := range got {
		order[i] = e.Function + "/" + e.Target + "/" + e.Candidate
	}
	want := []string{"f/ffta/a", "f/ffta/z", "f/powerquad/a", "g/fftw/b"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("Entries order = %v, want %v", order, want)
		}
	}
}

// TestLedgerScoped: the request-scoped view stamps every account with the
// trace ID while sharing state with the root view — the mechanism that
// lets one process-wide ledger serve concurrent faccd requests.
func TestLedgerScoped(t *testing.T) {
	root := NewLedger()
	a := root.Scoped("trace-a")
	b := root.Scoped("trace-b")
	a.ChargeTests("fft", "ffta", "cand", 3)
	b.ChargeTests("fft", "ffta", "cand", 5)
	root.ChargeTests("fft", "ffta", "cand", 7)

	if root.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (one account per trace scope)", root.Len())
	}
	ea := root.TraceEntries("trace-a")
	if len(ea) != 1 || ea[0].Tests != 3 || ea[0].Trace != "trace-a" {
		t.Errorf("TraceEntries(trace-a) = %+v", ea)
	}
	if got := root.TraceEntries("trace-c"); got != nil {
		t.Errorf("unknown trace returned entries: %+v", got)
	}
	if root.Scoped("") != root {
		t.Error("Scoped(\"\") should return the receiver")
	}
	if a.Trace() != "trace-a" || root.Trace() != "" {
		t.Errorf("Trace() = %q / %q", a.Trace(), root.Trace())
	}
}

func TestLedgerSummary(t *testing.T) {
	l := NewLedger()
	// Winner: 10 tests, 2 oracle hits.
	l.ChargeTests("fft", "ffta", "win", 10)
	l.ChargeInterp("fft", "ffta", "win", 50, 100)
	l.ChargeOracle("fft", "ffta", "win", true)
	l.ChargeOracle("fft", "ffta", "win", true)
	l.SetVerdict("fft", "ffta", "win", VerdictWinner)
	// Superseded loser: 30 tests, 1 hit 1 miss.
	l.ChargeTests("fft", "ffta", "lose", 30)
	l.ChargeInterp("fft", "ffta", "lose", 150, 300)
	l.ChargeOracle("fft", "ffta", "lose", true)
	l.ChargeOracle("fft", "ffta", "lose", false)
	l.SetVerdict("fft", "ffta", "lose", "superseded")
	// A second target with only an undecided account.
	l.ChargeTests("fft", "fftw", "x", 5)

	sum := l.Summary()
	if len(sum.Targets) != 2 {
		t.Fatalf("targets = %d, want 2", len(sum.Targets))
	}
	ffta := sum.Targets[0]
	if ffta.Target != "ffta" {
		t.Fatalf("targets not sorted: %v", sum.Targets)
	}
	if ffta.UsefulTests != 10 || ffta.SpeculativeTests != 30 {
		t.Errorf("useful/speculative = %d/%d, want 10/30",
			ffta.UsefulTests, ffta.SpeculativeTests)
	}
	if ffta.WasteRatio != 0.75 {
		t.Errorf("waste ratio = %g, want 0.75", ffta.WasteRatio)
	}
	if ffta.OracleHits != 3 || ffta.OracleMisses != 1 || ffta.UsefulOracleHits != 2 {
		t.Errorf("oracle hits/misses/useful = %d/%d/%d, want 3/1/2",
			ffta.OracleHits, ffta.OracleMisses, ffta.UsefulOracleHits)
	}
	if ffta.OracleHitRate != 0.75 {
		t.Errorf("oracle hit rate = %g, want 0.75", ffta.OracleHitRate)
	}
	if ffta.Verdicts["winner"] != 1 || ffta.Verdicts["superseded"] != 1 {
		t.Errorf("verdicts = %v", ffta.Verdicts)
	}
	if sum.Targets[1].Verdicts["undecided"] != 1 {
		t.Errorf("empty verdict should count as undecided: %v", sum.Targets[1].Verdicts)
	}
	if sum.Total.Target != "all" || sum.Total.UsefulTests != 10 ||
		sum.Total.SpeculativeTests != 35 {
		t.Errorf("total = %+v", sum.Total)
	}
}

func TestLedgerCostReport(t *testing.T) {
	l := NewLedger()
	l.ChargeTests("fft", "ffta", "win", 10)
	l.SetVerdict("fft", "ffta", "win", VerdictWinner)
	l.ChargeTests("fft", "ffta", "lose", 30)
	l.SetVerdict("fft", "ffta", "lose", "superseded")

	var sb strings.Builder
	if err := l.WriteCostReport(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"synthesis cost ledger: 2 candidate account(s)",
		"target ffta:",
		"useful 10 | speculative 30 (waste 75.0%)",
		"winner ×1",
		"superseded ×1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("cost report missing %q:\n%s", want, out)
		}
	}

	// Empty ledger: header plus the no-work line, no error.
	var empty strings.Builder
	if err := NewLedger().WriteCostReport(&empty); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(empty.String(), "(no work charged)") {
		t.Errorf("empty report: %q", empty.String())
	}
}

func TestLedgerPrometheus(t *testing.T) {
	l := NewLedger()
	l.ChargeTests("fft", "ffta", "win", 10)
	l.ChargeInterp("fft", "ffta", "win", 50, 100)
	l.ChargeOracle("fft", "ffta", "win", true)
	l.SetVerdict("fft", "ffta", "win", VerdictWinner)
	l.ChargeTests("fft", "ffta", "lose", 30)
	l.SetVerdict("fft", "ffta", "lose", "superseded")

	var sb strings.Builder
	if err := l.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`facc_ledger_tests_total{target="ffta",class="useful"} 10`,
		`facc_ledger_tests_total{target="ffta",class="speculative"} 30`,
		`facc_ledger_interp_steps_total{target="ffta",class="useful"} 50`,
		`facc_ledger_oracle_lookups_total{target="ffta",result="hit"} 1`,
		`facc_ledger_waste_ratio{target="ffta"} 0.75`,
		`facc_ledger_oracle_hit_rate{target="ffta"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Nil and empty ledgers contribute nothing (the /metrics append path).
	var nb strings.Builder
	var nl *Ledger
	if err := nl.WritePrometheus(&nb); err != nil || nb.Len() != 0 {
		t.Errorf("nil ledger exposition: err=%v out=%q", err, nb.String())
	}
}

// TestLedgerConcurrent hammers one ledger from many goroutines across
// scoped views — run under -race this is the data-race proof for the
// faccd path (concurrent compiles charging while /status snapshots).
func TestLedgerConcurrent(t *testing.T) {
	root := NewLedger()
	const workers = 8
	const iters = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			l := root
			if w%2 == 0 {
				l = root.Scoped("trace-a")
			}
			for i := 0; i < iters; i++ {
				l.ChargeTests("fft", "ffta", "cand", 1)
				l.ChargeInterp("fft", "ffta", "cand", 2, 3)
				l.ChargeOracle("fft", "ffta", "cand", i%2 == 0)
				l.SetVerdict("fft", "ffta", "cand", "survived")
				// Concurrent readers: snapshots must be consistent.
				_ = root.Entries()
				_ = root.Summary()
				_ = root.TraceEntries("trace-a")
			}
		}(w)
	}
	wg.Wait()
	var tests int64
	for _, e := range root.Entries() {
		tests += e.Tests
	}
	if want := int64(workers * iters); tests != want {
		t.Errorf("total tests = %d, want %d (lost updates)", tests, want)
	}
}

// TestNilLedgerSafe: every method is a free no-op on a nil receiver.
func TestNilLedgerSafe(t *testing.T) {
	var l *Ledger
	l.ChargeTests("f", "t", "c", 1)
	l.ChargeInterp("f", "t", "c", 1, 1)
	l.ChargeOracle("f", "t", "c", true)
	l.SetVerdict("f", "t", "c", "x")
	if l.Scoped("id") != nil {
		t.Error("nil.Scoped should stay nil")
	}
	if l.Entries() != nil || l.TraceEntries("id") != nil || l.Len() != 0 || l.Trace() != "" {
		t.Error("nil ledger leaked state")
	}
	allocs := testing.AllocsPerRun(500, func() {
		l.ChargeTests("f", "t", "c", 1)
		l.ChargeOracle("f", "t", "c", true)
		l.SetVerdict("f", "t", "c", "x")
	})
	if allocs != 0 {
		t.Errorf("nil ledger allocates %.0f per call cycle, want 0", allocs)
	}
}
