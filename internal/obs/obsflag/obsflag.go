// Package obsflag wires the shared observability flags into the FACC
// command-line binaries so facc, faccbench and faccclassify expose the
// same -trace/-metrics/-serve surface (and facc/faccbench additionally
// -journal/-explain plus the robustness budget flags -timeout,
// -candidate-timeout and -faults), with one implementation of the
// export plumbing.
package obsflag

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"facc/internal/obs"
	"facc/internal/obs/obshttp"
)

// Flags holds the parsed observability flag values and the sinks they
// enable. The zero value (no flags set) enables nothing: Tracer() and
// Journal() return nil and the pipeline runs uninstrumented.
type Flags struct {
	TraceFile   string
	Metrics     bool
	Serve       string
	JournalFile string
	Explain     bool
	Costs       bool
	// SearchReport (-search-report) prints the search observatory
	// report — funnel, kill-depth distribution, top discriminating
	// inputs — to stderr. CexPoolFile (-cex-pool) persists those
	// discriminating inputs across runs in a crash-safe JSONL pool.
	SearchReport bool
	CexPoolFile  string

	// Robustness budgets (RegisterSynth binaries only). Timeout bounds
	// the whole run, CandidateTimeout one fuzzed binding candidate, and
	// Faults carries an unparsed fault-injection profile (parsed by the
	// binary with facc.ParseFaultProfile so this package stays free of
	// pipeline dependencies).
	Timeout          time.Duration
	CandidateTimeout time.Duration
	Faults           string

	// Workers (-j, RegisterSynth binaries only) bounds candidate-level
	// parallelism inside generate-and-test. 0 = GOMAXPROCS; results are
	// deterministic regardless of the value.
	Workers int

	prog     string
	tr       *obs.Tracer
	j        *obs.Journal
	led      *obs.Ledger
	kills    *obs.KillTable
	pool     *obs.CexPool
	shutdown func() error
}

// Register installs the shared tracing flags (-trace, -metrics, -serve)
// on fs. prog names the binary in diagnostics.
func Register(fs *flag.FlagSet, prog string) *Flags {
	f := &Flags{prog: prog}
	fs.StringVar(&f.TraceFile, "trace", "",
		"write a Chrome trace_event file of the pipeline")
	fs.BoolVar(&f.Metrics, "metrics", false,
		"print stage timings and pipeline counters to stderr")
	fs.StringVar(&f.Serve, "serve", "",
		"serve live observability endpoints (/metrics, /status, /trace, /debug/pprof) on this address, e.g. :9090")
	return f
}

// RegisterSynth additionally installs the provenance flags (-journal,
// -explain) and the robustness budget flags (-timeout,
// -candidate-timeout, -faults) for binaries that run the synthesis
// pipeline.
func RegisterSynth(fs *flag.FlagSet, prog string) *Flags {
	f := Register(fs, prog)
	fs.StringVar(&f.JournalFile, "journal", "",
		"write the synthesis provenance journal (JSONL) to this file")
	fs.BoolVar(&f.Explain, "explain", false,
		"print the provenance report (why each adapter was / was not synthesised) to stderr")
	fs.BoolVar(&f.Costs, "costs", false,
		"print the synthesis cost ledger (useful vs speculative vs shared work per target) to stderr")
	fs.BoolVar(&f.SearchReport, "search-report", false,
		"print the search observatory report (kill attribution, funnel, top discriminating inputs) to stderr")
	fs.StringVar(&f.CexPoolFile, "cex-pool", "",
		"persist the discriminating-input counterexample pool (crash-safe JSONL) in this file across runs")
	fs.DurationVar(&f.Timeout, "timeout", 0,
		"abort the whole run after this wall-clock budget, e.g. 30s (0 = no deadline)")
	fs.DurationVar(&f.CandidateTimeout, "candidate-timeout", 0,
		"reject any single binding candidate whose fuzzing exceeds this budget (0 = no budget)")
	fs.StringVar(&f.Faults, "faults", "",
		`inject accelerator faults for chaos testing: a preset (flaky, lossy, slow, chaos) or rates like "error=0.3,corrupt=0.01,latency=0.1,seed=7" (implies retry+breaker hardening)`)
	fs.IntVar(&f.Workers, "j", 0,
		"fuzz up to this many binding candidates in parallel; 0 = GOMAXPROCS, 1 = sequential (the result is deterministic either way)")
	return f
}

// Tracer returns the shared tracer, created on first use when any flag
// needs one; nil when tracing is not requested, so the pipeline's hot
// paths stay uninstrumented.
func (f *Flags) Tracer() *obs.Tracer {
	if f.tr == nil && (f.TraceFile != "" || f.Metrics || f.Serve != "") {
		f.tr = obs.New()
	}
	return f.tr
}

// Journal returns the provenance journal, created on first use when
// -journal or -explain is set; nil otherwise.
func (f *Flags) Journal() *obs.Journal {
	if f.j == nil && (f.JournalFile != "" || f.Explain) {
		f.j = obs.NewJournal()
	}
	return f.j
}

// Ledger returns the synthesis cost ledger, created on first use when
// -costs or -serve is set; nil otherwise so the fuzz loop's nil guards
// keep the hot path allocation-free.
func (f *Flags) Ledger() *obs.Ledger {
	if f.led == nil && (f.Costs || f.Serve != "") {
		f.led = obs.NewLedger()
	}
	return f.led
}

// Kills returns the search-observatory kill table, created on first use
// when -search-report, -cex-pool or -serve is set; nil otherwise so the
// verdict path's nil guards keep synthesis allocation-free.
func (f *Flags) Kills() *obs.KillTable {
	if f.kills == nil && (f.SearchReport || f.CexPoolFile != "" || f.Serve != "") {
		f.kills = obs.NewKillTable()
	}
	return f.kills
}

// Pool returns the counterexample pool when -cex-pool is set (loaded by
// Start; empty before Start or when the file did not exist), nil
// otherwise. Pass it to the pipeline via Options.Cex: synthesis replays
// its ranked counterexamples before fresh fuzz cases and records every
// kill into it live, so Finish flushes a pool that already reflects
// this run's discriminating inputs.
func (f *Flags) Pool() *obs.CexPool {
	if f.pool == nil && f.CexPoolFile != "" {
		f.pool = obs.NewCexPool()
	}
	return f.pool
}

// WithTrace stamps ctx with a fresh run-scoped trace ID so every span,
// journal line and ledger account produced by this CLI invocation is
// joinable, exactly like a served request's X-Facc-Trace. The ID is
// returned for diagnostics.
func (f *Flags) WithTrace(ctx context.Context) (context.Context, string) {
	id := obs.NewTraceID()
	return obs.WithTraceID(ctx, id), id
}

// WithSignals returns a copy of ctx that is cancelled on SIGINT or
// SIGTERM, so a ^C or an orchestrator's stop request winds the pipeline
// down through its normal cancellation points and the binary still
// flushes -trace/-metrics/-journal output via Finish instead of dying
// with partial files. A second signal kills the process immediately (the
// handler is uninstalled after the first). Call the returned stop
// function when signal handling should end.
func (f *Flags) WithSignals(ctx context.Context) (context.Context, context.CancelFunc) {
	sctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sctx.Done()
		if ctx.Err() == nil && sctx.Err() != nil {
			fmt.Fprintf(os.Stderr, "%s: interrupt: finishing up (^C again to kill)\n", f.prog)
		}
		stop()
	}()
	return sctx, stop
}

// FlushOnSignal installs a handler for binaries whose work is not yet
// context-aware: the first SIGINT/SIGTERM flushes every requested export
// (trace, metrics summary, journal, explain report) and exits 130. Use
// WithSignals instead wherever the work accepts a context.
func (f *Flags) FlushOnSignal() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-ch
		signal.Stop(ch)
		fmt.Fprintf(os.Stderr, "%s: interrupt: flushing observability output\n", f.prog)
		if err := f.Finish(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", f.prog, err)
		}
		os.Exit(130)
	}()
}

// Start loads the counterexample pool (when -cex-pool names one) and
// launches the observability HTTP server when -serve is set, printing
// the bound address to stderr.
func (f *Flags) Start() error {
	if f.CexPoolFile != "" {
		// Loaded read-write: Pool() hands it to synthesis, which replays
		// its ranked counterexamples first and records every kill into
		// it live; Finish flushes the updated ranking back. Replay only
		// reorders each candidate's own case stream, so results are
		// byte-identical with or without the pool.
		pool, info, err := obs.LoadCexPool(f.CexPoolFile)
		if err != nil {
			return fmt.Errorf("%s: -cex-pool %s: %w", f.prog, f.CexPoolFile, err)
		}
		if info.Quarantined != "" {
			fmt.Fprintf(os.Stderr, "%s: -cex-pool %s: corrupt pool quarantined to %s; starting empty\n",
				f.prog, f.CexPoolFile, info.Quarantined)
		}
		f.pool = pool
	}
	if f.Serve == "" {
		return nil
	}
	addr, shutdown, err := obshttp.Serve(f.Serve, f.Tracer(), f.Journal(), f.Ledger(), f.Kills())
	if err != nil {
		return fmt.Errorf("%s: -serve %s: %w", f.prog, f.Serve, err)
	}
	f.shutdown = shutdown
	fmt.Fprintf(os.Stderr, "%s: observability server on http://%s\n", f.prog, addr)
	return nil
}

// Finish stops the server (it lives for the duration of the run) and
// writes every requested export: the Chrome trace file, the stderr
// summary, the JSONL journal, and the explain report. The first error is
// returned after all exports are attempted.
func (f *Flags) Finish() error {
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	if f.shutdown != nil {
		keep(f.shutdown())
	}
	if f.TraceFile != "" && f.tr != nil {
		keep(writeFile(f.TraceFile, f.tr.WriteChromeTrace))
	}
	if f.Metrics && f.tr != nil {
		keep(f.tr.WriteSummary(os.Stderr))
	}
	if f.JournalFile != "" && f.j != nil {
		keep(writeFile(f.JournalFile, f.j.WriteJSONL))
	}
	if f.Explain && f.j != nil {
		keep(f.j.WriteReport(os.Stderr))
	}
	if f.Costs && f.led != nil {
		keep(f.led.WriteCostReport(os.Stderr))
	}
	if f.SearchReport && f.kills != nil {
		keep(f.kills.WriteSearchReport(os.Stderr, 10))
	}
	if f.CexPoolFile != "" {
		if f.pool == nil {
			f.pool = obs.NewCexPool()
		}
		// No Absorb here: the pool is wired into synthesis via Pool(),
		// so every kill this run produced was already recorded live
		// (absorbing the kill table again would double-count them).
		keep(f.pool.Flush(f.CexPoolFile))
	}
	return first
}

func writeFile(path string, write func(io.Writer) error) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := write(out)
	if cerr := out.Close(); werr == nil {
		werr = cerr
	}
	return werr
}
