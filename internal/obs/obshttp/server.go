// Package obshttp is FACC's live observability surface: an embedded HTTP
// server exposing the in-process tracer, metrics registry and provenance
// journal while a compilation (or a whole evaluation run) is underway.
//
// Endpoints:
//
//	/metrics        Prometheus text exposition of every counter/gauge/histogram
//	/status         live JSON: in-flight compilations, current stage,
//	                candidates tried/pruned, fuzz pass rate, uptime
//	/trace          Chrome trace_event download of the spans completed so far
//	/journal        provenance journal as JSONL (when a journal is attached)
//	/debug/pprof/*  net/http/pprof profiling endpoints
//
// The server reads only snapshots (obs.Tracer and obs.Journal are safe for
// concurrent use), so scraping never perturbs or blocks the pipeline.
package obshttp

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"facc/internal/obs"
)

// Server exposes one tracer (and optionally one journal, one cost
// ledger and one kill table) over HTTP.
type Server struct {
	Tracer  *obs.Tracer
	Journal *obs.Journal // may be nil; /journal then returns 404
	Ledger  *obs.Ledger  // may be nil; /status costs and the
	// facc_ledger_* /metrics families are then absent
	Kills *obs.KillTable // may be nil; /status search and the
	// facc_search_* /metrics families are then absent

	start time.Time
}

// New returns a server over tr, j, l and k (j, l and k may be nil).
func New(tr *obs.Tracer, j *obs.Journal, l *obs.Ledger, k *obs.KillTable) *Server {
	return &Server{Tracer: tr, Journal: j, Ledger: l, Kills: k, start: time.Now()}
}

// InFlight describes one live root span (one in-progress compilation).
type InFlight struct {
	Root string `json:"root"`
	// Stage is the most recently started span still open under this root
	// — "what is it doing right now".
	Stage string  `json:"stage"`
	AgeS  float64 `json:"age_s"`
}

// Status is the /status JSON document.
type Status struct {
	UptimeS        float64    `json:"uptime_s"`
	InFlight       []InFlight `json:"in_flight"`
	SpansCompleted int        `json:"spans_completed"`

	CandidatesTested int64   `json:"candidates_tested"`
	CandidatesPruned int64   `json:"candidates_pruned"`
	Survivors        int64   `json:"survivors"`
	Winners          int64   `json:"winners"`
	TestsRun         int64   `json:"tests_run"`
	FuzzPassRate     float64 `json:"fuzz_pass_rate"`

	// Robustness: how the run is coping with a faulty accelerator.
	// FaultsInjected sums the chaos injector's transient/corrupt/latency
	// counters; DegradedRuns counts calls served by the software-FFT
	// fallback while the breaker was open. BreakerState is "" until a
	// hardened accelerator registers its gauge.
	FaultsInjected    int64  `json:"faults_injected"`
	Retries           int64  `json:"retries"`
	RetriesExhausted  int64  `json:"retries_exhausted"`
	DegradedRuns      int64  `json:"degraded_runs"`
	CandidatePanics   int64  `json:"candidate_panics"`
	CandidateTimeouts int64  `json:"candidate_timeouts"`
	BreakerState      string `json:"breaker_state,omitempty"`

	// Parallel synthesis: reference-oracle cache effectiveness and how
	// many candidate workers are fuzzing right now. OraclePerTarget
	// splits the blended rate per accelerator target (the ROADMAP's
	// ">50% cross-target hit rate" goal is measured per target).
	OracleHits      int64                  `json:"oracle_hits"`
	OracleMisses    int64                  `json:"oracle_misses"`
	OracleHitRate   float64                `json:"oracle_hit_rate"`
	OraclePerTarget map[string]OracleStats `json:"oracle_per_target,omitempty"`
	PoolBusy        int64                  `json:"pool_busy"`

	JournalEvents int `json:"journal_events"`

	// Costs is the synthesis cost ledger rolled up per target (useful vs
	// speculative vs shared work); present when a ledger is attached.
	Costs *obs.CostSummary `json:"costs,omitempty"`

	// Serve is populated when a compile service (faccd) feeds the
	// registry: admission queue health, shedding/drain counters and the
	// crash-safe adapter store's cache/corruption statistics.
	Serve *ServeStatus `json:"serve,omitempty"`

	// Fleet is populated when the replica runs as part of a sharded
	// fleet (faccd -peers): peer-table health, forwarding and failover
	// counters, hedged cache reads and per-tenant rate-limit sheds.
	Fleet *FleetStatus `json:"fleet,omitempty"`

	// Search is the search observatory's aggregate: funnel totals,
	// kill-depth distribution and the ranked discriminating inputs;
	// present when a kill table is attached and has recorded anything.
	Search *obs.SearchSummary `json:"search,omitempty"`

	Counters map[string]int64   `json:"counters,omitempty"`
	Gauges   map[string]float64 `json:"gauges,omitempty"`
}

// OracleStats is one target's reference-oracle cache effectiveness.
type OracleStats struct {
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

// ServeStatus is the /status block for the faccd compile service.
type ServeStatus struct {
	QueueDepth    int64 `json:"queue_depth"`
	QueueCapacity int64 `json:"queue_capacity"`
	Workers       int64 `json:"workers"`
	WorkersBusy   int64 `json:"workers_busy"`
	Draining      bool  `json:"draining"`

	JobsAdmitted  int64 `json:"jobs_admitted"`
	JobsCompleted int64 `json:"jobs_completed"`
	JobsFailed    int64 `json:"jobs_failed"`
	JobsShed      int64 `json:"jobs_shed"`
	JobsDeduped   int64 `json:"jobs_deduped"`
	CacheHits     int64 `json:"cache_hits"`
	HardCancels   int64 `json:"drain_hard_cancels"`

	// SLO: configured targets and the observed burn rate. BurnRate is
	// (violation rate) / (error budget); 1.0 means the budget is being
	// consumed exactly as fast as it accrues, >1 means the target is
	// being missed.
	SLOLatencyMS  float64 `json:"slo_latency_ms,omitempty"`
	SLOObjective  float64 `json:"slo_objective,omitempty"`
	SLOTotal      int64   `json:"slo_total,omitempty"`
	SLOViolations int64   `json:"slo_violations,omitempty"`
	SLOBurnRate   float64 `json:"slo_burn_rate,omitempty"`
	// FlightRetained counts requests currently held by the flight
	// recorder (slowest + failed), dumped at /debug/requests.
	FlightRetained int64 `json:"flight_retained,omitempty"`

	StoreHits        int64  `json:"store_hits"`
	StoreMisses      int64  `json:"store_misses"`
	StoreWrites      int64  `json:"store_writes"`
	StoreQuarantined int64  `json:"store_quarantined"`
	StoreBreaker     string `json:"store_breaker_state,omitempty"`

	// Store is the B-tree engine's internals; present when the paged
	// store has published its gauges.
	Store *StoreStatus `json:"store,omitempty"`
}

// FleetStatus is the /status block for a replica in a sharded fleet:
// the ring's live health view plus the forwarding, failover, hedging and
// rate-limiting counters that describe how much of the node's traffic
// is remote and how the fleet is coping with peer death and overload.
type FleetStatus struct {
	Peers        int64           `json:"peers"`
	PeersHealthy int64           `json:"peers_healthy"`
	PeerHealth   map[string]bool `json:"peer_health,omitempty"`

	HandledLocal   int64 `json:"handled_local"`
	Forwarded      int64 `json:"forwarded"`
	ForwardedIn    int64 `json:"forwarded_in"`
	ForwardRetries int64 `json:"forward_retries"`
	Failovers      int64 `json:"forward_failovers"`
	DegradedLocal  int64 `json:"degraded_local"`
	LoopRejected   int64 `json:"loop_rejected"`

	CacheProbeHits int64 `json:"cache_probe_hits"`
	Hedges         int64 `json:"hedges"`
	HedgeWins      int64 `json:"hedge_wins"`

	RateLimited          int64   `json:"ratelimited"`
	RetryBudget          float64 `json:"retry_budget"`
	RetryBudgetExhausted int64   `json:"retry_budget_exhausted"`

	PeerEjections  int64 `json:"peer_ejections"`
	PeerRecoveries int64 `json:"peer_recoveries"`
}

// StoreStatus is the /status block for the crash-safe adapter store's
// paged B-tree engine: page economy, MVCC snapshot pressure, group
// commit and WAL activity, and corruption quarantines.
type StoreStatus struct {
	Pages     int64 `json:"pages"`
	FreePages int64 `json:"free_pages"`
	Snapshots int64 `json:"snapshots"`

	Commits       int64 `json:"commits"`
	CommitBatches int64 `json:"commit_batches"`
	Compactions   int64 `json:"compactions"`

	RecoveredPages int64 `json:"recovered_pages"`
	WALTorn        int64 `json:"wal_torn"`
	WALResets      int64 `json:"wal_resets"`
	FreelistLost   int64 `json:"freelist_lost"`

	QuarantinedFiles int64 `json:"quarantined_files"`
}

// BuildStatus assembles the live status snapshot served at /status.
func (s *Server) BuildStatus() Status {
	st := Status{
		UptimeS:        time.Since(s.start).Seconds(),
		InFlight:       []InFlight{},
		SpansCompleted: s.Tracer.NumSpans(),
		JournalEvents:  s.Journal.Len(),
	}

	active := s.Tracer.Active()
	now := time.Since(s.Tracer.Start())
	type lane struct {
		root   obs.ActiveSpan
		deep   obs.ActiveSpan
		rooted bool
	}
	lanes := map[int64]*lane{}
	var order []int64
	for _, sp := range active {
		l := lanes[sp.Root]
		if l == nil {
			l = &lane{}
			lanes[sp.Root] = l
			order = append(order, sp.Root)
		}
		if sp.ID == sp.Root {
			l.root, l.rooted = sp, true
		}
		// Active() is ID-ordered, so the last span seen per lane is the
		// most recently started one — the current stage.
		l.deep = sp
	}
	for _, id := range order {
		l := lanes[id]
		root := l.deep
		if l.rooted {
			root = l.root
		}
		st.InFlight = append(st.InFlight, InFlight{
			Root:  root.Name,
			Stage: l.deep.Name,
			AgeS:  (now - root.Start).Seconds(),
		})
	}

	reg := s.Tracer.Metrics()
	st.Counters = reg.Counters()
	st.Gauges = reg.Gauges()
	st.CandidatesTested = st.Counters["synth.candidates_tested"]
	st.Survivors = st.Counters["synth.survivors"]
	st.Winners = st.Counters["synth.winners"]
	st.TestsRun = st.Counters["synth.tests_run"]
	for name, v := range st.Counters {
		if strings.HasPrefix(name, "binding.pruned.") {
			st.CandidatesPruned += v
		}
		if strings.HasPrefix(name, "accel.faults.injected.") {
			st.FaultsInjected += v
		}
	}
	if st.CandidatesTested > 0 {
		st.FuzzPassRate = float64(st.Survivors) / float64(st.CandidatesTested)
	}
	st.Retries = st.Counters["accel.retries"]
	st.RetriesExhausted = st.Counters["accel.retry.exhausted"]
	st.DegradedRuns = st.Counters["accel.degraded_runs"]
	st.CandidatePanics = st.Counters["synth.panics"]
	st.CandidateTimeouts = st.Counters["synth.candidate_timeouts"]
	st.OracleHits = st.Counters["synth.oracle_hits"]
	st.OracleMisses = st.Counters["synth.oracle_misses"]
	if total := st.OracleHits + st.OracleMisses; total > 0 {
		st.OracleHitRate = float64(st.OracleHits) / float64(total)
	}
	for name, v := range st.Counters {
		target, isHit := "", false
		switch {
		case strings.HasPrefix(name, "synth.oracle_hits."):
			target, isHit = strings.TrimPrefix(name, "synth.oracle_hits."), true
		case strings.HasPrefix(name, "synth.oracle_misses."):
			target = strings.TrimPrefix(name, "synth.oracle_misses.")
		default:
			continue
		}
		if st.OraclePerTarget == nil {
			st.OraclePerTarget = map[string]OracleStats{}
		}
		os := st.OraclePerTarget[target]
		if isHit {
			os.Hits = v
		} else {
			os.Misses = v
		}
		st.OraclePerTarget[target] = os
	}
	for target, os := range st.OraclePerTarget {
		if total := os.Hits + os.Misses; total > 0 {
			os.HitRate = float64(os.Hits) / float64(total)
			st.OraclePerTarget[target] = os
		}
	}
	if s.Ledger != nil && s.Ledger.Len() > 0 {
		sum := s.Ledger.Summary()
		st.Costs = &sum
	}
	if !s.Kills.Empty() {
		st.Search = s.Kills.Summary()
	}
	st.PoolBusy = int64(st.Gauges["synth.pool_busy"])
	if cap, ok := st.Gauges["serve.queue_capacity"]; ok {
		st.Serve = &ServeStatus{
			QueueDepth:       int64(st.Gauges["serve.queue_depth"]),
			QueueCapacity:    int64(cap),
			Workers:          int64(st.Gauges["serve.workers"]),
			WorkersBusy:      int64(st.Gauges["serve.workers_busy"]),
			Draining:         st.Gauges["serve.draining"] != 0,
			JobsAdmitted:     st.Counters["serve.jobs_admitted"],
			JobsCompleted:    st.Counters["serve.jobs_completed"],
			JobsFailed:       st.Counters["serve.jobs_failed"],
			JobsShed:         st.Counters["serve.jobs_shed"],
			JobsDeduped:      st.Counters["serve.jobs_deduped"],
			CacheHits:        st.Counters["serve.cache_hits"],
			HardCancels:      st.Counters["serve.drain_hard_cancels"],
			StoreHits:        st.Counters["store.hits"],
			StoreMisses:      st.Counters["store.misses"],
			StoreWrites:      st.Counters["store.writes"],
			StoreQuarantined: st.Counters["store.corrupt_quarantined"],
			SLOLatencyMS:     st.Gauges["serve.slo_latency_ms"],
			SLOObjective:     st.Gauges["serve.slo_objective"],
			SLOTotal:         st.Counters["serve.slo_total"],
			SLOViolations:    st.Counters["serve.slo_violations"],
			SLOBurnRate:      st.Gauges["serve.slo_burn_rate"],
			FlightRetained:   int64(st.Gauges["serve.flight_retained"]),
		}
		if g, ok := st.Gauges["store.breaker.state"]; ok {
			st.Serve.StoreBreaker = breakerStateName(int(g))
		}
		if pages, ok := st.Gauges["store.pages"]; ok {
			st.Serve.Store = &StoreStatus{
				Pages:            int64(pages),
				FreePages:        int64(st.Gauges["store.free_pages"]),
				Snapshots:        int64(st.Gauges["store.snapshots"]),
				Commits:          st.Counters["store.commits"],
				CommitBatches:    st.Counters["store.commit_batches"],
				Compactions:      st.Counters["store.compactions"],
				RecoveredPages:   st.Counters["store.recovered_pending"],
				WALTorn:          st.Counters["store.wal_torn"],
				WALResets:        st.Counters["store.wal_resets"],
				FreelistLost:     st.Counters["store.freelist_lost"],
				QuarantinedFiles: int64(st.Gauges["store.quarantined"]),
			}
		}
	}
	if peers, ok := st.Gauges["fleet.peers"]; ok {
		st.Fleet = &FleetStatus{
			Peers:                int64(peers),
			PeersHealthy:         int64(st.Gauges["fleet.peers_healthy"]),
			HandledLocal:         st.Counters["fleet.handled_local"],
			Forwarded:            st.Counters["fleet.forwarded"],
			ForwardedIn:          st.Counters["fleet.forwarded_in"],
			ForwardRetries:       st.Counters["fleet.forward_retries"],
			Failovers:            st.Counters["fleet.forward_failovers"],
			DegradedLocal:        st.Counters["fleet.degraded_local"],
			LoopRejected:         st.Counters["fleet.loop_rejected"],
			CacheProbeHits:       st.Counters["fleet.cache_probe_hits"],
			Hedges:               st.Counters["fleet.hedges"],
			HedgeWins:            st.Counters["fleet.hedge_wins"],
			RateLimited:          st.Counters["fleet.ratelimited"],
			RetryBudget:          st.Gauges["fleet.retry_budget"],
			RetryBudgetExhausted: st.Counters["fleet.retry_budget_exhausted"],
			PeerEjections:        st.Counters["fleet.peer_ejections"],
			PeerRecoveries:       st.Counters["fleet.peer_recoveries"],
		}
		for name, g := range st.Gauges {
			if strings.HasPrefix(name, "fleet.peer_healthy.") {
				if st.Fleet.PeerHealth == nil {
					st.Fleet.PeerHealth = map[string]bool{}
				}
				st.Fleet.PeerHealth[strings.TrimPrefix(name, "fleet.peer_healthy.")] = g != 0
			}
		}
	}
	if g, ok := st.Gauges["accel.breaker.state"]; ok {
		st.BreakerState = breakerStateName(int(g))
	}
	return st
}

// breakerStateName decodes a faultinject.State enum value stored in a
// gauge.
func breakerStateName(v int) string {
	switch v {
	case 0:
		return "closed"
	case 1:
		return "open"
	case 2:
		return "half-open"
	default:
		return "unknown"
	}
}

// Handler returns the route mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.index)
	mux.HandleFunc("/metrics", s.metrics)
	mux.HandleFunc("/status", s.status)
	mux.HandleFunc("/trace", s.trace)
	mux.HandleFunc("/journal", s.journal)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *Server) index(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte("facc observability\n\n" +
		"/metrics        Prometheus exposition\n" +
		"/status         live pipeline status (JSON)\n" +
		"/trace          Chrome trace_event download\n" +
		"/journal        synthesis provenance journal (JSONL)\n" +
		"/debug/pprof/   Go profiling\n"))
}

func (s *Server) metrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.Tracer.Metrics().WritePrometheus(w)
	s.Ledger.WritePrometheus(w) // nil-safe; labeled facc_ledger_* families
	s.Kills.WritePrometheus(w)  // nil-safe; labeled facc_search_* families
}

func (s *Server) status(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.BuildStatus())
}

func (s *Server) trace(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="facc-trace.json"`)
	s.Tracer.WriteChromeTrace(w)
}

func (s *Server) journal(w http.ResponseWriter, r *http.Request) {
	if s.Journal == nil {
		http.Error(w, "no journal attached (run with -explain or -journal)",
			http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	s.Journal.WriteJSONL(w)
}

// Serve binds addr (e.g. ":9090" or "127.0.0.1:0"), serves the handler in
// a background goroutine, and returns the bound address plus a shutdown
// function. The pipeline keeps running regardless of scrape traffic.
func Serve(addr string, tr *obs.Tracer, j *obs.Journal, l *obs.Ledger, k *obs.KillTable) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: New(tr, j, l, k).Handler()}
	go hs.Serve(ln)
	return ln.Addr().String(), hs.Close, nil
}
