package obshttp_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"facc/internal/accel"
	"facc/internal/core"
	"facc/internal/obs"
	"facc/internal/obs/obshttp"
	"facc/internal/synth"
)

// fftSrc is the repo's standard radix-2 {re,im}-struct fixture — it
// synthesizes successfully against the FFTA, so a compilation exercises
// the whole pipeline (binding, fuzzing, rangecheck, codegen).
const fftSrc = `
#include <math.h>
typedef struct { double re; double im; } cpx;
void fft(cpx* x, int n) {
    int j = 0;
    for (int i = 1; i < n; i++) {
        int bit = n >> 1;
        for (; j & bit; bit >>= 1) j ^= bit;
        j |= bit;
        if (i < j) {
            cpx tmp = x[i];
            x[i] = x[j];
            x[j] = tmp;
        }
    }
    for (int len = 2; len <= n; len <<= 1) {
        double ang = -2.0 * M_PI / (double)len;
        for (int i = 0; i < n; i += len) {
            for (int k = 0; k < len / 2; k++) {
                double wre = cos(ang * (double)k);
                double wim = sin(ang * (double)k);
                cpx u = x[i + k];
                cpx v;
                v.re = x[i + k + len / 2].re * wre - x[i + k + len / 2].im * wim;
                v.im = x[i + k + len / 2].re * wim + x[i + k + len / 2].im * wre;
                x[i + k].re = u.re + v.re;
                x[i + k].im = u.im + v.im;
                x[i + k + len / 2].re = u.re - v.re;
                x[i + k + len / 2].im = u.im - v.im;
            }
        }
    }
}`

func compileOnce(t testing.TB, tr *obs.Tracer, j *obs.Journal) {
	t.Helper()
	_, err := core.CompileSource(context.Background(), "fft.c", fftSrc, accel.NewFFTA(), core.Options{
		ProfileValues: map[string][]int64{"n": {64, 128, 256}},
		Synth:         synth.Options{NumTests: 4},
		Trace:         tr,
		Journal:       j,
	})
	if err != nil {
		t.Errorf("compile: %v", err)
	}
}

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

// promHist is a histogram family reassembled from the text exposition.
type promHist struct {
	les                []string
	cums               []float64
	sum, count         float64
	haveSum, haveCount bool
}

// parseProm is a minimal test-side parser for the Prometheus text
// exposition format (version 0.0.4): it collects TYPE declarations,
// scalar samples, and histogram series keyed by family name.
func parseProm(t *testing.T, text string) (map[string]string, map[string]float64, map[string]*promHist) {
	t.Helper()
	types := map[string]string{}
	scalars := map[string]float64{}
	hists := map[string]*promHist{}
	hist := func(fam string) *promHist {
		h := hists[fam]
		if h == nil {
			h = &promHist{}
			hists[fam] = h
		}
		return h
	}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) == 4 && fields[1] == "TYPE" {
				types[fields[2]] = fields[3]
			}
			continue
		}
		name, rest, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed sample line %q", line)
		}
		labels := ""
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Fatalf("malformed labels in %q", line)
			}
			labels = name[i+1 : len(name)-1]
			name = name[:i]
		}
		v, err := strconv.ParseFloat(rest, 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		switch {
		case strings.HasSuffix(name, "_bucket"):
			fam := strings.TrimSuffix(name, "_bucket")
			le := strings.TrimPrefix(labels, `le="`)
			le = strings.TrimSuffix(le, `"`)
			h := hist(fam)
			h.les = append(h.les, le)
			h.cums = append(h.cums, v)
		case strings.HasSuffix(name, "_sum") && types[strings.TrimSuffix(name, "_sum")] == "histogram":
			h := hist(strings.TrimSuffix(name, "_sum"))
			h.sum, h.haveSum = v, true
		case strings.HasSuffix(name, "_count") && types[strings.TrimSuffix(name, "_count")] == "histogram":
			h := hist(strings.TrimSuffix(name, "_count"))
			h.count, h.haveCount = v, true
		default:
			scalars[name] = v
		}
	}
	return types, scalars, hists
}

// TestMetricsRoundTrip scrapes /metrics after a real compilation and
// verifies the exposition against the registry it came from: every
// counter and histogram round-trips, bucket series are cumulative and end
// at le="+Inf" == _count, and _sum/_count agree with the HistSnapshot.
func TestMetricsRoundTrip(t *testing.T) {
	tr := obs.New()
	compileOnce(t, tr, nil)

	srv := httptest.NewServer(obshttp.New(tr, nil, nil, nil).Handler())
	defer srv.Close()
	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	types, scalars, hists := parseProm(t, body)

	counters := tr.Metrics().Counters()
	if len(counters) == 0 {
		t.Fatal("compilation produced no counters")
	}
	for name, v := range counters {
		pn := obs.PromName(name)
		if types[pn] != "counter" {
			t.Errorf("%s: TYPE %q, want counter", pn, types[pn])
		}
		if got := scalars[pn]; got != float64(v) {
			t.Errorf("%s = %g, want %d", pn, got, v)
		}
	}

	snaps := tr.Metrics().Histograms()
	if len(snaps) == 0 {
		t.Fatal("compilation produced no histograms")
	}
	for _, s := range snaps {
		pn := obs.PromName(s.Name)
		h := hists[pn]
		if h == nil {
			t.Errorf("histogram %s missing from exposition", pn)
			continue
		}
		if types[pn] != "histogram" {
			t.Errorf("%s: TYPE %q, want histogram", pn, types[pn])
		}
		if len(h.les) != len(s.Bounds)+1 {
			t.Errorf("%s: %d buckets, want %d", pn, len(h.les), len(s.Bounds)+1)
			continue
		}
		// Cumulative and consistent with the snapshot's per-bucket counts.
		var cum int64
		for i := range s.Bounds {
			cum += s.Counts[i]
			if h.cums[i] != float64(cum) {
				t.Errorf("%s bucket le=%s = %g, want cumulative %d",
					pn, h.les[i], h.cums[i], cum)
			}
			if i > 0 && h.cums[i] < h.cums[i-1] {
				t.Errorf("%s bucket series not monotone at %d", pn, i)
			}
		}
		last := len(h.les) - 1
		if h.les[last] != "+Inf" || h.cums[last] != float64(s.Count) {
			t.Errorf("%s: final bucket le=%s=%g, want +Inf=%d",
				pn, h.les[last], h.cums[last], s.Count)
		}
		if !h.haveSum || !h.haveCount {
			t.Errorf("%s: missing _sum/_count", pn)
		}
		if h.count != float64(s.Count) {
			t.Errorf("%s_count = %g, want %d", pn, h.count, s.Count)
		}
		if diff := h.sum - s.Sum; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s_sum = %g, want %g", pn, h.sum, s.Sum)
		}
	}
}

// TestStatusAndTraceLiveMidCompilation runs compilations continuously in
// the background and scrapes /status and /trace while they are in flight:
// the status document must eventually show a live root span with its
// current stage, and /trace must always parse as a Chrome trace.
func TestStatusAndTraceLiveMidCompilation(t *testing.T) {
	tr := obs.New()
	j := obs.NewJournal()
	srv := httptest.NewServer(obshttp.New(tr, j, nil, nil).Handler())
	defer srv.Close()

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
				compileOnce(t, tr, j)
			}
		}
	}()

	sawInFlight := false
	deadline := time.Now().Add(10 * time.Second)
	for !sawInFlight && time.Now().Before(deadline) {
		code, body := get(t, srv, "/status")
		if code != http.StatusOK {
			t.Fatalf("/status status %d", code)
		}
		var st obshttp.Status
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Fatalf("/status not JSON: %v\n%s", err, body)
		}
		for _, inf := range st.InFlight {
			if inf.Root == "compile" && inf.Stage != "" {
				sawInFlight = true
			}
		}
		// The trace endpoint must serve a loadable snapshot at any moment.
		code, body = get(t, srv, "/trace")
		if code != http.StatusOK {
			t.Fatalf("/trace status %d", code)
		}
		if _, err := obs.ParseChromeTrace([]byte(body)); err != nil {
			t.Fatalf("/trace mid-compilation: %v", err)
		}
	}
	close(stop)
	<-done
	if !sawInFlight {
		t.Error("never observed an in-flight compilation in /status")
	}

	// Settled state: completed spans, pipeline counters, pass rate, journal.
	_, body := get(t, srv, "/status")
	var st obshttp.Status
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.SpansCompleted == 0 {
		t.Error("spans_completed = 0 after compilations")
	}
	if st.CandidatesTested == 0 || st.Winners == 0 {
		t.Errorf("candidate accounting empty: %+v", st)
	}
	if st.FuzzPassRate <= 0 || st.FuzzPassRate > 1 {
		t.Errorf("fuzz_pass_rate = %g", st.FuzzPassRate)
	}
	if st.UptimeS <= 0 {
		t.Errorf("uptime_s = %g", st.UptimeS)
	}
	if st.JournalEvents == 0 {
		t.Error("journal_events = 0 with a journal attached")
	}

	code, body := get(t, srv, "/journal")
	if code != http.StatusOK {
		t.Fatalf("/journal status %d", code)
	}
	accepted := false
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		var ev obs.JournalEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("journal line %q: %v", sc.Text(), err)
		}
		if ev.Kind == obs.KindAccepted {
			accepted = true
		}
	}
	if !accepted {
		t.Error("journal has no accepted event after successful compilations")
	}
}

// TestStatusRobustnessFields: the degradation telemetry (fault
// injections, retries, degraded runs, breaker state) surfaces in the
// /status document from the faultinject counter/gauge names.
func TestStatusRobustnessFields(t *testing.T) {
	tr := obs.New()
	reg := tr.Metrics()
	reg.Counter("accel.faults.injected.transient").Add(7)
	reg.Counter("accel.faults.injected.corrupt").Add(2)
	reg.Counter("accel.faults.injected.latency").Add(1)
	reg.Counter("accel.retries").Add(5)
	reg.Counter("accel.retry.exhausted").Add(1)
	reg.Counter("accel.degraded_runs").Add(3)
	reg.Counter("synth.panics").Add(1)
	reg.Counter("synth.candidate_timeouts").Add(4)
	reg.Gauge("accel.breaker.state").Set(1)

	srv := httptest.NewServer(obshttp.New(tr, nil, nil, nil).Handler())
	defer srv.Close()
	_, body := get(t, srv, "/status")
	var st obshttp.Status
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/status not JSON: %v", err)
	}
	if st.FaultsInjected != 10 {
		t.Errorf("faults_injected = %d, want 10", st.FaultsInjected)
	}
	if st.Retries != 5 || st.RetriesExhausted != 1 {
		t.Errorf("retries = %d/%d, want 5/1", st.Retries, st.RetriesExhausted)
	}
	if st.DegradedRuns != 3 {
		t.Errorf("degraded_runs = %d, want 3", st.DegradedRuns)
	}
	if st.CandidatePanics != 1 || st.CandidateTimeouts != 4 {
		t.Errorf("panics/timeouts = %d/%d, want 1/4", st.CandidatePanics, st.CandidateTimeouts)
	}
	if st.BreakerState != "open" {
		t.Errorf("breaker_state = %q, want open", st.BreakerState)
	}

	// Without a hardened accelerator the state is simply absent.
	srv2 := httptest.NewServer(obshttp.New(obs.New(), nil, nil, nil).Handler())
	defer srv2.Close()
	_, body = get(t, srv2, "/status")
	var st2 obshttp.Status
	if err := json.Unmarshal([]byte(body), &st2); err != nil {
		t.Fatal(err)
	}
	if st2.BreakerState != "" {
		t.Errorf("breaker_state without hardening = %q, want empty", st2.BreakerState)
	}
}

// TestPprofAndIndexEndpoints: the pprof mux is wired and the index lists
// the surface.
func TestPprofAndIndexEndpoints(t *testing.T) {
	srv := httptest.NewServer(obshttp.New(obs.New(), nil, nil, nil).Handler())
	defer srv.Close()
	code, body := get(t, srv, "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ status %d", code)
	}
	code, body = get(t, srv, "/")
	if code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Errorf("index status %d body %q", code, body)
	}
	code, _ = get(t, srv, "/journal")
	if code != http.StatusNotFound {
		t.Errorf("/journal without journal: status %d, want 404", code)
	}
}

// TestServeBindsAndShutsDown covers the -serve plumbing: Serve binds an
// ephemeral port, answers /status, and the shutdown function stops it.
func TestServeBindsAndShutsDown(t *testing.T) {
	tr := obs.New()
	addr, shutdown, err := obshttp.Serve("127.0.0.1:0", tr, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/status", addr))
	if err != nil {
		t.Fatalf("GET /status on %s: %v", addr, err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status %d", resp.StatusCode)
	}
	if err := shutdown(); err != nil {
		t.Errorf("shutdown: %v", err)
	}
	if _, err := http.Get(fmt.Sprintf("http://%s/status", addr)); err == nil {
		t.Error("server still answering after shutdown")
	}
}
