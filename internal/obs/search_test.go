package obs

import (
	"strings"
	"sync"
	"testing"
)

func sampleKills() *KillTable {
	k := NewKillTable()
	k.AddGenerated("fft", "ffta", 10)
	k.AddPreFiltered("fft", "ffta", 4)
	k.AddDispatched("fft", "ffta", 6)
	k.AddSuperseded("fft", "ffta", 1)
	k.AddSurvived("fft", "ffta", 1)
	k.AddWinner("fft", "ffta", 1)
	// Case 0 kills two distinct binding families; case 1 kills one.
	k.Record(KillEvent{Function: "fft", Target: "ffta", Candidate: "c1",
		Family: "famA", Seed: 42, CaseIndex: 0, CaseSig: "seed=42 n=64 case=0",
		Len: 64, Steps: 100, Mismatch: "behavior-mismatch"})
	k.Record(KillEvent{Function: "fft", Target: "ffta", Candidate: "c2",
		Family: "famB", Seed: 42, CaseIndex: 0, CaseSig: "seed=42 n=64 case=0",
		Len: 64, Steps: 120, Mismatch: "behavior-mismatch"})
	k.Record(KillEvent{Function: "fft", Target: "ffta", Candidate: "c3",
		Family: "famA", Seed: 42, CaseIndex: 1, CaseSig: "seed=42 n=64 case=1",
		Len: 64, Steps: 250, Mismatch: "return-mismatch"})
	// A caseless death: no attributable IO case.
	k.Record(KillEvent{Function: "fft", Target: "ffta", Candidate: "c4",
		Family: "famC", Seed: 42, CaseIndex: -1, Mismatch: "timeout"})
	return k
}

func TestKillTableSummary(t *testing.T) {
	sum := sampleKills().Summary()
	if sum == nil {
		t.Fatal("nil summary for populated table")
	}
	if sum.Generated != 10 || sum.PreFiltered != 4 || sum.Dispatched != 6 {
		t.Errorf("funnel head = %d/%d/%d, want 10/4/6",
			sum.Generated, sum.PreFiltered, sum.Dispatched)
	}
	if sum.Killed != 4 || sum.Superseded != 1 || sum.Survived != 1 || sum.Winners != 1 {
		t.Errorf("funnel tail = %d/%d/%d/%d, want 4/1/1/1",
			sum.Killed, sum.Superseded, sum.Survived, sum.Winners)
	}
	if sum.MultiFamilyCases != 1 {
		t.Errorf("MultiFamilyCases = %d, want 1 (case 0 killed famA and famB)",
			sum.MultiFamilyCases)
	}
	if len(sum.Cases) != 2 {
		t.Fatalf("%d ranked cases, want 2", len(sum.Cases))
	}
	// Case 0 (2 families) must outrank case 1 (1 family).
	if sum.Cases[0].Sig != "seed=42 n=64 case=0" || sum.Cases[0].Families != 2 {
		t.Errorf("top case = %q families=%d, want case=0 with 2 families",
			sum.Cases[0].Sig, sum.Cases[0].Families)
	}
	// Kill depth: bucket -1 (caseless), 0 (two kills), 1 (one kill).
	want := map[int]int64{-1: 1, 0: 2, 1: 1}
	if len(sum.KillDepth) != len(want) {
		t.Fatalf("%d depth buckets, want %d: %+v", len(sum.KillDepth), len(want), sum.KillDepth)
	}
	for _, b := range sum.KillDepth {
		if want[b.CaseIndex] != b.Kills {
			t.Errorf("depth[%d] = %d, want %d", b.CaseIndex, b.Kills, want[b.CaseIndex])
		}
	}
	if sum.Mismatch["behavior-mismatch"] != 2 || sum.Mismatch["timeout"] != 1 {
		t.Errorf("mismatch tally = %v", sum.Mismatch)
	}
	if len(sum.PerTarget) != 1 || sum.PerTarget[0].Target != "ffta" {
		t.Fatalf("per-target = %+v, want one ffta row", sum.PerTarget)
	}
}

func TestKillTableEmptySummaryNil(t *testing.T) {
	if sum := NewKillTable().Summary(); sum != nil {
		t.Errorf("empty table summary = %+v, want nil", sum)
	}
	var k *KillTable
	if sum := k.Summary(); sum != nil {
		t.Errorf("nil table summary = %+v, want nil", sum)
	}
}

// TestKillTableScoped: a scoped view stamps its trace onto events and
// funnels, and TraceSummary/TraceEvents carve out exactly that trace.
func TestKillTableScoped(t *testing.T) {
	k := NewKillTable()
	a := k.Scoped("trace-a")
	b := k.Scoped("trace-b")
	a.AddDispatched("fft", "ffta", 2)
	a.Record(KillEvent{Function: "fft", Target: "ffta", Candidate: "c1",
		Family: "famA", CaseIndex: 0, CaseSig: "seed=1 n=64 case=0",
		Mismatch: "behavior-mismatch"})
	b.Record(KillEvent{Function: "fft", Target: "ffta", Candidate: "c2",
		Family: "famB", CaseIndex: -1, Mismatch: "timeout"})

	if got := len(k.TraceEvents("trace-a")); got != 1 {
		t.Errorf("trace-a events = %d, want 1", got)
	}
	sa := k.TraceSummary("trace-a")
	if sa == nil || sa.Killed != 1 || sa.Dispatched != 2 {
		t.Errorf("trace-a summary = %+v, want killed=1 dispatched=2", sa)
	}
	sb := k.TraceSummary("trace-b")
	if sb == nil || sb.Killed != 1 || sb.Dispatched != 0 {
		t.Errorf("trace-b summary = %+v, want killed=1 dispatched=0", sb)
	}
	if k.TraceSummary("trace-c") != nil {
		t.Error("unknown trace should summarize to nil")
	}
	// The shared view sees everything.
	if sum := k.Summary(); sum == nil || sum.Killed != 2 {
		t.Errorf("global summary = %+v, want killed=2", sum)
	}
}

// TestNilKillTableZeroAllocs: the disabled-observability contract — every
// method the verdict path can reach must be a free no-op on nil.
func TestNilKillTableZeroAllocs(t *testing.T) {
	var k *KillTable
	allocs := testing.AllocsPerRun(500, func() {
		if k != nil {
			t.Fatal("unreachable")
		}
		k.Record(KillEvent{Function: "fft", Target: "ffta"})
		k.AddGenerated("fft", "ffta", 1)
		k.AddPreFiltered("fft", "ffta", 1)
		k.AddDispatched("fft", "ffta", 1)
		k.AddSuperseded("fft", "ffta", 1)
		k.AddSurvived("fft", "ffta", 1)
		k.AddWinner("fft", "ffta", 1)
		k.Scoped("trace")
	})
	if allocs != 0 {
		t.Errorf("nil kill table allocates %.0f per verdict, want 0", allocs)
	}
}

func TestWriteSearchReport(t *testing.T) {
	var sb strings.Builder
	if err := sampleKills().WriteSearchReport(&sb, 10); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"search funnel: 10 generated, 4 pre-filtered, 6 dispatched, 4 killed, 1 superseded, 1 survived, 1 winner(s)",
		"case 0: 2 kill(s)",
		"no single case (not-viable/timeout/panic): 1",
		"[ffta] seed=42 n=64 case=0 — 2 kill(s) across 2 binding family(ies)",
		"cases killing more than one binding family: 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}

	sb.Reset()
	if err := NewKillTable().WriteSearchReport(&sb, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no events recorded") {
		t.Errorf("empty report = %q", sb.String())
	}
}

func TestKillTablePrometheus(t *testing.T) {
	var sb strings.Builder
	if err := sampleKills().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`facc_search_candidates_total{target="ffta",stage="generated"} 10`,
		`facc_search_candidates_total{target="ffta",stage="killed"} 4`,
		`facc_search_kills_total{mismatch="behavior-mismatch"} 2`,
		`facc_search_kill_depth_total{case="-1"} 1`,
		`facc_search_kill_depth_total{case="0"} 2`,
		`facc_search_multi_family_cases{target="ffta"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	var nk *KillTable
	sb.Reset()
	if err := nk.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Errorf("nil table exposition = %q, %v; want empty, nil", sb.String(), err)
	}
}

// TestKillTableConcurrent exercises the shared state from parallel
// goroutines the way worker-pool synthesis does (run under -race).
func TestKillTableConcurrent(t *testing.T) {
	k := NewKillTable()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v := k.Scoped("trace")
			for i := 0; i < 100; i++ {
				v.AddDispatched("fft", "ffta", 1)
				v.Record(KillEvent{Function: "fft", Target: "ffta",
					Candidate: "c", Family: "fam", CaseIndex: 0,
					CaseSig: "seed=1 n=64 case=0", Mismatch: "behavior-mismatch"})
			}
		}()
	}
	wg.Wait()
	if k.Len() != 800 {
		t.Errorf("events = %d, want 800", k.Len())
	}
	sum := k.Summary()
	if sum.Dispatched != 800 || sum.Killed != 800 {
		t.Errorf("summary = dispatched %d killed %d, want 800/800",
			sum.Dispatched, sum.Killed)
	}
}

// TestValidTraceID pins the X-Facc-Trace admission rules: 1..64 bytes of
// [A-Za-z0-9._-]. Anything else — including the empty string — is
// replaced with a generated ID by the server.
func TestValidTraceID(t *testing.T) {
	valid := []string{"a", "deadbeefdeadbeefdeadbeefdeadbeef", "Trace-1.2_3",
		strings.Repeat("x", 64)}
	for _, s := range valid {
		if !ValidTraceID(s) {
			t.Errorf("ValidTraceID(%q) = false, want true", s)
		}
	}
	invalid := []string{"", strings.Repeat("x", 65), "has space", "semi;colon",
		"new\nline", "null\x00byte", "ünïcode", `quote"`, "{curly}"}
	for _, s := range invalid {
		if ValidTraceID(s) {
			t.Errorf("ValidTraceID(%q) = true, want false", s)
		}
	}
	// Every generated ID must be admissible.
	for i := 0; i < 20; i++ {
		if id := NewTraceID(); !ValidTraceID(id) {
			t.Fatalf("generated trace ID %q rejected by ValidTraceID", id)
		}
	}
}
