package obs

// Regression tests for live pool reranking: rank state (kills, family
// spread, last-useful time) must update on every recorded kill, not only
// when the pool is flushed — a long-running faccd reranks mid-process.

import (
	"testing"
	"time"
)

func TestCexPoolRecordKillReranksLive(t *testing.T) {
	p := NewCexPool()
	t0 := time.Unix(1_000, 0)
	p.Now = func() time.Time { return t0 }

	p.RecordKill("seed=1 n=64 case=0", 1, 64, 0, "famA", "ffta")
	p.RecordKill("seed=1 n=64 case=1", 1, 64, 1, "famB", "ffta")
	// A second, cross-family kill promotes case=1 — with no Flush in
	// between, Entries() (and therefore ReplayRank) must already see it.
	p.RecordKill("seed=1 n=64 case=1", 1, 64, 1, "famC", "powerquad")

	entries := p.Entries()
	if len(entries) != 2 {
		t.Fatalf("want 2 entries, got %d", len(entries))
	}
	if entries[0].Sig != "seed=1 n=64 case=1" {
		t.Errorf("live rerank failed: top entry is %q, want the 2-family case", entries[0].Sig)
	}
	if entries[0].FamilyCount != 2 || entries[0].Kills != 2 {
		t.Errorf("top entry counters: families=%d kills=%d, want 2/2",
			entries[0].FamilyCount, entries[0].Kills)
	}
	if rank := p.ReplayRank(); rank["seed=1 n=64 case=1"] != 0 || rank["seed=1 n=64 case=0"] != 1 {
		t.Errorf("ReplayRank does not reflect live kills: %v", rank)
	}

	// Last-useful timestamps also move per kill: a later kill on the
	// losing entry must stamp the new clock without any flush.
	t1 := time.Unix(2_000, 0)
	p.Now = func() time.Time { return t1 }
	p.RecordKill("seed=1 n=64 case=0", 1, 64, 0, "famA", "ffta")
	e, ok := p.Get("seed=1 n=64 case=0")
	if !ok {
		t.Fatal("entry disappeared")
	}
	if e.LastUsefulUnix != t1.Unix() {
		t.Errorf("LastUsefulUnix=%d, want %d (updated on kill, not flush)",
			e.LastUsefulUnix, t1.Unix())
	}
	if e.FirstSeenUnix != t0.Unix() {
		t.Errorf("FirstSeenUnix=%d, want %d (first kill's clock)", e.FirstSeenUnix, t0.Unix())
	}
}

func TestCexPoolRecordKillRejectsHostileInput(t *testing.T) {
	p := NewCexPool()
	p.RecordKill("", 1, 64, 0, "fam", "ffta")        // no signature
	p.RecordKill("seed=1 n=64", 1, 64, -1, "f", "t") // negative case index
	var nilPool *CexPool
	nilPool.RecordKill("seed=1 n=64 case=0", 1, 64, 0, "fam", "ffta") // nil receiver
	if n := p.Len(); n != 0 {
		t.Fatalf("hostile kills created %d entries, want 0", n)
	}
	if rank := p.ReplayRank(); rank != nil {
		t.Fatalf("empty pool must have nil ReplayRank, got %v", rank)
	}
}

func TestCexPoolCloneIsolates(t *testing.T) {
	p := NewCexPool()
	p.Now = func() time.Time { return time.Unix(1, 0) }
	p.RecordKill("seed=1 n=64 case=0", 1, 64, 0, "famA", "ffta")

	c := p.Clone()
	c.RecordKill("seed=1 n=64 case=0", 1, 64, 0, "famB", "fftw")
	c.RecordKill("seed=1 n=64 case=9", 1, 64, 9, "famB", "fftw")

	if p.Len() != 1 || c.Len() != 2 {
		t.Fatalf("clone not isolated: original %d entries, clone %d", p.Len(), c.Len())
	}
	orig, _ := p.Get("seed=1 n=64 case=0")
	if orig.Kills != 1 || orig.FamilyCount != 1 {
		t.Errorf("clone writes leaked into original: kills=%d families=%d",
			orig.Kills, orig.FamilyCount)
	}
}
