package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// ChromeEvent is one entry of the Chrome trace_event format (the subset
// FACC emits: "X" complete events plus "M" metadata). Files load directly
// in chrome://tracing and Perfetto.
type ChromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int64          `json:"pid"`
	Tid  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace is the enclosing trace_event object form.
type ChromeTrace struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit,omitempty"`
}

func (s *Span) args() map[string]any {
	if len(s.Attrs) == 0 {
		return nil
	}
	args := make(map[string]any, len(s.Attrs))
	for _, a := range s.Attrs {
		args[a.Key] = a.Value()
	}
	return args
}

// WriteChromeTrace exports every completed span as a Chrome trace_event
// "complete" event. Each root span gets its own tid lane, so concurrent
// compilations render side by side and children nest (by time
// containment) under their ancestors.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	trace := ChromeTrace{DisplayTimeUnit: "ms"}
	trace.TraceEvents = append(trace.TraceEvents, ChromeEvent{
		Name: "process_name", Ph: "M", Pid: 1,
		Args: map[string]any{"name": "facc"},
	})
	for _, s := range t.Spans() {
		args := s.args()
		if s.Trace != "" {
			if args == nil {
				args = map[string]any{}
			}
			args["trace"] = s.Trace
		}
		trace.TraceEvents = append(trace.TraceEvents, ChromeEvent{
			Name: s.Name,
			Cat:  "facc",
			Ph:   "X",
			Ts:   float64(s.Start) / float64(time.Microsecond),
			Dur:  float64(s.Dur) / float64(time.Microsecond),
			Pid:  1,
			Tid:  s.Root,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(trace)
}

// ParseChromeTrace decodes a trace produced by WriteChromeTrace (either
// the object form or a bare event array).
func ParseChromeTrace(data []byte) (*ChromeTrace, error) {
	var trace ChromeTrace
	if err := json.Unmarshal(data, &trace); err != nil {
		var events []ChromeEvent
		if err2 := json.Unmarshal(data, &events); err2 != nil {
			return nil, fmt.Errorf("obs: not a chrome trace: %w", err)
		}
		trace.TraceEvents = events
	}
	return &trace, nil
}

// jsonlSpan is the JSON-lines span record.
type jsonlSpan struct {
	Type    string         `json:"type"`
	Name    string         `json:"name"`
	ID      int64          `json:"id"`
	Parent  int64          `json:"parent,omitempty"`
	Trace   string         `json:"trace,omitempty"`
	Wall    string         `json:"wall"`
	StartUs float64        `json:"start_us"`
	DurUs   float64        `json:"dur_us"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// WriteJSONL exports the trace as one JSON object per line: span events
// first (in completion order), then counter/gauge/histogram records.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, s := range t.Spans() {
		rec := jsonlSpan{
			Type:    "span",
			Name:    s.Name,
			ID:      s.ID,
			Parent:  s.Par,
			Trace:   s.Trace,
			Wall:    s.WallStart().Format(time.RFC3339Nano),
			StartUs: float64(s.Start) / float64(time.Microsecond),
			DurUs:   float64(s.Dur) / float64(time.Microsecond),
			Attrs:   s.args(),
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	reg := t.Metrics()
	counters := reg.Counters()
	for _, name := range sortedKeys(counters) {
		if err := enc.Encode(map[string]any{
			"type": "counter", "name": name, "value": counters[name],
		}); err != nil {
			return err
		}
	}
	gauges := reg.Gauges()
	for _, name := range sortedKeys(gauges) {
		if err := enc.Encode(map[string]any{
			"type": "gauge", "name": name, "value": gauges[name],
		}); err != nil {
			return err
		}
	}
	for _, h := range reg.Histograms() {
		if err := enc.Encode(map[string]any{
			"type": "histogram", "name": h.Name, "count": h.Count,
			"sum": h.Sum, "max": h.Max,
			"bounds": h.Bounds, "counts": h.Counts,
		}); err != nil {
			return err
		}
	}
	return nil
}

// errWriter latches the first write error so a long sequence of Fprintf
// calls can be checked once at the end.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) Write(p []byte) (int, error) {
	if ew.err != nil {
		return 0, ew.err
	}
	n, err := ew.w.Write(p)
	if err != nil {
		ew.err = err
	}
	return n, err
}

// WriteSummary renders a human-readable per-run report: per-stage span
// aggregates, then counters, gauges and histogram quantiles. The first
// write error aborts the report and is returned.
func (t *Tracer) WriteSummary(out io.Writer) error {
	w := &errWriter{w: out}
	type agg struct {
		name            string
		count           int64
		total, min, max time.Duration
	}
	byName := map[string]*agg{}
	for _, s := range t.Spans() {
		a := byName[s.Name]
		if a == nil {
			a = &agg{name: s.Name, min: s.Dur}
			byName[s.Name] = a
		}
		a.count++
		a.total += s.Dur
		if s.Dur < a.min {
			a.min = s.Dur
		}
		if s.Dur > a.max {
			a.max = s.Dur
		}
	}
	aggs := make([]*agg, 0, len(byName))
	for _, a := range byName {
		aggs = append(aggs, a)
	}
	sort.Slice(aggs, func(i, j int) bool { return aggs[i].total > aggs[j].total })

	fmt.Fprintf(w, "== spans ==\n")
	fmt.Fprintf(w, "%-24s %8s %12s %12s %12s %12s\n",
		"stage", "count", "total", "mean", "min", "max")
	for _, a := range aggs {
		fmt.Fprintf(w, "%-24s %8d %12s %12s %12s %12s\n",
			a.name, a.count, fmtMs(a.total), fmtMs(a.total/time.Duration(a.count)),
			fmtMs(a.min), fmtMs(a.max))
	}

	reg := t.Metrics()
	counters := reg.Counters()
	if len(counters) > 0 {
		fmt.Fprintf(w, "\n== counters ==\n")
		for _, name := range sortedKeys(counters) {
			fmt.Fprintf(w, "%-40s %12d\n", name, counters[name])
		}
	}
	gauges := reg.Gauges()
	if len(gauges) > 0 {
		fmt.Fprintf(w, "\n== gauges ==\n")
		for _, name := range sortedKeys(gauges) {
			fmt.Fprintf(w, "%-40s %12g\n", name, gauges[name])
		}
	}
	hists := reg.Histograms()
	if len(hists) > 0 {
		fmt.Fprintf(w, "\n== histograms ==\n")
		fmt.Fprintf(w, "%-40s %8s %10s %10s %10s %10s\n",
			"name", "count", "mean", "p50", "p90", "max")
		for _, h := range hists {
			fmt.Fprintf(w, "%-40s %8d %10.3f %10.3f %10.3f %10.3f\n",
				h.Name, h.Count, h.Mean(), h.Quantile(0.5), h.Quantile(0.9), h.Max)
		}
	}
	return w.err
}

// fmtMs renders a duration at the unit that keeps it readable — µs for
// sub-millisecond stages, ms for the common case, s for multi-second
// totals — matching Result.Report()'s adaptive formatting.
func fmtMs(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.3fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
