package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
)

// Trace IDs join the three observability streams — spans, journal events,
// and ledger entries — to the request (or CLI invocation) that caused
// them. The ID is an opaque hex string: faccd mints one per compile
// request (honouring an X-Facc-Trace header when the client supplies
// one), the CLIs mint one per run, and everything downstream inherits it
// through context.Context.

// traceKey is the context key for the trace ID; unexported so only this
// package can write it.
type traceKey struct{}

// NewTraceID returns a fresh 16-byte random trace ID in lowercase hex.
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand only fails on a broken platform; an all-zero ID
		// still joins streams within one process.
		return "00000000000000000000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// WithTraceID returns a context carrying the trace ID. An empty ID
// returns ctx unchanged.
func WithTraceID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, id)
}

// TraceIDFrom returns the trace ID carried by ctx, or "" if none.
func TraceIDFrom(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(traceKey{}).(string)
	return id
}
