package obs

import (
	"io"
	"strconv"
	"strings"
)

// PromName sanitises a FACC metric name into a legal Prometheus metric
// name: every run of characters outside [a-zA-Z0-9_:] becomes one '_'
// (so "binding.pruned.single-read" → "facc_binding_pruned_single_read"),
// and everything is namespaced under "facc_".
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 5)
	b.WriteString("facc_")
	pending := false
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
		if !ok {
			pending = b.Len() > len("facc_")
			continue
		}
		if pending {
			b.WriteByte('_')
			pending = false
		}
		b.WriteByte(c)
	}
	return b.String()
}

func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes every counter, gauge and histogram in the
// Prometheus text exposition format (version 0.0.4), ready to be scraped
// from an obshttp /metrics endpoint. Histograms come out as the standard
// cumulative series: one `_bucket{le="..."}` sample per bound plus the
// `le="+Inf"` total, then `_sum` and `_count`. Metric families appear in
// sorted name order so output is deterministic. Nil-safe: a nil registry
// writes nothing.
func (r *Registry) WritePrometheus(out io.Writer) error {
	if r == nil {
		return nil
	}
	w := &errWriter{w: out}

	counters := r.Counters()
	for _, name := range sortedKeys(counters) {
		pn := PromName(name)
		io.WriteString(w, "# TYPE "+pn+" counter\n")
		io.WriteString(w, pn+" "+strconv.FormatInt(counters[name], 10)+"\n")
	}

	gauges := r.Gauges()
	for _, name := range sortedKeys(gauges) {
		pn := PromName(name)
		io.WriteString(w, "# TYPE "+pn+" gauge\n")
		io.WriteString(w, pn+" "+promFloat(gauges[name])+"\n")
	}

	for _, h := range r.Histograms() {
		pn := PromName(h.Name)
		io.WriteString(w, "# TYPE "+pn+" histogram\n")
		var cum int64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			io.WriteString(w, pn+`_bucket{le="`+promFloat(bound)+`"} `+
				strconv.FormatInt(cum, 10)+"\n")
			writeExemplar(w, h, i)
		}
		io.WriteString(w, pn+`_bucket{le="+Inf"} `+
			strconv.FormatInt(h.Count, 10)+"\n")
		writeExemplar(w, h, len(h.Bounds))
		io.WriteString(w, pn+"_sum "+promFloat(h.Sum)+"\n")
		io.WriteString(w, pn+"_count "+strconv.FormatInt(h.Count, 10)+"\n")
	}
	return w.err
}

// writeExemplar emits bucket i's exemplar as a comment line. The
// text-format 0.0.4 grammar has no exemplar syntax (that is OpenMetrics),
// and strict 0.0.4 parsers reject the `# {...}` suffix form — so the
// trace ID rides in a comment, which every parser skips and a human (or
// the flight recorder's join test) can still grep.
func writeExemplar(w io.Writer, h HistSnapshot, i int) {
	if h.Exemplars == nil || i >= len(h.Exemplars) || h.Exemplars[i].Trace == "" {
		return
	}
	ex := h.Exemplars[i]
	io.WriteString(w, "# exemplar "+PromName(h.Name)+" value="+promFloat(ex.Value)+
		" trace_id="+ex.Trace+"\n")
}

// WritePrometheus exposes the tracer's registry (nil-safe).
func (t *Tracer) WritePrometheus(w io.Writer) error {
	return t.Metrics().WritePrometheus(w)
}
