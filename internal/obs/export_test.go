package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

// TestChromeTraceRoundTrip emits a nested span tree, exports it to the
// Chrome trace_event format, parses it back, and verifies nesting (time
// containment within one tid lane) and durations survive the trip.
func TestChromeTraceRoundTrip(t *testing.T) {
	tr := New()
	root := tr.Span("compile").Str("target", "ffta")
	syn := root.Child("synthesize").Str("function", "fft")
	fuzz := syn.Child("fuzz").Int("tests", 10)
	time.Sleep(time.Millisecond)
	fuzz.End()
	syn.End()
	root.End()
	other := tr.Span("frontend") // second root: its own lane
	other.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	trace, err := ParseChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}

	byName := map[string]ChromeEvent{}
	for _, ev := range trace.TraceEvents {
		if ev.Ph == "X" {
			byName[ev.Name] = ev
		}
	}
	for _, name := range []string{"compile", "synthesize", "fuzz", "frontend"} {
		if _, ok := byName[name]; !ok {
			t.Fatalf("missing event %q", name)
		}
	}

	comp, synE, fz := byName["compile"], byName["synthesize"], byName["fuzz"]
	// Same lane for the whole tree.
	if synE.Tid != comp.Tid || fz.Tid != comp.Tid {
		t.Errorf("tids: compile=%d synthesize=%d fuzz=%d", comp.Tid, synE.Tid, fz.Tid)
	}
	if byName["frontend"].Tid == comp.Tid {
		t.Error("independent roots share a tid lane")
	}
	// Nesting by time containment: child inside parent.
	contains := func(outer, inner ChromeEvent) bool {
		return inner.Ts >= outer.Ts && inner.Ts+inner.Dur <= outer.Ts+outer.Dur
	}
	if !contains(comp, synE) || !contains(synE, fz) {
		t.Errorf("events do not nest: compile=[%g,%g] synthesize=[%g,%g] fuzz=[%g,%g]",
			comp.Ts, comp.Dur, synE.Ts, synE.Dur, fz.Ts, fz.Dur)
	}
	// Durations match the recorded spans (both sides are microseconds).
	wantDur := float64(tr.Find("fuzz")[0].Dur) / float64(time.Microsecond)
	if fz.Dur != wantDur {
		t.Errorf("fuzz dur = %g us, want %g", fz.Dur, wantDur)
	}
	if fz.Dur < 900 { // slept 1ms
		t.Errorf("fuzz dur = %g us, want >= ~1000", fz.Dur)
	}
	// Attributes ride along as args.
	if got, ok := fz.Args["tests"].(float64); !ok || got != 10 {
		t.Errorf("fuzz args = %v, want tests=10", fz.Args)
	}
	if got := synE.Args["function"]; got != "fft" {
		t.Errorf("synthesize args = %v, want function=fft", synE.Args)
	}
}

func TestWriteJSONL(t *testing.T) {
	tr := New()
	sp := tr.Span("compile").Int("n", 3)
	sp.Child("fuzz").End()
	sp.End()
	tr.Metrics().Counter("binding.candidates").Add(7)
	tr.Metrics().Gauge("g").Set(1.5)
	tr.Metrics().Histogram("h", CountBuckets).Observe(3)

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	types := map[string]int{}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		types[rec["type"].(string)]++
	}
	if types["span"] != 2 {
		t.Errorf("span lines = %d, want 2", types["span"])
	}
	// The two span ends feed stage histograms, plus the explicit one.
	if types["counter"] != 1 || types["gauge"] != 1 || types["histogram"] != 3 {
		t.Errorf("metric lines = %v", types)
	}
}

// failWriter fails every write — the exporters must surface that.
type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errSink }

var errSink = errors.New("sink full")

// TestWriteSummaryPropagatesWriteErrors: a failing writer must surface its
// error (a full disk during -metrics export must not be silent).
func TestWriteSummaryPropagatesWriteErrors(t *testing.T) {
	tr := New()
	tr.Span("analyze").End()
	if err := tr.WriteSummary(failWriter{}); !errors.Is(err, errSink) {
		t.Errorf("WriteSummary returned %v, want %v", err, errSink)
	}
}

// TestFmtMsAdaptive: durations render at the readable unit — µs under a
// millisecond, ms under a second, seconds beyond — so a 2.5 s total is not
// printed as "2500.000ms".
func TestFmtMsAdaptive(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{0, "0.0µs"},
		{42 * time.Microsecond, "42.0µs"},
		{999 * time.Microsecond, "999.0µs"},
		{time.Millisecond, "1.000ms"},
		{843*time.Microsecond + 500*time.Nanosecond, "843.5µs"},
		{250 * time.Millisecond, "250.000ms"},
		{time.Second, "1.00s"},
		{2500 * time.Millisecond, "2.50s"},
	}
	for _, c := range cases {
		if got := fmtMs(c.d); got != c.want {
			t.Errorf("fmtMs(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestWriteSummary(t *testing.T) {
	tr := New()
	tr.Span("analyze").End()
	tr.Span("analyze").End()
	tr.Span("fuzz").End()
	tr.Metrics().Counter("interp.ops").Add(42)

	var buf bytes.Buffer
	if err := tr.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== spans ==", "analyze", "fuzz",
		"== counters ==", "interp.ops", "== histograms =="} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}
