package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Ledger verdict classes. Every candidate account ends in exactly one
// verdict; VerdictWinner marks the account whose work was *useful* (it
// became the adapter), everything else is *speculative* — effort the
// deterministic search result discards. Oracle hits are *shared* work:
// lookups answered from the memo table instead of re-interpreting the
// user program.
const (
	VerdictWinner = "winner"
)

// ledgerKey identifies one candidate account: the (trace, function,
// target, candidate) tuple the issue asks every interpreter test, step,
// and oracle lookup to be charged to.
type ledgerKey struct {
	trace     string
	function  string
	target    string
	candidate string
}

// LedgerEntry is one candidate's account: what it cost and how it ended.
type LedgerEntry struct {
	Trace     string `json:"trace,omitempty"`
	Function  string `json:"function"`
	Target    string `json:"target"`
	Candidate string `json:"candidate"`
	// Verdict is the candidate's final fuzz outcome ("winner",
	// "survived", "superseded", "behavior-mismatch", ...). Last write
	// wins: the synthesis engine overrides the winning candidate's
	// "survived" with "winner" once the deterministic search resolves.
	Verdict string `json:"verdict"`
	// Tests counts IO examples executed against the candidate.
	Tests int64 `json:"tests"`
	// Steps and Ops are interpreter work performed on this candidate's
	// behalf (reference-oracle misses it paid for).
	Steps int64 `json:"steps"`
	Ops   int64 `json:"ops"`
	// OracleHits/OracleMisses count memoized reference lookups: hits are
	// shared work (paid for once by some candidate, reused here).
	OracleHits   int64 `json:"oracle_hits"`
	OracleMisses int64 `json:"oracle_misses"`
}

// Ledger charges synthesis work to (function, candidate, target, verdict)
// accounts. Like Journal it is a nil-safe view onto shared state: Scoped
// returns a view that books all charges under a request trace ID, so one
// process-wide ledger serves concurrent faccd requests.
//
// Hot-path discipline: every method is a no-op on a nil receiver, but
// call sites must still guard with a nil check *before* building the key
// strings (candidate keys allocate), so a disabled ledger costs nothing.
type Ledger struct {
	trace string
	s     *ledgerState
}

type ledgerState struct {
	mu      sync.Mutex
	entries map[ledgerKey]*LedgerEntry
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{s: &ledgerState{entries: map[ledgerKey]*LedgerEntry{}}}
}

// Scoped returns a view of the same ledger that books charges under the
// given trace ID. Nil-safe; an empty trace returns the receiver.
func (l *Ledger) Scoped(trace string) *Ledger {
	if l == nil || trace == "" {
		return l
	}
	return &Ledger{trace: trace, s: l.s}
}

// Trace returns the view's trace scope ("" for the root view).
func (l *Ledger) Trace() string {
	if l == nil {
		return ""
	}
	return l.trace
}

// account returns (creating if needed) the entry for the candidate.
// Caller holds s.mu.
func (l *Ledger) account(function, target, candidate string) *LedgerEntry {
	k := ledgerKey{trace: l.trace, function: function, target: target, candidate: candidate}
	e := l.s.entries[k]
	if e == nil {
		e = &LedgerEntry{Trace: l.trace, Function: function, Target: target,
			Candidate: candidate}
		l.s.entries[k] = e
	}
	return e
}

// ChargeTests books IO examples executed against the candidate.
func (l *Ledger) ChargeTests(function, target, candidate string, tests int64) {
	if l == nil || tests == 0 {
		return
	}
	l.s.mu.Lock()
	l.account(function, target, candidate).Tests += tests
	l.s.mu.Unlock()
}

// ChargeInterp books interpreter steps/ops the candidate paid for
// (reference-oracle misses it triggered).
func (l *Ledger) ChargeInterp(function, target, candidate string, steps, ops int64) {
	if l == nil {
		return
	}
	l.s.mu.Lock()
	e := l.account(function, target, candidate)
	e.Steps += steps
	e.Ops += ops
	l.s.mu.Unlock()
}

// ChargeOracle books memoized reference lookups: hit=true means the
// candidate reused a previously computed run (shared work).
func (l *Ledger) ChargeOracle(function, target, candidate string, hit bool) {
	if l == nil {
		return
	}
	l.s.mu.Lock()
	e := l.account(function, target, candidate)
	if hit {
		e.OracleHits++
	} else {
		e.OracleMisses++
	}
	l.s.mu.Unlock()
}

// SetVerdict records the candidate's final outcome. Last write wins.
func (l *Ledger) SetVerdict(function, target, candidate, verdict string) {
	if l == nil {
		return
	}
	l.s.mu.Lock()
	l.account(function, target, candidate).Verdict = verdict
	l.s.mu.Unlock()
}

// Entries returns all accounts sorted by (trace, function, target,
// candidate) — a deterministic snapshot.
func (l *Ledger) Entries() []LedgerEntry {
	if l == nil {
		return nil
	}
	l.s.mu.Lock()
	out := make([]LedgerEntry, 0, len(l.s.entries))
	for _, e := range l.s.entries {
		out = append(out, *e)
	}
	l.s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.Trace != b.Trace {
			return a.Trace < b.Trace
		}
		if a.Function != b.Function {
			return a.Function < b.Function
		}
		if a.Target != b.Target {
			return a.Target < b.Target
		}
		return a.Candidate < b.Candidate
	})
	return out
}

// TraceEntries returns the accounts booked under one trace ID, sorted —
// a request's cost ledger, for flight records.
func (l *Ledger) TraceEntries(trace string) []LedgerEntry {
	if l == nil || trace == "" {
		return nil
	}
	var out []LedgerEntry
	for _, e := range l.Entries() {
		if e.Trace == trace {
			out = append(out, e)
		}
	}
	return out
}

// Len returns the number of candidate accounts.
func (l *Ledger) Len() int {
	if l == nil {
		return 0
	}
	l.s.mu.Lock()
	defer l.s.mu.Unlock()
	return len(l.s.entries)
}

// TargetCost aggregates one target's accounts into the useful /
// speculative / shared decomposition.
type TargetCost struct {
	Target string `json:"target"`

	// Useful work: charged to candidates that became adapters.
	UsefulTests int64 `json:"useful_tests"`
	UsefulSteps int64 `json:"useful_steps"`

	// Speculative work: charged to superseded/killed/failed candidates.
	SpeculativeTests int64 `json:"speculative_tests"`
	SpeculativeSteps int64 `json:"speculative_steps"`

	// Shared work: oracle lookups answered from the memo table. The hit
	// split shows *who* benefited — winners or losers.
	OracleHits       int64 `json:"oracle_hits"`
	OracleMisses     int64 `json:"oracle_misses"`
	UsefulOracleHits int64 `json:"useful_oracle_hits"`

	// WasteRatio = speculative tests / all tests (0 when nothing ran).
	WasteRatio float64 `json:"waste_ratio"`
	// OracleHitRate = hits / (hits + misses) (0 when nothing looked up).
	OracleHitRate float64 `json:"oracle_hit_rate"`

	// Verdicts counts candidate accounts by final verdict.
	Verdicts map[string]int `json:"verdicts"`
}

// CostSummary is the ledger rolled up per target plus a grand total.
type CostSummary struct {
	Targets []TargetCost `json:"targets"` // sorted by target name
	Total   TargetCost   `json:"total"`   // Target == "all"
}

// finish derives the ratios after accumulation.
func (tc *TargetCost) finish() {
	if total := tc.UsefulTests + tc.SpeculativeTests; total > 0 {
		tc.WasteRatio = float64(tc.SpeculativeTests) / float64(total)
	}
	if lookups := tc.OracleHits + tc.OracleMisses; lookups > 0 {
		tc.OracleHitRate = float64(tc.OracleHits) / float64(lookups)
	}
}

// add books one entry into the aggregate.
func (tc *TargetCost) add(e *LedgerEntry) {
	useful := e.Verdict == VerdictWinner
	if useful {
		tc.UsefulTests += e.Tests
		tc.UsefulSteps += e.Steps
		tc.UsefulOracleHits += e.OracleHits
	} else {
		tc.SpeculativeTests += e.Tests
		tc.SpeculativeSteps += e.Steps
	}
	tc.OracleHits += e.OracleHits
	tc.OracleMisses += e.OracleMisses
	if tc.Verdicts == nil {
		tc.Verdicts = map[string]int{}
	}
	v := e.Verdict
	if v == "" {
		v = "undecided"
	}
	tc.Verdicts[v]++
}

// Summary rolls the ledger up per target. Deterministic: targets sorted.
func (l *Ledger) Summary() CostSummary {
	entries := l.Entries()
	byTarget := map[string]*TargetCost{}
	total := TargetCost{Target: "all"}
	for i := range entries {
		e := &entries[i]
		tc := byTarget[e.Target]
		if tc == nil {
			tc = &TargetCost{Target: e.Target}
			byTarget[e.Target] = tc
		}
		tc.add(e)
		total.add(e)
	}
	names := make([]string, 0, len(byTarget))
	for name := range byTarget {
		names = append(names, name)
	}
	sort.Strings(names)
	out := CostSummary{Total: total}
	for _, name := range names {
		tc := byTarget[name]
		tc.finish()
		out.Targets = append(out.Targets, *tc)
	}
	out.Total.finish()
	return out
}

// WriteCostReport renders the per-target waste breakdown as deterministic
// human-readable text — the body of `facc -explain -costs`.
func (l *Ledger) WriteCostReport(out io.Writer) error {
	w := &errWriter{w: out}
	sum := l.Summary()
	fmt.Fprintf(w, "synthesis cost ledger: %d candidate account(s)\n", l.Len())
	if len(sum.Targets) == 0 {
		fmt.Fprintf(w, "  (no work charged)\n")
		return w.err
	}
	writeOne := func(tc *TargetCost) {
		fmt.Fprintf(w, "\ntarget %s:\n", tc.Target)
		fmt.Fprintf(w, "  tests:  useful %d | speculative %d (waste %.1f%%)\n",
			tc.UsefulTests, tc.SpeculativeTests, 100*tc.WasteRatio)
		fmt.Fprintf(w, "  steps:  useful %d | speculative %d\n",
			tc.UsefulSteps, tc.SpeculativeSteps)
		fmt.Fprintf(w, "  oracle: %d hit(s) (shared) / %d miss(es), hit rate %.1f%%"+
			" — %d hit(s) on the winner\n",
			tc.OracleHits, tc.OracleMisses, 100*tc.OracleHitRate, tc.UsefulOracleHits)
		verdicts := make([]string, 0, len(tc.Verdicts))
		for v := range tc.Verdicts {
			verdicts = append(verdicts, v)
		}
		sort.Strings(verdicts)
		fmt.Fprintf(w, "  verdicts:")
		for _, v := range verdicts {
			fmt.Fprintf(w, " %s ×%d", v, tc.Verdicts[v])
		}
		fmt.Fprintf(w, "\n")
	}
	for i := range sum.Targets {
		writeOne(&sum.Targets[i])
	}
	if len(sum.Targets) > 1 {
		writeOne(&sum.Total)
	}
	return w.err
}

// WritePrometheus appends the ledger's per-target aggregates to a
// Prometheus text-format exposition, using labels for target and work
// class. Deterministic: targets sorted, classes in fixed order.
func (l *Ledger) WritePrometheus(w io.Writer) error {
	if l == nil {
		return nil
	}
	ew := &errWriter{w: w}
	sum := l.Summary()
	if len(sum.Targets) == 0 {
		return nil
	}
	fmt.Fprintf(ew, "# TYPE facc_ledger_tests_total counter\n")
	for i := range sum.Targets {
		tc := &sum.Targets[i]
		fmt.Fprintf(ew, "facc_ledger_tests_total{target=%q,class=\"useful\"} %d\n",
			tc.Target, tc.UsefulTests)
		fmt.Fprintf(ew, "facc_ledger_tests_total{target=%q,class=\"speculative\"} %d\n",
			tc.Target, tc.SpeculativeTests)
	}
	fmt.Fprintf(ew, "# TYPE facc_ledger_interp_steps_total counter\n")
	for i := range sum.Targets {
		tc := &sum.Targets[i]
		fmt.Fprintf(ew, "facc_ledger_interp_steps_total{target=%q,class=\"useful\"} %d\n",
			tc.Target, tc.UsefulSteps)
		fmt.Fprintf(ew, "facc_ledger_interp_steps_total{target=%q,class=\"speculative\"} %d\n",
			tc.Target, tc.SpeculativeSteps)
	}
	fmt.Fprintf(ew, "# TYPE facc_ledger_oracle_lookups_total counter\n")
	for i := range sum.Targets {
		tc := &sum.Targets[i]
		fmt.Fprintf(ew, "facc_ledger_oracle_lookups_total{target=%q,result=\"hit\"} %d\n",
			tc.Target, tc.OracleHits)
		fmt.Fprintf(ew, "facc_ledger_oracle_lookups_total{target=%q,result=\"miss\"} %d\n",
			tc.Target, tc.OracleMisses)
	}
	fmt.Fprintf(ew, "# TYPE facc_ledger_waste_ratio gauge\n")
	for i := range sum.Targets {
		tc := &sum.Targets[i]
		fmt.Fprintf(ew, "facc_ledger_waste_ratio{target=%q} %g\n", tc.Target, tc.WasteRatio)
	}
	fmt.Fprintf(ew, "# TYPE facc_ledger_oracle_hit_rate gauge\n")
	for i := range sum.Targets {
		tc := &sum.Targets[i]
		fmt.Fprintf(ew, "facc_ledger_oracle_hit_rate{target=%q} %g\n", tc.Target, tc.OracleHitRate)
	}
	return ew.err
}
