package obs

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// The counterexample pool persists the most effective discriminating
// IO cases across runs: each entry is one case identity (seed, length,
// index) with its cumulative kill count, the distinct binding families
// it has killed, and when it last proved useful. The pool is what the
// synthesis replay loop consumes — "try the inputs that killed whole
// families last time, first" (synth.Options.Cex): each candidate's own
// case batch is reordered so pool-ranked discriminating cases run
// before fresh ones, and every kill recorded during search feeds back
// in live via RecordKill, so rank state is current mid-process (a
// long-running faccd reranks between compiles, not only at flush).
// Replay only reorders a candidate's own cases — it never injects
// foreign inputs — so a loaded pool MUST NOT change which adapter wins
// (pinned by the pool-present-vs-absent determinism matrix).
//
// On disk the pool is JSONL — one CexEntry per line — terminated by a
// checksum trailer line covering every preceding byte, written
// atomically (same-dir temp file, fsync, rename, dir fsync) like
// internal/store. A corrupt or torn file is quarantined, never
// deleted, and loading continues with an empty pool.

// maxPoolEntries bounds the pool on flush; the lowest-ranked entries
// are pruned first.
const maxPoolEntries = 512

// maxPoolFamilies bounds the per-entry family sample. The count keeps
// growing past the cap; only the stored names are truncated.
const maxPoolFamilies = 16

// CexEntry is one discriminating input's cumulative record.
type CexEntry struct {
	Sig  string `json:"sig"` // user-visible case identity (iogen.CaseSig)
	Seed int64  `json:"seed"`
	Len  int64  `json:"len"`  // accelerator length
	Case int    `json:"case"` // 0-based case index

	Kills       int64 `json:"kills"`           // cumulative candidate kills
	FamilyCount int   `json:"families_killed"` // distinct binding families, cumulative
	// Families is a bounded, sorted sample of the killed families;
	// FamilyCount may exceed len(Families) once the sample is full.
	Families []string `json:"families,omitempty"`
	Targets  []string `json:"targets,omitempty"` // sorted accelerator targets

	FirstSeenUnix  int64 `json:"first_seen_unix,omitempty"`
	LastUsefulUnix int64 `json:"last_useful_unix,omitempty"` // last run that recorded a kill
}

// cexTrailer is the final checksum line of the pool file.
type cexTrailer struct {
	Checksum string `json:"cex_checksum"`
}

// CexLoadInfo describes what LoadCexPool found.
type CexLoadInfo struct {
	Loaded      int    // entries loaded
	Quarantined string // non-empty: corrupt file moved here, pool started empty
}

// CexPool is the in-memory pool. The zero value of the pointer (nil)
// is a valid, disabled pool. FaultHook, when non-nil, is consulted
// before each I/O step of Flush ("write", "sync", "rename") so tests
// can simulate a crash mid-flush.
type CexPool struct {
	mu        sync.Mutex
	entries   map[string]*CexEntry
	FaultHook func(op string) error

	// Now, when non-nil, replaces the wall clock RecordKill stamps
	// last-useful times with, so tests of live reranking are
	// deterministic. Nil uses time.Now.
	Now func() time.Time
}

// NewCexPool returns an empty pool.
func NewCexPool() *CexPool {
	return &CexPool{entries: make(map[string]*CexEntry)}
}

// LoadCexPool reads a pool file. A missing file yields an empty pool
// and no error. A corrupt file (bad JSON, missing or mismatched
// checksum trailer) is quarantined beside the original — evidence is
// never deleted — and an empty pool is returned; the error is nil
// because recovery succeeded, and CexLoadInfo says what happened.
func LoadCexPool(path string) (*CexPool, CexLoadInfo, error) {
	p := NewCexPool()
	var info CexLoadInfo
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return p, info, nil
	}
	if err != nil {
		return p, info, err
	}
	entries, perr := parseCexPool(data)
	if perr != nil {
		q, qerr := quarantineCexPool(path)
		if qerr != nil {
			return p, info, fmt.Errorf("cex pool corrupt (%v) and quarantine failed: %w", perr, qerr)
		}
		info.Quarantined = q
		return p, info, nil
	}
	for _, e := range entries {
		e := e
		p.entries[e.Sig] = &e
	}
	info.Loaded = len(entries)
	return p, info, nil
}

// parseCexPool validates the checksum trailer and decodes the entries.
func parseCexPool(data []byte) ([]CexEntry, error) {
	trimmed := bytes.TrimRight(data, "\n")
	if len(trimmed) == 0 {
		return nil, nil // empty file: a pool that never recorded anything
	}
	idx := bytes.LastIndexByte(trimmed, '\n')
	body, last := data[:idx+1], trimmed[idx+1:]
	if idx < 0 {
		body, last = nil, trimmed
	}
	var tr cexTrailer
	if err := json.Unmarshal(last, &tr); err != nil || tr.Checksum == "" {
		return nil, fmt.Errorf("missing checksum trailer")
	}
	if got := cexChecksum(body); got != tr.Checksum {
		return nil, fmt.Errorf("checksum mismatch: file %s, computed %s", tr.Checksum, got)
	}
	var out []CexEntry
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var e CexEntry
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, fmt.Errorf("bad entry: %v", err)
		}
		if e.Sig == "" {
			return nil, fmt.Errorf("entry missing sig")
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// cexChecksum hashes the body with length framing, like internal/store.
func cexChecksum(body []byte) string {
	h := sha256.New()
	fmt.Fprintf(h, "%d:", len(body))
	h.Write(body)
	return hex.EncodeToString(h.Sum(nil))
}

// quarantineCexPool moves a corrupt pool aside and reports where.
func quarantineCexPool(path string) (string, error) {
	q := path + ".quarantine"
	for i := 1; ; i++ {
		if _, err := os.Stat(q); os.IsNotExist(err) {
			break
		}
		q = fmt.Sprintf("%s.quarantine.%d", path, i)
	}
	if err := os.Rename(path, q); err != nil {
		return "", err
	}
	return q, nil
}

// Len returns the number of pooled entries.
func (p *CexPool) Len() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.entries)
}

// Get returns the entry for a case signature.
func (p *CexPool) Get(sig string) (CexEntry, bool) {
	if p == nil {
		return CexEntry{}, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.entries[sig]
	if !ok {
		return CexEntry{}, false
	}
	return *e, true
}

// Absorb merges a kill table's case-attributed events into the pool,
// accumulating kill counts and family sets and stamping last-useful
// times. The caller passes now explicitly so tests stay deterministic.
func (p *CexPool) Absorb(kt *KillTable, now time.Time) {
	if p == nil || kt == nil {
		return
	}
	p.AbsorbEvents(kt.Events(), now)
}

// AbsorbEvents merges raw kill events; events without an attributable
// case (CaseIndex < 0) are skipped.
func (p *CexPool) AbsorbEvents(events []KillEvent, now time.Time) {
	if p == nil {
		return
	}
	unix := now.Unix()
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, ev := range events {
		if ev.CaseIndex < 0 || ev.CaseSig == "" {
			continue
		}
		e := p.entries[ev.CaseSig]
		if e == nil {
			e = &CexEntry{
				Sig: ev.CaseSig, Seed: ev.Seed, Len: ev.Len, Case: ev.CaseIndex,
				FirstSeenUnix: unix,
			}
			p.entries[ev.CaseSig] = e
		}
		e.Kills++
		e.LastUsefulUnix = unix
		if addBounded(&e.Families, ev.Family, maxPoolFamilies) {
			e.FamilyCount++
		}
		addBounded(&e.Targets, ev.Target, 0)
	}
}

// RecordKill merges one case-attributed kill into the pool as it
// happens. This is the read-write path synthesis uses: unlike Absorb —
// which batches a whole kill table at flush time — RecordKill updates
// the kill count, family set and last-useful stamp immediately, so
// Entries()/ReplayRank() rank on current evidence mid-process. A
// caseIdx < 0 (caseless death: timeout, panic, not-viable) is skipped,
// matching AbsorbEvents.
func (p *CexPool) RecordKill(sig string, seed, length int64, caseIdx int, family, target string) {
	if p == nil || sig == "" || caseIdx < 0 {
		return
	}
	now := time.Now
	if p.Now != nil {
		now = p.Now
	}
	unix := now().Unix()
	p.mu.Lock()
	defer p.mu.Unlock()
	e := p.entries[sig]
	if e == nil {
		e = &CexEntry{
			Sig: sig, Seed: seed, Len: length, Case: caseIdx,
			FirstSeenUnix: unix,
		}
		p.entries[sig] = e
	}
	e.Kills++
	e.LastUsefulUnix = unix
	if addBounded(&e.Families, family, maxPoolFamilies) {
		e.FamilyCount++
	}
	addBounded(&e.Targets, target, 0)
}

// ReplayRank snapshots the pool's ranking as a case-signature → rank
// map (0 = most discriminating). Synthesis takes one snapshot per
// Synthesize call and reorders each candidate's own case batch by it;
// kills recorded while that call runs update the live pool but not the
// snapshot, which keeps replay order — and therefore journals — a pure
// function of the pool state at entry.
func (p *CexPool) ReplayRank() map[string]int {
	if p == nil {
		return nil
	}
	ranked := p.Entries()
	if len(ranked) == 0 {
		return nil
	}
	out := make(map[string]int, len(ranked))
	for i, e := range ranked {
		out[e.Sig] = i
	}
	return out
}

// Clone deep-copies the pool (hooks excluded) so a benchmark can hand
// identical starting pools to runs it wants to compare.
func (p *CexPool) Clone() *CexPool {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := NewCexPool()
	for sig, e := range p.entries {
		c := *e
		c.Families = append([]string(nil), e.Families...)
		c.Targets = append([]string(nil), e.Targets...)
		out.entries[sig] = &c
	}
	return out
}

// addBounded inserts v into the sorted set *s, reporting whether it
// was new. When the set already holds max (>0) names, new values are
// counted by the caller but not stored.
func addBounded(s *[]string, v string, max int) bool {
	if v == "" {
		return false
	}
	i := sort.SearchStrings(*s, v)
	if i < len(*s) && (*s)[i] == v {
		return false
	}
	if max > 0 && len(*s) >= max {
		return true // new, but the sample is full
	}
	*s = append(*s, "")
	copy((*s)[i+1:], (*s)[i:])
	(*s)[i] = v
	return true
}

// Entries returns the pooled entries ranked most-discriminating first:
// distinct families desc, kills desc, most recently useful, then sig.
func (p *CexPool) Entries() []CexEntry {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	out := make([]CexEntry, 0, len(p.entries))
	for _, e := range p.entries {
		out = append(out, *e)
	}
	p.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.FamilyCount != b.FamilyCount {
			return a.FamilyCount > b.FamilyCount
		}
		if a.Kills != b.Kills {
			return a.Kills > b.Kills
		}
		if a.LastUsefulUnix != b.LastUsefulUnix {
			return a.LastUsefulUnix > b.LastUsefulUnix
		}
		return a.Sig < b.Sig
	})
	return out
}

// Flush re-ranks, prunes to maxPoolEntries, and atomically rewrites
// the pool file: same-dir temp, fsync, rename over the original, dir
// fsync. A crash at any point leaves either the previous complete file
// or a stray temp file the next load never reads — never a torn pool.
func (p *CexPool) Flush(path string) error {
	if p == nil {
		return nil
	}
	ranked := p.Entries()
	if len(ranked) > maxPoolEntries {
		ranked = ranked[:maxPoolEntries]
	}
	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	for i := range ranked {
		if err := enc.Encode(&ranked[i]); err != nil {
			return err
		}
	}
	trailer, err := json.Marshal(cexTrailer{Checksum: cexChecksum(body.Bytes())})
	if err != nil {
		return err
	}
	body.Write(trailer)
	body.WriteByte('\n')

	if err := p.fault("write"); err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(body.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := p.fault("sync"); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := p.fault("rename"); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

func (p *CexPool) fault(op string) error {
	if p.FaultHook == nil {
		return nil
	}
	return p.FaultHook(op)
}
