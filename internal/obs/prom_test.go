package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"binding.pruned.single-read": "facc_binding_pruned_single_read",
		"stage.compile.ms":           "facc_stage_compile_ms",
		"synth.winners":              "facc_synth_winners",
		"weird!!name":                "facc_weird_name",
		".leading":                   "facc_leading",
		"trailing.":                  "facc_trailing",
		"a::b":                       "facc_a::b",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("synth.candidates_tested").Add(9)
	r.Gauge("fuzz.pass_rate").Set(0.25)
	h := r.Histogram("synth.tests_per_candidate", []float64{1, 5, 10})
	for _, v := range []float64{0.5, 3, 3, 7, 100} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, want := range []string{
		"# TYPE facc_synth_candidates_tested counter\n" +
			"facc_synth_candidates_tested 9\n",
		"# TYPE facc_fuzz_pass_rate gauge\n" +
			"facc_fuzz_pass_rate 0.25\n",
		"# TYPE facc_synth_tests_per_candidate histogram\n",
		`facc_synth_tests_per_candidate_bucket{le="1"} 1`,
		`facc_synth_tests_per_candidate_bucket{le="5"} 3`,
		`facc_synth_tests_per_candidate_bucket{le="10"} 4`,
		`facc_synth_tests_per_candidate_bucket{le="+Inf"} 5`,
		"facc_synth_tests_per_candidate_sum 113.5",
		"facc_synth_tests_per_candidate_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Deterministic output: two writes are byte-identical.
	var buf2 bytes.Buffer
	if err := r.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("exposition not deterministic across writes")
	}
}

func TestWritePrometheusNilAndErrors(t *testing.T) {
	var r *Registry
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Errorf("nil registry: %v", err)
	}
	r = NewRegistry()
	r.Counter("c").Inc()
	if err := r.WritePrometheus(failWriter{}); err == nil {
		t.Error("write error not propagated")
	}
}
