package obs

import (
	"sync"
	"testing"
	"time"
)

func TestSpanHierarchyAndDurations(t *testing.T) {
	tr := New()
	root := tr.Span("compile").Str("file", "a.c")
	child := root.Child("fuzz").Int("tests", 10)
	time.Sleep(2 * time.Millisecond)
	cd := child.End()
	rd := root.End()

	if cd <= 0 || rd < cd {
		t.Fatalf("durations: child=%v root=%v", cd, rd)
	}
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// End order: child first.
	if spans[0].Name != "fuzz" || spans[1].Name != "compile" {
		t.Fatalf("span order: %s, %s", spans[0].Name, spans[1].Name)
	}
	if spans[0].Par != spans[1].ID || spans[0].Root != spans[1].ID {
		t.Errorf("parent/root linkage: par=%d root=%d want %d",
			spans[0].Par, spans[0].Root, spans[1].ID)
	}
	if got := spans[0].Attr("tests"); got != int64(10) {
		t.Errorf("attr tests = %v, want 10", got)
	}
	if got := spans[1].Attr("file"); got != "a.c" {
		t.Errorf("attr file = %v, want a.c", got)
	}
	// End is idempotent.
	if again := child.End(); again != cd {
		t.Errorf("second End returned %v, want %v", again, cd)
	}
	if len(tr.Spans()) != 2 {
		t.Errorf("idempotent End appended a duplicate span")
	}
}

func TestStageLatencyHistogramFedOnEnd(t *testing.T) {
	tr := New()
	tr.Span("analyze").End()
	tr.Span("analyze").End()
	var snap HistSnapshot
	for _, h := range tr.Metrics().Histograms() {
		if h.Name == "stage.analyze.ms" {
			snap = h
		}
	}
	if snap.Count != 2 {
		t.Fatalf("stage histogram count = %d, want 2", snap.Count)
	}
}

// TestNoopTracerZeroAllocsOnHotPath is the synthesis hot-path property:
// with tracing disabled (nil tracer/span), the exact instrumentation
// sequence the generate-and-test fuzz loop executes per candidate must
// not allocate.
func TestNoopTracerZeroAllocsOnHotPath(t *testing.T) {
	var parent *Span // what synth.Options.Obs is when Options.Trace == nil
	allocs := testing.AllocsPerRun(1000, func() {
		sp := parent.Child("fuzz")
		sp.Int("tests", 10)
		sp.Str("outcome", "survived")
		reg := sp.Metrics()
		reg.Counter("interp.ops").Add(123456)
		reg.Counter("interp.allocs").Add(7)
		reg.Histogram("synth.tests_per_candidate", CountBuckets).Observe(10)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("no-op tracer hot path allocates %v times per run, want 0", allocs)
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	sp := tr.Span("x")
	if sp != nil {
		t.Fatal("nil tracer produced a span")
	}
	if d := sp.End(); d != 0 {
		t.Errorf("nil span End = %v", d)
	}
	if tr.Spans() != nil || tr.Metrics() != nil || tr.Find("x") != nil {
		t.Error("nil tracer leaked state")
	}
	if v := tr.Metrics().Counter("c").Value(); v != 0 {
		t.Errorf("nil counter value = %d", v)
	}
	tr.Metrics().Gauge("g").Set(1)
	tr.Metrics().Histogram("h", CountBuckets).Observe(1)
}

func TestRegistryCountersGaugesHistograms(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(2)
	r.Counter("a").Inc()
	r.Counter("b").Inc()
	if got := r.Counters()["a"]; got != 3 {
		t.Errorf("counter a = %d, want 3", got)
	}
	r.Gauge("g").Set(2.5)
	if got := r.Gauges()["g"]; got != 2.5 {
		t.Errorf("gauge g = %g, want 2.5", got)
	}

	h := r.Histogram("h", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 0.7, 5, 50, 500} {
		h.Observe(v)
	}
	snap := h.Snapshot()
	if snap.Count != 5 || snap.Max != 500 {
		t.Fatalf("snapshot count=%d max=%g", snap.Count, snap.Max)
	}
	wantCounts := []int64{2, 1, 1, 1}
	for i, w := range wantCounts {
		if snap.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, snap.Counts[i], w)
		}
	}
	if q := snap.Quantile(0.5); q != 10 {
		t.Errorf("p50 = %g, want 10 (median 5 lands in the <=10 bucket)", q)
	}
	if q := snap.Quantile(0.2); q != 1 {
		t.Errorf("p20 = %g, want 1", q)
	}
	if q := snap.Quantile(1.0); q != 500 {
		t.Errorf("p100 = %g, want 500 (overflow bucket reports max)", q)
	}
	if m := snap.Mean(); m < 111 || m > 112 {
		t.Errorf("mean = %g", m)
	}
	// Same-name registration reuses the first bounds.
	if h2 := r.Histogram("h", []float64{42}); h2.Snapshot().Count != 5 {
		t.Error("histogram re-registration lost state")
	}
}

// TestConcurrentTracerUse exercises the sharing pattern of the evaluation
// harness: many workers opening root spans and bumping metrics on one
// tracer (run under -race in `make check`).
func TestConcurrentTracerUse(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sp := tr.Span("compile")
				sp.Child("fuzz").Int("tests", int64(i)).End()
				sp.End()
				tr.Metrics().Counter("runs").Inc()
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Spans()); got != 8*50*2 {
		t.Fatalf("spans = %d, want %d", got, 8*50*2)
	}
	if got := tr.Metrics().Counter("runs").Value(); got != 400 {
		t.Fatalf("runs = %d, want 400", got)
	}
	ids := map[int64]bool{}
	for _, s := range tr.Spans() {
		if ids[s.ID] {
			t.Fatalf("duplicate span id %d", s.ID)
		}
		ids[s.ID] = true
	}
}
