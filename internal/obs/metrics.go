package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// DurationBucketsMs are the fixed stage-latency bucket upper bounds, in
// milliseconds. Spans feed these automatically on End.
var DurationBucketsMs = []float64{
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500,
	1000, 2500, 5000, 10000,
}

// CountBuckets are fixed bucket upper bounds for small count
// distributions (tests per candidate, candidates per function, ...).
var CountBuckets = []float64{0, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000}

// Registry holds named counters, gauges and histograms. All lookups and
// updates are safe for concurrent use, and every method is nil-safe so
// disabled instrumentation costs nothing.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns (registering on first use) the named counter. Nil-safe:
// a nil registry yields a nil, no-op counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (registering on first use) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (registering on first use) the named histogram with
// the given fixed bucket upper bounds. The bounds of the first
// registration win; they must be ascending.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{name: name, bounds: bounds, counts: make([]int64, len(bounds)+1)}
		r.hists[name] = h
	}
	return h
}

// Counters returns a name→value snapshot.
func (r *Registry) Counters() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	return out
}

// Gauges returns a name→value snapshot.
func (r *Registry) Gauges() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.gauges))
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	return out
}

// Histograms returns a snapshot of every histogram, sorted by name.
func (r *Registry) Histograms() []HistSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	hs := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hs = append(hs, h)
	}
	r.mu.Unlock()
	out := make([]HistSnapshot, 0, len(hs))
	for _, h := range hs {
		out = append(out, h.Snapshot())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	name string
	v    atomic.Int64
}

// Add increments the counter. No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (zero on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Name returns the counter's registered name.
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Gauge is a last-value-wins float metric.
type Gauge struct {
	name string
	bits atomic.Uint64
}

// Set records the value. No-op on a nil gauge.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last recorded value (zero on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets: counts[i] tallies
// values ≤ bounds[i]; the final bucket is the +Inf overflow.
type Histogram struct {
	name   string
	bounds []float64

	mu        sync.Mutex
	counts    []int64
	sum       float64
	n         int64
	max       float64
	exemplars []Exemplar // per bucket, last traced observation; lazy
}

// Exemplar is one traced observation attached to a histogram bucket: the
// trace ID of a concrete request that landed there, so a latency spike in
// /metrics points straight at a joinable request record.
type Exemplar struct {
	Value float64 `json:"value"`
	Trace string  `json:"trace"`
}

// Observe records one value. No-op on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	idx := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[idx]++
	h.sum += v
	h.n++
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// ObserveExemplar records one value and remembers (value, trace) as the
// bucket's exemplar, overwriting the previous one. With an empty trace it
// degrades to Observe.
func (h *Histogram) ObserveExemplar(v float64, trace string) {
	if h == nil {
		return
	}
	if trace == "" {
		h.Observe(v)
		return
	}
	idx := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[idx]++
	h.sum += v
	h.n++
	if v > h.max {
		h.max = v
	}
	if h.exemplars == nil {
		h.exemplars = make([]Exemplar, len(h.counts))
	}
	h.exemplars[idx] = Exemplar{Value: v, Trace: trace}
	h.mu.Unlock()
}

// HistSnapshot is an immutable view of a histogram.
type HistSnapshot struct {
	Name   string
	Bounds []float64
	Counts []int64
	Sum    float64
	Count  int64
	Max    float64
	// Exemplars holds, per bucket (parallel to Counts), the last traced
	// observation; nil when no exemplar was ever recorded. Entries with
	// an empty Trace are buckets without exemplars.
	Exemplars []Exemplar
}

// Snapshot captures the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	counts := make([]int64, len(h.counts))
	copy(counts, h.counts)
	var ex []Exemplar
	if h.exemplars != nil {
		ex = make([]Exemplar, len(h.exemplars))
		copy(ex, h.exemplars)
	}
	return HistSnapshot{
		Name: h.name, Bounds: h.bounds, Counts: counts,
		Sum: h.sum, Count: h.n, Max: h.max, Exemplars: ex,
	}
}

// Quantile returns the upper bound of the bucket containing the q-th
// quantile (q in [0,1]); the overflow bucket reports the observed max.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(s.Count)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if cum >= target {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			return s.Max
		}
	}
	return s.Max
}

// Mean returns the arithmetic mean of the observations.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}
