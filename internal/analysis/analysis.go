// Package analysis provides the static analyses FACC's synthesis stages
// consume: input/output classification of function parameters (liveness),
// length-variable candidate inference for array parameters, and dynamic
// value profiling (paper §4.2-4.3). The results do not need to be sound in
// isolation — generate-and-test validates every conclusion — they exist to
// order and prune the binding search space.
package analysis

import (
	"sort"

	"facc/internal/minic"
)

// ParamInfo describes how a function parameter is used.
type ParamInfo struct {
	Decl *minic.VarDecl
	Name string
	Type *minic.Type

	IsPointer bool
	// For pointer parameters: whether pointed-to data is read before
	// being fully written (input) and whether it is written (output).
	Reads  bool
	Writes bool

	// For integer parameters: the pointer parameters this variable
	// plausibly measures, in priority order (strongest evidence first).
	LengthOf []string

	// For pointer parameters: integer parameters that plausibly measure
	// this array, in priority order.
	LengthCandidates []string
}

// FuncInfo is the analysis result for one function.
type FuncInfo struct {
	Fn     *minic.FuncDecl
	Params []*ParamInfo

	// CallsPrintf is set when the function (transitively) performs
	// observable IO — such code cannot be replaced by an accelerator.
	CallsPrintf bool
	// UsesVoidPtr is set when a void* parameter carries the data.
	UsesVoidPtr bool
	// NestedPointer is set when a parameter is a pointer-to-pointer
	// (nested memory structure).
	NestedPointer bool

	// ConstBounds collects integer constants appearing as loop bounds or
	// comparison operands — the length candidates for fixed-size
	// implementations (e.g. an FFT hard-coded to 64 points).
	ConstBounds []int64
}

// Param returns the info for the named parameter, or nil.
func (fi *FuncInfo) Param(name string) *ParamInfo {
	for _, p := range fi.Params {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// PointerParams returns the pointer parameters in declaration order.
func (fi *FuncInfo) PointerParams() []*ParamInfo {
	var out []*ParamInfo
	for _, p := range fi.Params {
		if p.IsPointer {
			out = append(out, p)
		}
	}
	return out
}

// IntParams returns the integer parameters in declaration order.
func (fi *FuncInfo) IntParams() []*ParamInfo {
	var out []*ParamInfo
	for _, p := range fi.Params {
		if !p.IsPointer && p.Type.IsInteger() {
			out = append(out, p)
		}
	}
	return out
}

// AnalyzeFunc computes parameter IO classification and length candidates
// for fn within file f (interprocedural through direct calls).
func AnalyzeFunc(f *minic.File, fn *minic.FuncDecl) *FuncInfo {
	a := &analyzer{
		file:    f,
		visited: map[string]bool{},
	}
	return a.analyze(fn)
}

type analyzer struct {
	file    *minic.File
	visited map[string]bool // recursion guard for interprocedural walks
}

func (a *analyzer) analyze(fn *minic.FuncDecl) *FuncInfo {
	fi := &FuncInfo{Fn: fn}
	for _, prm := range fn.Params {
		pi := &ParamInfo{Decl: prm, Name: prm.Name, Type: prm.Type}
		pt := prm.Type.Decay()
		if pt.Kind == minic.TPointer {
			pi.IsPointer = true
			if pt.Elem.Kind == minic.TVoid {
				fi.UsesVoidPtr = true
			}
			if pt.Elem.Kind == minic.TPointer {
				fi.NestedPointer = true
			}
		}
		fi.Params = append(fi.Params, pi)
	}
	if fn.Body == nil {
		return fi
	}
	w := &useWalker{an: a, fi: fi, loopBounds: map[string][]string{}}
	w.walkStmt(fn.Body)
	fi.ConstBounds = dedupSorted(w.constBounds)
	// Convert collected evidence into ordered length candidates.
	for _, pi := range fi.Params {
		if !pi.IsPointer {
			continue
		}
		evidence := w.lengthEvidence[pi.Name]
		type cand struct {
			name  string
			score int
		}
		var cands []cand
		for name, score := range evidence {
			cands = append(cands, cand{name, score})
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].score != cands[j].score {
				return cands[i].score > cands[j].score
			}
			return cands[i].name < cands[j].name
		})
		for _, c := range cands {
			pi.LengthCandidates = append(pi.LengthCandidates, c.name)
			if ip := fi.Param(c.name); ip != nil {
				ip.LengthOf = append(ip.LengthOf, pi.Name)
			}
		}
	}
	return fi
}

// useWalker walks a function body recording reads/writes of parameters and
// which integer variables bound loops that index which arrays.
type useWalker struct {
	an *analyzer
	fi *FuncInfo

	// loopBounds maps an induction variable name to the integer
	// parameter names appearing in its loop bound.
	loopBounds map[string][]string

	// aliases maps local pointer variables to the parameter they are
	// (transitively) derived from — "cx* dst = data; *dst = ..." must
	// count as a write through data (flow-insensitive points-to).
	aliases map[string]*ParamInfo

	// lengthEvidence[ptrParam][intParam] accumulates evidence scores.
	lengthEvidence map[string]map[string]int

	// constBounds collects integer constants used as loop bounds or in
	// comparisons.
	constBounds []int64
}

func dedupSorted(in []int64) []int64 {
	seen := map[int64]bool{}
	var out []int64
	for _, v := range in {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] > out[j] })
	return out
}

func (w *useWalker) addEvidence(ptr, length string, score int) {
	if w.lengthEvidence == nil {
		w.lengthEvidence = map[string]map[string]int{}
	}
	if w.lengthEvidence[ptr] == nil {
		w.lengthEvidence[ptr] = map[string]int{}
	}
	w.lengthEvidence[ptr][length] += score
}

// intParamsIn collects the integer parameter names mentioned in e.
func (w *useWalker) intParamsIn(e minic.Expr, out map[string]bool) {
	walkExpr(e, func(x minic.Expr) {
		if id, ok := x.(*minic.IdentExpr); ok && id.Def != nil && id.Def.IsParam {
			if pi := w.fi.Param(id.Name); pi != nil && !pi.IsPointer && pi.Type.IsInteger() {
				out[id.Name] = true
			}
		}
	})
}

func (w *useWalker) walkStmt(s minic.Stmt) {
	switch st := s.(type) {
	case nil:
	case *minic.ExprStmt:
		w.walkExprUse(st.X, false)
	case *minic.DeclStmt:
		for _, d := range st.Decls {
			if d.Init != nil {
				w.walkExprUse(d.Init, false)
				if d.Type.Decay().Kind == minic.TPointer {
					if pi := w.paramRootOf(d.Init); pi != nil {
						w.alias(d.Name, pi)
					}
				}
			}
			if d.Type.ArrayLenExpr != nil {
				w.walkExprUse(d.Type.ArrayLenExpr, false)
			}
		}
	case *minic.BlockStmt:
		for _, sub := range st.List {
			w.walkStmt(sub)
		}
	case *minic.IfStmt:
		w.walkExprUse(st.Cond, false)
		w.walkStmt(st.Then)
		w.walkStmt(st.Else)
	case *minic.ForStmt:
		w.recordLoopBound(st)
		if st.Init != nil {
			w.walkStmt(st.Init)
		}
		if st.Cond != nil {
			w.walkExprUse(st.Cond, false)
		}
		if st.Post != nil {
			w.walkExprUse(st.Post, false)
		}
		w.walkStmt(st.Body)
	case *minic.WhileStmt:
		w.walkExprUse(st.Cond, false)
		w.walkStmt(st.Body)
	case *minic.SwitchStmt:
		w.walkExprUse(st.Tag, false)
		for _, cc := range st.Cases {
			for _, sub := range cc.Body {
				w.walkStmt(sub)
			}
		}
	case *minic.ReturnStmt:
		if st.Value != nil {
			w.walkExprUse(st.Value, false)
		}
	}
}

// recordLoopBound notes "for (i = ...; i < BOUND; ...)" loops whose bound
// mentions integer parameters.
func (w *useWalker) recordLoopBound(st *minic.ForStmt) {
	be, ok := st.Cond.(*minic.BinaryExpr)
	if !ok {
		return
	}
	switch be.Op {
	case minic.Lt, minic.Le, minic.Gt, minic.Ge, minic.NotEq:
	default:
		return
	}
	var indVar string
	if id, ok := be.L.(*minic.IdentExpr); ok {
		indVar = id.Name
	}
	if indVar == "" {
		return
	}
	bounds := map[string]bool{}
	w.intParamsIn(be.R, bounds)
	for b := range bounds {
		w.loopBounds[indVar] = append(w.loopBounds[indVar], b)
	}
	if lit, ok := be.R.(*minic.IntLitExpr); ok && lit.Value > 1 {
		bound := lit.Value
		if be.Op == minic.Le {
			bound++
		}
		w.constBounds = append(w.constBounds, bound)
	}
}

// walkExprUse records parameter usage; write is true when e appears in a
// store position.
func (w *useWalker) walkExprUse(e minic.Expr, write bool) {
	switch x := e.(type) {
	case nil:
	case *minic.IdentExpr:
		// Direct scalar use; pointer passed whole is handled at calls.
	case *minic.AssignExpr:
		w.walkExprUse(x.L, true)
		if x.Op != minic.Assign {
			// Compound assignment also reads the target.
			w.walkExprUse(x.L, false)
		}
		w.walkExprUse(x.R, false)
		// Pointer-variable assignment propagates aliasing.
		if id, ok := x.L.(*minic.IdentExpr); ok && id.Def != nil && !id.Def.IsParam {
			if id.Def.Type.Decay().Kind == minic.TPointer && x.Op == minic.Assign {
				if pi := w.paramRootOf(x.R); pi != nil {
					w.alias(id.Name, pi)
				}
			}
		}
	case *minic.UnaryExpr:
		if x.Op == minic.Star {
			w.recordPointerAccess(x.X, nil, write)
			w.walkExprUse(x.X, false)
			return
		}
		if x.Op == minic.PlusPlus || x.Op == minic.MinusMinus {
			w.walkExprUse(x.X, true)
			w.walkExprUse(x.X, false)
			return
		}
		w.walkExprUse(x.X, false)
	case *minic.IndexExpr:
		w.recordPointerAccess(x.X, x.Index, write)
		w.walkExprUse(x.X, false)
		w.walkExprUse(x.Index, false)
	case *minic.MemberExpr:
		if x.Arrow {
			w.recordPointerAccess(x.X, nil, write)
		}
		w.walkExprUse(x.X, write && !x.Arrow)
	case *minic.BinaryExpr:
		// Comparisons against integer literals are length evidence for
		// fixed-size implementations (e.g. "if (i >= 64) break" in a
		// while(1) loop).
		switch x.Op {
		case minic.Lt, minic.Le, minic.Gt, minic.Ge:
			if lit, ok := x.R.(*minic.IntLitExpr); ok && lit.Value > 1 {
				bound := lit.Value
				if x.Op == minic.Le {
					bound++
				}
				w.constBounds = append(w.constBounds, bound)
			}
		}
		w.walkExprUse(x.L, false)
		w.walkExprUse(x.R, false)
	case *minic.CondExpr:
		w.walkExprUse(x.Cond, false)
		w.walkExprUse(x.Then, write)
		w.walkExprUse(x.Else, write)
	case *minic.CastExpr:
		w.walkExprUse(x.X, write)
	case *minic.CommaExpr:
		w.walkExprUse(x.L, false)
		w.walkExprUse(x.R, write)
	case *minic.SizeofExpr:
		if x.X != nil {
			w.walkExprUse(x.X, false)
		}
	case *minic.CallExpr:
		w.walkCall(x)
	}
}

// paramRootOf returns the parameter a pointer expression is rooted at
// (walking through casts, +offsets and indexing).
func (w *useWalker) alias(local string, pi *ParamInfo) {
	if w.aliases == nil {
		w.aliases = map[string]*ParamInfo{}
	}
	w.aliases[local] = pi
}

func (w *useWalker) paramRootOf(e minic.Expr) *ParamInfo {
	switch x := e.(type) {
	case *minic.IdentExpr:
		if x.Def != nil && x.Def.IsParam {
			if pi := w.fi.Param(x.Name); pi != nil && pi.IsPointer {
				return pi
			}
		}
		if x.Def != nil && !x.Def.IsParam {
			if pi, ok := w.aliases[x.Name]; ok {
				return pi
			}
		}
	case *minic.CastExpr:
		return w.paramRootOf(x.X)
	case *minic.BinaryExpr:
		if x.Op == minic.Plus || x.Op == minic.Minus {
			if p := w.paramRootOf(x.L); p != nil {
				return p
			}
			return w.paramRootOf(x.R)
		}
	case *minic.UnaryExpr:
		if x.Op == minic.Amp {
			return w.paramRootOf(x.X)
		}
	case *minic.IndexExpr:
		// &p[i] style roots.
		return w.paramRootOf(x.X)
	}
	return nil
}

// recordPointerAccess marks a read/write through a pointer parameter and
// accumulates length evidence from the index expression.
func (w *useWalker) recordPointerAccess(base, index minic.Expr, write bool) {
	pi := w.paramRootOf(base)
	if pi == nil {
		return
	}
	if write {
		pi.Writes = true
	} else {
		pi.Reads = true
	}
	if index == nil {
		return
	}
	// Direct evidence: the index expression mentions an int parameter.
	direct := map[string]bool{}
	w.intParamsIn(index, direct)
	for name := range direct {
		w.addEvidence(pi.Name, name, 2)
	}
	// Indirect evidence: the index uses an induction variable whose loop
	// bound mentions an int parameter.
	walkExpr(index, func(x minic.Expr) {
		if id, ok := x.(*minic.IdentExpr); ok {
			for _, bound := range w.loopBounds[id.Name] {
				w.addEvidence(pi.Name, bound, 3)
			}
		}
	})
}

// walkCall handles direct calls: printf detection and interprocedural
// propagation of parameter usage.
func (w *useWalker) walkCall(call *minic.CallExpr) {
	for _, arg := range call.Args {
		w.walkExprUse(arg, false)
	}
	switch call.Builtin {
	case "printf", "fprintf", "puts", "putchar":
		w.fi.CallsPrintf = true
		return
	case "":
	default:
		return // other builtins (math, malloc) are not observable IO
	}
	id, ok := call.Fun.(*minic.IdentExpr)
	if !ok || id.Func == nil {
		return
	}
	callee := w.an.file.Func(id.Func.Name)
	if callee == nil || callee.Body == nil {
		return
	}
	var calleeInfo *FuncInfo
	if !w.an.visited[callee.Name] {
		w.an.visited[callee.Name] = true
		calleeInfo = w.an.analyze(callee)
		delete(w.an.visited, callee.Name)
	}
	if calleeInfo == nil {
		// Recursive call (direct or mutual): the cycle's effect on its
		// arguments is already captured by the non-recursive uses in the
		// bodies along the cycle, so the call edge itself adds nothing.
		return
	}
	if calleeInfo.CallsPrintf {
		w.fi.CallsPrintf = true
	}
	for i, arg := range call.Args {
		pi := w.paramRootOf(arg)
		if pi == nil || i >= len(calleeInfo.Params) {
			continue
		}
		cp := calleeInfo.Params[i]
		if cp.Reads {
			pi.Reads = true
		}
		if cp.Writes {
			pi.Writes = true
		}
	}
}

// walkExpr applies fn to every node of an expression tree.
func walkExpr(e minic.Expr, fn func(minic.Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *minic.UnaryExpr:
		walkExpr(x.X, fn)
	case *minic.BinaryExpr:
		walkExpr(x.L, fn)
		walkExpr(x.R, fn)
	case *minic.AssignExpr:
		walkExpr(x.L, fn)
		walkExpr(x.R, fn)
	case *minic.CondExpr:
		walkExpr(x.Cond, fn)
		walkExpr(x.Then, fn)
		walkExpr(x.Else, fn)
	case *minic.CallExpr:
		walkExpr(x.Fun, fn)
		for _, a := range x.Args {
			walkExpr(a, fn)
		}
	case *minic.IndexExpr:
		walkExpr(x.X, fn)
		walkExpr(x.Index, fn)
	case *minic.MemberExpr:
		walkExpr(x.X, fn)
	case *minic.CastExpr:
		walkExpr(x.X, fn)
	case *minic.CommaExpr:
		walkExpr(x.L, fn)
		walkExpr(x.R, fn)
	case *minic.SizeofExpr:
		walkExpr(x.X, fn)
	case *minic.InitListExpr:
		for _, it := range x.Items {
			walkExpr(it, fn)
		}
	}
}
