package analysis

import (
	"fmt"
	"sort"
	"strings"

	"facc/internal/interp"
)

// Range summarizes the values one variable was observed (or inferred) to
// take: an interval plus structural facts the range-check generator uses.
type Range struct {
	Min, Max int64
	Count    int64
	// AllPowersOfTwo is true while every observed value is a power of two.
	AllPowersOfTwo bool
	// Values holds the distinct observed values while they remain few
	// (flag-like variables); nil once the set grows past maxDistinct.
	Values map[int64]bool
}

const maxDistinct = 16

// NewRange returns an empty range.
func NewRange() *Range {
	return &Range{AllPowersOfTwo: true, Values: map[int64]bool{}}
}

// Observe folds one value into the range.
func (r *Range) Observe(v int64) {
	if r.Count == 0 {
		r.Min, r.Max = v, v
	} else {
		if v < r.Min {
			r.Min = v
		}
		if v > r.Max {
			r.Max = v
		}
	}
	r.Count++
	if v <= 0 || v&(v-1) != 0 {
		r.AllPowersOfTwo = false
	}
	if r.Values != nil {
		r.Values[v] = true
		if len(r.Values) > maxDistinct {
			r.Values = nil
		}
	}
}

// Distinct returns the sorted distinct values, or nil if too many were seen.
func (r *Range) Distinct() []int64 {
	if r.Values == nil {
		return nil
	}
	out := make([]int64, 0, len(r.Values))
	for v := range r.Values {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IsFlagLike reports whether the variable looks like a mode flag: very few
// distinct small values.
func (r *Range) IsFlagLike() bool {
	vals := r.Distinct()
	if vals == nil || len(vals) == 0 || len(vals) > 3 {
		return false
	}
	for _, v := range vals {
		if v < -1 || v > 2 {
			return false
		}
	}
	return true
}

// Width returns the size of the observed interval.
func (r *Range) Width() int64 {
	if r.Count == 0 {
		return 0
	}
	return r.Max - r.Min + 1
}

func (r *Range) String() string {
	if r.Count == 0 {
		return "[]"
	}
	s := fmt.Sprintf("[%d,%d]", r.Min, r.Max)
	if r.AllPowersOfTwo {
		s += " pow2"
	}
	if vals := r.Distinct(); vals != nil {
		parts := make([]string, len(vals))
		for i, v := range vals {
			parts[i] = fmt.Sprintf("%d", v)
		}
		s += " {" + strings.Join(parts, ",") + "}"
	}
	return s
}

// Profile aggregates observed variable ranges — the paper's value
// profiling environment (§4.2). Attach to a machine with Attach, drive the
// program on representative inputs, then query ranges.
type Profile struct {
	Vars map[string]*Range
}

// NewProfile returns an empty profile.
func NewProfile() *Profile { return &Profile{Vars: map[string]*Range{}} }

// ObserveInt folds one observation for the named variable.
func (p *Profile) ObserveInt(name string, v int64) {
	r, ok := p.Vars[name]
	if !ok {
		r = NewRange()
		p.Vars[name] = r
	}
	r.Observe(v)
}

// Attach wires the profile into a machine's Observe hook (integer values
// only; floats do not drive domain checks).
func (p *Profile) Attach(m *interp.Machine) {
	m.Observe = func(name string, v interp.Value) {
		if v.K == interp.VInt {
			p.ObserveInt(name, v.I)
		}
	}
}

// Range returns the observed range for name, or nil.
func (p *Profile) Range(name string) *Range { return p.Vars[name] }
