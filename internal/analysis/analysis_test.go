package analysis

import (
	"testing"

	"facc/internal/interp"
	"facc/internal/minic"
)

func analyzeSrc(t *testing.T, src, fn string) *FuncInfo {
	t.Helper()
	f, err := minic.ParseAndCheck("t.c", src)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	fd := f.Func(fn)
	if fd == nil {
		t.Fatalf("no function %q", fn)
	}
	return AnalyzeFunc(f, fd)
}

func TestIOClassificationOutOfPlace(t *testing.T) {
	fi := analyzeSrc(t, `
void copy(double* src, double* dst, int n) {
    for (int i = 0; i < n; i++) dst[i] = src[i];
}`, "copy")
	src := fi.Param("src")
	if !src.Reads || src.Writes {
		t.Errorf("src: reads=%v writes=%v, want read-only", src.Reads, src.Writes)
	}
	dst := fi.Param("dst")
	if dst.Reads || !dst.Writes {
		t.Errorf("dst: reads=%v writes=%v, want write-only", dst.Reads, dst.Writes)
	}
}

func TestIOClassificationInPlace(t *testing.T) {
	fi := analyzeSrc(t, `
void scale(double* x, int n) {
    for (int i = 0; i < n; i++) x[i] = x[i] * 2.0;
}`, "scale")
	x := fi.Param("x")
	if !x.Reads || !x.Writes {
		t.Errorf("x: reads=%v writes=%v, want in-place", x.Reads, x.Writes)
	}
}

func TestIOClassificationStructMembers(t *testing.T) {
	fi := analyzeSrc(t, `
typedef struct { double re; double im; } cpx;
void conj_all(cpx* data, int n) {
    for (int i = 0; i < n; i++) data[i].im = -data[i].im;
}`, "conj_all")
	d := fi.Param("data")
	if !d.Reads || !d.Writes {
		t.Errorf("data: reads=%v writes=%v, want both", d.Reads, d.Writes)
	}
}

func TestLengthCandidateInference(t *testing.T) {
	fi := analyzeSrc(t, `
void work(double* a, int n, int mode) {
    for (int i = 0; i < n; i++) a[i] = a[i] + 1.0;
}`, "work")
	a := fi.Param("a")
	if len(a.LengthCandidates) == 0 || a.LengthCandidates[0] != "n" {
		t.Errorf("length candidates for a = %v, want [n ...]", a.LengthCandidates)
	}
	n := fi.Param("n")
	if len(n.LengthOf) == 0 || n.LengthOf[0] != "a" {
		t.Errorf("n.LengthOf = %v", n.LengthOf)
	}
	mode := fi.Param("mode")
	if len(mode.LengthOf) != 0 {
		t.Errorf("mode should not be a length candidate, got %v", mode.LengthOf)
	}
}

func TestLengthCandidatePriority(t *testing.T) {
	// n bounds the loop that indexes both arrays; m only appears in
	// scalar arithmetic, so n must rank first.
	fi := analyzeSrc(t, `
void f(double* a, int m, int n) {
    double s = (double)m;
    for (int i = 0; i < n; i++) a[i] = s;
}`, "f")
	a := fi.Param("a")
	if len(a.LengthCandidates) == 0 || a.LengthCandidates[0] != "n" {
		t.Errorf("candidates = %v, want n first", a.LengthCandidates)
	}
}

func TestInterproceduralPropagation(t *testing.T) {
	fi := analyzeSrc(t, `
void helper(double* out, double* in, int n) {
    for (int i = 0; i < n; i++) out[i] = in[i];
}
void entry(double* x, double* y, int n) {
    helper(y, x, n);
}`, "entry")
	x := fi.Param("x")
	if !x.Reads || x.Writes {
		t.Errorf("x through callee: reads=%v writes=%v", x.Reads, x.Writes)
	}
	y := fi.Param("y")
	if !y.Writes {
		t.Errorf("y through callee: writes=%v", y.Writes)
	}
}

func TestRecursiveFunctionDoesNotHang(t *testing.T) {
	fi := analyzeSrc(t, `
void rec(double* x, int n) {
    if (n <= 1) return;
    rec(x, n / 2);
    x[0] = x[n - 1];
}`, "rec")
	x := fi.Param("x")
	if !x.Reads || !x.Writes {
		t.Errorf("recursive param classification: %+v", x)
	}
}

func TestPrintfDetection(t *testing.T) {
	fi := analyzeSrc(t, `
void noisy(double* x, int n) {
    for (int i = 0; i < n; i++) {
        printf("%f\n", x[i]);
        x[i] = 0;
    }
}`, "noisy")
	if !fi.CallsPrintf {
		t.Error("printf not detected")
	}
}

func TestPrintfDetectionTransitive(t *testing.T) {
	fi := analyzeSrc(t, `
void log_it(double v) { printf("%f\n", v); }
void entry(double* x, int n) {
    for (int i = 0; i < n; i++) log_it(x[i]);
}`, "entry")
	if !fi.CallsPrintf {
		t.Error("transitive printf not detected")
	}
}

func TestVoidPtrAndNestedDetection(t *testing.T) {
	fi := analyzeSrc(t, `void f(void* data, int n) { }`, "f")
	if !fi.UsesVoidPtr {
		t.Error("void* param not detected")
	}
	fi = analyzeSrc(t, `void g(double** rows, int n) { }`, "g")
	if !fi.NestedPointer {
		t.Error("pointer-to-pointer param not detected")
	}
}

func TestPointerArithmeticRoots(t *testing.T) {
	fi := analyzeSrc(t, `
double sum(double* data, int n) {
    double s = 0.0;
    double* p = data;
    for (int i = 0; i < n; i++) s = s + *(data + i);
    return s;
}`, "sum")
	d := fi.Param("data")
	if !d.Reads {
		t.Error("read through *(data+i) not detected")
	}
	if d.Writes {
		t.Error("spurious write detected")
	}
}

func TestRangeObserve(t *testing.T) {
	r := NewRange()
	for _, v := range []int64{64, 128, 256, 1024} {
		r.Observe(v)
	}
	if r.Min != 64 || r.Max != 1024 || !r.AllPowersOfTwo {
		t.Errorf("range = %s", r)
	}
	r.Observe(100)
	if r.AllPowersOfTwo {
		t.Error("100 should clear AllPowersOfTwo")
	}
	if r.Width() != 1024-64+1 {
		t.Errorf("width = %d", r.Width())
	}
}

func TestRangeFlagLike(t *testing.T) {
	r := NewRange()
	r.Observe(0)
	r.Observe(1)
	if !r.IsFlagLike() {
		t.Error("0/1 should be flag-like")
	}
	r2 := NewRange()
	for v := int64(0); v < 100; v++ {
		r2.Observe(v)
	}
	if r2.IsFlagLike() {
		t.Error("wide range should not be flag-like")
	}
	if r2.Distinct() != nil {
		t.Error("distinct set should be dropped past the cap")
	}
}

func TestProfileAttach(t *testing.T) {
	f, err := minic.ParseAndCheck("t.c", `
void f(int n) {
    int len = n;
    for (int i = 0; i < 2; i++) len = len * 2;
}`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := interp.NewMachine(f)
	if err != nil {
		t.Fatal(err)
	}
	p := NewProfile()
	p.Attach(m)
	if _, err := m.CallNamed("f", []interp.Value{interp.IntValue(16)}); err != nil {
		t.Fatal(err)
	}
	r := p.Range("len")
	if r == nil || r.Min != 16 || r.Max != 64 {
		t.Errorf("profiled range for len = %v", r)
	}
	if p.Range("missing") != nil {
		t.Error("unknown variable should have nil range")
	}
}
