package ojclone

import (
	"fmt"
	"math/rand"

	"facc/internal/bench"
	"facc/internal/gnn"
	"facc/internal/minic"
	"facc/internal/progml"
)

// Dataset is the labeled graph corpus used by the Fig. 11 experiment.
type Dataset struct {
	Graphs     []*gnn.Graph
	ClassNames []string
	FFTClass   int // label index of the FFT class
}

// Build generates the dataset: perClass instances of each algorithm class
// plus the FFT class. FFT instances come from the benchmark corpus (as the
// paper does), topped up with DFT variants when perClass exceeds the
// corpus size.
func Build(perClass int, seed int64) (*Dataset, error) {
	rng := rand.New(rand.NewSource(seed))
	ds := &Dataset{}
	for _, cls := range Classes() {
		ds.ClassNames = append(ds.ClassNames, cls.Name)
	}
	ds.FFTClass = len(ds.ClassNames)
	ds.ClassNames = append(ds.ClassNames, "fft")

	for label, cls := range Classes() {
		for v := 0; v < perClass; v++ {
			st := newStyle(rng)
			src := "#include <math.h>\n" + cls.Gen(st)
			g, err := graphFromSource(fmt.Sprintf("%s_%d.c", cls.Name, v), src)
			if err != nil {
				return nil, fmt.Errorf("ojclone: class %s variant %d: %w", cls.Name, v, err)
			}
			g.Label = label
			ds.Graphs = append(ds.Graphs, g)
		}
	}

	// FFT class from the benchmark corpus.
	added := 0
	for _, b := range bench.SupportedSuite() {
		if added >= perClass {
			break
		}
		f, err := minic.ParseAndCheck(b.File, b.Source())
		if err != nil {
			return nil, fmt.Errorf("ojclone: corpus %s: %w", b.Name, err)
		}
		fn := f.Func(b.Entry)
		g := progml.BuildRegionGraph(f, fn)
		g.Label = ds.FFTClass
		ds.Graphs = append(ds.Graphs, g)
		added++
	}
	for added < perClass {
		st := newStyle(rng)
		src := "#include <math.h>\n#include <complex.h>\n" + genDFTVariant(st)
		g, err := graphFromSource(fmt.Sprintf("fft_extra_%d.c", added), src)
		if err != nil {
			return nil, err
		}
		g.Label = ds.FFTClass
		ds.Graphs = append(ds.Graphs, g)
		added++
	}
	return ds, nil
}

// genDFTVariant synthesizes additional FFT-class members beyond the
// benchmark corpus (the paper has 20 GitHub snippets; our corpus has 18).
func genDFTVariant(st *style) string {
	if st.rng.Intn(2) == 0 {
		return fmt.Sprintf(`void dft_v(double complex* in, double complex* out, int %[1]s) {
    for (int k = 0; k < %[1]s; k++) {
        double complex %[2]s = 0.0;
        for (int j = 0; j < %[1]s; j++) {
            %[2]s += in[j] * cexp(-2.0 * M_PI * I * (double)j * (double)k / (double)%[1]s);
        }
        out[k] = %[2]s;
    }
}
`, st.lim, st.acc)
	}
	return fmt.Sprintf(`typedef struct { double re; double im; } dcpx;
void dft_v(dcpx* %[1]s, dcpx* out, int %[2]s) {
    for (int k = 0; k < %[2]s; k++) {
        double sre = 0.0;
        double sim = 0.0;
        for (int j = 0; j < %[2]s; j++) {
            double ang = -2.0 * M_PI * (double)j * (double)k / (double)%[2]s;
            sre += %[1]s[j].re * cos(ang) - %[1]s[j].im * sin(ang);
            sim += %[1]s[j].re * sin(ang) + %[1]s[j].im * cos(ang);
        }
        out[k].re = sre;
        out[k].im = sim;
    }
}
`, st.arr, st.lim)
}

func graphFromSource(name, src string) (*gnn.Graph, error) {
	f, err := minic.ParseAndCheck(name, src)
	if err != nil {
		return nil, err
	}
	if len(f.Funcs) == 0 {
		return nil, fmt.Errorf("ojclone: %s has no functions", name)
	}
	// The region is rooted at the last function (entry convention).
	entry := f.Funcs[len(f.Funcs)-1]
	return progml.BuildRegionGraph(f, entry), nil
}

// Fold is one cross-validation split.
type Fold struct {
	Train, Test []*gnn.Graph
}

// KFolds performs a stratified k-fold split with at most trainPerClass
// training instances per class (the Fig. 11 x-axis).
func (ds *Dataset) KFolds(k, trainPerClass int, seed int64) []Fold {
	rng := rand.New(rand.NewSource(seed))
	byClass := map[int][]*gnn.Graph{}
	maxLabel := 0
	for _, g := range ds.Graphs {
		byClass[g.Label] = append(byClass[g.Label], g)
		if g.Label > maxLabel {
			maxLabel = g.Label
		}
	}
	folds := make([]Fold, k)
	// Iterate classes in label order so splits are reproducible (map
	// iteration order would leak into the rng consumption order).
	for label := 0; label <= maxLabel; label++ {
		graphs := byClass[label]
		if len(graphs) == 0 {
			continue
		}
		perm := rng.Perm(len(graphs))
		for fi := 0; fi < k; fi++ {
			// Test slice: the fi-th chunk; train from the rest.
			lo := fi * len(graphs) / k
			hi := (fi + 1) * len(graphs) / k
			trainAdded := 0
			for pi, gi := range perm {
				g := graphs[gi]
				if pi >= lo && pi < hi {
					folds[fi].Test = append(folds[fi].Test, g)
				} else if trainPerClass <= 0 || trainAdded < trainPerClass {
					folds[fi].Train = append(folds[fi].Train, g)
					trainAdded++
				}
			}
		}
	}
	return folds
}

// NumClasses returns the class count including FFT.
func (ds *Dataset) NumClasses() int { return len(ds.ClassNames) }
