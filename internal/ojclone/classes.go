// Package ojclone procedurally generates the algorithm-classification
// dataset standing in for the paper's OJClone corpus (Mou et al.): many
// classes of small programs, each class containing stylistically diverse
// implementations of the same task, plus FFT as the added class (drawn
// from the benchmark corpus, exactly as the paper does). The class count
// is reduced from 105 to 40+FFT — the substitution and its effect are
// recorded in DESIGN.md / EXPERIMENTS.md.
package ojclone

import (
	"fmt"
	"math/rand"
	"strings"
)

// style carries the per-variant stylistic choices.
type style struct {
	rng *rand.Rand
	// identifier pools
	arr, idx, tmp, acc, lim string
	useWhile                bool
	declareUpFront          bool
}

func newStyle(rng *rand.Rand) *style {
	arrs := []string{"a", "arr", "data", "buf", "v", "xs", "values"}
	idxs := []string{"i", "j", "k", "pos", "it", "p"}
	tmps := []string{"t", "tmp", "swap", "hold", "aux"}
	accs := []string{"s", "sum", "acc", "total", "result", "r"}
	lims := []string{"n", "len", "count", "size", "m"}
	pick := func(pool []string) string { return pool[rng.Intn(len(pool))] }
	st := &style{
		rng: rng,
		arr: pick(arrs), tmp: pick(tmps), acc: pick(accs), lim: pick(lims),
		useWhile:       rng.Intn(3) == 0,
		declareUpFront: rng.Intn(2) == 0,
	}
	st.idx = pick(idxs)
	return st
}

// loop renders a counting loop in the variant's preferred style.
func (st *style) loop(v, from, to, body string) string {
	if st.useWhile {
		return fmt.Sprintf("    int %s = %s;\n    while (%s < %s) {\n%s        %s++;\n    }\n",
			v, from, v, to, indent(body), v)
	}
	return fmt.Sprintf("    for (int %s = %s; %s < %s; %s++) {\n%s    }\n",
		v, from, v, to, v, indent(body))
}

func indent(body string) string {
	var b strings.Builder
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		b.WriteString("        ")
		b.WriteString(line)
		b.WriteString("\n")
	}
	return b.String()
}

// Class is one dataset class: a name and a variant generator.
type Class struct {
	Name string
	Gen  func(st *style) string
}

// Classes returns the 40 non-FFT classes.
func Classes() []Class {
	return []Class{
		{"bubblesort", genBubble},
		{"insertionsort", genInsertion},
		{"selectionsort", genSelection},
		{"binarysearch", genBinSearch},
		{"linearsearch", genLinSearch},
		{"matmul", genMatMul},
		{"transpose", genTranspose},
		{"dotproduct", genDot},
		{"reversearray", genReverse},
		{"sumarray", genSum},
		{"maxarray", genMax},
		{"minarray", genMin},
		{"average", genAverage},
		{"fibonacci", genFib},
		{"factorial", genFact},
		{"gcd", genGCD},
		{"isprime", genIsPrime},
		{"sieve", genSieve},
		{"intpower", genPow},
		{"countequal", genCountEqual},
		{"histogram", genHistogram},
		{"prefixsum", genPrefixSum},
		{"movingaverage", genMovingAvg},
		{"polyeval", genPolyEval},
		{"vecnorm", genNorm},
		{"scalearray", genScale},
		{"arraycopy", genArrayCopy},
		{"rotatearray", genRotate},
		{"interleave", genInterleave},
		{"maxsubarray", genKadane},
		{"collatz", genCollatz},
		{"digitalroot", genDigitalRoot},
		{"checksum", genChecksum},
		{"runlength", genRunLength},
		{"matvec", genMatVec},
		{"heapify", genHeapify},
		{"minmaxnorm", genNormalizeMinMax},
		{"popcount", genBinaryDigits},
		{"triangular", genTriangular},
		{"stacksim", genStackSim},
	}
}

func genBubble(st *style) string {
	a, n, t := st.arr, st.lim, st.tmp
	inner := fmt.Sprintf(
		"if (%s[%s] > %s[%s + 1]) {\n    int %s = %s[%s];\n    %s[%s] = %s[%s + 1];\n    %s[%s + 1] = %s;\n}\n",
		a, "j", a, "j", t, a, "j", a, "j", a, "j", a, "j", t)
	body := st.loop("j", "0", n+" - i - 1", inner)
	return fmt.Sprintf("void sort_it(int* %s, int %s) {\n%s}\n",
		a, n, st.loop("i", "0", n+" - 1", body))
}

func genInsertion(st *style) string {
	a, n := st.arr, st.lim
	return fmt.Sprintf(`void sort_it(int* %[1]s, int %[2]s) {
    for (int i = 1; i < %[2]s; i++) {
        int key = %[1]s[i];
        int j = i - 1;
        while (j >= 0 && %[1]s[j] > key) {
            %[1]s[j + 1] = %[1]s[j];
            j--;
        }
        %[1]s[j + 1] = key;
    }
}
`, a, n)
}

func genSelection(st *style) string {
	a, n, t := st.arr, st.lim, st.tmp
	return fmt.Sprintf(`void sort_it(int* %[1]s, int %[2]s) {
    for (int i = 0; i < %[2]s - 1; i++) {
        int best = i;
        for (int j = i + 1; j < %[2]s; j++) {
            if (%[1]s[j] < %[1]s[best]) {
                best = j;
            }
        }
        int %[3]s = %[1]s[i];
        %[1]s[i] = %[1]s[best];
        %[1]s[best] = %[3]s;
    }
}
`, a, n, t)
}

func genBinSearch(st *style) string {
	a, n := st.arr, st.lim
	return fmt.Sprintf(`int find(int* %[1]s, int %[2]s, int want) {
    int lo = 0;
    int hi = %[2]s - 1;
    while (lo <= hi) {
        int mid = lo + (hi - lo) / 2;
        if (%[1]s[mid] == want) {
            return mid;
        }
        if (%[1]s[mid] < want) {
            lo = mid + 1;
        } else {
            hi = mid - 1;
        }
    }
    return -1;
}
`, a, n)
}

func genLinSearch(st *style) string {
	a, n := st.arr, st.lim
	body := fmt.Sprintf("if (%s[%s] == want) {\n    return %s;\n}\n", a, st.idx, st.idx)
	return fmt.Sprintf("int find(int* %s, int %s, int want) {\n%s    return -1;\n}\n",
		a, n, st.loop(st.idx, "0", n, body))
}

func genMatMul(st *style) string {
	n := st.lim
	return fmt.Sprintf(`void multiply(double* a, double* b, double* c, int %[1]s) {
    for (int i = 0; i < %[1]s; i++) {
        for (int j = 0; j < %[1]s; j++) {
            double %[2]s = 0.0;
            for (int k = 0; k < %[1]s; k++) {
                %[2]s += a[i * %[1]s + k] * b[k * %[1]s + j];
            }
            c[i * %[1]s + j] = %[2]s;
        }
    }
}
`, n, st.acc)
}

func genTranspose(st *style) string {
	n, t := st.lim, st.tmp
	return fmt.Sprintf(`void transpose(double* mat, int %[1]s) {
    for (int i = 0; i < %[1]s; i++) {
        for (int j = i + 1; j < %[1]s; j++) {
            double %[2]s = mat[i * %[1]s + j];
            mat[i * %[1]s + j] = mat[j * %[1]s + i];
            mat[j * %[1]s + i] = %[2]s;
        }
    }
}
`, n, t)
}

func genDot(st *style) string {
	n, acc := st.lim, st.acc
	body := fmt.Sprintf("%s += a[%s] * b[%s];\n", acc, st.idx, st.idx)
	return fmt.Sprintf("double dot(double* a, double* b, int %s) {\n    double %s = 0.0;\n%s    return %s;\n}\n",
		n, acc, st.loop(st.idx, "0", n, body), acc)
}

func genReverse(st *style) string {
	a, n, t := st.arr, st.lim, st.tmp
	return fmt.Sprintf(`void reverse(int* %[1]s, int %[2]s) {
    int lo = 0;
    int hi = %[2]s - 1;
    while (lo < hi) {
        int %[3]s = %[1]s[lo];
        %[1]s[lo] = %[1]s[hi];
        %[1]s[hi] = %[3]s;
        lo++;
        hi--;
    }
}
`, a, n, t)
}

func genSum(st *style) string {
	a, n, acc := st.arr, st.lim, st.acc
	body := fmt.Sprintf("%s += %s[%s];\n", acc, a, st.idx)
	return fmt.Sprintf("int total(int* %s, int %s) {\n    int %s = 0;\n%s    return %s;\n}\n",
		a, n, acc, st.loop(st.idx, "0", n, body), acc)
}

func genMax(st *style) string {
	a, n := st.arr, st.lim
	body := fmt.Sprintf("if (%s[%s] > best) {\n    best = %s[%s];\n}\n", a, st.idx, a, st.idx)
	return fmt.Sprintf("int largest(int* %s, int %s) {\n    int best = %s[0];\n%s    return best;\n}\n",
		a, n, a, st.loop(st.idx, "1", n, body))
}

func genMin(st *style) string {
	a, n := st.arr, st.lim
	body := fmt.Sprintf("if (%s[%s] < best) {\n    best = %s[%s];\n}\n", a, st.idx, a, st.idx)
	return fmt.Sprintf("int smallest(int* %s, int %s) {\n    int best = %s[0];\n%s    return best;\n}\n",
		a, n, a, st.loop(st.idx, "1", n, body))
}

func genAverage(st *style) string {
	a, n, acc := st.arr, st.lim, st.acc
	body := fmt.Sprintf("%s += %s[%s];\n", acc, a, st.idx)
	return fmt.Sprintf("double mean(double* %s, int %s) {\n    double %s = 0.0;\n%s    return %s / (double)%s;\n}\n",
		a, n, acc, st.loop(st.idx, "0", n, body), acc, n)
}

func genFib(st *style) string {
	if st.rng.Intn(2) == 0 {
		return `int fib(int n) {
    if (n < 2) {
        return n;
    }
    return fib(n - 1) + fib(n - 2);
}
`
	}
	return `int fib(int n) {
    int a = 0;
    int b = 1;
    for (int i = 0; i < n; i++) {
        int next = a + b;
        a = b;
        b = next;
    }
    return a;
}
`
}

func genFact(st *style) string {
	if st.rng.Intn(2) == 0 {
		return `long fact(int n) {
    if (n <= 1) {
        return 1;
    }
    return (long)n * fact(n - 1);
}
`
	}
	acc := st.acc
	return fmt.Sprintf(`long fact(int n) {
    long %[1]s = 1;
    for (int i = 2; i <= n; i++) {
        %[1]s = %[1]s * (long)i;
    }
    return %[1]s;
}
`, acc)
}

func genGCD(st *style) string {
	if st.rng.Intn(2) == 0 {
		return `int gcd(int a, int b) {
    if (b == 0) {
        return a;
    }
    return gcd(b, a % b);
}
`
	}
	return `int gcd(int a, int b) {
    while (b != 0) {
        int r = a % b;
        a = b;
        b = r;
    }
    return a;
}
`
}

func genIsPrime(st *style) string {
	return `int is_prime(int n) {
    if (n < 2) {
        return 0;
    }
    for (int d = 2; d * d <= n; d++) {
        if (n % d == 0) {
            return 0;
        }
    }
    return 1;
}
`
}

func genSieve(st *style) string {
	a, n := st.arr, st.lim
	return fmt.Sprintf(`int sieve(int* %[1]s, int %[2]s) {
    for (int i = 0; i < %[2]s; i++) {
        %[1]s[i] = 1;
    }
    %[1]s[0] = 0;
    if (%[2]s > 1) {
        %[1]s[1] = 0;
    }
    int found = 0;
    for (int p = 2; p < %[2]s; p++) {
        if (%[1]s[p]) {
            found++;
            for (int q = p + p; q < %[2]s; q += p) {
                %[1]s[q] = 0;
            }
        }
    }
    return found;
}
`, a, n)
}

func genPow(st *style) string {
	acc := st.acc
	return fmt.Sprintf(`long ipow(int base, int exp) {
    long %[1]s = 1;
    long b = (long)base;
    while (exp > 0) {
        if (exp & 1) {
            %[1]s = %[1]s * b;
        }
        b = b * b;
        exp >>= 1;
    }
    return %[1]s;
}
`, acc)
}

func genCountEqual(st *style) string {
	a, n, acc := st.arr, st.lim, st.acc
	body := fmt.Sprintf("if (%s[%s] == want) {\n    %s++;\n}\n", a, st.idx, acc)
	return fmt.Sprintf("int count_equal(int* %s, int %s, int want) {\n    int %s = 0;\n%s    return %s;\n}\n",
		a, n, acc, st.loop(st.idx, "0", n, body), acc)
}

func genHistogram(st *style) string {
	a, n := st.arr, st.lim
	return fmt.Sprintf(`void histogram(int* %[1]s, int %[2]s, int* bins, int nbins) {
    for (int b = 0; b < nbins; b++) {
        bins[b] = 0;
    }
    for (int i = 0; i < %[2]s; i++) {
        int slot = %[1]s[i] %% nbins;
        if (slot < 0) {
            slot += nbins;
        }
        bins[slot]++;
    }
}
`, a, n)
}

func genPrefixSum(st *style) string {
	a, n, acc := st.arr, st.lim, st.acc
	return fmt.Sprintf(`void prefix(int* %[1]s, int %[2]s) {
    int %[3]s = 0;
    for (int i = 0; i < %[2]s; i++) {
        %[3]s += %[1]s[i];
        %[1]s[i] = %[3]s;
    }
}
`, a, n, acc)
}

func genMovingAvg(st *style) string {
	n := st.lim
	return fmt.Sprintf(`void smooth(double* in, double* out, int %[1]s, int w) {
    for (int i = 0; i < %[1]s; i++) {
        double %[2]s = 0.0;
        int cnt = 0;
        for (int j = i - w; j <= i + w; j++) {
            if (j >= 0 && j < %[1]s) {
                %[2]s += in[j];
                cnt++;
            }
        }
        out[i] = %[2]s / (double)cnt;
    }
}
`, n, st.acc)
}

func genPolyEval(st *style) string {
	a, n, acc := st.arr, st.lim, st.acc
	return fmt.Sprintf(`double eval(double* %[1]s, int %[2]s, double x) {
    double %[3]s = 0.0;
    for (int i = %[2]s - 1; i >= 0; i--) {
        %[3]s = %[3]s * x + %[1]s[i];
    }
    return %[3]s;
}
`, a, n, acc)
}

func genNorm(st *style) string {
	a, n, acc := st.arr, st.lim, st.acc
	body := fmt.Sprintf("%s += %s[%s] * %s[%s];\n", acc, a, st.idx, a, st.idx)
	return fmt.Sprintf("double norm(double* %s, int %s) {\n    double %s = 0.0;\n%s    return sqrt(%s);\n}\n",
		a, n, acc, st.loop(st.idx, "0", n, body), acc)
}

func genScale(st *style) string {
	a, n := st.arr, st.lim
	body := fmt.Sprintf("%s[%s] = %s[%s] * f;\n", a, st.idx, a, st.idx)
	return fmt.Sprintf("void scale(double* %s, int %s, double f) {\n%s}\n",
		a, n, st.loop(st.idx, "0", n, body))
}

func genArrayCopy(st *style) string {
	a, n := st.arr, st.lim
	body := fmt.Sprintf("dst[%s] = %s[%s];\n", st.idx, a, st.idx)
	return fmt.Sprintf("void copy_all(int* %s, int* dst, int %s) {\n%s}\n",
		a, n, st.loop(st.idx, "0", n, body))
}

func genRotate(st *style) string {
	a, n, t := st.arr, st.lim, st.tmp
	return fmt.Sprintf(`void rotate_one(int* %[1]s, int %[2]s) {
    if (%[2]s < 2) {
        return;
    }
    int %[3]s = %[1]s[0];
    for (int i = 0; i < %[2]s - 1; i++) {
        %[1]s[i] = %[1]s[i + 1];
    }
    %[1]s[%[2]s - 1] = %[3]s;
}
`, a, n, t)
}

func genInterleave(st *style) string {
	n := st.lim
	return fmt.Sprintf(`void interleave(int* a, int* b, int* out, int %[1]s) {
    for (int i = 0; i < %[1]s; i++) {
        out[2 * i] = a[i];
        out[2 * i + 1] = b[i];
    }
}
`, n)
}

func genKadane(st *style) string {
	a, n := st.arr, st.lim
	return fmt.Sprintf(`int best_run(int* %[1]s, int %[2]s) {
    int best = %[1]s[0];
    int cur = %[1]s[0];
    for (int i = 1; i < %[2]s; i++) {
        if (cur < 0) {
            cur = 0;
        }
        cur += %[1]s[i];
        if (cur > best) {
            best = cur;
        }
    }
    return best;
}
`, a, n)
}

func genCollatz(st *style) string {
	acc := st.acc
	return fmt.Sprintf(`int collatz_steps(int n) {
    int %[1]s = 0;
    while (n > 1) {
        if (n %% 2 == 0) {
            n = n / 2;
        } else {
            n = 3 * n + 1;
        }
        %[1]s++;
    }
    return %[1]s;
}
`, acc)
}

func genDigitalRoot(st *style) string {
	acc := st.acc
	return fmt.Sprintf(`int digital_root(int n) {
    while (n >= 10) {
        int %[1]s = 0;
        while (n > 0) {
            %[1]s += n %% 10;
            n /= 10;
        }
        n = %[1]s;
    }
    return n;
}
`, acc)
}

func genChecksum(st *style) string {
	a, n, acc := st.arr, st.lim, st.acc
	body := fmt.Sprintf("%s = (%s * 31 + %s[%s]) & 0xFFFF;\n", acc, acc, a, st.idx)
	return fmt.Sprintf("int checksum(int* %s, int %s) {\n    int %s = 7;\n%s    return %s;\n}\n",
		a, n, acc, st.loop(st.idx, "0", n, body), acc)
}

func genRunLength(st *style) string {
	a, n := st.arr, st.lim
	return fmt.Sprintf(`int count_runs(int* %[1]s, int %[2]s) {
    if (%[2]s == 0) {
        return 0;
    }
    int runs = 1;
    for (int i = 1; i < %[2]s; i++) {
        if (%[1]s[i] != %[1]s[i - 1]) {
            runs++;
        }
    }
    return runs;
}
`, a, n)
}

func genMatVec(st *style) string {
	n := st.lim
	return fmt.Sprintf(`void matvec(double* mat, double* vec, double* out, int %[1]s) {
    for (int i = 0; i < %[1]s; i++) {
        double %[2]s = 0.0;
        for (int j = 0; j < %[1]s; j++) {
            %[2]s += mat[i * %[1]s + j] * vec[j];
        }
        out[i] = %[2]s;
    }
}
`, n, st.acc)
}

func genHeapify(st *style) string {
	a, n := st.arr, st.lim
	return fmt.Sprintf(`void sift_down(int* %[1]s, int %[2]s, int root) {
    while (2 * root + 1 < %[2]s) {
        int child = 2 * root + 1;
        if (child + 1 < %[2]s && %[1]s[child + 1] > %[1]s[child]) {
            child++;
        }
        if (%[1]s[root] >= %[1]s[child]) {
            return;
        }
        int t = %[1]s[root];
        %[1]s[root] = %[1]s[child];
        %[1]s[child] = t;
        root = child;
    }
}
`, a, n)
}

func genNormalizeMinMax(st *style) string {
	a, n := st.arr, st.lim
	return fmt.Sprintf(`void normalize(double* %[1]s, int %[2]s) {
    double lo = %[1]s[0];
    double hi = %[1]s[0];
    for (int i = 1; i < %[2]s; i++) {
        if (%[1]s[i] < lo) {
            lo = %[1]s[i];
        }
        if (%[1]s[i] > hi) {
            hi = %[1]s[i];
        }
    }
    double span = hi - lo;
    if (span == 0.0) {
        return;
    }
    for (int i = 0; i < %[2]s; i++) {
        %[1]s[i] = (%[1]s[i] - lo) / span;
    }
}
`, a, n)
}

func genBinaryDigits(st *style) string {
	acc := st.acc
	return fmt.Sprintf(`int popcount(int n) {
    int %[1]s = 0;
    while (n != 0) {
        %[1]s += n & 1;
        n = (n >> 1) & 0x7FFFFFFF;
    }
    return %[1]s;
}
`, acc)
}

func genTriangular(st *style) string {
	acc := st.acc
	if st.rng.Intn(2) == 0 {
		return fmt.Sprintf(`long triangular(int n) {
    long %[1]s = 0;
    for (int i = 1; i <= n; i++) {
        %[1]s += (long)i;
    }
    return %[1]s;
}
`, acc)
	}
	return `long triangular(int n) {
    return (long)n * (long)(n + 1) / 2;
}
`
}

func genStackSim(st *style) string {
	a, n := st.arr, st.lim
	return fmt.Sprintf(`int balance(int* ops, int %[2]s, int* %[1]s, int cap) {
    int top = 0;
    for (int i = 0; i < %[2]s; i++) {
        if (ops[i] > 0) {
            if (top >= cap) {
                return -1;
            }
            %[1]s[top] = ops[i];
            top++;
        } else {
            if (top == 0) {
                return -1;
            }
            top--;
        }
    }
    return top;
}
`, a, n)
}
