package ojclone

import (
	"math/rand"
	"testing"

	"facc/internal/gnn"
	"facc/internal/minic"
)

func TestAllClassVariantsParse(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, cls := range Classes() {
		for v := 0; v < 5; v++ {
			st := newStyle(rng)
			src := "#include <math.h>\n" + cls.Gen(st)
			if _, err := minic.ParseAndCheck(cls.Name+".c", src); err != nil {
				t.Errorf("%s variant %d: %v\n%s", cls.Name, v, err, src)
			}
		}
	}
}

func TestBuildDataset(t *testing.T) {
	ds, err := Build(4, 42)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumClasses() != 41 {
		t.Fatalf("classes = %d, want 41 (40 + fft)", ds.NumClasses())
	}
	if len(ds.Graphs) != 41*4 {
		t.Fatalf("graphs = %d, want %d", len(ds.Graphs), 41*4)
	}
	perClass := map[int]int{}
	for _, g := range ds.Graphs {
		perClass[g.Label]++
		if g.X.R == 0 {
			t.Fatal("empty graph in dataset")
		}
	}
	for c := 0; c < ds.NumClasses(); c++ {
		if perClass[c] != 4 {
			t.Errorf("class %d has %d instances", c, perClass[c])
		}
	}
	if ds.ClassNames[ds.FFTClass] != "fft" {
		t.Errorf("FFT class mislabeled: %v", ds.ClassNames[ds.FFTClass])
	}
}

func TestKFoldsStratified(t *testing.T) {
	ds, err := Build(6, 7)
	if err != nil {
		t.Fatal(err)
	}
	folds := ds.KFolds(3, 0, 99)
	if len(folds) != 3 {
		t.Fatalf("folds = %d", len(folds))
	}
	testTotal := 0
	for _, f := range folds {
		testTotal += len(f.Test)
		if len(f.Train) == 0 || len(f.Test) == 0 {
			t.Fatal("empty fold split")
		}
	}
	if testTotal != len(ds.Graphs) {
		t.Errorf("test instances across folds = %d, want %d", testTotal, len(ds.Graphs))
	}
	// Capping train instances per class.
	capped := ds.KFolds(3, 2, 99)
	counts := map[int]int{}
	for _, g := range capped[0].Train {
		counts[g.Label]++
	}
	for c, n := range counts {
		if n > 2 {
			t.Errorf("class %d has %d train instances, cap was 2", c, n)
		}
	}
}

// TestFFTSeparability is the core classifier claim: with a handful of
// training examples, FFT top-3 recall approaches 1 (paper Fig. 11).
func TestFFTSeparability(t *testing.T) {
	if testing.Short() {
		t.Skip("training is slow")
	}
	ds, err := Build(8, 13)
	if err != nil {
		t.Fatal(err)
	}
	folds := ds.KFolds(4, 6, 5)
	f := folds[0]
	model := gnn.Fit(f.Train, ds.NumClasses(), gnn.TrainConfig{
		Hidden: 16, MaxEpochs: 40, Seed: 3,
	})
	recall := gnn.RecallForClass(model, f.Test, ds.FFTClass, 3)
	if recall < 0.5 {
		t.Errorf("FFT top-3 recall = %.2f, want >= 0.5 with 6 train examples", recall)
	}
	acc := gnn.TopKAccuracy(model, f.Test, 3)
	if acc < 0.4 {
		t.Errorf("overall top-3 accuracy = %.2f, suspiciously low", acc)
	}
}
