package accel

import (
	"facc/internal/interp"
)

// Platform converts interpreter operation counts into modeled wall-clock
// time for one of the evaluation hosts. The cycles-per-operation weights
// are coarse microarchitectural estimates; together with the accelerator
// constants in spec.go they are calibrated so the *relative* performance
// (who wins, by roughly what factor, where crossovers fall) matches the
// paper's Figures 10, 13 and 14.
type Platform struct {
	Name    string
	ClockHz float64

	CyclesPerIntOp    float64
	CyclesPerFloatOp  float64
	CyclesPerFloatDiv float64
	CyclesPerLoad     float64
	CyclesPerStore    float64
	CyclesPerBranch   float64
	CyclesPerCall     float64
	CyclesPerMathCall float64 // libm transcendentals
}

// The evaluation hosts from the paper's three boards plus the SC589 DSP
// core used by the ProGraML-only offload baseline.
var (
	// CortexA5 is the ADSP-SC589 board's master core.
	CortexA5 = Platform{
		Name: "cortex-a5", ClockHz: 500e6,
		CyclesPerIntOp: 1, CyclesPerFloatOp: 4, CyclesPerFloatDiv: 25,
		CyclesPerLoad: 3, CyclesPerStore: 2, CyclesPerBranch: 2,
		CyclesPerCall: 8, CyclesPerMathCall: 90,
	}
	// CortexM33 is the NXP LPC55S69 board's core.
	CortexM33 = Platform{
		Name: "cortex-m33", ClockHz: 150e6,
		CyclesPerIntOp: 1, CyclesPerFloatOp: 3, CyclesPerFloatDiv: 14,
		CyclesPerLoad: 2, CyclesPerStore: 2, CyclesPerBranch: 2,
		CyclesPerCall: 6, CyclesPerMathCall: 120,
	}
	// I9Desktop is the FFTW host (Intel i9-10900X class).
	I9Desktop = Platform{
		Name: "i9-desktop", ClockHz: 3.7e9,
		CyclesPerIntOp: 0.3, CyclesPerFloatOp: 0.5, CyclesPerFloatDiv: 7,
		CyclesPerLoad: 0.5, CyclesPerStore: 0.5, CyclesPerBranch: 0.7,
		CyclesPerCall: 2, CyclesPerMathCall: 25,
	}
	// SharcDSP is the SC589 SHARC core: same board as the A5 but with
	// single-cycle MACs and hardware loops — the ProGraML baseline
	// offloads FFT-classified code here.
	SharcDSP = Platform{
		Name: "sharc-dsp", ClockHz: 450e6,
		CyclesPerIntOp: 0.45, CyclesPerFloatOp: 0.7, CyclesPerFloatDiv: 6,
		CyclesPerLoad: 0.7, CyclesPerStore: 0.7, CyclesPerBranch: 0.55,
		CyclesPerCall: 3, CyclesPerMathCall: 20,
	}
)

// Time converts operation counts into seconds on the platform.
func (p Platform) Time(c interp.Counters) float64 {
	cycles := float64(c.IntOps)*p.CyclesPerIntOp +
		float64(c.FloatOps)*p.CyclesPerFloatOp +
		float64(c.FloatDivs)*p.CyclesPerFloatDiv +
		float64(c.Loads)*p.CyclesPerLoad +
		float64(c.Stores)*p.CyclesPerStore +
		float64(c.Branches)*p.CyclesPerBranch +
		float64(c.Calls)*p.CyclesPerCall +
		float64(c.MathCalls)*p.CyclesPerMathCall
	return cycles / p.ClockHz
}

// HostFor returns the CPU that drives each target in the evaluation.
func HostFor(target string) Platform {
	switch target {
	case "ffta":
		return CortexA5
	case "powerquad":
		return CortexM33
	case "fftw":
		return I9Desktop
	default:
		return CortexA5
	}
}

// DSPOffloadTime models running the *same software implementation* on the
// SHARC DSP core (the ProGraML-classifier-only baseline): identical
// operation counts, DSP cycle weights, plus a fixed offload handshake.
func DSPOffloadTime(c interp.Counters) float64 {
	const handshake = 4e-6
	return handshake + SharcDSP.Time(c)
}
