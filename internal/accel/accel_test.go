package accel

import (
	"math"
	"math/rand"
	"testing"

	"facc/internal/fft"
	"facc/internal/interp"
)

func randComplex(rng *rand.Rand, n int) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return out
}

func TestSpecByName(t *testing.T) {
	for _, name := range []string{"ffta", "powerquad", "fftw"} {
		s, err := SpecByName(name)
		if err != nil || s.Name != name {
			t.Errorf("SpecByName(%q) = %v, %v", name, s, err)
		}
	}
	if _, err := SpecByName("tpu"); err == nil {
		t.Error("expected error for unknown target")
	}
}

func TestDomainSupport(t *testing.T) {
	ffta := NewFFTA()
	cases := []struct {
		n    int
		want bool
	}{
		{64, true}, {1024, true}, {65536, true},
		{32, false},     // below MinN
		{131072, false}, // above MaxN
		{100, false},    // not a power of two
		{1000, false},
	}
	for _, c := range cases {
		if got := ffta.Supports(c.n); got != c.want {
			t.Errorf("ffta.Supports(%d) = %v, want %v", c.n, got, c.want)
		}
	}
	fftw := NewFFTWLib()
	for _, n := range []int{1, 3, 100, 1000, 1024} {
		if !fftw.Supports(n) {
			t.Errorf("fftw.Supports(%d) = false", n)
		}
	}
	pq := NewPowerQuad()
	if pq.Supports(8) || !pq.Supports(16) || !pq.Supports(4096) || pq.Supports(8192) {
		t.Error("powerquad domain bounds wrong")
	}
}

func TestFFTARunNormalized(t *testing.T) {
	ffta := NewFFTA()
	rng := rand.New(rand.NewSource(1))
	in := randComplex(rng, 64)
	got, err := ffta.Run(in, fft.Forward)
	if err != nil {
		t.Fatal(err)
	}
	want := fft.DFT(in, fft.Forward)
	fft.Normalize(want) // FFTA quirk: normalized output
	if e := fft.MaxError(got, want); e > 1e-4 {
		t.Errorf("FFTA output error %g (normalization quirk missing?)", e)
	}
}

func TestPowerQuadRunUnnormalized(t *testing.T) {
	pq := NewPowerQuad()
	rng := rand.New(rand.NewSource(2))
	in := randComplex(rng, 128)
	got, err := pq.Run(in, fft.Forward)
	if err != nil {
		t.Fatal(err)
	}
	want := fft.DFT(in, fft.Forward)
	if e := fft.MaxError(got, want); e > 1e-3 {
		t.Errorf("PowerQuad output error %g", e)
	}
}

func TestFFTWRunBothDirectionsAnyLength(t *testing.T) {
	fw := NewFFTWLib()
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{12, 17, 64, 100} {
		in := randComplex(rng, n)
		got, err := fw.Run(in, fft.Forward)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want := fft.DFT(in, fft.Forward)
		if e := fft.MaxError(got, want); e > 1e-6*float64(n) {
			t.Errorf("n=%d forward error %g", n, e)
		}
		back, err := fw.Run(got, fft.Inverse)
		if err != nil {
			t.Fatal(err)
		}
		fft.Normalize(back)
		if e := fft.MaxError(back, in); e > 1e-6*float64(n) {
			t.Errorf("n=%d roundtrip error %g", n, e)
		}
	}
}

func TestHardwareHasNoInverse(t *testing.T) {
	in := make([]complex128, 64)
	if _, err := NewFFTA().Run(in, fft.Inverse); err == nil {
		t.Error("FFTA should reject inverse transforms")
	}
	if _, err := NewPowerQuad().Run(in, fft.Inverse); err == nil {
		t.Error("PowerQuad should reject inverse transforms")
	}
}

func TestDomainError(t *testing.T) {
	_, err := NewFFTA().Run(make([]complex128, 100), fft.Forward)
	de, ok := err.(*DomainError)
	if !ok {
		t.Fatalf("err = %v, want DomainError", err)
	}
	if de.N != 100 {
		t.Errorf("DomainError.N = %d", de.N)
	}
}

func TestSinglePrecisionRounding(t *testing.T) {
	// Hardware targets round through float32; FFTW (double library) does not.
	rng := rand.New(rand.NewSource(4))
	in := randComplex(rng, 64)
	hw, err := NewFFTA().Run(in, fft.Forward)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range hw {
		if complex128(complex64(v)) != v {
			t.Fatalf("FFTA output[%d] = %v carries more than float32 precision", i, v)
		}
	}
}

func TestAccelTimeMonotonic(t *testing.T) {
	for _, s := range Specs() {
		prev := 0.0
		for _, n := range []int{64, 256, 1024, 4096} {
			tm := s.Time(n)
			if tm <= prev {
				t.Errorf("%s: Time(%d) = %g not monotonic", s.Name, n, tm)
			}
			prev = tm
		}
		if s.Time(0) <= 0 {
			t.Errorf("%s: zero-length time should still cost overhead", s.Name)
		}
	}
}

func TestPlatformTime(t *testing.T) {
	c := interp.Counters{FloatOps: 1000, Loads: 500, Stores: 500}
	for _, p := range []Platform{CortexA5, CortexM33, I9Desktop, SharcDSP} {
		if p.Time(c) <= 0 {
			t.Errorf("%s: non-positive time", p.Name)
		}
	}
	// The desktop must be much faster than the M33 for the same work.
	if I9Desktop.Time(c) >= CortexM33.Time(c)/10 {
		t.Error("i9 should be >10x faster than M33 on identical counters")
	}
	// The DSP beats the A5 on float-heavy work (the fig. 10 baseline).
	if SharcDSP.Time(c) >= CortexA5.Time(c) {
		t.Error("SHARC DSP should beat Cortex-A5 on FFT-shaped work")
	}
}

func TestDSPOffloadHasHandshakeCost(t *testing.T) {
	var zero interp.Counters
	if DSPOffloadTime(zero) <= 0 {
		t.Error("offload handshake should cost time even for empty work")
	}
}

func TestHostFor(t *testing.T) {
	if HostFor("ffta").Name != "cortex-a5" ||
		HostFor("powerquad").Name != "cortex-m33" ||
		HostFor("fftw").Name != "i9-desktop" {
		t.Error("host mapping wrong")
	}
}

func TestParamByRole(t *testing.T) {
	fw := NewFFTWLib()
	if p := fw.ParamByRole(RoleDirection); p == nil || len(p.Values) != 2 {
		t.Error("fftw direction param missing or without value set")
	}
	if p := NewFFTA().ParamByRole(RoleDirection); p != nil {
		t.Error("ffta should have no direction param")
	}
	if p := NewFFTA().ParamByRole(RoleLength); p == nil || p.Name != "len" {
		t.Error("ffta length param wrong")
	}
}

// Sanity-check the calibration direction: a radix-2-shaped op count at
// n=1024 should run ~an order of magnitude faster on the FFTA than on the
// A5 (full calibration is validated end-to-end in the bench harness).
func TestCalibrationShape(t *testing.T) {
	n := 1024.0
	butterflies := n / 2 * math.Log2(n)
	c := interp.Counters{
		FloatOps: int64(10 * butterflies),
		IntOps:   int64(12 * butterflies),
		Loads:    int64(6 * butterflies),
		Stores:   int64(4 * butterflies),
		Branches: int64(2 * butterflies),
	}
	sw := CortexA5.Time(c)
	hw := NewFFTA().Time(1024)
	ratio := sw / hw
	if ratio < 2 || ratio > 200 {
		t.Errorf("FFTA speedup for typical radix-2 counters = %.1fx, outside sane band", ratio)
	}
}
