// Package accel models the three compilation targets of the paper's
// evaluation: the Analog Devices FFTA and NXP PowerQuad hardware
// accelerators, and an FFTW-like optimized software library. Each target
// is described by a Spec (the API surface and domain constraints binding
// synthesis works against), a functional simulator (what the "hardware"
// computes, including behavioral quirks like normalization), and a latency
// model (used by the evaluation harness; absolute values are synthetic,
// ratios are calibrated to the paper's reported speedups).
package accel

import (
	"fmt"

	"facc/internal/fft"
	"facc/internal/minic"
	"facc/internal/obs"
)

// Role classifies an accelerator API parameter for binding synthesis.
type Role int

// Parameter roles.
const (
	RoleInput     Role = iota // input complex array
	RoleOutput                // output complex array
	RoleLength                // element count of the arrays
	RoleDirection             // forward/inverse selector
	RoleFlags                 // planner/config flags with a fixed value set
)

func (r Role) String() string {
	switch r {
	case RoleInput:
		return "input"
	case RoleOutput:
		return "output"
	case RoleLength:
		return "length"
	case RoleDirection:
		return "direction"
	case RoleFlags:
		return "flags"
	default:
		return fmt.Sprintf("role(%d)", int(r))
	}
}

// Param is one parameter of the accelerator API.
type Param struct {
	Name string
	Type *minic.Type
	Role Role

	// Values lists the legal constant values for direction/flags
	// parameters; binding synthesis tries each (behavioral
	// specialization).
	Values []int64
}

// Spec describes a compilation target.
type Spec struct {
	Name     string // "ffta", "powerquad", "fftw"
	CallName string // function name emitted in adapters
	Params   []Param

	// Domain constraints (the range-check generator consumes these).
	MinN           int
	MaxN           int
	PowerOfTwoOnly bool

	// Behavioral quirks (behavioral synthesis bridges these).
	NormalizedOutput  bool // output is scaled by 1/N (FFTA quirk)
	BitReversedOutput bool
	HasDirection      bool
	InPlace           bool
	AlignmentBytes    int

	// Latency model: Time(n) = Overhead + PerPoint·n·log2(n), plus
	// Transfer·n for moving data on/off the device.
	OverheadSec     float64
	PerPointSec     float64
	TransferPerElem float64

	// Exec, when non-nil, replaces the built-in simulator as the
	// execution backend for Run. internal/faultinject installs decorated
	// chains here (fault injection → retry → circuit breaker) so the
	// synthesis pipeline exercises an unreliable platform without any
	// change to its call sites. Nil runs the simulator directly.
	Exec Runner

	// runs counts simulator invocations when observability is attached
	// (see Instrument); nil is a free no-op.
	runs *obs.Counter
}

// Instrument attaches a metrics registry to the spec: every Run bumps the
// per-target accel.runs.<name> counter. A nil registry detaches.
func (s *Spec) Instrument(reg *obs.Registry) {
	s.runs = reg.Counter("accel.runs." + s.Name)
}

// complexFloatStruct is the C-visible element type accelerator adapters
// traffic in: struct { float re, im; }.
var complexFloatStruct = &minic.Type{
	Kind:        minic.TStruct,
	StructName:  "float_complex",
	FromTypedef: true, // the emitted prelude typedefs it
	Fields: []minic.Field{
		{Name: "re", Type: minic.Float},
		{Name: "im", Type: minic.Float},
	},
}

// NewFFTA returns the Analog Devices FFTA spec: power-of-two lengths from
// 64 to 65536, out-of-place, 64-byte aligned buffers, normalized output.
func NewFFTA() *Spec {
	return &Spec{
		Name:     "ffta",
		CallName: "accel_cfft",
		Params: []Param{
			{Name: "input", Type: minic.PointerTo(complexFloatStruct), Role: RoleInput},
			{Name: "output", Type: minic.PointerTo(complexFloatStruct), Role: RoleOutput},
			{Name: "len", Type: minic.Int, Role: RoleLength},
		},
		MinN:             64,
		MaxN:             65536,
		PowerOfTwoOnly:   true,
		NormalizedOutput: true,
		AlignmentBytes:   64,
		OverheadSec:      30e-6,
		PerPointSec:      1.7e-8,
		TransferPerElem:  2.0e-9,
	}
}

// NewPowerQuad returns the NXP PowerQuad spec: power-of-two lengths from
// 16 to 4096, out-of-place, un-normalized.
func NewPowerQuad() *Spec {
	return &Spec{
		Name:     "powerquad",
		CallName: "pq_cfft",
		Params: []Param{
			{Name: "input", Type: minic.PointerTo(complexFloatStruct), Role: RoleInput},
			{Name: "output", Type: minic.PointerTo(complexFloatStruct), Role: RoleOutput},
			{Name: "length", Type: minic.Int, Role: RoleLength},
		},
		MinN:            16,
		MaxN:            4096,
		PowerOfTwoOnly:  true,
		OverheadSec:     70e-6,
		PerPointSec:     0.9e-7,
		TransferPerElem: 4.0e-9,
	}
}

// FFTW direction constants (the library's own convention).
const (
	FFTWForward  = -1
	FFTWBackward = 1
)

// NewFFTWLib returns the FFTW-style optimized-library spec. It is wider
// than the hardware APIs: any length, a direction parameter, and planner
// flags — which is why it produces more binding candidates (paper Fig. 16).
func NewFFTWLib() *Spec {
	return &Spec{
		Name:     "fftw",
		CallName: "fftw_call",
		Params: []Param{
			{Name: "acc_input", Type: minic.PointerTo(complexFloatStruct), Role: RoleInput},
			{Name: "acc_output", Type: minic.PointerTo(complexFloatStruct), Role: RoleOutput},
			{Name: "length", Type: minic.Int, Role: RoleLength},
			{Name: "direction", Type: minic.Int, Role: RoleDirection,
				Values: []int64{FFTWForward, FFTWBackward}},
			{Name: "flags", Type: minic.Int, Role: RoleFlags,
				Values: []int64{0, 64}}, // FFTW_MEASURE, FFTW_ESTIMATE
		},
		MinN:            1,
		MaxN:            1 << 24,
		HasDirection:    true,
		OverheadSec:     1.4e-6,
		PerPointSec:     1.6e-9,
		TransferPerElem: 0,
	}
}

// Specs returns all three targets in evaluation order.
func Specs() []*Spec {
	return []*Spec{NewFFTA(), NewPowerQuad(), NewFFTWLib()}
}

// SpecByName looks a target up by name.
func SpecByName(name string) (*Spec, error) {
	for _, s := range Specs() {
		if s.Name == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("accel: unknown target %q (want ffta, powerquad, or fftw)", name)
}

// Supports reports whether the target accepts length n.
func (s *Spec) Supports(n int) bool {
	if n < s.MinN || n > s.MaxN {
		return false
	}
	if s.PowerOfTwoOnly && !fft.IsPowerOfTwo(n) {
		return false
	}
	return true
}

// ParamByRole returns the first parameter with the given role, or nil.
func (s *Spec) ParamByRole(r Role) *Param {
	for i := range s.Params {
		if s.Params[i].Role == r {
			return &s.Params[i]
		}
	}
	return nil
}

// DomainDescription renders the domain constraint for documentation and
// generated range checks.
func (s *Spec) DomainDescription() string {
	if s.PowerOfTwoOnly {
		return fmt.Sprintf("powers of two in [%d, %d]", s.MinN, s.MaxN)
	}
	return fmt.Sprintf("any length in [%d, %d]", s.MinN, s.MaxN)
}
