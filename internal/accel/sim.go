package accel

import (
	"fmt"
	"math"

	"facc/internal/fft"
)

// Runner executes one transform on behalf of a target — the seam where
// fault-injection, retry and circuit-breaker decorators wrap the built-in
// simulator (see internal/faultinject).
type Runner interface {
	Run(input []complex128, dir fft.Direction) ([]complex128, error)
}

// RunnerFunc adapts a function to the Runner interface.
type RunnerFunc func(input []complex128, dir fft.Direction) ([]complex128, error)

// Run calls f.
func (f RunnerFunc) Run(input []complex128, dir fft.Direction) ([]complex128, error) {
	return f(input, dir)
}

// Run executes the target's transform: through Exec when a decorated
// execution chain is installed, else directly on the built-in simulator.
func (s *Spec) Run(input []complex128, dir fft.Direction) ([]complex128, error) {
	s.runs.Inc()
	if s.Exec != nil {
		return s.Exec.Run(input, dir)
	}
	return s.Simulate(input, dir)
}

// Simulate executes the target's transform functionally: the complex
// spectrum the real device would produce, including its behavioral quirks
// (normalization, bit-reversed output). dir is the logical direction the
// caller wants; targets without a direction parameter only do Forward.
// This is the fault-free reference path — faultinject's circuit breaker
// degrades to it (via the pure-software internal/fft) when the decorated
// platform is too unhealthy to use.
func (s *Spec) Simulate(input []complex128, dir fft.Direction) ([]complex128, error) {
	n := len(input)
	if !s.Supports(n) {
		return nil, &DomainError{Spec: s, N: n}
	}
	if dir == fft.Inverse && !s.HasDirection {
		return nil, fmt.Errorf("accel: %s has no inverse transform", s.Name)
	}
	var out []complex128
	if s.PowerOfTwoOnly || fft.IsPowerOfTwo(n) {
		out = make([]complex128, n)
		copy(out, input)
		if err := fft.Radix2(out, dir); err != nil {
			return nil, err
		}
	} else {
		out = fft.MixedRadix(input, dir)
	}
	// Hardware runs single-precision datapaths; round through complex64
	// like the real device would.
	if s.Name != "fftw" {
		for i := range out {
			out[i] = complex128(complex64(out[i]))
		}
	}
	if s.NormalizedOutput {
		fft.Normalize(out)
	}
	if s.BitReversedOutput {
		fft.BitReverse(out)
	}
	return out, nil
}

// DomainError reports an input outside the accelerator's supported range.
type DomainError struct {
	Spec *Spec
	N    int
}

func (e *DomainError) Error() string {
	return fmt.Sprintf("accel: %s does not support length %d (supports %s)",
		e.Spec.Name, e.N, e.Spec.DomainDescription())
}

// Time returns the modeled wall-clock seconds for one length-n transform,
// including offload overhead and data transfer.
func (s *Spec) Time(n int) float64 {
	if n < 1 {
		return s.OverheadSec
	}
	work := float64(n) * math.Log2(math.Max(float64(n), 2))
	return s.OverheadSec + s.PerPointSec*work + s.TransferPerElem*float64(2*n)
}
