package accel

import (
	"fmt"
	"math"

	"facc/internal/fft"
)

// Run executes the target's transform functionally: the complex spectrum
// the real device would produce, including its behavioral quirks
// (normalization, bit-reversed output). dir is the logical direction the
// caller wants; targets without a direction parameter only do Forward.
func (s *Spec) Run(input []complex128, dir fft.Direction) ([]complex128, error) {
	s.runs.Inc()
	n := len(input)
	if !s.Supports(n) {
		return nil, &DomainError{Spec: s, N: n}
	}
	if dir == fft.Inverse && !s.HasDirection {
		return nil, fmt.Errorf("accel: %s has no inverse transform", s.Name)
	}
	var out []complex128
	if s.PowerOfTwoOnly || fft.IsPowerOfTwo(n) {
		out = make([]complex128, n)
		copy(out, input)
		if err := fft.Radix2(out, dir); err != nil {
			return nil, err
		}
	} else {
		out = fft.MixedRadix(input, dir)
	}
	// Hardware runs single-precision datapaths; round through complex64
	// like the real device would.
	if s.Name != "fftw" {
		for i := range out {
			out[i] = complex128(complex64(out[i]))
		}
	}
	if s.NormalizedOutput {
		fft.Normalize(out)
	}
	if s.BitReversedOutput {
		fft.BitReverse(out)
	}
	return out, nil
}

// DomainError reports an input outside the accelerator's supported range.
type DomainError struct {
	Spec *Spec
	N    int
}

func (e *DomainError) Error() string {
	return fmt.Sprintf("accel: %s does not support length %d (supports %s)",
		e.Spec.Name, e.N, e.Spec.DomainDescription())
}

// Time returns the modeled wall-clock seconds for one length-n transform,
// including offload overhead and data transfer.
func (s *Spec) Time(n int) float64 {
	if n < 1 {
		return s.OverheadSec
	}
	work := float64(n) * math.Log2(math.Max(float64(n), 2))
	return s.OverheadSec + s.PerPointSec*work + s.TransferPerElem*float64(2*n)
}
