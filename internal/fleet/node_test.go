package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"facc"
	"facc/internal/obs"
	"facc/internal/server"
	"facc/internal/store"
)

// countingCompile is the test CompileFunc: it counts calls, optionally
// parks on a gate, records the trace ID it ran under, and produces a
// deterministic adapter from the source — so adapters from different
// replicas are byte-comparable.
type countingCompile struct {
	mu      sync.Mutex
	calls   int
	traces  []string
	entered chan struct{}
	release chan struct{} // nil means never park
}

func (c *countingCompile) compile(ctx context.Context, req facc.CompileRequest) (server.CompileResult, error) {
	c.mu.Lock()
	c.calls++
	c.traces = append(c.traces, obs.TraceIDFrom(ctx))
	release := c.release
	c.mu.Unlock()
	if c.entered != nil {
		c.entered <- struct{}{}
	}
	if release != nil {
		select {
		case <-release:
		case <-ctx.Done():
			return server.CompileResult{}, ctx.Err()
		}
	}
	return server.CompileResult{AdapterC: "/* adapter */ " + req.Source, Function: "fft"}, nil
}

func (c *countingCompile) callCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls
}

func (c *countingCompile) sawTrace(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, t := range c.traces {
		if t == id {
			return true
		}
	}
	return false
}

// testNode is one in-process replica: fleet node + wrapped compile
// server + its own observability stack, listening on a real socket.
type testNode struct {
	id      string
	url     string
	host    string
	node    *Node
	srv     *server.Server
	tracer  *obs.Tracer
	journal *obs.Journal
	ledger  *obs.Ledger
	compile *countingCompile
	ts      *httptest.Server
}

// newTestFleet builds n replicas (IDs n0..n{n-1}) that all share the
// fault transport and a common static peer table. mutate, when non-nil,
// tweaks each node's configs before construction.
func newTestFleet(t *testing.T, n int, tr *FaultTransport, mutate func(i int, fc *Config, sc *server.Config)) []*testNode {
	t.Helper()
	nodes := make([]*testNode, n)
	peers := map[string]string{}
	for i := 0; i < n; i++ {
		ts := httptest.NewUnstartedServer(nil)
		id := fmt.Sprintf("n%d", i)
		url := "http://" + ts.Listener.Addr().String()
		nodes[i] = &testNode{id: id, url: url, host: ts.Listener.Addr().String(), ts: ts}
		peers[id] = url
	}
	for i, tn := range nodes {
		tn.tracer = obs.New()
		tn.journal = obs.NewJournal()
		tn.ledger = obs.NewLedger()
		tn.compile = &countingCompile{}
		sc := server.Config{
			QueueDepth:     16,
			Workers:        2,
			RequestTimeout: 10 * time.Second,
			Tracer:         tn.tracer,
			Journal:        tn.journal,
			Ledger:         tn.ledger,
			Compile:        tn.compile.compile,
		}
		fc := Config{
			Self:             tn.id,
			Peers:            peers,
			Tracer:           tn.tracer,
			Transport:        tr,
			ProbeInterval:    25 * time.Millisecond,
			FailureThreshold: 2,
			HedgeDelay:       5 * time.Millisecond,
			RetryAttempts:    2,
			RetryBaseDelay:   time.Millisecond,
			Seed:             int64(i + 1),
		}
		if mutate != nil {
			mutate(i, &fc, &sc)
		}
		tn.srv = server.New(sc)
		fc.Local = tn.srv
		tn.node = New(fc)
		tn.ts.Config.Handler = tn.node.Handler()
		tn.ts.Start()
		t.Cleanup(func() {
			tn.node.Close()
			tn.ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			tn.srv.Drain(ctx)
			cancel()
		})
	}
	return nodes
}

func fleetReq(src string) facc.CompileRequest {
	return facc.CompileRequest{Name: "t.c", Source: src, Target: "ffta"}
}

func postCompile(t *testing.T, url string, req facc.CompileRequest, query string, hdr map[string]string) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, url+"/compile"+query, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		hreq.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// jobWire mirrors the server's job JSON for decoding.
type jobWire struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	Key      string `json:"key"`
	Trace    string `json:"trace"`
	AdapterC string `json:"adapter_c"`
	Cached   bool   `json:"cached"`
}

func decodeWire(t *testing.T, resp *http.Response) jobWire {
	t.Helper()
	defer resp.Body.Close()
	var v jobWire
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// findNode returns the test node with the given peer ID.
func findNode(t *testing.T, nodes []*testNode, id string) *testNode {
	t.Helper()
	for _, tn := range nodes {
		if tn.id == id {
			return tn
		}
	}
	t.Fatalf("no node %q", id)
	return nil
}

// TestForwardToOwner: a request entering at a non-owner is forwarded to
// the digest's ring owner and compiled exactly once, there.
func TestForwardToOwner(t *testing.T) {
	tr := NewFaultTransport(nil, 1)
	nodes := newTestFleet(t, 3, tr, nil)

	req := fleetReq("int fft(int x) { return x; }")
	key := req.Digest()
	owner := nodes[0].node.Ring().Owner(key)
	var entry *testNode
	for _, tn := range nodes {
		if tn.id != owner {
			entry = tn
			break
		}
	}

	resp := postCompile(t, entry.url, req, "?wait=1", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get(PeerHeader); got != owner {
		t.Fatalf("%s = %q, want owner %q", PeerHeader, got, owner)
	}
	job := decodeWire(t, resp)
	if job.State != "done" || !strings.Contains(job.AdapterC, "adapter") {
		t.Fatalf("job = %+v, want done with adapter", job)
	}
	for _, tn := range nodes {
		want := 0
		if tn.id == owner {
			want = 1
		}
		if got := tn.compile.callCount(); got != want {
			t.Errorf("node %s compiled %d times, want %d", tn.id, got, want)
		}
	}
	if v := entry.tracer.Metrics().Counter("fleet.forwarded").Value(); v != 1 {
		t.Errorf("entry fleet.forwarded = %d, want 1", v)
	}
	ownerNode := findNode(t, nodes, owner)
	if v := ownerNode.tracer.Metrics().Counter("fleet.handled_local").Value(); v != 1 {
		t.Errorf("owner fleet.handled_local = %d, want 1", v)
	}
}

// TestRetryAfterPropagation (satellite): a forwarded 429 carries the
// owner's Retry-After verbatim — not one re-derived by the forwarder,
// whose own queue EMA knows nothing about the owner's backlog.
func TestRetryAfterPropagation(t *testing.T) {
	// The "owner" is a stub replica whose compile endpoint always sheds
	// with a distinctive Retry-After no healthy forwarder would derive.
	stub := http.NewServeMux()
	stub.HandleFunc("/compile", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "42")
		http.Error(w, "queue full: shedding", http.StatusTooManyRequests)
	})
	stub.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	})
	ownerTS := httptest.NewServer(stub)
	defer ownerTS.Close()

	peers := map[string]string{"owner": ownerTS.URL}
	router := New(Config{
		Self:  "router", // not in the table: pure router, owner owns all keys
		Peers: peers,
		LocalHandler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			t.Error("router compiled locally; request should have been forwarded")
			http.Error(w, "unexpected", http.StatusInternalServerError)
		}),
		ProbeInterval: time.Hour, // no probes needed; table starts healthy
	})
	defer router.Close()
	routerTS := httptest.NewServer(router.Handler())
	defer routerTS.Close()

	resp := postCompile(t, routerTS.URL, fleetReq("int f(int x) { return x; }"), "", nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "42" {
		t.Fatalf("Retry-After = %q, want the owner's %q", got, "42")
	}
	if got := resp.Header.Get(PeerHeader); got != "owner" {
		t.Fatalf("%s = %q, want %q", PeerHeader, got, "owner")
	}
}

// TestLoopGuard (satellite): a hop count above MaxHops is rejected with
// 508, and a malformed hop header with 400 — loops die fast instead of
// orbiting the ring.
func TestLoopGuard(t *testing.T) {
	tr := NewFaultTransport(nil, 1)
	nodes := newTestFleet(t, 1, tr, nil)

	resp := postCompile(t, nodes[0].url, fleetReq("int f(int x) { return x; }"), "",
		map[string]string{ForwardedHeader: "99"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusLoopDetected {
		t.Fatalf("hops=99: status = %d, want 508", resp.StatusCode)
	}
	if v := nodes[0].tracer.Metrics().Counter("fleet.loop_rejected").Value(); v != 1 {
		t.Fatalf("fleet.loop_rejected = %d, want 1", v)
	}

	resp = postCompile(t, nodes[0].url, fleetReq("int f(int x) { return x; }"), "",
		map[string]string{ForwardedHeader: "banana"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed hops: status = %d, want 400", resp.StatusCode)
	}

	if nodes[0].compile.callCount() != 0 {
		t.Fatal("rejected requests must not compile")
	}
}

// TestTracePropagationAcrossForward (satellite): one client-supplied
// trace ID joins the observability streams on BOTH replicas of a
// forwarded hop — the forward span on the entry node, and the compile
// span, journal events and ledger charges on the owner.
func TestTracePropagationAcrossForward(t *testing.T) {
	tr := NewFaultTransport(nil, 1)
	nodes := newTestFleet(t, 2, tr, nil)

	req := fleetReq("int fft2(int x) { return x + 1; }")
	key := req.Digest()
	owner := nodes[0].node.Ring().Owner(key)
	ownerNode := findNode(t, nodes, owner)
	var entry *testNode
	for _, tn := range nodes {
		if tn.id != owner {
			entry = tn
		}
	}
	const trace = "fleet-trace-test-0001"
	resp := postCompile(t, entry.url, req, "?wait=1", map[string]string{"X-Facc-Trace": trace})
	job := decodeWire(t, resp)
	if resp.StatusCode != http.StatusOK || job.State != "done" {
		t.Fatalf("status=%d job=%+v, want 200/done", resp.StatusCode, job)
	}
	if job.Trace != trace {
		t.Fatalf("job trace = %q, want %q", job.Trace, trace)
	}
	if got := resp.Header.Get("X-Facc-Trace"); got != trace {
		t.Fatalf("response trace header = %q, want %q", got, trace)
	}

	// The owner's compile ran under the same trace ID.
	if !ownerNode.compile.sawTrace(trace) {
		t.Fatalf("owner compile did not see trace %q (saw %v)", trace, ownerNode.compile.traces)
	}
	// The entry node's forward span carries the trace and names the peer.
	spans := entry.tracer.TraceSpans(trace)
	foundForward := false
	for _, s := range spans {
		if s.Name == "fleet.forward" && s.Attr("peer") == owner {
			foundForward = true
		}
	}
	if !foundForward {
		t.Fatalf("entry node has no fleet.forward span under trace %q (have %d spans)", trace, len(spans))
	}
	// Journal and ledger entries recorded under the trace on the owner
	// join the same stream: write one each the way the pipeline would,
	// scoped by the propagated ID, and read them back by trace.
	ownerNode.journal.Scoped(trace).Record(obs.JournalEvent{Kind: "test.synth", Function: "fft2"})
	ownerNode.ledger.Scoped(trace).ChargeTests("fft2", "ffta", "cand0", 3)
	if evs := ownerNode.journal.TraceEvents(trace); len(evs) == 0 {
		t.Fatal("owner journal has no events under the propagated trace")
	}
	if ents := ownerNode.ledger.TraceEntries(trace); len(ents) == 0 {
		t.Fatal("owner ledger has no entries under the propagated trace")
	}
}

// TestReadyzNoHealthyPeers (satellite): a node whose live ring is empty
// reports not-ready, and recovers when a peer comes back.
func TestReadyzNoHealthyPeers(t *testing.T) {
	tr := NewFaultTransport(nil, 1)
	nodes := newTestFleet(t, 1, tr, nil) // the one real replica, peer "n0"

	localOK := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ready")
	})
	router := New(Config{
		Self:             "router", // not in the table: every shard range lives on n0
		Peers:            map[string]string{"n0": nodes[0].url},
		LocalHandler:     localOK,
		Transport:        tr,
		ProbeInterval:    20 * time.Millisecond,
		FailureThreshold: 2,
	})
	defer router.Close()
	rts := httptest.NewServer(router.Handler())
	defer rts.Close()

	readyz := func() int {
		resp, err := http.Get(rts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	waitFor(t, 3*time.Second, "initial ready", func() bool { return readyz() == http.StatusOK })

	// Partition the only peer: the ring empties and readyz flips.
	tr.SetRule(nodes[0].host, LinkRule{Down: true})
	waitFor(t, 3*time.Second, "not-ready with zero healthy peers", func() bool {
		return readyz() == http.StatusServiceUnavailable
	})
	if v := router.reg.Counter("fleet.readyz_no_peers").Value(); v == 0 {
		t.Fatal("fleet.readyz_no_peers did not count")
	}

	// Heal the link: the next probe re-admits the peer.
	tr.SetRule(nodes[0].host, LinkRule{})
	waitFor(t, 3*time.Second, "ready after recovery", func() bool { return readyz() == http.StatusOK })
}

// TestSingleflightDedupUnderFailover (satellite): the digest's owner
// dies mid-fleet; concurrent same-digest requests entering at both
// survivors converge on the new owner, dedup to exactly ONE synthesis
// fleet-wide, and return byte-identical adapters.
func TestSingleflightDedupUnderFailover(t *testing.T) {
	tr := NewFaultTransport(nil, 1)
	release := make(chan struct{})
	nodes := newTestFleet(t, 3, tr, func(i int, fc *Config, sc *server.Config) {
		fc.ProbeInterval = 25 * time.Millisecond
	})
	for _, tn := range nodes {
		tn.compile.release = release
		tn.compile.entered = make(chan struct{}, 8)
	}

	req := fleetReq("int fft3(int x) { return 3 * x; }")
	key := req.Digest()
	owner := nodes[0].node.Ring().Owner(key)
	ownerNode := findNode(t, nodes, owner)
	var survivors []*testNode
	for _, tn := range nodes {
		if tn.id != owner {
			survivors = append(survivors, tn)
		}
	}

	// Kill the owner: close its socket AND hard-partition its address,
	// then wait for both survivors to eject it from their rings.
	ownerNode.node.Close()
	ownerNode.ts.Close()
	tr.SetRule(ownerNode.host, LinkRule{Down: true})
	for _, s := range survivors {
		s := s
		waitFor(t, 5*time.Second, s.id+" ejecting dead owner", func() bool {
			return !s.node.Ring().IsHealthy(owner)
		})
	}
	newOwner := survivors[0].node.Ring().Owner(key)
	if got := survivors[1].node.Ring().Owner(key); got != newOwner {
		t.Fatalf("survivors disagree on new owner: %q vs %q", newOwner, got)
	}

	// Fire the same digest at BOTH survivors concurrently. (Raw HTTP in
	// the goroutines: t.Fatal may only be called from the test goroutine,
	// so errors travel back through the channel.)
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		status int
		job    jobWire
		err    error
	}
	results := make(chan result, 2)
	for _, s := range survivors {
		s := s
		go func() {
			resp, err := http.Post(s.url+"/compile?wait=1", "application/json", bytes.NewReader(body))
			if err != nil {
				results <- result{err: err}
				return
			}
			defer resp.Body.Close()
			var jw jobWire
			if derr := json.NewDecoder(resp.Body).Decode(&jw); derr != nil {
				results <- result{status: resp.StatusCode, err: derr}
				return
			}
			results <- result{status: resp.StatusCode, job: jw}
		}()
	}

	// Exactly one compile starts; give the second request time to attach
	// to the in-flight job, then let it finish.
	newOwnerNode := findNode(t, nodes, newOwner)
	select {
	case <-newOwnerNode.compile.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("no compile started on the new owner")
	}
	time.Sleep(150 * time.Millisecond)
	close(release)

	var got []result
	for i := 0; i < 2; i++ {
		select {
		case r := <-results:
			got = append(got, r)
		case <-time.After(10 * time.Second):
			t.Fatal("timed out waiting for responses")
		}
	}
	for _, r := range got {
		if r.err != nil {
			t.Fatalf("request failed: %v", r.err)
		}
		if r.status != http.StatusOK || r.job.State != "done" {
			t.Fatalf("result %+v, want 200/done", r)
		}
		if r.job.AdapterC == "" {
			t.Fatal("empty adapter")
		}
	}
	if got[0].job.AdapterC != got[1].job.AdapterC {
		t.Fatalf("adapters differ across entry points:\n%q\nvs\n%q",
			got[0].job.AdapterC, got[1].job.AdapterC)
	}
	total := 0
	for _, tn := range nodes {
		total += tn.compile.callCount()
	}
	if total != 1 {
		t.Fatalf("fleet compiled %d times, want exactly 1 (singleflight across failover)", total)
	}
	if findNode(t, nodes, newOwner).compile.callCount() != 1 {
		t.Fatal("the single compile did not run on the new ring owner")
	}
}

// TestHedgedCacheHit: a digest already cached on the owner is served by
// the entry node's cache probe — no forwarded POST, no compile.
func TestHedgedCacheHit(t *testing.T) {
	tr := NewFaultTransport(nil, 1)
	nodes := newTestFleet(t, 3, tr, func(i int, fc *Config, sc *server.Config) {
		st, err := store.Open(t.TempDir(), obs.New().Metrics())
		if err != nil {
			t.Fatalf("store.Open: %v", err)
		}
		t.Cleanup(func() { st.Close() })
		sc.Store = st
	})

	req := fleetReq("int fft4(int x) { return 4 * x; }")
	key := req.Digest()
	owner := nodes[0].node.Ring().Owner(key)
	ownerNode := findNode(t, nodes, owner)
	var entry *testNode
	for _, tn := range nodes {
		if tn.id != owner {
			entry = tn
			break
		}
	}

	// Seed the adapter into the owner's store directly (as if an earlier
	// request had compiled it), then enter at a non-owner.
	resp := postCompile(t, ownerNode.url, req, "?wait=1", nil)
	job := decodeWire(t, resp)
	if resp.StatusCode != http.StatusOK || job.State != "done" {
		t.Fatalf("seed compile: status=%d job=%+v", resp.StatusCode, job)
	}

	resp = postCompile(t, entry.url, req, "?wait=1", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if resp.Header.Get("X-Facc-Cache") != "hit" {
		t.Fatalf("X-Facc-Cache = %q, want hit", resp.Header.Get("X-Facc-Cache"))
	}
	hit := decodeWire(t, resp)
	if hit.AdapterC != job.AdapterC {
		t.Fatalf("cached adapter differs:\n%q\nvs\n%q", hit.AdapterC, job.AdapterC)
	}
	if v := entry.tracer.Metrics().Counter("fleet.cache_probe_hits").Value(); v != 1 {
		t.Errorf("fleet.cache_probe_hits = %d, want 1", v)
	}
	// The whole fleet compiled once (the seed); the hedged read added none.
	total := 0
	for _, tn := range nodes {
		total += tn.compile.callCount()
	}
	if total != 1 {
		t.Fatalf("fleet compiled %d times, want 1", total)
	}
}

// TestTenantRateLimit: a hot tenant is shed at the entry node with 429 +
// Retry-After while other tenants keep flowing.
func TestTenantRateLimit(t *testing.T) {
	tr := NewFaultTransport(nil, 1)
	nodes := newTestFleet(t, 1, tr, func(i int, fc *Config, sc *server.Config) {
		fc.TenantRate = 1
		fc.TenantBurst = 1
	})

	mk := func(i int) facc.CompileRequest {
		return fleetReq(fmt.Sprintf("int f%d(int x) { return x; }", i))
	}
	resp := postCompile(t, nodes[0].url, mk(0), "?wait=1", map[string]string{TenantHeader: "hot"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request: status = %d, want 200", resp.StatusCode)
	}
	resp = postCompile(t, nodes[0].url, mk(1), "", map[string]string{TenantHeader: "hot"})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request: status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 missing Retry-After")
	}
	if v := nodes[0].tracer.Metrics().Counter("fleet.ratelimited").Value(); v != 1 {
		t.Fatalf("fleet.ratelimited = %d, want 1", v)
	}
	// A different tenant has its own bucket.
	resp = postCompile(t, nodes[0].url, mk(2), "?wait=1", map[string]string{TenantHeader: "cold"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("other tenant: status = %d, want 200", resp.StatusCode)
	}
}

// TestForwardFailoverToNextOwner: the first owner is partitioned (but
// the entry node hasn't probed it dead yet) — the forward fails, feeds
// the breaker, and the request fails over down the chain, still
// compiling exactly once.
func TestForwardFailoverToNextOwner(t *testing.T) {
	tr := NewFaultTransport(nil, 1)
	nodes := newTestFleet(t, 3, tr, func(i int, fc *Config, sc *server.Config) {
		fc.ProbeInterval = time.Hour // only forward errors feed the breakers
		fc.RetryAttempts = 1
	})

	req := fleetReq("int fft5(int x) { return 5 * x; }")
	key := req.Digest()
	owners := nodes[0].node.Ring().Owners(key, 0)
	entry := findNode(t, nodes, owners[2]) // enter at the chain's tail
	dead := findNode(t, nodes, owners[0])
	tr.SetRule(dead.host, LinkRule{Down: true})

	resp := postCompile(t, entry.url, req, "?wait=1", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	job := decodeWire(t, resp)
	if job.State != "done" {
		t.Fatalf("job = %+v, want done", job)
	}
	if dead.compile.callCount() != 0 {
		t.Fatal("partitioned owner compiled")
	}
	total := 0
	for _, tn := range nodes {
		total += tn.compile.callCount()
	}
	if total != 1 {
		t.Fatalf("fleet compiled %d times, want 1", total)
	}
	if v := entry.tracer.Metrics().Counter("fleet.forward_failovers").Value(); v == 0 {
		t.Fatal("no failover counted")
	}
}
