package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"facc"
	"facc/internal/obs"
	"facc/internal/server"
)

// ForwardedHeader carries the hop count of a relayed compile request.
// Replicas trust it (the fleet is an internal mesh); a request whose
// count exceeds MaxHops is rejected as a routing loop — ring views can
// disagree for a probe interval after a peer dies, and the guard turns a
// potential forwarding orbit into a fast, retryable error.
const ForwardedHeader = "X-Facc-Forwarded"

// TenantHeader names the tenant a request is billed to for rate
// limiting. Absent means the anonymous tenant.
const TenantHeader = "X-Facc-Tenant"

// PeerHeader is stamped on relayed responses with the replica ID that
// actually served the request, so a client holding a /jobs/{id} URL
// knows which replica it lives on.
const PeerHeader = "X-Facc-Peer"

// Config assembles a fleet Node around one local compile server.
type Config struct {
	// Self is this replica's peer ID. It normally appears in Peers; a
	// node whose ID is absent from the table is a pure router that owns
	// no shard range (it forwards everything and synthesizes locally
	// only as a last resort).
	Self string
	// Peers maps peer ID to base URL ("http://host:port"). The table is
	// static per process — flags or a config file — with health as the
	// only dynamic part; a dead peer is ejected from the ring, not from
	// the table, so it can come back.
	Peers map[string]string
	// Local is the wrapped single-node compile server (required).
	Local *server.Server
	// LocalHandler overrides Local.Handler() (tests).
	LocalHandler http.Handler
	// Tracer supplies the metrics registry and forward spans; it should
	// be the same tracer the local server uses, so /status and /metrics
	// show one process. Required (New creates one when nil).
	Tracer *obs.Tracer
	// Transport carries forwards, hedged cache probes and health probes.
	// The chaos harness injects partitions here. Default
	// http.DefaultTransport.
	Transport http.RoundTripper

	// VNodes is the virtual-node count per peer (default 64).
	VNodes int
	// MaxHops bounds relay chains (default 3): a request arriving with
	// X-Facc-Forwarded > MaxHops is rejected with 508.
	MaxHops int
	// ProbeInterval is the health-probe period (default 1s). Rebalance
	// after a peer death completes within FailureThreshold intervals.
	ProbeInterval time.Duration
	// FailureThreshold is the consecutive-failure count (probe misses +
	// forward errors) that ejects a peer from the ring (default 3).
	FailureThreshold int
	// ForwardTimeout bounds one forwarded attempt (default 2m, matching
	// the local request timeout's order of magnitude).
	ForwardTimeout time.Duration
	// HedgeDelay is how long the hedged cache read waits for the owner
	// before also asking the next replica (default 20ms).
	HedgeDelay time.Duration
	// CacheProbeTimeout bounds the whole hedged cache lookup (default
	// 250ms) — a cache probe is an optimization and must never cost a
	// visible fraction of a compile.
	CacheProbeTimeout time.Duration
	// RetryAttempts is the per-peer forward attempt count including the
	// first (default 2). Retries beyond the first attempt also need a
	// token from the global retry budget.
	RetryAttempts int
	// RetryBaseDelay seeds the jittered backoff between forward attempts
	// (default 10ms, doubling, full jitter).
	RetryBaseDelay time.Duration
	// RetryBudgetPerSec / RetryBudgetBurst shape the node-global retry
	// budget (defaults 8/s, burst 16).
	RetryBudgetPerSec float64
	RetryBudgetBurst  float64
	// TenantRate / TenantBurst shape the per-tenant token buckets
	// (requests/sec and burst); rate <= 0 disables rate limiting.
	TenantRate  float64
	TenantBurst float64
	// Seed fixes the retry-jitter stream (0 means 1).
	Seed int64
	// OnPeerHealth, when non-nil, observes every health transition
	// (tests, logs). Called outside locks.
	OnPeerHealth func(id string, healthy bool)
}

// Node is one fleet replica: the local compile server plus the ring,
// health view, forwarding and admission policies. Create with New,
// expose Handler, stop with Close.
type Node struct {
	cfg   Config
	reg   *obs.Registry
	ring  *Ring
	local http.Handler

	breakers map[string]*peerBreaker
	peerIDs  []string // sorted table order, for stable snapshots

	limiter *TenantLimiter
	budget  *RetryBudget
	client  *http.Client
	prober  *prober

	rngMu sync.Mutex
	rng   *rand.Rand

	closeOnce sync.Once
}

// New builds the node and starts its health prober.
func New(cfg Config) *Node {
	if cfg.Tracer == nil {
		cfg.Tracer = obs.New()
	}
	if cfg.Transport == nil {
		cfg.Transport = http.DefaultTransport
	}
	if cfg.MaxHops <= 0 {
		cfg.MaxHops = 3
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = time.Second
	}
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = 3
	}
	if cfg.ForwardTimeout <= 0 {
		cfg.ForwardTimeout = 2 * time.Minute
	}
	if cfg.HedgeDelay <= 0 {
		cfg.HedgeDelay = 20 * time.Millisecond
	}
	if cfg.CacheProbeTimeout <= 0 {
		cfg.CacheProbeTimeout = 250 * time.Millisecond
	}
	if cfg.RetryAttempts <= 0 {
		cfg.RetryAttempts = 2
	}
	if cfg.RetryBaseDelay <= 0 {
		cfg.RetryBaseDelay = 10 * time.Millisecond
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}

	ids := make([]string, 0, len(cfg.Peers))
	for id := range cfg.Peers {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	n := &Node{
		cfg:      cfg,
		reg:      cfg.Tracer.Metrics(),
		ring:     NewRing(ids, cfg.VNodes),
		breakers: map[string]*peerBreaker{},
		peerIDs:  ids,
		limiter:  NewTenantLimiter(cfg.TenantRate, cfg.TenantBurst),
		budget:   NewRetryBudget(cfg.RetryBudgetPerSec, cfg.RetryBudgetBurst),
		client:   &http.Client{Transport: cfg.Transport},
		rng:      rand.New(rand.NewSource(seed)),
	}
	n.local = cfg.LocalHandler
	if n.local == nil && cfg.Local != nil {
		n.local = cfg.Local.Handler()
	}
	for _, id := range ids {
		if id == cfg.Self {
			continue
		}
		n.breakers[id] = &peerBreaker{id: id, threshold: cfg.FailureThreshold, healthy: true}
		n.reg.Gauge("fleet.peer_healthy." + id).Set(1)
	}
	n.reg.Gauge("fleet.peers").Set(float64(len(ids)))
	n.reg.Gauge("fleet.peers_healthy").Set(float64(n.ring.Healthy()))
	n.reg.Gauge("fleet.retry_budget").Set(n.budget.Remaining())

	n.prober = newProber(n, cfg.ProbeInterval)
	go n.prober.run()
	return n
}

// Close stops the health prober. The wrapped server is not drained —
// the owner does that (the shutdown order is: stop admitting at the
// fleet layer by closing listeners, then drain the local server).
func (n *Node) Close() {
	n.closeOnce.Do(func() {
		close(n.prober.stop)
		<-n.prober.done
	})
}

// Ring exposes the live ring (tests, the chaos harness).
func (n *Node) Ring() *Ring { return n.ring }

// Handler returns the fleet mux: compile routing and fleet introspection
// layered over the local server's handler.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/compile", n.handleCompile)
	mux.HandleFunc("/readyz", n.handleReadyz)
	mux.HandleFunc("/fleet/peers", n.handlePeers)
	mux.HandleFunc("/fleet/owners", n.handleOwners)
	mux.Handle("/", n.local)
	return mux
}

// handlePeers serves the node's live fleet view.
func (n *Node) handlePeers(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(n.Snapshot())
}

// handleOwners answers "which replicas own this key" — the smoke test's
// and operators' view into the ring. ?key= takes a raw digest.
func (n *Node) handleOwners(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	if key == "" {
		http.Error(w, "missing ?key=<digest>", http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(map[string]any{
		"key":    key,
		"owners": n.ring.Owners(key, 0),
		"self":   n.cfg.Self,
	})
}

// handleReadyz is the fleet-aware readiness check. Beyond the local
// server's drain state, the node reports not-ready while the live ring
// is empty: with zero healthy peers covering the shard ranges the node
// could only shed or degrade every request, and a load balancer should
// stop routing to it. (A node that is itself a healthy table member
// keeps the ring non-empty, so this fires for router-style nodes and
// for draining replicas whose peers are all gone.)
func (n *Node) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if len(n.cfg.Peers) > 0 && n.servingPeers() == 0 {
		n.reg.Counter("fleet.readyz_no_peers").Inc()
		http.Error(w, "fleet: no healthy peers for any shard range", http.StatusServiceUnavailable)
		return
	}
	n.local.ServeHTTP(w, r)
}

// servingPeers counts live-ring members that can actually take work:
// self stops counting while the local server drains.
func (n *Node) servingPeers() int {
	healthy := n.ring.Healthy()
	if n.ring.IsHealthy(n.cfg.Self) && n.cfg.Local != nil && n.cfg.Local.Draining() {
		healthy--
	}
	return healthy
}

// serveLocal replays the buffered request into the wrapped server.
func (n *Node) serveLocal(w http.ResponseWriter, r *http.Request, body []byte, trace string) {
	r2 := r.Clone(r.Context())
	r2.Body = io.NopCloser(bytes.NewReader(body))
	r2.ContentLength = int64(len(body))
	if trace != "" {
		r2.Header.Set("X-Facc-Trace", trace)
	}
	n.reg.Counter("fleet.handled_local").Inc()
	n.local.ServeHTTP(w, r2)
}

// handleCompile is the fleet's admission and routing front door:
// hop guard → per-tenant rate limit → digest → ring lookup → local,
// hedged cache read + forward, or degraded local synthesis.
func (n *Node) handleCompile(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST a JSON compile request", http.StatusMethodNotAllowed)
		return
	}
	hops := 0
	if h := r.Header.Get(ForwardedHeader); h != "" {
		v, err := strconv.Atoi(h)
		if err != nil || v < 0 {
			http.Error(w, "malformed "+ForwardedHeader+" header", http.StatusBadRequest)
			return
		}
		hops = v
	}
	if hops > n.cfg.MaxHops {
		n.reg.Counter("fleet.loop_rejected").Inc()
		http.Error(w, fmt.Sprintf("fleet: forwarding loop (%d hops > max %d)", hops, n.cfg.MaxHops),
			http.StatusLoopDetected)
		return
	}
	// Rate limits apply where the request enters the fleet; a forwarded
	// request was already charged at its entry node.
	if hops == 0 {
		if ok, retry := n.limiter.Allow(r.Header.Get(TenantHeader)); !ok {
			n.reg.Counter("fleet.ratelimited").Inc()
			w.Header().Set("Retry-After", strconv.Itoa(retry))
			http.Error(w, "tenant rate limit exceeded: retry later", http.StatusTooManyRequests)
			return
		}
	}

	body, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	trace := r.Header.Get("X-Facc-Trace")
	if !obs.ValidTraceID(trace) {
		trace = obs.NewTraceID()
	}

	var req facc.CompileRequest
	if err := json.Unmarshal(body, &req); err != nil || req.Validate() != nil {
		// Malformed or invalid requests never travel: the local server
		// produces the canonical 400 without spending a hop.
		n.serveLocal(w, r, body, trace)
		return
	}
	key := req.Digest()
	owners := n.ring.Owners(key, 0)

	// Walk the failover chain: forward to each remote owner before self;
	// reaching self (or exhausting the chain) means synthesize here.
	degraded := len(owners) > 0 && owners[0] != n.cfg.Self
	for _, peer := range owners {
		if peer == n.cfg.Self {
			degraded = false
			break
		}
		if n.forward(w, r, body, peer, key, hops, trace) {
			return
		}
		n.reg.Counter("fleet.forward_failovers").Inc()
	}
	if degraded {
		// Every remote owner was unreachable: digest affinity is lost
		// for this request, correctness is not — synthesize locally.
		n.reg.Counter("fleet.degraded_local").Inc()
	}
	if hops > 0 {
		n.reg.Counter("fleet.forwarded_in").Inc()
	}
	n.serveLocal(w, r, body, trace)
}

// forward relays one compile request to a peer, first trying a hedged
// cache read, then the compile itself with bounded, budgeted retries.
// It reports true when a response has been written; false means the
// caller should fail over to the next owner.
func (n *Node) forward(w http.ResponseWriter, r *http.Request, body []byte, peer, key string, hops int, trace string) bool {
	base, ok := n.cfg.Peers[peer]
	if !ok || !n.ring.IsHealthy(peer) {
		return false
	}
	span := n.cfg.Tracer.Span("fleet.forward").SetTrace(trace).Str("peer", peer)
	defer span.End()

	// Hedged cache read: a digest the fleet has already compiled should
	// cost one small GET, not a forwarded POST through the admission
	// queue — and if the owner is slow or half-partitioned, the next
	// replica may answer from its own cache first.
	if hops == 0 {
		if hit := n.hedgedCacheLookup(r.Context(), key, peer, trace); hit != nil {
			n.relayHit(w, hit)
			span.Str("via", "cache")
			return true
		}
	}

	for attempt := 0; attempt < n.cfg.RetryAttempts; attempt++ {
		if attempt > 0 {
			if !n.budget.Take() {
				n.reg.Counter("fleet.retry_budget_exhausted").Inc()
				break
			}
			n.reg.Counter("fleet.forward_retries").Inc()
			n.sleepJitter(attempt)
		}
		n.reg.Gauge("fleet.retry_budget").Set(n.budget.Remaining())

		ctx, cancel := context.WithTimeout(r.Context(), n.cfg.ForwardTimeout)
		freq, err := http.NewRequestWithContext(ctx, http.MethodPost,
			base+"/compile?"+r.URL.RawQuery, bytes.NewReader(body))
		if err != nil {
			cancel()
			return false
		}
		freq.Header.Set("Content-Type", "application/json")
		freq.Header.Set("X-Facc-Trace", trace)
		freq.Header.Set(ForwardedHeader, strconv.Itoa(hops+1))
		if tenant := r.Header.Get(TenantHeader); tenant != "" {
			freq.Header.Set(TenantHeader, tenant)
		}
		resp, err := n.client.Do(freq)
		if err != nil {
			cancel()
			// A transport-level failure is evidence about the peer; let
			// the breaker eject it before the next probe tick if this
			// keeps happening.
			n.reportPeer(peer, false)
			if r.Context().Err() != nil {
				return true // client gone; nothing left to write
			}
			continue
		}
		switch resp.StatusCode {
		case http.StatusServiceUnavailable, http.StatusLoopDetected:
			// Draining or ring disagreement: the peer is alive but not
			// usable for this request — fail over without retrying it.
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			cancel()
			span.Str("via", "failover")
			return false
		}
		// Everything else — including a 429 whose Retry-After must reach
		// the client exactly as the owner computed it — is relayed.
		n.reportPeer(peer, true)
		n.reg.Counter("fleet.forwarded").Inc()
		n.relay(w, resp, peer)
		resp.Body.Close()
		cancel()
		return true
	}
	return false
}

// relayHeaders are the response headers a forwarded reply keeps. The
// owner's Retry-After rides through verbatim: the forwarder's own queue
// EMA knows nothing about the owner's backlog, so re-deriving the hint
// here would tell shed clients to come back at the wrong time.
var relayHeaders = []string{
	"Content-Type", "Retry-After", "Location",
	"X-Facc-Trace", "X-Facc-Cache", "X-Facc-Dedup",
}

// relay writes a forwarded response through, stamping which replica
// served it.
func (n *Node) relay(w http.ResponseWriter, resp *http.Response, peer string) {
	for _, h := range relayHeaders {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	if peer != "" {
		w.Header().Set(PeerHeader, peer)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// cacheHit is one fully-read cache-probe reply: buffering the (small,
// jobJSON-sized) body inside the probe lets every probe context be
// cancelled the moment a winner is picked, with no response stream left
// tied to a dying context.
type cacheHit struct {
	header http.Header
	body   []byte
	peer   string
}

// relayHit writes a hedged cache hit through to the client.
func (n *Node) relayHit(w http.ResponseWriter, hit *cacheHit) {
	for _, h := range relayHeaders {
		if v := hit.header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set(PeerHeader, hit.peer)
	w.WriteHeader(http.StatusOK)
	w.Write(hit.body)
}

// hedgedCacheLookup races a cache probe against the owner with a delayed
// probe to the next owner; the first hit wins. Returns nil on miss (or
// when every probe failed) — the caller then pays the real forward.
func (n *Node) hedgedCacheLookup(ctx context.Context, key, owner, trace string) *cacheHit {
	// Probe targets: the owner, then the first other healthy remote
	// replica (the hedge). One candidate means no hedge, just a probe.
	targets := []string{owner}
	for _, p := range n.ring.Owners(key, 0) {
		if p != owner && p != n.cfg.Self {
			targets = append(targets, p)
			break
		}
	}
	pctx, cancel := context.WithTimeout(ctx, n.cfg.CacheProbeTimeout)
	defer cancel()

	ch := make(chan *cacheHit, len(targets))
	probe := func(peer string) {
		base, ok := n.cfg.Peers[peer]
		if !ok {
			ch <- nil
			return
		}
		req, err := http.NewRequestWithContext(pctx, http.MethodGet, base+"/cache/"+key, nil)
		if err != nil {
			ch <- nil
			return
		}
		req.Header.Set("X-Facc-Trace", trace)
		resp, err := n.client.Do(req)
		if err != nil {
			ch <- nil
			return
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil || resp.StatusCode != http.StatusOK {
			ch <- nil
			return
		}
		ch <- &cacheHit{header: resp.Header, body: body, peer: peer}
	}

	go probe(targets[0])
	pending := 1
	hedged := false
	var hedgeC <-chan time.Time
	if len(targets) > 1 {
		timer := time.NewTimer(n.cfg.HedgeDelay)
		defer timer.Stop()
		hedgeC = timer.C
	}
	for pending > 0 {
		select {
		case hit := <-ch:
			pending--
			if hit != nil {
				n.reg.Counter("fleet.cache_probe_hits").Inc()
				if hedged && hit.peer != targets[0] {
					n.reg.Counter("fleet.hedge_wins").Inc()
				}
				return hit // pctx cancel aborts any probe still in flight
			}
		case <-hedgeC:
			hedgeC = nil
			hedged = true
			pending++
			n.reg.Counter("fleet.hedges").Inc()
			go probe(targets[1])
		case <-pctx.Done():
			return nil
		}
	}
	return nil
}

// sleepJitter backs off before retry `attempt` (1-based): full jitter in
// [0, base·2^(attempt-1)).
func (n *Node) sleepJitter(attempt int) {
	step := n.cfg.RetryBaseDelay << (attempt - 1)
	if step <= 0 {
		return
	}
	n.rngMu.Lock()
	d := time.Duration(n.rng.Int63n(int64(step)))
	n.rngMu.Unlock()
	time.Sleep(d)
}
