// Package fleet scales faccd from one process to a sharded fleet of
// replicas that survive peer death, network partitions and overload
// without ever serving a wrong adapter.
//
// The design follows the single-node invariants outward. A consistent-
// hash ring keyed by facc.CompileRequest.Digest gives every request one
// owner replica, so the singleflight dedup table and the crash-safe
// adapter store stay shard-local: a digest's compile runs exactly once
// fleet-wide in the steady state, and its cache hits stay hot on one
// node no matter which replica the load balancer picked. Around that
// core:
//
//   - Request forwarding with an X-Facc-Forwarded hop guard: a replica
//     that does not own a digest relays the request to the owner; a
//     request that has been relayed more than MaxHops times (ring views
//     can disagree mid-rebalance) is rejected as a loop instead of
//     orbiting forever.
//   - Per-peer health: a background prober plus every forwarding failure
//     feed a per-peer circuit breaker; a peer past the failure threshold
//     is ejected from the ring (the ring rebalances), and the prober's
//     periodic probe doubles as the breaker's half-open trial that lets
//     a recovered peer back in.
//   - Bounded retries under a global budget: one forward gets a couple
//     of attempts with jittered backoff, but the whole node shares one
//     retry token bucket, so a dying fleet degrades to fail-fast
//     failover instead of a retry storm.
//   - Hedged cache reads: before paying a forwarded compile, the node
//     probes the owner's adapter cache, and shortly after, the next
//     owner's — the first hit wins, so one slow or half-partitioned
//     owner does not stall a request the fleet has already answered.
//   - Per-tenant token-bucket rate limits layered in front of the
//     single-node admission queue, so one hot tenant sheds before it
//     starves the queue for everyone else.
//   - Failover and graceful degradation: when every owner of a digest is
//     unreachable the node synthesizes locally — affinity is a
//     performance property, correctness never depends on it (adapters
//     are deterministic: any replica compiles the same bytes).
//
// Metrics land in the shared obs.Registry under fleet.* and surface in
// /status (fleet block) and /metrics.
package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"sync"
)

// ringPoint is one virtual node: a peer's position on the hash circle.
type ringPoint struct {
	hash uint64
	peer string
}

// Ring is a consistent-hash ring over peer IDs with a live health view.
// Lookups see only healthy peers; SetHealth rebuilds the live point set,
// which is how the fleet "rebalances" — a dead peer's key ranges fall to
// its clockwise successors, and nothing else moves.
type Ring struct {
	vnodes int

	mu      sync.RWMutex
	healthy map[string]bool
	all     []ringPoint // every peer's points, sorted once at build
	live    []ringPoint // healthy peers' points, rebuilt on health change
}

// NewRing builds a ring over the given peer IDs, all initially healthy,
// with vnodes virtual nodes per peer (<=0 gets the default 64 — enough
// that a 3-node fleet's ranges stay within a few percent of even).
func NewRing(peers []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	r := &Ring{vnodes: vnodes, healthy: map[string]bool{}}
	for _, p := range peers {
		if r.healthy[p] {
			continue // duplicate ID: one set of points
		}
		r.healthy[p] = true
		var vn [2]byte
		for i := 0; i < vnodes; i++ {
			binary.LittleEndian.PutUint16(vn[:], uint16(i))
			h := sha256.New()
			h.Write(vn[:])
			h.Write([]byte(p))
			sum := h.Sum(nil)
			r.all = append(r.all, ringPoint{
				hash: binary.LittleEndian.Uint64(sum[:8]),
				peer: p,
			})
		}
	}
	sort.Slice(r.all, func(i, j int) bool { return r.all[i].hash < r.all[j].hash })
	r.rebuildLocked()
	return r
}

// rebuildLocked recomputes the live point set from the health map.
// Caller holds r.mu for writing.
func (r *Ring) rebuildLocked() {
	r.live = r.live[:0]
	for _, pt := range r.all {
		if r.healthy[pt.peer] {
			r.live = append(r.live, pt)
		}
	}
}

// SetHealth marks a peer healthy or not and reports whether the view
// changed. Unknown peers are ignored (a peer table is static per process;
// health is the only dynamic part).
func (r *Ring) SetHealth(peer string, healthy bool) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	cur, known := r.healthy[peer]
	if !known || cur == healthy {
		return false
	}
	r.healthy[peer] = healthy
	r.rebuildLocked()
	return true
}

// Healthy returns how many peers are currently in the live ring.
func (r *Ring) Healthy() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, ok := range r.healthy {
		if ok {
			n++
		}
	}
	return n
}

// IsHealthy reports one peer's live-ring membership.
func (r *Ring) IsHealthy(peer string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.healthy[peer]
}

// Peers returns every peer ID in the table, sorted, with its health.
func (r *Ring) Peers() map[string]bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]bool, len(r.healthy))
	for p, h := range r.healthy {
		out[p] = h
	}
	return out
}

// keyHash positions a request key (a hex digest, but any string works)
// on the circle, using the same hash family as the peer points.
func keyHash(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.LittleEndian.Uint64(sum[:8])
}

// Owners returns up to n distinct healthy peers for key, in preference
// order: the owner first, then its clockwise successors — the failover
// chain. n <= 0 means every healthy peer. An empty ring returns nil.
func (r *Ring) Owners(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.live) == 0 {
		return nil
	}
	if n <= 0 {
		n = len(r.healthy)
	}
	h := keyHash(key)
	i := sort.Search(len(r.live), func(i int) bool { return r.live[i].hash >= h })
	var out []string
	seen := map[string]bool{}
	for range r.live {
		if i == len(r.live) {
			i = 0
		}
		p := r.live[i].peer
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
			if len(out) == n {
				break
			}
		}
		i++
	}
	return out
}

// Owner returns key's current owner, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	o := r.Owners(key, 1)
	if len(o) == 0 {
		return ""
	}
	return o[0]
}
