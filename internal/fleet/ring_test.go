package fleet

import (
	"fmt"
	"testing"
)

func TestRingDeterministicAndDistinct(t *testing.T) {
	peers := []string{"a", "b", "c"}
	r1 := NewRing(peers, 64)
	r2 := NewRing([]string{"c", "a", "b"}, 64) // order must not matter
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("digest-%d", i)
		o1 := r1.Owners(key, 0)
		o2 := r2.Owners(key, 0)
		if len(o1) != 3 {
			t.Fatalf("key %q: want 3 owners, got %v", key, o1)
		}
		seen := map[string]bool{}
		for _, p := range o1 {
			if seen[p] {
				t.Fatalf("key %q: duplicate owner in %v", key, o1)
			}
			seen[p] = true
		}
		for j := range o1 {
			if o1[j] != o2[j] {
				t.Fatalf("key %q: rings disagree: %v vs %v", key, o1, o2)
			}
		}
	}
}

func TestRingSpreadsKeys(t *testing.T) {
	r := NewRing([]string{"a", "b", "c"}, 64)
	counts := map[string]int{}
	for i := 0; i < 600; i++ {
		counts[r.Owner(fmt.Sprintf("digest-%d", i))]++
	}
	for _, p := range []string{"a", "b", "c"} {
		if counts[p] < 60 {
			t.Fatalf("peer %s owns only %d of 600 keys: %v", p, counts[p], counts)
		}
	}
}

// Rebalance must be minimal: killing one peer moves only that peer's
// keys; every key a survivor owned keeps its owner.
func TestRingRebalanceIsMinimal(t *testing.T) {
	r := NewRing([]string{"a", "b", "c"}, 64)
	before := map[string]string{}
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("digest-%d", i)
		before[key] = r.Owner(key)
	}
	if changed := r.SetHealth("b", false); !changed {
		t.Fatal("SetHealth(b, false) reported no change")
	}
	if got := r.Healthy(); got != 2 {
		t.Fatalf("healthy = %d, want 2", got)
	}
	for key, owner := range before {
		now := r.Owner(key)
		if now == "b" {
			t.Fatalf("key %s still owned by dead peer", key)
		}
		if owner != "b" && now != owner {
			t.Fatalf("key %s moved %s -> %s though its owner survived", key, owner, now)
		}
	}
	// Recovery restores the original assignment exactly.
	r.SetHealth("b", true)
	for key, owner := range before {
		if got := r.Owner(key); got != owner {
			t.Fatalf("key %s: owner %s after recovery, want %s", key, got, owner)
		}
	}
}

func TestRingFailoverOrderStableAcrossViews(t *testing.T) {
	// Two nodes that both saw peer c die must agree on the failover
	// chain for every key — this is what makes post-failover
	// singleflight dedup land on one replica.
	r1 := NewRing([]string{"a", "b", "c"}, 64)
	r2 := NewRing([]string{"a", "b", "c"}, 64)
	r1.SetHealth("c", false)
	r2.SetHealth("c", false)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("digest-%d", i)
		if r1.Owner(key) != r2.Owner(key) {
			t.Fatalf("key %s: views disagree after identical ejection", key)
		}
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing([]string{"a"}, 8)
	r.SetHealth("a", false)
	if got := r.Owners("k", 0); got != nil {
		t.Fatalf("empty ring returned owners %v", got)
	}
	if r.Owner("k") != "" {
		t.Fatal("empty ring returned an owner")
	}
	if r.SetHealth("nonexistent", false) {
		t.Fatal("unknown peer health change reported as a change")
	}
}
