package fleet

import (
	"math"
	"sync"
	"time"
)

// bucket is one token bucket: capacity burst, refill rate tokens/sec,
// lazily refilled on use. It is the unit behind both the per-tenant rate
// limiter and the node-global retry budget.
type bucket struct {
	rate   float64 // tokens per second
	burst  float64 // capacity
	tokens float64
	last   time.Time
}

// take attempts to remove one token at time now. On refusal it returns
// how long until a token will exist — the Retry-After hint.
func (b *bucket) take(now time.Time) (ok bool, wait time.Duration) {
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	if b.rate <= 0 {
		return false, time.Hour
	}
	need := 1 - b.tokens
	return false, time.Duration(need / b.rate * float64(time.Second))
}

// TenantLimiter is a per-tenant token-bucket rate limit layered in front
// of the admission queue: each tenant (the X-Facc-Tenant header; absent
// means the anonymous tenant) gets an independent bucket, so one hot
// tenant is shed with 429 before it can starve the shared queue for
// everyone else. A zero rate disables limiting entirely.
//
// The tenant table is bounded: past maxTenants the stalest bucket is
// evicted (a full bucket is the steady state for an idle tenant, so
// eviction never penalizes anyone still sending).
type TenantLimiter struct {
	rate  float64
	burst float64
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

// tenant-table bound: far above any test or deployment this repo runs,
// present so a tenant-id fuzzer cannot grow the map without bound.
const maxTenants = 4096

// NewTenantLimiter builds a limiter granting each tenant rate requests
// per second with the given burst (<=0 burst defaults to max(1, rate)).
// A rate <= 0 returns a nil limiter, which allows everything.
func NewTenantLimiter(rate, burst float64) *TenantLimiter {
	if rate <= 0 {
		return nil
	}
	if burst <= 0 {
		burst = math.Max(1, rate)
	}
	return &TenantLimiter{
		rate:    rate,
		burst:   burst,
		now:     time.Now,
		buckets: map[string]*bucket{},
	}
}

// Allow charges one request to the tenant. On refusal it returns the
// whole-second Retry-After hint (>= 1).
func (l *TenantLimiter) Allow(tenant string) (ok bool, retryAfter int) {
	if l == nil {
		return true, 0
	}
	if tenant == "" {
		tenant = "anonymous"
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[tenant]
	if b == nil {
		if len(l.buckets) >= maxTenants {
			l.evictStalestLocked()
		}
		b = &bucket{rate: l.rate, burst: l.burst, tokens: l.burst}
		l.buckets[tenant] = b
	}
	okNow, wait := b.take(l.now())
	if okNow {
		return true, 0
	}
	secs := int(math.Ceil(wait.Seconds()))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return false, secs
}

// evictStalestLocked drops the bucket with the oldest last-use time.
func (l *TenantLimiter) evictStalestLocked() {
	var victim string
	var oldest time.Time
	for id, b := range l.buckets {
		if victim == "" || b.last.Before(oldest) {
			victim, oldest = id, b.last
		}
	}
	delete(l.buckets, victim)
}

// RetryBudget is the node-global bound on forwarding retries: every
// retry (not the first attempt) must take a token, and the bucket
// refills at a fixed rate. When the fleet is broadly sick, the budget
// drains and forwards fail over fast instead of amplifying the overload
// with a retry storm — the classic retry-budget pattern.
type RetryBudget struct {
	now func() time.Time

	mu sync.Mutex
	b  bucket
}

// NewRetryBudget allows `rate` retries per second with a capacity of
// `burst` (<=0 defaults: rate 8/s, burst 16).
func NewRetryBudget(rate, burst float64) *RetryBudget {
	if rate <= 0 {
		rate = 8
	}
	if burst <= 0 {
		burst = 16
	}
	return &RetryBudget{
		now: time.Now,
		b:   bucket{rate: rate, burst: burst, tokens: burst},
	}
}

// Take consumes one retry token if available.
func (r *RetryBudget) Take() bool {
	if r == nil {
		return true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ok, _ := r.b.take(r.now())
	return ok
}

// Remaining reports the current token count (for the fleet.retry_budget
// gauge; approximate by design — it refills lazily).
func (r *RetryBudget) Remaining() float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	// Refill without spending.
	now := r.now()
	if !r.b.last.IsZero() {
		r.b.tokens += now.Sub(r.b.last).Seconds() * r.b.rate
		if r.b.tokens > r.b.burst {
			r.b.tokens = r.b.burst
		}
	}
	r.b.last = now
	return r.b.tokens
}
