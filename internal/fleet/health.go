package fleet

import (
	"context"
	"net/http"
	"sync"
	"time"
)

// peerBreaker is the health circuit for one remote peer, in the same
// spirit as faultinject.Breaker but judging a network neighbour instead
// of an accelerator: consecutive failures (probe misses and forwarding
// errors both count) past Threshold eject the peer from the ring — the
// open state — and every forward skips it. The background prober keeps
// probing an ejected peer; a successful probe is the half-open trial
// that re-admits it. There is no separate half-open bookkeeping because
// the prober is the only caller that ever touches an open peer.
type peerBreaker struct {
	id        string
	threshold int

	mu      sync.Mutex
	fails   int
	healthy bool
}

// report folds one success/failure observation in and returns the new
// health plus whether it changed.
func (b *peerBreaker) report(ok bool) (healthy, changed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	was := b.healthy
	if ok {
		b.fails = 0
		b.healthy = true
	} else {
		b.fails++
		if b.fails >= b.threshold {
			b.healthy = false
		}
	}
	return b.healthy, b.healthy != was
}

// state snapshots the breaker.
func (b *peerBreaker) state() (healthy bool, fails int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.healthy, b.fails
}

// prober periodically GETs every remote peer's /healthz through the
// node's transport and feeds the verdicts into the per-peer breakers.
// It is the fleet's rebalance clock: a killed replica is ejected within
// FailureThreshold probe intervals even if no request happens to trip
// over it first, and a recovered one is re-admitted by the next probe.
type prober struct {
	node     *Node
	interval time.Duration
	client   *http.Client

	stop chan struct{}
	done chan struct{}
}

func newProber(n *Node, interval time.Duration) *prober {
	timeout := interval / 2
	if timeout <= 0 {
		timeout = 100 * time.Millisecond
	}
	return &prober{
		node:     n,
		interval: interval,
		client:   &http.Client{Transport: n.cfg.Transport, Timeout: timeout},
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

func (p *prober) run() {
	defer close(p.done)
	t := time.NewTicker(p.interval)
	defer t.Stop()
	for {
		// Probe first, then wait: a fresh node learns its peers' health
		// one interval earlier, which is exactly the window the fleet
		// bench measures rebalance inside of.
		p.probeAll()
		select {
		case <-p.stop:
			return
		case <-t.C:
		}
	}
}

// probeAll probes every remote peer concurrently and waits for the round
// to finish, so one hung peer delays only its own verdict (the client
// timeout bounds it), not the ticker.
func (p *prober) probeAll() {
	var wg sync.WaitGroup
	for id, base := range p.node.cfg.Peers {
		if id == p.node.cfg.Self {
			continue
		}
		wg.Add(1)
		go func(id, base string) {
			defer wg.Done()
			p.node.reportPeer(id, p.probe(base))
		}(id, base)
	}
	wg.Wait()
}

// probe is one liveness check: a 2xx /healthz within the timeout.
func (p *prober) probe(base string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), p.client.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
	if err != nil {
		return false
	}
	res, err := p.client.Do(req)
	if err != nil {
		return false
	}
	res.Body.Close()
	return res.StatusCode >= 200 && res.StatusCode < 300
}

// reportPeer feeds one observation about a remote peer into its breaker
// and, on a state change, rebalances the ring and updates the health
// gauges. Forward failures and probe results share this path, so a dead
// peer is ejected by whichever notices first.
func (n *Node) reportPeer(id string, ok bool) {
	b := n.breakers[id]
	if b == nil {
		return
	}
	healthy, changed := b.report(ok)
	if !changed {
		return
	}
	n.ring.SetHealth(id, healthy)
	if healthy {
		n.reg.Counter("fleet.peer_recoveries").Inc()
	} else {
		n.reg.Counter("fleet.peer_ejections").Inc()
	}
	n.reg.Gauge("fleet.peer_healthy." + id).Set(boolGauge(healthy))
	n.reg.Gauge("fleet.peers_healthy").Set(float64(n.ring.Healthy()))
	if hook := n.cfg.OnPeerHealth; hook != nil {
		hook(id, healthy)
	}
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// PeerHealth is one row of the fleet health snapshot.
type PeerHealth struct {
	ID      string `json:"id"`
	URL     string `json:"url,omitempty"`
	Self    bool   `json:"self,omitempty"`
	Healthy bool   `json:"healthy"`
	Fails   int    `json:"consecutive_fails,omitempty"`
}

// Snapshot is the node's live view of the fleet, served at /fleet/peers
// and consumed by tests and the chaos harness.
type Snapshot struct {
	Self    string       `json:"self"`
	Healthy int          `json:"healthy"`
	Peers   []PeerHealth `json:"peers"`
}

// Snapshot returns the node's current fleet view.
func (n *Node) Snapshot() Snapshot {
	s := Snapshot{Self: n.cfg.Self, Healthy: n.ring.Healthy()}
	for _, id := range n.peerIDs {
		ph := PeerHealth{ID: id, URL: n.cfg.Peers[id], Self: id == n.cfg.Self}
		if b := n.breakers[id]; b != nil {
			ph.Healthy, ph.Fails = b.state()
		} else {
			ph.Healthy = n.ring.IsHealthy(id)
		}
		s.Peers = append(s.Peers, ph)
	}
	return s
}
