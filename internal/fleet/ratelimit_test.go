package fleet

import (
	"fmt"
	"testing"
	"time"
)

// fakeClock is a manually-advanced time source for bucket math.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1700000000, 0)} }

func TestTenantLimiterBurstAndRefill(t *testing.T) {
	clk := newFakeClock()
	l := NewTenantLimiter(2, 2) // 2 rps, burst 2
	l.now = clk.now

	for i := 0; i < 2; i++ {
		if ok, _ := l.Allow("a"); !ok {
			t.Fatalf("burst request %d refused", i)
		}
	}
	ok, retry := l.Allow("a")
	if ok {
		t.Fatal("third immediate request allowed past burst")
	}
	if retry < 1 {
		t.Fatalf("Retry-After = %d, want >= 1", retry)
	}
	// Another tenant is unaffected.
	if ok, _ := l.Allow("b"); !ok {
		t.Fatal("independent tenant refused")
	}
	// Half a second refills one token at 2 rps.
	clk.advance(500 * time.Millisecond)
	if ok, _ := l.Allow("a"); !ok {
		t.Fatal("request refused after refill")
	}
}

func TestTenantLimiterAnonymousAndDisabled(t *testing.T) {
	if l := NewTenantLimiter(0, 0); l != nil {
		t.Fatal("zero rate should disable limiting (nil limiter)")
	}
	var l *TenantLimiter
	if ok, _ := l.Allow("anyone"); !ok {
		t.Fatal("nil limiter must allow everything")
	}

	clk := newFakeClock()
	l = NewTenantLimiter(1, 1)
	l.now = clk.now
	// "" and "anonymous" share one bucket.
	if ok, _ := l.Allow(""); !ok {
		t.Fatal("first anonymous request refused")
	}
	if ok, _ := l.Allow("anonymous"); ok {
		t.Fatal("anonymous alias got a second bucket")
	}
}

func TestTenantLimiterEviction(t *testing.T) {
	clk := newFakeClock()
	l := NewTenantLimiter(1, 1)
	l.now = clk.now
	// Fill the table past the bound; each new tenant evicts the stalest.
	for i := 0; i < maxTenants+10; i++ {
		clk.advance(time.Millisecond)
		l.Allow(fmt.Sprintf("tenant-%d", i))
	}
	l.mu.Lock()
	n := len(l.buckets)
	l.mu.Unlock()
	if n > maxTenants {
		t.Fatalf("tenant table grew to %d, bound is %d", n, maxTenants)
	}
}

func TestRetryBudget(t *testing.T) {
	clk := newFakeClock()
	b := NewRetryBudget(1, 2) // 1 token/sec, capacity 2
	b.now = clk.now

	if !b.Take() || !b.Take() {
		t.Fatal("burst tokens refused")
	}
	if b.Take() {
		t.Fatal("third immediate retry allowed past burst")
	}
	clk.advance(time.Second)
	if !b.Take() {
		t.Fatal("retry refused after refill")
	}
	if rem := b.Remaining(); rem > 1 {
		t.Fatalf("Remaining = %v, want <= 1", rem)
	}
	// Defaults and nil-safety.
	if d := NewRetryBudget(0, 0); !d.Take() {
		t.Fatal("default budget refused first token")
	}
	var nilB *RetryBudget
	if !nilB.Take() {
		t.Fatal("nil budget must allow")
	}
	if nilB.Remaining() != 0 {
		t.Fatal("nil budget Remaining != 0")
	}
}
