package fleet

import (
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// LinkRule is the injected fault profile for every connection to one
// destination host:port. The zero rule is a clean link.
type LinkRule struct {
	// Down drops every request — a hard partition or a dead process.
	Down bool
	// LossRate drops requests with this probability — a lossy link.
	// Drawn from the transport's seeded stream, so a given (seed, call
	// sequence) is reproducible.
	LossRate float64
	// Latency stalls each surviving request by this much before sending
	// (applied with probability LatencyRate; LatencyRate 0 with a
	// nonzero Latency means every request).
	Latency     time.Duration
	LatencyRate float64
}

// PartitionError marks a request dropped by the fault transport, so
// callers (and tests) can tell injected network failures from real ones.
type PartitionError struct {
	Host string
	Kind string // "down" or "loss"
}

func (e *PartitionError) Error() string {
	return fmt.Sprintf("fleet: injected %s to %s", e.Kind, e.Host)
}

// FaultTransport is an http.RoundTripper that injects partitions, loss
// and latency per destination host — the in-process stand-in for a bad
// network between replicas. The chaos serve bench points every node's
// forwarding client and health prober through one FaultTransport and
// then kills and partitions links mid-run; unit tests use it to simulate
// peer death without binding sockets that refuse connections slowly.
//
// Deterministic for a fixed seed and call sequence, like
// faultinject.Injector.
type FaultTransport struct {
	base  http.RoundTripper
	sleep func(time.Duration)

	mu    sync.Mutex
	rng   *rand.Rand
	rules map[string]LinkRule
}

// NewFaultTransport wraps base (nil means http.DefaultTransport) with an
// initially clean rule set; seed fixes the loss stream (0 means 1).
func NewFaultTransport(base http.RoundTripper, seed int64) *FaultTransport {
	if base == nil {
		base = http.DefaultTransport
	}
	if seed == 0 {
		seed = 1
	}
	return &FaultTransport{
		base:  base,
		sleep: time.Sleep,
		rng:   rand.New(rand.NewSource(seed)),
		rules: map[string]LinkRule{},
	}
}

// SetRule installs (or, with a zero rule, clears) the fault profile for
// one destination host:port.
func (t *FaultTransport) SetRule(host string, r LinkRule) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if r == (LinkRule{}) {
		delete(t.rules, host)
		return
	}
	t.rules[host] = r
}

// RoundTrip applies the destination's rule, then forwards to the base
// transport.
func (t *FaultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	host := req.URL.Host
	t.mu.Lock()
	rule := t.rules[host]
	drop := false
	if rule.LossRate > 0 {
		drop = t.rng.Float64() < rule.LossRate
	}
	stall := rule.Latency > 0
	if stall && rule.LatencyRate > 0 {
		stall = t.rng.Float64() < rule.LatencyRate
	}
	t.mu.Unlock()

	if rule.Down {
		return nil, &PartitionError{Host: host, Kind: "down"}
	}
	if drop {
		return nil, &PartitionError{Host: host, Kind: "loss"}
	}
	if stall {
		t.sleep(rule.Latency)
	}
	return t.base.RoundTrip(req)
}
