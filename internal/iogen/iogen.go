// Package iogen generates the random IO examples generate-and-test feeds
// to candidate adapters (paper §6.1): lengths are drawn from the
// intersection of the accelerator domain and the user code's profiled
// range, biased toward small sizes that run quickly; length variables are
// assigned before the arrays they measure (the topological order the paper
// describes); scalar flags honor pins and direction maps.
package iogen

import (
	"math/rand"
	"sort"

	"facc/internal/accel"
	"facc/internal/analysis"
	"facc/internal/binding"
)

// Case is one generated test input.
type Case struct {
	// UserLen is the value given to the user's length variable (before
	// the candidate's conversion); AccelLen is after conversion.
	UserLen  int64
	AccelLen int64
	// Scalars assigns every non-length integer parameter.
	Scalars map[string]int64
	// Input is the complex test signal.
	Input []complex128
}

// Generator produces test cases for one candidate.
type Generator struct {
	rng   *rand.Rand
	cand  *binding.Candidate
	prof  *analysis.Profile
	sizes []int64 // accelerator lengths to draw from, ascending
}

// New builds a generator. profile may be nil.
func New(seed int64, cand *binding.Candidate, profile *analysis.Profile) *Generator {
	g := &Generator{
		rng:  rand.New(rand.NewSource(seed)),
		cand: cand,
		prof: profile,
	}
	g.sizes = g.candidateSizes()
	return g
}

// candidateSizes computes the accelerator lengths to test, smallest first
// (the paper's bias toward small, fast examples).
func (g *Generator) candidateSizes() []int64 {
	spec := g.cand.Spec
	var pool []int64
	add := func(n int64) {
		if n > 0 && spec.Supports(int(n)) {
			pool = append(pool, n)
		}
	}
	if g.cand.Length.Param == "" {
		add(g.cand.Length.Const)
	} else if r := g.profRange(); r != nil && r.Distinct() != nil {
		for _, v := range r.Distinct() {
			add(g.cand.Length.Conv.Apply(v))
		}
	} else if r != nil {
		// Wide profiled interval: probe powers of two inside it.
		for n := int64(1); n <= r.Max && n <= int64(spec.MaxN); n <<= 1 {
			if conv := g.cand.Length.Conv.Apply(n); conv > 0 {
				if n >= r.Min {
					add(g.cand.Length.Conv.Apply(n))
				}
			}
		}
	}
	if len(pool) == 0 && g.profRange() != nil && g.profRange().Count > 0 {
		// The profiled range and the accelerator domain are disjoint:
		// the candidate is untestable (and the adapter would never fire).
		return nil
	}
	if len(pool) == 0 {
		// No profile: small members of the accelerator domain.
		if spec.PowerOfTwoOnly {
			for n := int64(spec.MinN); n <= int64(spec.MaxN) && n <= 1024; n <<= 1 {
				add(n)
			}
		} else {
			for _, n := range []int64{4, 8, 12, 16, 20, 27, 64, 100, 128} {
				add(n)
			}
		}
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i] < pool[j] })
	// Dedup.
	out := pool[:0]
	var last int64 = -1
	for _, n := range pool {
		if n != last {
			out = append(out, n)
			last = n
		}
	}
	// Bias toward small examples (paper §6.1): once small sizes exist,
	// drop the expensive tail — equivalence at small n plus the range
	// check covers the rest.
	const maxTestSize = 256
	smallEnough := 0
	for _, n := range out {
		if n <= maxTestSize {
			smallEnough++
		}
	}
	if smallEnough > 0 {
		out = out[:smallEnough]
	}
	return out
}

func (g *Generator) profRange() *analysis.Range {
	if g.prof == nil || g.cand.Length.Param == "" {
		return nil
	}
	return g.prof.Range(g.cand.Length.Param)
}

// Viable reports whether any testable size exists (empty domain ∩ range
// means the candidate is untestable and must be rejected).
func (g *Generator) Viable() bool { return len(g.sizes) > 0 }

// Cases generates count test cases. Sizes cycle through the pool smallest
// first so early failures are cheap; the remainder sample the pool.
func (g *Generator) Cases(count int) []Case {
	if !g.Viable() {
		return nil
	}
	out := make([]Case, 0, count)
	for i := 0; i < count; i++ {
		var an int64
		if i < len(g.sizes) {
			an = g.sizes[i]
		} else {
			an = g.sizes[g.rng.Intn(len(g.sizes))]
		}
		c := Case{AccelLen: an, Scalars: map[string]int64{}}
		// Invert the conversion to get the user-level value.
		switch g.cand.Length.Conv {
		case binding.ConvExp2:
			c.UserLen = int64(log2(an))
		default:
			c.UserLen = an
		}
		g.fillScalars(&c, i)
		c.Input = g.signal(int(an))
		out = append(out, c)
	}
	return out
}

// fillScalars assigns pinned, direction-mapped and free scalar parameters.
// Free parameters are deliberately randomized (including values unlike the
// length) so bindings that secretly depend on them are caught.
func (g *Generator) fillScalars(c *Case, caseIdx int) {
	for _, pin := range g.cand.Pins {
		c.Scalars[pin.Param] = pin.Value
	}
	if d := g.cand.Direction; d != nil && d.Param != "" {
		keys := make([]int64, 0, len(d.Map))
		for k := range d.Map {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		c.Scalars[d.Param] = keys[caseIdx%len(keys)]
	}
	for _, name := range g.cand.FreeParams {
		if _, done := c.Scalars[name]; done {
			continue
		}
		if r := g.profOf(name); r != nil && r.Distinct() != nil {
			vals := r.Distinct()
			c.Scalars[name] = vals[g.rng.Intn(len(vals))]
		} else {
			c.Scalars[name] = int64(g.rng.Intn(7)) - 1
		}
	}
}

func (g *Generator) profOf(name string) *analysis.Range {
	if g.prof == nil {
		return nil
	}
	return g.prof.Range(name)
}

// signal draws a random complex test vector with unit-scale components.
func (g *Generator) signal(n int) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(g.rng.NormFloat64(), g.rng.NormFloat64())
	}
	return out
}

func log2(n int64) int {
	k := 0
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}

// FallbackSizes returns lengths in the user's profiled range that the
// accelerator does NOT support — used to test that the fallback path
// preserves behavior.
func FallbackSizes(spec *accel.Spec, profile *analysis.Profile, lengthParam string, conv binding.LengthConv) []int64 {
	if profile == nil || lengthParam == "" {
		return nil
	}
	r := profile.Range(lengthParam)
	if r == nil {
		return nil
	}
	var out []int64
	if vals := r.Distinct(); vals != nil {
		for _, v := range vals {
			if an := conv.Apply(v); an <= 0 || !spec.Supports(int(an)) {
				out = append(out, v)
			}
		}
	}
	return out
}
