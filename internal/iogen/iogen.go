// Package iogen generates the random IO examples generate-and-test feeds
// to candidate adapters (paper §6.1): lengths are drawn from the
// intersection of the accelerator domain and the user code's profiled
// range, biased toward small sizes that run quickly; length variables are
// assigned before the arrays they measure (the topological order the paper
// describes); scalar flags honor pins and direction maps.
package iogen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"facc/internal/accel"
	"facc/internal/analysis"
	"facc/internal/binding"
)

// Case is one generated test input.
type Case struct {
	// UserLen is the value given to the user's length variable (before
	// the candidate's conversion); AccelLen is after conversion.
	UserLen  int64
	AccelLen int64
	// Scalars assigns every non-length integer parameter.
	Scalars map[string]int64
	// Input is the complex test signal.
	Input []complex128
}

// Generator produces test cases for one candidate.
//
// Randomness is derived, not shared: every draw comes from a sub-seed that
// is a pure function of (root seed, stream label, case index), so case i is
// the same regardless of how many other cases, candidates or goroutines
// draw around it. Two streams exist:
//
//   - the signal stream is keyed on (root seed, accelerator length, case
//     index) only — candidates that agree on the user-visible shape of a
//     test case feed the user program byte-identical inputs, which is what
//     lets the synthesis oracle cache reference runs across candidates;
//   - the scalar/size-sampling stream is keyed on a per-candidate seed,
//     DeriveSeed(root, RefSig(cand)), so candidates that differ in any
//     way the *user program* can observe (layouts, pins, free parameters)
//     get independent draws rather than colliding on one shared
//     *rand.Rand. The key is deliberately the spec-free RefSig, not
//     UserSig: which accelerator we bind to cannot change what the user
//     program is fed, so same-shape candidates across ffta/powerquad/fftw
//     draw identical scalars — the property that lets the reference
//     oracle share one entry across all three targets.
type Generator struct {
	rootSeed int64
	candSeed int64
	cand     *binding.Candidate
	prof     *analysis.Profile
	sizes    []int64 // accelerator lengths to draw from, ascending
}

// New builds a generator. profile may be nil.
func New(seed int64, cand *binding.Candidate, profile *analysis.Profile) *Generator {
	g := &Generator{
		rootSeed: seed,
		candSeed: DeriveSeed(seed, "cand:"+RefSig(cand)),
		cand:     cand,
		prof:     profile,
	}
	g.sizes = g.candidateSizes()
	return g
}

// DeriveSeed hashes a root seed with a stream label (plus optional indices)
// into an independent sub-seed: FNV-1a over the seed bytes, the label and
// the indices, then a splitmix64 finalizer so adjacent labels avalanche
// into uncorrelated rand.Source states.
func DeriveSeed(seed int64, label string, idx ...int64) int64 {
	h := uint64(14695981039346656037) // FNV-1a 64-bit offset basis
	mix := func(b byte) {
		h ^= uint64(b)
		h *= 1099511628211 // FNV-1a 64-bit prime
	}
	for i := 0; i < 8; i++ {
		mix(byte(uint64(seed) >> (8 * uint(i))))
	}
	for i := 0; i < len(label); i++ {
		mix(label[i])
	}
	for _, v := range idx {
		for i := 0; i < 8; i++ {
			mix(byte(uint64(v) >> (8 * uint(i))))
		}
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return int64(h)
}

// UserSig is the canonical identity of everything about a candidate the
// *user program* can observe during a test run: the spec (which fixes the
// size pool), array layouts, length binding, pins, the user-bound direction
// parameter (with its domain), and the free-parameter set. Accelerator-side
// knobs — direction constants, flags values, ReturnIgnored — are deliberately
// excluded: candidates differing only in those run the user program on
// identical inputs, so they share one oracle entry per case.
func UserSig(cand *binding.Candidate) string {
	return "spec=" + cand.Spec.Name + " " + RefSig(cand)
}

// RefSig is the reference-run identity of a candidate: every UserSig
// component except the accelerator spec. The user program cannot observe
// which accelerator we bind to — the spec only chooses what runs on the
// *device* side of the comparison — so candidates across targets that
// agree on RefSig issue byte-identical reference runs. RefSig keys the
// scalar stream (so those candidates draw identical test scalars) and,
// combined with CaseDigest, the cross-target reference oracle.
func RefSig(cand *binding.Candidate) string {
	parts := []string{
		"in=" + cand.Input.Key(),
		"out=" + cand.Output.Key(),
		"len=" + cand.Length.Key(),
	}
	if cand.InPlace {
		parts = append(parts, "inplace")
	}
	if d := cand.Direction; d != nil && d.Param != "" {
		keys := make([]int64, 0, len(d.Map))
		for k := range d.Map {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		dom := make([]string, len(keys))
		for i, k := range keys {
			dom[i] = fmt.Sprintf("%d", k)
		}
		parts = append(parts, fmt.Sprintf("dirparam=%s[%s]", d.Param, strings.Join(dom, ",")))
	}
	pins := append([]binding.ScalarPin(nil), cand.Pins...)
	sort.Slice(pins, func(i, j int) bool { return pins[i].Param < pins[j].Param })
	for _, p := range pins {
		parts = append(parts, fmt.Sprintf("pin(%s=%d)", p.Param, p.Value))
	}
	free := append([]string(nil), cand.FreeParams...)
	sort.Strings(free)
	for _, p := range free {
		parts = append(parts, "free("+p+")")
	}
	return strings.Join(parts, " ")
}

// CaseSig is the user-visible identity of one generated IO case: the
// root seed, the accelerator length, and the 0-based case index. This
// is exactly the key of the candidate-independent signal stream, so the
// same signature names the same input samples across candidates,
// binding families, runs and processes — what the kill table aggregates
// on and the persistent counterexample pool is keyed by.
func CaseSig(seed, accelLen int64, caseIdx int) string {
	return fmt.Sprintf("seed=%d n=%d case=%d", seed, accelLen, caseIdx)
}

// CaseDigest hashes the complete user-visible content of one generated
// case — both length values, every scalar assignment (in sorted name
// order), and the raw IEEE-754 bits of the input signal — into a
// 64-bit FNV-1a/splitmix key rendered as fixed-width hex. Two cases
// with equal digests feed the user program identical bytes, so the
// digest (together with RefSig, which fixes how those bytes are laid
// out in the user's arrays) is the content half of the
// target-independent oracle key: candidates for different accelerators
// that happen to generate the same case share one reference run, and
// different fuzz seeds — which draw different signals — can never
// collide.
func CaseDigest(c Case) string {
	h := uint64(14695981039346656037)
	mix8 := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v >> (8 * uint(i)) & 0xff
			h *= 1099511628211
		}
	}
	mixs := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
	}
	mix8(uint64(c.UserLen))
	mix8(uint64(c.AccelLen))
	names := make([]string, 0, len(c.Scalars))
	for k := range c.Scalars {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		mixs(k)
		mix8(uint64(c.Scalars[k]))
	}
	for _, v := range c.Input {
		mix8(math.Float64bits(real(v)))
		mix8(math.Float64bits(imag(v)))
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return fmt.Sprintf("%016x", h)
}

// caseRng returns the rand stream for one (stream label, case index) draw.
func caseRng(seed int64, label string, idx ...int64) *rand.Rand {
	return rand.New(rand.NewSource(DeriveSeed(seed, label, idx...)))
}

// candidateSizes computes the accelerator lengths to test, smallest first
// (the paper's bias toward small, fast examples).
func (g *Generator) candidateSizes() []int64 {
	spec := g.cand.Spec
	var pool []int64
	add := func(n int64) {
		if n > 0 && spec.Supports(int(n)) {
			pool = append(pool, n)
		}
	}
	if g.cand.Length.Param == "" {
		add(g.cand.Length.Const)
	} else if r := g.profRange(); r != nil && r.Distinct() != nil {
		for _, v := range r.Distinct() {
			add(g.cand.Length.Conv.Apply(v))
		}
	} else if r != nil {
		// Wide profiled interval: probe powers of two inside it.
		for n := int64(1); n <= r.Max && n <= int64(spec.MaxN); n <<= 1 {
			if conv := g.cand.Length.Conv.Apply(n); conv > 0 {
				if n >= r.Min {
					add(g.cand.Length.Conv.Apply(n))
				}
			}
		}
	}
	if len(pool) == 0 && g.profRange() != nil && g.profRange().Count > 0 {
		// The profiled range and the accelerator domain are disjoint:
		// the candidate is untestable (and the adapter would never fire).
		return nil
	}
	if len(pool) == 0 {
		// No profile: small members of the accelerator domain.
		if spec.PowerOfTwoOnly {
			for n := int64(spec.MinN); n <= int64(spec.MaxN) && n <= 1024; n <<= 1 {
				add(n)
			}
		} else {
			for _, n := range []int64{4, 8, 12, 16, 20, 27, 64, 100, 128} {
				add(n)
			}
		}
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i] < pool[j] })
	// Dedup.
	out := pool[:0]
	var last int64 = -1
	for _, n := range pool {
		if n != last {
			out = append(out, n)
			last = n
		}
	}
	// Bias toward small examples (paper §6.1): once small sizes exist,
	// drop the expensive tail — equivalence at small n plus the range
	// check covers the rest.
	const maxTestSize = 256
	smallEnough := 0
	for _, n := range out {
		if n <= maxTestSize {
			smallEnough++
		}
	}
	if smallEnough > 0 {
		out = out[:smallEnough]
	}
	return out
}

func (g *Generator) profRange() *analysis.Range {
	if g.prof == nil || g.cand.Length.Param == "" {
		return nil
	}
	return g.prof.Range(g.cand.Length.Param)
}

// Viable reports whether any testable size exists (empty domain ∩ range
// means the candidate is untestable and must be rejected).
func (g *Generator) Viable() bool { return len(g.sizes) > 0 }

// Cases generates count test cases. Sizes cycle through the pool smallest
// first so early failures are cheap; the remainder sample the pool. Case i
// is a pure function of (seed, candidate, profile, i): generating cases
// 0..k and then case i yields the same case i as generating it alone.
func (g *Generator) Cases(count int) []Case {
	if !g.Viable() {
		return nil
	}
	out := make([]Case, 0, count)
	for i := 0; i < count; i++ {
		out = append(out, g.Case(i))
	}
	return out
}

// Case generates the i-th test case in isolation.
func (g *Generator) Case(i int) Case {
	var an int64
	if i < len(g.sizes) {
		an = g.sizes[i]
	} else {
		an = g.sizes[caseRng(g.candSeed, "size", int64(i)).Intn(len(g.sizes))]
	}
	c := Case{AccelLen: an, Scalars: map[string]int64{}}
	// Invert the conversion to get the user-level value.
	switch g.cand.Length.Conv {
	case binding.ConvExp2:
		c.UserLen = int64(log2(an))
	default:
		c.UserLen = an
	}
	g.fillScalars(&c, i)
	c.Input = g.signal(int(an), i)
	return c
}

// CaseSize returns the accelerator length case i would use, without
// drawing the (comparatively expensive) signal — the same size logic as
// Case. The candidate pool's static cost model sums these.
func (g *Generator) CaseSize(i int) int64 {
	if !g.Viable() {
		return 0
	}
	if i < len(g.sizes) {
		return g.sizes[i]
	}
	return g.sizes[caseRng(g.candSeed, "size", int64(i)).Intn(len(g.sizes))]
}

// EstimateCost is the static cost model candidate dispatch orders by:
// the summed accelerator lengths of the candidate's first numTests
// cases (interpreter work per case grows with the array size) plus a
// small surcharge per free scalar (each one widens the behavior the
// fuzzer must discriminate). It is a pure function of
// (seed, candidate, profile) — no run history — so the dispatch order
// it induces is identical across processes and worker counts. A
// non-viable candidate costs 0: it dies before any interpretation.
func EstimateCost(seed int64, cand *binding.Candidate, profile *analysis.Profile, numTests int) int64 {
	g := New(seed, cand, profile)
	if !g.Viable() {
		return 0
	}
	var cost int64
	for i := 0; i < numTests; i++ {
		cost += g.CaseSize(i)
	}
	return cost + int64(len(cand.FreeParams))*8
}

// fillScalars assigns pinned, direction-mapped and free scalar parameters.
// Free parameters are deliberately randomized (including values unlike the
// length) so bindings that secretly depend on them are caught.
func (g *Generator) fillScalars(c *Case, caseIdx int) {
	for _, pin := range g.cand.Pins {
		c.Scalars[pin.Param] = pin.Value
	}
	if d := g.cand.Direction; d != nil && d.Param != "" {
		keys := make([]int64, 0, len(d.Map))
		for k := range d.Map {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		c.Scalars[d.Param] = keys[caseIdx%len(keys)]
	}
	for _, name := range g.cand.FreeParams {
		if _, done := c.Scalars[name]; done {
			continue
		}
		// Keyed per parameter name so the drawn value does not depend on
		// the iteration order of the free set.
		rng := caseRng(g.candSeed, "scalar:"+name, int64(caseIdx))
		if r := g.profOf(name); r != nil && r.Distinct() != nil {
			vals := r.Distinct()
			c.Scalars[name] = vals[rng.Intn(len(vals))]
		} else {
			c.Scalars[name] = int64(rng.Intn(7)) - 1
		}
	}
}

func (g *Generator) profOf(name string) *analysis.Range {
	if g.prof == nil {
		return nil
	}
	return g.prof.Range(name)
}

// signal draws the random complex test vector for case caseIdx. Keyed on
// the root seed plus (length, case index) only — deliberately candidate-
// independent, so every candidate asking for an n-point case i feeds the
// user program the same signal and the oracle can share the reference run.
func (g *Generator) signal(n, caseIdx int) []complex128 {
	rng := caseRng(g.rootSeed, "signal", int64(n), int64(caseIdx))
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return out
}

func log2(n int64) int {
	k := 0
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}

// FallbackSizes returns lengths in the user's profiled range that the
// accelerator does NOT support — used to test that the fallback path
// preserves behavior.
func FallbackSizes(spec *accel.Spec, profile *analysis.Profile, lengthParam string, conv binding.LengthConv) []int64 {
	if profile == nil || lengthParam == "" {
		return nil
	}
	r := profile.Range(lengthParam)
	if r == nil {
		return nil
	}
	var out []int64
	if vals := r.Distinct(); vals != nil {
		for _, v := range vals {
			if an := conv.Apply(v); an <= 0 || !spec.Supports(int(an)) {
				out = append(out, v)
			}
		}
	}
	return out
}
