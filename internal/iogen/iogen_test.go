package iogen

import (
	"testing"

	"facc/internal/accel"
	"facc/internal/analysis"
	"facc/internal/binding"
)

func baseCand(spec *accel.Spec) *binding.Candidate {
	return &binding.Candidate{
		Spec:   spec,
		Length: binding.LengthBinding{Param: "n", Conv: binding.ConvIdentity},
	}
}

func TestSizesRespectDomainWithoutProfile(t *testing.T) {
	g := New(1, baseCand(accel.NewFFTA()), nil)
	if !g.Viable() {
		t.Fatal("not viable")
	}
	for _, c := range g.Cases(12) {
		if !accel.NewFFTA().Supports(int(c.AccelLen)) {
			t.Errorf("generated unsupported size %d", c.AccelLen)
		}
		if len(c.Input) != int(c.AccelLen) {
			t.Errorf("input length %d != %d", len(c.Input), c.AccelLen)
		}
	}
}

func TestSizesBiasedSmallFirst(t *testing.T) {
	g := New(1, baseCand(accel.NewFFTA()), nil)
	cases := g.Cases(4)
	if cases[0].AccelLen != 64 {
		t.Errorf("first case size = %d, want smallest (64)", cases[0].AccelLen)
	}
	for i := 1; i < len(cases) && i < 3; i++ {
		if cases[i].AccelLen < cases[i-1].AccelLen {
			t.Errorf("sizes not ascending early: %d then %d", cases[i-1].AccelLen, cases[i].AccelLen)
		}
	}
}

func TestSizesFromProfile(t *testing.T) {
	p := analysis.NewProfile()
	p.ObserveInt("n", 128)
	p.ObserveInt("n", 512)
	g := New(1, baseCand(accel.NewFFTA()), p)
	for _, c := range g.Cases(8) {
		if c.AccelLen != 128 && c.AccelLen != 512 {
			t.Errorf("size %d outside profiled set", c.AccelLen)
		}
	}
}

func TestNonViableWhenDomainAndProfileDisjoint(t *testing.T) {
	p := analysis.NewProfile()
	p.ObserveInt("n", 8) // FFTA MinN is 64
	g := New(1, baseCand(accel.NewFFTA()), p)
	if g.Viable() {
		t.Error("8-point-only profile should be non-viable on FFTA")
	}
	if g.Cases(3) != nil {
		t.Error("non-viable generator must produce no cases")
	}
}

func TestExp2UserLenInversion(t *testing.T) {
	cand := &binding.Candidate{
		Spec:   accel.NewFFTA(),
		Length: binding.LengthBinding{Param: "logn", Conv: binding.ConvExp2},
	}
	p := analysis.NewProfile()
	p.ObserveInt("logn", 6)
	p.ObserveInt("logn", 8)
	g := New(1, cand, p)
	for _, c := range g.Cases(4) {
		if 1<<uint(c.UserLen) != c.AccelLen {
			t.Errorf("UserLen %d does not invert to AccelLen %d", c.UserLen, c.AccelLen)
		}
	}
}

func TestConstLength(t *testing.T) {
	cand := &binding.Candidate{
		Spec:   accel.NewFFTA(),
		Length: binding.LengthBinding{Const: 64},
	}
	g := New(1, cand, nil)
	for _, c := range g.Cases(3) {
		if c.AccelLen != 64 {
			t.Errorf("size = %d, want 64", c.AccelLen)
		}
	}
}

func TestPinsAndDirectionScalars(t *testing.T) {
	cand := baseCand(accel.NewFFTWLib())
	cand.Pins = []binding.ScalarPin{{Param: "mode", Value: 3}}
	cand.Direction = &binding.DirectionSource{Param: "inv",
		Map: map[int64]int64{0: -1, 1: 1}}
	g := New(1, cand, nil)
	cases := g.Cases(6)
	saw0, saw1 := false, false
	for _, c := range cases {
		if c.Scalars["mode"] != 3 {
			t.Errorf("pinned scalar = %d", c.Scalars["mode"])
		}
		switch c.Scalars["inv"] {
		case 0:
			saw0 = true
		case 1:
			saw1 = true
		default:
			t.Errorf("direction scalar = %d, not in map", c.Scalars["inv"])
		}
	}
	if !saw0 || !saw1 {
		t.Error("both direction values must be exercised")
	}
}

func TestFreeParamsRandomized(t *testing.T) {
	cand := baseCand(accel.NewPowerQuad())
	cand.FreeParams = []string{"junk"}
	g := New(7, cand, nil)
	distinct := map[int64]bool{}
	for _, c := range g.Cases(20) {
		distinct[c.Scalars["junk"]] = true
	}
	if len(distinct) < 2 {
		t.Error("free parameter should take multiple values")
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a := New(99, baseCand(accel.NewPowerQuad()), nil).Cases(5)
	b := New(99, baseCand(accel.NewPowerQuad()), nil).Cases(5)
	for i := range a {
		if a[i].AccelLen != b[i].AccelLen || a[i].Input[0] != b[i].Input[0] {
			t.Fatal("generator not deterministic for fixed seed")
		}
	}
}

func TestFallbackSizes(t *testing.T) {
	p := analysis.NewProfile()
	for _, v := range []int64{64, 100, 8192 * 16} {
		p.ObserveInt("n", v)
	}
	fb := FallbackSizes(accel.NewFFTA(), p, "n", binding.ConvIdentity)
	want := map[int64]bool{100: true, 8192 * 16: true}
	if len(fb) != 2 {
		t.Fatalf("fallback sizes = %v", fb)
	}
	for _, v := range fb {
		if !want[v] {
			t.Errorf("unexpected fallback size %d", v)
		}
	}
}
