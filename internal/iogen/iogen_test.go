package iogen

import (
	"fmt"
	"sync"
	"testing"

	"facc/internal/accel"
	"facc/internal/analysis"
	"facc/internal/binding"
)

func baseCand(spec *accel.Spec) *binding.Candidate {
	return &binding.Candidate{
		Spec:   spec,
		Length: binding.LengthBinding{Param: "n", Conv: binding.ConvIdentity},
	}
}

func TestSizesRespectDomainWithoutProfile(t *testing.T) {
	g := New(1, baseCand(accel.NewFFTA()), nil)
	if !g.Viable() {
		t.Fatal("not viable")
	}
	for _, c := range g.Cases(12) {
		if !accel.NewFFTA().Supports(int(c.AccelLen)) {
			t.Errorf("generated unsupported size %d", c.AccelLen)
		}
		if len(c.Input) != int(c.AccelLen) {
			t.Errorf("input length %d != %d", len(c.Input), c.AccelLen)
		}
	}
}

func TestSizesBiasedSmallFirst(t *testing.T) {
	g := New(1, baseCand(accel.NewFFTA()), nil)
	cases := g.Cases(4)
	if cases[0].AccelLen != 64 {
		t.Errorf("first case size = %d, want smallest (64)", cases[0].AccelLen)
	}
	for i := 1; i < len(cases) && i < 3; i++ {
		if cases[i].AccelLen < cases[i-1].AccelLen {
			t.Errorf("sizes not ascending early: %d then %d", cases[i-1].AccelLen, cases[i].AccelLen)
		}
	}
}

func TestSizesFromProfile(t *testing.T) {
	p := analysis.NewProfile()
	p.ObserveInt("n", 128)
	p.ObserveInt("n", 512)
	g := New(1, baseCand(accel.NewFFTA()), p)
	for _, c := range g.Cases(8) {
		if c.AccelLen != 128 && c.AccelLen != 512 {
			t.Errorf("size %d outside profiled set", c.AccelLen)
		}
	}
}

func TestNonViableWhenDomainAndProfileDisjoint(t *testing.T) {
	p := analysis.NewProfile()
	p.ObserveInt("n", 8) // FFTA MinN is 64
	g := New(1, baseCand(accel.NewFFTA()), p)
	if g.Viable() {
		t.Error("8-point-only profile should be non-viable on FFTA")
	}
	if g.Cases(3) != nil {
		t.Error("non-viable generator must produce no cases")
	}
}

func TestExp2UserLenInversion(t *testing.T) {
	cand := &binding.Candidate{
		Spec:   accel.NewFFTA(),
		Length: binding.LengthBinding{Param: "logn", Conv: binding.ConvExp2},
	}
	p := analysis.NewProfile()
	p.ObserveInt("logn", 6)
	p.ObserveInt("logn", 8)
	g := New(1, cand, p)
	for _, c := range g.Cases(4) {
		if 1<<uint(c.UserLen) != c.AccelLen {
			t.Errorf("UserLen %d does not invert to AccelLen %d", c.UserLen, c.AccelLen)
		}
	}
}

func TestConstLength(t *testing.T) {
	cand := &binding.Candidate{
		Spec:   accel.NewFFTA(),
		Length: binding.LengthBinding{Const: 64},
	}
	g := New(1, cand, nil)
	for _, c := range g.Cases(3) {
		if c.AccelLen != 64 {
			t.Errorf("size = %d, want 64", c.AccelLen)
		}
	}
}

func TestPinsAndDirectionScalars(t *testing.T) {
	cand := baseCand(accel.NewFFTWLib())
	cand.Pins = []binding.ScalarPin{{Param: "mode", Value: 3}}
	cand.Direction = &binding.DirectionSource{Param: "inv",
		Map: map[int64]int64{0: -1, 1: 1}}
	g := New(1, cand, nil)
	cases := g.Cases(6)
	saw0, saw1 := false, false
	for _, c := range cases {
		if c.Scalars["mode"] != 3 {
			t.Errorf("pinned scalar = %d", c.Scalars["mode"])
		}
		switch c.Scalars["inv"] {
		case 0:
			saw0 = true
		case 1:
			saw1 = true
		default:
			t.Errorf("direction scalar = %d, not in map", c.Scalars["inv"])
		}
	}
	if !saw0 || !saw1 {
		t.Error("both direction values must be exercised")
	}
}

func TestFreeParamsRandomized(t *testing.T) {
	cand := baseCand(accel.NewPowerQuad())
	cand.FreeParams = []string{"junk"}
	g := New(7, cand, nil)
	distinct := map[int64]bool{}
	for _, c := range g.Cases(20) {
		distinct[c.Scalars["junk"]] = true
	}
	if len(distinct) < 2 {
		t.Error("free parameter should take multiple values")
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a := New(99, baseCand(accel.NewPowerQuad()), nil).Cases(5)
	b := New(99, baseCand(accel.NewPowerQuad()), nil).Cases(5)
	for i := range a {
		if a[i].AccelLen != b[i].AccelLen || a[i].Input[0] != b[i].Input[0] {
			t.Fatal("generator not deterministic for fixed seed")
		}
	}
}

// Case i must be a pure function of (seed, candidate, profile, i): the
// surrounding draws (earlier cases, other candidates, other goroutines)
// must not shift it. This is what makes IO generation safe under the
// parallel synthesis pool.
func TestCaseStreamIndependence(t *testing.T) {
	cand := baseCand(accel.NewPowerQuad())
	cand.FreeParams = []string{"junk", "extra"}
	g := New(42, cand, nil)
	all := g.Cases(12)
	for i := range all {
		solo := New(42, cand, nil).Case(i)
		if solo.AccelLen != all[i].AccelLen {
			t.Fatalf("case %d size drifts: %d vs %d", i, solo.AccelLen, all[i].AccelLen)
		}
		for k, v := range all[i].Scalars {
			if solo.Scalars[k] != v {
				t.Fatalf("case %d scalar %s drifts: %d vs %d", i, k, solo.Scalars[k], v)
			}
		}
		for j := range all[i].Input {
			if solo.Input[j] != all[i].Input[j] {
				t.Fatalf("case %d signal drifts at %d", i, j)
			}
		}
	}
}

// Candidates that agree on the user-visible shape of a case must feed the
// user program the same signal (so the oracle can share reference runs),
// while user-visible differences (pins, free params) must give independent
// scalar streams rather than aliasing one shared rng.
func TestSignalSharedAcrossCandidatesScalarsNot(t *testing.T) {
	a := baseCand(accel.NewFFTWLib())
	a.Direction = &binding.DirectionSource{Constant: -1}
	b := baseCand(accel.NewFFTWLib())
	b.Direction = &binding.DirectionSource{Constant: 1}
	b.Flags = map[string]int64{"flags": 64}
	ca := New(5, a, nil).Cases(4)
	cb := New(5, b, nil).Cases(4)
	for i := range ca {
		if ca[i].AccelLen != cb[i].AccelLen {
			t.Fatalf("case %d sizes diverge for accel-side-only variants", i)
		}
		for j := range ca[i].Input {
			if ca[i].Input[j] != cb[i].Input[j] {
				t.Fatalf("case %d signals diverge for accel-side-only variants", i)
			}
		}
	}

	p := baseCand(accel.NewPowerQuad())
	p.FreeParams = []string{"junk"}
	q := baseCand(accel.NewPowerQuad())
	q.FreeParams = []string{"junk"}
	q.Pins = []binding.ScalarPin{{Param: "mode", Value: 1}}
	cp := New(5, p, nil).Cases(16)
	cq := New(5, q, nil).Cases(16)
	same := 0
	for i := range cp {
		if cp[i].Scalars["junk"] == cq[i].Scalars["junk"] {
			same++
		}
	}
	if same == len(cp) {
		t.Error("user-visibly distinct candidates draw an identical free-scalar stream")
	}
}

// DeriveSeed is part of the reproducibility contract: the same inputs must
// hash to the same sub-seed across runs and platforms, and nearby labels
// must land far apart.
func TestDeriveSeedStableAndIndependent(t *testing.T) {
	if got := DeriveSeed(1, "signal", 64, 0); got != DeriveSeed(1, "signal", 64, 0) {
		t.Fatal("DeriveSeed not deterministic")
	}
	seen := map[int64]string{}
	for _, seed := range []int64{0, 1, 2} {
		for _, label := range []string{"signal", "size", "scalar:x", "scalar:y"} {
			for idx := int64(0); idx < 4; idx++ {
				s := DeriveSeed(seed, label, idx)
				if prev, dup := seen[s]; dup {
					t.Fatalf("collision: (%d,%s,%d) vs %s", seed, label, idx, prev)
				}
				seen[s] = fmt.Sprintf("(%d,%s,%d)", seed, label, idx)
			}
		}
	}
}

// UserSig must ignore accelerator-side knobs and be canonical under
// reordering of pins and free parameters.
func TestUserSigCanonical(t *testing.T) {
	a := baseCand(accel.NewFFTWLib())
	a.Direction = &binding.DirectionSource{Constant: -1}
	a.Flags = map[string]int64{"flags": 0}
	b := baseCand(accel.NewFFTWLib())
	b.Direction = &binding.DirectionSource{Constant: 1}
	b.Flags = map[string]int64{"flags": 64}
	if UserSig(a) != UserSig(b) {
		t.Errorf("accel-side knobs leak into UserSig:\n%s\n%s", UserSig(a), UserSig(b))
	}

	c := baseCand(accel.NewPowerQuad())
	c.Pins = []binding.ScalarPin{{Param: "a", Value: 1}, {Param: "b", Value: 2}}
	c.FreeParams = []string{"x", "y"}
	d := baseCand(accel.NewPowerQuad())
	d.Pins = []binding.ScalarPin{{Param: "b", Value: 2}, {Param: "a", Value: 1}}
	d.FreeParams = []string{"y", "x"}
	if UserSig(c) != UserSig(d) {
		t.Errorf("UserSig depends on pin/free ordering:\n%s\n%s", UserSig(c), UserSig(d))
	}

	e := baseCand(accel.NewPowerQuad())
	e.Pins = []binding.ScalarPin{{Param: "a", Value: 9}}
	if UserSig(c) == UserSig(e) {
		t.Error("distinct pin values must distinguish UserSig")
	}
}

func TestGeneratorConcurrentUse(t *testing.T) {
	cand := baseCand(accel.NewFFTA())
	cand.FreeParams = []string{"junk"}
	want := New(3, cand, nil).Cases(8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := New(3, cand, nil).Cases(8)
			for i := range want {
				if got[i].AccelLen != want[i].AccelLen ||
					got[i].Input[0] != want[i].Input[0] ||
					got[i].Scalars["junk"] != want[i].Scalars["junk"] {
					t.Errorf("concurrent generation diverged at case %d", i)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestFallbackSizes(t *testing.T) {
	p := analysis.NewProfile()
	for _, v := range []int64{64, 100, 8192 * 16} {
		p.ObserveInt("n", v)
	}
	fb := FallbackSizes(accel.NewFFTA(), p, "n", binding.ConvIdentity)
	want := map[int64]bool{100: true, 8192 * 16: true}
	if len(fb) != 2 {
		t.Fatalf("fallback sizes = %v", fb)
	}
	for _, v := range fb {
		if !want[v] {
			t.Errorf("unexpected fallback size %d", v)
		}
	}
}
