package faultinject

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// readDurable reads what actually survived on the real disk — the state
// a post-crash reopen would see.
func readDurable(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		t.Fatal(err)
	}
	return data
}

func TestCrashVFSUnsyncedWritesAreNotDurable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	v := NewCrashVFS(nil, CrashPlan{})
	f, err := v.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("hello"), 0); err != nil {
		t.Fatal(err)
	}
	// The running process sees its own write...
	buf := make([]byte, 5)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Fatalf("overlay read = %q", buf)
	}
	// ...but the disk does not until Sync.
	if d := readDurable(t, path); len(d) != 0 {
		t.Fatalf("unsynced write reached the disk: %q", d)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if d := readDurable(t, path); string(d) != "hello" {
		t.Fatalf("synced bytes = %q", d)
	}
}

func TestCrashVFSCleanCrashLosesPendingWrites(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	// Site 1: first WriteAt. Site 2: Sync.
	v := NewCrashVFS(nil, CrashPlan{Site: 2, Mode: CrashClean})
	f, _ := v.Open(path)
	if _, err := f.WriteAt([]byte("doomed"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Sync = %v, want ErrCrashed", err)
	}
	if d := readDurable(t, path); len(d) != 0 {
		t.Fatalf("clean crash leaked bytes: %q", d)
	}
	// The process is dead: everything fails now.
	if _, err := f.WriteAt([]byte("x"), 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash WriteAt = %v", err)
	}
	if _, err := f.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash ReadAt = %v", err)
	}
	if _, err := v.Open(filepath.Join(dir, "g")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash Open = %v", err)
	}
	if !v.Crashed() {
		t.Fatal("Crashed() = false after the crash fired")
	}
}

func TestCrashVFSTornWriteLandsPrefix(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	v := NewCrashVFS(nil, CrashPlan{Site: 1, Mode: CrashTorn})
	f, _ := v.Open(path)
	if _, err := f.WriteAt([]byte("0123456789"), 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("WriteAt = %v, want ErrCrashed", err)
	}
	if d := readDurable(t, path); string(d) != "01234" {
		t.Fatalf("torn write left %q, want the 5-byte prefix", d)
	}
}

func TestCrashVFSBitFlipDamagesExactlyOneBit(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	want := bytes.Repeat([]byte{0xAA}, 64)
	v := NewCrashVFS(nil, CrashPlan{Site: 1, Mode: CrashBitFlip})
	f, _ := v.Open(path)
	if _, err := f.WriteAt(want, 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("WriteAt = %v, want ErrCrashed", err)
	}
	got := readDurable(t, path)
	if len(got) != len(want) {
		t.Fatalf("bitflip write length = %d, want %d", len(got), len(want))
	}
	diff := 0
	for i := range got {
		diff += popcount(got[i] ^ want[i])
	}
	if diff != 1 {
		t.Fatalf("bitflip changed %d bits, want exactly 1", diff)
	}
}

func popcount(b byte) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}

func TestCrashVFSTornSyncFlushesPrefixOfPending(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	// Sites: write, write, write, write, sync=5.
	v := NewCrashVFS(nil, CrashPlan{Site: 5, Mode: CrashTorn})
	f, _ := v.Open(path)
	for i := 0; i < 4; i++ {
		if _, err := f.WriteAt(bytes.Repeat([]byte{byte('a' + i)}, 8), int64(i*8)); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Sync = %v, want ErrCrashed", err)
	}
	d := readDurable(t, path)
	// Half the pending ops (2 of 4) land, the second torn to 4 bytes.
	if string(d) != "aaaaaaaabbbb" {
		t.Fatalf("torn sync left %q", d)
	}
}

func TestCrashVFSSiteEnumerationIsDeterministic(t *testing.T) {
	run := func() []CrashSite {
		dir := t.TempDir()
		v := NewCrashVFS(nil, CrashPlan{})
		f, _ := v.Open(filepath.Join(dir, "db"))
		f.WriteAt([]byte("page one"), 0)
		f.WriteAt([]byte("page two"), 64)
		f.Sync()
		f.Truncate(32)
		f.Sync()
		w, _ := v.Open(filepath.Join(dir, "wal"))
		w.WriteAt([]byte("rec"), 0)
		w.Sync()
		v.Rename(filepath.Join(dir, "wal"), filepath.Join(dir, "wal.old"))
		v.Remove(filepath.Join(dir, "wal.old"))
		return v.Sites()
	}
	a, b := run(), run()
	if len(a) != 9 || len(b) != 9 {
		t.Fatalf("site counts = %d, %d, want 9", len(a), len(b))
	}
	for i := range a {
		if a[i].Site != b[i].Site || a[i].Op != b[i].Op || a[i].File != b[i].File {
			t.Fatalf("site %d differs across identical runs: %+v vs %+v", i, a[i], b[i])
		}
	}
	ops := SiteOps(a)
	if ops["write"] != 3 || ops["sync"] != 3 || ops["truncate"] != 1 || ops["rename"] != 1 || ops["remove"] != 1 {
		t.Fatalf("op histogram = %v", ops)
	}
}

func TestCrashVFSCloseDropsPending(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	v := NewCrashVFS(nil, CrashPlan{})
	f, _ := v.Open(path)
	f.WriteAt([]byte("gone"), 0)
	f.Close()
	if d := readDurable(t, path); len(d) != 0 {
		t.Fatalf("Close made unsynced bytes durable: %q", d)
	}
}
