package faultinject

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"facc/internal/accel"
	"facc/internal/fft"
	"facc/internal/obs"
)

// TestParseProfilePresets covers the named-profile surface: presets,
// preset + overrides, and the rejection diagnostics for unknown names.
func TestParseProfilePresets(t *testing.T) {
	p, err := ParseProfile("chaos")
	if err != nil {
		t.Fatalf("ParseProfile(chaos): %v", err)
	}
	if p != Presets["chaos"] {
		t.Fatalf("chaos = %+v, want %+v", p, Presets["chaos"])
	}
	p, err = ParseProfile("flaky,seed=9")
	if err != nil {
		t.Fatalf("ParseProfile(flaky,seed=9): %v", err)
	}
	if p.ErrorRate != Presets["flaky"].ErrorRate || p.Seed != 9 {
		t.Fatalf("flaky,seed=9 = %+v", p)
	}
	if _, err := ParseProfile("chaotic"); err == nil {
		t.Error("unknown preset accepted")
	} else if got := err.Error(); !strings.Contains(got, "chaos") || !strings.Contains(got, "flaky") {
		t.Errorf("unknown-preset diagnostic should list presets, got %q", got)
	}
}

// TestParseProfileRejectsMalformed pins the hardening: NaN/Inf rates,
// duplicate keys, presets in non-leading position, and empty keys are
// errors rather than silently misparsed profiles.
func TestParseProfileRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"error=NaN", "error=nan", "corrupt=+Inf", "latency=-Inf",
		"error=0.3,error=0.5", "seed=1,seed=2",
		"seed=1,flaky", "=0.3", "error=0.3,,corrupt=0.1",
	} {
		if p, err := ParseProfile(bad); err == nil {
			t.Errorf("ParseProfile(%q) = %+v, want error", bad, p)
		}
	}
	// Whitespace around keys and values is tolerated, not an error.
	p, err := ParseProfile(" error = 0.3 , seed = 7 ")
	if err != nil {
		t.Fatalf("spaced profile: %v", err)
	}
	if p.ErrorRate != 0.3 || p.Seed != 7 {
		t.Fatalf("spaced profile = %+v", p)
	}
}

// gateRunner is a device whose behavior the test scripts: while failing
// is set it returns transients immediately; otherwise each call
// announces itself on entered and blocks until release is closed, so a
// test can hold a probe in flight while other callers race it.
type gateRunner struct {
	mu      sync.Mutex
	calls   int
	failing bool
	entered chan struct{}
	release chan struct{}
}

func (g *gateRunner) Run(in []complex128, _ fft.Direction) ([]complex128, error) {
	g.mu.Lock()
	g.calls++
	call := g.calls
	failing := g.failing
	g.mu.Unlock()
	if failing {
		return nil, &TransientError{Call: call}
	}
	g.entered <- struct{}{}
	<-g.release
	return append([]complex128(nil), in...), nil
}

func (g *gateRunner) callCount() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.calls
}

// TestBreakerHalfOpenSingleProbeConcurrent drives the half-open window
// with many concurrent callers (run under -race by `make chaos`): the
// contract is that exactly ONE caller probes the recovering device while
// every other caller in the window degrades to the fallback, and a
// successful probe closes the circuit for everyone after.
func TestBreakerHalfOpenSingleProbeConcurrent(t *testing.T) {
	reg := obs.NewRegistry()
	device := &gateRunner{
		failing: true,
		entered: make(chan struct{}, 1),
		release: make(chan struct{}),
	}
	fallback := accel.RunnerFunc(func(in []complex128, _ fft.Direction) ([]complex128, error) {
		return []complex128{complex(42, 0)}, nil
	})
	b := NewBreaker(device, fallback, reg)
	b.Threshold = 2
	b.Cooldown = 50 * time.Millisecond
	var clockMu sync.Mutex
	clock := time.Unix(1000, 0)
	b.now = func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return clock
	}
	input := testInput(4)

	// Open the circuit with consecutive transient failures.
	for i := 0; i < 2; i++ {
		if _, err := b.Run(input, fft.Forward); err != nil {
			t.Fatalf("failure %d surfaced: %v", i, err)
		}
	}
	if b.State() != Open {
		t.Fatalf("state = %v, want open", b.State())
	}
	callsWhileOpen := device.callCount()

	// Device recovers; cooldown elapses. The next window is half-open.
	device.mu.Lock()
	device.failing = false
	device.mu.Unlock()
	clockMu.Lock()
	clock = clock.Add(b.Cooldown)
	clockMu.Unlock()

	const callers = 12
	results := make(chan complex128, callers)
	errs := make(chan error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, err := b.Run(input, fft.Forward)
			if err != nil {
				errs <- err
				return
			}
			results <- out[0]
		}()
	}

	// One caller reaches the device and parks there.
	select {
	case <-device.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("no probe reached the device")
	}
	// Every other caller must complete via the fallback while the probe
	// is still in flight — none may stack up behind the device.
	fallbacks := 0
	for fallbacks < callers-1 {
		select {
		case v := <-results:
			if v != complex(42, 0) {
				t.Fatalf("non-probe caller got %v, want fallback output", v)
			}
			fallbacks++
		case err := <-errs:
			t.Fatalf("caller error during half-open: %v", err)
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d of %d non-probe callers completed while the probe was in flight",
				fallbacks, callers-1)
		}
	}
	if got := device.callCount() - callsWhileOpen; got != 1 {
		t.Fatalf("device probed %d times in the half-open window, want exactly 1", got)
	}

	// Release the probe: it succeeds and closes the circuit.
	close(device.release)
	wg.Wait()
	select {
	case v := <-results:
		if v != input[0] {
			t.Fatalf("probe result = %v, want device output %v", v, input[0])
		}
	default:
		t.Fatal("probe result missing")
	}
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed after successful probe", b.State())
	}

	// Subsequent traffic flows to the device again.
	device.entered = make(chan struct{}, 8)
	if out, err := b.Run(input, fft.Forward); err != nil || out[0] != input[0] {
		t.Fatalf("post-close call: out=%v err=%v", out, err)
	}
}

// TestIOBreaker exercises the store-facing breaker: consecutive
// failures open it, open rejects without invoking the operation, a
// successful probe closes it.
func TestIOBreaker(t *testing.T) {
	reg := obs.NewRegistry()
	b := NewIOBreaker("store", reg)
	b.Threshold = 3
	clock := time.Unix(2000, 0)
	b.now = func() time.Time { return clock }

	ops := 0
	boom := errors.New("disk on fire")
	failing := func() error { ops++; return boom }
	healthy := func() error { ops++; return nil }

	for i := 0; i < 3; i++ {
		if err := b.Do(failing); !errors.Is(err, boom) {
			t.Fatalf("failure %d: %v", i, err)
		}
	}
	if b.State() != Open {
		t.Fatalf("state = %v, want open", b.State())
	}
	if err := b.Do(healthy); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open circuit: err=%v, want ErrCircuitOpen", err)
	}
	if ops != 3 {
		t.Fatalf("op invoked %d times, want 3 (open circuit must not run ops)", ops)
	}
	clock = clock.Add(b.Cooldown)
	if err := b.Do(healthy); err != nil {
		t.Fatalf("probe: %v", err)
	}
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed", b.State())
	}
	c := reg.Counters()
	if c["store.breaker.rejected"] != 1 {
		t.Fatalf("rejected = %d, want 1", c["store.breaker.rejected"])
	}
	if c["store.breaker.transitions.open"] != 1 || c["store.breaker.transitions.closed"] != 1 {
		t.Fatalf("transition counters = %v", c)
	}
	if fmt.Sprint(HalfOpen) != "half-open" {
		t.Fatalf("State stringer broken: %v", HalfOpen)
	}
}
