// Package faultinject hardens FACC's accelerator execution path against
// unreliable hardware. The paper frames adapters as bridging fixed-function
// devices that reject or mangle work outside their contract; this package
// makes that concrete: a fault Injector wraps an accel.Runner with a
// seeded, configurable profile of transient errors, value corruption and
// latency spikes, a Retry decorator absorbs transients with bounded
// exponential backoff, and a circuit Breaker degrades to the pure-software
// FFT path (the spec's own simulator over internal/fft) when the platform
// stays unhealthy — so a flaky accelerator costs retries, not compiles.
//
// All decorators are deterministic for a fixed Profile.Seed and record
// their activity in an obs.Registry (nil-safe), which surfaces in the
// /status endpoint and Prometheus exposition:
//
//	accel.faults.injected.transient / .corrupt / .latency
//	accel.retries, accel.retry.exhausted
//	accel.breaker.transitions.<state>, accel.breaker.state (gauge)
//	accel.degraded_runs
package faultinject

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"facc/internal/accel"
	"facc/internal/fft"
	"facc/internal/obs"
)

// Profile configures an injected fault distribution. Rates are
// probabilities in [0,1] drawn independently per Run call from a stream
// seeded by Seed, so a given (profile, call sequence) always injects the
// same faults — chaos tests are reproducible.
type Profile struct {
	// ErrorRate is the probability a call fails with a TransientError
	// (the device was busy, the DMA handshake timed out, ...). Transients
	// are retryable.
	ErrorRate float64
	// CorruptRate is the probability a call silently corrupts its output:
	// one element is replaced with NaN or a scaled value. Corruption is
	// not signalled — it models datapath bit-flips the driver cannot see.
	CorruptRate float64
	// LatencyRate is the probability a call stalls for Latency before
	// completing (a spike, not the mean).
	LatencyRate float64
	// Latency is the injected stall duration (default 1ms when a spike
	// fires with no duration configured).
	Latency time.Duration
	// Seed fixes the fault stream; 0 means seed 1.
	Seed int64
}

// zero reports whether the profile injects nothing.
func (p Profile) zero() bool {
	return p.ErrorRate <= 0 && p.CorruptRate <= 0 && p.LatencyRate <= 0
}

// String renders the profile compactly (the -faults flag format).
func (p Profile) String() string {
	var parts []string
	if p.ErrorRate > 0 {
		parts = append(parts, fmt.Sprintf("error=%g", p.ErrorRate))
	}
	if p.CorruptRate > 0 {
		parts = append(parts, fmt.Sprintf("corrupt=%g", p.CorruptRate))
	}
	if p.LatencyRate > 0 {
		parts = append(parts, fmt.Sprintf("latency=%g", p.LatencyRate))
	}
	if p.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", p.Seed))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// Presets are the named fault profiles accepted by ParseProfile: a bare
// name (optionally followed by key=value overrides, e.g. "flaky,seed=9")
// selects a curated distribution instead of spelling out every rate.
var Presets = map[string]Profile{
	// flaky: a device that frequently reports transient failures but
	// never lies — exercises retry and the breaker without corruption.
	"flaky": {ErrorRate: 0.3},
	// lossy: rare silent output corruption — exercises the fuzzer's
	// rejection of candidates validated against a lying device.
	"lossy": {CorruptRate: 0.05},
	// slow: latency spikes only — exercises deadlines and budgets.
	"slow": {LatencyRate: 0.2, Latency: time.Millisecond},
	// chaos: everything at once, the full chaos-test distribution.
	"chaos": {ErrorRate: 0.2, CorruptRate: 0.02, LatencyRate: 0.1, Latency: time.Millisecond},
}

// presetNames returns the sorted preset list for error messages.
func presetNames() string {
	names := make([]string, 0, len(Presets))
	for n := range Presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// ParseProfile parses the -faults flag syntax: either explicit rates
// ("error=0.3,corrupt=0.01,latency=0.1,seed=7") or a preset name with
// optional overrides ("chaos", "flaky,seed=9"). Unknown keys, unknown
// preset names, duplicate keys and out-of-range or non-finite rates
// (NaN, Inf) are all rejected with a diagnostic naming the valid forms;
// an empty string is the zero profile.
func ParseProfile(s string) (Profile, error) {
	var p Profile
	if strings.TrimSpace(s) == "" {
		return p, nil
	}
	seen := map[string]bool{}
	for i, kv := range strings.Split(s, ",") {
		kv = strings.TrimSpace(kv)
		key, val, ok := strings.Cut(kv, "=")
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		if !ok {
			if i == 0 {
				preset, found := Presets[key]
				if !found {
					return Profile{}, fmt.Errorf("faultinject: unknown fault profile %q (presets: %s; or key=value with keys error, corrupt, latency, seed)", key, presetNames())
				}
				p = preset
				continue
			}
			return Profile{}, fmt.Errorf("faultinject: malformed %q (want key=value)", kv)
		}
		if key == "" {
			return Profile{}, fmt.Errorf("faultinject: malformed %q (empty key)", kv)
		}
		if seen[key] {
			return Profile{}, fmt.Errorf("faultinject: duplicate key %q", key)
		}
		seen[key] = true
		switch key {
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Profile{}, fmt.Errorf("faultinject: seed %q: %v", val, err)
			}
			p.Seed = n
		case "error", "corrupt", "latency":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || math.IsNaN(f) || math.IsInf(f, 0) || f < 0 || f > 1 {
				return Profile{}, fmt.Errorf("faultinject: rate %s=%q (want a probability in [0,1])", key, val)
			}
			switch key {
			case "error":
				p.ErrorRate = f
			case "corrupt":
				p.CorruptRate = f
			case "latency":
				p.LatencyRate = f
			}
		default:
			return Profile{}, fmt.Errorf("faultinject: unknown key %q (want error, corrupt, latency, seed)", key)
		}
	}
	return p, nil
}

// TransientError is a retryable injected failure — the class of fault a
// real driver would report for a busy device or a dropped handshake.
type TransientError struct {
	Call int // 1-based injector call index that failed
}

func (e *TransientError) Error() string {
	return fmt.Sprintf("faultinject: transient accelerator fault (call %d)", e.Call)
}

// Injector wraps a Runner with an injected fault profile.
type Injector struct {
	next    accel.Runner
	profile Profile
	reg     *obs.Registry // nil-safe

	// sleep is swappable so tests can observe latency spikes without
	// real stalls.
	sleep func(time.Duration)

	mu    sync.Mutex
	rng   *rand.Rand
	calls int
}

// NewInjector decorates next with the profile's fault distribution,
// reporting injections to reg (may be nil).
func NewInjector(next accel.Runner, p Profile, reg *obs.Registry) *Injector {
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	return &Injector{
		next:    next,
		profile: p,
		reg:     reg,
		sleep:   time.Sleep,
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// Run forwards to the wrapped runner, injecting faults per the profile.
// The three draws happen on every call in a fixed order, so the fault
// stream for a given seed does not depend on which rates are enabled.
func (in *Injector) Run(input []complex128, dir fft.Direction) ([]complex128, error) {
	in.mu.Lock()
	in.calls++
	call := in.calls
	failNow := in.rng.Float64() < in.profile.ErrorRate
	corruptNow := in.rng.Float64() < in.profile.CorruptRate
	stallNow := in.rng.Float64() < in.profile.LatencyRate
	corruptAt := 0
	corruptNaN := false
	if len(input) > 0 {
		corruptAt = in.rng.Intn(len(input))
		corruptNaN = in.rng.Float64() < 0.5
	}
	in.mu.Unlock()

	if stallNow {
		in.count("accel.faults.injected.latency")
		d := in.profile.Latency
		if d <= 0 {
			d = time.Millisecond
		}
		in.sleep(d)
	}
	if failNow {
		in.count("accel.faults.injected.transient")
		return nil, &TransientError{Call: call}
	}
	out, err := in.next.Run(input, dir)
	if err != nil {
		return nil, err
	}
	if corruptNow && len(out) > 0 {
		in.count("accel.faults.injected.corrupt")
		// Corrupt a private copy: callers own their outputs, but the
		// wrapped simulator might one day cache.
		c := append([]complex128(nil), out...)
		if corruptNaN {
			c[corruptAt] = complex(math.NaN(), imag(c[corruptAt]))
		} else {
			c[corruptAt] *= 1000
		}
		out = c
	}
	return out, nil
}

func (in *Injector) count(name string) { in.reg.Counter(name).Inc() }
