// Crash-point injection: a virtual file system whose every durable
// operation is a numbered crash site.
//
// The adapter store (internal/store) drives all of its disk I/O through
// the VFS seam below. In production that is a thin wrapper over the os
// package. Under test, CrashVFS interposes: it buffers writes the way an
// operating system page cache does (nothing reaches the durable file
// until Sync), counts every WriteAt / Sync / Truncate / Rename / Remove
// as one crash site, and at a planned site simulates power loss — the
// process "dies" (every subsequent operation fails with ErrCrashed) and
// all unsynced data is gone, exactly as a real crash would leave the
// disk. Three failure shapes are modelled at the chosen site:
//
//	CrashClean   the operation never happens; unsynced data is lost.
//	CrashTorn    a prefix of the operation's bytes becomes durable
//	             before the lights go out (a torn sector write).
//	CrashBitFlip the operation lands fully but with one bit flipped
//	             (a datapath or media error at the worst moment).
//
// A crash-matrix test first probes a workload with no crash planned to
// enumerate its sites, then replays it once per (site, mode) pair and
// asserts the store recovers. Because the workload is deterministic, the
// site numbering is too.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// ErrCrashed marks every I/O operation attempted after the injected
// crash fired: the simulated process is dead and nothing else reaches
// the disk.
var ErrCrashed = errors.New("faultinject: simulated crash (power lost)")

// VFS is the file-system seam crash injection interposes on. The store
// performs every durable operation through it.
type VFS interface {
	// Open opens path read-write, creating it if absent.
	Open(path string) (File, error)
	// Remove deletes path (no error if absent is not required).
	Remove(path string) error
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
}

// File is the random-access durable file handle the store writes pages
// and WAL records through.
type File interface {
	io.ReaderAt
	io.WriterAt
	// Sync makes every preceding write durable.
	Sync() error
	// Truncate resizes the file.
	Truncate(size int64) error
	// Size returns the current file size as observed by ReadAt.
	Size() (int64, error)
	Close() error
}

// OSVFS is the production VFS: direct os-package I/O.
type OSVFS struct{}

type osFile struct{ f *os.File }

// Open implements VFS.
func (OSVFS) Open(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	return &osFile{f: f}, nil
}

// Remove implements VFS.
func (OSVFS) Remove(path string) error { return os.Remove(path) }

// Rename implements VFS.
func (OSVFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (f *osFile) ReadAt(p []byte, off int64) (int, error)  { return f.f.ReadAt(p, off) }
func (f *osFile) WriteAt(p []byte, off int64) (int, error) { return f.f.WriteAt(p, off) }
func (f *osFile) Sync() error                              { return f.f.Sync() }
func (f *osFile) Truncate(size int64) error                { return f.f.Truncate(size) }
func (f *osFile) Close() error                             { return f.f.Close() }

func (f *osFile) Size() (int64, error) {
	st, err := f.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// CrashMode selects what the planned crash site does to the operation it
// interrupts.
type CrashMode int

const (
	// CrashClean loses the operation entirely (and all unsynced data).
	CrashClean CrashMode = iota
	// CrashTorn makes a prefix of the operation's bytes durable first.
	CrashTorn
	// CrashBitFlip makes the operation durable with one bit flipped.
	CrashBitFlip
)

// String names the mode for reports.
func (m CrashMode) String() string {
	switch m {
	case CrashClean:
		return "clean"
	case CrashTorn:
		return "torn"
	case CrashBitFlip:
		return "bitflip"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// CrashModes lists every mode a crash matrix should exercise.
var CrashModes = []CrashMode{CrashClean, CrashTorn, CrashBitFlip}

// CrashPlan schedules one simulated crash. Site is the 1-based index of
// the durable operation to crash at; 0 means never crash (the probe run
// that enumerates sites).
type CrashPlan struct {
	Site int
	Mode CrashMode
}

// CrashSite describes one enumerated durable operation, recorded by the
// probe run and reported by the crash matrix.
type CrashSite struct {
	Site int    `json:"site"`
	Op   string `json:"op"`   // write, sync, truncate, rename, remove
	File string `json:"file"` // base name of the file the op touched
	Len  int    `json:"len,omitempty"`
}

// CrashVFS simulates an operating system between the store and the disk:
// writes are buffered per file until Sync, and the configured CrashPlan
// fires mid-workload. Safe for concurrent use (the store serializes
// commits, but reads run concurrently).
type CrashVFS struct {
	base VFS
	plan CrashPlan

	mu      sync.Mutex
	site    int
	crashed bool
	sites   []CrashSite
	files   map[string]*crashFile
}

// NewCrashVFS wraps base (nil means OSVFS) with the plan.
func NewCrashVFS(base VFS, plan CrashPlan) *CrashVFS {
	if base == nil {
		base = OSVFS{}
	}
	return &CrashVFS{base: base, plan: plan, files: map[string]*crashFile{}}
}

// Crashed reports whether the planned crash has fired.
func (v *CrashVFS) Crashed() bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.crashed
}

// Sites returns the durable operations counted so far (the crash-site
// enumeration when the plan never fires).
func (v *CrashVFS) Sites() []CrashSite {
	v.mu.Lock()
	defer v.mu.Unlock()
	return append([]CrashSite(nil), v.sites...)
}

// step books one durable operation. It returns (fire, mode): fire is true
// exactly at the planned site; once fired — or for any op after — the
// caller must fail with ErrCrashed. Caller holds v.mu.
func (v *CrashVFS) step(op, path string, n int) (bool, error) {
	if v.crashed {
		return false, ErrCrashed
	}
	v.site++
	v.sites = append(v.sites, CrashSite{Site: v.site, Op: op, File: filepath.Base(path), Len: n})
	if v.plan.Site > 0 && v.site == v.plan.Site {
		v.crashed = true
		return true, nil
	}
	return false, nil
}

// flipBit deterministically flips one bit of p in place, keyed by the
// site number so different sites damage different bits.
func flipBit(p []byte, site int) {
	if len(p) == 0 {
		return
	}
	i := (site * 7919) % len(p)
	p[i] ^= 1 << (site % 8)
}

// Open implements VFS. Opening is not a crash site (it performs no
// durable mutation), but a crashed VFS refuses it.
func (v *CrashVFS) Open(path string) (File, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.crashed {
		return nil, ErrCrashed
	}
	if cf, ok := v.files[path]; ok {
		return cf, nil
	}
	f, err := v.base.Open(path)
	if err != nil {
		return nil, err
	}
	cf := &crashFile{vfs: v, path: path, f: f}
	v.files[path] = cf
	return cf, nil
}

// Remove implements VFS; one crash site (clean only — there is no torn
// unlink).
func (v *CrashVFS) Remove(path string) error {
	v.mu.Lock()
	fire, err := v.step("remove", path, 0)
	if err != nil {
		v.mu.Unlock()
		return err
	}
	delete(v.files, path)
	v.mu.Unlock()
	if fire {
		return ErrCrashed // the unlink never reached the disk
	}
	return v.base.Remove(path)
}

// Rename implements VFS; one crash site. Rename is atomic on the real
// disk, so torn/bitflip degrade to clean: either it happened or it did
// not. The crash fires before the rename, modelling the unluckier half.
func (v *CrashVFS) Rename(oldpath, newpath string) error {
	v.mu.Lock()
	fire, err := v.step("rename", oldpath, 0)
	if err != nil {
		v.mu.Unlock()
		return err
	}
	of := v.files[oldpath]
	if !fire {
		delete(v.files, oldpath)
		if of != nil {
			of.path = newpath
			v.files[newpath] = of
		}
	}
	v.mu.Unlock()
	if fire {
		return ErrCrashed
	}
	return v.base.Rename(oldpath, newpath)
}

// pendingOp is one unsynced mutation, replayed in order.
type pendingOp struct {
	off      int64
	data     []byte
	truncate bool
	size     int64
}

// crashFile buffers writes until Sync, like a page cache.
type crashFile struct {
	vfs  *CrashVFS
	path string
	f    File

	// pending is the ordered unsynced-op log (guarded by vfs.mu).
	pending []pendingOp
}

// ReadAt reads through the durable file with unsynced ops overlaid, the
// view the running process sees.
func (c *crashFile) ReadAt(p []byte, off int64) (int, error) {
	c.vfs.mu.Lock()
	defer c.vfs.mu.Unlock()
	if c.vfs.crashed {
		return 0, ErrCrashed
	}
	size := c.sizeLocked()
	if off >= size {
		return 0, io.EOF
	}
	want := len(p)
	if off+int64(want) > size {
		want = int(size - off)
	}
	// Base bytes (zero-fill past the durable end: unsynced extends).
	n, err := c.f.ReadAt(p[:want], off)
	if err != nil && err != io.EOF {
		return n, err
	}
	for i := n; i < want; i++ {
		p[i] = 0
	}
	// Overlay unsynced ops in order.
	end := off + int64(want)
	for _, op := range c.pending {
		if op.truncate {
			for i := op.size; i < end; i++ {
				if i >= off {
					p[i-off] = 0
				}
			}
			continue
		}
		from, to := op.off, op.off+int64(len(op.data))
		if to <= off || from >= end {
			continue
		}
		cs, ce := from, to
		if cs < off {
			cs = off
		}
		if ce > end {
			ce = end
		}
		copy(p[cs-off:ce-off], op.data[cs-op.off:ce-op.off])
	}
	if int64(want) < int64(len(p)) {
		return want, io.EOF
	}
	return want, nil
}

// sizeLocked is the overlaid size. Caller holds vfs.mu.
func (c *crashFile) sizeLocked() int64 {
	size, _ := c.f.Size()
	for _, op := range c.pending {
		if op.truncate {
			size = op.size
		} else if e := op.off + int64(len(op.data)); e > size {
			size = e
		}
	}
	return size
}

func (c *crashFile) Size() (int64, error) {
	c.vfs.mu.Lock()
	defer c.vfs.mu.Unlock()
	if c.vfs.crashed {
		return 0, ErrCrashed
	}
	return c.sizeLocked(), nil
}

// WriteAt buffers the write (unsynced). At the planned site the crash
// fires: clean loses this write, torn makes a prefix durable, bitflip
// makes a damaged copy durable — and everything still pending is lost.
func (c *crashFile) WriteAt(p []byte, off int64) (int, error) {
	c.vfs.mu.Lock()
	defer c.vfs.mu.Unlock()
	fire, err := c.vfs.step("write", c.path, len(p))
	if err != nil {
		return 0, err
	}
	if fire {
		switch c.vfs.plan.Mode {
		case CrashTorn:
			if n := len(p) / 2; n > 0 {
				c.f.WriteAt(p[:n], off)
			}
		case CrashBitFlip:
			d := append([]byte(nil), p...)
			flipBit(d, c.vfs.site)
			c.f.WriteAt(d, off)
		}
		c.f.Sync()
		return 0, ErrCrashed
	}
	c.pending = append(c.pending, pendingOp{off: off, data: append([]byte(nil), p...)})
	return len(p), nil
}

// Truncate buffers the resize like any other unsynced op.
func (c *crashFile) Truncate(size int64) error {
	c.vfs.mu.Lock()
	defer c.vfs.mu.Unlock()
	fire, err := c.vfs.step("truncate", c.path, 0)
	if err != nil {
		return err
	}
	if fire {
		return ErrCrashed // the resize never became durable
	}
	c.pending = append(c.pending, pendingOp{truncate: true, size: size})
	return nil
}

// Sync flushes every pending op to the durable file in order. At the
// planned site the crash interrupts the flush: clean flushes nothing,
// torn flushes a prefix of the pending ops (the last one cut in half),
// bitflip flushes everything but flips one bit in one op.
func (c *crashFile) Sync() error {
	c.vfs.mu.Lock()
	defer c.vfs.mu.Unlock()
	fire, err := c.vfs.step("sync", c.path, len(c.pending))
	if err != nil {
		return err
	}
	if fire {
		switch c.vfs.plan.Mode {
		case CrashTorn:
			// Half the pending ops land; the last of them is torn.
			keep := (len(c.pending) + 1) / 2
			for i := 0; i < keep; i++ {
				op := c.pending[i]
				if op.truncate {
					c.f.Truncate(op.size)
					continue
				}
				d := op.data
				if i == keep-1 && len(d) > 1 {
					d = d[:len(d)/2]
				}
				c.f.WriteAt(d, op.off)
			}
		case CrashBitFlip:
			for i, op := range c.pending {
				if op.truncate {
					c.f.Truncate(op.size)
					continue
				}
				d := op.data
				if i == len(c.pending)-1 {
					d = append([]byte(nil), d...)
					flipBit(d, c.vfs.site)
				}
				c.f.WriteAt(d, op.off)
			}
		}
		c.f.Sync()
		c.pending = nil
		return ErrCrashed
	}
	for _, op := range c.pending {
		if op.truncate {
			if err := c.f.Truncate(op.size); err != nil {
				return err
			}
			continue
		}
		if _, err := c.f.WriteAt(op.data, op.off); err != nil {
			return err
		}
	}
	c.pending = nil
	return c.f.Sync()
}

// Close closes the durable handle. Unsynced data is dropped — exactly
// what a crash before Sync would do — so tests that Close without Sync
// observe the loss. Not a crash site: closing performs no durable write.
func (c *crashFile) Close() error {
	c.vfs.mu.Lock()
	defer c.vfs.mu.Unlock()
	c.pending = nil
	delete(c.vfs.files, c.path)
	return c.f.Close()
}

// SiteOps summarizes enumerated sites per operation kind, for reports.
func SiteOps(sites []CrashSite) map[string]int {
	m := map[string]int{}
	for _, s := range sites {
		m[s.Op]++
	}
	return m
}

// SortSites orders a site list by site number (reports).
func SortSites(sites []CrashSite) {
	sort.Slice(sites, func(i, j int) bool { return sites[i].Site < sites[j].Site })
}
