package faultinject

import (
	"errors"
	"sync"
	"time"

	"facc/internal/accel"
	"facc/internal/fft"
	"facc/internal/obs"
)

// State is a circuit-breaker state.
type State int

// Breaker states: Closed passes traffic through; Open routes everything
// to the fallback; HalfOpen lets one probe through after the cooldown.
const (
	Closed State = iota
	Open
	HalfOpen
)

func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// Breaker is a circuit breaker over an accelerator Runner with graceful
// degradation: every transient device failure is served by the fallback
// (the pure-software FFT path) instead of failing the compile, and while
// the circuit is open work skips the device entirely. Consecutive
// transient failures past Threshold open the circuit; after Cooldown one
// probe is allowed through (half-open); a successful probe closes it
// again.
type Breaker struct {
	next accel.Runner
	// Fallback handles work while the circuit is open (and when a
	// half-open probe fails). Typically Spec.Simulate — the same
	// functional contract on the software path.
	fallback accel.Runner
	reg      *obs.Registry

	// Threshold is the consecutive-failure count that opens the circuit
	// (default 5).
	Threshold int
	// Cooldown is how long the circuit stays open before a probe
	// (default 100ms).
	Cooldown time.Duration
	// OnStateChange, when non-nil, observes every transition (journal
	// hook). Called outside the breaker lock.
	OnStateChange func(from, to State)

	// now is swappable for tests.
	now func() time.Time

	mu       sync.Mutex
	state    State
	failures int
	openedAt time.Time
	// probing marks that one half-open caller currently holds the probe
	// slot; concurrent callers in the half-open window are served by the
	// fallback instead of stampeding the possibly-sick device.
	probing bool
}

// NewBreaker wraps next with a circuit breaker degrading to fallback.
func NewBreaker(next, fallback accel.Runner, reg *obs.Registry) *Breaker {
	b := &Breaker{
		next:      next,
		fallback:  fallback,
		reg:       reg,
		Threshold: 5,
		Cooldown:  100 * time.Millisecond,
		now:       time.Now,
	}
	reg.Gauge("accel.breaker.state").Set(float64(Closed))
	return b
}

// State returns the current circuit state (Open decays to HalfOpen once
// the cooldown has elapsed, observable on the next Run).
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Run routes one transform through the breaker: pass-through when
// closed, fallback when open, a single probe when half-open.
//
// A transient failure of the wrapped runner (after its retry budget)
// never surfaces: the call is served by the fallback instead — a
// degraded run — and the failure counts toward opening the circuit. The
// breaker therefore decides only whether the device is still worth
// *attempting*; no single sick call can fail a compile. Non-transient
// errors (domain rejections) pass through untouched and count as
// neither failures nor degradations — the device is healthy, the input
// is outside its contract, and the software fallback would reject it
// identically.
func (b *Breaker) Run(input []complex128, dir fft.Direction) ([]complex128, error) {
	var notes []func()
	defer func() {
		for _, fn := range notes {
			fn()
		}
	}()

	b.mu.Lock()
	if b.state == Open && b.now().Sub(b.openedAt) >= b.Cooldown {
		notes = b.transition(HalfOpen, notes)
	}
	state := b.state
	probe := false
	if state == HalfOpen {
		// Exactly one caller probes the device per half-open window; the
		// rest degrade to the fallback until the probe's verdict is in.
		if !b.probing {
			b.probing, probe = true, true
		} else {
			state = Open
		}
	}
	b.mu.Unlock()

	if state == Open {
		b.reg.Counter("accel.degraded_runs").Inc()
		return b.fallback.Run(input, dir)
	}

	out, err := b.next.Run(input, dir)

	b.mu.Lock()
	if probe {
		b.probing = false
	}
	if err != nil {
		var te *TransientError
		if !errors.As(err, &te) {
			b.mu.Unlock()
			return nil, err
		}
		b.failures++
		if b.state == HalfOpen || b.failures >= b.Threshold {
			notes = b.transition(Open, notes)
			b.openedAt = b.now()
		}
		b.mu.Unlock()
		b.reg.Counter("accel.degraded_runs").Inc()
		return b.fallback.Run(input, dir)
	}
	b.failures = 0
	if b.state == HalfOpen {
		notes = b.transition(Closed, notes)
	}
	b.mu.Unlock()
	return out, nil
}

// transition records a state change (caller holds b.mu) and appends the
// OnStateChange notification to notes so it runs after the lock is
// released.
func (b *Breaker) transition(to State, notes []func()) []func() {
	from := b.state
	if from == to {
		return notes
	}
	b.state = to
	b.reg.Counter("accel.breaker.transitions." + to.String()).Inc()
	b.reg.Gauge("accel.breaker.state").Set(float64(to))
	if hook := b.OnStateChange; hook != nil {
		notes = append(notes, func() { hook(from, to) })
	}
	return notes
}

// Harden installs the full fault-tolerance chain on spec:
//
//	breaker( retry( injector(simulator) ) ) with fallback → simulator
//
// The injector models the unreliable device per profile; retry absorbs
// transients; the breaker degrades to the spec's own software simulator
// (internal/fft) when the device stays sick. With a zero profile only
// retry+breaker are installed — useful for hardening against a future
// real device backend. The returned breaker exposes state and the
// OnStateChange hook for journaling.
func Harden(spec *accel.Spec, p Profile, reg *obs.Registry) *Breaker {
	software := accel.RunnerFunc(spec.Simulate)
	var device accel.Runner = software
	if !p.zero() {
		device = NewInjector(software, p, reg)
	}
	retry := NewRetry(device, p.Seed+1, reg)
	breaker := NewBreaker(retry, software, reg)
	spec.Exec = breaker
	return breaker
}
