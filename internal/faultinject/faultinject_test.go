package faultinject

import (
	"errors"
	"math"
	"testing"
	"time"

	"facc/internal/accel"
	"facc/internal/fft"
	"facc/internal/obs"
)

// echoRunner returns its input unchanged — a perfectly healthy device.
type echoRunner struct{ calls int }

func (e *echoRunner) Run(in []complex128, _ fft.Direction) ([]complex128, error) {
	e.calls++
	out := append([]complex128(nil), in...)
	return out, nil
}

// scriptRunner fails while fail is set, then echoes.
type scriptRunner struct {
	fail  bool
	calls int
}

func (s *scriptRunner) Run(in []complex128, _ fft.Direction) ([]complex128, error) {
	s.calls++
	if s.fail {
		return nil, &TransientError{Call: s.calls}
	}
	return append([]complex128(nil), in...), nil
}

// failNRunner fails the first n calls with a transient, then echoes.
type failNRunner struct {
	n     int
	calls int
}

func (f *failNRunner) Run(in []complex128, _ fft.Direction) ([]complex128, error) {
	f.calls++
	if f.calls <= f.n {
		return nil, &TransientError{Call: f.calls}
	}
	return append([]complex128(nil), in...), nil
}

func testInput(n int) []complex128 {
	in := make([]complex128, n)
	for i := range in {
		in[i] = complex(float64(i%7)-3, float64(i%5)-2)
	}
	return in
}

func TestParseProfile(t *testing.T) {
	p, err := ParseProfile("error=0.3,corrupt=0.01,latency=0.1,seed=7")
	if err != nil {
		t.Fatalf("ParseProfile: %v", err)
	}
	want := Profile{ErrorRate: 0.3, CorruptRate: 0.01, LatencyRate: 0.1, Seed: 7}
	if p != want {
		t.Fatalf("ParseProfile = %+v, want %+v", p, want)
	}
	if p, err := ParseProfile("  "); err != nil || !p.zero() {
		t.Fatalf("empty profile: got %+v, %v", p, err)
	}
	for _, bad := range []string{"error=2", "error=-0.1", "bogus=1", "error", "seed=x"} {
		if _, err := ParseProfile(bad); err == nil {
			t.Errorf("ParseProfile(%q): expected error", bad)
		}
	}
}

func TestProfileString(t *testing.T) {
	p := Profile{ErrorRate: 0.3, Seed: 7}
	if got := p.String(); got != "error=0.3,seed=7" {
		t.Fatalf("String = %q", got)
	}
	if got := (Profile{}).String(); got != "none" {
		t.Fatalf("zero String = %q", got)
	}
}

// faultTrace summarizes one injector call for stream comparison.
type faultTrace struct {
	failed    bool
	corrupted bool
}

func traceStream(t *testing.T, p Profile, n int) []faultTrace {
	t.Helper()
	base := &echoRunner{}
	in := NewInjector(base, p, nil)
	in.sleep = func(time.Duration) {}
	input := testInput(16)
	var out []faultTrace
	for i := 0; i < n; i++ {
		got, err := in.Run(input, fft.Forward)
		tr := faultTrace{failed: err != nil}
		if err == nil {
			for j := range got {
				// NaN corruption also lands here: NaN != anything.
				if got[j] != input[j] {
					tr.corrupted = true
				}
			}
		}
		out = append(out, tr)
	}
	return out
}

func TestInjectorDeterministicBySeed(t *testing.T) {
	p := Profile{ErrorRate: 0.3, CorruptRate: 0.2, Seed: 42}
	a := traceStream(t, p, 300)
	b := traceStream(t, p, 300)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d: same seed diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
	p2 := p
	p2.Seed = 43
	c := traceStream(t, p2, 300)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("seeds 42 and 43 produced identical 300-call fault streams")
	}
}

func TestInjectorRates(t *testing.T) {
	const n = 2000
	reg := obs.NewRegistry()
	in := NewInjector(&echoRunner{}, Profile{ErrorRate: 0.3, Seed: 1}, reg)
	fails := 0
	input := testInput(8)
	for i := 0; i < n; i++ {
		if _, err := in.Run(input, fft.Forward); err != nil {
			fails++
			var te *TransientError
			if !errors.As(err, &te) {
				t.Fatalf("injected error is not a TransientError: %v", err)
			}
		}
	}
	// Binomial(2000, 0.3): mean 600, sd ~20.5. ±6 sd keeps flake
	// probability negligible while still catching a broken rate.
	if fails < 480 || fails > 720 {
		t.Fatalf("ErrorRate 0.3 over %d calls injected %d faults", n, fails)
	}
	if got := reg.Counters()["accel.faults.injected.transient"]; got != int64(fails) {
		t.Fatalf("counter %d, observed %d", got, fails)
	}
}

func TestInjectorCorruptionCopiesOutput(t *testing.T) {
	base := &echoRunner{}
	in := NewInjector(base, Profile{CorruptRate: 1, Seed: 3}, nil)
	input := testInput(16)
	pristine := append([]complex128(nil), input...)
	out, err := in.Run(input, fft.Forward)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	diffs := 0
	for i := range out {
		if out[i] != input[i] || math.IsNaN(real(out[i])) {
			diffs++
		}
	}
	if diffs != 1 {
		t.Fatalf("corruption touched %d elements, want exactly 1", diffs)
	}
	for i := range input {
		if input[i] != pristine[i] {
			t.Fatalf("injector mutated the caller's input slice")
		}
	}
}

func TestInjectorLatency(t *testing.T) {
	var slept []time.Duration
	in := NewInjector(&echoRunner{}, Profile{LatencyRate: 1, Seed: 1}, nil)
	in.sleep = func(d time.Duration) { slept = append(slept, d) }
	if _, err := in.Run(testInput(4), fft.Forward); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(slept) != 1 || slept[0] != time.Millisecond {
		t.Fatalf("default latency spike = %v, want [1ms]", slept)
	}
	in2 := NewInjector(&echoRunner{}, Profile{LatencyRate: 1, Latency: 5 * time.Millisecond, Seed: 1}, nil)
	slept = nil
	in2.sleep = func(d time.Duration) { slept = append(slept, d) }
	in2.Run(testInput(4), fft.Forward)
	if len(slept) != 1 || slept[0] != 5*time.Millisecond {
		t.Fatalf("configured latency spike = %v, want [5ms]", slept)
	}
}

func TestRetryAbsorbsTransients(t *testing.T) {
	reg := obs.NewRegistry()
	base := &failNRunner{n: 2}
	r := NewRetry(base, 1, reg)
	r.sleep = func(time.Duration) {}
	out, err := r.Run(testInput(8), fft.Forward)
	if err != nil {
		t.Fatalf("Run after transients: %v", err)
	}
	if len(out) != 8 || base.calls != 3 {
		t.Fatalf("out=%d calls=%d, want 8 and 3", len(out), base.calls)
	}
	if got := reg.Counters()["accel.retries"]; got != 2 {
		t.Fatalf("accel.retries = %d, want 2", got)
	}
	if got := reg.Counters()["accel.retry.exhausted"]; got != 0 {
		t.Fatalf("accel.retry.exhausted = %d, want 0", got)
	}
}

func TestRetryBoundedAttempts(t *testing.T) {
	reg := obs.NewRegistry()
	base := &scriptRunner{fail: true}
	r := NewRetry(base, 1, reg)
	r.sleep = func(time.Duration) {}
	_, err := r.Run(testInput(8), fft.Forward)
	var te *TransientError
	if !errors.As(err, &te) {
		t.Fatalf("want TransientError, got %v", err)
	}
	if base.calls != r.MaxAttempts {
		t.Fatalf("attempts = %d, want %d", base.calls, r.MaxAttempts)
	}
	if got := reg.Counters()["accel.retry.exhausted"]; got != 1 {
		t.Fatalf("accel.retry.exhausted = %d, want 1", got)
	}
}

func TestRetrySkipsNonTransient(t *testing.T) {
	domain := errors.New("length 7 outside accelerator domain")
	calls := 0
	r := NewRetry(accel.RunnerFunc(func([]complex128, fft.Direction) ([]complex128, error) {
		calls++
		return nil, domain
	}), 1, nil)
	r.sleep = func(time.Duration) {}
	if _, err := r.Run(testInput(8), fft.Forward); !errors.Is(err, domain) {
		t.Fatalf("want the domain error back, got %v", err)
	}
	if calls != 1 {
		t.Fatalf("non-transient error retried: %d calls", calls)
	}
}

func TestRetryBackoffBounds(t *testing.T) {
	r := NewRetry(&scriptRunner{fail: true}, 1, nil)
	r.BaseDelay = time.Millisecond
	r.MaxDelay = 4 * time.Millisecond
	for attempt := 1; attempt <= 6; attempt++ {
		step := r.BaseDelay << (attempt - 1)
		if step > r.MaxDelay {
			step = r.MaxDelay
		}
		for i := 0; i < 50; i++ {
			d := r.backoff(attempt)
			if d < 0 || d >= step {
				t.Fatalf("backoff(%d) = %v outside [0, %v)", attempt, d, step)
			}
		}
	}
}

func TestBreakerStateMachine(t *testing.T) {
	reg := obs.NewRegistry()
	device := &scriptRunner{fail: true}
	fallback := accel.RunnerFunc(func(in []complex128, _ fft.Direction) ([]complex128, error) {
		return []complex128{complex(42, 0)}, nil
	})
	b := NewBreaker(device, fallback, reg)
	b.Threshold = 2
	b.Cooldown = 100 * time.Millisecond
	clock := time.Unix(1000, 0)
	b.now = func() time.Time { return clock }
	var transitions []string
	b.OnStateChange = func(from, to State) {
		transitions = append(transitions, from.String()+"->"+to.String())
	}
	input := testInput(4)

	// Failure 1: below threshold — the call degrades to the fallback (a
	// transient failure never surfaces) but the circuit stays closed.
	out, err := b.Run(input, fft.Forward)
	if err != nil || len(out) != 1 || out[0] != complex(42, 0) {
		t.Fatalf("first failure: out=%v err=%v, want degraded fallback output", out, err)
	}
	if b.State() != Closed {
		t.Fatalf("state after 1 failure = %v, want closed", b.State())
	}

	// Failure 2: threshold reached — circuit opens and the call degrades.
	out, err = b.Run(input, fft.Forward)
	if err != nil || len(out) != 1 || out[0] != complex(42, 0) {
		t.Fatalf("opening call: out=%v err=%v, want fallback output", out, err)
	}
	if b.State() != Open {
		t.Fatalf("state = %v, want open", b.State())
	}

	// While open (cooldown not elapsed) everything degrades.
	if out, err := b.Run(input, fft.Forward); err != nil || out[0] != complex(42, 0) {
		t.Fatalf("open-circuit call: out=%v err=%v", out, err)
	}
	if device.calls != 2 {
		t.Fatalf("device called %d times, want 2 (open circuit must not probe early)", device.calls)
	}

	// Cooldown elapses; the half-open probe fails; circuit re-opens and
	// the probe call itself degrades.
	clock = clock.Add(b.Cooldown)
	if out, err := b.Run(input, fft.Forward); err != nil || out[0] != complex(42, 0) {
		t.Fatalf("failed-probe call: out=%v err=%v", out, err)
	}
	if b.State() != Open || device.calls != 3 {
		t.Fatalf("state=%v calls=%d, want open/3", b.State(), device.calls)
	}

	// Device recovers; next probe closes the circuit.
	device.fail = false
	clock = clock.Add(b.Cooldown)
	out, err = b.Run(input, fft.Forward)
	if err != nil || len(out) != len(input) {
		t.Fatalf("recovered probe: out=%v err=%v", out, err)
	}
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed after successful probe", b.State())
	}

	wantTransitions := []string{
		"closed->open",
		"open->half-open", "half-open->open",
		"open->half-open", "half-open->closed",
	}
	if len(transitions) != len(wantTransitions) {
		t.Fatalf("transitions = %v, want %v", transitions, wantTransitions)
	}
	for i := range transitions {
		if transitions[i] != wantTransitions[i] {
			t.Fatalf("transition %d = %s, want %s", i, transitions[i], wantTransitions[i])
		}
	}
	if got := reg.Counters()["accel.degraded_runs"]; got != 4 {
		t.Fatalf("accel.degraded_runs = %d, want 4", got)
	}
	if g := reg.Gauges()["accel.breaker.state"]; g != float64(Closed) {
		t.Fatalf("breaker.state gauge = %v, want %v", g, float64(Closed))
	}
}

// TestBreakerPassesDomainErrorsThrough: a non-transient error is a
// contract violation, not device sickness — it surfaces unchanged,
// counts as neither a failure nor a degradation, and never opens the
// circuit.
func TestBreakerPassesDomainErrorsThrough(t *testing.T) {
	reg := obs.NewRegistry()
	domain := errors.New("length 7 outside accelerator domain")
	b := NewBreaker(accel.RunnerFunc(func([]complex128, fft.Direction) ([]complex128, error) {
		return nil, domain
	}), accel.RunnerFunc(func([]complex128, fft.Direction) ([]complex128, error) {
		return []complex128{complex(42, 0)}, nil
	}), reg)
	b.Threshold = 2
	for i := 0; i < 10; i++ {
		if _, err := b.Run(testInput(4), fft.Forward); !errors.Is(err, domain) {
			t.Fatalf("call %d: err = %v, want the domain error", i, err)
		}
	}
	if b.State() != Closed {
		t.Fatalf("domain errors opened the circuit: state = %v", b.State())
	}
	if got := reg.Counters()["accel.degraded_runs"]; got != 0 {
		t.Fatalf("domain errors counted as degraded runs: %d", got)
	}
}

func TestHardenInstallsChainAndPreservesResults(t *testing.T) {
	spec, err := accel.SpecByName("ffta")
	if err != nil {
		t.Fatal(err)
	}
	br := Harden(spec, Profile{}, obs.NewRegistry())
	if spec.Exec == nil || br == nil {
		t.Fatal("Harden did not install an execution chain")
	}
	in := testInput(64)
	hardened, err := spec.Run(in, fft.Forward)
	if err != nil {
		t.Fatalf("hardened Run: %v", err)
	}
	plain, err := spec.Simulate(in, fft.Forward)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	for i := range plain {
		if hardened[i] != plain[i] {
			t.Fatalf("hardened output differs from the simulator at %d: %v vs %v",
				i, hardened[i], plain[i])
		}
	}
}

func TestHardenDegradesUnderTotalFailure(t *testing.T) {
	spec, err := accel.SpecByName("ffta")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	br := Harden(spec, Profile{ErrorRate: 1, Seed: 9}, reg)
	br.Cooldown = time.Hour // keep it open once it opens
	// Retry sleeps are real but tiny (µs range); tolerate them.
	in := testInput(64)
	for i := 0; i < br.Threshold+4; i++ {
		// Every call degrades successfully: transient failures are served
		// by the software fallback whether the circuit is open or not.
		out, err := spec.Run(in, fft.Forward)
		if err != nil || len(out) != len(in) {
			t.Fatalf("call %d: out=%d err=%v, want degraded success", i, len(out), err)
		}
	}
	if br.State() != Open {
		t.Fatalf("breaker state = %v, want open under 100%% faults", br.State())
	}
	c := reg.Counters()
	if c["accel.degraded_runs"] == 0 {
		t.Fatal("no degraded runs counted under total failure")
	}
	if c["accel.retry.exhausted"] == 0 {
		t.Fatal("retry budget never exhausted under total failure")
	}
}
