package faultinject

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"facc/internal/accel"
	"facc/internal/fft"
	"facc/internal/obs"
)

// Retry decorates a Runner with bounded retries of transient faults:
// exponential backoff with full jitter, capped attempts. Non-transient
// errors (domain rejections, direction unsupported) are never retried —
// they are contract violations retrying cannot fix.
type Retry struct {
	next accel.Runner
	reg  *obs.Registry

	// MaxAttempts bounds total tries per Run (default 3).
	MaxAttempts int
	// BaseDelay is the first backoff step (default 100µs; doubles per
	// attempt, jittered uniformly in [0, step)).
	BaseDelay time.Duration
	// MaxDelay caps one backoff step (default 10ms).
	MaxDelay time.Duration

	// sleep is swappable for tests.
	sleep func(time.Duration)

	mu  sync.Mutex
	rng *rand.Rand
}

// NewRetry decorates next; seed fixes the jitter stream.
func NewRetry(next accel.Runner, seed int64, reg *obs.Registry) *Retry {
	if seed == 0 {
		seed = 1
	}
	return &Retry{
		next:        next,
		reg:         reg,
		MaxAttempts: 3,
		BaseDelay:   100 * time.Microsecond,
		MaxDelay:    10 * time.Millisecond,
		sleep:       time.Sleep,
		rng:         rand.New(rand.NewSource(seed)),
	}
}

// Run tries the wrapped runner up to MaxAttempts times, backing off
// between transient failures. The last error is returned when the budget
// is exhausted.
func (r *Retry) Run(input []complex128, dir fft.Direction) ([]complex128, error) {
	attempts := r.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			r.reg.Counter("accel.retries").Inc()
			r.sleep(r.backoff(attempt))
		}
		out, err := r.next.Run(input, dir)
		if err == nil {
			return out, nil
		}
		lastErr = err
		var te *TransientError
		if !errors.As(err, &te) {
			return nil, err
		}
	}
	r.reg.Counter("accel.retry.exhausted").Inc()
	return nil, lastErr
}

// backoff computes the jittered exponential delay before retry `attempt`
// (1-based): uniform in [0, min(BaseDelay·2^(attempt-1), MaxDelay)).
func (r *Retry) backoff(attempt int) time.Duration {
	step := r.BaseDelay << (attempt - 1)
	if r.MaxDelay > 0 && step > r.MaxDelay {
		step = r.MaxDelay
	}
	if step <= 0 {
		return 0
	}
	r.mu.Lock()
	d := time.Duration(r.rng.Int63n(int64(step)))
	r.mu.Unlock()
	return d
}
