package faultinject

import (
	"errors"
	"sync"
	"time"

	"facc/internal/obs"
)

// ErrCircuitOpen is returned by IOBreaker.Do while the circuit is open
// (and by non-probe callers during the half-open window): the operation
// was not attempted. Callers degrade — the adapter store treats it as a
// cache miss and recompiles rather than waiting on sick storage.
var ErrCircuitOpen = errors.New("faultinject: circuit open")

// IOBreaker is the circuit breaker for plain error-returning operations
// (disk reads/writes in the adapter store, as opposed to accelerator
// Runner calls, which Breaker covers). Same state machine: consecutive
// failures past Threshold open the circuit, after Cooldown exactly one
// probe is allowed through, a successful probe closes it. Metrics are
// published under the given prefix:
//
//	<prefix>.breaker.transitions.<state> (counters)
//	<prefix>.breaker.state               (gauge, State enum value)
//	<prefix>.breaker.rejected            (operations skipped while open)
type IOBreaker struct {
	reg    *obs.Registry
	prefix string

	// Threshold is the consecutive-failure count that opens the circuit
	// (default 5).
	Threshold int
	// Cooldown is how long the circuit stays open before a probe
	// (default 250ms).
	Cooldown time.Duration
	// OnStateChange, when non-nil, observes transitions (called outside
	// the lock).
	OnStateChange func(from, to State)

	// now is swappable for tests.
	now func() time.Time

	mu       sync.Mutex
	state    State
	failures int
	openedAt time.Time
	probing  bool
}

// NewIOBreaker returns a closed breaker reporting under prefix (e.g.
// "store"). reg may be nil.
func NewIOBreaker(prefix string, reg *obs.Registry) *IOBreaker {
	b := &IOBreaker{
		reg:       reg,
		prefix:    prefix,
		Threshold: 5,
		Cooldown:  250 * time.Millisecond,
		now:       time.Now,
	}
	reg.Gauge(prefix + ".breaker.state").Set(float64(Closed))
	return b
}

// State returns the current circuit state.
func (b *IOBreaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Do runs op through the breaker. While the circuit is open (or another
// caller holds the half-open probe) it returns ErrCircuitOpen without
// invoking op; otherwise op's own error feeds the failure count.
func (b *IOBreaker) Do(op func() error) error {
	var notes []func()
	defer func() {
		for _, fn := range notes {
			fn()
		}
	}()

	b.mu.Lock()
	if b.state == Open && b.now().Sub(b.openedAt) >= b.Cooldown {
		notes = b.transition(HalfOpen, notes)
	}
	state := b.state
	probe := false
	if state == HalfOpen {
		if !b.probing {
			b.probing, probe = true, true
		} else {
			state = Open
		}
	}
	b.mu.Unlock()

	if state == Open {
		b.reg.Counter(b.prefix + ".breaker.rejected").Inc()
		return ErrCircuitOpen
	}

	err := op()

	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		b.probing = false
	}
	if err != nil {
		b.failures++
		if b.state == HalfOpen || b.failures >= b.Threshold {
			notes = b.transition(Open, notes)
			b.openedAt = b.now()
		}
		return err
	}
	b.failures = 0
	if b.state == HalfOpen {
		notes = b.transition(Closed, notes)
	}
	return nil
}

// transition records a state change (caller holds b.mu) and defers the
// OnStateChange notification until the lock is released.
func (b *IOBreaker) transition(to State, notes []func()) []func() {
	from := b.state
	if from == to {
		return notes
	}
	b.state = to
	b.reg.Counter(b.prefix + ".breaker.transitions." + to.String()).Inc()
	b.reg.Gauge(b.prefix + ".breaker.state").Set(float64(to))
	if hook := b.OnStateChange; hook != nil {
		notes = append(notes, func() { hook(from, to) })
	}
	return notes
}
