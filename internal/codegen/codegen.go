// Package codegen prints synthesized adapters as C source — the artifact
// the developer signs off on (paper §2.3, Fig. 3). The emitted function is
// a drop-in replacement for the user function: same signature, range check
// with software fallback, pre/post bindings around the accelerator call,
// and the post-behavioral patch.
package codegen

import (
	"fmt"
	"strings"

	"facc/internal/accel"
	"facc/internal/binding"
	"facc/internal/minic"
	"facc/internal/synth"
)

// Prelude returns the helper definitions adapters rely on, emitted once
// per translation unit.
func Prelude() string {
	return `/* Helpers emitted by FACC. */
typedef struct { float re; float im; } float_complex;

static int is_power_of_two(int n) {
    return n > 0 && (n & (n - 1)) == 0;
}

static void bit_reverse_permute(float_complex* x, int n) {
    int j = 0;
    for (int i = 1; i < n; i++) {
        int bit = n >> 1;
        for (; j & bit; bit >>= 1) j ^= bit;
        j |= bit;
        if (i < j) {
            float_complex t = x[i];
            x[i] = x[j];
            x[j] = t;
        }
    }
}
`
}

// Extern returns the prototype of the target's API call, so translation
// units containing an adapter are self-contained (the symbol is provided
// by the vendor SDK / library at link time).
func Extern(spec *accel.Spec) string {
	var params []string
	for _, p := range spec.Params {
		params = append(params, declString(p.Type, p.Name))
	}
	return fmt.Sprintf("void %s(%s);\n", spec.CallName, strings.Join(params, ", "))
}

// Emit renders the adapter for ad, wrapping user function fn.
func Emit(ad *synth.Adapter, fn *minic.FuncDecl) string {
	g := &gen{ad: ad, fn: fn, spec: ad.Cand.Spec}
	return g.emit()
}

type gen struct {
	ad   *synth.Adapter
	fn   *minic.FuncDecl
	spec *accel.Spec
	b    strings.Builder
	ind  int
}

func (g *gen) p(format string, args ...any) {
	g.b.WriteString(strings.Repeat("    ", g.ind))
	fmt.Fprintf(&g.b, format, args...)
	g.b.WriteString("\n")
}

func (g *gen) emit() string {
	fn := g.fn
	var params []string
	for _, prm := range fn.Params {
		params = append(params, paramDecl(prm))
	}
	ret := typeName(fn.Type.Ret)
	g.p("/* Drop-in replacement for %s, targeting %s (%s).", fn.Name, g.spec.Name, g.spec.DomainDescription())
	g.p(" * Validated by IO-equivalence on %d fuzzed inputs; developer sign-off required. */",
		g.ad.TestsPassed)
	g.p("%s %s_accel(%s) {", ret, fn.Name, strings.Join(params, ", "))
	g.ind++

	lenExpr := g.lengthExpr()
	g.p("/* Range check: fall back to software outside the accelerator domain. */")
	g.p("if (%s) {", g.ad.Check.CCondition(lenExpr))
	g.ind++
	g.p("int __len = %s;", lenExpr)
	g.emitBuffers()
	g.emitPreBinding()
	g.emitCall()
	g.emitPostBehavior()
	g.emitPostBinding()
	if g.ad.ReturnConst != nil {
		g.p("return %d;", *g.ad.ReturnConst)
	} else if fn.Type.Ret.Kind != minic.TVoid {
		g.p("return 0;")
	}
	g.ind--
	g.p("} else {")
	g.ind++
	g.p("/* Fallback to the original user code. */")
	var args []string
	for _, prm := range fn.Params {
		args = append(args, prm.Name)
	}
	if fn.Type.Ret.Kind != minic.TVoid {
		g.p("return %s(%s);", fn.Name, strings.Join(args, ", "))
	} else {
		g.p("%s(%s);", fn.Name, strings.Join(args, ", "))
	}
	g.ind--
	g.p("}")

	g.ind--
	g.p("}")
	return g.b.String()
}

// lengthExpr renders the accelerator length in terms of user variables.
func (g *gen) lengthExpr() string {
	lb := g.ad.Cand.Length
	if lb.Param == "" {
		return fmt.Sprintf("%d", lb.Const)
	}
	if lb.Conv == binding.ConvExp2 {
		return fmt.Sprintf("(1 << %s)", lb.Param)
	}
	return lb.Param
}

// emitBuffers declares the accelerator-side buffers, honoring alignment.
func (g *gen) emitBuffers() {
	align := ""
	if g.spec.AlignmentBytes > 0 {
		align = fmt.Sprintf("__attribute__((aligned(%d))) ", g.spec.AlignmentBytes)
	}
	g.p("/* Accelerator buffers (%s is out-of-place). */", g.spec.Name)
	g.p("%sfloat_complex __acc_in[__len];", align)
	g.p("%sfloat_complex __acc_out[__len];", align)
}

// emitPreBinding converts user data into the accelerator's format.
func (g *gen) emitPreBinding() {
	in := g.ad.Cand.Input
	g.p("/* Pre-binding: user representation -> accelerator format. */")
	switch in.Layout {
	case binding.LayoutC99:
		g.p("for (int __i = 0; __i < __len; __i++) {")
		g.p("    __acc_in[__i].re = (float)creal(%s[__i]);", in.Param)
		g.p("    __acc_in[__i].im = (float)cimag(%s[__i]);", in.Param)
		g.p("}")
	case binding.LayoutStruct:
		reF, imF := structFieldNames(in)
		g.p("for (int __i = 0; __i < __len; __i++) {")
		g.p("    __acc_in[__i].re = (float)%s[__i].%s;", in.Param, reF)
		g.p("    __acc_in[__i].im = (float)%s[__i].%s;", in.Param, imF)
		g.p("}")
	case binding.LayoutSplit:
		g.p("for (int __i = 0; __i < __len; __i++) {")
		g.p("    __acc_in[__i].re = (float)%s[__i];", in.ReParam)
		g.p("    __acc_in[__i].im = (float)%s[__i];", in.ImParam)
		g.p("}")
	}
}

// emitCall invokes the accelerator API.
func (g *gen) emitCall() {
	var args []string
	for _, p := range g.spec.Params {
		switch p.Role {
		case accel.RoleInput:
			args = append(args, "__acc_in")
		case accel.RoleOutput:
			args = append(args, "__acc_out")
		case accel.RoleLength:
			args = append(args, "__len")
		case accel.RoleDirection:
			args = append(args, g.directionExpr())
		case accel.RoleFlags:
			args = append(args, fmt.Sprintf("%d", g.ad.Cand.Flags[p.Name]))
		}
	}
	g.p("/* Accelerator call. */")
	g.p("%s(%s);", g.spec.CallName, strings.Join(args, ", "))
}

func (g *gen) directionExpr() string {
	d := g.ad.Cand.Direction
	if d == nil {
		return "0"
	}
	if d.Param == "" {
		return fmt.Sprintf("%d", d.Constant)
	}
	// Two-valued mapping rendered as a conditional.
	var keys []int64
	for k := range d.Map {
		keys = append(keys, k)
	}
	if len(keys) == 2 {
		lo, hi := keys[0], keys[1]
		if lo > hi {
			lo, hi = hi, lo
		}
		return fmt.Sprintf("(%s == %d ? %d : %d)", d.Param, lo, d.Map[lo], d.Map[hi])
	}
	return fmt.Sprintf("%d", d.Constant)
}

// emitPostBehavior patches the accelerator output (denormalize, ...).
func (g *gen) emitPostBehavior() {
	if g.ad.Post.IsIdentity() {
		return
	}
	g.p("/* Post-behavioral patch: %s. */", g.ad.Post)
	for _, line := range g.ad.Post.CCode("__acc_out", "__len") {
		g.p("%s", line)
	}
}

// emitPostBinding writes the accelerator output back in the user's format.
func (g *gen) emitPostBinding() {
	out := g.ad.Cand.Output
	g.p("/* Post-binding: accelerator format -> user representation. */")
	switch out.Layout {
	case binding.LayoutC99:
		elem := "double complex"
		if out.Elem != nil && out.Elem.Kind == minic.TComplexFloat {
			elem = "float complex"
		}
		g.p("for (int __i = 0; __i < __len; __i++) {")
		g.p("    %s[__i] = (%s)(__acc_out[__i].re + __acc_out[__i].im * I);", out.Param, elem)
		g.p("}")
	case binding.LayoutStruct:
		reF, imF := structFieldNames(out)
		g.p("for (int __i = 0; __i < __len; __i++) {")
		g.p("    %s[__i].%s = __acc_out[__i].re;", out.Param, reF)
		g.p("    %s[__i].%s = __acc_out[__i].im;", out.Param, imF)
		g.p("}")
	case binding.LayoutSplit:
		g.p("for (int __i = 0; __i < __len; __i++) {")
		g.p("    %s[__i] = __acc_out[__i].re;", out.ReParam)
		g.p("    %s[__i] = __acc_out[__i].im;", out.ImParam)
		g.p("}")
	}
}

// structFieldNames resolves the user struct's field names for the bound
// real/imaginary offsets.
func structFieldNames(b binding.ArrayBinding) (re, im string) {
	re, im = "re", "im"
	if b.Elem != nil && b.Elem.Kind == minic.TStruct && len(b.Elem.Fields) == 2 {
		re = b.Elem.Fields[b.ReOff].Name
		im = b.Elem.Fields[b.ImOff].Name
	}
	return re, im
}

func paramDecl(prm *minic.VarDecl) string {
	return declString(prm.Type, prm.Name)
}

func declString(t *minic.Type, name string) string {
	switch t.Kind {
	case minic.TPointer:
		return declString(t.Elem, "*"+name)
	case minic.TArray:
		return declString(t.Elem, name+"[]")
	default:
		return typeName(t) + " " + name
	}
}

func typeName(t *minic.Type) string {
	switch t.Kind {
	case minic.TStruct:
		if t.StructName != "" {
			if t.FromTypedef {
				return t.StructName
			}
			return "struct " + t.StructName
		}
		return "struct {}"
	case minic.TComplexFloat:
		return "float complex"
	case minic.TComplexDouble:
		return "double complex"
	default:
		return t.String()
	}
}
