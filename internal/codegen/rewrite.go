package codegen

import (
	"facc/internal/minic"
)

// RewriteCalls renames every call to oldName (outside oldName itself and
// outside the adapter) to newName, in place — the paper's final step:
// "user code is now replaced with a call to the adapter" (Fig. 1). The
// original function stays defined because the adapter's range-check
// fallback still calls it. Returns the number of call sites rewritten.
func RewriteCalls(f *minic.File, oldName, newName string) int {
	n := 0
	for _, fn := range f.Funcs {
		if fn.Body == nil || fn.Name == oldName || fn.Name == newName {
			continue
		}
		n += rewriteStmt(fn.Body, oldName, newName)
	}
	return n
}

func rewriteStmt(s minic.Stmt, oldName, newName string) int {
	n := 0
	switch st := s.(type) {
	case nil:
	case *minic.ExprStmt:
		n += rewriteExpr(st.X, oldName, newName)
	case *minic.DeclStmt:
		for _, d := range st.Decls {
			n += rewriteExpr(d.Init, oldName, newName)
			if d.Type != nil {
				n += rewriteExpr(d.Type.ArrayLenExpr, oldName, newName)
			}
		}
	case *minic.BlockStmt:
		for _, sub := range st.List {
			n += rewriteStmt(sub, oldName, newName)
		}
	case *minic.IfStmt:
		n += rewriteExpr(st.Cond, oldName, newName)
		n += rewriteStmt(st.Then, oldName, newName)
		n += rewriteStmt(st.Else, oldName, newName)
	case *minic.ForStmt:
		n += rewriteStmt(st.Init, oldName, newName)
		n += rewriteExpr(st.Cond, oldName, newName)
		n += rewriteExpr(st.Post, oldName, newName)
		n += rewriteStmt(st.Body, oldName, newName)
	case *minic.WhileStmt:
		n += rewriteExpr(st.Cond, oldName, newName)
		n += rewriteStmt(st.Body, oldName, newName)
	case *minic.SwitchStmt:
		n += rewriteExpr(st.Tag, oldName, newName)
		for _, cc := range st.Cases {
			n += rewriteExpr(cc.Value, oldName, newName)
			for _, sub := range cc.Body {
				n += rewriteStmt(sub, oldName, newName)
			}
		}
	case *minic.ReturnStmt:
		n += rewriteExpr(st.Value, oldName, newName)
	}
	return n
}

func rewriteExpr(e minic.Expr, oldName, newName string) int {
	n := 0
	switch x := e.(type) {
	case nil:
	case *minic.CallExpr:
		if id, ok := x.Fun.(*minic.IdentExpr); ok && x.Builtin == "" &&
			id.Func != nil && id.Func.Name == oldName {
			id.Name = newName
			id.Func = nil // resolution refreshes on the next Check
			n++
		}
		n += rewriteExpr(x.Fun, oldName, newName)
		for _, a := range x.Args {
			n += rewriteExpr(a, oldName, newName)
		}
	case *minic.UnaryExpr:
		n += rewriteExpr(x.X, oldName, newName)
	case *minic.BinaryExpr:
		n += rewriteExpr(x.L, oldName, newName)
		n += rewriteExpr(x.R, oldName, newName)
	case *minic.AssignExpr:
		n += rewriteExpr(x.L, oldName, newName)
		n += rewriteExpr(x.R, oldName, newName)
	case *minic.CondExpr:
		n += rewriteExpr(x.Cond, oldName, newName)
		n += rewriteExpr(x.Then, oldName, newName)
		n += rewriteExpr(x.Else, oldName, newName)
	case *minic.IndexExpr:
		n += rewriteExpr(x.X, oldName, newName)
		n += rewriteExpr(x.Index, oldName, newName)
	case *minic.MemberExpr:
		n += rewriteExpr(x.X, oldName, newName)
	case *minic.CastExpr:
		n += rewriteExpr(x.X, oldName, newName)
	case *minic.CommaExpr:
		n += rewriteExpr(x.L, oldName, newName)
		n += rewriteExpr(x.R, oldName, newName)
	case *minic.SizeofExpr:
		n += rewriteExpr(x.X, oldName, newName)
	case *minic.InitListExpr:
		for _, it := range x.Items {
			n += rewriteExpr(it, oldName, newName)
		}
	}
	return n
}
