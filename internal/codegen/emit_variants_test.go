package codegen

import (
	"context"
	"strings"
	"testing"

	"facc/internal/accel"
	"facc/internal/analysis"
	"facc/internal/minic"
	"facc/internal/synth"
)

func synthAdapter(t *testing.T, src, fn string, spec *accel.Spec,
	profile map[string][]int64) (*synth.Adapter, *minic.FuncDecl) {
	t.Helper()
	f, err := minic.ParseAndCheck("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	prof := analysis.NewProfile()
	for name, vals := range profile {
		for _, v := range vals {
			prof.ObserveInt(name, v)
		}
	}
	res, err := synth.Synthesize(context.Background(), f, f.Func(fn), spec, prof, synth.Options{NumTests: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Adapter == nil {
		t.Fatalf("no adapter: %s", res.FailReason)
	}
	return res.Adapter, f.Func(fn)
}

func TestEmitSplitArrayAdapter(t *testing.T) {
	src := `
#include <math.h>
void fft_sp(double* re, double* im, int n) {
    double ore[n];
    double oim[n];
    for (int k = 0; k < n; k++) {
        double sre = 0.0;
        double sim = 0.0;
        for (int j = 0; j < n; j++) {
            double a = -2.0 * M_PI * (double)j * (double)k / (double)n;
            sre += re[j] * cos(a) - im[j] * sin(a);
            sim += re[j] * sin(a) + im[j] * cos(a);
        }
        ore[k] = sre;
        oim[k] = sim;
    }
    for (int k = 0; k < n; k++) {
        re[k] = ore[k];
        im[k] = oim[k];
    }
}`
	ad, fn := synthAdapter(t, src, "fft_sp", accel.NewPowerQuad(),
		map[string][]int64{"n": {16, 32}})
	out := Emit(ad, fn)
	for _, w := range []string{
		"void fft_sp_accel(double *re, double *im, int n)",
		"__acc_in[__i].re = (float)re[__i];",
		"__acc_in[__i].im = (float)im[__i];",
		"re[__i] = __acc_out[__i].re;",
		"im[__i] = __acc_out[__i].im;",
	} {
		if !strings.Contains(out, w) {
			t.Errorf("split adapter missing %q:\n%s", w, out)
		}
	}
}

func TestEmitExp2LengthAdapter(t *testing.T) {
	src := `
#include <math.h>
typedef struct { double re; double im; } cpx;
void fft_log(cpx* x, int logn) {
    int n = 1 << logn;
    cpx out[n];
    for (int k = 0; k < n; k++) {
        double sre = 0.0;
        double sim = 0.0;
        for (int j = 0; j < n; j++) {
            double a = -2.0 * M_PI * (double)j * (double)k / (double)n;
            sre += x[j].re * cos(a) - x[j].im * sin(a);
            sim += x[j].re * sin(a) + x[j].im * cos(a);
        }
        out[k].re = sre;
        out[k].im = sim;
    }
    for (int k = 0; k < n; k++) x[k] = out[k];
}`
	ad, fn := synthAdapter(t, src, "fft_log", accel.NewPowerQuad(),
		map[string][]int64{"logn": {4, 5}})
	out := Emit(ad, fn)
	if !strings.Contains(out, "int __len = (1 << logn);") {
		t.Errorf("2^n length conversion not emitted:\n%s", out)
	}
	// The profile (4..5 → 16..32) stays inside the PowerQuad domain and
	// 1<<k is a power of two by construction, so the minimal check can
	// drop everything.
	if strings.Contains(out, "is_power_of_two") {
		t.Errorf("redundant pow2 check for 1<<logn:\n%s", out)
	}
}

func TestEmitC99Adapter(t *testing.T) {
	src := `
#include <math.h>
#include <complex.h>
void fft_c(double complex* in, double complex* out, int n) {
    for (int k = 0; k < n; k++) {
        double complex sum = 0.0;
        for (int j = 0; j < n; j++) {
            sum += in[j] * cexp(-2.0 * M_PI * I * (double)j * (double)k / (double)n);
        }
        out[k] = sum;
    }
}`
	ad, fn := synthAdapter(t, src, "fft_c", accel.NewPowerQuad(),
		map[string][]int64{"n": {16, 32}})
	out := Emit(ad, fn)
	for _, w := range []string{
		"__acc_in[__i].re = (float)creal(in[__i]);",
		"__acc_in[__i].im = (float)cimag(in[__i]);",
		"out[__i] = (double complex)(__acc_out[__i].re + __acc_out[__i].im * I);",
	} {
		if !strings.Contains(out, w) {
			t.Errorf("c99 adapter missing %q:\n%s", w, out)
		}
	}
}

func TestExternPrototypes(t *testing.T) {
	if got := Extern(accel.NewFFTA()); got !=
		"void accel_cfft(float_complex *input, float_complex *output, int len);\n" {
		t.Errorf("FFTA extern = %q", got)
	}
	if got := Extern(accel.NewFFTWLib()); !strings.Contains(got, "int direction, int flags") {
		t.Errorf("FFTW extern = %q", got)
	}
}
