package codegen

import (
	"context"
	"strings"
	"testing"

	"facc/internal/accel"
	"facc/internal/analysis"
	"facc/internal/minic"
	"facc/internal/synth"
)

// userSrc is an in-place DFT that supports any length, so a profile mixing
// power-of-two and awkward sizes is realistic and the hardware targets need
// their full range checks.
const userSrc = `
#include <math.h>
typedef struct { double re; double im; } cpx;
void fft(cpx* x, int n) {
    cpx out[n];
    for (int k = 0; k < n; k++) {
        double sre = 0.0;
        double sim = 0.0;
        for (int j = 0; j < n; j++) {
            double a = -2.0 * M_PI * (double)j * (double)k / (double)n;
            sre += x[j].re * cos(a) - x[j].im * sin(a);
            sim += x[j].re * sin(a) + x[j].im * cos(a);
        }
        out[k].re = sre;
        out[k].im = sim;
    }
    for (int k = 0; k < n; k++) x[k] = out[k];
}`

func makeAdapter(t *testing.T, spec *accel.Spec) (*synth.Adapter, *minic.FuncDecl) {
	t.Helper()
	f, err := minic.ParseAndCheck("t.c", userSrc)
	if err != nil {
		t.Fatal(err)
	}
	fn := f.Func("fft")
	// The value-profiling environment: the application passes a mix of
	// lengths, some outside each accelerator's domain — so the emitted
	// adapter needs the full range check, and fuzzing sticks to the
	// supported subset.
	prof := analysis.NewProfile()
	for _, v := range []int64{32, 64, 100, 128, 70000} {
		prof.ObserveInt("n", v)
	}
	res, err := synth.Synthesize(context.Background(), f, fn, spec, prof, synth.Options{NumTests: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Adapter == nil {
		t.Fatalf("no adapter: %s", res.FailReason)
	}
	return res.Adapter, fn
}

func TestEmitFFTAAdapter(t *testing.T) {
	ad, fn := makeAdapter(t, accel.NewFFTA())
	src := Emit(ad, fn)
	wants := []string{
		"void fft_accel(cpx *x, int n)",
		"is_power_of_two(n)",
		"n >= 64",
		"n <= 65536",
		"__attribute__((aligned(64))) float_complex __acc_in[__len];",
		"__acc_in[__i].re = (float)x[__i].re;",
		"accel_cfft(__acc_in, __acc_out, __len);",
		"__acc_out[__k].re *= (float)__len;", // denormalize the FFTA
		"x[__i].re = __acc_out[__i].re;",
		"fft(x, n);", // fallback
	}
	for _, w := range wants {
		if !strings.Contains(src, w) {
			t.Errorf("emitted adapter missing %q\n%s", w, src)
		}
	}
}

func TestEmitPowerQuadIdentityPost(t *testing.T) {
	ad, fn := makeAdapter(t, accel.NewPowerQuad())
	src := Emit(ad, fn)
	if strings.Contains(src, "Post-behavioral") {
		t.Errorf("PowerQuad adapter should need no post-behavior:\n%s", src)
	}
	if !strings.Contains(src, "pq_cfft(__acc_in, __acc_out, __len);") {
		t.Errorf("missing PowerQuad call:\n%s", src)
	}
	if strings.Contains(src, "aligned") {
		t.Error("PowerQuad has no alignment requirement")
	}
}

func TestEmitFFTWDirectionAndFlags(t *testing.T) {
	ad, fn := makeAdapter(t, accel.NewFFTWLib())
	src := Emit(ad, fn)
	if !strings.Contains(src, "fftw_call(__acc_in, __acc_out, __len, -1, ") {
		t.Errorf("FFTW call should pass specialized forward direction:\n%s", src)
	}
}

func TestPreludeCompilesUnderMiniC(t *testing.T) {
	// The prelude must itself be valid MiniC (minus the GCC attribute).
	src := Prelude()
	if _, err := minic.ParseAndCheck("prelude.c", src); err != nil {
		t.Fatalf("prelude does not parse: %v", err)
	}
}

func TestEmitReturnConstant(t *testing.T) {
	src := `
#include <math.h>
typedef struct { double re; double im; } cpx;
int fft(cpx* x, int n) {
    cpx out[n];
    for (int k = 0; k < n; k++) {
        double sre = 0.0;
        double sim = 0.0;
        for (int j = 0; j < n; j++) {
            double a = -2.0 * M_PI * (double)j * (double)k / (double)n;
            sre += x[j].re * cos(a) - x[j].im * sin(a);
            sim += x[j].re * sin(a) + x[j].im * cos(a);
        }
        out[k].re = sre;
        out[k].im = sim;
    }
    for (int k = 0; k < n; k++) x[k] = out[k];
    return 0;
}`
	f, err := minic.ParseAndCheck("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	prof := analysis.NewProfile()
	prof.ObserveInt("n", 16)
	prof.ObserveInt("n", 32)
	res, err := synth.Synthesize(context.Background(), f, f.Func("fft"), accel.NewPowerQuad(), prof,
		synth.Options{NumTests: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Adapter == nil {
		t.Fatalf("no adapter: %s", res.FailReason)
	}
	out := Emit(res.Adapter, f.Func("fft"))
	if !strings.Contains(out, "return 0;") {
		t.Errorf("missing learned constant return:\n%s", out)
	}
	if !strings.Contains(out, "return fft(x, n);") {
		t.Errorf("fallback must forward the return value:\n%s", out)
	}
}
