package gnn

import (
	"math"
	"math/rand"
	"testing"
)

func TestMatMulBasics(t *testing.T) {
	a := NewMat(2, 3)
	copy(a.A, []float64{1, 2, 3, 4, 5, 6})
	b := NewMat(3, 2)
	copy(b.A, []float64{7, 8, 9, 10, 11, 12})
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, v := range want {
		if c.A[i] != v {
			t.Fatalf("matmul = %v, want %v", c.A, want)
		}
	}
}

func TestMatMulTransposes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewMat(4, 3)
	b := NewMat(4, 5)
	for i := range a.A {
		a.A[i] = rng.NormFloat64()
	}
	for i := range b.A {
		b.A[i] = rng.NormFloat64()
	}
	// aᵀ b via explicit transpose.
	at := NewMat(3, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			at.Set(j, i, a.At(i, j))
		}
	}
	want := MatMul(at, b)
	got := MatMulT1(a, b)
	for i := range want.A {
		if math.Abs(got.A[i]-want.A[i]) > 1e-12 {
			t.Fatal("MatMulT1 mismatch")
		}
	}
	// a bᵀ with compatible shapes.
	c := NewMat(2, 3)
	d := NewMat(4, 3)
	for i := range c.A {
		c.A[i] = rng.NormFloat64()
	}
	for i := range d.A {
		d.A[i] = rng.NormFloat64()
	}
	dt := NewMat(3, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			dt.Set(j, i, d.At(i, j))
		}
	}
	want2 := MatMul(c, dt)
	got2 := MatMulT2(c, d)
	for i := range want2.A {
		if math.Abs(got2.A[i]-want2.A[i]) > 1e-12 {
			t.Fatal("MatMulT2 mismatch")
		}
	}
}

func TestSoftmax(t *testing.T) {
	p := Softmax([]float64{1, 2, 3})
	sum := 0.0
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("softmax sum = %g", sum)
	}
	if !(p[2] > p[1] && p[1] > p[0]) {
		t.Errorf("softmax not monotone: %v", p)
	}
	// Large logits must not overflow.
	p = Softmax([]float64{1000, 1001})
	if math.IsNaN(p[0]) || math.IsNaN(p[1]) {
		t.Error("softmax overflow")
	}
}

func TestAdjNormalization(t *testing.T) {
	// Path graph 0-1-2.
	adj := NewAdj(3, [][2]int{{0, 1}, {1, 2}})
	x := NewMat(3, 1)
	x.Set(0, 0, 1)
	x.Set(1, 0, 1)
	x.Set(2, 0, 1)
	y := adj.Apply(x)
	// Row sums of Â for a path graph are < 1.5 and > 0.5; mostly just
	// check symmetry-ish behavior and mass conservation direction.
	for i := 0; i < 3; i++ {
		if y.At(i, 0) <= 0 {
			t.Errorf("node %d aggregated to %g", i, y.At(i, 0))
		}
	}
	if math.Abs(y.At(0, 0)-y.At(2, 0)) > 1e-12 {
		t.Error("symmetric endpoints should aggregate equally")
	}
}

// makeToyGraph builds a trivially classifiable graph: class 0 graphs have
// feature-0-heavy nodes, class 1 graphs feature-1-heavy nodes.
func makeToyGraph(rng *rand.Rand, class int) *Graph {
	n := 5 + rng.Intn(5)
	x := NewMat(n, 4)
	var edges [][2]int
	for i := 0; i < n; i++ {
		f := class
		if rng.Float64() < 0.2 {
			f = rng.Intn(2)
		}
		x.Set(i, f, 1)
		x.Set(i, 2+rng.Intn(2), 0.5)
		if i > 0 {
			edges = append(edges, [2]int{i - 1, i})
		}
	}
	return &Graph{X: x, Adj: NewAdj(n, edges), Label: class}
}

func TestGCNLearnsToyProblem(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var train, test []*Graph
	for i := 0; i < 40; i++ {
		train = append(train, makeToyGraph(rng, i%2))
	}
	for i := 0; i < 20; i++ {
		test = append(test, makeToyGraph(rng, i%2))
	}
	model := Fit(train, 2, TrainConfig{Hidden: 8, MaxEpochs: 60, Seed: 5})
	if acc := Accuracy(model, test); acc < 0.9 {
		t.Errorf("toy accuracy = %.2f, want >= 0.9", acc)
	}
}

func TestGradientsNumerically(t *testing.T) {
	// Finite-difference check of backward() on a tiny model.
	rng := rand.New(rand.NewSource(7))
	g := makeToyGraph(rng, 1)
	model := NewGCN(4, 3, 2, rng)

	gs := model.newGrads()
	model.backward(g, gs)

	check := func(w *Mat, gw *Mat, name string) {
		for _, idx := range []int{0, len(w.A) / 2, len(w.A) - 1} {
			const eps = 1e-6
			orig := w.A[idx]
			w.A[idx] = orig + eps
			lossP := lossOf(model, g)
			w.A[idx] = orig - eps
			lossM := lossOf(model, g)
			w.A[idx] = orig
			numeric := (lossP - lossM) / (2 * eps)
			if math.Abs(numeric-gw.A[idx]) > 1e-4*(1+math.Abs(numeric)) {
				t.Errorf("%s[%d]: analytic %g vs numeric %g", name, idx, gw.A[idx], numeric)
			}
		}
	}
	check(model.W0, gs.w0, "W0")
	check(model.W1, gs.w1, "W1")
	check(model.W2, gs.w2, "W2")
}

func lossOf(m *GCN, g *Graph) float64 {
	p := m.Predict(g)
	return -math.Log(math.Max(p[g.Label], 1e-12))
}

func TestTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	model := NewGCN(4, 3, 5, rng)
	g := makeToyGraph(rng, 0)
	// Pad features to in-dim 4 (already 4). TopK sizes.
	top3 := model.TopK(g, 3)
	if len(top3) != 3 {
		t.Fatalf("top3 size = %d", len(top3))
	}
	p := model.Predict(g)
	if p[top3[0]] < p[top3[1]] || p[top3[1]] < p[top3[2]] {
		t.Error("topk not sorted by probability")
	}
	if len(model.TopK(g, 99)) != 5 {
		t.Error("topk should clamp to class count")
	}
}

func TestMetricsHelpers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var graphs []*Graph
	for i := 0; i < 30; i++ {
		graphs = append(graphs, makeToyGraph(rng, i%2))
	}
	model := Fit(graphs, 2, TrainConfig{Hidden: 8, MaxEpochs: 40, Seed: 2})
	if r := RecallForClass(model, graphs, 1, 2); r != 1.0 {
		// top-2 of a 2-class model always contains every class
		t.Errorf("top-2 recall should be 1.0, got %g", r)
	}
	if p := PrecisionForClass(model, graphs, 1, 1); p < 0.5 {
		t.Errorf("top-1 precision unexpectedly low: %g", p)
	}
	if a := TopKAccuracy(model, graphs, 2); a != 1.0 {
		t.Errorf("top-2 accuracy with 2 classes = %g", a)
	}
}
