package gnn

import (
	"math"
	"math/rand"
)

// Adam is the optimizer the paper trains with (plus weight decay).
type Adam struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64

	t int
	m map[*Mat]*Mat
	v map[*Mat]*Mat
	// bias moments
	mb, vb []float64
}

// NewAdam returns an optimizer with conventional defaults.
func NewAdam(lr, weightDecay float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		WeightDecay: weightDecay,
		m:           map[*Mat]*Mat{}, v: map[*Mat]*Mat{},
	}
}

func (a *Adam) stepMat(w, g *Mat) {
	if a.m[w] == nil {
		a.m[w] = NewMat(w.R, w.C)
		a.v[w] = NewMat(w.R, w.C)
	}
	m, v := a.m[w], a.v[w]
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i := range w.A {
		grad := g.A[i] + a.WeightDecay*w.A[i]
		m.A[i] = a.Beta1*m.A[i] + (1-a.Beta1)*grad
		v.A[i] = a.Beta2*v.A[i] + (1-a.Beta2)*grad*grad
		mh := m.A[i] / bc1
		vh := v.A[i] / bc2
		w.A[i] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
	}
}

// Step applies one update from accumulated gradients.
func (a *Adam) Step(model *GCN, gs *grads) {
	a.t++
	a.stepMat(model.W0, gs.w0)
	a.stepMat(model.W1, gs.w1)
	a.stepMat(model.W2, gs.w2)
	if a.mb == nil {
		a.mb = make([]float64, len(model.B))
		a.vb = make([]float64, len(model.B))
	}
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i := range model.B {
		grad := gs.b[i]
		a.mb[i] = a.Beta1*a.mb[i] + (1-a.Beta1)*grad
		a.vb[i] = a.Beta2*a.vb[i] + (1-a.Beta2)*grad*grad
		model.B[i] -= a.LR * (a.mb[i] / bc1) / (math.Sqrt(a.vb[i]/bc2) + a.Eps)
	}
}

// TrainConfig tunes Fit; the zero value gets the paper-style defaults.
type TrainConfig struct {
	Hidden      int     // default 16
	LR          float64 // default 0.01
	WeightDecay float64 // default 5e-4
	MaxEpochs   int     // default 100
	Patience    int     // early stopping patience, default 10
	BatchSize   int     // default 32
	Seed        int64
	ValFraction float64 // held out from train for early stopping, default 0.15
}

func (c *TrainConfig) defaults() {
	if c.Hidden == 0 {
		c.Hidden = 16
	}
	if c.LR == 0 {
		c.LR = 0.01
	}
	if c.WeightDecay == 0 {
		c.WeightDecay = 5e-4
	}
	if c.MaxEpochs == 0 {
		c.MaxEpochs = 100
	}
	if c.Patience == 0 {
		c.Patience = 10
	}
	if c.BatchSize == 0 {
		c.BatchSize = 32
	}
	if c.ValFraction == 0 {
		c.ValFraction = 0.15
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Fit trains a GCN on the graphs with mini-batch Adam and early stopping.
func Fit(graphs []*Graph, classes int, cfg TrainConfig) *GCN {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	if len(graphs) == 0 {
		return NewGCN(1, cfg.Hidden, classes, rng)
	}
	inDim := graphs[0].X.C
	model := NewGCN(inDim, cfg.Hidden, classes, rng)
	opt := NewAdam(cfg.LR, cfg.WeightDecay)

	// Split off a validation set for early stopping. Tiny training sets
	// (≲2 instances per class) cannot spare any: early-stop on train loss.
	idx := rng.Perm(len(graphs))
	nVal := int(float64(len(graphs)) * cfg.ValFraction)
	if nVal == 0 && len(graphs) > 4 {
		nVal = 1
	}
	if len(graphs) <= 3*classes {
		nVal = 0
	}
	val := make([]*Graph, 0, nVal)
	train := make([]*Graph, 0, len(graphs)-nVal)
	for i, g := range idx {
		if i < nVal {
			val = append(val, graphs[g])
		} else {
			train = append(train, graphs[g])
		}
	}
	if len(train) == 0 {
		train = graphs
		val = nil
	}

	bestVal := math.Inf(1)
	sinceBest := 0
	var best *GCN
	snapshot := func() *GCN {
		return &GCN{
			W0: model.W0.Clone(), W1: model.W1.Clone(), W2: model.W2.Clone(),
			B:     append([]float64{}, model.B...),
			InDim: model.InDim, Hidden: model.Hidden, Classes: model.Classes,
		}
	}

	for epoch := 0; epoch < cfg.MaxEpochs; epoch++ {
		perm := rng.Perm(len(train))
		for start := 0; start < len(perm); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(perm) {
				end = len(perm)
			}
			gs := model.newGrads()
			for _, gi := range perm[start:end] {
				model.backward(train[gi], gs)
			}
			scale := 1.0 / float64(end-start)
			for _, m := range []*Mat{gs.w0, gs.w1, gs.w2} {
				for i := range m.A {
					m.A[i] *= scale
				}
			}
			for i := range gs.b {
				gs.b[i] *= scale
			}
			opt.Step(model, gs)
		}
		// Early stopping on validation loss (train loss if no val set).
		eval := val
		if len(eval) == 0 {
			eval = train
		}
		loss := 0.0
		for _, g := range eval {
			p := model.Predict(g)
			loss += -math.Log(math.Max(p[g.Label], 1e-12))
		}
		loss /= float64(len(eval))
		if loss < bestVal-1e-4 {
			bestVal = loss
			sinceBest = 0
			best = snapshot()
		} else {
			sinceBest++
			if sinceBest >= cfg.Patience {
				break
			}
		}
	}
	if best != nil {
		return best
	}
	return model
}

// Accuracy computes top-1 accuracy on a set.
func Accuracy(model *GCN, graphs []*Graph) float64 {
	if len(graphs) == 0 {
		return 0
	}
	hits := 0
	for _, g := range graphs {
		if model.PredictClass(g) == g.Label {
			hits++
		}
	}
	return float64(hits) / float64(len(graphs))
}

// TopKAccuracy computes top-k accuracy on a set.
func TopKAccuracy(model *GCN, graphs []*Graph, k int) float64 {
	if len(graphs) == 0 {
		return 0
	}
	hits := 0
	for _, g := range graphs {
		for _, c := range model.TopK(g, k) {
			if c == g.Label {
				hits++
				break
			}
		}
	}
	return float64(hits) / float64(len(graphs))
}

// RecallForClass computes top-k recall of one class (the paper's FFT
// recall: of the true-FFT graphs, how many have FFT in their top-k).
func RecallForClass(model *GCN, graphs []*Graph, class, k int) float64 {
	total, hits := 0, 0
	for _, g := range graphs {
		if g.Label != class {
			continue
		}
		total++
		for _, c := range model.TopK(g, k) {
			if c == class {
				hits++
				break
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// PrecisionForClass computes top-k precision of one class: of the graphs
// that include the class in their top-k, how many truly belong to it.
func PrecisionForClass(model *GCN, graphs []*Graph, class, k int) float64 {
	flagged, correct := 0, 0
	for _, g := range graphs {
		inTop := false
		for _, c := range model.TopK(g, k) {
			if c == class {
				inTop = true
				break
			}
		}
		if inTop {
			flagged++
			if g.Label == class {
				correct++
			}
		}
	}
	if flagged == 0 {
		return 0
	}
	return float64(correct) / float64(flagged)
}
