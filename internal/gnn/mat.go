// Package gnn is a pure-Go graph convolutional network: the stand-in for
// the paper's PyTorch/DGL ProGraML classifier. It implements the same
// architecture (two graph-convolution layers, max-pool readout, linear
// classification head), trained with Adam + weight decay and early
// stopping, with gradients derived by hand.
package gnn

import (
	"fmt"
	"math"
	"math/rand"
)

// Mat is a dense row-major float64 matrix.
type Mat struct {
	R, C int
	A    []float64
}

// NewMat returns a zero matrix.
func NewMat(r, c int) *Mat {
	return &Mat{R: r, C: c, A: make([]float64, r*c)}
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float64 { return m.A[i*m.C+j] }

// Set writes element (i, j).
func (m *Mat) Set(i, j int, v float64) { m.A[i*m.C+j] = v }

// Add accumulates into element (i, j).
func (m *Mat) Add(i, j int, v float64) { m.A[i*m.C+j] += v }

// Clone copies the matrix.
func (m *Mat) Clone() *Mat {
	out := NewMat(m.R, m.C)
	copy(out.A, m.A)
	return out
}

// Zero clears all elements.
func (m *Mat) Zero() {
	for i := range m.A {
		m.A[i] = 0
	}
}

// MatMul returns a @ b.
func MatMul(a, b *Mat) *Mat {
	if a.C != b.R {
		panic(fmt.Sprintf("gnn: matmul shape mismatch %dx%d @ %dx%d", a.R, a.C, b.R, b.C))
	}
	out := NewMat(a.R, b.C)
	for i := 0; i < a.R; i++ {
		arow := a.A[i*a.C : (i+1)*a.C]
		orow := out.A[i*b.C : (i+1)*b.C]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.A[k*b.C : (k+1)*b.C]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulT1 returns aᵀ @ b.
func MatMulT1(a, b *Mat) *Mat {
	if a.R != b.R {
		panic("gnn: matmulT1 shape mismatch")
	}
	out := NewMat(a.C, b.C)
	for k := 0; k < a.R; k++ {
		arow := a.A[k*a.C : (k+1)*a.C]
		brow := b.A[k*b.C : (k+1)*b.C]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.A[i*b.C : (i+1)*b.C]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulT2 returns a @ bᵀ.
func MatMulT2(a, b *Mat) *Mat {
	if a.C != b.C {
		panic("gnn: matmulT2 shape mismatch")
	}
	out := NewMat(a.R, b.R)
	for i := 0; i < a.R; i++ {
		arow := a.A[i*a.C : (i+1)*a.C]
		for j := 0; j < b.R; j++ {
			brow := b.A[j*b.C : (j+1)*b.C]
			s := 0.0
			for k, av := range arow {
				s += av * brow[k]
			}
			out.A[i*b.R+j] = s
		}
	}
	return out
}

// ReLU applies max(0, x) in place and returns the mask of active units.
func ReLU(m *Mat) []bool {
	mask := make([]bool, len(m.A))
	for i, v := range m.A {
		if v > 0 {
			mask[i] = true
		} else {
			m.A[i] = 0
		}
	}
	return mask
}

// GlorotInit fills m with Glorot-uniform random weights.
func GlorotInit(m *Mat, rng *rand.Rand) {
	limit := math.Sqrt(6.0 / float64(m.R+m.C))
	for i := range m.A {
		m.A[i] = (rng.Float64()*2 - 1) * limit
	}
}

// Softmax returns softmax(x) for a logit vector.
func Softmax(x []float64) []float64 {
	maxv := math.Inf(-1)
	for _, v := range x {
		if v > maxv {
			maxv = v
		}
	}
	sum := 0.0
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = math.Exp(v - maxv)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// Adj is a normalized sparse adjacency: Â = D^{-1/2}(A+I)D^{-1/2} stored
// as an edge list with weights.
type Adj struct {
	N   int
	Src []int32
	Dst []int32
	W   []float64
}

// NewAdj builds the symmetric normalized adjacency from an undirected edge
// list (self-loops added automatically; duplicate edges are fine).
func NewAdj(n int, edges [][2]int) *Adj {
	seen := map[[2]int]bool{}
	deg := make([]float64, n)
	var pairs [][2]int
	addEdge := func(a, b int) {
		key := [2]int{a, b}
		if seen[key] {
			return
		}
		seen[key] = true
		pairs = append(pairs, key)
		deg[a]++
	}
	for i := 0; i < n; i++ {
		addEdge(i, i)
	}
	for _, e := range edges {
		a, b := e[0], e[1]
		if a < 0 || a >= n || b < 0 || b >= n || a == b {
			continue
		}
		addEdge(a, b)
		addEdge(b, a)
	}
	adj := &Adj{N: n}
	for _, p := range pairs {
		adj.Src = append(adj.Src, int32(p[0]))
		adj.Dst = append(adj.Dst, int32(p[1]))
		adj.W = append(adj.W, 1.0/math.Sqrt(deg[p[0]]*deg[p[1]]))
	}
	return adj
}

// Apply returns Â @ x.
func (a *Adj) Apply(x *Mat) *Mat {
	if x.R != a.N {
		panic("gnn: adjacency/feature shape mismatch")
	}
	out := NewMat(x.R, x.C)
	for i := range a.Src {
		s, d, w := int(a.Src[i]), int(a.Dst[i]), a.W[i]
		srow := x.A[d*x.C : (d+1)*x.C]
		orow := out.A[s*x.C : (s+1)*x.C]
		for j, v := range srow {
			orow[j] += w * v
		}
	}
	return out
}
