package gnn

import (
	"math"
	"math/rand"
)

// Graph is one classified sample: node features plus normalized adjacency.
type Graph struct {
	X     *Mat // N x F node features
	Adj   *Adj
	Label int
}

// GCN is the two-layer graph convolutional classifier:
//
//	H1 = ReLU(Â X W0)
//	H2 = ReLU(Â H1 W1)
//	g  = maxpool_nodes(H2)
//	y  = softmax(g W2 + b)
type GCN struct {
	W0, W1, W2 *Mat
	B          []float64
	InDim      int
	Hidden     int
	Classes    int
}

// NewGCN builds a model with Glorot-initialized weights.
func NewGCN(inDim, hidden, classes int, rng *rand.Rand) *GCN {
	m := &GCN{
		W0:      NewMat(inDim, hidden),
		W1:      NewMat(hidden, hidden),
		W2:      NewMat(hidden, classes),
		B:       make([]float64, classes),
		InDim:   inDim,
		Hidden:  hidden,
		Classes: classes,
	}
	GlorotInit(m.W0, rng)
	GlorotInit(m.W1, rng)
	GlorotInit(m.W2, rng)
	return m
}

// forwardState keeps intermediates for backprop.
type forwardState struct {
	ax     *Mat // Â X
	h1     *Mat
	mask1  []bool
	ah1    *Mat // Â H1
	h2     *Mat
	mask2  []bool
	pooled []float64
	argmax []int // per hidden dim, which node won the max-pool
	logits []float64
}

func (m *GCN) forward(g *Graph) *forwardState {
	st := &forwardState{}
	st.ax = g.Adj.Apply(g.X)
	st.h1 = MatMul(st.ax, m.W0)
	st.mask1 = ReLU(st.h1)
	st.ah1 = g.Adj.Apply(st.h1)
	st.h2 = MatMul(st.ah1, m.W1)
	st.mask2 = ReLU(st.h2)

	st.pooled = make([]float64, m.Hidden)
	st.argmax = make([]int, m.Hidden)
	for j := 0; j < m.Hidden; j++ {
		best := math.Inf(-1)
		bestI := 0
		for i := 0; i < st.h2.R; i++ {
			if v := st.h2.At(i, j); v > best {
				best = v
				bestI = i
			}
		}
		st.pooled[j] = best
		st.argmax[j] = bestI
	}
	st.logits = make([]float64, m.Classes)
	for c := 0; c < m.Classes; c++ {
		s := m.B[c]
		for j := 0; j < m.Hidden; j++ {
			s += st.pooled[j] * m.W2.At(j, c)
		}
		st.logits[c] = s
	}
	return st
}

// Predict returns class probabilities for a graph.
func (m *GCN) Predict(g *Graph) []float64 {
	return Softmax(m.forward(g).logits)
}

// PredictClass returns the argmax class.
func (m *GCN) PredictClass(g *Graph) int {
	p := m.Predict(g)
	best, bestC := math.Inf(-1), 0
	for c, v := range p {
		if v > best {
			best, bestC = v, c
		}
	}
	return bestC
}

// TopK returns the k most probable classes in descending order.
func (m *GCN) TopK(g *Graph, k int) []int {
	p := m.Predict(g)
	idx := make([]int, len(p))
	for i := range idx {
		idx[i] = i
	}
	// Partial selection sort — k is tiny.
	for i := 0; i < k && i < len(idx); i++ {
		for j := i + 1; j < len(idx); j++ {
			if p[idx[j]] > p[idx[i]] {
				idx[i], idx[j] = idx[j], idx[i]
			}
		}
	}
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

// grads mirrors the parameter shapes.
type grads struct {
	w0, w1, w2 *Mat
	b          []float64
}

func (m *GCN) newGrads() *grads {
	return &grads{
		w0: NewMat(m.W0.R, m.W0.C),
		w1: NewMat(m.W1.R, m.W1.C),
		w2: NewMat(m.W2.R, m.W2.C),
		b:  make([]float64, m.Classes),
	}
}

// backward accumulates gradients of the cross-entropy loss for one graph
// into gs and returns the loss value.
func (m *GCN) backward(g *Graph, gs *grads) float64 {
	st := m.forward(g)
	probs := Softmax(st.logits)
	loss := -math.Log(math.Max(probs[g.Label], 1e-12))

	// dlogits = probs - onehot(y)
	dlogits := make([]float64, m.Classes)
	copy(dlogits, probs)
	dlogits[g.Label] -= 1

	// W2 / b and pooled gradient.
	dpooled := make([]float64, m.Hidden)
	for c := 0; c < m.Classes; c++ {
		gs.b[c] += dlogits[c]
		for j := 0; j < m.Hidden; j++ {
			gs.w2.Add(j, c, st.pooled[j]*dlogits[c])
			dpooled[j] += m.W2.At(j, c) * dlogits[c]
		}
	}

	// Max-pool backward: gradient flows to the winning node only.
	dh2 := NewMat(st.h2.R, st.h2.C)
	for j := 0; j < m.Hidden; j++ {
		dh2.Set(st.argmax[j], j, dpooled[j])
	}
	// ReLU backward.
	for i, on := range st.mask2 {
		if !on {
			dh2.A[i] = 0
		}
	}
	// H2 = (Â H1) W1.
	dW1 := MatMulT1(st.ah1, dh2)
	for i := range dW1.A {
		gs.w1.A[i] += dW1.A[i]
	}
	dah1 := MatMulT2(dh2, m.W1)
	// Â is symmetric, so d(H1) = Â dah1.
	dh1 := g.Adj.Apply(dah1)
	for i, on := range st.mask1 {
		if !on {
			dh1.A[i] = 0
		}
	}
	dW0 := MatMulT1(st.ax, dh1)
	for i := range dW0.A {
		gs.w0.A[i] += dW0.A[i]
	}
	return loss
}
