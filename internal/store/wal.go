package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
)

// The write-ahead log makes a commit durable with one sequential append
// and one fsync before any random page write happens. A record carries
// the transaction's complete effect — every dirty page image plus the
// new meta — so replay after a crash mid-checkpoint simply rewrites
// them. Records are self-validating; replay stops at the first record
// that fails its checksum (the torn tail of the crashed append) and the
// tail bytes are quarantined, never trusted.
//
// Record layout:
//
//	[0:4)   magic "FWAL"
//	[4:8)   body length (u32)
//	body:   txid u64 | root u64 | npages u64 | freeHead u64 |
//	        count u32 | count x (pageID u64 | page image)
//	[-4:]   crc32 (Castagnoli) over the body
const walMagic = "FWAL"

const walHeaderSize = 8

// walRecord is one decoded commit record.
type walRecord struct {
	m     meta
	ids   []uint64 // dirty page IDs in write order
	pages map[uint64][]byte
}

// encodeWALRecord serializes one commit: the post-commit meta plus every
// dirty page, sorted by ID for deterministic bytes.
func encodeWALRecord(m meta, pages map[uint64][]byte, pageSize int) []byte {
	ids := make([]uint64, 0, len(pages))
	for id := range pages {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	bodyLen := 8 + 8 + 8 + 8 + 4 + len(ids)*(8+pageSize)
	buf := make([]byte, walHeaderSize+bodyLen+4)
	copy(buf[0:4], walMagic)
	binary.LittleEndian.PutUint32(buf[4:8], uint32(bodyLen))
	b := buf[walHeaderSize:]
	binary.LittleEndian.PutUint64(b[0:8], m.txid)
	binary.LittleEndian.PutUint64(b[8:16], m.root)
	binary.LittleEndian.PutUint64(b[16:24], m.npages)
	binary.LittleEndian.PutUint64(b[24:32], m.freeHead)
	binary.LittleEndian.PutUint32(b[32:36], uint32(len(ids)))
	off := 36
	for _, id := range ids {
		binary.LittleEndian.PutUint64(b[off:off+8], id)
		copy(b[off+8:off+8+pageSize], pages[id])
		off += 8 + pageSize
	}
	crc := crc32.Checksum(buf[walHeaderSize:walHeaderSize+bodyLen], castagnoli)
	binary.LittleEndian.PutUint32(buf[walHeaderSize+bodyLen:], crc)
	return buf
}

// decodeWALRecords parses records from the log's bytes. It returns every
// valid record in order plus the byte offset where validity ended; a
// non-nil reason describes the first invalid record (the quarantined
// tail), and is nil when the log ends cleanly.
func decodeWALRecords(data []byte, pageSize int) (recs []walRecord, validLen int64, reason error) {
	off := 0
	for off < len(data) {
		rest := data[off:]
		if len(rest) < walHeaderSize {
			return recs, int64(off), fmt.Errorf("store: wal: %d trailing bytes (torn header)", len(rest))
		}
		if string(rest[0:4]) != walMagic {
			return recs, int64(off), fmt.Errorf("store: wal: bad record magic %q at offset %d", rest[0:4], off)
		}
		bodyLen := int(binary.LittleEndian.Uint32(rest[4:8]))
		if bodyLen < 36 || walHeaderSize+bodyLen+4 > len(rest) {
			return recs, int64(off), fmt.Errorf("store: wal: record at offset %d claims %d body bytes, %d available", off, bodyLen, len(rest)-walHeaderSize-4)
		}
		body := rest[walHeaderSize : walHeaderSize+bodyLen]
		want := binary.LittleEndian.Uint32(rest[walHeaderSize+bodyLen:])
		if got := crc32.Checksum(body, castagnoli); got != want {
			return recs, int64(off), fmt.Errorf("store: wal: record at offset %d checksum %08x != %08x", off, got, want)
		}
		rec := walRecord{
			m: meta{
				txid:     binary.LittleEndian.Uint64(body[0:8]),
				root:     binary.LittleEndian.Uint64(body[8:16]),
				npages:   binary.LittleEndian.Uint64(body[16:24]),
				freeHead: binary.LittleEndian.Uint64(body[24:32]),
			},
			pages: map[uint64][]byte{},
		}
		count := int(binary.LittleEndian.Uint32(body[32:36]))
		if 36+count*(8+pageSize) != bodyLen {
			return recs, int64(off), fmt.Errorf("store: wal: record at offset %d count %d inconsistent with body length %d", off, count, bodyLen)
		}
		p := 36
		for i := 0; i < count; i++ {
			id := binary.LittleEndian.Uint64(body[p : p+8])
			img := body[p+8 : p+8+pageSize : p+8+pageSize]
			if verr := verifyPage(img, id); verr != nil {
				return recs, int64(off), fmt.Errorf("store: wal: record at offset %d carries corrupt page %d: %v", off, id, verr)
			}
			rec.ids = append(rec.ids, id)
			rec.pages[id] = img
			p += 8 + pageSize
		}
		recs = append(recs, rec)
		off += walHeaderSize + bodyLen + 4
	}
	return recs, int64(off), nil
}
